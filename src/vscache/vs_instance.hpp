// Variable-size caching in the fault model — the source problem of the
// Theorem 1 reduction.
//
// Items have arbitrary (integral) sizes, loading any item costs 1 fault
// regardless of size, and the cache holds any set of items whose sizes sum
// to at most the capacity. Offline optimization of this problem is
// NP-complete [Chrobak, Woeginger, Makino, Xu 2012], which Theorem 1 lifts
// to GC caching.
#pragma once

#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace gcaching::vscache {

using VsItemId = std::uint32_t;

struct VsInstance {
  std::vector<std::uint32_t> sizes;  ///< sizes[i] = size of item i (>= 1)
  std::uint64_t capacity = 0;        ///< cache capacity (same units)

  std::size_t num_items() const noexcept { return sizes.size(); }

  void validate() const {
    GC_REQUIRE(!sizes.empty(), "instance needs at least one item");
    GC_REQUIRE(capacity >= 1, "capacity must be positive");
    for (std::uint32_t s : sizes) {
      GC_REQUIRE(s >= 1, "item sizes must be >= 1");
      GC_REQUIRE(s <= capacity, "every item must fit in the cache");
    }
  }
};

using VsTrace = std::vector<VsItemId>;

/// Exact minimum fault count for serving `trace` on `instance`, starting
/// from an empty cache. Exponential state-space search (universe <= 64,
/// small traces) — the same machinery class as `exact_offline_opt`.
std::uint64_t vs_exact_opt(const VsInstance& instance, const VsTrace& trace);

}  // namespace gcaching::vscache
