#include <bit>
#include <deque>
#include <unordered_map>

#include "vscache/vs_instance.hpp"

namespace gcaching::vscache {

namespace {

struct State {
  std::uint32_t pos;
  std::uint64_t mask;
  bool operator==(const State& o) const {
    return pos == o.pos && mask == o.mask;
  }
};

struct StateHash {
  std::size_t operator()(const State& s) const {
    std::uint64_t z = s.mask + 0x9e3779b97f4a7c15ULL * (s.pos + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace

std::uint64_t vs_exact_opt(const VsInstance& instance, const VsTrace& trace) {
  instance.validate();
  GC_REQUIRE(instance.num_items() <= 64, "vs solver limited to 64 items");
  if (trace.empty()) return 0;

  const auto size_of_mask = [&](std::uint64_t mask) {
    std::uint64_t total = 0;
    for (std::uint64_t m = mask; m != 0; m &= m - 1)
      total += instance.sizes[static_cast<std::size_t>(std::countr_zero(m))];
    return total;
  };

  const std::uint32_t n = static_cast<std::uint32_t>(trace.size());
  std::unordered_map<State, std::uint32_t, StateHash> dist;
  std::deque<State> dq;
  const State start{0, 0};
  dist[start] = 0;
  dq.push_back(start);

  auto relax = [&](State to, std::uint32_t nd, bool zero) {
    auto it = dist.find(to);
    if (it != dist.end() && it->second <= nd) return;
    dist[to] = nd;
    if (zero)
      dq.push_front(to);
    else
      dq.push_back(to);
  };

  while (!dq.empty()) {
    const State s = dq.front();
    dq.pop_front();
    const std::uint32_t d = dist[s];
    if (s.pos == n) return d;  // first goal pop is optimal (0/1-BFS)

    const VsItemId x = trace[s.pos];
    GC_REQUIRE(x < instance.num_items(), "trace references unknown item");
    const std::uint64_t xbit = std::uint64_t{1} << x;
    if (s.mask & xbit) {
      relax(State{s.pos + 1, s.mask}, d, /*zero=*/true);
      continue;
    }
    // Fault: load x, evicting any subset of the current contents that frees
    // enough space. Enumerate all eviction subsets (the size structure means
    // minimal-cardinality pruning is not exact here); at <=64-item universes
    // and the tiny traces we use, this is fine.
    const std::uint64_t need = instance.sizes[x];
    std::uint64_t sub = s.mask;
    for (;;) {
      const std::uint64_t kept = sub;  // kept subset of old contents
      if (size_of_mask(kept) + need <= instance.capacity)
        relax(State{s.pos + 1, kept | xbit}, d + 1, /*zero=*/false);
      if (sub == 0) break;
      sub = (sub - 1) & s.mask;
    }
  }
  GC_REQUIRE(false, "vs search exhausted without serving the whole trace");
  return 0;  // unreachable
}

}  // namespace gcaching::vscache
