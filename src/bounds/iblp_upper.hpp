// IBLP competitive upper bounds (Section 5.2, Theorems 5-7) plus a numeric
// optimizer that re-solves the paper's linear program directly.
//
// Conventions: `i` = item-layer size, `b` = block-layer size, `h` = optimal
// cache size, `B` = block-size bound. Theorems 5 and 7 require i > h for a
// bounded ratio (an LRU layer no bigger than the comparator can be made to
// miss always while the comparator hits); we return kUnboundedRatio at
// i <= h.
#pragma once

namespace gcaching::bounds {

/// Theorem 5 — item layer vs adversarial temporal locality: i / (i - h).
double iblp_item_layer_upper(double i, double h);

/// Theorem 6 — block layer vs adversarial spatial locality:
/// min(B, (b + 2Bh - B) / (b + B)).
double iblp_block_layer_upper(double b, double h, double B);

/// Theorem 7 — the combined IBLP bound (piecewise closed form).
double iblp_upper(double i, double b, double h, double B);

/// The Theorem 7 region boundary: t (items loaded per optimal miss) caps at
/// B when i exceeds (2Bb - b + 2B^2 + B) / (2B).
double iblp_upper_region_boundary(double b, double B);

/// Numeric re-solve of the Section 5.2 LP:
///     maximize 1 / (1 - r - s(t-1))
///     s.t.     r*i + s*U(t) <= h,   r + s*t <= 1,   r,s >= 0,  1 <= t <= B
/// with per-miss cache usage U(t) = sum_{j=0}^{t-1} (1 + j*(b/B + 1))
/// (the Figure 5 triangle pattern). For fixed t the problem is a 2-variable
/// LP solved exactly at its vertices; t is then optimized by fine grid +
/// local refinement. Used in tests to validate the closed form.
double iblp_upper_numeric(double i, double b, double h, double B);

}  // namespace gcaching::bounds
