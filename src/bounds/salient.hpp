// Salient-point solvers for Table 1.
//
// Table 1 characterizes each bound family by three operating points:
//   * constant augmentation — the ratio at k = 2h;
//   * ratio = augmentation — the k at which ratio(k) equals k/h;
//   * constant ratio — the k at which the ratio drops to a small constant
//     (2 for Sleator-Tarjan and the GC lower bound, 3 for the GC upper
//     bound, per Sections 4.4/5.3).
// The solvers work on any monotone-decreasing ratio(k) function, found by
// bisection over integer k in (h, k_max].
#pragma once

#include <cstdint>
#include <functional>

namespace gcaching::bounds {

/// ratio(k) for fixed h: must be (weakly) decreasing in k past k = h.
using RatioOfK = std::function<double(double)>;

struct SalientPoint {
  double k = 0;             ///< online size at the operating point
  double augmentation = 0;  ///< k / h
  double ratio = 0;         ///< bound value at k
};

/// The point where ratio(k) == k/h (within integer-k resolution).
SalientPoint find_ratio_equals_augmentation(const RatioOfK& ratio, double h,
                                            double k_max);

/// The smallest integer k with ratio(k) <= target.
SalientPoint find_constant_ratio(const RatioOfK& ratio, double h,
                                 double target, double k_max);

/// Convenience: evaluate at a fixed augmentation factor (e.g. k = 2h).
SalientPoint at_augmentation(const RatioOfK& ratio, double h, double factor);

}  // namespace gcaching::bounds
