#include "bounds/locality_bounds.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"

namespace gcaching::bounds {

LocalityFunction make_poly_locality(double c, double p) {
  GC_REQUIRE(c > 0 && p >= 1, "poly locality needs c > 0, p >= 1");
  LocalityFunction fn;
  fn.value = [c, p](double n) { return c * std::pow(n, 1.0 / p); };
  fn.inverse = [c, p](double m) { return std::pow(m / c, p); };
  return fn;
}

LocalityFunction derive_block_locality(const LocalityFunction& f,
                                       double gamma) {
  GC_REQUIRE(gamma >= 1, "spatial-locality ratio gamma must be >= 1");
  LocalityFunction g;
  const auto fv = f.value;
  const auto fi = f.inverse;
  g.value = [fv, gamma](double n) { return fv(n) / gamma; };
  g.inverse = [fi, gamma](double m) { return fi(m * gamma); };
  return g;
}

double fault_rate_lower(const LocalityFunction& f, const LocalityFunction& g,
                        double k) {
  GC_REQUIRE(k >= 1, "cache size must be positive");
  const double window = f.inverse(k + 1.0) - 2.0;
  GC_REQUIRE(window > 0, "degenerate window: f^{-1}(k+1) must exceed 2");
  return g.value(window) / window;
}

double iblp_item_fault_upper(const LocalityFunction& f, double i) {
  GC_REQUIRE(i > 1, "item layer must hold at least two items");
  const double window = f.inverse(i + 1.0) - 2.0;
  GC_REQUIRE(window > 0, "degenerate window: f^{-1}(i+1) must exceed 2");
  return std::min(1.0, (i - 1.0) / window);
}

double iblp_block_fault_upper(const LocalityFunction& g, double b, double B) {
  GC_REQUIRE(B >= 1, "block size must be positive");
  GC_REQUIRE(b > B, "block layer must hold at least two blocks");
  const double eff = b / B;  // effective size in blocks
  const double window = g.inverse(eff + 1.0) - 2.0;
  GC_REQUIRE(window > 0, "degenerate window: g^{-1}(b/B+1) must exceed 2");
  return std::min(1.0, (eff - 1.0) / window);
}

double iblp_fault_upper(const LocalityFunction& f, const LocalityFunction& g,
                        double i, double b, double B) {
  return std::min(iblp_item_fault_upper(f, i),
                  iblp_block_fault_upper(g, b, B));
}

}  // namespace gcaching::bounds
