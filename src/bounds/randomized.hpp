// Classical randomized-paging bounds, for Section 6 context.
//
// Fiat et al. [1991] (cited in Section 1): in traditional caching, the
// randomized marking algorithm is 2 H_k-competitive and every randomized
// policy is at least H_k-competitive against an oblivious adversary, where
// H_k is the k-th harmonic number. Section 6 builds GCM on top of marking;
// these baselines put its measured ratios in context (and show that
// randomization's logarithmic advantage in traditional caching does not
// erase the Theta(B) granularity penalty — Section 6.1's >= B example).
#pragma once

namespace gcaching::bounds {

/// H_n = 1 + 1/2 + ... + 1/n (H_0 = 0).
double harmonic(double n);

/// Fiat et al. lower bound for randomized policies, equal cache sizes: H_k.
double randomized_paging_lower(double k);

/// Marking's upper bound in traditional caching: 2 H_k.
double randomized_marking_upper(double k);

/// Section 6.1: any marking algorithm that ignores granularity change has
/// competitive ratio at least B (whole-block scans), independent of k and
/// of the randomization — returned as-is for table symmetry.
double oblivious_marking_gc_lower(double B);

}  // namespace gcaching::bounds
