#include "bounds/salient.hpp"

#include <cmath>

#include "util/contracts.hpp"
#include "util/mathx.hpp"

namespace gcaching::bounds {

SalientPoint find_ratio_equals_augmentation(const RatioOfK& ratio, double h,
                                            double k_max) {
  GC_REQUIRE(h >= 1 && k_max > h, "requires k_max > h >= 1");
  // ratio(k) decreases and k/h increases, so ratio(k) - k/h crosses zero
  // exactly once; bisect over integer k.
  const auto lo0 = static_cast<std::uint64_t>(std::ceil(h)) + 1;
  const auto hi0 = static_cast<std::uint64_t>(std::floor(k_max));
  const std::uint64_t k = bisect_first_true(
      lo0, hi0, [&](std::uint64_t kk) {
        const double kd = static_cast<double>(kk);
        return ratio(kd) <= kd / h;
      });
  GC_REQUIRE(k <= hi0, "no crossing within [h+1, k_max]");
  SalientPoint out;
  out.k = static_cast<double>(k);
  out.augmentation = out.k / h;
  out.ratio = ratio(out.k);
  return out;
}

SalientPoint find_constant_ratio(const RatioOfK& ratio, double h,
                                 double target, double k_max) {
  GC_REQUIRE(h >= 1 && k_max > h, "requires k_max > h >= 1");
  const auto lo0 = static_cast<std::uint64_t>(std::ceil(h)) + 1;
  const auto hi0 = static_cast<std::uint64_t>(std::floor(k_max));
  const std::uint64_t k = bisect_first_true(
      lo0, hi0,
      [&](std::uint64_t kk) { return ratio(static_cast<double>(kk)) <= target; });
  GC_REQUIRE(k <= hi0, "target ratio not reached within [h+1, k_max]");
  SalientPoint out;
  out.k = static_cast<double>(k);
  out.augmentation = out.k / h;
  out.ratio = ratio(out.k);
  return out;
}

SalientPoint at_augmentation(const RatioOfK& ratio, double h, double factor) {
  SalientPoint out;
  out.k = factor * h;
  out.augmentation = factor;
  out.ratio = ratio(out.k);
  return out;
}

}  // namespace gcaching::bounds
