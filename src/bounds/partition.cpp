#include "bounds/partition.hpp"

#include <algorithm>
#include <cmath>

#include "bounds/iblp_upper.hpp"
#include "util/contracts.hpp"
#include "util/mathx.hpp"

namespace gcaching::bounds {

double item_cache_transition(double h, double B) {
  if (B <= 1.0) return kUnboundedRatio;  // always in the item-cache regime
  return (3.0 * B * h - h - B * B - B) / (B - 1.0);
}

PartitionChoice iblp_optimal_partition(double k, double h, double B) {
  GC_REQUIRE(k > h && h >= 1 && B >= 1, "requires k > h >= 1, B >= 1");
  PartitionChoice out;
  if (B <= 1.0 || k < item_cache_transition(h, B)) {
    // Small online caches (relative to h): pure Item Cache is optimal.
    out.item_layer = k;
    out.block_layer = 0;
    out.ratio = B <= 1.0 ? k / (k - h)  // traditional LRU bound (Theorem 5)
                         : (2.0 * B * k - B * B - B) / (2.0 * (k - h));
    return out;
  }
  out.ratio = (k + B - 1.0) * (k - h + B * (2.0 * h - 1.0)) /
              ((k - h + B) * (k - h + B));
  out.item_layer =
      (k * k + 4.0 * B * h * k - h * k + 4.0 * B * B * h - 3.0 * B * h -
       B * B) /
      (2.0 * B * k + k + 2.0 * B * h - h + 2.0 * B * B - 3.0 * B);
  out.block_layer = k - out.item_layer;
  return out;
}

PartitionChoice iblp_optimal_partition_numeric(double k, double h, double B) {
  GC_REQUIRE(k > h && h >= 1 && B >= 1, "requires k > h >= 1, B >= 1");
  const double lo = std::nextafter(h, k);
  const double best_i = golden_min(
      [&](double i) { return iblp_upper(i, k - i, h, B); }, lo, k, 1e-10, 400);
  PartitionChoice out;
  // The optimum may sit at the i = k boundary (item-cache regime); golden
  // search converges into the interior, so compare against the boundary.
  const double interior = iblp_upper(best_i, k - best_i, h, B);
  const double boundary = iblp_upper(k, 0.0, h, B);
  if (boundary <= interior) {
    out.item_layer = k;
    out.block_layer = 0;
    out.ratio = boundary;
  } else {
    out.item_layer = best_i;
    out.block_layer = k - best_i;
    out.ratio = interior;
  }
  return out;
}

double iblp_upper_large_cache_approx(double k, double h, double B) {
  GC_REQUIRE(k > h && h >= 1, "requires k > h >= 1");
  if (k >= 3.0 * h) return k * (k + 2.0 * B * h) / ((k - h) * (k - h));
  return B * k / (k - h);
}

}  // namespace gcaching::bounds
