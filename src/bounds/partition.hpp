// Choosing IBLP's layer split (Section 5.3).
//
// The Theorem 7 bound depends on the layer sizes (i, b) and on the
// comparator size h; Section 5.3 derives the closed-form optimum when h is
// known, including the transition point below which IBLP should degenerate
// to a pure Item Cache (i = k, b = 0). For the unknown-h analysis
// (Figure 6), `iblp_upper` can simply be evaluated at fixed splits.
#pragma once

#include <cstddef>

namespace gcaching::bounds {

struct PartitionChoice {
  double item_layer = 0;   ///< optimal i
  double block_layer = 0;  ///< optimal b = k - i
  double ratio = 0;        ///< Theorem 7 bound at that split
};

/// The k threshold below which i = k (pure Item Cache) is optimal:
/// k < (3Bh - h - B^2 - B) / (B - 1). For B = 1 the GC problem collapses to
/// traditional caching and i = k always.
double item_cache_transition(double h, double B);

/// Section 5.3 closed-form optimal split and its competitive ratio for a
/// known comparator size h. Requires k > h.
PartitionChoice iblp_optimal_partition(double k, double h, double B);

/// Numeric optimum: minimize Theorem 7 over i in [h+eps, k] with b = k - i
/// by golden-section search (the bound is unimodal in i). Used in tests to
/// validate the closed form; also the fallback for exotic geometries.
PartitionChoice iblp_optimal_partition_numeric(double k, double h, double B);

/// Section 5.3's large-cache simplifications (k > h >> B >> 1):
/// k (k + 2Bh) / (k - h)^2 when k >= 3h, and Bk / (k - h) when k < 3h.
double iblp_upper_large_cache_approx(double k, double h, double B);

}  // namespace gcaching::bounds
