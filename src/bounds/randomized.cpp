#include "bounds/randomized.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace gcaching::bounds {

double harmonic(double n) {
  GC_REQUIRE(n >= 0, "harmonic number needs n >= 0");
  if (n < 1) return 0.0;
  // Exact sum below a threshold; Euler-Maclaurin beyond it.
  if (n <= 1e6) {
    double h = 0.0;
    for (double j = 1; j <= n; ++j) h += 1.0 / j;
    return h;
  }
  constexpr double kEulerMascheroni = 0.5772156649015328606;
  return std::log(n) + kEulerMascheroni + 1.0 / (2.0 * n) -
         1.0 / (12.0 * n * n);
}

double randomized_paging_lower(double k) {
  GC_REQUIRE(k >= 1, "cache size must be positive");
  return harmonic(k);
}

double randomized_marking_upper(double k) {
  GC_REQUIRE(k >= 1, "cache size must be positive");
  return 2.0 * harmonic(k);
}

double oblivious_marking_gc_lower(double B) {
  GC_REQUIRE(B >= 1, "block size must be positive");
  return B;
}

}  // namespace gcaching::bounds
