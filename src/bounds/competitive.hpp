// Competitive-ratio lower bounds (Section 4) and the classical
// Sleator–Tarjan bounds they extend.
//
// Conventions: `k` is the online cache size, `h <= k` the offline (optimal)
// cache size, `B` the block-size bound. Ratios that the adversary can push
// to infinity are returned as kUnboundedRatio. All formulas are stated
// exactly as in the paper; preconditions mirror the theorems' assumptions.
#pragma once

#include <cstdint>

namespace gcaching::bounds {

/// Sleator–Tarjan [1985] lower bound for any deterministic policy in
/// *traditional* caching: k / (k - h + 1).
double sleator_tarjan_lower(double k, double h);

/// Sleator–Tarjan upper bound for LRU (matches the lower bound):
/// k / (k - h + 1).
double sleator_tarjan_lru_upper(double k, double h);

/// Theorem 2 — any Item Cache in GC caching:
/// B (k - B + 1) / (k - h + 1).
double item_cache_lower(double k, double h, double B);

/// Theorem 3 — any Block Cache in GC caching:
/// k / (k - B (h - 1)), unbounded when k <= B (h - 1).
double block_cache_lower(double k, double h, double B);

/// Theorem 4 — any deterministic policy that loads the full block only
/// after `a` distinct consecutive accesses:
/// (a (k - h + 1) + B (h - a)) / (k - h + 1).
/// Requires 1 <= a <= B and h >= a.
double athreshold_lower(double k, double h, double B, double a);

/// The general GC lower bound: the best a policy can do over its choice of
/// `a`, which Section 4.4 shows is attained at a = 1 or a = B:
/// min(Theorem4(a=1), Theorem4(a=B)).
double gc_lower_bound(double k, double h, double B);

/// The `a` minimizing Theorem 4 for the given geometry (1 or B; ties -> 1).
/// Section 4.4: a = 1 (load whole blocks immediately) iff k - h + 1 > B,
/// i.e. when the online cache is much larger than the comparator; otherwise
/// a = B (behave as an Item Cache).
double gc_optimal_a(double k, double h, double B);

}  // namespace gcaching::bounds
