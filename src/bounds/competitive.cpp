#include "bounds/competitive.hpp"

#include <algorithm>

#include "util/contracts.hpp"
#include "util/mathx.hpp"

namespace gcaching::bounds {

double sleator_tarjan_lower(double k, double h) {
  GC_REQUIRE(h >= 1 && k >= h, "requires 1 <= h <= k");
  return k / (k - h + 1);
}

double sleator_tarjan_lru_upper(double k, double h) {
  return sleator_tarjan_lower(k, h);
}

double item_cache_lower(double k, double h, double B) {
  GC_REQUIRE(h >= 1 && k >= h, "requires 1 <= h <= k");
  GC_REQUIRE(B >= 1 && k >= B, "requires 1 <= B <= k");
  return B * (k - B + 1) / (k - h + 1);
}

double block_cache_lower(double k, double h, double B) {
  GC_REQUIRE(h >= 1 && k >= h, "requires 1 <= h <= k");
  GC_REQUIRE(B >= 1, "requires B >= 1");
  const double denom = k - B * (h - 1);
  if (denom <= 0) return kUnboundedRatio;
  return k / denom;
}

double athreshold_lower(double k, double h, double B, double a) {
  GC_REQUIRE(h >= 1 && k >= h, "requires 1 <= h <= k");
  GC_REQUIRE(a >= 1 && a <= B, "requires 1 <= a <= B");
  GC_REQUIRE(h >= a, "Theorem 4 assumes h >= a");
  return (a * (k - h + 1) + B * (h - a)) / (k - h + 1);
}

double gc_lower_bound(double k, double h, double B) {
  // Section 4.4: the minimizing a is an endpoint, 1 or B. When h < B the
  // a = B endpoint is not admissible (Theorem 4 needs h >= a); use a = h
  // as the largest admissible value (equivalently an Item Cache against a
  // comparator smaller than a block).
  const double a_hi = std::min(B, h);
  const double lo1 = athreshold_lower(k, h, B, 1.0);
  const double lo2 = athreshold_lower(k, h, B, a_hi);
  return std::min(lo1, lo2);
}

double gc_optimal_a(double k, double h, double B) {
  // d(ratio)/da = 1 - B/(k-h+1): increasing in a iff k-h+1 > B. At the tie
  // k-h+1 == B the derivative is 0 and both endpoints attain the bound; the
  // documented convention resolves ties to a = 1.
  const double a_hi = std::min(B, h);
  return (k - h + 1 >= B) ? 1.0 : a_hi;
}

}  // namespace gcaching::bounds
