#include "bounds/iblp_upper.hpp"

#include <algorithm>
#include <cmath>

#include "util/contracts.hpp"
#include "util/mathx.hpp"

namespace gcaching::bounds {

double iblp_item_layer_upper(double i, double h) {
  GC_REQUIRE(h >= 1, "requires h >= 1");
  if (i <= h) return kUnboundedRatio;
  return i / (i - h);
}

double iblp_block_layer_upper(double b, double h, double B) {
  GC_REQUIRE(h >= 1 && B >= 1 && b >= 0, "invalid geometry");
  const double lp = (b + 2.0 * B * h - B) / (b + B);
  return std::min(B, lp);
}

double iblp_upper_region_boundary(double b, double B) {
  return (2.0 * B * b - b + 2.0 * B * B + B) / (2.0 * B);
}

double iblp_upper(double i, double b, double h, double B) {
  GC_REQUIRE(h >= 1 && B >= 1 && b >= 0 && i >= 0, "invalid geometry");
  if (i <= h) return kUnboundedRatio;
  if (i <= iblp_upper_region_boundary(b, B)) {
    const double num = b + B * (2.0 * i - 1.0);
    return num * num / (8.0 * B * (B + b) * (i - h));
  }
  return (2.0 * B * i - B * b + b - B * B - B) / (2.0 * i - 2.0 * h);
}

namespace {

/// Per-miss optimal-cache usage when loading t items against the block
/// layer: the j-th item is held 1 + j*(b/B + 1) access-units (Figure 5).
double usage(double t, double b, double B) {
  const double step = b / B + 1.0;
  return t + step * t * (t - 1.0) / 2.0;
}

/// Best objective value r + s(t-1) of the 2-variable LP for fixed t.
double best_rs(double t, double i, double b, double h, double B) {
  const double U = usage(t, b, B);
  double best = 0.0;
  auto consider = [&](double r, double s) {
    if (r < -1e-12 || s < -1e-12) return;
    r = std::max(r, 0.0);
    s = std::max(s, 0.0);
    if (r * i + s * U > h * (1 + 1e-9)) return;
    if (r + s * t > 1 + 1e-9) return;
    best = std::max(best, r + s * (t - 1.0));
  };
  // Vertices of the feasible polygon.
  consider(std::min(1.0, h / i), 0.0);                 // s = 0 edge
  consider(0.0, std::min(h / U, 1.0 / t));             // r = 0 edge
  const double denom = U - t * i;
  if (std::fabs(denom) > 1e-12) {
    const double s = (h - i) / denom;                  // both constraints tight
    consider(1.0 - s * t, s);
  }
  return best;
}

}  // namespace

double iblp_upper_numeric(double i, double b, double h, double B) {
  GC_REQUIRE(h >= 1 && B >= 1, "invalid geometry");
  if (i <= h) return kUnboundedRatio;
  double best_v = 0.0;
  const int kGrid = 4096;
  double best_t = 1.0;
  for (int g = 0; g <= kGrid; ++g) {
    const double t =
        1.0 + (B - 1.0) * static_cast<double>(g) / static_cast<double>(kGrid);
    const double v = best_rs(t, i, b, h, B);
    if (v > best_v) {
      best_v = v;
      best_t = t;
    }
  }
  // Local refinement around the best grid point (objective is smooth in t).
  const double span = (B - 1.0) / kGrid;
  const double lo = std::max(1.0, best_t - 2.0 * span);
  const double hi = std::min(B, best_t + 2.0 * span);
  const double refined = golden_min(
      [&](double t) { return -best_rs(t, i, b, h, B); }, lo, hi, 1e-12, 300);
  best_v = std::max(best_v, best_rs(refined, i, b, h, B));
  if (best_v >= 1.0) return kUnboundedRatio;
  return 1.0 / (1.0 - best_v);
}

}  // namespace gcaching::bounds
