// Fault-rate bounds in the extended locality-of-reference model
// (Section 7, Theorems 8-11; model of Albers, Favrholdt, Giel extended with
// the block working-set function g).
//
// f(n): max distinct *items* in any window of n consecutive accesses.
// g(n): max distinct *blocks* in any window of n consecutive accesses.
// Both are increasing and concave for real traces; f/B <= g <= f.
//
// NOTE on Theorem 10: the paper's statement prints f^{-1}(b/B + 1), but its
// proof substitutes "the number of blocks in a window, g(n), as the items
// per window function", and Table 2's entries only follow when the inverse
// of g is used. We implement g^{-1} (and verify against Table 2 in tests);
// see DESIGN.md "Known paper typos handled".
#pragma once

#include <functional>

namespace gcaching::bounds {

/// A concave locality function and its inverse. `value(n)` maps a window
/// length to a working-set bound; `inverse(m)` maps a working-set size back
/// to the smallest window length reaching it.
struct LocalityFunction {
  std::function<double(double)> value;
  std::function<double(double)> inverse;
};

/// The polynomial family used throughout Section 7.3:
/// f(n) = c * n^(1/p)  with inverse  f^{-1}(m) = (m / c)^p.
LocalityFunction make_poly_locality(double c, double p);

/// g derived from f by a constant spatial-locality ratio gamma in [1, B]:
/// g(n) = f(n) / gamma.
LocalityFunction derive_block_locality(const LocalityFunction& f,
                                       double gamma);

/// Theorem 8 — fault-rate lower bound for any deterministic policy with
/// cache size k:   g(f^{-1}(k+1) - 2) / (f^{-1}(k+1) - 2).
double fault_rate_lower(const LocalityFunction& f, const LocalityFunction& g,
                        double k);

/// Theorem 9 — item layer (size i) fault-rate upper bound:
/// (i - 1) / (f^{-1}(i+1) - 2).
double iblp_item_fault_upper(const LocalityFunction& f, double i);

/// Theorem 10 — block layer (size b, block size B) fault-rate upper bound:
/// (b/B - 1) / (g^{-1}(b/B + 1) - 2).
double iblp_block_fault_upper(const LocalityFunction& g, double b, double B);

/// Theorem 11 — IBLP fault-rate upper bound: min of Theorems 9 and 10.
double iblp_fault_upper(const LocalityFunction& f, const LocalityFunction& g,
                        double i, double b, double B);

}  // namespace gcaching::bounds
