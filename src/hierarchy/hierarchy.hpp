// Multi-level cache hierarchies with granularity change at every boundary.
//
// The paper's Figure 1 shows a single granularity boundary; real systems
// chain several (SRAM lines over DRAM rows over flash pages, Section 1).
// `HierarchySimulator` stacks independent GC caches: level 0 is probed
// first; each miss falls through to the next level and, on the way back,
// every missing level runs its own replacement policy — loading any subset
// of *its* block granularity, which models the transfer unit of the level
// below it.
//
// Levels are independent state machines over the same item universe (no
// inclusion is enforced — mirroring the paper's observation that IBLP's
// layers are neither inclusive nor exclusive). The model invariants are
// enforced per level by each level's verifying CacheContents.
//
// Cost model: a hierarchy access always pays `probe_cost` of level 0; each
// level that misses pays its `miss_penalty` (the latency of going one level
// further down). `amat()` is total cost / accesses.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "core/trace.hpp"

namespace gcaching::hierarchy {

struct LevelConfig {
  std::string name;          ///< display label, e.g. "L1" or "dram-cache"
  std::size_t capacity = 0;  ///< items
  std::string policy_spec;   ///< policies/factory.hpp spec
  /// Block partition this level loads subsets of — the transfer
  /// granularity of the level *below* it. Must cover the same universe at
  /// every level.
  std::shared_ptr<const BlockMap> map;
  /// Latency added when this level misses (fetch from the next level).
  double miss_penalty = 1.0;
};

/// Convenience: nested uniform partitions over one universe, e.g.
/// granularities {1, 32} = an L1 that loads single items over a DRAM cache
/// that loads subsets of 32-item rows.
std::vector<std::shared_ptr<const BlockMap>> nested_uniform_maps(
    std::size_t num_items, const std::vector<std::size_t>& granularities);

class HierarchySimulator {
 public:
  /// `probe_cost` is charged once per access (level-0 hit latency).
  explicit HierarchySimulator(std::vector<LevelConfig> levels,
                              double probe_cost = 1.0);

  /// Serve one request through the whole hierarchy.
  void access(ItemId item);
  void run(const Trace& trace);

  std::size_t num_levels() const noexcept { return levels_.size(); }
  const LevelConfig& level(std::size_t l) const { return levels_[l]; }
  const SimStats& level_stats(std::size_t l) const;

  std::uint64_t accesses() const noexcept { return accesses_; }
  /// Total cost under the latency model.
  double total_cost() const;
  /// Average memory access time = total_cost / accesses.
  double amat() const;
  /// Fraction of accesses served by level l (a miss at every level is
  /// "served by memory" and not counted here).
  double hit_share(std::size_t l) const;

 private:
  std::vector<LevelConfig> levels_;
  double probe_cost_;
  std::vector<std::unique_ptr<ReplacementPolicy>> policies_;
  std::vector<std::unique_ptr<Simulation>> sims_;
  std::uint64_t accesses_ = 0;
};

}  // namespace gcaching::hierarchy
