#include "hierarchy/hierarchy.hpp"

#include "policies/factory.hpp"
#include "util/contracts.hpp"

namespace gcaching::hierarchy {

std::vector<std::shared_ptr<const BlockMap>> nested_uniform_maps(
    std::size_t num_items, const std::vector<std::size_t>& granularities) {
  GC_REQUIRE(!granularities.empty(), "need at least one granularity");
  std::vector<std::shared_ptr<const BlockMap>> out;
  out.reserve(granularities.size());
  for (std::size_t g : granularities) {
    GC_REQUIRE(g >= 1, "granularities must be positive");
    out.push_back(make_uniform_blocks(num_items, g));
  }
  return out;
}

HierarchySimulator::HierarchySimulator(std::vector<LevelConfig> levels,
                                       double probe_cost)
    : levels_(std::move(levels)), probe_cost_(probe_cost) {
  GC_REQUIRE(!levels_.empty(), "hierarchy needs at least one level");
  const std::size_t universe = levels_.front().map
                                   ? levels_.front().map->num_items()
                                   : 0;
  GC_REQUIRE(universe > 0, "levels need block maps");
  for (const auto& cfg : levels_) {
    GC_REQUIRE(cfg.map != nullptr, "level missing its block map");
    GC_REQUIRE(cfg.map->num_items() == universe,
               "all levels must share one item universe");
    GC_REQUIRE(cfg.capacity >= 1, "level capacity must be positive");
    GC_REQUIRE(cfg.miss_penalty >= 0.0, "miss penalty must be non-negative");
  }
  policies_.reserve(levels_.size());
  sims_.reserve(levels_.size());
  for (const auto& cfg : levels_) {
    policies_.push_back(make_policy(cfg.policy_spec, cfg.capacity));
    sims_.push_back(std::make_unique<Simulation>(*cfg.map, *policies_.back(),
                                                 cfg.capacity));
  }
}

void HierarchySimulator::access(ItemId item) {
  ++accesses_;
  for (std::size_t l = 0; l < levels_.size(); ++l) {
    const bool hit = sims_[l]->cache().contains(item);
    sims_[l]->access(item);  // probe + (on miss) this level's fill policy
    if (hit) return;         // served here; lower levels never see it
  }
  // Missed everywhere: served by memory; every level already filled.
}

void HierarchySimulator::run(const Trace& trace) {
  for (ItemId it : trace) access(it);
}

const SimStats& HierarchySimulator::level_stats(std::size_t l) const {
  GC_REQUIRE(l < sims_.size(), "level index out of range");
  return sims_[l]->stats();
}

double HierarchySimulator::total_cost() const {
  double cost = probe_cost_ * static_cast<double>(accesses_);
  for (std::size_t l = 0; l < levels_.size(); ++l)
    cost += levels_[l].miss_penalty *
            static_cast<double>(sims_[l]->stats().misses);
  return cost;
}

double HierarchySimulator::amat() const {
  return accesses_ == 0 ? 0.0
                        : total_cost() / static_cast<double>(accesses_);
}

double HierarchySimulator::hit_share(std::size_t l) const {
  GC_REQUIRE(l < sims_.size(), "level index out of range");
  if (accesses_ == 0) return 0.0;
  return static_cast<double>(sims_[l]->stats().hits) /
         static_cast<double>(accesses_);
}

}  // namespace gcaching::hierarchy
