// The Theorem 1 reduction: variable-size caching -> GC caching.
//
// For each variable-size item v of (integral) size z_v, create one block
// whose *active set* is z_v items (block capacity B >= max z). Each access
// to v becomes z_v round-robin passes over the active set (z_v^2 accesses):
// the repetition forces any optimal schedule to load and evict active sets
// atomically, so the optimal GC cost equals the optimal variable-size fault
// count (Figure 2). The GC cache size equals the variable-size capacity.
#pragma once

#include <vector>

#include "core/trace.hpp"
#include "vscache/vs_instance.hpp"

namespace gcaching::traces {

struct ReducedInstance {
  Workload workload;          ///< GC workload produced by the reduction
  std::size_t capacity = 0;   ///< GC cache size (== vs capacity)
  /// vs item v's active set is block `block_of_vs_item[v]` of workload.map.
  std::vector<BlockId> block_of_vs_item;
};

/// Builds the GC instance of Theorem 1. `block_capacity` must be >= the
/// largest item size (0 = use exactly that maximum).
ReducedInstance reduce_vs_to_gc(const vscache::VsInstance& instance,
                                const vscache::VsTrace& trace,
                                std::size_t block_capacity = 0);

}  // namespace gcaching::traces
