// Traces for the locality-of-reference model (Section 7).
//
// Two kinds:
//   * `run_locality_adversary` — the Theorem 8 lower-bound construction,
//     executed adaptively against a live policy: k+1 items in as few blocks
//     as g allows, phases of f^{-1}(k+1)-2 accesses split into k-1
//     repetitions whose boundaries follow f, each repetition pinned to an
//     item the online cache is missing (subject to the phase's block
//     budget g(p)).
//   * `stack_distance_workload` — a *non-adaptive* stochastic generator
//     whose measured f(n) approximates a power law c n^{1/p} and whose
//     spatial-locality ratio f/g approximates `gamma`, for empirically
//     validating the Theorem 9-11 upper bounds. The profile is meant to be
//     *measured* afterwards (locality/window_profile.hpp), not assumed.
#pragma once

#include <cstdint>

#include "bounds/locality_bounds.hpp"
#include "core/policy.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace gcaching::traces {

struct LocalityAdversaryResult {
  Workload workload;
  SimStats online;
  std::size_t warmup_length = 0;  ///< leading accesses not f-consistent
  double fault_rate = 0.0;     ///< online misses / accesses (post warmup)
  double bound = 0.0;          ///< Theorem 8 lower bound for comparison
};

/// Runs the Theorem 8 construction against `policy` with cache size k and
/// locality functions f, g (g also determines the number of blocks used).
/// `phases` phases are generated after a warmup pass over the k+1 items.
LocalityAdversaryResult run_locality_adversary(
    ReplacementPolicy& policy, std::size_t k, std::size_t B,
    const bounds::LocalityFunction& f, const bounds::LocalityFunction& g,
    std::size_t phases);

/// Stochastic trace whose LRU stack-distance tail is a power law chosen so
/// the working set grows like n^{1/p}; block structure is visited so that
/// roughly `gamma` distinct items of a block are touched per block episode
/// (f/g ~ gamma). Measure the real profile with compute_profile().
Workload stack_distance_workload(std::size_t num_blocks,
                                 std::size_t block_size, double p,
                                 double gamma, std::size_t length,
                                 std::uint64_t seed);

}  // namespace gcaching::traces
