// Synthetic workload generators.
//
// These are the "realistic scenario" traces for examples and empirical
// benches: Zipf popularity (with and without block-level spatial locality),
// scans, phased working sets, and the pollution workload that defeats Block
// Caches. All generators are deterministic given their seed.
#pragma once

#include <cstdint>

#include "core/trace.hpp"

namespace gcaching::traces {

/// Zipf-popular items, blocks assigned by address: item popularity ignores
/// block structure, so spatial locality is incidental.
Workload zipf_items(std::size_t num_items, std::size_t block_size,
                    std::size_t length, double theta, std::uint64_t seed);

/// Zipf popularity with rank-scrambled item ids: popularity rank r is mapped
/// through a seeded Fisher-Yates permutation before becoming an item id, so
/// hot items land in uniformly random blocks instead of packing into the
/// first few. This is the workload spatial sampling (locality/sample.hpp)
/// is designed for — zipf_items concentrates ~theta-dependent mass in block
/// 0, which no block-level sampler can estimate at low rates.
Workload zipf_scramble(std::size_t num_items, std::size_t block_size,
                       std::size_t length, double theta, std::uint64_t seed);

/// Zipf-popular *blocks*; each block visit touches `span` consecutive items
/// of the block starting at a per-visit random offset. `span = 1` gives no
/// intra-block locality; `span = B` gives maximal.
Workload zipf_blocks(std::size_t num_blocks, std::size_t block_size,
                     std::size_t length, double theta, std::size_t span,
                     std::uint64_t seed);

/// Pure sequential sweep over the whole universe (wraps around): maximal
/// spatial locality, zero temporal locality until the wrap.
Workload sequential_scan(std::size_t num_items, std::size_t block_size,
                         std::size_t length);

/// Strided sweep; stride >= B touches one item per block (worst case for
/// whole-block loading).
Workload strided_scan(std::size_t num_items, std::size_t block_size,
                      std::size_t length, std::size_t stride);

/// Phased working sets: each phase draws `working_set` random items and
/// accesses them uniformly for `phase_length` accesses.
Workload working_set_phases(std::size_t num_items, std::size_t block_size,
                            std::size_t length, std::size_t working_set,
                            std::size_t phase_length, std::uint64_t seed);

/// The Block-Cache pollution workload: exactly one hot item per block, hit
/// repeatedly with uniform popularity over `hot_blocks` blocks; with
/// probability `cold_fraction` an access instead touches a random cold
/// sibling (same block, different item).
Workload hot_item_per_block(std::size_t num_blocks, std::size_t block_size,
                            std::size_t length, std::size_t hot_blocks,
                            double cold_fraction, std::uint64_t seed);

/// Mixture: with probability `scan_fraction` continue a sequential scan
/// cursor; otherwise draw from zipf_blocks-style popularity. Models a
/// database mixing index lookups with table scans.
Workload scan_with_hotset(std::size_t num_blocks, std::size_t block_size,
                          std::size_t length, double scan_fraction,
                          double theta, std::size_t span, std::uint64_t seed);

/// Pointer chasing over a fixed random successor graph: each item's
/// successor is within the same block with probability `intra_block`
/// (the spatial-locality knob), uniform elsewhere otherwise; the walk
/// restarts at a uniform item with probability `restart`. Models linked
/// data structures laid out with varying cache-consciousness
/// (Calder et al. / Chilimbi et al., cited in Section 1).
Workload pointer_chase(std::size_t num_blocks, std::size_t block_size,
                       std::size_t length, double intra_block,
                       double restart, std::uint64_t seed);

}  // namespace gcaching::traces
