#include "traces/layout.hpp"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace gcaching::traces {

std::shared_ptr<BlockMap> random_layout(std::size_t num_items,
                                        std::size_t block_size,
                                        std::uint64_t seed) {
  GC_REQUIRE(num_items >= 1 && block_size >= 1, "invalid layout geometry");
  std::vector<ItemId> ids(num_items);
  for (std::size_t j = 0; j < num_items; ++j)
    ids[j] = static_cast<ItemId>(j);
  SplitMix64 rng(seed);
  for (std::size_t j = num_items; j > 1; --j)
    std::swap(ids[j - 1], ids[rng.below(j)]);
  std::vector<std::vector<ItemId>> blocks;
  for (std::size_t j = 0; j < num_items; j += block_size)
    blocks.emplace_back(ids.begin() + static_cast<std::ptrdiff_t>(j),
                        ids.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(j + block_size,
                                                   num_items)));
  return std::make_shared<ExplicitBlockMap>(std::move(blocks));
}

std::shared_ptr<BlockMap> affinity_layout(const Trace& trace,
                                          std::size_t num_items,
                                          std::size_t block_size,
                                          std::size_t window) {
  GC_REQUIRE(num_items >= 1 && block_size >= 1, "invalid layout geometry");
  GC_REQUIRE(window >= 1, "window must be positive");

  // 1. Count pair affinities within the window (unordered pairs).
  std::unordered_map<std::uint64_t, std::uint64_t> affinity;
  const auto key = [](ItemId a, ItemId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  for (std::size_t p = 0; p < trace.size(); ++p) {
    const std::size_t end = std::min(trace.size(), p + window + 1);
    for (std::size_t q = p + 1; q < end; ++q) {
      if (trace[p] == trace[q]) continue;
      ++affinity[key(trace[p], trace[q])];
    }
  }

  // 2. Sort edges by descending affinity (stable tie-break by key so the
  //    layout is deterministic).
  struct Edge {
    std::uint64_t count;
    std::uint64_t pair;
  };
  std::vector<Edge> edges;
  edges.reserve(affinity.size());
  for (const auto& [pair, count] : affinity) edges.push_back({count, pair});
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.pair < b.pair;
  });

  // 3. Union-find agglomeration with a block-size cap.
  std::vector<ItemId> parent(num_items);
  std::vector<std::uint32_t> size(num_items, 1);
  for (std::size_t j = 0; j < num_items; ++j)
    parent[j] = static_cast<ItemId>(j);
  std::function<ItemId(ItemId)> find = [&](ItemId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    const ItemId a = find(static_cast<ItemId>(e.pair >> 32));
    const ItemId b = find(static_cast<ItemId>(e.pair & 0xffffffffu));
    if (a == b) continue;
    if (size[a] + size[b] > block_size) continue;
    parent[b] = a;
    size[a] += size[b];
  }

  // 4. Emit clusters as blocks; pack sub-capacity clusters together
  //    (first-fit over still-open blocks) so the block count stays near
  //    num_items / block_size. Open blocks are tracked explicitly so the
  //    common singleton-heavy case packs in near-linear time.
  std::unordered_map<ItemId, std::size_t> block_of_root;
  std::vector<std::vector<ItemId>> blocks;
  std::vector<std::size_t> reserved;  // committed cluster size per block
  std::vector<std::size_t> open;      // indices with reserved < block_size
  for (std::size_t j = 0; j < num_items; ++j) {
    const ItemId root = find(static_cast<ItemId>(j));
    const auto it = block_of_root.find(root);
    if (it != block_of_root.end()) {
      blocks[it->second].push_back(static_cast<ItemId>(j));
      continue;
    }
    std::size_t target = ~std::size_t{0};
    for (std::size_t o = 0; o < open.size(); ++o) {
      const std::size_t bidx = open[o];
      if (reserved[bidx] + size[root] <= block_size) {
        target = bidx;
        break;
      }
    }
    if (target == ~std::size_t{0}) {
      target = blocks.size();
      blocks.emplace_back();
      reserved.push_back(0);
      open.push_back(target);
    }
    block_of_root[root] = target;
    reserved[target] += size[root];
    blocks[target].push_back(static_cast<ItemId>(j));
    if (reserved[target] == block_size) {
      const auto pos = std::find(open.begin(), open.end(), target);
      if (pos != open.end()) {
        *pos = open.back();
        open.pop_back();
      }
    }
  }
  return std::make_shared<ExplicitBlockMap>(std::move(blocks));
}

Workload with_layout(const Workload& workload,
                     std::shared_ptr<BlockMap> map, std::string label) {
  GC_REQUIRE(map != nullptr, "layout needs a map");
  GC_REQUIRE(map->num_items() >= workload.map->num_items(),
             "new layout must cover the workload's universe");
  Workload out;
  out.map = std::move(map);
  out.trace = workload.trace;
  out.name = workload.name + " [" + std::move(label) + "]";
  return out;
}

}  // namespace gcaching::traces
