#include "traces/locality_trace.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_set>

#include "core/simulator.hpp"
#include "util/contracts.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"

namespace gcaching::traces {

LocalityAdversaryResult run_locality_adversary(
    ReplacementPolicy& policy, std::size_t k, std::size_t B,
    const bounds::LocalityFunction& f, const bounds::LocalityFunction& g,
    std::size_t phases) {
  GC_REQUIRE(k >= 2 && B >= 1 && phases >= 1, "invalid adversary geometry");
  const double kd = static_cast<double>(k);
  const double Lraw = f.inverse(kd + 1.0) - 2.0;
  GC_REQUIRE(Lraw >= static_cast<double>(k),
             "phase must be at least k accesses: pick a flatter f");
  const std::size_t L = static_cast<std::size_t>(Lraw);

  // k+1 items in as few blocks as g allows (but block size <= B).
  const std::size_t min_blocks = ceil_div(k + 1, B);
  const std::size_t g_blocks = static_cast<std::size_t>(
      std::max(1.0, std::floor(g.value(static_cast<double>(L)))));
  const std::size_t m = std::min(k + 1, std::max(min_blocks, g_blocks));

  // Distribute the k+1 items over m blocks as evenly as possible.
  std::vector<std::vector<ItemId>> blocks(m);
  for (std::size_t it = 0; it <= k; ++it)
    blocks[it % m].push_back(static_cast<ItemId>(it));
  auto map = std::make_shared<ExplicitBlockMap>(std::move(blocks));
  GC_REQUIRE(map->max_block_size() <= B, "block-size bound violated");

  Simulation sim(*map, policy, k);
  Trace trace;
  trace.reserve((phases + 1) * L);
  auto access = [&](ItemId it) {
    sim.access(it);
    trace.push(it);
  };

  // Warmup: one pass over all k+1 items.
  for (ItemId it = 0; it <= static_cast<ItemId>(k); ++it) access(it);
  const std::uint64_t warm_misses = sim.stats().misses;
  const std::uint64_t warm_accesses = sim.stats().accesses;

  // Repetition boundaries within a phase, derived from f as in the proof:
  // repetition j (1-based) starts at access ceil(f^{-1}(j+1)) - 1.
  std::vector<std::size_t> starts;
  starts.reserve(k - 1);
  for (std::size_t j = 1; j <= k - 1; ++j) {
    const double s = f.inverse(static_cast<double>(j) + 1.0) - 1.0;
    std::size_t start = static_cast<std::size_t>(std::max(0.0, std::ceil(s)));
    if (!starts.empty()) start = std::max(start, starts.back() + 1);
    if (start >= L) break;  // later repetitions would be empty
    starts.push_back(start);
  }

  const std::size_t block_budget = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::floor(g.value(static_cast<double>(L)))));

  for (std::size_t phase = 0; phase < phases; ++phase) {
    std::unordered_set<BlockId> used_blocks;
    std::size_t emitted = 0;
    for (std::size_t j = 0; j < starts.size() && emitted < L; ++j) {
      const std::size_t end =
          (j + 1 < starts.size()) ? starts[j + 1] : L;
      // Pick the repetition's item: prefer an absent item whose block is
      // already in this phase's working set of blocks; otherwise spend the
      // g-budget on a new block; otherwise take any absent item.
      ItemId chosen = kInvalidItem;
      ItemId absent_new_block = kInvalidItem;
      for (ItemId it = 0; it <= static_cast<ItemId>(k); ++it) {
        if (sim.cache().contains(it)) continue;
        if (used_blocks.count(map->block_of(it)) > 0) {
          chosen = it;
          break;
        }
        if (absent_new_block == kInvalidItem) absent_new_block = it;
      }
      if (chosen == kInvalidItem) {
        // All absent items are in fresh blocks (or none absent, which is
        // impossible with k+1 items and capacity k).
        GC_CHECK(absent_new_block != kInvalidItem,
                 "k+1 items cannot all be resident in a size-k cache");
        chosen = absent_new_block;
        (void)block_budget;  // budget is advisory; profile is re-measured
      }
      used_blocks.insert(map->block_of(chosen));
      for (std::size_t t = starts[j]; t < end && emitted < L; ++t) {
        access(chosen);
        ++emitted;
      }
    }
  }

  LocalityAdversaryResult res;
  res.workload.map = map;
  res.workload.trace = std::move(trace);
  std::ostringstream nm;
  nm << "thm8-adversary(k=" << k << ",B=" << B << ")";
  res.workload.name = nm.str();
  res.online = sim.stats();
  res.warmup_length = static_cast<std::size_t>(warm_accesses);
  const std::uint64_t steady_misses = res.online.misses - warm_misses;
  const std::uint64_t steady_accesses = res.online.accesses - warm_accesses;
  res.fault_rate = steady_accesses == 0
                       ? 0.0
                       : static_cast<double>(steady_misses) /
                             static_cast<double>(steady_accesses);
  res.bound = bounds::fault_rate_lower(f, g, kd);
  return res;
}

Workload stack_distance_workload(std::size_t num_blocks,
                                 std::size_t block_size, double p,
                                 double gamma, std::size_t length,
                                 std::uint64_t seed) {
  GC_REQUIRE(num_blocks >= 2 && block_size >= 1, "invalid universe");
  GC_REQUIRE(p >= 1.0, "p must be >= 1");
  GC_REQUIRE(gamma >= 1.0 && gamma <= static_cast<double>(block_size),
             "gamma must be in [1, B]");
  std::ostringstream nm;
  nm << "stack-distance(m=" << num_blocks << ",B=" << block_size
     << ",p=" << p << ",gamma=" << gamma << ")";
  Workload w;
  w.map = make_uniform_blocks(num_blocks * block_size, block_size);
  w.name = nm.str();
  w.trace.reserve(length);

  SplitMix64 rng(seed);
  const std::size_t span = std::min<std::size_t>(
      block_size,
      std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(gamma))));

  std::vector<BlockId> stack;  // back = most recent
  stack.reserve(num_blocks);
  std::size_t next_fresh = 0;

  // Stack-distance tail P(D > d) = d^{-(p-1)/p} gives working sets growing
  // roughly like n^{1/p} (heavier tails => faster working-set growth).
  const double tail = (p - 1.0) / p;
  auto sample_depth = [&]() -> std::size_t {
    if (tail <= 1e-9) return ~std::size_t{0};  // p ~ 1: always a new block
    const double u = std::max(1e-12, rng.uniform01());
    const double d = std::pow(u, -1.0 / tail);
    if (d >= 1e15) return ~std::size_t{0};
    return static_cast<std::size_t>(d);
  };

  while (w.trace.size() < length) {
    const std::size_t depth = sample_depth();
    BlockId blk;
    if (depth > stack.size()) {
      if (next_fresh < num_blocks) {
        blk = static_cast<BlockId>(next_fresh++);
      } else {
        blk = stack.front();  // universe exhausted: recycle the coldest
        stack.erase(stack.begin());
      }
    } else {
      const std::size_t idx = stack.size() - depth;  // depth 1 = MRU
      blk = stack[idx];
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    stack.push_back(blk);
    // Touch the block's fixed `span`-item subset in order: per-block
    // distinct items stay ~gamma, so f/g ~ gamma.
    for (std::size_t j = 0; j < span && w.trace.size() < length; ++j)
      w.trace.push(
          static_cast<ItemId>(static_cast<std::size_t>(blk) * block_size + j));
  }
  return w;
}

}  // namespace gcaching::traces
