#include "traces/compose.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace gcaching::traces {

namespace {

void require_same_map(const Workload& a, const Workload& b) {
  GC_REQUIRE(a.map != nullptr && b.map != nullptr, "workloads need maps");
  GC_REQUIRE(a.map == b.map, "composition requires a shared BlockMap");
}

}  // namespace

Workload interleave(const Workload& a, const Workload& b,
                    std::size_t chunk_a, std::size_t chunk_b) {
  require_same_map(a, b);
  GC_REQUIRE(chunk_a >= 1 && chunk_b >= 1, "chunks must be positive");
  Workload out;
  out.map = a.map;
  out.name = "interleave(" + a.name + " x" + std::to_string(chunk_a) + ", " +
             b.name + " x" + std::to_string(chunk_b) + ")";
  out.trace.reserve(a.trace.size() + b.trace.size());
  std::size_t pa = 0, pb = 0;
  while (pa < a.trace.size() || pb < b.trace.size()) {
    for (std::size_t j = 0; j < chunk_a && pa < a.trace.size(); ++j)
      out.trace.push(a.trace[pa++]);
    for (std::size_t j = 0; j < chunk_b && pb < b.trace.size(); ++j)
      out.trace.push(b.trace[pb++]);
  }
  return out;
}

Workload concat(const Workload& a, const Workload& b) {
  require_same_map(a, b);
  Workload out;
  out.map = a.map;
  out.name = "concat(" + a.name + ", " + b.name + ")";
  out.trace = a.trace;
  out.trace.append(b.trace);
  return out;
}

Workload repeat(const Workload& w, std::size_t times) {
  GC_REQUIRE(w.map != nullptr, "workload needs a map");
  GC_REQUIRE(times >= 1, "repeat count must be positive");
  Workload out;
  out.map = w.map;
  out.name = "repeat(" + w.name + ", x" + std::to_string(times) + ")";
  out.trace.reserve(w.trace.size() * times);
  for (std::size_t r = 0; r < times; ++r) out.trace.append(w.trace);
  return out;
}

Workload truncate(const Workload& w, std::size_t length) {
  GC_REQUIRE(w.map != nullptr, "workload needs a map");
  Workload out;
  out.map = w.map;
  out.name = "truncate(" + w.name + ", " + std::to_string(length) + ")";
  const std::size_t n = std::min(length, w.trace.size());
  out.trace.reserve(n);
  for (std::size_t p = 0; p < n; ++p) out.trace.push(w.trace[p]);
  return out;
}

}  // namespace gcaching::traces
