#include "traces/address_trace.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "util/contracts.hpp"
#include "util/mathx.hpp"

namespace gcaching::traces {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& detail) {
  throw std::runtime_error("address trace, line " +
                           std::to_string(line_no) + ": " + detail);
}

std::vector<std::string> split_line(const std::string& line, char delim) {
  std::vector<std::string> out;
  if (delim == ' ') {
    // Whitespace mode: collapse runs of spaces/tabs.
    std::istringstream is(line);
    std::string tok;
    while (is >> tok) out.push_back(tok);
    return out;
  }
  std::istringstream is(line);
  std::string tok;
  while (std::getline(is, tok, delim)) out.push_back(tok);
  return out;
}

std::uint64_t parse_u64(const std::string& s, std::size_t line_no) {
  try {
    if (s.rfind("0x", 0) == 0 || s.rfind("0X", 0) == 0)
      return std::stoull(s.substr(2), nullptr, 16);
    return std::stoull(s);
  } catch (const std::exception&) {
    fail(line_no, "cannot parse number: '" + s + "'");
  }
}

}  // namespace

Workload load_address_trace(std::istream& is,
                            const AddressTraceFormat& fmt) {
  GC_REQUIRE(fmt.item_bytes >= 1 && fmt.block_items >= 1,
             "invalid geometry");
  // First pass into raw (frame, offset) pairs with first-touch frame
  // renaming; frames are address-space blocks of block_items items.
  std::unordered_map<std::uint64_t, std::uint32_t> frame_of;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> raw;  // (frame, off)

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto fields = split_line(line, fmt.delimiter);
    if (fields.size() <= fmt.address_field)
      fail(line_no, "missing address field");
    const std::uint64_t address =
        parse_u64(fields[fmt.address_field], line_no);
    std::uint64_t bytes = fmt.item_bytes;
    if (fmt.has_size) {
      if (fields.size() <= fmt.size_field)
        fail(line_no, "missing size field");
      bytes = parse_u64(fields[fmt.size_field], line_no);
      if (bytes == 0) continue;  // zero-length records are no-ops
    }
    const std::uint64_t first_item = address / fmt.item_bytes;
    const std::uint64_t last_item = (address + bytes - 1) / fmt.item_bytes;
    for (std::uint64_t it = first_item; it <= last_item; ++it) {
      const std::uint64_t frame = it / fmt.block_items;
      const auto ins = frame_of.emplace(
          frame, static_cast<std::uint32_t>(frame_of.size()));
      raw.emplace_back(ins.first->second,
                       static_cast<std::uint32_t>(it % fmt.block_items));
    }
  }
  if (raw.empty())
    throw std::runtime_error("address trace contained no records");

  Workload w;
  const std::size_t num_blocks = frame_of.size();
  w.map = make_uniform_blocks(num_blocks * fmt.block_items,
                              fmt.block_items);
  w.trace.reserve(raw.size());
  for (const auto& [frame, off] : raw)
    w.trace.push(static_cast<ItemId>(
        static_cast<std::size_t>(frame) * fmt.block_items + off));
  std::ostringstream nm;
  nm << "address-trace(items=" << w.map->num_items()
     << ",B=" << fmt.block_items << ",line=" << fmt.item_bytes << "B)";
  w.name = nm.str();
  return w;
}

Workload load_address_trace_file(const std::string& path,
                                 const AddressTraceFormat& fmt) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open trace file: " + path);
  return load_address_trace(is, fmt);
}

}  // namespace gcaching::traces
