#include "traces/reduction.hpp"

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"

namespace gcaching::traces {

ReducedInstance reduce_vs_to_gc(const vscache::VsInstance& instance,
                                const vscache::VsTrace& trace,
                                std::size_t block_capacity) {
  instance.validate();
  const std::uint32_t max_size =
      *std::max_element(instance.sizes.begin(), instance.sizes.end());
  if (block_capacity == 0) block_capacity = max_size;
  GC_REQUIRE(block_capacity >= max_size,
             "block capacity must cover the largest item");

  // One block per variable-size item; its active set is z_v fresh GC items.
  // (The proof allows blocks padded up to B with never-accessed items; they
  // would be dead weight in the universe, so we materialize active sets
  // only — B is still `block_capacity` semantically.)
  ReducedInstance out;
  std::vector<std::vector<ItemId>> blocks;
  blocks.reserve(instance.num_items());
  out.block_of_vs_item.reserve(instance.num_items());
  ItemId next = 0;
  for (std::size_t v = 0; v < instance.num_items(); ++v) {
    std::vector<ItemId> active(instance.sizes[v]);
    for (auto& it : active) it = next++;
    out.block_of_vs_item.push_back(static_cast<BlockId>(blocks.size()));
    blocks.push_back(std::move(active));
  }
  auto map = std::make_shared<ExplicitBlockMap>(std::move(blocks));

  // z_v round-robin passes over the active set per variable-size access.
  Trace gc_trace;
  for (vscache::VsItemId v : trace) {
    GC_REQUIRE(v < instance.num_items(), "vs trace references unknown item");
    const auto active = map->items_of(out.block_of_vs_item[v]);
    const std::size_t z = active.size();
    for (std::size_t round = 0; round < z; ++round)
      for (ItemId it : active) gc_trace.push(it);
  }

  out.workload.map = std::move(map);
  out.workload.trace = std::move(gc_trace);
  std::ostringstream nm;
  nm << "thm1-reduction(vs_items=" << instance.num_items()
     << ",C=" << instance.capacity << ")";
  out.workload.name = nm.str();
  out.capacity = static_cast<std::size_t>(instance.capacity);
  return out;
}

}  // namespace gcaching::traces
