// Item-to-block layout: the other half of spatial locality.
//
// GC caching exploits spatial locality that the *data layout* creates; the
// paper's related work (cache-conscious placement — Calder et al., Chilimbi
// et al., Petrank & Rawitz) is about creating it. This module closes the
// loop: given an access trace, re-assign items to blocks and measure how
// much a GC-aware cache gains or loses.
//
//   * `random_layout`   — a worst-ish case: co-accessed items scattered.
//   * `affinity_layout` — greedy co-access clustering: count adjacent-pair
//     affinities within a small window, then agglomerate items into blocks
//     of at most B by descending affinity (union-find; Petrank & Rawitz
//     show optimal placement is hard, so greedy is the honest baseline).
//   * `with_layout`     — the same trace viewed under a different map.
#pragma once

#include <cstdint>
#include <memory>

#include "core/trace.hpp"

namespace gcaching::traces {

/// Uniformly random partition of `num_items` into blocks of exactly
/// `block_size` (last block may be smaller).
std::shared_ptr<BlockMap> random_layout(std::size_t num_items,
                                        std::size_t block_size,
                                        std::uint64_t seed);

/// Greedy affinity clustering: affinities are counted between items
/// appearing within `window` accesses of each other; clusters merge in
/// descending affinity order while both fit in one block.
std::shared_ptr<BlockMap> affinity_layout(const Trace& trace,
                                          std::size_t num_items,
                                          std::size_t block_size,
                                          std::size_t window = 2);

/// The workload's trace under a different item-to-block map.
Workload with_layout(const Workload& workload,
                     std::shared_ptr<BlockMap> map, std::string label);

}  // namespace gcaching::traces
