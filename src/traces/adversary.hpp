// Executable lower-bound constructions (Section 4).
//
// Each of Theorems 2-4 proves its bound with an adaptive adversarial trace:
// fill the caches, access fresh data the online cache must miss, then
// repeatedly request whatever the online cache chose not to keep. These
// harnesses *run* those constructions against a live policy:
//
//   * the next request is chosen by inspecting the online cache through the
//     verifying simulator, exactly as the proof prescribes;
//   * the prescribed offline cost is accounted phase by phase (one miss per
//     fresh block in step 2, zero in step 4), matching the proofs;
//   * the captured trace is returned so offline heuristics / exact solvers
//     can independently upper-bound OPT on it.
//
// Warmup accesses (getting both caches "full", the proofs' step 1) are
// excluded from the steady-state ratio; with enough phases they wash out of
// the total ratio too.
//
// Accuracy caveat: each proof's step 3 defines the candidate set from the
// *prescribed offline cache's* contents; the harness proxies those with the
// most-recently-accessed items. For the adversary's target policy class the
// proxy is exact (measured ratio == the theorem's ratio); against other
// policies the prescribed OPT cost can slightly understate the cheapest
// schedule actually available, so steady_ratio() is an upper estimate there.
#pragma once

#include <cstdint>
#include <memory>

#include "core/policy.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace gcaching::traces {

struct AdversaryOptions {
  std::size_t k = 0;       ///< online cache size
  std::size_t h = 0;       ///< prescribed offline cache size (h <= k)
  std::size_t B = 0;       ///< block size
  std::size_t phases = 8;  ///< adversarial rounds after warmup
};

struct AdversaryResult {
  Workload workload;                    ///< the captured trace
  SimStats online;                      ///< full-trace online stats
  std::uint64_t online_steady_misses = 0;  ///< misses after warmup
  std::uint64_t opt_misses = 0;            ///< prescribed OPT, incl. warmup
  std::uint64_t opt_steady_misses = 0;     ///< prescribed OPT after warmup
  std::uint64_t max_observed_a = 0;        ///< Theorem 4 harness only

  /// Steady-state competitive ratio estimate: online/OPT after warmup.
  double steady_ratio() const {
    return opt_steady_misses == 0
               ? 0.0
               : static_cast<double>(online_steady_misses) /
                     static_cast<double>(opt_steady_misses);
  }
};

/// Theorem 2 construction (worst case for Item Caches): step 2 accesses
/// whole fresh blocks item by item (k-h+1 accesses), step 4 makes h-B
/// requests to items absent from the online cache.
/// Requires B <= h <= k and k - h + 1 >= 1.
AdversaryResult run_item_adversary(ReplacementPolicy& policy,
                                   const AdversaryOptions& opts);

/// Theorem 3 construction (worst case for Block Caches): step 2 touches one
/// item in each of ceil(k/B) - h + 1 fresh blocks, step 4 makes h-1
/// requests to absent items drawn from ceil(k/B) + 1 candidates in distinct
/// blocks. Requires h <= ceil(k/B).
AdversaryResult run_block_adversary(ReplacementPolicy& policy,
                                    const AdversaryOptions& opts);

/// Theorem 4 construction (general): step 2 keeps requesting items of a
/// fresh block that the online cache has not loaded (measuring the policy's
/// effective `a` as it goes), step 4 makes h - a_max absent requests.
/// Requires h <= k.
AdversaryResult run_general_adversary(ReplacementPolicy& policy,
                                      const AdversaryOptions& opts);

}  // namespace gcaching::traces
