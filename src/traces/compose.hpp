// Workload composition: build complex traces out of simple ones.
//
// All operands must share one BlockMap (same universe and partition);
// composition never remaps ids, so provenance stays legible.
#pragma once

#include <cstddef>

#include "core/trace.hpp"

namespace gcaching::traces {

/// Round-robin interleave: take `chunk_a` accesses from `a`, then `chunk_b`
/// from `b`, repeating until both traces are exhausted (a shorter trace
/// simply stops contributing).
Workload interleave(const Workload& a, const Workload& b,
                    std::size_t chunk_a = 1, std::size_t chunk_b = 1);

/// a's trace followed by b's (phase change).
Workload concat(const Workload& a, const Workload& b);

/// The workload's trace repeated `times` times (looping workloads).
Workload repeat(const Workload& w, std::size_t times);

/// First `length` accesses of the workload.
Workload truncate(const Workload& w, std::size_t length);

}  // namespace gcaching::traces
