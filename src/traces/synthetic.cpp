#include "traces/synthetic.hpp"

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace gcaching::traces {

namespace {

Workload make_workload(std::size_t num_items, std::size_t block_size,
                       std::string name) {
  Workload w;
  w.map = make_uniform_blocks(num_items, block_size);
  w.name = std::move(name);
  return w;
}

}  // namespace

Workload zipf_items(std::size_t num_items, std::size_t block_size,
                    std::size_t length, double theta, std::uint64_t seed) {
  std::ostringstream nm;
  nm << "zipf-items(n=" << num_items << ",B=" << block_size
     << ",theta=" << theta << ")";
  Workload w = make_workload(num_items, block_size, nm.str());
  SplitMix64 rng(seed);
  ZipfSampler zipf(num_items, theta);
  w.trace.reserve(length);
  for (std::size_t t = 0; t < length; ++t)
    w.trace.push(static_cast<ItemId>(zipf(rng)));
  return w;
}

Workload zipf_scramble(std::size_t num_items, std::size_t block_size,
                       std::size_t length, double theta, std::uint64_t seed) {
  std::ostringstream nm;
  nm << "zipf-scramble(n=" << num_items << ",B=" << block_size
     << ",theta=" << theta << ")";
  Workload w = make_workload(num_items, block_size, nm.str());
  // Derive the permutation from its own stream so the popularity draw
  // sequence matches zipf_items with the same seed.
  std::vector<ItemId> perm(num_items);
  for (std::size_t i = 0; i < num_items; ++i)
    perm[i] = static_cast<ItemId>(i);
  SplitMix64 perm_rng(seed ^ 0x5ca3b1e5u);
  for (std::size_t i = num_items - 1; i > 0; --i)
    std::swap(perm[i], perm[perm_rng.below(i + 1)]);
  SplitMix64 rng(seed);
  ZipfSampler zipf(num_items, theta);
  w.trace.reserve(length);
  for (std::size_t t = 0; t < length; ++t)
    w.trace.push(perm[static_cast<std::size_t>(zipf(rng))]);
  return w;
}

Workload zipf_blocks(std::size_t num_blocks, std::size_t block_size,
                     std::size_t length, double theta, std::size_t span,
                     std::uint64_t seed) {
  GC_REQUIRE(span >= 1 && span <= block_size, "span must be in [1, B]");
  std::ostringstream nm;
  nm << "zipf-blocks(m=" << num_blocks << ",B=" << block_size
     << ",theta=" << theta << ",span=" << span << ")";
  Workload w =
      make_workload(num_blocks * block_size, block_size, nm.str());
  SplitMix64 rng(seed);
  ZipfSampler zipf(num_blocks, theta);
  w.trace.reserve(length);
  while (w.trace.size() < length) {
    const auto block = static_cast<std::size_t>(zipf(rng));
    const std::size_t offset =
        span == block_size ? 0
                           : static_cast<std::size_t>(
                                 rng.below(block_size - span + 1));
    for (std::size_t j = 0; j < span && w.trace.size() < length; ++j)
      w.trace.push(static_cast<ItemId>(block * block_size + offset + j));
  }
  return w;
}

Workload sequential_scan(std::size_t num_items, std::size_t block_size,
                         std::size_t length) {
  std::ostringstream nm;
  nm << "seq-scan(n=" << num_items << ",B=" << block_size << ")";
  Workload w = make_workload(num_items, block_size, nm.str());
  w.trace.reserve(length);
  for (std::size_t t = 0; t < length; ++t)
    w.trace.push(static_cast<ItemId>(t % num_items));
  return w;
}

Workload strided_scan(std::size_t num_items, std::size_t block_size,
                      std::size_t length, std::size_t stride) {
  GC_REQUIRE(stride >= 1, "stride must be positive");
  std::ostringstream nm;
  nm << "strided-scan(n=" << num_items << ",B=" << block_size
     << ",stride=" << stride << ")";
  Workload w = make_workload(num_items, block_size, nm.str());
  w.trace.reserve(length);
  std::size_t cursor = 0;
  for (std::size_t t = 0; t < length; ++t) {
    w.trace.push(static_cast<ItemId>(cursor));
    cursor = (cursor + stride) % num_items;
  }
  return w;
}

Workload working_set_phases(std::size_t num_items, std::size_t block_size,
                            std::size_t length, std::size_t working_set,
                            std::size_t phase_length, std::uint64_t seed) {
  GC_REQUIRE(working_set >= 1 && working_set <= num_items,
             "working set must fit the universe");
  GC_REQUIRE(phase_length >= 1, "phase length must be positive");
  std::ostringstream nm;
  nm << "ws-phases(n=" << num_items << ",B=" << block_size
     << ",ws=" << working_set << ",phase=" << phase_length << ")";
  Workload w = make_workload(num_items, block_size, nm.str());
  SplitMix64 rng(seed);
  w.trace.reserve(length);
  std::vector<ItemId> ws(working_set);
  std::size_t in_phase = phase_length;  // force initial draw
  while (w.trace.size() < length) {
    if (in_phase == phase_length) {
      for (auto& it : ws)
        it = static_cast<ItemId>(rng.below(num_items));
      in_phase = 0;
    }
    w.trace.push(ws[rng.below(ws.size())]);
    ++in_phase;
  }
  return w;
}

Workload hot_item_per_block(std::size_t num_blocks, std::size_t block_size,
                            std::size_t length, std::size_t hot_blocks,
                            double cold_fraction, std::uint64_t seed) {
  GC_REQUIRE(hot_blocks >= 1 && hot_blocks <= num_blocks,
             "hot blocks must fit the universe");
  GC_REQUIRE(cold_fraction >= 0.0 && cold_fraction <= 1.0,
             "cold fraction must be a probability");
  std::ostringstream nm;
  nm << "hot-item-per-block(m=" << num_blocks << ",B=" << block_size
     << ",hot=" << hot_blocks << ",cold=" << cold_fraction << ")";
  Workload w =
      make_workload(num_blocks * block_size, block_size, nm.str());
  SplitMix64 rng(seed);
  w.trace.reserve(length);
  for (std::size_t t = 0; t < length; ++t) {
    const std::size_t block = static_cast<std::size_t>(rng.below(hot_blocks));
    std::size_t within = 0;  // item 0 of each block is the hot one
    if (block_size > 1 && rng.chance(cold_fraction))
      within = 1 + static_cast<std::size_t>(rng.below(block_size - 1));
    w.trace.push(static_cast<ItemId>(block * block_size + within));
  }
  return w;
}

Workload scan_with_hotset(std::size_t num_blocks, std::size_t block_size,
                          std::size_t length, double scan_fraction,
                          double theta, std::size_t span,
                          std::uint64_t seed) {
  GC_REQUIRE(scan_fraction >= 0.0 && scan_fraction <= 1.0,
             "scan fraction must be a probability");
  GC_REQUIRE(span >= 1 && span <= block_size, "span must be in [1, B]");
  std::ostringstream nm;
  nm << "scan-with-hotset(m=" << num_blocks << ",B=" << block_size
     << ",scan=" << scan_fraction << ",theta=" << theta << ",span=" << span
     << ")";
  const std::size_t num_items = num_blocks * block_size;
  Workload w = make_workload(num_items, block_size, nm.str());
  SplitMix64 rng(seed);
  ZipfSampler zipf(num_blocks, theta);
  std::size_t scan_cursor = 0;
  w.trace.reserve(length);
  while (w.trace.size() < length) {
    if (rng.chance(scan_fraction)) {
      w.trace.push(static_cast<ItemId>(scan_cursor));
      scan_cursor = (scan_cursor + 1) % num_items;
    } else {
      const auto block = static_cast<std::size_t>(zipf(rng));
      const std::size_t offset =
          span == block_size ? 0
                             : static_cast<std::size_t>(
                                   rng.below(block_size - span + 1));
      for (std::size_t j = 0; j < span && w.trace.size() < length; ++j)
        w.trace.push(static_cast<ItemId>(block * block_size + offset + j));
    }
  }
  return w;
}

Workload pointer_chase(std::size_t num_blocks, std::size_t block_size,
                       std::size_t length, double intra_block,
                       double restart, std::uint64_t seed) {
  GC_REQUIRE(intra_block >= 0.0 && intra_block <= 1.0,
             "intra-block probability must be in [0, 1]");
  GC_REQUIRE(restart >= 0.0 && restart <= 1.0,
             "restart probability must be in [0, 1]");
  std::ostringstream nm;
  nm << "pointer-chase(m=" << num_blocks << ",B=" << block_size
     << ",intra=" << intra_block << ",restart=" << restart << ")";
  const std::size_t num_items = num_blocks * block_size;
  Workload w = make_workload(num_items, block_size, nm.str());
  SplitMix64 rng(seed);

  // Fixed successor graph: the data structure's layout.
  std::vector<ItemId> next(num_items);
  for (std::size_t it = 0; it < num_items; ++it) {
    if (block_size > 1 && rng.chance(intra_block)) {
      const std::size_t base = (it / block_size) * block_size;
      std::size_t succ;
      do {
        succ = base + static_cast<std::size_t>(rng.below(block_size));
      } while (succ == it);
      next[it] = static_cast<ItemId>(succ);
    } else {
      next[it] = static_cast<ItemId>(rng.below(num_items));
    }
  }

  // The walk.
  w.trace.reserve(length);
  ItemId cursor = 0;
  for (std::size_t t = 0; t < length; ++t) {
    w.trace.push(cursor);
    cursor = rng.chance(restart)
                 ? static_cast<ItemId>(rng.below(num_items))
                 : next[cursor];
  }
  return w;
}

}  // namespace gcaching::traces
