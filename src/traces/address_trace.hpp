// Importing real address traces.
//
// Storage/architecture trace formats (MSR-Cambridge, SNIA block traces,
// pin-tool dumps) reduce to (address, size) records. This importer turns
// them into GC workloads:
//   * addresses are split into items of `item_bytes`;
//   * a record of `size` bytes touches ceil(size / item_bytes) consecutive
//     items (one access each, in order);
//   * items are grouped into blocks of `block_items` by address — the
//     hardware's natural layout;
//   * the sparse address space is re-mapped to dense ids in first-touch
//     order, preserving intra-block adjacency.
//
// Accepted text format: one record per line,
//     <address> [size_bytes]
// with optional leading fields skipped via `skip_fields` (so
// "timestamp,host,disk,address,size,..." CSVs work by setting the
// delimiter and field positions). '#' lines are comments.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/trace.hpp"

namespace gcaching::traces {

struct AddressTraceFormat {
  char delimiter = ' ';          ///< field separator (',' for CSVs)
  std::size_t address_field = 0; ///< 0-based index of the address column
  std::size_t size_field = 1;    ///< index of the size column (optional)
  bool has_size = true;          ///< false: every record touches one item
  std::size_t item_bytes = 64;   ///< cache-line size
  std::size_t block_items = 32;  ///< items per block (e.g. a 2 KB row)
};

/// Parse an address trace from a stream. Throws std::runtime_error on
/// malformed records.
Workload load_address_trace(std::istream& is, const AddressTraceFormat& fmt);

/// File-path convenience wrapper.
Workload load_address_trace_file(const std::string& path,
                                 const AddressTraceFormat& fmt);

}  // namespace gcaching::traces
