#include "traces/adversary.hpp"

#include <unordered_set>

#include "core/simulator.hpp"
#include "policies/lru_list.hpp"
#include "util/contracts.hpp"
#include "util/mathx.hpp"

namespace gcaching::traces {

namespace {

/// Shared adversary machinery: drives the simulation, captures the trace,
/// tracks access recency (for choosing the "items in the optimal cache"
/// candidate sets), and hands out never-before-seen blocks.
class Harness {
 public:
  Harness(ReplacementPolicy& policy, const AdversaryOptions& opts,
          std::size_t universe_blocks)
      : opts_(opts),
        map_(make_uniform_blocks(universe_blocks * opts.B, opts.B)),
        sim_(*map_, policy, opts.k),
        recency_(map_->num_items()) {
    GC_REQUIRE(opts.h >= 1 && opts.h <= opts.k, "requires 1 <= h <= k");
    GC_REQUIRE(opts.B >= 1, "requires B >= 1");
    trace_.reserve(opts.phases * (opts.k + opts.h));
  }

  void access(ItemId item) {
    sim_.access(item);
    trace_.push(item);
    if (recency_.contains(item))
      recency_.move_to_front(item);
    else
      recency_.push_front(item);
  }

  /// Allocates the next never-accessed block.
  BlockId fresh_block() {
    GC_REQUIRE(next_block_ < map_->num_blocks(), "universe exhausted");
    return next_block_++;
  }

  bool absent(ItemId item) const { return !sim_.cache().contains(item); }

  /// The h most-recently-accessed distinct items (proof step 3's "items in
  /// the optimal cache during step one" proxy).
  std::vector<ItemId> recent_items(std::size_t count) const {
    std::vector<ItemId> out;
    const auto order = recency_.to_vector();
    for (ItemId it : order) {
      out.push_back(it);
      if (out.size() == count) break;
    }
    return out;
  }

  /// Most-recent items from `count` distinct blocks (Theorem 3 needs each
  /// candidate in a different block).
  std::vector<ItemId> recent_items_distinct_blocks(std::size_t count) const {
    std::vector<ItemId> out;
    std::unordered_set<BlockId> used;
    const auto order = recency_.to_vector();
    for (ItemId it : order) {
      const BlockId b = map_->block_of(it);
      if (used.insert(b).second) {
        out.push_back(it);
        if (out.size() == count) break;
      }
    }
    return out;
  }

  /// Step 4: request an item from `candidates` that the online cache does
  /// not hold; if the policy managed to keep all of them (possible when it
  /// is not of the class the construction targets), request the first one.
  void absent_request(const std::vector<ItemId>& candidates) {
    for (ItemId it : candidates) {
      if (absent(it)) {
        access(it);
        return;
      }
    }
    GC_REQUIRE(!candidates.empty(), "no candidates for step 4");
    access(candidates.front());
  }

  /// Warmup: k fresh-item accesses so the online cache is (approximately)
  /// full. Returns the prescribed OPT cost (one per block touched).
  std::uint64_t warmup() {
    std::uint64_t opt = 0;
    std::size_t accessed = 0;
    while (accessed < opts_.k) {
      const BlockId blk = fresh_block();
      ++opt;
      for (ItemId it : map_->items_of(blk)) {
        access(it);
        if (++accessed == opts_.k) break;
      }
    }
    return opt;
  }

  AdversaryResult finish(std::uint64_t opt_total, std::uint64_t opt_steady,
                         std::uint64_t warmup_misses,
                         std::uint64_t max_a = 0) {
    AdversaryResult res;
    res.workload.map = map_;
    res.workload.trace = std::move(trace_);
    res.online = sim_.stats();
    res.online_steady_misses = res.online.misses - warmup_misses;
    res.opt_misses = opt_total;
    res.opt_steady_misses = opt_steady;
    res.max_observed_a = max_a;
    return res;
  }

  const AdversaryOptions& opts() const { return opts_; }
  const BlockMap& map() const { return *map_; }
  const Simulation& sim() const { return sim_; }
  std::uint64_t online_misses() const { return sim_.stats().misses; }

 private:
  AdversaryOptions opts_;
  std::shared_ptr<BlockMap> map_;
  Simulation sim_;
  IndexedList recency_;
  Trace trace_;
  BlockId next_block_ = 0;
};

}  // namespace

AdversaryResult run_item_adversary(ReplacementPolicy& policy,
                                   const AdversaryOptions& opts) {
  GC_REQUIRE(opts.B <= opts.h, "Theorem 2 needs h >= B");
  GC_REQUIRE(opts.k >= opts.h, "requires k >= h");
  const std::size_t step2_accesses = opts.k - opts.h + 1;
  const std::size_t blocks_per_phase = ceil_div(step2_accesses, opts.B);
  const std::size_t universe_blocks =
      ceil_div(opts.k, opts.B) + 1 + opts.phases * blocks_per_phase + 2;

  Harness hx(policy, opts, universe_blocks);
  std::uint64_t opt = hx.warmup();
  const std::uint64_t warmup_misses = hx.online_misses();
  std::uint64_t opt_steady = 0;

  for (std::size_t phase = 0; phase < opts.phases; ++phase) {
    // Step 3 candidates part 1: the h most recent items (OPT's contents).
    std::vector<ItemId> candidates = hx.recent_items(opts.h);
    // Step 2: whole fresh blocks, item by item, k-h+1 accesses.
    std::size_t accessed = 0;
    while (accessed < step2_accesses) {
      const BlockId blk = hx.fresh_block();
      ++opt;
      ++opt_steady;
      for (ItemId it : hx.map().items_of(blk)) {
        hx.access(it);
        candidates.push_back(it);
        if (++accessed == step2_accesses) break;
      }
    }
    // Step 4: h-B requests to items absent from the online cache.
    for (std::size_t j = 0; j + opts.B < opts.h; ++j)
      hx.absent_request(candidates);
  }
  return hx.finish(opt, opt_steady, warmup_misses);
}

AdversaryResult run_block_adversary(ReplacementPolicy& policy,
                                    const AdversaryOptions& opts) {
  const std::size_t blocks_in_cache = ceil_div(opts.k, opts.B);
  GC_REQUIRE(opts.h <= blocks_in_cache, "Theorem 3 needs h <= ceil(k/B)");
  const std::size_t blocks_per_phase = blocks_in_cache - opts.h + 1;
  const std::size_t universe_blocks =
      ceil_div(opts.k, opts.B) + 1 + opts.phases * blocks_per_phase + 2;

  Harness hx(policy, opts, universe_blocks);
  std::uint64_t opt = hx.warmup();
  const std::uint64_t warmup_misses = hx.online_misses();
  std::uint64_t opt_steady = 0;

  for (std::size_t phase = 0; phase < opts.phases; ++phase) {
    // Candidates part 1: h recent items from distinct blocks.
    std::vector<ItemId> candidates =
        hx.recent_items_distinct_blocks(opts.h);
    // Step 2: one item from each fresh block.
    for (std::size_t j = 0; j < blocks_per_phase; ++j) {
      const BlockId blk = hx.fresh_block();
      const ItemId first = hx.map().items_of(blk).front();
      hx.access(first);
      candidates.push_back(first);
      ++opt;
      ++opt_steady;
    }
    // Step 4: h-1 absent requests.
    for (std::size_t j = 0; j + 1 < opts.h; ++j)
      hx.absent_request(candidates);
  }
  return hx.finish(opt, opt_steady, warmup_misses);
}

AdversaryResult run_general_adversary(ReplacementPolicy& policy,
                                      const AdversaryOptions& opts) {
  GC_REQUIRE(opts.k >= opts.h, "requires k >= h");
  const std::size_t step2_accesses = opts.k - opts.h + 1;
  const std::size_t blocks_per_phase = ceil_div(step2_accesses, opts.B);
  const std::size_t universe_blocks =
      ceil_div(opts.k, opts.B) + 1 + opts.phases * blocks_per_phase + 2;

  Harness hx(policy, opts, universe_blocks);
  std::uint64_t opt = hx.warmup();
  const std::uint64_t warmup_misses = hx.online_misses();
  std::uint64_t opt_steady = 0;
  std::uint64_t max_a_overall = 0;

  for (std::size_t phase = 0; phase < opts.phases; ++phase) {
    std::vector<ItemId> candidates = hx.recent_items(opts.h);
    std::size_t max_a = 1;
    // Step 2: for each fresh block, keep requesting items the online cache
    // has not loaded; stop when the whole block is resident.
    for (std::size_t j = 0; j < blocks_per_phase; ++j) {
      const BlockId blk = hx.fresh_block();
      ++opt;
      ++opt_steady;
      std::size_t a_here = 0;
      for (;;) {
        ItemId target = kInvalidItem;
        for (ItemId it : hx.map().items_of(blk)) {
          if (hx.absent(it)) {
            target = it;
            break;
          }
        }
        if (target == kInvalidItem) break;  // whole block loaded
        hx.access(target);
        if (++a_here >= opts.B) break;  // at most B distinct items exist
      }
      // Step 3's candidate set contains *all* items of the step-2 blocks
      // (accessed or side-loaded), not just the requested ones.
      for (ItemId it : hx.map().items_of(blk)) candidates.push_back(it);
      max_a = std::max(max_a, a_here);
    }
    max_a_overall = std::max<std::uint64_t>(max_a_overall, max_a);
    // Step 4: h - a absent requests (OPT reserves a slots for step 2).
    for (std::size_t j = 0; j + max_a < opts.h; ++j)
      hx.absent_request(candidates);
  }
  return hx.finish(opt, opt_steady, warmup_misses, max_a_overall);
}

}  // namespace gcaching::traces
