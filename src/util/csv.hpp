// Minimal CSV emission for machine-readable bench output.
//
// Benches write one CSV per reproduced table/figure when given `--csv DIR`,
// so the series can be re-plotted externally. Quoting follows RFC 4180.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace gcaching {

class CsvWriter {
 public:
  /// Open (truncate) `path` and write the header row. Throws
  /// std::runtime_error if the file cannot be opened.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Append a data row; width must match the header.
  void add_row(const std::vector<std::string>& cells);

  std::size_t rows_written() const noexcept { return rows_; }

  /// Quote a single CSV field per RFC 4180.
  static std::string quote(const std::string& field);

 private:
  std::ofstream out_;
  std::size_t width_;
  std::size_t rows_ = 0;

  void write_line(const std::vector<std::string>& cells);
};

}  // namespace gcaching
