// Aligned plain-text tables for bench/report output.
//
// Every reproduction bench prints its table/figure as an aligned text table
// (the "same rows/series the paper reports"); `TextTable` handles column
// sizing, alignment and separators so benches stay declarative.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace gcaching {

class TextTable {
 public:
  /// Begin a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Append a horizontal separator row.
  void add_separator();

  std::size_t num_rows() const noexcept { return rows_.size(); }
  std::size_t num_columns() const noexcept { return headers_.size(); }

  /// Render with single-space-padded, right-aligned numeric-looking cells
  /// and left-aligned text cells.
  std::string render() const;

  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

  /// Format helpers shared by benches.
  static std::string fmt(double v, int precision = 4);
  static std::string fmt_ratio(double v);  // "inf" for unbounded ratios
  static std::string fmt_int(std::uint64_t v);

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace gcaching
