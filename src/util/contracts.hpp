// Checked contracts, in two tiers.
//
// The simulator in this project is a *verifying* simulator: model invariants
// (Definition 1 of the paper) are enforced at runtime rather than assumed.
// Contract violations indicate a policy or harness bug and therefore throw
// `gcaching::ContractViolation` instead of invoking UB, so tests can assert
// on them and long benchmark runs fail loudly.
//
// Tiers:
//   * GC_REQUIRE / GC_ENSURE / GC_CHECK — cold-path contracts (construction,
//     configuration, per-run setup). Always on, in every build.
//   * GC_HOT_REQUIRE / GC_HOT_ENSURE / GC_HOT_CHECK — per-access contracts on
//     the simulation hot path (CacheContents mutations, recency-list ops).
//     On by default; compiled to nothing when the GC_FAST_SIM build
//     configuration is active (see docs/PERF.md), which is what lets the
//     fast-path engine run multi-million-access sweeps at memory speed.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gcaching {

/// Thrown when a GC_REQUIRE / GC_ENSURE / GC_CHECK contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail

/// True when hot-path contracts are compiled in (i.e. not a GC_FAST_SIM
/// build). Lets tests and benches report which configuration they measured.
#if defined(GC_FAST_SIM)
inline constexpr bool kHotChecksEnabled = false;
#else
inline constexpr bool kHotChecksEnabled = true;
#endif

}  // namespace gcaching

/// Precondition check: argument/state requirements at function entry.
#define GC_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gcaching::detail::contract_fail("precondition", #cond, __FILE__,   \
                                        __LINE__, (msg));                  \
  } while (0)

/// Postcondition check: guarantees at function exit.
#define GC_ENSURE(cond, msg)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gcaching::detail::contract_fail("postcondition", #cond, __FILE__,  \
                                        __LINE__, (msg));                  \
  } while (0)

/// Internal-consistency check (invariants mid-function).
#define GC_CHECK(cond, msg)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gcaching::detail::contract_fail("invariant", #cond, __FILE__,      \
                                        __LINE__, (msg));                  \
  } while (0)

// ---- gclint hot-region markers ---------------------------------------------
// GC_HOT_REGION_BEGIN / GC_HOT_REGION_END delimit per-access hot-loop code —
// the regions `simulate_fast` / `simulate_column` execute once per access
// (CacheContents mutators, fast_step, the stack-distance walker). They expand
// to nothing; `tools/gclint` enforces that only GC_HOT_* contracts appear
// between them, because a cold GC_REQUIRE/GC_ENSURE/GC_CHECK there would
// silently reintroduce the per-access overhead GC_FAST_SIM exists to remove.
// The label is free-form but must match between BEGIN and END; regions must
// not nest. See docs/ANALYSIS.md.
#define GC_HOT_REGION_BEGIN(label)
#define GC_HOT_REGION_END(label)

// Hot-path tier: identical to the cold-path macros by default; compiled to
// nothing under GC_FAST_SIM. The disabled form keeps `cond` as an
// unevaluated operand so variables referenced only by checks stay "used"
// (no -Wunused breakage) and side effects are impossible either way.
#if defined(GC_FAST_SIM)
#define GC_HOT_REQUIRE(cond, msg) \
  do {                            \
    (void)sizeof((cond) ? 1 : 0); \
  } while (0)
#define GC_HOT_ENSURE(cond, msg) GC_HOT_REQUIRE(cond, msg)
#define GC_HOT_CHECK(cond, msg) GC_HOT_REQUIRE(cond, msg)
#else
#define GC_HOT_REQUIRE(cond, msg) GC_REQUIRE(cond, msg)
#define GC_HOT_ENSURE(cond, msg) GC_ENSURE(cond, msg)
#define GC_HOT_CHECK(cond, msg) GC_CHECK(cond, msg)
#endif
