// Always-on checked contracts.
//
// The simulator in this project is a *verifying* simulator: model invariants
// (Definition 1 of the paper) are enforced at runtime rather than assumed.
// Contract violations indicate a policy or harness bug and therefore throw
// `gcaching::ContractViolation` instead of invoking UB, so tests can assert
// on them and long benchmark runs fail loudly.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace gcaching {

/// Thrown when a GC_REQUIRE / GC_ENSURE / GC_CHECK contract fails.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what_arg)
      : std::logic_error(what_arg) {}
};

namespace detail {

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}

}  // namespace detail

}  // namespace gcaching

/// Precondition check: argument/state requirements at function entry.
#define GC_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gcaching::detail::contract_fail("precondition", #cond, __FILE__,   \
                                        __LINE__, (msg));                  \
  } while (0)

/// Postcondition check: guarantees at function exit.
#define GC_ENSURE(cond, msg)                                               \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gcaching::detail::contract_fail("postcondition", #cond, __FILE__,  \
                                        __LINE__, (msg));                  \
  } while (0)

/// Internal-consistency check (invariants mid-function).
#define GC_CHECK(cond, msg)                                                \
  do {                                                                     \
    if (!(cond))                                                           \
      ::gcaching::detail::contract_fail("invariant", #cond, __FILE__,      \
                                        __LINE__, (msg));                  \
  } while (0)
