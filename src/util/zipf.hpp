// Zipf(ian) sampling over a finite universe.
//
// Synthetic cache workloads conventionally use Zipf-distributed popularity
// (web/CDN and storage traces are approximately Zipfian). `ZipfSampler`
// draws rank r in {0, .., n-1} with P(r) proportional to 1/(r+1)^theta using
// rejection-inversion (W. Hormann, G. Derflinger 1996), which needs O(1)
// state and O(1) expected time per sample — no O(n) CDF table, so universes
// of hundreds of millions of items are fine.
#pragma once

#include <cmath>
#include <cstdint>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace gcaching {

/// Samples ranks from a Zipf distribution with exponent `theta >= 0` over
/// `n` elements; theta = 0 degenerates to the uniform distribution.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    GC_REQUIRE(n >= 1, "Zipf universe must be non-empty");
    GC_REQUIRE(theta >= 0.0, "Zipf exponent must be non-negative");
    if (theta_ > 0.0) {
      h_x1_ = h(1.5) - std::exp(-theta_ * std::log(1.0));
      h_n_ = h(static_cast<double>(n_) + 0.5);
      s_ = 2.0 - h_inverse(h(2.5) - std::exp(-theta_ * std::log(2.0)));
    }
  }

  std::uint64_t n() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

  /// Draw one rank in [0, n).
  std::uint64_t operator()(SplitMix64& rng) const {
    if (theta_ == 0.0) return rng.below(n_);
    // Rejection-inversion sampling.
    for (;;) {
      const double u = h_n_ + rng.uniform01() * (h_x1_ - h_n_);
      const double x = h_inverse(u);
      // Clamp in the double domain before converting: a double -> uint64
      // cast of a negative, NaN, or out-of-range value is UB (UBSan
      // float-cast-overflow). The !(>= 1.0) form also routes NaN to 1.
      const double xr = x + 0.5;
      std::uint64_t k;
      if (!(xr >= 1.0)) {
        k = 1;
      } else if (xr >= static_cast<double>(n_)) {
        k = n_;
      } else {
        k = static_cast<std::uint64_t>(xr);
      }
      const double kd = static_cast<double>(k);
      if (kd - x <= s_ ||
          u >= h(kd + 0.5) - std::exp(-theta_ * std::log(kd))) {
        return k - 1;  // expose 0-based ranks
      }
    }
  }

 private:
  // H(x) = integral of x^-theta; closed forms for theta == 1 and != 1.
  double h(double x) const {
    if (theta_ == 1.0) return std::log(x);
    return (std::exp((1.0 - theta_) * std::log(x)) - 1.0) / (1.0 - theta_);
  }

  double h_inverse(double u) const {
    if (theta_ == 1.0) return std::exp(u);
    return std::exp(std::log(1.0 + u * (1.0 - theta_)) / (1.0 - theta_));
  }

  std::uint64_t n_;
  double theta_;
  double h_x1_ = 0.0;
  double h_n_ = 0.0;
  double s_ = 0.0;
};

}  // namespace gcaching
