// Deterministic, seedable pseudo-random number generation.
//
// All stochastic components of the library (randomized policies, synthetic
// workload generators) draw from `SplitMix64`, a tiny, fast, statistically
// solid generator. Determinism given a seed is a hard requirement: parallel
// parameter sweeps must produce identical results regardless of thread
// scheduling, so each simulation owns its own generator.
#pragma once

#include <cstdint>
#include <limits>

#include "util/contracts.hpp"

namespace gcaching {

/// SplitMix64 (Steele, Lea, Flood 2014). Passes BigCrush when used as a
/// 64-bit generator; used here both directly and to seed derived streams.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
      : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift reduction;
  /// the modulo bias is at most 2^-64 * bound, negligible for our bounds.
  /// Throws ContractViolation on bound == 0 (caller bug).
  std::uint64_t below(std::uint64_t bound) {
    GC_REQUIRE(bound > 0, "below() requires a positive bound");
    const std::uint64_t x = (*this)();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) *
         static_cast<unsigned __int128>(bound)) >>
        64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) {
    GC_REQUIRE(lo <= hi, "between() requires lo <= hi");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    // 53 high-quality mantissa bits.
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Derive an independent stream (e.g. one per sweep point).
  SplitMix64 split() noexcept { return SplitMix64((*this)() ^ 0xd6e8feb86659fd93ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace gcaching
