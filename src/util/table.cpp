#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace gcaching {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  GC_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  GC_REQUIRE(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(Row{false, std::move(cells)});
}

void TextTable::add_separator() { rows_.push_back(Row{true, {}}); }

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  if (end == s.c_str()) return s == "inf" || s == "-inf" || s == "nan";
  // allow trailing unit-ish suffixes like "x" or "%"
  while (end && *end != '\0') {
    if (*end != 'x' && *end != '%' && *end != ' ') return false;
    ++end;
  }
  return true;
}

}  // namespace

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const Row& r : rows_) {
    if (r.separator) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      widths[c] = std::max(widths[c], r.cells[c].size());
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells, bool header) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      const bool right = !header && looks_numeric(cells[c]);
      os << ' ';
      if (right)
        os << std::setw(static_cast<int>(widths[c])) << std::right << cells[c];
      else
        os << std::setw(static_cast<int>(widths[c])) << std::left << cells[c];
      os << " |";
    }
    os << '\n';
  };
  auto emit_sep = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };

  emit_sep();
  emit_row(headers_, /*header=*/true);
  emit_sep();
  for (const Row& r : rows_) {
    if (r.separator)
      emit_sep();
    else
      emit_row(r.cells, /*header=*/false);
  }
  emit_sep();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  if (std::isnan(v)) return "nan";
  os << std::setprecision(precision) << std::fixed << v;
  return os.str();
}

std::string TextTable::fmt_ratio(double v) {
  if (std::isinf(v)) return "inf";
  if (std::isnan(v)) return "nan";
  std::ostringstream os;
  if (v >= 100.0)
    os << std::setprecision(1) << std::fixed << v;
  else
    os << std::setprecision(3) << std::fixed << v;
  return os.str();
}

std::string TextTable::fmt_int(std::uint64_t v) { return std::to_string(v); }

}  // namespace gcaching
