// Function attributes for hot-path code-layout control.
//
// The fast engines (core/simulator.hpp) instantiate policy callbacks
// directly inside their access loop. For the *hit* path that is the whole
// point — an out-of-line call per access costs more than the callback body.
// For a policy with a large *miss* body (whole-block load loops, episode
// bookkeeping), inlining the miss path into the same loop bloats it past
// the I-cache sweet spot and slows the hits down too. Such policies keep
// on_hit inline and pin on_miss out of line with GC_NOINLINE; see
// docs/PERF.md ("policy rewrites") for measurements.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define GC_NOINLINE __attribute__((noinline))
#elif defined(_MSC_VER)
#define GC_NOINLINE __declspec(noinline)
#else
#define GC_NOINLINE
#endif
