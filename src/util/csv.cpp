#include "util/csv.hpp"

#include <stdexcept>

#include "util/contracts.hpp"

namespace gcaching {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path, std::ios::trunc), width_(header.size()) {
  if (!out_) throw std::runtime_error("cannot open CSV file: " + path);
  GC_REQUIRE(width_ > 0, "CSV needs at least one column");
  write_line(header);
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  GC_REQUIRE(cells.size() == width_, "CSV row width must match header");
  write_line(cells);
  ++rows_;
}

std::string CsvWriter::quote(const std::string& field) {
  const bool needs_quote =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_line(const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    if (c > 0) out_ << ',';
    out_ << quote(cells[c]);
  }
  out_ << '\n';
}

}  // namespace gcaching
