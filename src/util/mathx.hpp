// Small numeric helpers shared across bounds, traces, and benches.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>

#include "util/contracts.hpp"

namespace gcaching {

/// ceil(a / b) for non-negative integers. Overflow-free for every input:
/// the textbook (a + b - 1) / b wraps when a + b exceeds 2^64 (well-defined
/// for unsigned, but silently wrong — flagged by clang-tidy/UBSan review).
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  if (b == 0) return 0;
  return a == 0 ? 0 : (a - 1) / b + 1;
}

/// Integer power (small exponents).
constexpr std::uint64_t ipow(std::uint64_t base, unsigned exp) {
  std::uint64_t r = 1;
  while (exp-- > 0) r *= base;
  return r;
}

/// True when |a - b| <= tol * max(1, |a|, |b|).
inline bool approx_equal(double a, double b, double tol = 1e-9) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) <= tol * scale;
}

/// Value used to represent an unbounded competitive ratio (e.g. a Block
/// Cache compared against an optimal cache it cannot fit, Theorem 3).
constexpr double kUnboundedRatio = std::numeric_limits<double>::infinity();

/// Golden-section search for the minimum of a unimodal function on [lo, hi].
/// Used to cross-check closed-form optimizers (e.g. the Section 5.3 optimal
/// IBLP partition) against the raw Theorem-7 bound.
inline double golden_min(const std::function<double(double)>& f, double lo,
                         double hi, double tol = 1e-7, int max_iter = 200) {
  GC_REQUIRE(lo <= hi, "golden_min requires lo <= hi");
  constexpr double kInvPhi = 0.6180339887498949;  // 1/phi
  double a = lo, b = hi;
  double c = b - (b - a) * kInvPhi;
  double d = a + (b - a) * kInvPhi;
  double fc = f(c), fd = f(d);
  for (int it = 0; it < max_iter && (b - a) > tol * std::max(1.0, std::fabs(a));
       ++it) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - (b - a) * kInvPhi;
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + (b - a) * kInvPhi;
      fd = f(d);
    }
  }
  return (fc < fd) ? c : d;
}

/// Monotone bisection: smallest x in [lo, hi] (integers) with pred(x) true.
/// Returns hi + 1 when the predicate never holds. `pred` must be monotone
/// (false..false true..true).
inline std::uint64_t bisect_first_true(
    std::uint64_t lo, std::uint64_t hi,
    const std::function<bool(std::uint64_t)>& pred) {
  GC_REQUIRE(lo <= hi, "bisect_first_true requires lo <= hi");
  GC_REQUIRE(hi < std::numeric_limits<std::uint64_t>::max(),
             "hi + 1 must be representable (the not-found sentinel)");
  std::uint64_t ans = hi + 1;
  while (lo <= hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      ans = mid;
      if (mid == 0) break;
      hi = mid - 1;
    } else {
      lo = mid + 1;
    }
  }
  return ans;
}

}  // namespace gcaching
