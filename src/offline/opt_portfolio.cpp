#include "offline/opt_portfolio.hpp"

#include <vector>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "util/contracts.hpp"

namespace gcaching {

PortfolioResult opt_portfolio_upper(const BlockMap& map, const Trace& trace,
                                    std::size_t capacity,
                                    bool include_iblp_sweep) {
  GC_REQUIRE(capacity >= 1, "capacity must be positive");
  std::vector<std::string> specs = {"belady-item", "belady-greedy-gc"};
  if (capacity >= map.max_block_size()) specs.push_back("belady-block");
  if (include_iblp_sweep && capacity >= 2 * map.max_block_size()) {
    // A small split grid; IBLP is online but still yields legal schedules,
    // and its layered structure often beats the pure clairvoyant policies
    // on adversarial traces built around layered reservations.
    for (double frac : {0.25, 0.5, 0.75}) {
      const auto i = static_cast<std::size_t>(frac *
                                              static_cast<double>(capacity));
      const std::size_t b = capacity - i;
      if (b < map.max_block_size()) continue;
      specs.push_back("iblp:i=" + std::to_string(i) +
                      ",b=" + std::to_string(b));
    }
  }

  PortfolioResult best;
  best.misses = ~std::uint64_t{0};
  for (const auto& spec : specs) {
    auto policy = make_policy(spec, capacity);
    const SimStats s = simulate(map, trace, *policy, capacity);
    if (s.misses < best.misses) {
      best.misses = s.misses;
      best.best_policy = spec;
    }
  }
  return best;
}

}  // namespace gcaching
