#include "offline/opt_bounds.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/contracts.hpp"
#include "util/mathx.hpp"

namespace gcaching {

std::uint64_t opt_lower_bound_distinct_blocks(const BlockMap& map,
                                              const Trace& trace) {
  std::unordered_set<BlockId> blocks;
  for (ItemId it : trace) blocks.insert(map.block_of(it));
  return blocks.size();
}

std::uint64_t opt_lower_bound_windows(const BlockMap& map, const Trace& trace,
                                      std::size_t capacity,
                                      std::size_t window) {
  GC_REQUIRE(capacity >= 1, "capacity must be positive");
  if (trace.empty()) return 0;
  if (window == 0) window = std::max<std::size_t>(4 * capacity, 64);

  const std::uint64_t b = map.max_block_size();
  std::uint64_t item_bound = 0;
  std::uint64_t block_bound = 0;

  std::unordered_set<ItemId> items;
  std::unordered_set<BlockId> blocks;
  for (std::size_t start = 0; start < trace.size(); start += window) {
    items.clear();
    blocks.clear();
    const std::size_t end = std::min(trace.size(), start + window);
    for (std::size_t p = start; p < end; ++p) {
      items.insert(trace[p]);
      blocks.insert(map.block_of(trace[p]));
    }
    if (items.size() > capacity)
      item_bound += ceil_div(items.size() - capacity, b);
    if (blocks.size() > capacity)
      block_bound += blocks.size() - capacity;
  }
  return std::max(item_bound, block_bound);
}

std::uint64_t opt_lower_bound(const BlockMap& map, const Trace& trace,
                              std::size_t capacity) {
  return std::max(opt_lower_bound_distinct_blocks(map, trace),
                  opt_lower_bound_windows(map, trace, capacity));
}

}  // namespace gcaching
