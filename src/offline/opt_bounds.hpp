// Certified lower bounds on the offline optimum for arbitrary traces.
//
// The exact solver is exponential, so for large traces we bound OPT from
// below instead (useful for empirical competitive-ratio estimates: measured
// misses / lower-bound(OPT) over-estimates the true ratio, never under-).
//
//   * Distinct-blocks bound: starting from an empty cache, every block that
//     is ever referenced must be loaded at least once, and a miss loads
//     from exactly one block; hence OPT >= number of distinct blocks.
//   * Window working-set bound: in any access window W, at most k items are
//     resident when W starts and each miss adds at most B items, so
//     OPT_misses(W) >= ceil((distinct_items(W) - k) / B). Summed over
//     disjoint windows. A block-granularity refinement uses distinct blocks:
//     OPT_misses(W) >= distinct_blocks(W) - k  (at most k blocks can have a
//     resident item when W starts, and each miss touches one block).
//
// The returned bound is the max of all three.
#pragma once

#include <cstdint>

#include "core/trace.hpp"

namespace gcaching {

/// OPT >= distinct blocks referenced (empty initial cache).
std::uint64_t opt_lower_bound_distinct_blocks(const BlockMap& map,
                                              const Trace& trace);

/// Window-sum bound with windows of `window` accesses (0 = pick
/// automatically as 4*k).
std::uint64_t opt_lower_bound_windows(const BlockMap& map, const Trace& trace,
                                      std::size_t capacity,
                                      std::size_t window = 0);

/// max of all implemented bounds.
std::uint64_t opt_lower_bound(const BlockMap& map, const Trace& trace,
                              std::size_t capacity);

}  // namespace gcaching
