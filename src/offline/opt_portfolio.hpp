// Portfolio offline upper bound.
//
// For traces too large for the exact solver, the cheapest schedule found by
// a portfolio of clairvoyant policies is a certified *upper* bound on OPT
// (each portfolio member produces a legal schedule). Combined with the
// certified lower bounds in opt_bounds.hpp this brackets OPT:
//
//     opt_lower_bound(...)  <=  OPT  <=  opt_portfolio_upper(...).misses
//
// Empirical competitive-ratio studies should divide online misses by the
// portfolio bound when a ratio *lower* estimate is wanted, and by the lower
// bound when an upper estimate is wanted.
#pragma once

#include <cstdint>
#include <string>

#include "core/trace.hpp"

namespace gcaching {

struct PortfolioResult {
  std::uint64_t misses = 0;   ///< best (smallest) miss count found
  std::string best_policy;    ///< which portfolio member achieved it
};

/// Runs every offline policy in the portfolio (Belady item, Belady block,
/// the clairvoyant greedy GC heuristic, and — when `include_iblp_sweep` —
/// IBLP across a small grid of splits) and returns the best schedule cost.
PortfolioResult opt_portfolio_upper(const BlockMap& map, const Trace& trace,
                                    std::size_t capacity,
                                    bool include_iblp_sweep = true);

}  // namespace gcaching
