// Exact offline optimum for small GC-caching instances.
//
// Offline GC Caching is NP-complete (Theorem 1), so no polynomial algorithm
// is expected; this solver does an exact 0/1-BFS (Dijkstra with 0/1 weights)
// over states (trace position, cache contents bitmask). It is exponential
// but comfortably handles the instances we need it for:
//   * verifying the Theorem 1 reduction end-to-end (OPT_vs == OPT_gc),
//   * certifying that every policy's miss count >= OPT on random instances,
//   * checking the proofs' "the optimal cache does X" claims.
//
// Restrictions: universe <= 64 items (bitmask state), and the reachable
// state space must fit in memory — in practice traces of a few dozen
// accesses with k <= ~8 and B <= ~6.
//
// Transition pruning (both are exact, not heuristic):
//   * lazy eviction — evicting more than the minimum needed for a load can
//     be deferred for free, so only minimum-size eviction sets are explored;
//   * hits advance position with no branching.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/trace.hpp"

namespace gcaching {

/// One step of an optimal schedule (for inspection in tests).
struct OptStep {
  std::size_t position = 0;       ///< trace index served by this step
  bool miss = false;              ///< whether this access cost 1
  std::uint64_t loaded = 0;       ///< bitmask of items loaded at this step
  std::uint64_t evicted = 0;      ///< bitmask of items evicted at this step
};

struct ExactOptResult {
  std::uint64_t cost = 0;              ///< minimum number of misses
  std::vector<OptStep> schedule;       ///< only if schedule requested
  std::size_t states_expanded = 0;     ///< search effort, for diagnostics
};

struct ExactOptOptions {
  bool want_schedule = false;
  /// Safety valve: abort (throws ContractViolation) past this many expanded
  /// states; 0 means unlimited.
  std::size_t max_states = 50'000'000;
};

/// Computes the exact minimum miss count for serving `trace` with a cache of
/// `capacity` items under partition `map`, starting from an empty cache.
ExactOptResult exact_offline_opt(const BlockMap& map, const Trace& trace,
                                 std::size_t capacity,
                                 const ExactOptOptions& options = {});

}  // namespace gcaching
