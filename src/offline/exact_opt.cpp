#include "offline/exact_opt.hpp"

#include <algorithm>
#include <bit>
#include <deque>
#include <unordered_map>

#include "util/contracts.hpp"

namespace gcaching {

namespace {

struct State {
  std::uint32_t pos;
  std::uint64_t mask;
  bool operator==(const State& o) const {
    return pos == o.pos && mask == o.mask;
  }
};

struct StateHash {
  std::size_t operator()(const State& s) const {
    // splitmix-style combine of pos and mask.
    std::uint64_t z = s.mask + 0x9e3779b97f4a7c15ULL * (s.pos + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

struct NodeInfo {
  std::uint32_t dist;
  State parent;
  OptStep step;  // edge that reached this node (for schedule recovery)
  bool has_parent = false;
};

/// Enumerates all subsets of `pool` with exactly `count` bits set, invoking
/// fn(subset). Iterative combination walk over the set bit positions.
template <typename Fn>
void for_each_subset_of_size(std::uint64_t pool, unsigned count, Fn&& fn) {
  std::vector<unsigned> bits;
  for (std::uint64_t p = pool; p != 0; p &= p - 1)
    bits.push_back(static_cast<unsigned>(std::countr_zero(p)));
  const unsigned n = static_cast<unsigned>(bits.size());
  GC_REQUIRE(count <= n, "cannot choose more bits than the pool has");
  if (count == 0) {
    fn(std::uint64_t{0});
    return;
  }
  std::vector<unsigned> idx(count);
  for (unsigned i = 0; i < count; ++i) idx[i] = i;
  for (;;) {
    std::uint64_t subset = 0;
    for (unsigned i = 0; i < count; ++i) subset |= std::uint64_t{1} << bits[idx[i]];
    fn(subset);
    // next combination
    int i = static_cast<int>(count) - 1;
    while (i >= 0 &&
           idx[static_cast<unsigned>(i)] ==
               n - count + static_cast<unsigned>(i))
      --i;
    if (i < 0) break;
    ++idx[static_cast<unsigned>(i)];
    for (unsigned j = static_cast<unsigned>(i) + 1; j < count; ++j)
      idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace

ExactOptResult exact_offline_opt(const BlockMap& map, const Trace& trace,
                                 std::size_t capacity,
                                 const ExactOptOptions& options) {
  GC_REQUIRE(map.num_items() <= 64,
             "exact solver requires a universe of at most 64 items");
  GC_REQUIRE(capacity >= 1, "capacity must be positive");

  const std::uint32_t n = static_cast<std::uint32_t>(trace.size());
  ExactOptResult result;
  if (n == 0) return result;

  // Precompute block bitmasks.
  std::vector<std::uint64_t> block_mask(map.num_blocks(), 0);
  for (BlockId b = 0; b < map.num_blocks(); ++b)
    for (ItemId it : map.items_of(b))
      block_mask[b] |= std::uint64_t{1} << it;

  std::unordered_map<State, NodeInfo, StateHash> nodes;
  std::deque<State> dq;  // 0/1-BFS: 0-edges pushed front, 1-edges back

  const State start{0, 0};
  nodes[start] = NodeInfo{0, start, {}, false};
  dq.push_back(start);

  auto relax = [&](const State& from, std::uint32_t from_dist, State to,
                   std::uint32_t w, const OptStep& step) {
    const std::uint32_t nd = from_dist + w;
    auto it = nodes.find(to);
    if (it != nodes.end() && it->second.dist <= nd) return;
    NodeInfo info;
    info.dist = nd;
    if (options.want_schedule) {
      info.parent = from;
      info.step = step;
      info.has_parent = true;
    }
    nodes[to] = info;
    if (w == 0)
      dq.push_front(to);
    else
      dq.push_back(to);
  };

  State goal{};
  bool found = false;

  while (!dq.empty()) {
    const State s = dq.front();
    dq.pop_front();
    const auto node_it = nodes.find(s);
    GC_CHECK(node_it != nodes.end(), "popped unknown state");
    const std::uint32_t d = node_it->second.dist;
    // Stale entries (state re-relaxed after being queued) are detected by
    // re-checking: a state may appear multiple times in the deque; process
    // the first (smallest-dist) occurrence only. We approximate by allowing
    // reprocessing — relax() rejects non-improving updates, so correctness
    // holds; the small duplication is acceptable at this scale.
    if (s.pos == n) {
      goal = s;
      found = true;
      break;  // 0/1-BFS pops in nondecreasing distance: first goal is OPT
    }
    ++result.states_expanded;
    if (options.max_states != 0 &&
        result.states_expanded > options.max_states)
      GC_REQUIRE(false, "exact solver exceeded its state budget");

    const ItemId x = trace[s.pos];
    const std::uint64_t xbit = std::uint64_t{1} << x;
    if (s.mask & xbit) {
      // Hit: free transition.
      OptStep step;
      step.position = s.pos;
      step.miss = false;
      relax(s, d, State{s.pos + 1, s.mask}, 0, step);
      continue;
    }

    // Miss: choose a load subset L (x in L, L within the block, disjoint
    // from the cache) and a minimum eviction set E from the old contents.
    const std::uint64_t bmask = block_mask[map.block_of(x)];
    const std::uint64_t absent_others = bmask & ~s.mask & ~xbit;
    const unsigned occupancy =
        static_cast<unsigned>(std::popcount(s.mask));

    // Enumerate submasks of absent_others (classic submask walk), OR xbit.
    std::uint64_t sub = absent_others;
    for (;;) {
      const std::uint64_t load = sub | xbit;
      const unsigned load_count = static_cast<unsigned>(std::popcount(load));
      if (load_count <= capacity) {
        const unsigned total = occupancy + load_count;
        const unsigned evict_count =
            total > capacity ? total - static_cast<unsigned>(capacity) : 0;
        for_each_subset_of_size(s.mask, evict_count, [&](std::uint64_t ev) {
          OptStep step;
          step.position = s.pos;
          step.miss = true;
          step.loaded = load;
          step.evicted = ev;
          relax(s, d, State{s.pos + 1, (s.mask & ~ev) | load}, 1, step);
        });
      }
      if (sub == 0) break;
      sub = (sub - 1) & absent_others;
    }
  }

  GC_CHECK(found, "search exhausted without reaching the end of the trace");
  result.cost = nodes[goal].dist;

  if (options.want_schedule) {
    State cur = goal;
    while (nodes[cur].has_parent) {
      result.schedule.push_back(nodes[cur].step);
      cur = nodes[cur].parent;
    }
    std::reverse(result.schedule.begin(), result.schedule.end());
  }
  return result;
}

}  // namespace gcaching
