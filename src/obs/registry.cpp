#include "obs/registry.hpp"

#include <fstream>

#include "util/contracts.hpp"
#include "util/csv.hpp"

namespace gcaching::obs {

void CounterRegistry::add(const std::string& name, std::uint64_t delta) {
  // GCLINT-ALLOW(hot-region-transitive): unqualified-name collision — the hot-region call is a policy's metadata add(), not the registry's; the GC_OBS_COUNT entry point is collect-time only
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

std::uint64_t CounterRegistry::value(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return {counters_.begin(), counters_.end()};
}

void CounterRegistry::write_csv(const std::string& path) const {
  CsvWriter csv(path, {"counter", "value"});
  for (const auto& [name, value] : snapshot())
    csv.add_row({name, std::to_string(value)});
}

void CounterRegistry::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  GC_REQUIRE(out.good(), "cannot open " + path + " for writing");
  for (const auto& [name, value] : snapshot())
    out << "{\"counter\": \"" << name << "\", \"value\": " << value << "}\n";
}

}  // namespace gcaching::obs
