// Per-shard metric atlas for the gcached concurrent runtime.
//
// Layering: obs sits BELOW gcached in the dependency DAG (tools/gclint/
// layers.txt), so this header knows nothing about ShardedCache. It defines a
// generic fixed-size table of per-shard relaxed-atomic counters; gcached
// constructs one sized to its shard count, attaches it, and publishes deltas
// from inside its access path through the GC_MON_* macros below. The gcmon
// snapshot thread (obs/gcmon.hpp) harvests the table without ever touching a
// shard lock — writers and the reader share nothing but these atomics.
//
// Write discipline: every counter is a relaxed std::atomic<uint64_t>. The
// writing thread already holds its shard's lock for the cache mutation, so
// within one shard there is exactly one writer at a time — which is why
// GC_MON_SHARD_ADD below publishes with a relaxed load+store pair instead
// of an RMW fetch_add: with a single writer the pair is exact, and dropping
// the lock-prefixed RMW (and skipping zero deltas outright) keeps the
// per-access publish cost in the low nanoseconds (the CI gcmon job gates
// the monitored/plain throughput ratio). Relaxed ordering is enough because
// readers only want eventually-consistent totals, never cross-counter
// invariants (a snapshot may see `hits` from after an access whose `misses`
// bump it missed — deltas are still exact over any window whose endpoints
// both see the access). docs/CONCURRENCY.md documents this as the gcmon
// read discipline.
//
// Compile-out: the GC_MON_* macros follow obs.hpp's GC_OBS_* pattern
// exactly — under GCACHING_OBS=OFF every macro expands to nothing (the
// hoist macro declares a constexpr null so GC_MON_ATTACHED is compile-time
// false and the publishing block is deleted), proven constexpr-evaluable by
// tests/test_gcmon.cpp the same way test_obs_timeline proves GC_OBS_*.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/contracts.hpp"

namespace gcaching::obs {

/// One cache line of relaxed counters per shard. alignas(64) keeps shards
/// from false-sharing each other's lines; within a shard all writes come
/// from the lock holder, so intra-struct sharing is free.
struct alignas(64) ShardCounters {
  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> misses{0};
  std::atomic<std::uint64_t> sideloads{0};
  /// Accesses served by an in-flight fill (async fill mode): neither a hit
  /// nor a miss. hits + misses + delayed_hits counts every access.
  std::atomic<std::uint64_t> delayed_hits{0};
  /// Waiters that coalesced onto an in-flight MSHR entry. Registered at
  /// park time, so it can momentarily lead delayed_hits (a parked waiter
  /// has not committed yet) and a waiter that re-misses re-registers.
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> lock_acquisitions{0};
  std::atomic<std::uint64_t> trylock_failures{0};
  std::atomic<std::uint64_t> backoff_ns{0};
  /// Gauge, not counter: last-published occupancy of the shard's cache.
  std::atomic<std::uint64_t> residency{0};
  /// Gauge: last-published count of in-flight fills in the shard's MSHR
  /// table (0 in sync fill mode).
  std::atomic<std::uint64_t> mshr_inflight{0};
};

/// Plain-value snapshot of one shard's counters (what `ShardAtlas::read`
/// returns and what gcmon's ring stores as totals and deltas).
struct ShardValues {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t sideloads = 0;
  std::uint64_t delayed_hits = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t trylock_failures = 0;
  std::uint64_t backoff_ns = 0;
  std::uint64_t residency = 0;
  std::uint64_t mshr_inflight = 0;

  friend ShardValues operator-(const ShardValues& a, const ShardValues& b) {
    return ShardValues{a.hits - b.hits,
                       a.misses - b.misses,
                       a.sideloads - b.sideloads,
                       a.delayed_hits - b.delayed_hits,
                       a.coalesced - b.coalesced,
                       a.lock_acquisitions - b.lock_acquisitions,
                       a.trylock_failures - b.trylock_failures,
                       a.backoff_ns - b.backoff_ns,
                       a.residency,        // gauges don't difference
                       a.mshr_inflight};   // gauges don't difference
  }
  ShardValues& operator+=(const ShardValues& o) {
    hits += o.hits;
    misses += o.misses;
    sideloads += o.sideloads;
    delayed_hits += o.delayed_hits;
    coalesced += o.coalesced;
    lock_acquisitions += o.lock_acquisitions;
    trylock_failures += o.trylock_failures;
    backoff_ns += o.backoff_ns;
    residency += o.residency;
    mshr_inflight += o.mshr_inflight;
    return *this;
  }
};

/// Fixed-size table of per-shard counters. Size is immovable after
/// construction — gcached validates it against its shard count on attach.
class ShardAtlas {
 public:
  explicit ShardAtlas(std::size_t shards)
      : shards_(shards),
        counters_(std::make_unique<ShardCounters[]>(shards)) {
    GC_REQUIRE(shards > 0, "ShardAtlas needs at least one shard");
  }

  std::size_t size() const noexcept { return shards_; }

  ShardCounters& shard(std::size_t i) noexcept { return counters_[i]; }
  const ShardCounters& shard(std::size_t i) const noexcept {
    return counters_[i];
  }

  /// Relaxed point-in-time read of one shard (see header for staleness
  /// semantics). Never blocks, never touches any lock.
  ShardValues read(std::size_t i) const noexcept {
    const ShardCounters& c = counters_[i];
    ShardValues v;
    v.hits = c.hits.load(std::memory_order_relaxed);
    v.misses = c.misses.load(std::memory_order_relaxed);
    v.sideloads = c.sideloads.load(std::memory_order_relaxed);
    v.delayed_hits = c.delayed_hits.load(std::memory_order_relaxed);
    v.coalesced = c.coalesced.load(std::memory_order_relaxed);
    v.lock_acquisitions = c.lock_acquisitions.load(std::memory_order_relaxed);
    v.trylock_failures = c.trylock_failures.load(std::memory_order_relaxed);
    v.backoff_ns = c.backoff_ns.load(std::memory_order_relaxed);
    v.residency = c.residency.load(std::memory_order_relaxed);
    v.mshr_inflight = c.mshr_inflight.load(std::memory_order_relaxed);
    return v;
  }

 private:
  std::size_t shards_;
  std::unique_ptr<ShardCounters[]> counters_;
};

}  // namespace gcaching::obs

#if defined(GCACHING_OBS)

// Hoist the cache's attached atlas pointer once per access; mirrors
// GC_OBS_TIMELINE so GC_MON_ATTACHED can select a publish-free fast path.
#define GC_MON_ATLAS(var, expr) \
  ::gcaching::obs::ShardAtlas* const var = (expr)

#define GC_MON_ATTACHED(var) ((var) != nullptr)

// Counter bump / gauge store for one shard. `field` is a bare ShardCounters
// member name pasted by the macro (never an obs::-qualified token at the
// call site — gclint's hot-region-raw-obs rule stays satisfied). The add is
// a relaxed load+store, NOT a fetch_add: the publisher holds the shard's
// lock (single writer per shard, see the write-discipline comment above),
// so the pair is exact and avoids a lock-prefixed RMW on the access path.
#define GC_MON_SHARD_ADD(var, shard_idx, field, delta)            \
  do {                                                            \
    const std::uint64_t gc_mon_delta_ =                           \
        static_cast<std::uint64_t>(delta);                        \
    if (gc_mon_delta_ != 0) {                                     \
      auto& gc_mon_counter_ = (var)->shard(shard_idx).field;      \
      gc_mon_counter_.store(                                      \
          gc_mon_counter_.load(std::memory_order_relaxed) +       \
              gc_mon_delta_,                                      \
          std::memory_order_relaxed);                             \
    }                                                             \
  } while (0)

#define GC_MON_SHARD_SET(var, shard_idx, field, value)            \
  do {                                                            \
    (var)->shard(shard_idx).field.store(                          \
        static_cast<std::uint64_t>(value),                        \
        std::memory_order_relaxed);                               \
  } while (0)

#else  // GCACHING_OBS off: monitoring publishes vanish with the macros.

#define GC_MON_ATLAS(var, expr) \
  [[maybe_unused]] constexpr decltype(nullptr) var = nullptr
#define GC_MON_ATTACHED(var) false
#define GC_MON_SHARD_ADD(var, shard_idx, field, delta) \
  do {                                                 \
  } while (0)
#define GC_MON_SHARD_SET(var, shard_idx, field, value) \
  do {                                                 \
  } while (0)

#endif  // GCACHING_OBS
