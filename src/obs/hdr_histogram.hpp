// Log-bucketed HDR latency histogram: wait-free record, lock-free merge.
//
// The gcached load generator used to store one latency sample per operation
// and sort the merged vector at the end — O(ops) memory, percentiles only
// after the run, nothing a live monitor could read. This histogram replaces
// that: a fixed ~34 KB table of relaxed-atomic bucket counts whose `record`
// is ONE fetch_add (wait-free on every platform where fetch_add is a single
// RMW instruction), whose buckets can be read or merged concurrently with
// recording, and whose percentile queries are O(buckets), independent of
// how many samples were recorded.
//
// Layout (classic HdrHistogram linear-log hybrid, kSubBucketBits = P = 7):
//
//   * values in [0, 2^(P+1))                     one bucket per value, exact;
//   * values in [2^k, 2^(k+1)), k = P+1 .. 39    2^P equal sub-buckets per
//                                                octave, width 2^(k-P);
//   * values >= 2^40 (~18.3 minutes in ns)       a single overflow bucket.
//
// Error bound: a bucket covering [lo, lo + w) satisfies w <= lo * 2^-P, and
// queries report the bucket midpoint, so every reported quantile is within
// a relative error of 2^-(P+1) < 0.4% of the exact nearest-rank sample —
// documented as <= 1% (the bound the tests enforce with margin, and exact
// to the bit for values below 2^(P+1), where buckets have width 1). The
// overflow bucket reports its lower edge; a latency that saturates 18
// minutes has no meaningful percentile left to preserve.
//
// Rank agreement: bucket index is monotone in value, so the bucket holding
// the cumulative rank-r count is exactly the bucket containing the r-th
// smallest recorded sample. Percentiles therefore never land in a "wrong"
// bucket — the only error is the within-bucket rounding bounded above.
//
// Concurrency: counts are relaxed atomics. A single writer sees its own
// recordings exactly; concurrent readers (the gcmon snapshot thread, a
// merging aggregator) see a possibly-torn-across-buckets but never-corrupt
// view — each bucket count is individually exact, totals lag by at most the
// in-flight records. That is the documented read discipline of the whole
// gcmon tier (docs/CONCURRENCY.md): monitoring reads are allowed to be
// slightly stale, never allowed to block a writer.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace gcaching::obs {

class HdrHistogram {
 public:
  /// Sub-bucket precision: 2^7 sub-buckets per octave -> relative bucket
  /// width <= 2^-7, midpoint error <= 2^-8 < 0.4% (documented bound: 1%).
  static constexpr unsigned kSubBucketBits = 7;
  /// Largest exactly-bucketed-by-octave exponent: values >= 2^40 share the
  /// overflow bucket (2^40 ns ~ 18.3 min — beyond any latency we rank).
  static constexpr unsigned kMaxExponent = 40;

  static constexpr std::uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  /// [0, 2*kSubBuckets) exact + kSubBuckets per octave + overflow.
  static constexpr std::size_t kBuckets =
      2 * kSubBuckets +
      (kMaxExponent - kSubBucketBits - 1) * kSubBuckets + 1;
  static constexpr std::size_t kOverflowBucket = kBuckets - 1;

  HdrHistogram() = default;
  HdrHistogram(const HdrHistogram&) = delete;
  HdrHistogram& operator=(const HdrHistogram&) = delete;

  /// Bucket of `v`: exact below 2*kSubBuckets, linear-log above, overflow
  /// at the top. Branch-light and allocation-free.
  static constexpr std::size_t bucket_index(std::uint64_t v) noexcept {
    if (v < 2 * kSubBuckets) return static_cast<std::size_t>(v);
    if (v >= (1ULL << kMaxExponent)) return kOverflowBucket;
    const unsigned k =
        static_cast<unsigned>(std::bit_width(v)) - 1;  // floor(log2 v) >= P+1
    const unsigned shift = k - kSubBucketBits;      // sub-bucket width 2^shift
    // v >> shift is in [kSubBuckets, 2*kSubBuckets), so octave k's buckets
    // occupy [ (shift+1)*kSubBuckets, (shift+2)*kSubBuckets ) — contiguous
    // with the exact region at shift 0 and inverse to bucket_lower below.
    return static_cast<std::size_t>(
        static_cast<std::uint64_t>(shift) * kSubBuckets + (v >> shift));
  }

  /// Inclusive lower edge of bucket `idx`.
  static constexpr std::uint64_t bucket_lower(std::size_t idx) noexcept {
    if (idx < 2 * kSubBuckets) return idx;
    if (idx >= kOverflowBucket) return 1ULL << kMaxExponent;
    const std::uint64_t shift = idx / kSubBuckets - 1;
    return (idx % kSubBuckets + kSubBuckets) << shift;
  }

  /// Width of bucket `idx` (1 in the exact region; the overflow bucket's
  /// nominal width is 1 so its representative is its lower edge).
  static constexpr std::uint64_t bucket_width(std::size_t idx) noexcept {
    if (idx < 2 * kSubBuckets || idx >= kOverflowBucket) return 1;
    return 1ULL << (idx / kSubBuckets - 1);
  }

  /// The value a bucket reports: its midpoint (exactly the value itself for
  /// width-1 buckets, so small samples round-trip bit-identically).
  static constexpr double bucket_representative(std::size_t idx) noexcept {
    return static_cast<double>(bucket_lower(idx)) +
           static_cast<double>(bucket_width(idx) - 1) / 2.0;
  }

  /// Wait-free: one relaxed fetch_add. Safe concurrently with any number of
  /// other record / merge_from / query calls.
  void record(std::uint64_t value) noexcept {
    counts_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Bucket-wise accumulate of `other` into this histogram (relaxed reads of
  /// a possibly-live source; see the tearing note in the header comment).
  /// Bucket-wise addition is associative and commutative, so merge order
  /// never changes any percentile — pinned by tests/test_gcmon.cpp.
  void merge_from(const HdrHistogram& other) noexcept {
    std::uint64_t merged = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c =
          other.counts_[i].load(std::memory_order_relaxed);
      if (c != 0) {
        counts_[i].fetch_add(c, std::memory_order_relaxed);
        merged += c;
      }
    }
    total_.fetch_add(merged, std::memory_order_relaxed);
  }

  /// Samples recorded so far (may lag concurrent recorders by the in-flight
  /// handful; exact once recording threads are quiesced).
  std::uint64_t count() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  std::uint64_t bucket_count(std::size_t idx) const noexcept {
    return counts_[idx].load(std::memory_order_relaxed);
  }

  /// Nearest-rank quantile, same rank convention as a sorted-sample lookup
  /// at index round(q * (N - 1)): returns the representative value of the
  /// bucket containing that rank. 0.0 when empty. O(kBuckets).
  double quantile(double q) const noexcept {
    // Walk a consistent local copy of the cumulative count so a concurrent
    // recorder cannot move the target rank mid-scan.
    std::uint64_t n = 0;
    std::array<std::uint64_t, kBuckets> local;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      local[i] = counts_[i].load(std::memory_order_relaxed);
      n += local[i];
    }
    if (n == 0) return 0.0;
    const double pos = q * static_cast<double>(n - 1);
    const std::uint64_t rank =
        static_cast<std::uint64_t>(pos + 0.5) + 1;  // 1-based target rank
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      seen += local[i];
      if (seen >= rank) return bucket_representative(i);
    }
    return bucket_representative(kOverflowBucket);
  }

  /// Representative of the highest non-empty bucket — the histogram's view
  /// of the maximum recorded value (within the documented error bound).
  double max_value() const noexcept {
    for (std::size_t i = kBuckets; i-- > 0;) {
      if (counts_[i].load(std::memory_order_relaxed) != 0)
        return bucket_representative(i);
    }
    return 0.0;
  }

  /// Reset every bucket to zero (not concurrency-safe against recorders;
  /// reuse is a quiesced-only operation).
  void clear() noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i)
      counts_[i].store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> total_{0};
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
};

}  // namespace gcaching::obs
