#include "obs/perf_counters.hpp"

#include <atomic>
#include <cerrno>
#include <cstring>
#include <iostream>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace gcaching::obs {

namespace {

std::atomic<bool> g_warned{false};
std::atomic<bool> g_unsupported{false};

void warn_once(const char* why) {
  g_unsupported.store(true, std::memory_order_relaxed);
  if (g_warned.exchange(true, std::memory_order_relaxed)) return;
  std::cerr << "gcmon: WARNING: hardware counters unavailable (" << why
            << "); cycles/instructions/LLC-miss fields will read as zero "
               "with perf_valid=false. On Linux, check "
               "/proc/sys/kernel/perf_event_paranoid (needs <= 2 for "
               "per-thread counting) or run without --perf.\n";
}

}  // namespace

bool perf_counters_supported() noexcept {
  return !g_unsupported.load(std::memory_order_relaxed);
}

#if defined(__linux__)

namespace {

int open_event(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr{};
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;  // lowers the paranoid bar; user cycles suffice
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this thread, any CPU. No group leader — LLC-miss events
  // often live on a different PMU than the fixed counters, and grouping
  // would then fail wholesale; independent fds read fine for totals.
  return static_cast<int>(
      syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

}  // namespace

PerfCounters::PerfCounters() {
  struct Spec {
    std::uint32_t type;
    std::uint64_t config;
  };
  const Spec specs[kEvents] = {
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
      {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
      {PERF_TYPE_SOFTWARE, PERF_COUNT_SW_CONTEXT_SWITCHES},
  };
  for (int i = 0; i < kEvents; ++i) {
    fds_[i] = open_event(specs[i].type, specs[i].config);
    if (fds_[i] < 0) {
      const int err = errno;
      for (int j = 0; j < i; ++j) {
        close(fds_[j]);
        fds_[j] = -1;
      }
      warn_once(std::strerror(err));
      return;
    }
  }
  available_ = true;
}

PerfCounters::~PerfCounters() {
  for (int fd : fds_)
    if (fd >= 0) close(fd);
}

void PerfCounters::start() noexcept {
  if (!available_) return;
  for (int fd : fds_) {
    ioctl(fd, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd, PERF_EVENT_IOC_ENABLE, 0);
  }
}

PerfTotals PerfCounters::stop() noexcept {
  PerfTotals t;
  if (!available_) return t;
  std::uint64_t values[kEvents] = {};
  bool ok = true;
  for (int i = 0; i < kEvents; ++i) {
    ioctl(fds_[i], PERF_EVENT_IOC_DISABLE, 0);
    if (read(fds_[i], &values[i], sizeof values[i]) !=
        static_cast<ssize_t>(sizeof values[i])) {
      ok = false;
      values[i] = 0;
    }
  }
  t.valid = ok;
  t.cycles = values[0];
  t.instructions = values[1];
  t.llc_misses = values[2];
  t.context_switches = values[3];
  return t;
}

#else  // !__linux__: the syscall does not exist; stay inert but loud.

PerfCounters::PerfCounters() {
  warn_once("perf_event_open requires Linux");
}

PerfCounters::~PerfCounters() = default;

void PerfCounters::start() noexcept {}

PerfTotals PerfCounters::stop() noexcept { return {}; }

#endif  // __linux__

}  // namespace gcaching::obs
