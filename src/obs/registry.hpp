// Named-counter registry with CSV / JSON-lines sinks.
//
// Coarse occurrence counters for the cold orchestration layers — sweep rows
// scheduled, cells completed, stack-column fast-path vs lane-engine passes,
// thread-pool tasks executed. Everything here is mutex-guarded and intended
// for code that runs once per row/task, never per access: per-access
// telemetry belongs in StatsTimeline (src/obs/timeline.hpp), and gclint's
// `hot-region-raw-obs` rule keeps raw registry calls out of GC_HOT_REGION
// markers.
//
// Collection sites use GC_OBS_COUNT (src/obs/obs.hpp), which compiles to
// nothing under GCACHING_OBS=OFF and costs one relaxed atomic load when no
// registry is installed.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gcaching::obs {

class CounterRegistry {
 public:
  CounterRegistry() = default;
  CounterRegistry(const CounterRegistry&) = delete;
  CounterRegistry& operator=(const CounterRegistry&) = delete;

  /// Add `delta` to the named counter, creating it at zero first.
  void add(const std::string& name, std::uint64_t delta = 1);

  /// Current value; 0 for a counter never touched.
  std::uint64_t value(const std::string& name) const;

  /// Sorted (name, value) snapshot.
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  // Sinks: one row/object per counter, sorted by name.
  void write_csv(const std::string& path) const;
  void write_jsonl(const std::string& path) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
};

namespace detail {
inline std::atomic<CounterRegistry*> g_metrics{nullptr};
}  // namespace detail

/// The installed process-wide registry, or nullptr (idle: counting sites
/// cost one atomic load).
inline CounterRegistry* metrics() noexcept {
  return detail::g_metrics.load(std::memory_order_acquire);
}

inline void install_metrics(CounterRegistry* registry) noexcept {
  detail::g_metrics.store(registry, std::memory_order_release);
}

/// RAII installation; the previous installation is restored on exit.
class MetricsScope {
 public:
  explicit MetricsScope(CounterRegistry& registry) noexcept
      : prev_(metrics()) {
    install_metrics(&registry);
  }
  ~MetricsScope() { install_metrics(prev_); }
  MetricsScope(const MetricsScope&) = delete;
  MetricsScope& operator=(const MetricsScope&) = delete;

 private:
  CounterRegistry* prev_;
};

}  // namespace gcaching::obs
