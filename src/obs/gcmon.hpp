// gcmon — live runtime monitor for the gcached concurrent runtime.
//
// A `Monitor` owns a background snapshot thread that periodically harvests
//   * an attached ShardAtlas (per-shard relaxed counters published by the
//     cache's access path via GC_MON_* macros), and
//   * any registered HdrHistograms (per-load-thread latency tables),
// into a timestamped ring of `Snapshot`s. Harvesting is read-only over
// relaxed atomics — the snapshot thread NEVER acquires a shard lock, never
// blocks a recording thread, and tolerates slightly-stale counter views
// (docs/CONCURRENCY.md, "gcmon read discipline").
//
// Each snapshot can be exported three ways, all optional:
//   * Prometheus text exposition rewritten atomically (tmp + rename) to a
//     file on every harvest — scrape by tailing or by file: target;
//   * one JSON object per harvest appended to a JSONL stream;
//   * a "gcmon_snapshot" span recorded into the installed TraceLog, so
//     harvest cadence renders on the same Chrome timeline as sweep spans.
//
// Lifecycle: attach/register while stopped, `start()`, run traffic,
// `stop()` (takes one final snapshot so short runs still export), read the
// ring. The monitor is itself cold-path code — it lives beside the GC_OBS_*
// sinks in the obs tier and is attached from tools/benches, never from
// engine internals.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/hdr_histogram.hpp"
#include "obs/shard_metrics.hpp"

namespace gcaching::obs {

struct MonitorConfig {
  /// Harvest period. The thread uses a condition variable timed wait, so
  /// stop() never waits out a full interval.
  std::chrono::milliseconds interval{50};
  /// Ring capacity: oldest snapshots are dropped once exceeded.
  std::size_t ring_capacity = 256;
  /// Prometheus text exposition target ("" = disabled). Rewritten whole on
  /// every harvest via tmp + rename so scrapers never see a torn file.
  std::string prometheus_path;
  /// JSONL stream target ("" = disabled). One object appended per harvest.
  std::string jsonl_path;
};

/// Merged-histogram summary carried by each snapshot.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  double p999_ns = 0.0;
  double max_ns = 0.0;
};

struct Snapshot {
  std::uint64_t seq = 0;          ///< 0-based harvest index
  std::int64_t wall_ms = 0;       ///< system_clock ms since epoch
  double uptime_s = 0.0;          ///< steady seconds since start()
  std::vector<ShardValues> shards;        ///< cumulative totals per shard
  std::vector<ShardValues> shard_deltas;  ///< since previous snapshot
  ShardValues totals;             ///< cumulative, summed over shards
  LatencySummary latency;         ///< merged over registered histograms
};

class Monitor {
 public:
  explicit Monitor(MonitorConfig cfg = {});
  ~Monitor();
  Monitor(const Monitor&) = delete;
  Monitor& operator=(const Monitor&) = delete;

  /// Wire the per-shard counter table. Call before start(); the atlas must
  /// outlive the monitor's running phase.
  void attach_atlas(const ShardAtlas* atlas);

  /// Register / deregister a latency histogram (per load thread). Safe
  /// while running — the registry is mutex-guarded and only the snapshot
  /// thread iterates it; the histograms themselves are read with relaxed
  /// loads, so recording threads are never blocked.
  void add_histogram(const HdrHistogram* h);
  void remove_histogram(const HdrHistogram* h);

  /// Launch the snapshot thread. No-op if already running.
  void start();
  /// Join the snapshot thread, taking one final harvest first so that runs
  /// shorter than one interval still produce a snapshot. No-op if stopped.
  void stop();
  bool running() const;

  /// Take one harvest synchronously on the calling thread (also what the
  /// background thread does each tick). Usable without start() for
  /// deterministic tests.
  Snapshot harvest_now();

  const MonitorConfig& config() const noexcept { return cfg_; }
  std::size_t snapshot_count() const;
  /// Copy of the ring, oldest first.
  std::vector<Snapshot> snapshots() const;

  /// Prometheus text exposition for `snap` (also what the file exporter
  /// writes). Exposed for tests and the CI validator.
  std::string prometheus_text(const Snapshot& snap) const;
  /// One JSONL line (no trailing newline) for `snap`.
  std::string jsonl_line(const Snapshot& snap) const;

 private:
  void run_loop();
  Snapshot build_snapshot();
  void export_snapshot(const Snapshot& snap);

  MonitorConfig cfg_;
  const ShardAtlas* atlas_ = nullptr;

  mutable std::mutex mu_;  // ring, histogram registry, prev totals
  std::vector<Snapshot> ring_;
  std::vector<const HdrHistogram*> histograms_;
  std::vector<ShardValues> prev_;
  LatencySummary last_latency_;  // persists across histogram deregistration
  std::uint64_t seq_ = 0;

  mutable std::mutex run_mu_;  // snapshot-thread lifecycle
  std::condition_variable run_cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::thread thread_;
  std::chrono::steady_clock::time_point started_;
};

/// Schema check for a Prometheus text exposition: returns "" when `text`
/// parses (every non-empty line is `# HELP`, `# TYPE`, or a sample
/// `name{labels} value`; metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; every
/// sample's name was TYPE-declared; values parse as finite numbers), or a
/// description of the first problem. Mirrors validate_chrome_trace.
std::string validate_prometheus_text(const std::string& text);

/// Write `text` to `path` atomically (tmp file in the same directory +
/// rename). Returns false (and leaves no temp debris) on I/O failure.
bool write_file_atomic(const std::string& path, const std::string& text);

}  // namespace gcaching::obs
