// Chrome trace-event collection and export.
//
// A `TraceLog` records span events — sweep rows, thread-pool tasks, block-id
// precompute passes, stack-column passes — and exports them in the Chrome
// trace-event JSON format, so a sweep's scheduling and thread utilization
// can be inspected visually in `chrome://tracing` or https://ui.perfetto.dev
// (load the exported `trace.json`, no conversion needed).
//
// Collection sites use the GC_OBS_SPAN macro (src/obs/obs.hpp), which
// compiles to nothing under GCACHING_OBS=OFF; with obs compiled in but no
// log installed, a span costs one relaxed atomic load. Installation is
// process-global (`TraceLogScope`): spans are recorded from worker threads,
// so a thread-local slot would miss exactly the events we care about.
//
// Export uses complete ("X") events only — begin/end pairs never dangle —
// plus "M" metadata rows naming threads. `validate_chrome_trace` is the
// matching schema check (valid JSON, required keys, per-thread monotonic
// and properly nested timestamps); tests and CI run it over every exported
// trace.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace gcaching::obs {

struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';            ///< 'X' complete span, 'M' metadata
  std::int64_t ts_ns = 0;   ///< start, nanoseconds since the log's epoch
  std::int64_t dur_ns = 0;  ///< span length ('X' only)
  std::uint32_t tid = 0;    ///< dense per-log thread index
  std::vector<std::pair<std::string, std::string>> args;
};

class TraceLog {
 public:
  TraceLog() : epoch_(std::chrono::steady_clock::now()) {}
  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Monotonic nanoseconds since the log was created.
  std::int64_t now_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// Record one complete span (thread id is taken from the caller).
  void complete(std::string name, std::string cat, std::int64_t start_ns,
                std::int64_t end_ns,
                std::vector<std::pair<std::string, std::string>> args = {});

  /// Name the calling thread in the trace viewer ("M" metadata event).
  /// Idempotent: re-announcing an unchanged name records nothing, so worker
  /// loops may call this once per task instead of coordinating with log
  /// installation order.
  void set_thread_name(const std::string& name);

  std::size_t size() const;
  std::vector<TraceEvent> events() const;  ///< snapshot copy

  /// Chrome trace-event JSON: {"traceEvents": [...]}. Events are emitted
  /// sorted by start time (ties: longer span first), which makes per-thread
  /// timestamps monotonic in the file — the property the validator checks.
  void write_chrome_trace(std::ostream& os) const;
  void write_chrome_trace_file(const std::string& path) const;

 private:
  std::uint32_t tid_locked(std::thread::id id);

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
  std::unordered_map<std::thread::id, std::uint32_t> tids_;
  std::unordered_map<std::uint32_t, std::string> thread_names_;
};

/// Schema check for an exported trace: returns "" when `json` is a valid
/// Chrome trace (parses as JSON; every event carries name/ph/ts/pid/tid;
/// ph is X, M, B, or E; X durations are non-negative; per-thread timestamps
/// are monotonic with properly nested X spans and matched B/E pairs), or a
/// human-readable description of the first problem found.
std::string validate_chrome_trace(const std::string& json);

namespace detail {
inline std::atomic<TraceLog*> g_trace_log{nullptr};
}  // namespace detail

/// The installed process-wide trace log, or nullptr (idle: spans cost one
/// atomic load).
inline TraceLog* trace_log() noexcept {
  return detail::g_trace_log.load(std::memory_order_acquire);
}

inline void install_trace_log(TraceLog* log) noexcept {
  detail::g_trace_log.store(log, std::memory_order_release);
}

/// RAII installation. Not reentrant across threads by design — one log per
/// process at a time; the previous installation is restored on exit.
class TraceLogScope {
 public:
  explicit TraceLogScope(TraceLog& log) noexcept : prev_(trace_log()) {
    install_trace_log(&log);
  }
  ~TraceLogScope() { install_trace_log(prev_); }
  TraceLogScope(const TraceLogScope&) = delete;
  TraceLogScope& operator=(const TraceLogScope&) = delete;

 private:
  TraceLog* prev_;
};

/// RAII span: captures the start time at construction when a log is
/// installed, records one complete event at destruction. Cheap when idle.
/// Use through GC_OBS_SPAN / GC_OBS_SPAN_ARG so the whole thing compiles
/// out under GCACHING_OBS=OFF.
class SpanGuard {
 public:
  SpanGuard(const char* name, const char* cat) : log_(trace_log()) {
    if (log_ != nullptr) {
      name_ = name;
      cat_ = cat;
      start_ns_ = log_->now_ns();
    }
  }
  ~SpanGuard() {
    if (log_ != nullptr)
      log_->complete(name_, cat_, start_ns_, log_->now_ns(),
                     std::move(args_));
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Attach a key/value argument shown in the trace viewer. No-op when idle.
  void arg(const char* key, std::string value) {
    if (log_ != nullptr) args_.emplace_back(key, std::move(value));
  }

  bool active() const noexcept { return log_ != nullptr; }

 private:
  TraceLog* log_;
  const char* name_ = "";
  const char* cat_ = "";
  std::int64_t start_ns_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Name the calling thread in the installed log, if any.
inline void name_current_thread(const std::string& name) {
  if (TraceLog* log = trace_log(); log != nullptr) log->set_thread_name(name);
}

}  // namespace gcaching::obs
