// Windowed time-series collection of SimStats.
//
// A `StatsTimeline` slices a simulation run into fixed-length windows of N
// accesses and records the SimStats *delta* of each window, so phase
// behavior (the windowed miss-rate structure behind the paper's working-set
// bounds, GCM's epoch resets, delayed-hit analyses) becomes visible instead
// of being averaged into one end-of-trace aggregate.
//
// The engines drive it exclusively through the GC_OBS_* macros
// (src/obs/obs.hpp): `GC_OBS_TICK` calls `tick_due()` once per access — a
// counter increment and compare — and only on a window boundary materializes
// a full live SimStats and calls `record()`. Attaching a timeline never
// perturbs the simulation: window deltas sum to exactly the SimStats the
// un-instrumented run returns (tests/test_obs_timeline.cpp holds both
// engines to that bit-identity).
//
// Lanes: `simulate_column` advances one cache per capacity through a shared
// trace pass; each capacity records into its own lane. Single-capacity
// engines use lane 0.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "util/contracts.hpp"

namespace gcaching::obs {

/// One recorded window of one lane.
struct TimelineWindow {
  std::uint64_t start = 0;   ///< index of the window's first access
  std::uint64_t length = 0;  ///< accesses covered (< window only when final)
  SimStats delta;            ///< stat deltas over exactly these accesses

  double miss_rate() const { return delta.miss_rate(); }
  double spatial_hit_share() const { return delta.spatial_hit_share(); }
  double wasted_sideload_share() const {
    return delta.wasted_sideload_share();
  }
};

class StatsTimeline {
 public:
  /// With `kAutoWindow` the window length is derived from the trace length
  /// at `open()` time (about kAutoTargetWindows windows per run, min 1).
  static constexpr std::uint64_t kAutoWindow = 0;
  static constexpr std::uint64_t kAutoTargetWindows = 256;

  explicit StatsTimeline(std::uint64_t window = kAutoWindow)
      : requested_window_(window) {}

  /// Cold, once per run (GC_OBS_TIMELINE_OPEN): sizes the lane set, resolves
  /// an auto window against the trace length, and resets any previous
  /// recording — a timeline holds the windows of the run that opened it
  /// last. One lane per entry of `lane_capacities`.
  void open(std::span<const std::size_t> lane_capacities,
            std::uint64_t total_accesses);
  void open(std::initializer_list<std::size_t> lane_capacities,
            std::uint64_t total_accesses) {
    open(std::span<const std::size_t>(lane_capacities.begin(),
                                      lane_capacities.size()),
         total_accesses);
  }

  GC_HOT_REGION_BEGIN(timeline_tick)
  /// Hot, once per access per lane: counts the access into the open window
  /// and reports whether it completed the window. Only then does the caller
  /// pay for a stats snapshot (see GC_OBS_TICK).
  bool tick_due(std::size_t lane) noexcept {
    return ++lanes_[lane].in_window >= window_;
  }
  GC_HOT_REGION_END(timeline_tick)

  /// Once per window boundary: closes the open window against the live
  /// running totals (`live` minus the totals at the previous boundary).
  void record(std::size_t lane, const SimStats& live);

  /// Cold, once per run per lane (GC_OBS_TIMELINE_CLOSE): flushes a final
  /// partial window, if any, and pins the run's final totals.
  void close(std::size_t lane, const SimStats& final_totals);

  std::uint64_t window() const noexcept { return window_; }
  std::size_t num_lanes() const noexcept { return lanes_.size(); }
  std::size_t lane_capacity(std::size_t lane) const;
  const std::vector<TimelineWindow>& windows(std::size_t lane) const;
  const SimStats& final_totals(std::size_t lane) const;
  bool closed(std::size_t lane) const;

  /// Sum of every recorded window delta of `lane` — bit-identical to the
  /// run's final SimStats once the lane is closed (the invariant
  /// tests/test_obs_timeline.cpp pins for both engines).
  SimStats window_sum(std::size_t lane) const;

  // ---- Sinks ---------------------------------------------------------------
  // CSV (util/csv, RFC 4180) and JSON-lines, one row/object per window:
  // lane, capacity, window, start, length, raw deltas, derived rates.

  void write_csv(const std::string& path) const;
  void write_jsonl(const std::string& path) const;

 private:
  struct Lane {
    std::size_t capacity = 0;
    std::uint64_t in_window = 0;  ///< accesses since the last boundary
    std::uint64_t seen = 0;       ///< accesses already folded into rows
    SimStats last;                ///< running totals at the last boundary
    SimStats final_totals;
    bool closed = false;
    std::vector<TimelineWindow> rows;
  };

  const Lane& checked_lane(std::size_t lane) const;

  std::uint64_t requested_window_;
  std::uint64_t window_ = 1;
  std::vector<Lane> lanes_;
};

namespace detail {
inline thread_local StatsTimeline* tl_timeline = nullptr;
}  // namespace detail

/// The timeline the current thread's next simulation run records into, or
/// nullptr (the idle fast path: engines read this once per run and test a
/// register against null per access).
inline StatsTimeline* current_timeline() noexcept {
  return detail::tl_timeline;
}

/// RAII attachment: simulations started on this thread inside the scope
/// record into `timeline`. Scopes nest; the previous attachment is restored.
class TimelineScope {
 public:
  explicit TimelineScope(StatsTimeline& timeline) noexcept
      : prev_(detail::tl_timeline) {
    detail::tl_timeline = &timeline;
  }
  ~TimelineScope() { detail::tl_timeline = prev_; }
  TimelineScope(const TimelineScope&) = delete;
  TimelineScope& operator=(const TimelineScope&) = delete;

 private:
  StatsTimeline* prev_;
};

/// RAII detachment: simulations inside the scope record nothing, whatever
/// the enclosing attachment. Used by internal cross-check runs (the
/// stack-column derivation check) so a verification replay never leaks into
/// the timeline the user attached for the real run.
class TimelineDetachScope {
 public:
  TimelineDetachScope() noexcept : prev_(detail::tl_timeline) {
    detail::tl_timeline = nullptr;
  }
  ~TimelineDetachScope() { detail::tl_timeline = prev_; }
  TimelineDetachScope(const TimelineDetachScope&) = delete;
  TimelineDetachScope& operator=(const TimelineDetachScope&) = delete;

 private:
  StatsTimeline* prev_;
};

}  // namespace gcaching::obs
