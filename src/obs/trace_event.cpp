#include "obs/trace_event.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/contracts.hpp"

namespace gcaching::obs {

std::uint32_t TraceLog::tid_locked(std::thread::id id) {
  const auto it = tids_.find(id);
  if (it != tids_.end()) return it->second;
  const auto tid = static_cast<std::uint32_t>(tids_.size());
  tids_.emplace(id, tid);
  return tid;
}

void TraceLog::complete(std::string name, std::string cat,
                        std::int64_t start_ns, std::int64_t end_ns,
                        std::vector<std::pair<std::string, std::string>> args) {
  TraceEvent e;
  e.name = std::move(name);
  e.cat = std::move(cat);
  e.ph = 'X';
  e.ts_ns = start_ns;
  e.dur_ns = std::max<std::int64_t>(0, end_ns - start_ns);
  e.args = std::move(args);
  std::lock_guard<std::mutex> lock(mu_);
  e.tid = tid_locked(std::this_thread::get_id());
  events_.push_back(std::move(e));
}

void TraceLog::set_thread_name(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint32_t tid = tid_locked(std::this_thread::get_id());
  auto& current = thread_names_[tid];
  if (current == name) return;
  current = name;
  TraceEvent e;
  e.name = "thread_name";
  e.ph = 'M';
  e.tid = tid;
  e.args.emplace_back("name", name);
  events_.push_back(std::move(e));
}

std::size_t TraceLog::size() const {
  // GCLINT-ALLOW(hot-region-transitive): unqualified-name collision — hot regions call vector::size/flags_.size(), never TraceLog::size; the trace log is collect-time only
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceLog::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_event(std::ostream& os, const TraceEvent& e) {
  os << "{\"name\": ";
  write_json_string(os, e.name);
  os << ", \"ph\": \"" << e.ph << '"';
  if (!e.cat.empty()) {
    os << ", \"cat\": ";
    write_json_string(os, e.cat);
  }
  // Chrome timestamps are microseconds; keep nanosecond resolution as a
  // fraction.
  os << ", \"ts\": " << static_cast<double>(e.ts_ns) / 1000.0;
  if (e.ph == 'X')
    os << ", \"dur\": " << static_cast<double>(e.dur_ns) / 1000.0;
  os << ", \"pid\": 1, \"tid\": " << e.tid;
  if (!e.args.empty()) {
    os << ", \"args\": {";
    for (std::size_t i = 0; i < e.args.size(); ++i) {
      if (i > 0) os << ", ";
      write_json_string(os, e.args[i].first);
      os << ": ";
      write_json_string(os, e.args[i].second);
    }
    os << '}';
  }
  os << '}';
}

}  // namespace

void TraceLog::write_chrome_trace(std::ostream& os) const {
  std::vector<TraceEvent> sorted = events();
  // Start-time order with longer (enclosing) spans first on ties: makes
  // per-thread timestamps monotonic in the file and nesting unambiguous.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.dur_ns > b.dur_ns;
                   });
  const auto precision = os.precision(3);
  const auto flags = os.setf(std::ios::fixed, std::ios::floatfield);
  os << "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    os << "  ";
    write_event(os, sorted[i]);
    os << (i + 1 < sorted.size() ? ",\n" : "\n");
  }
  os << "]}\n";
  os.precision(precision);
  os.flags(flags);
}

void TraceLog::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out(path);
  GC_REQUIRE(out.good(), "cannot open " + path + " for writing");
  write_chrome_trace(out);
}

// ---- Schema validation ------------------------------------------------------
// A deliberately tiny JSON reader: just enough structure to check the traces
// this module writes (and to reject hand-broken ones in tests). Not a
// general-purpose parser; numbers are doubles, no \uXXXX decoding beyond
// skipping.

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  /// Parses the whole input; on failure `error()` is non-empty.
  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (error_.empty() && pos_ != text_.size()) fail("trailing content");
    return v;
  }

  const std::string& error() const { return error_; }

 private:
  void fail(const std::string& what) {
    if (error_.empty())
      error_ = what + " at offset " + std::to_string(pos_);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return parse_string_value();
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') return parse_null();
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    consume('{');
    if (consume('}')) return v;
    do {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail("expected object key");
        return v;
      }
      std::string key = parse_raw_string();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return v;
      }
      v.object.emplace_back(std::move(key), parse_value());
      if (!error_.empty()) return v;
    } while (consume(','));
    if (!consume('}')) fail("expected '}' or ','");
    return v;
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    consume('[');
    if (consume(']')) return v;
    do {
      v.array.push_back(parse_value());
      if (!error_.empty()) return v;
    } while (consume(','));
    if (!consume(']')) fail("expected ']' or ','");
    return v;
  }

  std::string parse_raw_string() {
    std::string out;
    ++pos_;  // opening quote
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        switch (text_[pos_]) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'u': pos_ += std::min<std::size_t>(4, text_.size() - pos_ - 1);
                    out += '?';
                    break;
          default: out += text_[pos_];
        }
      } else {
        out += text_[pos_];
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
      return out;
    }
    ++pos_;  // closing quote
    return out;
  }

  JsonValue parse_string_value() {
    JsonValue v;
    v.kind = JsonValue::Kind::kString;
    v.string = parse_raw_string();
    return v;
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("malformed literal");
    }
    return v;
  }

  JsonValue parse_null() {
    JsonValue v;
    if (text_.compare(pos_, 4, "null") == 0)
      pos_ += 4;
    else
      fail("malformed literal");
    return v;
  }

  JsonValue parse_number() {
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) {
      fail("malformed value");
      return v;
    }
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool get_number(const JsonValue& event, const char* key, double& out) {
  const JsonValue* v = event.find(key);
  if (v == nullptr || v->kind != JsonValue::Kind::kNumber) return false;
  out = v->number;
  return true;
}

}  // namespace

std::string validate_chrome_trace(const std::string& json) {
  JsonParser parser(json);
  const JsonValue root = parser.parse();
  if (!parser.error().empty()) return "not valid JSON: " + parser.error();
  if (root.kind != JsonValue::Kind::kObject)
    return "top-level value is not an object";
  const JsonValue* events = root.find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray)
    return "missing \"traceEvents\" array";

  struct ThreadState {
    double last_ts = -1.0;
    std::vector<double> open_ends;           // X nesting (end timestamps)
    std::vector<std::string> open_begins;    // B/E matching (names)
  };
  std::map<double, ThreadState> threads;

  for (std::size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& e = events->array[i];
    const std::string at = "event " + std::to_string(i);
    if (e.kind != JsonValue::Kind::kObject) return at + ": not an object";
    const JsonValue* name = e.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString)
      return at + ": missing \"name\"";
    const JsonValue* ph = e.find("ph");
    if (ph == nullptr || ph->kind != JsonValue::Kind::kString ||
        ph->string.size() != 1)
      return at + ": missing one-character \"ph\"";
    double ts = 0.0, pid = 0.0, tid = 0.0;
    if (!get_number(e, "ts", ts) || ts < 0.0)
      return at + ": missing non-negative \"ts\"";
    if (!get_number(e, "pid", pid)) return at + ": missing \"pid\"";
    if (!get_number(e, "tid", tid)) return at + ": missing \"tid\"";
    const char kind = ph->string[0];
    if (kind == 'M') continue;  // metadata: no ordering constraints
    if (kind != 'X' && kind != 'B' && kind != 'E')
      return at + ": unsupported ph \"" + ph->string + '"';

    ThreadState& t = threads[tid];
    if (ts < t.last_ts)
      return at + ": ts is not monotonic within tid " + std::to_string(tid);
    t.last_ts = ts;
    if (kind == 'X') {
      double dur = 0.0;
      if (!get_number(e, "dur", dur) || dur < 0.0)
        return at + ": X event missing non-negative \"dur\"";
      const double end = ts + dur;
      // Sub-nanosecond slack (timestamps are microseconds): endpoint sums of
      // parsed doubles may disagree by an ulp even for perfectly nested
      // spans; a real overlap is at least a full nanosecond.
      constexpr double kSlackUs = 1e-3;
      while (!t.open_ends.empty() && t.open_ends.back() <= ts + kSlackUs)
        t.open_ends.pop_back();
      if (!t.open_ends.empty() && end > t.open_ends.back() + kSlackUs)
        return at + ": X event overlaps an enclosing span without nesting";
      t.open_ends.push_back(end);
    } else if (kind == 'B') {
      t.open_begins.push_back(name->string);
    } else {  // 'E'
      if (t.open_begins.empty())
        return at + ": E event without a matching B";
      t.open_begins.pop_back();
    }
  }
  for (const auto& [tid, t] : threads)
    if (!t.open_begins.empty())
      return "unclosed B event on tid " + std::to_string(tid);
  return "";
}

}  // namespace gcaching::obs
