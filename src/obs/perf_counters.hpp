// Per-thread hardware counter capture via perf_event_open (Linux).
//
// A `PerfCounters` instance opens four events scoped to the CALLING thread
// (cycles, instructions, LLC misses, context switches), so each load
// generator thread can own one and the totals attribute work to the thread
// that did it. Counting costs nothing on the measured path — the kernel
// maintains the counts; we only read() them at stop.
//
// Graceful degradation is a hard requirement: CI containers and locked-down
// hosts reject perf_event_open (EACCES under perf_event_paranoid >= 2,
// ENOSYS in some sandboxes) and non-Linux builds lack the syscall entirely.
// In every such case `available()` is false, totals read as zeros with
// `valid == false`, and ONE loud warning is printed to stderr per process —
// never one per thread, never a crash, never a silent all-zeros JSON field
// (bench_gcached writes `perf_valid` so a reader can tell "zero events"
// from "counters unavailable").
#pragma once

#include <cstdint>
#include <string>

namespace gcaching::obs {

/// Totals read from one thread's counters (or an aggregation over threads).
/// `valid` is false when any constituent counter could not be captured.
struct PerfTotals {
  bool valid = false;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t context_switches = 0;

  PerfTotals& operator+=(const PerfTotals& o) {
    // An aggregate is valid only if every contributor was.
    valid = valid && o.valid;
    cycles += o.cycles;
    instructions += o.instructions;
    llc_misses += o.llc_misses;
    context_switches += o.context_switches;
    return *this;
  }
};

/// True once any PerfCounters in this process failed to open — used to emit
/// the loud fallback warning exactly once.
bool perf_counters_supported() noexcept;

class PerfCounters {
 public:
  /// Opens the counters for the calling thread, disabled. On any failure
  /// the instance is inert (`available() == false`) and the once-per-process
  /// warning has been printed.
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  bool available() const noexcept { return available_; }

  /// Reset and enable counting on the calling thread. No-op when inert.
  void start() noexcept;
  /// Disable counting and read totals. `valid` mirrors available().
  PerfTotals stop() noexcept;

 private:
  static constexpr int kEvents = 4;
  int fds_[kEvents] = {-1, -1, -1, -1};
  bool available_ = false;
};

}  // namespace gcaching::obs
