#include "obs/gcmon.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/trace_event.hpp"
#include "util/contracts.hpp"

namespace gcaching::obs {

Monitor::Monitor(MonitorConfig cfg)
    : cfg_(std::move(cfg)), started_(std::chrono::steady_clock::now()) {
  GC_REQUIRE(cfg_.interval.count() > 0, "monitor interval must be positive");
  GC_REQUIRE(cfg_.ring_capacity > 0, "monitor ring needs capacity >= 1");
}

Monitor::~Monitor() { stop(); }

void Monitor::attach_atlas(const ShardAtlas* atlas) {
  std::lock_guard<std::mutex> lock(mu_);
  atlas_ = atlas;
  prev_.assign(atlas != nullptr ? atlas->size() : 0, ShardValues{});
}

void Monitor::add_histogram(const HdrHistogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_.push_back(h);
}

void Monitor::remove_histogram(const HdrHistogram* h) {
  std::lock_guard<std::mutex> lock(mu_);
  histograms_.erase(std::remove(histograms_.begin(), histograms_.end(), h),
                    histograms_.end());
}

void Monitor::start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  started_ = std::chrono::steady_clock::now();
  thread_ = std::thread([this] { run_loop(); });
}

void Monitor::stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_) return;
    stop_requested_ = true;
  }
  run_cv_.notify_all();
  thread_.join();
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    running_ = false;
  }
  // Final harvest after the thread has quiesced, so runs shorter than one
  // interval still export at least one snapshot (and end-of-run totals are
  // always captured).
  harvest_now();
}

bool Monitor::running() const {
  std::lock_guard<std::mutex> lock(run_mu_);
  return running_;
}

void Monitor::run_loop() {
  std::unique_lock<std::mutex> lk(run_mu_);
  while (!stop_requested_) {
    lk.unlock();
    harvest_now();
    lk.lock();
    run_cv_.wait_for(lk, cfg_.interval, [this] { return stop_requested_; });
  }
}

Snapshot Monitor::build_snapshot() {
  // Everything under mu_ is a relaxed-atomic read or local arithmetic — no
  // shard lock, no recording-thread block (docs/CONCURRENCY.md).
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  s.seq = seq_++;
  s.wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count();
  s.uptime_s = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - started_)
                   .count();
  if (atlas_ != nullptr) {
    const std::size_t n = atlas_->size();
    s.shards.resize(n);
    s.shard_deltas.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      s.shards[i] = atlas_->read(i);
      s.shard_deltas[i] = s.shards[i] - prev_[i];
      s.totals += s.shards[i];
      prev_[i] = s.shards[i];
    }
    // totals.residency summed occupancy across shards is meaningful; the
    // other gauges difference to zero-delta by construction.
  }
  if (!histograms_.empty()) {
    // Merge into a scratch histogram (~34 KB) so percentile queries see one
    // consistent local table; sources may still be recording (tearing is
    // per-bucket exact, see hdr_histogram.hpp).
    static thread_local HdrHistogram merged;
    merged.clear();
    for (const HdrHistogram* h : histograms_) merged.merge_from(*h);
    s.latency.count = merged.count();
    s.latency.p50_ns = merged.quantile(0.50);
    s.latency.p99_ns = merged.quantile(0.99);
    s.latency.p999_ns = merged.quantile(0.999);
    s.latency.max_ns = merged.max_value();
    last_latency_ = s.latency;
  } else {
    // Gauge semantics: with no histograms registered (e.g. the final
    // harvest after run_load deregistered its per-thread tables), the last
    // observed summary persists instead of snapping to zero.
    s.latency = last_latency_;
  }
  ring_.push_back(s);
  if (ring_.size() > cfg_.ring_capacity)
    ring_.erase(ring_.begin(),
                ring_.begin() +
                    static_cast<std::ptrdiff_t>(ring_.size() -
                                                cfg_.ring_capacity));
  return s;
}

Snapshot Monitor::harvest_now() {
  // Bridge each harvest into the installed TraceLog (if any) so snapshot
  // cadence and export cost render beside sweep spans in chrome://tracing.
  SpanGuard span("gcmon_snapshot", "gcmon");
  Snapshot s = build_snapshot();
  if (span.active()) span.arg("seq", std::to_string(s.seq));
  export_snapshot(s);
  return s;
}

void Monitor::export_snapshot(const Snapshot& snap) {
  if (!cfg_.prometheus_path.empty())
    write_file_atomic(cfg_.prometheus_path, prometheus_text(snap));
  if (!cfg_.jsonl_path.empty()) {
    std::ofstream out(cfg_.jsonl_path, std::ios::app);
    if (out.good()) out << jsonl_line(snap) << '\n';
  }
}

std::size_t Monitor::snapshot_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::vector<Snapshot> Monitor::snapshots() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

namespace {

/// One Prometheus metric family: HELP/TYPE header plus one sample per shard.
void family(std::ostringstream& os, const Snapshot& snap, const char* name,
            const char* type, const char* help,
            std::uint64_t ShardValues::* field) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
  for (std::size_t i = 0; i < snap.shards.size(); ++i)
    os << name << "{shard=\"" << i << "\"} " << snap.shards[i].*field << '\n';
}

void scalar(std::ostringstream& os, const char* name, const char* type,
            const char* help, double value) {
  os << "# HELP " << name << ' ' << help << '\n';
  os << "# TYPE " << name << ' ' << type << '\n';
  os << name << ' ' << value << '\n';
}

}  // namespace

std::string Monitor::prometheus_text(const Snapshot& snap) const {
  std::ostringstream os;
  os.setf(std::ios::fixed, std::ios::floatfield);
  os.precision(1);
  family(os, snap, "gcached_shard_hits_total", "counter",
         "Cache hits served by this shard.", &ShardValues::hits);
  family(os, snap, "gcached_shard_misses_total", "counter",
         "Cache misses (fills) taken by this shard.", &ShardValues::misses);
  family(os, snap, "gcached_shard_sideloads_total", "counter",
         "Items sideloaded into this shard by block fills.",
         &ShardValues::sideloads);
  family(os, snap, "gcached_shard_delayed_hits_total", "counter",
         "Accesses served by an in-flight fill (MSHR coalescing).",
         &ShardValues::delayed_hits);
  family(os, snap, "gcached_shard_coalesced_waiters_total", "counter",
         "Waiters parked on an in-flight MSHR entry.",
         &ShardValues::coalesced);
  family(os, snap, "gcached_shard_lock_acquisitions_total", "counter",
         "Exclusive shard-lock acquisitions.",
         &ShardValues::lock_acquisitions);
  family(os, snap, "gcached_shard_trylock_failures_total", "counter",
         "Failed try-lock attempts (contention events).",
         &ShardValues::trylock_failures);
  family(os, snap, "gcached_shard_backoff_nanoseconds_total", "counter",
         "Cumulative nanoseconds slept in lock backoff.",
         &ShardValues::backoff_ns);
  family(os, snap, "gcached_shard_residency_items", "gauge",
         "Items currently resident in this shard's cache.",
         &ShardValues::residency);
  family(os, snap, "gcached_shard_mshr_inflight", "gauge",
         "Block fills currently in flight in this shard's MSHR table.",
         &ShardValues::mshr_inflight);
  scalar(os, "gcached_latency_count", "gauge",
         "Operations recorded by the merged latency histogram.",
         static_cast<double>(snap.latency.count));
  scalar(os, "gcached_latency_p50_nanoseconds", "gauge",
         "Median operation latency (HDR histogram, <=1% relative error).",
         snap.latency.p50_ns);
  scalar(os, "gcached_latency_p99_nanoseconds", "gauge",
         "99th percentile operation latency.", snap.latency.p99_ns);
  scalar(os, "gcached_latency_p999_nanoseconds", "gauge",
         "99.9th percentile operation latency.", snap.latency.p999_ns);
  scalar(os, "gcached_latency_max_nanoseconds", "gauge",
         "Maximum recorded operation latency.", snap.latency.max_ns);
  scalar(os, "gcmon_snapshot_seq", "counter",
         "Harvest sequence number of this exposition.",
         static_cast<double>(snap.seq));
  scalar(os, "gcmon_uptime_seconds", "gauge",
         "Seconds since the monitor was started.", snap.uptime_s);
  return os.str();
}

namespace {

void json_shard(std::ostringstream& os, const ShardValues& v) {
  os << "{\"hits\": " << v.hits << ", \"misses\": " << v.misses
     << ", \"sideloads\": " << v.sideloads
     << ", \"delayed_hits\": " << v.delayed_hits
     << ", \"coalesced\": " << v.coalesced
     << ", \"lock_acquisitions\": " << v.lock_acquisitions
     << ", \"trylock_failures\": " << v.trylock_failures
     << ", \"backoff_ns\": " << v.backoff_ns
     << ", \"residency\": " << v.residency
     << ", \"mshr_inflight\": " << v.mshr_inflight << '}';
}

}  // namespace

std::string Monitor::jsonl_line(const Snapshot& snap) const {
  std::ostringstream os;
  os.setf(std::ios::fixed, std::ios::floatfield);
  os.precision(3);
  os << "{\"seq\": " << snap.seq << ", \"wall_ms\": " << snap.wall_ms
     << ", \"uptime_s\": " << snap.uptime_s;
  os << ", \"totals\": ";
  json_shard(os, snap.totals);
  os << ", \"latency\": {\"count\": " << snap.latency.count
     << ", \"p50_ns\": " << snap.latency.p50_ns
     << ", \"p99_ns\": " << snap.latency.p99_ns
     << ", \"p999_ns\": " << snap.latency.p999_ns
     << ", \"max_ns\": " << snap.latency.max_ns << '}';
  os << ", \"shards\": [";
  for (std::size_t i = 0; i < snap.shards.size(); ++i) {
    if (i > 0) os << ", ";
    json_shard(os, snap.shards[i]);
  }
  os << "], \"deltas\": [";
  for (std::size_t i = 0; i < snap.shard_deltas.size(); ++i) {
    if (i > 0) os << ", ";
    json_shard(os, snap.shard_deltas[i]);
  }
  os << "]}";
  return os.str();
}

bool write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.good()) return false;
    out << text;
    out.flush();
    if (!out.good()) {
      out.close();
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

// ---- Prometheus exposition validation --------------------------------------
// Line-oriented check of the text format this module writes: comments, HELP/
// TYPE headers, and `name{labels} value` samples. Same spirit as
// validate_chrome_trace — small, strict about what we emit, used by tests
// and the CI gcmon job.

namespace {

bool valid_metric_name(const std::string& s) {
  if (s.empty()) return false;
  const auto head = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_' ||
           c == ':';
  };
  const auto tail = [&](char c) {
    return head(c) || std::isdigit(static_cast<unsigned char>(c)) != 0;
  };
  if (!head(s[0])) return false;
  return std::all_of(s.begin() + 1, s.end(), tail);
}

bool parse_finite_number(const std::string& s) {
  if (s.empty()) return false;
  try {
    std::size_t used = 0;
    const double v = std::stod(s, &used);
    return used == s.size() && std::isfinite(v);
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

std::string validate_prometheus_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  std::vector<std::string> typed;  // names with a # TYPE declaration
  bool any_sample = false;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string at = "line " + std::to_string(lineno);
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name;
      ls >> hash >> kind >> name;
      if (kind != "HELP" && kind != "TYPE")
        return at + ": comment is neither HELP nor TYPE";
      if (!valid_metric_name(name))
        return at + ": bad metric name \"" + name + '"';
      if (kind == "TYPE") {
        std::string type;
        ls >> type;
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "untyped")
          return at + ": unknown metric type \"" + type + '"';
        typed.push_back(name);
      }
      continue;
    }
    // Sample: name[{labels}] value
    std::size_t name_end = line.find_first_of("{ \t");
    if (name_end == std::string::npos)
      return at + ": sample has no value";
    const std::string name = line.substr(0, name_end);
    if (!valid_metric_name(name))
      return at + ": bad metric name \"" + name + '"';
    if (std::find(typed.begin(), typed.end(), name) == typed.end())
      return at + ": sample \"" + name + "\" has no preceding # TYPE";
    std::size_t rest = name_end;
    if (line[rest] == '{') {
      const std::size_t close = line.find('}', rest);
      if (close == std::string::npos)
        return at + ": unterminated label set";
      // Labels must be name="value" pairs; check quotes pair up.
      const std::string labels = line.substr(rest + 1, close - rest - 1);
      if (std::count(labels.begin(), labels.end(), '"') % 2 != 0)
        return at + ": unbalanced quotes in labels";
      if (!labels.empty() && labels.find('=') == std::string::npos)
        return at + ": labels without '='";
      rest = close + 1;
    }
    const std::size_t value_begin = line.find_first_not_of(" \t", rest);
    if (value_begin == std::string::npos)
      return at + ": sample has no value";
    const std::string value = line.substr(value_begin);
    if (!parse_finite_number(value))
      return at + ": value \"" + value + "\" is not a finite number";
    any_sample = true;
  }
  if (!any_sample) return "exposition contains no samples";
  return "";
}

}  // namespace gcaching::obs
