// gcobs — compile-time-tiered observability, umbrella header.
//
// The same tiering philosophy as util/contracts.hpp, applied to telemetry:
//
//   GCACHING_OBS=ON  (default preset)  — GC_OBS_* macros are live. Attaching
//     a sink (TimelineScope / TraceLogScope / MetricsScope) turns recording
//     on; with no sink attached the engines select their tick-free loop copy
//     once per run via GC_OBS_ATTACHED (idle timeline cost: one branch per
//     RUN, not per access) and each span/counter site costs one relaxed
//     atomic load.
//   GCACHING_OBS=OFF (fast preset)     — every GC_OBS_* macro expands to
//     nothing; the hot loops compile to exactly the un-instrumented code.
//     tests/test_obs_timeline.cpp proves this the same way test_contracts
//     proves GC_HOT_* elision: a constexpr function containing the macros
//     must be a constant expression.
//
// Instrumentation sites use ONLY these macros — never obs:: calls directly —
// inside GC_HOT_REGION markers; gclint's `hot-region-raw-obs` rule enforces
// this, so telemetry can never silently tax the fast path.
//
// Macro inventory:
//   GC_OBS_TIMELINE(var)                 hoist the thread's timeline pointer
//   GC_OBS_ATTACHED(var)                 `var != nullptr`, constant false
//                                        when compiled out — lets an engine
//                                        keep a tick-free copy of its hot
//                                        loop for the idle/off cases
//   GC_OBS_TIMELINE_OPEN(var, caps, n)   size lanes / resolve auto window
//   GC_OBS_TICK(var, lane, ...)          per-access; `...` (a live SimStats
//                                        expression) is evaluated only on a
//                                        window boundary
//   GC_OBS_TIMELINE_CLOSE(var, lane, f)  flush partial window, pin totals
//   GC_OBS_SPAN(var, name, cat)          RAII trace span for this scope
//   GC_OBS_SPAN_ARG(var, key, val)       attach an argument to a span
//   GC_OBS_THREAD_NAME(name)             label the thread in the trace view
//   GC_OBS_COUNT(name, delta)            bump a registry counter
#pragma once

#include "obs/registry.hpp"
#include "obs/timeline.hpp"
#include "obs/trace_event.hpp"

namespace gcaching::obs {

/// True when the GC_OBS_* macros are live in this build. Mirrors
/// contracts.hpp's kHotChecksEnabled so tests and tools can branch on the
/// build flavor instead of sprinkling #ifdefs.
#if defined(GCACHING_OBS)
inline constexpr bool kObsEnabled = true;
#else
inline constexpr bool kObsEnabled = false;
#endif

}  // namespace gcaching::obs

#if defined(GCACHING_OBS)

#define GC_OBS_TIMELINE(var) \
  ::gcaching::obs::StatsTimeline* const var = ::gcaching::obs::current_timeline()

#define GC_OBS_ATTACHED(var) ((var) != nullptr)

// `caps` is deliberately not parenthesized: call sites may pass a braced
// single-capacity list like `{cache.capacity()}` (initializer_list overload),
// which parentheses would turn into an invalid expression.
#define GC_OBS_TIMELINE_OPEN(var, caps, total)        \
  do {                                                \
    if ((var) != nullptr) (var)->open(caps, (total)); \
  } while (0)

// The variadic tail is the live-stats expression; it is only evaluated when
// tick_due() reports a window boundary, so the per-access cost stays at one
// null test plus one counter increment.
#define GC_OBS_TICK(var, lane, ...)                       \
  do {                                                    \
    if ((var) != nullptr && (var)->tick_due(lane))        \
      (var)->record((lane), (__VA_ARGS__));               \
  } while (0)

#define GC_OBS_TIMELINE_CLOSE(var, lane, final_totals)             \
  do {                                                             \
    if ((var) != nullptr) (var)->close((lane), (final_totals));    \
  } while (0)

#define GC_OBS_SPAN(var, span_name, span_cat) \
  ::gcaching::obs::SpanGuard var((span_name), (span_cat))

#define GC_OBS_SPAN_ARG(var, key, value) (var).arg((key), (value))

#define GC_OBS_THREAD_NAME(name) ::gcaching::obs::name_current_thread(name)

#define GC_OBS_COUNT(counter_name, delta)                                   \
  do {                                                                      \
    if (::gcaching::obs::CounterRegistry* gc_obs_reg_ =                     \
            ::gcaching::obs::metrics();                                     \
        gc_obs_reg_ != nullptr)                                             \
      gc_obs_reg_->add((counter_name), (delta));                            \
  } while (0)

#else  // GCACHING_OBS off: every site vanishes.

// GC_OBS_TIMELINE still declares `var` (as a constant null) so that
// GC_OBS_ATTACHED(var) remains a compile-time-false expression whose branch
// the compiler deletes — the instrumented copy of an engine loop vanishes
// along with the macros themselves.
#define GC_OBS_TIMELINE(var) \
  [[maybe_unused]] constexpr decltype(nullptr) var = nullptr
#define GC_OBS_ATTACHED(var) false
#define GC_OBS_TIMELINE_OPEN(var, caps, total) \
  do {                                         \
  } while (0)
#define GC_OBS_TICK(var, lane, ...) \
  do {                              \
  } while (0)
#define GC_OBS_TIMELINE_CLOSE(var, lane, final_totals) \
  do {                                                 \
  } while (0)
#define GC_OBS_SPAN(var, span_name, span_cat) \
  do {                                        \
  } while (0)
#define GC_OBS_SPAN_ARG(var, key, value) \
  do {                                   \
  } while (0)
#define GC_OBS_THREAD_NAME(name) \
  do {                           \
  } while (0)
#define GC_OBS_COUNT(counter_name, delta) \
  do {                                    \
  } while (0)

#endif  // GCACHING_OBS
