#include "obs/timeline.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/csv.hpp"

namespace gcaching::obs {

void StatsTimeline::open(std::span<const std::size_t> lane_capacities,
                         std::uint64_t total_accesses) {
  GC_REQUIRE(!lane_capacities.empty(), "timeline needs at least one lane");
  window_ = requested_window_;
  if (window_ == kAutoWindow)
    window_ = std::max<std::uint64_t>(1, total_accesses / kAutoTargetWindows);
  lanes_.assign(lane_capacities.size(), Lane{});
  for (std::size_t i = 0; i < lane_capacities.size(); ++i)
    lanes_[i].capacity = lane_capacities[i];
}

void StatsTimeline::record(std::size_t lane, const SimStats& live) {
  Lane& l = lanes_[lane];
  TimelineWindow w;
  w.start = l.seen;
  w.length = l.in_window;
  w.delta = live - l.last;
  l.rows.push_back(w);
  l.seen += l.in_window;
  l.in_window = 0;
  l.last = live;
}

void StatsTimeline::close(std::size_t lane, const SimStats& final_totals) {
  GC_REQUIRE(lane < lanes_.size(), "timeline lane out of range");
  Lane& l = lanes_[lane];
  if (l.in_window > 0) record(lane, final_totals);
  GC_ENSURE(l.last == final_totals,
            "timeline window deltas diverged from the run's final stats");
  l.final_totals = final_totals;
  l.closed = true;
}

const StatsTimeline::Lane& StatsTimeline::checked_lane(
    std::size_t lane) const {
  GC_REQUIRE(lane < lanes_.size(), "timeline lane out of range");
  return lanes_[lane];
}

std::size_t StatsTimeline::lane_capacity(std::size_t lane) const {
  return checked_lane(lane).capacity;
}

const std::vector<TimelineWindow>& StatsTimeline::windows(
    std::size_t lane) const {
  return checked_lane(lane).rows;
}

const SimStats& StatsTimeline::final_totals(std::size_t lane) const {
  return checked_lane(lane).final_totals;
}

bool StatsTimeline::closed(std::size_t lane) const {
  return checked_lane(lane).closed;
}

SimStats StatsTimeline::window_sum(std::size_t lane) const {
  SimStats sum;
  for (const TimelineWindow& w : checked_lane(lane).rows) sum += w.delta;
  return sum;
}

namespace {

std::string fmt_rate(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

void StatsTimeline::write_csv(const std::string& path) const {
  CsvWriter csv(path,
                {"lane", "capacity", "window", "start", "length", "accesses",
                 "misses", "miss_rate", "temporal_hits", "spatial_hits",
                 "spatial_hit_share", "items_loaded", "sideloads",
                 "evictions", "wasted_sideloads", "wasted_sideload_share"});
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    const Lane& l = lanes_[lane];
    for (std::size_t i = 0; i < l.rows.size(); ++i) {
      const TimelineWindow& w = l.rows[i];
      csv.add_row({std::to_string(lane), std::to_string(l.capacity),
                   std::to_string(i), std::to_string(w.start),
                   std::to_string(w.length), std::to_string(w.delta.accesses),
                   std::to_string(w.delta.misses), fmt_rate(w.miss_rate()),
                   std::to_string(w.delta.temporal_hits),
                   std::to_string(w.delta.spatial_hits),
                   fmt_rate(w.spatial_hit_share()),
                   std::to_string(w.delta.items_loaded),
                   std::to_string(w.delta.sideloads),
                   std::to_string(w.delta.evictions),
                   std::to_string(w.delta.wasted_sideloads),
                   fmt_rate(w.wasted_sideload_share())});
    }
  }
}

void StatsTimeline::write_jsonl(const std::string& path) const {
  std::ofstream out(path);
  GC_REQUIRE(out.good(), "cannot open " + path + " for writing");
  for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
    const Lane& l = lanes_[lane];
    for (std::size_t i = 0; i < l.rows.size(); ++i) {
      const TimelineWindow& w = l.rows[i];
      out << "{\"lane\": " << lane << ", \"capacity\": " << l.capacity
          << ", \"window\": " << i << ", \"start\": " << w.start
          << ", \"length\": " << w.length
          << ", \"accesses\": " << w.delta.accesses
          << ", \"misses\": " << w.delta.misses
          << ", \"miss_rate\": " << fmt_rate(w.miss_rate())
          << ", \"temporal_hits\": " << w.delta.temporal_hits
          << ", \"spatial_hits\": " << w.delta.spatial_hits
          << ", \"spatial_hit_share\": " << fmt_rate(w.spatial_hit_share())
          << ", \"items_loaded\": " << w.delta.items_loaded
          << ", \"sideloads\": " << w.delta.sideloads
          << ", \"evictions\": " << w.delta.evictions
          << ", \"wasted_sideloads\": " << w.delta.wasted_sideloads
          << ", \"wasted_sideload_share\": "
          << fmt_rate(w.wasted_sideload_share()) << "}\n";
    }
  }
}

}  // namespace gcaching::obs
