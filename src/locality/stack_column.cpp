#include "locality/stack_column.hpp"

#include <algorithm>
#include <numeric>

#include "locality/mrc.hpp"
#include "util/contracts.hpp"

namespace gcaching::locality {

namespace {

/// Suffix-capped prefix sums of a difference array: out[c] = number of
/// recorded intervals [lo, hi) containing c.
std::vector<std::uint64_t> integrate(const std::vector<std::int64_t>& diff) {
  std::vector<std::uint64_t> out(diff.size());
  std::int64_t run = 0;
  for (std::size_t c = 0; c < diff.size(); ++c) {
    run += diff[c];
    GC_HOT_CHECK(run >= 0, "interval accounting went negative");
    out[c] = static_cast<std::uint64_t>(run);
  }
  return out;
}

}  // namespace

bool block_column_supported(const BlockMap& map) {
  return map.max_block_size() >= 1 &&
         map.num_items() == map.num_blocks() * map.max_block_size();
}

std::vector<SimStats> item_lru_column(const BlockMap& map, const Trace& trace,
                                      std::span<const std::size_t> capacities) {
  const StackDistanceHistogram hist =
      stack_distances(trace.accesses(), map.num_items());
  std::vector<SimStats> out(capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    const std::size_t k = capacities[i];
    GC_REQUIRE(k >= 1, "cache capacity must be at least one item");
    SimStats& s = out[i];
    s.accesses = hist.accesses;
    s.misses = hist.misses_at(k);
    s.hits = s.accesses - s.misses;
    // ItemLru is kRequestedLoadsOnly: every hit is temporal, every miss
    // loads exactly the requested item, and a miss evicts iff the cache is
    // full — occupancy is min(misses so far, k), so total evictions are the
    // misses beyond the fill phase.
    s.temporal_hits = s.hits;
    s.spatial_hits = 0;
    s.items_loaded = s.misses;
    s.sideloads = 0;
    s.evictions = s.misses > k ? s.misses - k : 0;
    s.wasted_sideloads = 0;
  }
  return out;
}

std::vector<SimStats> block_lru_column(const BlockMap& map, const Trace& trace,
                                       std::span<const BlockId> block_ids,
                                       std::span<const std::size_t> capacities) {
  GC_REQUIRE(block_column_supported(map),
             "block-lru stack column needs a uniform partition");
  GC_REQUIRE(block_ids.size() == trace.size(),
             "one precomputed block id per access is required");
  const std::size_t B = map.max_block_size();
  for (const std::size_t k : capacities)
    GC_REQUIRE(k >= B, "a Block Cache needs capacity >= B to hold any block");

  const std::size_t nb = map.num_blocks();
  const std::size_t T = trace.size();
  // Block stack distances never exceed nb, so nb + 1 acts as infinity; the
  // difference arrays are indexed by block capacity C clamped to nb.
  const std::size_t kInf = nb + 1;

  StackDistanceWalker walker(nb, T);
  std::vector<std::uint64_t> dist_hist(nb + 1, 0);  // finite distances only
  std::uint64_t cold = 0;
  // pending[y] = max block stack distance observed at accesses to y's block
  // since y was last touched (kInf once a cold block load is in the window;
  // 0 while the block has never been accessed).
  std::vector<std::size_t> pending(map.num_items(), 0);
  std::vector<std::size_t> last_block_pos(nb, 0);  // 1-based; 0 = never
  std::vector<std::int64_t> spatial_diff(nb + 2, 0);
  std::vector<std::int64_t> wasted_diff(nb + 2, 0);

  const std::vector<ItemId>& accesses = trace.accesses();
  GC_HOT_REGION_BEGIN(block_lru_column_pass)
  for (std::size_t t = 0; t < T; ++t) {
    const ItemId x = accesses[t];
    const BlockId b = block_ids[t];
    const std::size_t raw = walker.next(b);
    const std::size_t d = raw == StackDistanceWalker::kCold ? kInf : raw;
    if (d == kInf) {
      ++cold;
    } else {
      ++dist_hist[d];
    }
    // Hit (d <= C) is spatial iff the block was reloaded since x's last
    // touch (pending[x] > C): contributes to capacities C in [d, m).
    const std::size_t m = pending[x];
    if (d < kInf && m > d) {
      ++spatial_diff[d];
      if (m <= nb) --spatial_diff[m];
    }
    // Miss (d > C) wastes sibling y iff y went untouched through the whole
    // previous load/evict cycle (pending[y] > C): C in [0, min(d, m_y)).
    for (const ItemId y : map.items_of(b)) {
      const std::size_t w = std::min(d, pending[y]);
      if (w > 0) {
        ++wasted_diff[0];
        GC_HOT_CHECK(w <= nb, "wasted interval exceeds the block universe");
        --wasted_diff[w];
      }
    }
    for (const ItemId y : map.items_of(b))
      pending[y] = std::max(pending[y], d);
    pending[x] = 0;  // x is touched now, whatever happened before
    last_block_pos[b] = t + 1;
  }
  GC_HOT_REGION_END(block_lru_column_pass)

  // Final-stack fixup: the simulator charges wasted sideloads at eviction.
  // A block at final stack position p is evicted after its last access at
  // every capacity C < p, wasting each sibling untouched since the last
  // load (pending[y] > C): C in [0, min(p, pending[y])).
  {
    std::vector<BlockId> seen;
    seen.reserve(nb);
    for (BlockId b = 0; b < nb; ++b)
      if (last_block_pos[b] != 0) seen.push_back(b);
    std::sort(seen.begin(), seen.end(), [&](BlockId a, BlockId c) {
      return last_block_pos[a] > last_block_pos[c];
    });
    for (std::size_t rank = 0; rank < seen.size(); ++rank) {
      const BlockId b = seen[rank];
      const std::size_t p = rank + 1;
      for (const ItemId y : map.items_of(b)) {
        const std::size_t w = std::min(p, pending[y]);
        if (w > 0) {
          ++wasted_diff[0];
          --wasted_diff[w];
        }
      }
    }
  }

  const std::vector<std::uint64_t> spatial_at = integrate(spatial_diff);
  const std::vector<std::uint64_t> wasted_at = integrate(wasted_diff);
  std::vector<std::uint64_t> hits_at(nb + 1, 0);
  for (std::size_t c = 1; c <= nb; ++c)
    hits_at[c] = hits_at[c - 1] + dist_hist[c];

  std::vector<SimStats> out(capacities.size());
  for (std::size_t i = 0; i < capacities.size(); ++i) {
    const std::size_t C = std::min(capacities[i] / B, nb);
    SimStats& s = out[i];
    s.accesses = T;
    s.hits = hits_at[C];
    s.misses = T - s.hits;
    s.spatial_hits = spatial_at[C];
    s.temporal_hits = s.hits - s.spatial_hits;
    // Whole-block residency: every miss loads the full block (one requested
    // item, B-1 sideloads) and evicts one whole block once floor(k/B)
    // blocks are resident.
    s.items_loaded = s.misses * B;
    s.sideloads = s.misses * (B - 1);
    const std::uint64_t blocks_evicted = s.misses > C ? s.misses - C : 0;
    s.evictions = blocks_evicted * B;
    s.wasted_sideloads = wasted_at[C];
  }
  return out;
}

}  // namespace gcaching::locality
