// Descriptive trace statistics.
//
// Quick characterization before any simulation: reuse-distance quantiles
// (temporal locality), spatial run lengths (how many consecutive accesses
// stay within one block — the raw material for granularity-change loading),
// and per-block footprint densities (how much of each block a trace
// actually touches — what Block Caches waste). `gcsim profile` and the
// benches use these to explain *why* a policy wins on a trace.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.hpp"

namespace gcaching::locality {

struct TraceStats {
  std::uint64_t accesses = 0;
  std::uint64_t distinct_items = 0;
  std::uint64_t distinct_blocks = 0;

  /// Mean items of a block touched across all blocks ever referenced
  /// (1 = one hot item per block, B = dense use).
  double mean_block_footprint = 0.0;

  /// Mean length of maximal runs of consecutive accesses that stay within
  /// one block (1 = no spatial runs).
  double mean_spatial_run = 0.0;
  std::uint64_t max_spatial_run = 0;

  /// LRU reuse-distance quantiles over items (cold accesses excluded);
  /// index i holds the q[i] quantile from `kQuantiles`.
  static constexpr double kQuantiles[3] = {0.5, 0.9, 0.99};
  std::uint64_t reuse_distance_quantiles[3] = {0, 0, 0};
  std::uint64_t cold_accesses = 0;
};

/// Computes all statistics in O(T · D) time (D = distinct items, from the
/// exact stack-distance pass shared with the MRC module).
TraceStats compute_trace_stats(const Workload& workload);

}  // namespace gcaching::locality
