// Fitting the Section 7.3 polynomial locality family to measured profiles.
//
// Real traces have approximately f(n) = c * n^(1/p) working-set growth for
// some p >= 1 (concave power laws). We fit (c, p) by least squares in
// log-log space:  log f(n) = log c + (1/p) log n.
#pragma once

#include <cstddef>
#include <vector>

#include "bounds/locality_bounds.hpp"

namespace gcaching::locality {

struct PolyFit {
  double c = 1.0;
  double p = 1.0;
  double r_squared = 0.0;  ///< goodness of fit in log-log space

  bounds::LocalityFunction as_function() const {
    return bounds::make_poly_locality(c, p);
  }
};

/// Least-squares fit of c * n^(1/p) through (window_lengths, samples).
/// Samples equal to zero are skipped (log undefined). Requires at least two
/// usable points.
PolyFit fit_poly_locality(const std::vector<std::size_t>& window_lengths,
                          const std::vector<double>& samples);

}  // namespace gcaching::locality
