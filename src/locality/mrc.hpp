// Exact miss-ratio curves via Mattson's stack algorithm.
//
// Mattson et al. [1970] (cited as the classical offline foundation in
// Section 1): for stack algorithms like LRU, one pass over the trace yields
// the miss count for EVERY cache size simultaneously — record each access's
// stack (reuse) distance and take suffix sums of the histogram.
//
// We provide item-granularity curves (traditional LRU), block-granularity
// curves (Block-LRU: distances over the block-id stream, sizes in units of
// B items), and the *spatial-opportunity* curve: the item-LRU curve of an
// imaginary trace where a block access covers all its items — a cheap upper
// bound on what granularity-change loading could ever save.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.hpp"

namespace gcaching::locality {

struct MissRatioCurve {
  /// cache sizes (in items) at which the curve is sampled; ascending.
  std::vector<std::size_t> sizes;
  /// misses[j] = exact LRU miss count at capacity sizes[j].
  std::vector<std::uint64_t> misses;
  /// total accesses (denominator for ratios).
  std::uint64_t accesses = 0;

  double miss_ratio(std::size_t j) const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses[j]) /
                               static_cast<double>(accesses);
  }
};

/// Stack-distance histogram of a key stream: hist[d] = number of accesses
/// with LRU stack distance exactly d (1-based; hist[0] unused), plus
/// `cold` = first-touch accesses (infinite distance).
struct StackDistanceHistogram {
  std::vector<std::uint64_t> hist;  // index = distance, 1-based
  std::uint64_t cold = 0;
  std::uint64_t accesses = 0;

  /// Exact LRU miss count at capacity `c` (in keys): cold misses plus all
  /// accesses with distance > c.
  std::uint64_t misses_at(std::size_t c) const;
};

/// One-pass exact stack distances (O(T * D) with a move-to-front list; D is
/// bounded by the number of distinct keys — fine at simulation scale).
StackDistanceHistogram stack_distances(const std::vector<std::uint32_t>& keys,
                                       std::size_t key_universe);

/// Item-granularity LRU curve of a workload at the given sizes.
MissRatioCurve lru_mrc(const Workload& workload,
                       const std::vector<std::size_t>& sizes);

/// Block-granularity LRU curve: distances over block ids; a capacity of
/// `s` items holds floor(s / B) blocks.
MissRatioCurve block_lru_mrc(const Workload& workload,
                             const std::vector<std::size_t>& sizes);

}  // namespace gcaching::locality
