// Exact miss-ratio curves via Mattson's stack algorithm.
//
// Mattson et al. [1970] (cited as the classical offline foundation in
// Section 1): for stack algorithms like LRU, one pass over the trace yields
// the miss count for EVERY cache size simultaneously — record each access's
// stack (reuse) distance and take suffix sums of the histogram.
//
// We provide item-granularity curves (traditional LRU), block-granularity
// curves (Block-LRU: distances over the block-id stream, sizes in units of
// B items), and the *spatial-opportunity* curve: the item-LRU curve of an
// imaginary trace where a block access covers all its items — a cheap upper
// bound on what granularity-change loading could ever save.
#pragma once

#include <cstdint>
#include <vector>

#include "core/trace.hpp"

namespace gcaching::locality {

struct MissRatioCurve {
  /// cache sizes (in items) at which the curve is sampled; ascending.
  std::vector<std::size_t> sizes;
  /// misses[j] = exact LRU miss count at capacity sizes[j].
  std::vector<std::uint64_t> misses;
  /// total accesses (denominator for ratios).
  std::uint64_t accesses = 0;

  double miss_ratio(std::size_t j) const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses[j]) /
                               static_cast<double>(accesses);
  }
};

/// Stack-distance histogram of a key stream: hist[d] = number of accesses
/// with LRU stack distance exactly d (1-based; hist[0] unused), plus
/// `cold` = first-touch accesses (infinite distance).
struct StackDistanceHistogram {
  std::vector<std::uint64_t> hist;  // index = distance, 1-based
  std::uint64_t cold = 0;
  std::uint64_t accesses = 0;

  /// Exact LRU miss count at capacity `c` (in keys): cold misses plus all
  /// accesses with distance > c.
  std::uint64_t misses_at(std::size_t c) const;
};

/// Incremental exact stack distances at amortized O(1) updates plus a short
/// cache-resident rank query per access.
///
/// The Bennett–Kruskal formulation: each seen key contributes one marker at
/// its *last* access position; the stack (reuse) distance of an access is
/// then 1 + the number of markers strictly between the key's previous
/// access and now — i.e. strictly above the previous position, since every
/// marker sits below the current one. Markers live in a bitmap over
/// positions with per-64-bit-word and per-32-word-chunk population counts
/// layered on top: moving a marker touches O(1) counters, and the
/// markers-above query is one masked popcount plus a count-array scan from
/// the previous position UP — which ends at the latest marker, so reuses of
/// recently-touched keys (the common case on real traces) cost only a few
/// iterations of straight-line code instead of a pointer-chasing balanced
/// tree or Fenwick walk.
///
/// Since live markers never exceed U (the key universe), positions are
/// periodically *compacted*: when the window fills, surviving markers are
/// renumbered 1..m order-preservingly and the bitmap rebuilt in O(window) —
/// renumbering cannot change any between-count. The window is a few
/// multiples of U, so the whole structure stays cache-resident no matter
/// how long the trace is; this is what lets the stack-algorithm sweep path
/// walk multi-million-access traces faster than even a single engine pass
/// (the old move-to-front list was O(depth) per access).
class StackDistanceWalker {
 public:
  /// Distance reported for a first-touch (cold) access.
  static constexpr std::size_t kCold = static_cast<std::size_t>(-1);

  /// `key_universe` bounds the key ids; `num_accesses` caps the initial
  /// window (short streams never pay for a universe-sized bitmap).
  StackDistanceWalker(std::size_t key_universe, std::size_t num_accesses);

  /// LRU stack distance (1-based position before the move-to-front) of the
  /// next access in the stream, or kCold on a first touch.
  std::size_t next(std::uint32_t key);

  std::size_t accesses() const noexcept { return count_; }

 private:
  void set_marker(std::size_t pos);
  void clear_marker(std::size_t pos);
  std::size_t markers_above(std::size_t pos) const;
  void compact();

  std::size_t window_ = 0;              // highest usable position
  std::vector<std::uint64_t> bits_;     // marker bitmap, bit i = position i+1
  std::vector<std::uint8_t> word_cnt_;  // popcount per bitmap word
  std::vector<std::uint16_t> chunk_cnt_;  // popcount per 32 words
  std::vector<std::uint32_t> last_pos_;  // key -> last window position (0 = never)
  std::vector<std::uint32_t> scratch_;  // compaction: old position -> key + 1
  std::size_t pos_ = 0;                 // current window position
  std::size_t count_ = 0;               // total accesses consumed
};

/// One-pass exact stack distances of a whole key stream (histogram form).
StackDistanceHistogram stack_distances(const std::vector<std::uint32_t>& keys,
                                       std::size_t key_universe);

/// Item-granularity LRU curve of a workload at the given sizes.
MissRatioCurve lru_mrc(const Workload& workload,
                       const std::vector<std::size_t>& sizes);

/// Block-granularity LRU curve: distances over block ids; a capacity of
/// `s` items holds floor(s / B) blocks.
MissRatioCurve block_lru_mrc(const Workload& workload,
                             const std::vector<std::size_t>& sizes);

}  // namespace gcaching::locality
