// Concave majorants of measured locality profiles.
//
// The Albers-Favrholdt-Giel model (and its Section 7 extension) requires
// locality functions to be increasing and concave; raw max-distinct
// measurements are increasing but can have convex kinks (phase changes).
// `concave_majorant` computes the least concave function dominating the
// samples — the canonical way to feed measured profiles into the
// Theorem 8-11 bounds without violating the model's assumptions.
#pragma once

#include <cstddef>
#include <vector>

#include "bounds/locality_bounds.hpp"

namespace gcaching::locality {

/// Least concave majorant of the points (window_lengths[j], samples[j]),
/// evaluated back at the same window lengths (upper convex hull in the
/// (n, f) plane). Output dominates input and is concave and nondecreasing
/// when the input is nondecreasing.
std::vector<double> concave_majorant(
    const std::vector<std::size_t>& window_lengths,
    const std::vector<double>& samples);

/// True when samples[j] (at window_lengths[j]) are concave: every interior
/// point lies on or above the chord of its neighbours (tolerance `tol`).
bool is_concave(const std::vector<std::size_t>& window_lengths,
                const std::vector<double>& samples, double tol = 1e-9);

/// Convenience: measured profile -> concave majorant -> interpolated
/// LocalityFunction ready for the Theorem 8-11 bounds.
bounds::LocalityFunction concave_locality_function(
    const std::vector<std::size_t>& window_lengths,
    const std::vector<double>& samples);

}  // namespace gcaching::locality
