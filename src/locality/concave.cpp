#include "locality/concave.hpp"

#include "locality/window_profile.hpp"
#include "util/contracts.hpp"

namespace gcaching::locality {

std::vector<double> concave_majorant(
    const std::vector<std::size_t>& window_lengths,
    const std::vector<double>& samples) {
  GC_REQUIRE(window_lengths.size() == samples.size() && !samples.empty(),
             "need matching non-empty arrays");
  const std::size_t n = samples.size();

  // Upper convex hull (Andrew's monotone chain on the upper side): keep
  // vertices where the hull turns clockwise.
  std::vector<std::size_t> hull;  // indices of hull vertices
  auto x = [&](std::size_t j) {
    return static_cast<double>(window_lengths[j]);
  };
  for (std::size_t j = 0; j < n; ++j) {
    while (hull.size() >= 2) {
      const std::size_t a = hull[hull.size() - 2];
      const std::size_t b = hull[hull.size() - 1];
      // cross((b-a), (j-a)) >= 0 means b is on/below segment a->j: drop it.
      const double cross = (x(b) - x(a)) * (samples[j] - samples[a]) -
                           (samples[b] - samples[a]) * (x(j) - x(a));
      if (cross >= 0)
        hull.pop_back();
      else
        break;
    }
    hull.push_back(j);
  }

  // Evaluate the hull's piecewise-linear upper envelope at every sample x.
  std::vector<double> out(n);
  std::size_t seg = 0;
  for (std::size_t j = 0; j < n; ++j) {
    while (seg + 1 < hull.size() && x(hull[seg + 1]) < x(j)) ++seg;
    if (seg + 1 >= hull.size()) {
      out[j] = samples[hull.back()];
      continue;
    }
    const std::size_t a = hull[seg], b = hull[seg + 1];
    const double t = (x(j) - x(a)) / (x(b) - x(a));
    out[j] = samples[a] + t * (samples[b] - samples[a]);
  }
  return out;
}

bool is_concave(const std::vector<std::size_t>& window_lengths,
                const std::vector<double>& samples, double tol) {
  GC_REQUIRE(window_lengths.size() == samples.size(),
             "need matching arrays");
  for (std::size_t j = 1; j + 1 < samples.size(); ++j) {
    const double xl = static_cast<double>(window_lengths[j - 1]);
    const double xm = static_cast<double>(window_lengths[j]);
    const double xr = static_cast<double>(window_lengths[j + 1]);
    const double chord = samples[j - 1] + (samples[j + 1] - samples[j - 1]) *
                                              (xm - xl) / (xr - xl);
    if (samples[j] + tol < chord) return false;
  }
  return true;
}

bounds::LocalityFunction concave_locality_function(
    const std::vector<std::size_t>& window_lengths,
    const std::vector<double>& samples) {
  return interpolate_locality(window_lengths,
                              concave_majorant(window_lengths, samples));
}

}  // namespace gcaching::locality
