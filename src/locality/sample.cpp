#include "locality/sample.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "core/trace_io.hpp"
#include "util/contracts.hpp"

namespace gcaching::locality {

BlockFilter make_filter(double rate, std::uint64_t seed) {
  GC_REQUIRE(rate > 0.0, "sampling rate must be positive");
  BlockFilter f;
  f.seed = seed;
  if (rate >= 1.0) return f;  // accept-all; exactness must not touch FP
  f.all = false;
  const double scaled = rate * 0x1.0p64;
  f.threshold = scaled >= 0x1.0p64
                    ? std::numeric_limits<std::uint64_t>::max()
                    : static_cast<std::uint64_t>(scaled);
  if (f.threshold == 0) f.threshold = 1;
  return f;
}

double realized_rate(const BlockFilter& f, std::size_t num_blocks) {
  GC_REQUIRE(num_blocks > 0, "block universe must be non-empty");
  if (f.all) return 1.0;
  std::size_t accepted = 0;
  for (BlockId b = 0; b < static_cast<BlockId>(num_blocks); ++b)
    if (f.accepts(b)) ++accepted;
  // An unlucky threshold can accept nothing; report the expectation then so
  // capacity scaling stays positive (the sample is empty anyway).
  if (accepted == 0) return f.rate();
  return static_cast<double>(accepted) / static_cast<double>(num_blocks);
}

namespace {

/// Wrap a finished filter pass: move the survivors over, count the distinct
/// blocks that actually appear (one pass over the sample, not the input).
SampledTrace finalize(FilteredTrace ft, const BlockFilter& f) {
  SampledTrace s;
  s.accesses = std::move(ft.accesses);
  s.block_ids = std::move(ft.block_ids);
  s.total_accesses = ft.total_accesses;
  s.filter = f;
  const std::unordered_set<BlockId> distinct(s.block_ids.begin(),
                                             s.block_ids.end());
  s.sampled_blocks = distinct.size();
  return s;
}

/// Fixed-size (adaptive SHARDS) pass, generic over how the block id of
/// access `i` is obtained. The threshold starts at accept-everything and is
/// lowered by evicting the largest-hash member whenever the distinct-block
/// budget overflows; because it only ever decreases, accesses admitted
/// early under a looser threshold can be compacted out afterwards by
/// re-testing against the final one — the whole input is read exactly once.
template <typename BlockAt>
SampledTrace sample_fixed_size(std::span<const ItemId> accesses,
                               BlockAt&& block_at, const SampleConfig& cfg) {
  GC_REQUIRE(cfg.max_blocks > 0, "fixed-size sampling needs a block budget");
  FilteredTrace out;
  out.total_accesses = accesses.size();
  BlockFilter f;
  f.seed = cfg.seed;
  // Largest hash on top: the member to shed when the budget overflows.
  std::priority_queue<std::pair<std::uint64_t, BlockId>> heap;
  std::unordered_set<BlockId> in_sample;
  // Distinct blocks can't exceed the access count, so an over-generous
  // budget (e.g. "effectively unlimited") must not pre-allocate for it.
  in_sample.reserve(
      std::min<std::size_t>(cfg.max_blocks, accesses.size()) + 1);
  GC_HOT_REGION_BEGIN(adaptive_sample_loop)
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    const BlockId block = block_at(i);
    const std::uint64_t h = sample_hash(block, cfg.seed);
    if (!f.all && h >= f.threshold) continue;
    if (in_sample.insert(block).second) {
      heap.emplace(h, block);
      if (in_sample.size() > cfg.max_blocks) {
        const auto [hmax, bmax] = heap.top();
        heap.pop();
        in_sample.erase(bmax);
        f.threshold = hmax;
        f.all = false;
        if (bmax == block) continue;  // the newcomer itself was the largest
      }
    }
    out.accesses.push_back(accesses[i]);
    out.block_ids.push_back(block);
  }
  GC_HOT_REGION_END(adaptive_sample_loop)
  if (!f.all) {
    // Compact: drop survivors of looser early thresholds.
    std::size_t w = 0;
    for (std::size_t i = 0; i < out.accesses.size(); ++i) {
      if (sample_hash(out.block_ids[i], cfg.seed) < f.threshold) {
        out.accesses[w] = out.accesses[i];
        out.block_ids[w] = out.block_ids[i];
        ++w;
      }
    }
    out.accesses.resize(w);
    out.block_ids.resize(w);
  }
  return finalize(std::move(out), f);
}

}  // namespace

SampledTrace sample_trace(std::span<const ItemId> accesses,
                          std::span<const BlockId> block_ids,
                          const SampleConfig& cfg) {
  GC_REQUIRE(block_ids.size() == accesses.size(),
             "one block id per access is required");
  if (cfg.max_blocks > 0) {
    return sample_fixed_size(
        accesses, [&](std::size_t i) { return block_ids[i]; }, cfg);
  }
  const BlockFilter f = make_filter(cfg.rate, cfg.seed);
  return finalize(
      filter_trace(accesses, block_ids,
                   [&](BlockId b) { return f.accepts(b); }),
      f);
}

SampledTrace sample_trace_uniform(std::span<const ItemId> accesses,
                                  std::size_t block_size,
                                  const SampleConfig& cfg) {
  GC_REQUIRE(block_size > 0, "block size must be positive");
  if (cfg.max_blocks > 0) {
    return sample_fixed_size(
        accesses,
        [&](std::size_t i) {
          return static_cast<BlockId>(accesses[i] / block_size);
        },
        cfg);
  }
  const BlockFilter f = make_filter(cfg.rate, cfg.seed);
  return finalize(
      filter_trace_uniform(accesses, block_size,
                           [&](BlockId b) { return f.accepts(b); }),
      f);
}

SampledTrace sample_workload(const Workload& w, const SampleConfig& cfg) {
  GC_REQUIRE(w.map != nullptr, "workload has no block map");
  std::vector<BlockId> storage;
  const std::span<const BlockId> ids =
      resolve_block_ids(*w.map, w.trace, storage);
  return sample_trace(w.trace.accesses(), ids, cfg);
}

SampledTrace sample_view(const TraceView& view, const SampleConfig& cfg) {
  return sample_trace_uniform(
      view.accesses(), static_cast<std::size_t>(view.block_size()), cfg);
}

Workload make_sampled_workload(const Workload& original, SampledTrace sample) {
  GC_REQUIRE(original.map != nullptr, "workload has no block map");
  Workload w;
  w.map = original.map;
  std::ostringstream name;
  name << original.name << " [sampled rate=" << sample.rate()
       << " blocks=" << sample.sampled_blocks << "]";
  w.name = name.str();
  w.trace = Trace(std::move(sample.accesses));
  w.trace.adopt_block_ids(*w.map, std::move(sample.block_ids));
  return w;
}

std::size_t scaled_capacity(std::size_t capacity, double rate,
                            std::size_t min_capacity) {
  GC_REQUIRE(rate > 0.0 && rate <= 1.0, "sampling rate must be in (0, 1]");
  GC_REQUIRE(capacity > 0, "capacity must be positive");
  if (rate >= 1.0) return capacity;
  auto scaled = static_cast<std::size_t>(
      std::llround(static_cast<double>(capacity) * rate));
  scaled = std::max<std::size_t>(scaled, 1);
  scaled = std::max(scaled, min_capacity);
  return std::min(scaled, capacity);
}

SimStats unsample_stats(const SimStats& sampled,
                        std::uint64_t total_accesses) {
  GC_REQUIRE(sampled.accesses <= total_accesses,
             "sample cannot be larger than the trace it came from");
  if (sampled.accesses == total_accesses) return sampled;  // exact run
  SimStats out;
  out.accesses = total_accesses;
  if (sampled.accesses == 0) return out;
  const double f = static_cast<double>(total_accesses) /
                   static_cast<double>(sampled.accesses);
  const auto scale = [f](std::uint64_t v) {
    return static_cast<std::uint64_t>(
        std::llround(static_cast<double>(v) * f));
  };
  // Scale the independent counters, then derive the complements so the
  // SimStats identities (hits + misses == accesses, temporal + spatial ==
  // hits, wasted <= sideloads) hold exactly after rounding.
  out.misses = std::min(scale(sampled.misses), total_accesses);
  out.hits = total_accesses - out.misses;
  out.spatial_hits = std::min(scale(sampled.spatial_hits), out.hits);
  out.temporal_hits = out.hits - out.spatial_hits;
  out.items_loaded = scale(sampled.items_loaded);
  out.sideloads = scale(sampled.sideloads);
  out.evictions = scale(sampled.evictions);
  out.wasted_sideloads = std::min(scale(sampled.wasted_sideloads),
                                  out.sideloads);
  return out;
}

}  // namespace gcaching::locality
