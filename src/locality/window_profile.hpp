// Measuring locality functions from traces.
//
// The Section 7 model characterizes a trace by f(n) — the maximum number of
// distinct items in any window of n consecutive accesses — and g(n), the
// same over blocks. This module computes those functions *exactly* for a
// chosen set of window lengths (O(T) sliding window per length) and turns
// the measured points into a usable `LocalityFunction` via monotone
// piecewise-linear interpolation.
#pragma once

#include <cstdint>
#include <vector>

#include "bounds/locality_bounds.hpp"
#include "core/trace.hpp"

namespace gcaching::locality {

struct WorkingSetProfile {
  std::vector<std::size_t> window_lengths;  ///< ascending
  std::vector<double> max_distinct_items;   ///< f(n) samples
  std::vector<double> max_distinct_blocks;  ///< g(n) samples

  /// Spatial-locality ratio f(n)/g(n) at sample index s (1 = none, B = max).
  double spatial_ratio(std::size_t s) const {
    return max_distinct_items[s] / max_distinct_blocks[s];
  }
};

/// Exact max-distinct count over all windows of length `n` of `keys`.
/// `key_universe` bounds the key values (items or blocks).
std::size_t max_distinct_in_windows(const std::vector<std::uint32_t>& keys,
                                    std::size_t n, std::size_t key_universe);

/// Default log-spaced window lengths: 1, 2, 3, 4, 6, 8, ... up to the trace
/// length, `points_per_octave` samples per doubling.
std::vector<std::size_t> default_window_lengths(std::size_t trace_length,
                                                int points_per_octave = 4);

/// Computes f and g samples for the workload at the given window lengths
/// (defaults used when empty).
WorkingSetProfile compute_profile(const Workload& workload,
                                  std::vector<std::size_t> window_lengths = {});

/// Monotone piecewise-linear LocalityFunction through measured samples.
/// `value()` clamps outside the sampled range to the boundary slopes;
/// `inverse()` is the exact inverse of the interpolant.
bounds::LocalityFunction interpolate_locality(
    const std::vector<std::size_t>& window_lengths,
    const std::vector<double>& samples);

/// Checks that samples are nondecreasing (required of any valid locality
/// function); returns false otherwise.
bool is_nondecreasing(const std::vector<double>& samples);

}  // namespace gcaching::locality
