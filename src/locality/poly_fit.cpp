#include "locality/poly_fit.hpp"

#include <cmath>

#include "util/contracts.hpp"

namespace gcaching::locality {

PolyFit fit_poly_locality(const std::vector<std::size_t>& window_lengths,
                          const std::vector<double>& samples) {
  GC_REQUIRE(window_lengths.size() == samples.size(),
             "sample arrays must match");
  std::vector<double> lx, ly;
  for (std::size_t j = 0; j < samples.size(); ++j) {
    if (samples[j] <= 0.0 || window_lengths[j] == 0) continue;
    lx.push_back(std::log(static_cast<double>(window_lengths[j])));
    ly.push_back(std::log(samples[j]));
  }
  GC_REQUIRE(lx.size() >= 2, "need at least two positive samples to fit");

  const double n = static_cast<double>(lx.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t j = 0; j < lx.size(); ++j) {
    sx += lx[j];
    sy += ly[j];
    sxx += lx[j] * lx[j];
    sxy += lx[j] * ly[j];
    syy += ly[j] * ly[j];
  }
  const double denom = n * sxx - sx * sx;
  GC_REQUIRE(std::fabs(denom) > 1e-12, "degenerate fit: identical windows");
  const double slope = (n * sxy - sx * sy) / denom;      // = 1/p
  const double intercept = (sy - slope * sx) / n;        // = log c

  PolyFit fit;
  fit.c = std::exp(intercept);
  // Clamp: locality functions are concave increasing => slope in (0, 1].
  const double s = std::min(1.0, std::max(1e-6, slope));
  fit.p = 1.0 / s;

  // R^2 in log-log space.
  const double mean_y = sy / n;
  double ss_tot = 0, ss_res = 0;
  for (std::size_t j = 0; j < lx.size(); ++j) {
    const double pred = intercept + slope * lx[j];
    ss_res += (ly[j] - pred) * (ly[j] - pred);
    ss_tot += (ly[j] - mean_y) * (ly[j] - mean_y);
  }
  fit.r_squared = ss_tot <= 1e-12 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

}  // namespace gcaching::locality
