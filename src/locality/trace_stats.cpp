#include "locality/trace_stats.hpp"

#include <algorithm>
#include <unordered_set>

#include "locality/mrc.hpp"
#include "util/contracts.hpp"

namespace gcaching::locality {

TraceStats compute_trace_stats(const Workload& workload) {
  workload.validate();
  TraceStats out;
  const auto& trace = workload.trace;
  out.accesses = trace.size();
  if (trace.empty()) return out;
  const BlockMap& map = *workload.map;

  // Distinct counts and per-block footprints.
  std::unordered_set<ItemId> items(trace.begin(), trace.end());
  out.distinct_items = items.size();
  std::vector<std::unordered_set<ItemId>> footprint(map.num_blocks());
  for (ItemId it : trace) footprint[map.block_of(it)].insert(it);
  std::uint64_t blocks_touched = 0, footprint_total = 0;
  for (const auto& fp : footprint) {
    if (fp.empty()) continue;
    ++blocks_touched;
    footprint_total += fp.size();
  }
  out.distinct_blocks = blocks_touched;
  out.mean_block_footprint =
      static_cast<double>(footprint_total) /
      static_cast<double>(std::max<std::uint64_t>(1, blocks_touched));

  // Spatial runs.
  std::uint64_t runs = 0, run_len_total = 0, run = 1;
  for (std::size_t p = 1; p <= trace.size(); ++p) {
    const bool same_block =
        p < trace.size() &&
        map.block_of(trace[p]) == map.block_of(trace[p - 1]);
    if (same_block) {
      ++run;
    } else {
      ++runs;
      run_len_total += run;
      out.max_spatial_run = std::max(out.max_spatial_run, run);
      run = 1;
    }
  }
  out.mean_spatial_run = static_cast<double>(run_len_total) /
                         static_cast<double>(std::max<std::uint64_t>(1, runs));

  // Reuse-distance quantiles from the exact stack-distance histogram.
  const auto hist =
      stack_distances(trace.accesses(), map.num_items());
  out.cold_accesses = hist.cold;
  const std::uint64_t finite = hist.accesses - hist.cold;
  if (finite > 0) {
    for (std::size_t q = 0; q < 3; ++q) {
      const auto target = static_cast<std::uint64_t>(
          TraceStats::kQuantiles[q] * static_cast<double>(finite));
      std::uint64_t seen = 0;
      for (std::size_t d = 1; d < hist.hist.size(); ++d) {
        seen += hist.hist[d];
        if (seen > target || (seen == target && seen == finite)) {
          out.reuse_distance_quantiles[q] = d;
          break;
        }
      }
      if (out.reuse_distance_quantiles[q] == 0)
        out.reuse_distance_quantiles[q] = hist.hist.size() - 1;
    }
  }
  return out;
}

}  // namespace gcaching::locality
