#include "locality/mrc.hpp"

#include <algorithm>
#include <list>

#include "util/contracts.hpp"

namespace gcaching::locality {

std::uint64_t StackDistanceHistogram::misses_at(std::size_t c) const {
  // Misses = cold + accesses with distance > c.
  std::uint64_t hits = 0;
  const std::size_t top = std::min(c, hist.size() - 1);
  for (std::size_t d = 1; d <= top; ++d) hits += hist[d];
  return accesses - hits;
}

StackDistanceHistogram stack_distances(const std::vector<std::uint32_t>& keys,
                                       std::size_t key_universe) {
  StackDistanceHistogram out;
  out.accesses = keys.size();
  out.hist.assign(2, 0);

  // Move-to-front list with per-key iterators: distance = position from
  // the front (1-based) before the move.
  std::list<std::uint32_t> stack;
  std::vector<std::list<std::uint32_t>::iterator> where(key_universe);
  std::vector<bool> seen(key_universe, false);

  for (std::uint32_t key : keys) {
    GC_REQUIRE(key < key_universe, "key out of range");
    if (!seen[key]) {
      ++out.cold;
      stack.push_front(key);
      where[key] = stack.begin();
      seen[key] = true;
      continue;
    }
    // Linear scan for the depth (exact; O(D) worst case).
    std::size_t depth = 1;
    for (auto it = stack.begin(); it != where[key]; ++it) ++depth;
    if (depth >= out.hist.size()) out.hist.resize(depth + 1, 0);
    ++out.hist[depth];
    stack.erase(where[key]);
    stack.push_front(key);
    where[key] = stack.begin();
  }
  return out;
}

MissRatioCurve lru_mrc(const Workload& workload,
                       const std::vector<std::size_t>& sizes) {
  workload.validate();
  GC_REQUIRE(std::is_sorted(sizes.begin(), sizes.end()),
             "sizes must be ascending");
  const auto hist = stack_distances(workload.trace.accesses(),
                                    workload.map->num_items());
  MissRatioCurve curve;
  curve.sizes = sizes;
  curve.accesses = hist.accesses;
  curve.misses.reserve(sizes.size());
  for (std::size_t s : sizes) curve.misses.push_back(hist.misses_at(s));
  return curve;
}

MissRatioCurve block_lru_mrc(const Workload& workload,
                             const std::vector<std::size_t>& sizes) {
  workload.validate();
  GC_REQUIRE(std::is_sorted(sizes.begin(), sizes.end()),
             "sizes must be ascending");
  std::vector<std::uint32_t> blocks(workload.trace.size());
  for (std::size_t p = 0; p < workload.trace.size(); ++p)
    blocks[p] = workload.map->block_of(workload.trace[p]);
  const auto hist = stack_distances(blocks, workload.map->num_blocks());
  const std::size_t B = workload.map->max_block_size();
  MissRatioCurve curve;
  curve.sizes = sizes;
  curve.accesses = hist.accesses;
  curve.misses.reserve(sizes.size());
  for (std::size_t s : sizes)
    curve.misses.push_back(hist.misses_at(s / B));
  return curve;
}

}  // namespace gcaching::locality
