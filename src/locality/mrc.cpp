#include "locality/mrc.hpp"

#include <algorithm>
#include <bit>

#include "util/contracts.hpp"

namespace gcaching::locality {

std::uint64_t StackDistanceHistogram::misses_at(std::size_t c) const {
  // Misses = cold + accesses with distance > c.
  std::uint64_t hits = 0;
  const std::size_t top = std::min(c, hist.size() - 1);
  for (std::size_t d = 1; d <= top; ++d) hits += hist[d];
  return accesses - hits;
}

namespace {

/// Words per count chunk; 32 words = 2048 positions, so chunk counts fit
/// comfortably in uint16 and a chunk's worth of byte counts in one or two
/// vector registers.
constexpr std::size_t kWordsPerChunk = 32;

}  // namespace

StackDistanceWalker::StackDistanceWalker(std::size_t key_universe,
                                         std::size_t num_accesses)
    : last_pos_(key_universe, 0) {
  // Window a few multiples of the universe: live markers never exceed U, so
  // compaction always frees at least 3U slots, amortizing its O(window)
  // cost to O(1) per access while keeping the bitmap cache-resident. Short
  // streams size to the stream and never compact. Positions are stored as
  // uint32, which caps the window (not the stream length — compaction
  // renumbers long before 2^32 is an issue).
  window_ = std::min({num_accesses, std::max<std::size_t>(4 * key_universe, 64),
                      std::size_t{0xFFFF0000}});
  const std::size_t words = (window_ + 63) / 64;
  bits_.assign(words, 0);
  word_cnt_.assign(words, 0);
  chunk_cnt_.assign((words + kWordsPerChunk - 1) / kWordsPerChunk, 0);
}

void StackDistanceWalker::set_marker(std::size_t pos) {
  const std::size_t i = pos - 1;
  const std::size_t w = i >> 6;
  bits_[w] |= std::uint64_t{1} << (i & 63);
  ++word_cnt_[w];
  ++chunk_cnt_[w / kWordsPerChunk];
}

void StackDistanceWalker::clear_marker(std::size_t pos) {
  const std::size_t i = pos - 1;
  const std::size_t w = i >> 6;
  bits_[w] &= ~(std::uint64_t{1} << (i & 63));
  --word_cnt_[w];
  --chunk_cnt_[w / kWordsPerChunk];
}

std::size_t StackDistanceWalker::markers_above(std::size_t pos) const {
  // Markers at positions strictly greater than pos: a masked popcount of
  // pos's own word, then word counts to the chunk boundary, then chunk
  // counts. Every marker sits at or below the latest placed position, so
  // the loops stop there; when pos is recent — the common case on real
  // traces — only a few iterations run. Words past the top position hold
  // no markers, so the sloppy chunk-granular upper boundary adds zeros.
  const std::size_t i = pos - 1;  // bit index of pos's own marker
  const std::size_t w = i >> 6;
  const std::size_t wmax = (pos_ - 2) >> 6;  // word of the latest marker
  const std::size_t r = i & 63;
  std::size_t sum =
      r == 63 ? 0
              : static_cast<std::size_t>(std::popcount(bits_[w] >> (r + 1)));
  const std::size_t head_end =
      std::min(wmax + 1, (w / kWordsPerChunk + 1) * kWordsPerChunk);
  for (std::size_t j = w + 1; j < head_end; ++j) sum += word_cnt_[j];
  for (std::size_t c = w / kWordsPerChunk + 1; c <= wmax / kWordsPerChunk; ++c)
    sum += chunk_cnt_[c];
  return sum;
}

void StackDistanceWalker::compact() {
  // Renumber live markers 1..m in position order. Stack distances depend
  // only on the relative order of markers, which renumbering preserves.
  // Positions are unique, so an O(window) scatter into a position-indexed
  // table replaces a sort.
  scratch_.assign(window_ + 1, 0);  // old position -> key + 1
  for (std::uint32_t k = 0; k < last_pos_.size(); ++k)
    if (last_pos_[k] != 0) scratch_[last_pos_[k]] = k + 1;
  std::uint32_t m = 0;
  for (std::size_t p = 1; p <= window_; ++p)
    if (scratch_[p] != 0) last_pos_[scratch_[p] - 1] = ++m;
  GC_REQUIRE(m < window_, "walker fed more accesses than declared");
  // Rebuild the bitmap as m leading ones.
  std::fill(bits_.begin(), bits_.end(), 0);
  std::fill(word_cnt_.begin(), word_cnt_.end(), 0);
  std::fill(chunk_cnt_.begin(), chunk_cnt_.end(), 0);
  const std::size_t full = m >> 6;
  for (std::size_t w = 0; w < full; ++w) {
    bits_[w] = ~std::uint64_t{0};
    word_cnt_[w] = 64;
    chunk_cnt_[w / kWordsPerChunk] += 64;
  }
  const std::size_t rem = m & 63;
  if (rem != 0) {
    bits_[full] = (std::uint64_t{1} << rem) - 1;
    word_cnt_[full] = static_cast<std::uint8_t>(rem);
    chunk_cnt_[full / kWordsPerChunk] += static_cast<std::uint16_t>(rem);
  }
  pos_ = m;
}

// Per-access entry point of the walker; compact() stays outside the region —
// it runs once per `window_` accesses, so its cold contract is amortized.
GC_HOT_REGION_BEGIN(stack_distance_walker_next)
std::size_t StackDistanceWalker::next(std::uint32_t key) {
  GC_HOT_REQUIRE(key < last_pos_.size(), "key out of range");
  if (pos_ >= window_) compact();
  ++pos_;
  ++count_;
  const std::size_t prev = last_pos_[key];
  std::size_t dist = kCold;
  if (prev != 0) {
    // Markers strictly between the previous access and now are exactly the
    // distinct other keys touched since — the stack depth minus one.
    dist = markers_above(prev) + 1;
    clear_marker(prev);
  }
  set_marker(pos_);
  last_pos_[key] = static_cast<std::uint32_t>(pos_);
  return dist;
}
GC_HOT_REGION_END(stack_distance_walker_next)

StackDistanceHistogram stack_distances(const std::vector<std::uint32_t>& keys,
                                       std::size_t key_universe) {
  StackDistanceHistogram out;
  out.accesses = keys.size();
  out.hist.assign(2, 0);
  StackDistanceWalker walker(key_universe, keys.size());
  for (std::uint32_t key : keys) {
    const std::size_t depth = walker.next(key);
    if (depth == StackDistanceWalker::kCold) {
      ++out.cold;
      continue;
    }
    if (depth >= out.hist.size()) out.hist.resize(depth + 1, 0);
    ++out.hist[depth];
  }
  return out;
}

MissRatioCurve lru_mrc(const Workload& workload,
                       const std::vector<std::size_t>& sizes) {
  workload.validate();
  GC_REQUIRE(std::is_sorted(sizes.begin(), sizes.end()),
             "sizes must be ascending");
  const auto hist = stack_distances(workload.trace.accesses(),
                                    workload.map->num_items());
  MissRatioCurve curve;
  curve.sizes = sizes;
  curve.accesses = hist.accesses;
  curve.misses.reserve(sizes.size());
  for (std::size_t s : sizes) curve.misses.push_back(hist.misses_at(s));
  return curve;
}

MissRatioCurve block_lru_mrc(const Workload& workload,
                             const std::vector<std::size_t>& sizes) {
  workload.validate();
  GC_REQUIRE(std::is_sorted(sizes.begin(), sizes.end()),
             "sizes must be ascending");
  std::vector<std::uint32_t> blocks(workload.trace.size());
  for (std::size_t p = 0; p < workload.trace.size(); ++p)
    blocks[p] = workload.map->block_of(workload.trace[p]);
  const auto hist = stack_distances(blocks, workload.map->num_blocks());
  const std::size_t B = workload.map->max_block_size();
  MissRatioCurve curve;
  curve.sizes = sizes;
  curve.accesses = hist.accesses;
  curve.misses.reserve(sizes.size());
  for (std::size_t s : sizes)
    curve.misses.push_back(hist.misses_at(s / B));
  return curve;
}

}  // namespace gcaching::locality
