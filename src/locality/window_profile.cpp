#include "locality/window_profile.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/contracts.hpp"

namespace gcaching::locality {

std::size_t max_distinct_in_windows(const std::vector<std::uint32_t>& keys,
                                    std::size_t n, std::size_t key_universe) {
  GC_REQUIRE(n >= 1, "window length must be positive");
  if (keys.empty()) return 0;
  const std::size_t w = std::min(n, keys.size());
  std::vector<std::uint32_t> count(key_universe, 0);
  std::size_t distinct = 0, best = 0;
  for (std::size_t p = 0; p < keys.size(); ++p) {
    if (count[keys[p]]++ == 0) ++distinct;
    if (p >= w) {
      if (--count[keys[p - w]] == 0) --distinct;
    }
    if (p + 1 >= w) best = std::max(best, distinct);
  }
  return best;
}

std::vector<std::size_t> default_window_lengths(std::size_t trace_length,
                                                int points_per_octave) {
  GC_REQUIRE(points_per_octave >= 1, "need at least one point per octave");
  std::vector<std::size_t> out;
  const double step = std::pow(2.0, 1.0 / points_per_octave);
  double w = 1.0;
  while (static_cast<std::size_t>(w) <= trace_length) {
    const auto n = static_cast<std::size_t>(w);
    if (out.empty() || out.back() != n) out.push_back(n);
    w = std::max(w * step, w + 1.0);
  }
  if (out.empty() || out.back() != trace_length) out.push_back(trace_length);
  return out;
}

WorkingSetProfile compute_profile(const Workload& workload,
                                  std::vector<std::size_t> window_lengths) {
  workload.validate();
  const auto& items = workload.trace.accesses();
  std::vector<std::uint32_t> blocks(items.size());
  for (std::size_t p = 0; p < items.size(); ++p)
    blocks[p] = workload.map->block_of(items[p]);

  WorkingSetProfile out;
  out.window_lengths = window_lengths.empty()
                           ? default_window_lengths(items.size())
                           : std::move(window_lengths);
  GC_REQUIRE(std::is_sorted(out.window_lengths.begin(),
                            out.window_lengths.end()),
             "window lengths must be ascending");
  out.max_distinct_items.reserve(out.window_lengths.size());
  out.max_distinct_blocks.reserve(out.window_lengths.size());
  for (std::size_t n : out.window_lengths) {
    out.max_distinct_items.push_back(static_cast<double>(
        max_distinct_in_windows(items, n, workload.map->num_items())));
    out.max_distinct_blocks.push_back(static_cast<double>(
        max_distinct_in_windows(blocks, n, workload.map->num_blocks())));
  }
  return out;
}

bounds::LocalityFunction interpolate_locality(
    const std::vector<std::size_t>& window_lengths,
    const std::vector<double>& samples) {
  GC_REQUIRE(window_lengths.size() == samples.size() && !samples.empty(),
             "need matching, non-empty sample arrays");
  GC_REQUIRE(is_nondecreasing(samples), "locality samples must not decrease");
  // Copy into shared vectors captured by both closures.
  auto xs = std::make_shared<std::vector<double>>();
  auto ys = std::make_shared<std::vector<double>>(samples);
  xs->reserve(window_lengths.size());
  for (std::size_t n : window_lengths) xs->push_back(static_cast<double>(n));

  auto interp = [](const std::vector<double>& X, const std::vector<double>& Y,
                   double x) {
    if (x <= X.front()) {
      // Extrapolate through the origin-ish first segment.
      return Y.front() * (x / X.front());
    }
    if (x >= X.back()) {
      if (X.size() == 1) return Y.back();
      const std::size_t n = X.size();
      const double slope =
          (Y[n - 1] - Y[n - 2]) / std::max(1e-12, X[n - 1] - X[n - 2]);
      return Y.back() + slope * (x - X.back());
    }
    const auto it = std::upper_bound(X.begin(), X.end(), x);
    const std::size_t j = static_cast<std::size_t>(it - X.begin());
    const double t = (x - X[j - 1]) / (X[j] - X[j - 1]);
    return Y[j - 1] + t * (Y[j] - Y[j - 1]);
  };

  bounds::LocalityFunction fn;
  fn.value = [xs, ys, interp](double n) { return interp(*xs, *ys, n); };
  // Inverse of a monotone piecewise-linear function: interpolate with the
  // roles of X and Y swapped. Plateaus (equal Y) invert to the leftmost x.
  fn.inverse = [xs, ys, interp](double m) {
    // Deduplicate plateaus so the swapped arrays are strictly increasing.
    std::vector<double> X, Y;
    for (std::size_t j = 0; j < ys->size(); ++j) {
      if (!Y.empty() && (*ys)[j] <= Y.back()) continue;
      Y.push_back((*ys)[j]);
      X.push_back((*xs)[j]);
    }
    if (Y.empty()) return 0.0;
    return interp(Y, X, m);
  };
  return fn;
}

bool is_nondecreasing(const std::vector<double>& samples) {
  for (std::size_t j = 1; j < samples.size(); ++j)
    if (samples[j] < samples[j - 1]) return false;
  return true;
}

}  // namespace gcaching::locality
