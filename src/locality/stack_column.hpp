// Stack-algorithm capacity columns: per-capacity SimStats in ONE pass.
//
// Mattson's observation (the basis of mrc.hpp) gives the *miss count* of
// every LRU cache size from one stack-distance pass. The sweep engine needs
// more: full `SimStats` — the spatial/temporal hit taxonomy, load/eviction
// traffic, and wasted-sideload pollution — bit-identical to what the
// per-cell simulation engines produce. This header derives exactly that for
// the two stack policies in the factory:
//
//   * item-lru  — misses from the item-granularity histogram; loads equal
//     misses, every hit is temporal (requested loads only), evictions follow
//     from occupancy arithmetic.
//   * block-lru — misses from the block-granularity histogram. The taxonomy
//     needs one extra per-access quantity m: the *maximum* block stack
//     distance observed since the accessed item was last touched (cold = ∞).
//     A hit at block-capacity C is spatial iff m > C (the block was reloaded
//     since the item's last touch, so the item is an untouched sideload),
//     and a block-miss wastes a sibling y iff min(d, m_y) > C (y untouched
//     across a whole load/evict cycle). Both conditions are capacity
//     *intervals* in C, so difference arrays over C answer every capacity
//     from the single pass. A final-stack fixup accounts for blocks evicted
//     after their last access (the simulator charges wasted sideloads at
//     eviction time).
//
// Eligibility: block-lru additionally requires a uniform partition (every
// block exactly B items) so that "capacity k holds floor(k/B) blocks" models
// the policy's evict-until-fits loop; `block_column_supported` reports it.
// The factory's column dispatcher (policies/factory.cpp) uses these behind
// the `kIsStackPolicy` trait and, in checking builds, cross-checks the
// derivation against the shared-pass lane engine cell by cell.
#pragma once

#include <span>
#include <vector>

#include "core/stats.hpp"
#include "core/trace.hpp"

namespace gcaching::locality {

/// True when block_lru_column models BlockLru's mechanics for `map`: a
/// uniform partition (every block exactly max_block_size() items).
bool block_column_supported(const BlockMap& map);

/// SimStats of ItemLru at every capacity, from one stack-distance pass.
/// Bit-identical to simulate_fast<ItemLru> per capacity. Capacities may be
/// in any order; stats[i] corresponds to capacities[i].
std::vector<SimStats> item_lru_column(const BlockMap& map, const Trace& trace,
                                      std::span<const std::size_t> capacities);

/// SimStats of BlockLru at every capacity, from one block-stream pass.
/// Requires block_column_supported(map) and every capacity >= B (the same
/// precondition BlockLru::attach enforces).
std::vector<SimStats> block_lru_column(const BlockMap& map, const Trace& trace,
                                       std::span<const BlockId> block_ids,
                                       std::span<const std::size_t> capacities);

}  // namespace gcaching::locality
