// SHARDS-style spatial-hash trace sampling.
//
// Waldspurger et al. [FAST'15] showed that miss-ratio curves can be
// estimated from a tiny hash-sampled subset of a trace: keep a reference
// iff hash(key) < rate * 2^64, run the cache simulation on the filtered
// trace at a capacity scaled by the same rate, and rescale the counters.
// Because the filter is a fixed function of the key (not of time), every
// kept key contributes its *entire* reuse sequence, so stack distances in
// the sample are unbiased estimates of rate * the true distances.
//
// The granularity-change twist (this repo's reason to exist) is that the
// sampling unit must be the BLOCK, not the item: Block Caches and IBLP
// act on whole blocks, so a sample that kept item 7 but dropped item 8 of
// the same block would present the policies with a universe that cannot
// occur. Hashing the block id makes the sample block-consistent by
// construction — an item survives iff its whole block does — and both
// item- and block-granularity policies see a coherent sub-universe whose
// spatial structure matches the original.
//
// Two modes:
//  * fixed-rate  — `SampleConfig::rate` in (0, 1]; threshold is constant.
//  * fixed-size  — `SampleConfig::max_blocks > 0`; the threshold starts at
//    "accept everything" and is lowered by evicting the largest-hash block
//    whenever the distinct-block budget overflows (adaptive SHARDS). Since
//    the threshold only ever decreases, one pass suffices: accesses
//    accepted early under a looser threshold are compacted out at the end
//    by re-testing against the final threshold.
//
// `rate == 1.0` (and fixed-size with a budget no smaller than the distinct
// block count) keeps every access, and downstream results are bit-identical
// to the exact engines — pinned by tests/test_sample.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/stats.hpp"
#include "core/trace.hpp"

namespace gcaching {
class TraceView;  // core/trace_io.hpp
}

namespace gcaching::locality {

/// 64-bit spatial hash of a block id. SplitMix64 finalizer (same constants
/// as util/rng.hpp) over the block id perturbed by `seed`: cheap, stateless,
/// and avalanching, so the accept set {b : hash(b) < T} is a uniform
/// pseudo-random subset of the block universe for any threshold T.
inline std::uint64_t sample_hash(BlockId block, std::uint64_t seed) noexcept {
  std::uint64_t z = static_cast<std::uint64_t>(block) + 1 +
                    (seed + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

struct SampleConfig {
  /// Fixed-rate mode: target sampling rate in (0, 1]. 1.0 keeps everything.
  double rate = 1.0;
  /// Fixed-size mode when > 0: cap on distinct sampled blocks; `rate` is
  /// ignored and the effective rate emerges from the data.
  std::size_t max_blocks = 0;
  /// Hash seed; distinct seeds give independent samples of the same trace.
  std::uint64_t seed = 1;
};

/// The block-accept predicate: accept iff hash < threshold (or everything,
/// for the exact-identity rate-1.0 case, where `threshold * 2^-64` could
/// not represent "all"). Exposed so the sweep runner and tools can share
/// one filter definition with the sampler.
struct BlockFilter {
  std::uint64_t threshold = 0;
  std::uint64_t seed = 1;
  bool all = true;

  bool accepts(BlockId block) const noexcept {
    return all || sample_hash(block, seed) < threshold;
  }
  /// The fraction of the block universe this filter accepts in expectation.
  double rate() const noexcept {
    return all ? 1.0
               : static_cast<double>(threshold) * 0x1.0p-64;  // T / 2^64
  }
};

/// Fixed-rate filter for `rate`; rates >= 1.0 yield the accept-all filter.
BlockFilter make_filter(double rate, std::uint64_t seed);

/// The fraction of a concrete `num_blocks`-block universe the filter
/// actually accepts — counted, not expected. The realized fraction differs
/// from the nominal rate by binomial noise (sd ~ sqrt(rate / num_blocks)
/// relative), and that error feeds straight into the capacity scaling, so
/// the sweep runner scales by this instead of `BlockFilter::rate()`
/// whenever the universe is known. Returns exactly 1.0 for accept-all.
double realized_rate(const BlockFilter& f, std::size_t num_blocks);

/// A sampled trace plus everything needed to interpret results against the
/// original: the surviving accesses with their block ids (ready for
/// Trace::adopt_block_ids), the unfiltered access count, the filter that
/// produced it, and the observed distinct-block count.
struct SampledTrace {
  std::vector<ItemId> accesses;
  std::vector<BlockId> block_ids;
  std::uint64_t total_accesses = 0;  ///< length of the unfiltered input
  BlockFilter filter;                ///< reusable accept predicate
  std::size_t sampled_blocks = 0;    ///< distinct blocks in the sample

  double rate() const noexcept { return filter.rate(); }
};

/// One-pass sample of an access stream with precomputed per-access block
/// ids (the in-RAM Workload path). Fixed-rate or fixed-size per `cfg`.
SampledTrace sample_trace(std::span<const ItemId> accesses,
                          std::span<const BlockId> block_ids,
                          const SampleConfig& cfg);

/// Uniform-partition overload: block = item / block_size, derived on the
/// fly, so only the access stream is read. This is the streaming path for
/// mmap-backed binary traces — one sequential pass, nothing materialized
/// but the sample itself.
SampledTrace sample_trace_uniform(std::span<const ItemId> accesses,
                                  std::size_t block_size,
                                  const SampleConfig& cfg);

/// Sample a whole workload (any partition; block ids are taken from the
/// trace's cache or resolved once).
SampledTrace sample_workload(const Workload& w, const SampleConfig& cfg);

/// Stream-sample a binary trace file view (core/trace_io.hpp) without
/// materializing it.
SampledTrace sample_view(const TraceView& view, const SampleConfig& cfg);

/// Build the sampled sub-workload: the filtered trace over the ORIGINAL
/// partition (ids untouched, so geometry and block membership are exactly
/// the original's), with block ids adopted for the fast engines.
Workload make_sampled_workload(const Workload& original, SampledTrace sample);

/// Cache capacity to simulate the sample at: round(capacity * rate),
/// clamped to [min_capacity, capacity]. Pass the partition's
/// max_block_size() as `min_capacity` so block-granularity policies (which
/// require capacity >= B) stay legal at tiny rates.
std::size_t scaled_capacity(std::size_t capacity, double rate,
                            std::size_t min_capacity);

/// Rescale counters measured on a sample back to the full-trace scale:
/// multiply every counter by total_accesses / sampled.accesses (rounded),
/// then re-derive the aggregate counters so the SimStats internal
/// identities (hits + misses == accesses, temporal + spatial == hits) hold
/// exactly. When the sample kept every access this is the identity map —
/// the rate-1.0 bit-identity guarantee does not pass through any floating
/// point.
SimStats unsample_stats(const SimStats& sampled,
                        std::uint64_t total_accesses);

}  // namespace gcaching::locality
