#include "policies/gcm.hpp"

#include <limits>

#include "util/contracts.hpp"

namespace gcaching {

namespace detail {

void MarkPools::init(std::size_t universe) {
  unmarked_.clear();
  marked_.clear();
  slot_.assign(universe, std::numeric_limits<std::uint32_t>::max());
  state_.assign(universe, State::kAbsent);
}

void MarkPools::clear() {
  unmarked_.clear();
  marked_.clear();
  slot_.assign(slot_.size(), std::numeric_limits<std::uint32_t>::max());
  state_.assign(state_.size(), State::kAbsent);
}

void MarkPools::pool_add(std::vector<ItemId>& pool, ItemId item) {
  slot_[item] = static_cast<std::uint32_t>(pool.size());
  pool.push_back(item);
}

void MarkPools::pool_remove(std::vector<ItemId>& pool, ItemId item) {
  const std::uint32_t s = slot_[item];
  GC_CHECK(s < pool.size() && pool[s] == item, "pool slot corrupted");
  const ItemId last = pool.back();
  pool[s] = last;
  slot_[last] = s;
  pool.pop_back();
  slot_[item] = std::numeric_limits<std::uint32_t>::max();
}

void MarkPools::add(ItemId item, bool do_mark) {
  GC_REQUIRE(state_[item] == State::kAbsent, "item already tracked");
  if (do_mark) {
    pool_add(marked_, item);
    state_[item] = State::kMarked;
  } else {
    pool_add(unmarked_, item);
    state_[item] = State::kUnmarked;
  }
}

void MarkPools::remove(ItemId item) {
  GC_REQUIRE(state_[item] != State::kAbsent, "item not tracked");
  if (state_[item] == State::kMarked)
    pool_remove(marked_, item);
  else
    pool_remove(unmarked_, item);
  state_[item] = State::kAbsent;
}

void MarkPools::mark(ItemId item) {
  GC_REQUIRE(state_[item] != State::kAbsent, "item not tracked");
  if (state_[item] == State::kMarked) return;
  pool_remove(unmarked_, item);
  pool_add(marked_, item);
  state_[item] = State::kMarked;
}

ItemId MarkPools::random_unmarked(SplitMix64& rng) const {
  GC_REQUIRE(!unmarked_.empty(), "no unmarked item to pick");
  return unmarked_[rng.below(unmarked_.size())];
}

void MarkPools::unmark_all() {
  for (ItemId it : marked_) {
    state_[it] = State::kUnmarked;
    pool_add(unmarked_, it);
  }
  marked_.clear();
}

}  // namespace detail

// ---------------------------------------------------------------------------
// GCM
// ---------------------------------------------------------------------------

void Gcm::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  pools_.init(map.num_items());
}

void Gcm::on_hit(ItemId item) { pools_.mark(item); }

void Gcm::make_room_for_request() {
  if (!cache().full()) return;
  if (pools_.num_unmarked() == 0) pools_.unmark_all();  // new phase
  const ItemId victim = pools_.random_unmarked(rng_);
  pools_.remove(victim);
  cache().evict(victim);
}

void Gcm::on_miss(ItemId item) {
  const BlockId block = map().block_of(item);

  // 1. Bring in the requested item, marked.
  make_room_for_request();
  cache().load(item);
  pools_.add(item, /*mark=*/true);

  // 2. Side-load the rest of the block, unmarked. Free space is used first;
  //    after that, unmarked residents outside this block are replaced by
  //    block items (the Section 6.1 special case). Marked items are never
  //    displaced by side-loads, and we never start a new phase for one.
  std::size_t sideloaded = 0;
  for (ItemId sibling : map().items_of(block)) {
    if (max_sideload_ != 0 && sideloaded >= max_sideload_) break;
    if (cache().contains(sibling)) continue;
    if (cache().full()) {
      if (pools_.num_unmarked() == 0) break;  // only marked items remain
      const ItemId victim = pools_.random_unmarked(rng_);
      // Unmarked residents from this very block are exactly the items we
      // just side-loaded; replacing them with other block items is churn
      // with no benefit, so stop instead.
      if (map().block_of(victim) == block) break;
      pools_.remove(victim);
      cache().evict(victim);
    }
    cache().load(sibling);
    pools_.add(sibling, /*mark=*/false);
    ++sideloaded;
  }
}

void Gcm::reset() {
  pools_.clear();
  rng_ = SplitMix64(seed_);
}

std::string Gcm::name() const {
  if (max_sideload_ == 0) return "gcm";
  return "gcm(sideload=" + std::to_string(max_sideload_) + ")";
}

// ---------------------------------------------------------------------------
// MarkingItem (granularity-oblivious ablation)
// ---------------------------------------------------------------------------

void MarkingItem::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  pools_.init(map.num_items());
}

void MarkingItem::on_hit(ItemId item) { pools_.mark(item); }

void MarkingItem::on_miss(ItemId item) {
  if (cache().full()) {
    if (pools_.num_unmarked() == 0) pools_.unmark_all();
    const ItemId victim = pools_.random_unmarked(rng_);
    pools_.remove(victim);
    cache().evict(victim);
  }
  cache().load(item);
  pools_.add(item, /*mark=*/true);
}

void MarkingItem::reset() {
  pools_.clear();
  rng_ = SplitMix64(seed_);
}

// ---------------------------------------------------------------------------
// MarkingBlockMark (mark-everything ablation)
// ---------------------------------------------------------------------------

void MarkingBlockMark::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  GC_REQUIRE(cache.capacity() >= map.max_block_size(),
             "mark-all marking needs capacity >= B");
  pools_.init(map.num_items());
}

void MarkingBlockMark::on_hit(ItemId item) { pools_.mark(item); }

void MarkingBlockMark::evict_one(ItemId keep) {
  // Pick a random unmarked victim, starting a new phase if none exist.
  // The requested item `keep` is never chosen (it could become unmarked by
  // a phase change happening mid-load).
  if (pools_.num_unmarked() == 0 ||
      (pools_.num_unmarked() == 1 && cache().contains(keep) &&
       !pools_.marked(keep) && pools_.resident(keep))) {
    pools_.unmark_all();
  }
  for (;;) {
    const ItemId victim = pools_.random_unmarked(rng_);
    if (victim == keep) continue;  // at least one other unmarked item exists
    pools_.remove(victim);
    cache().evict(victim);
    return;
  }
}

void MarkingBlockMark::on_miss(ItemId item) {
  const BlockId block = map().block_of(item);
  // Load the requested item first (so it is resident and protected from the
  // victim picker), then greedily mark-load the rest of the block.
  if (cache().full()) evict_one(item);
  cache().load(item);
  pools_.add(item, /*mark=*/true);
  for (ItemId member : map().items_of(block)) {
    if (cache().contains(member)) {
      pools_.mark(member);
      continue;
    }
    if (cache().full()) evict_one(item);
    cache().load(member);
    pools_.add(member, /*mark=*/true);
  }
  GC_ENSURE(cache().contains(item), "requested item must be loaded");
}

void MarkingBlockMark::reset() {
  pools_.clear();
  rng_ = SplitMix64(seed_);
}

}  // namespace gcaching
