#include "policies/gcm.hpp"

#include <limits>

#include "util/contracts.hpp"

namespace gcaching {

namespace detail {

void MarkPools::init(std::size_t universe) {
  unmarked_.clear();
  marked_.clear();
  slot_.assign(universe, std::numeric_limits<std::uint32_t>::max());
  state_.assign(universe, State::kAbsent);
}

void MarkPools::clear() {
  unmarked_.clear();
  marked_.clear();
  slot_.assign(slot_.size(), std::numeric_limits<std::uint32_t>::max());
  state_.assign(state_.size(), State::kAbsent);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// GCM
// ---------------------------------------------------------------------------

void Gcm::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  geom_.build(map);
  pools_.init(map.num_items());
}

void Gcm::reset() {
  pools_.clear();
  rng_ = SplitMix64(seed_);
}

std::string Gcm::name() const {
  if (max_sideload_ == 0) return "gcm";
  return "gcm(sideload=" + std::to_string(max_sideload_) + ")";
}

// ---------------------------------------------------------------------------
// MarkingItem (granularity-oblivious ablation)
// ---------------------------------------------------------------------------

void MarkingItem::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  pools_.init(map.num_items());
}

void MarkingItem::reset() {
  pools_.clear();
  rng_ = SplitMix64(seed_);
}

// ---------------------------------------------------------------------------
// MarkingBlockMark (mark-everything ablation)
// ---------------------------------------------------------------------------

void MarkingBlockMark::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  GC_REQUIRE(cache.capacity() >= map.max_block_size(),
             "mark-all marking needs capacity >= B");
  geom_.build(map);
  pools_.init(map.num_items());
}

void MarkingBlockMark::reset() {
  pools_.clear();
  rng_ = SplitMix64(seed_);
}

}  // namespace gcaching
