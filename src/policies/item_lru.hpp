// Item Cache running LRU — the paper's primary "traditional cache" baseline.
//
// An Item Cache (Section 2, "Baseline policies") loads only the requested
// item on a miss and evicts at item granularity. It exploits temporal
// locality well but gains nothing from spatial locality: by Theorem 2 its
// competitive ratio in GC caching is at least B(k-B+1)/(k-h+1).
#pragma once

#include <string>

#include "core/policy.hpp"
#include "policies/lru_list.hpp"

namespace gcaching {

class ItemLru final : public ReplacementPolicy {
 public:
  ItemLru() = default;

  /// Loads only the requested item, never a sibling (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::record_requested_hit
  static constexpr bool kRequestedLoadsOnly = true;

  /// Satisfies the LRU inclusion property, so a whole capacity column can
  /// collapse into one stack-distance pass (locality/stack_column.hpp); the
  /// factory's column dispatcher keys off this trait.
  // GCLINT-TRAIT-CHECKED-BY: run_column
  static constexpr bool kIsStackPolicy = true;

  // Inline (with the callbacks below) so the fast engine's instantiation
  // sees the attachment: the compiler then knows cache() is the engine's
  // own CacheContents and keeps its members in registers across calls.
  void attach(const BlockMap& map, CacheContents& cache) override {
    set_attachment(map, cache);
    lru_ = std::make_unique<IndexedList>(map.num_items());
  }

  void reset() override {
    if (lru_) lru_->clear();
  }

  std::string name() const override { return "item-lru"; }

  // The per-access callbacks are defined here so `simulate_fast<ItemLru>`
  // inlines them into its loop; an out-of-line call per access costs more
  // than the callback body itself.
  void on_hit(ItemId item) override { lru_->move_to_front(item); }

  void on_miss(ItemId item) override {
    if (cache().full()) {
      const ItemId victim = lru_->pop_back();
      cache().evict(victim);
    }
    cache().load(item);
    lru_->push_front(item);
  }

  /// Recency order MRU->LRU (for tests).
  std::vector<ItemId> recency_order() const { return lru_->to_vector(); }

 private:
  std::unique_ptr<IndexedList> lru_;
};

}  // namespace gcaching
