// Item Cache running LRU — the paper's primary "traditional cache" baseline.
//
// An Item Cache (Section 2, "Baseline policies") loads only the requested
// item on a miss and evicts at item granularity. It exploits temporal
// locality well but gains nothing from spatial locality: by Theorem 2 its
// competitive ratio in GC caching is at least B(k-B+1)/(k-h+1).
#pragma once

#include <string>

#include "core/policy.hpp"
#include "policies/lru_list.hpp"

namespace gcaching {

class ItemLru final : public ReplacementPolicy {
 public:
  ItemLru() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "item-lru"; }

  /// Recency order MRU->LRU (for tests).
  std::vector<ItemId> recency_order() const { return lru_->to_vector(); }

 private:
  std::unique_ptr<IndexedList> lru_;
};

}  // namespace gcaching
