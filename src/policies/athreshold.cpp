#include "policies/athreshold.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace gcaching {

AThreshold::AThreshold(unsigned a) : a_(a) {
  GC_REQUIRE(a >= 1, "a-threshold parameter must be >= 1");
}

void AThreshold::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  GC_REQUIRE(cache.capacity() >= map.max_block_size(),
             "a-threshold needs capacity >= B to take whole blocks");
  lru_ = std::make_unique<IndexedList>(map.num_items());
  distinct_in_episode_.assign(map.num_blocks(), 0);
  residents_.assign(map.num_blocks(), 0);
  counted_.assign(map.num_items(), false);
}

void AThreshold::note_access(ItemId item) {
  if (counted_[item]) return;
  counted_[item] = true;
  ++distinct_in_episode_[map().block_of(item)];
}

void AThreshold::note_eviction(ItemId item) {
  const BlockId block = map().block_of(item);
  GC_CHECK(residents_[block] > 0, "resident count underflow");
  if (--residents_[block] == 0) {
    // Episode over: the block left the cache entirely; forget its history
    // so the next encounter must re-earn the whole-block load.
    distinct_in_episode_[block] = 0;
    for (ItemId member : map().items_of(block)) counted_[member] = false;
  }
}

void AThreshold::evict_lru_avoiding(BlockId protect) {
  // Scan from the LRU end for a victim outside the protected block; fall
  // back to the plain LRU victim if the cache holds only protected items.
  ItemId victim = kInvalidItem;
  lru_->for_each_from_lru([&](ItemId candidate) {
    if (map().block_of(candidate) != protect) {
      victim = candidate;
      return false;  // stop scan
    }
    return true;
  });
  if (victim == kInvalidItem) victim = lru_->back();
  lru_->remove(victim);
  cache().evict(victim);
  note_eviction(victim);
}

void AThreshold::load_rest_of_block(BlockId block) {
  bool loaded_any = false;
  for (ItemId sibling : map().items_of(block)) {
    if (cache().contains(sibling)) continue;
    if (cache().full()) evict_lru_avoiding(block);
    if (cache().full()) break;  // only this block's items remain resident
    cache().load(sibling);
    lru_->push_front(sibling);
    ++residents_[block];
    loaded_any = true;
  }
  (void)loaded_any;
}

void AThreshold::on_hit(ItemId item) {
  lru_->move_to_front(item);
  note_access(item);
}

void AThreshold::on_miss(ItemId item) {
  const BlockId block = map().block_of(item);
  // Plain LRU eviction for the requested load (so a >= B degenerates to
  // exactly ItemLru); the own-block protection only applies to the
  // whole-block load below.
  if (cache().full()) {
    const ItemId victim = lru_->pop_back();
    cache().evict(victim);
    note_eviction(victim);
  }
  cache().load(item);
  lru_->push_front(item);
  ++residents_[block];
  note_access(item);

  if (distinct_in_episode_[block] >= a_) {
    load_rest_of_block(block);
    lru_->move_to_front(item);  // the requested item stays most recent
  }
}

void AThreshold::reset() {
  if (lru_) lru_->clear();
  distinct_in_episode_.assign(distinct_in_episode_.size(), 0);
  residents_.assign(residents_.size(), 0);
  counted_.assign(counted_.size(), false);
}

std::string AThreshold::name() const {
  std::ostringstream os;
  os << "athreshold(a=" << a_ << ")";
  return os.str();
}

}  // namespace gcaching
