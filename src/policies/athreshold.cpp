#include "policies/athreshold.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace gcaching {

AThreshold::AThreshold(unsigned a) : a_(a) {
  GC_REQUIRE(a >= 1, "a-threshold parameter must be >= 1");
}

void AThreshold::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  GC_REQUIRE(cache.capacity() >= map.max_block_size(),
             "a-threshold needs capacity >= B to take whole blocks");
  geom_.build(map);
  lru_ = IndexedList(map.num_items());
  distinct_in_episode_.assign(map.num_blocks(), 0);
  residents_.assign(map.num_blocks(), 0);
  counted_.assign(map.num_items(), 0);
}

void AThreshold::reset() {
  lru_.clear();
  distinct_in_episode_.assign(distinct_in_episode_.size(), 0);
  residents_.assign(residents_.size(), 0);
  counted_.assign(counted_.size(), 0);
}

std::string AThreshold::name() const {
  std::ostringstream os;
  os << "athreshold(a=" << a_ << ")";
  return os.str();
}

}  // namespace gcaching
