// Block Cache running FIFO over blocks.
//
// Same whole-block load/evict granularity as BlockLru but with insertion-
// order eviction; the pairing mirrors the item-granularity LRU/FIFO pair so
// ablations can separate granularity effects from recency effects.
#pragma once

#include <memory>
#include <string>

#include "core/policy.hpp"
#include "policies/lru_list.hpp"

namespace gcaching {

class BlockFifo final : public ReplacementPolicy {
 public:
  BlockFifo() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "block-fifo"; }

 private:
  std::unique_ptr<IndexedList> queue_;  // over block ids, front = newest
};

}  // namespace gcaching
