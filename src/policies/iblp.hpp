// Item-Block Layered Partitioning (IBLP) — the paper's policy (Section 5).
//
// IBLP splits a cache of k = i + b items into
//   * an *item layer* of size i: serves every access, loads only requested
//     items, evicts item-granularity LRU;
//   * a *block layer* of size b: serves only accesses that miss in the item
//     layer, loads and evicts whole blocks, block-granularity LRU.
//
// Three deliberate design choices from Section 5.1, each with an ablation
// variant here:
//   1. Ordering: the item layer is in *front*, so hot items do not reorder
//      the block layer's LRU list (`IblpBlockFirst` flips this).
//   2. Inclusion: the layers are neither inclusive nor exclusive — an item
//      may occupy a slot in both (`IblpExclusive` deduplicates instead).
//   3. Partitioning: layer sizes are fixed inputs; the bound-optimal split
//      for a given comparator size h is computed in `bounds/partition.hpp`.
//
// Degenerate configurations are supported for sweep continuity: b = 0 is
// exactly an Item Cache (LRU), i = 0 exactly a Block Cache (LRU).
//
// Model-residency invariant maintained by every variant: an item is in the
// cache iff it occupies a slot in at least one layer.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "core/policy.hpp"
#include "policies/lru_list.hpp"

namespace gcaching {

/// Layer sizes for IBLP-family policies.
struct IblpConfig {
  std::size_t item_layer = 0;   ///< i: slots of the item partition
  std::size_t block_layer = 0;  ///< b: slots of the block partition

  std::size_t total() const noexcept { return item_layer + block_layer; }
};

/// Standard IBLP: item layer in front, non-inclusive layers.
class Iblp final : public ReplacementPolicy {
 public:
  explicit Iblp(IblpConfig cfg) : cfg_(cfg) {}

  /// Promoting a block-layer hit can evict an item-layer victim *during the
  /// hit* (insert_into_item_layer). The fast engine must then charge
  /// eviction stats per miss transaction like the verifying engine does.
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::evict
  static constexpr bool kEvictsOutsideMiss = true;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override;

  const IblpConfig& config() const noexcept { return cfg_; }
  std::size_t block_layer_used() const noexcept { return b_used_; }
  std::size_t item_layer_used() const { return item_lru_->size(); }
  bool in_item_layer(ItemId item) const { return item_lru_->contains(item); }
  bool in_block_layer(BlockId block) const {
    return block_lru_->contains(block);
  }

 private:
  IblpConfig cfg_;
  std::unique_ptr<IndexedList> item_lru_;   // over items
  std::unique_ptr<IndexedList> block_lru_;  // over blocks
  std::size_t b_used_ = 0;

  void insert_into_item_layer(ItemId item);
  void evict_lru_block();
};

/// Ablation: exclusive layers — an item occupies a slot in exactly one
/// layer. Promotions uncover the item in the block layer (freeing its slot);
/// item-layer evictions demote back into block coverage when the block is
/// still resident and has room, otherwise leave the cache.
class IblpExclusive final : public ReplacementPolicy {
 public:
  explicit IblpExclusive(IblpConfig cfg) : cfg_(cfg) {}

  /// See Iblp::kEvictsOutsideMiss — hit-path promotions evict here too.
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::evict
  static constexpr bool kEvictsOutsideMiss = true;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override;

  std::size_t block_layer_used() const noexcept { return b_used_; }

 private:
  IblpConfig cfg_;
  std::unique_ptr<IndexedList> item_lru_;
  std::unique_ptr<IndexedList> block_lru_;
  std::vector<bool> covered_;  ///< item occupies a block-layer slot
  std::size_t b_used_ = 0;

  void insert_into_item_layer(ItemId item);
  void evict_lru_block();
  std::size_t uncovered_need(BlockId block) const;
};

/// Ablation: block layer in *front* (serves every access and reorders on
/// every touch), item layer behind it. Demonstrates the pollution problem
/// Section 5.1 warns about: blocks with one hot item pin themselves at the
/// block-layer MRU position.
class IblpBlockFirst final : public ReplacementPolicy {
 public:
  explicit IblpBlockFirst(IblpConfig cfg) : cfg_(cfg) {}

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override;

 private:
  IblpConfig cfg_;
  std::unique_ptr<IndexedList> item_lru_;
  std::unique_ptr<IndexedList> block_lru_;
  std::size_t b_used_ = 0;

  void insert_into_item_layer(ItemId item);
  void evict_lru_block();
};

}  // namespace gcaching
