#include "policies/item_lfu.hpp"

namespace gcaching {

void ItemLfu::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  state_of_.assign(map.num_items(), ItemState{});
  fifo_.clear();
  fifo_head_ = 0;
  heap_.clear();
  next_tie_ = 0;
}

void ItemLfu::reset() {
  state_of_.assign(state_of_.size(), ItemState{});
  fifo_.clear();
  fifo_head_ = 0;
  heap_.clear();
  next_tie_ = 0;
}

}  // namespace gcaching
