#include "policies/item_lfu.hpp"

#include "util/contracts.hpp"

namespace gcaching {

void ItemLfu::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  nodes_.clear();
  free_nodes_.clear();
  head_node_ = kNoNode;
  item_prev_.assign(map.num_items(), kNoItem);
  item_next_.assign(map.num_items(), kNoItem);
  node_of_.assign(map.num_items(), kNoNode);
  tie_of_.assign(map.num_items(), 0);
  next_tie_ = 0;
}

std::uint32_t ItemLfu::alloc_node(std::uint64_t freq) {
  std::uint32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[idx] = FreqNode{};
  nodes_[idx].freq = freq;
  return idx;
}

void ItemLfu::detach_item(ItemId item) {
  const std::uint32_t n = node_of_[item];
  FreqNode& node = nodes_[n];
  const ItemId p = item_prev_[item];
  const ItemId q = item_next_[item];
  if (p == kNoItem) node.head = q; else item_next_[p] = q;
  if (q == kNoItem) node.tail = p; else item_prev_[q] = p;
  if (node.head == kNoItem) {
    if (node.prev == kNoNode) head_node_ = node.next;
    else nodes_[node.prev].next = node.next;
    if (node.next != kNoNode) nodes_[node.next].prev = node.prev;
    free_nodes_.push_back(n);
  }
}

void ItemLfu::append_item(std::uint32_t n, ItemId item) {
  FreqNode& node = nodes_[n];
  item_prev_[item] = node.tail;
  item_next_[item] = kNoItem;
  if (node.tail == kNoItem) node.head = item;
  else item_next_[node.tail] = item;
  node.tail = item;
}

void ItemLfu::insert_sorted(std::uint32_t n, ItemId item) {
  // Bucket members stay in ascending tie order; promotions can arrive out
  // of order, so scan backwards from the tail for the insertion point.
  FreqNode& node = nodes_[n];
  ItemId after = node.tail;
  while (after != kNoItem && tie_of_[after] > tie_of_[item])
    after = item_prev_[after];
  const ItemId before = after == kNoItem ? node.head : item_next_[after];
  item_prev_[item] = after;
  item_next_[item] = before;
  if (after == kNoItem) node.head = item;
  else item_next_[after] = item;
  if (before == kNoItem) node.tail = item;
  else item_prev_[before] = item;
}

void ItemLfu::on_hit(ItemId item) {
  const std::uint32_t n = node_of_[item];
  GC_CHECK(n != kNoNode, "LFU hit on untracked item");
  const std::uint64_t new_freq = nodes_[n].freq + 1;
  const std::uint32_t succ = nodes_[n].next;
  if (succ != kNoNode && nodes_[succ].freq == new_freq) {
    detach_item(item);  // may free bucket n; succ is unaffected
    insert_sorted(succ, item);
    node_of_[item] = succ;
    return;
  }
  if (nodes_[n].head == item && nodes_[n].tail == item) {
    // Sole member and no bucket at new_freq yet: bump the bucket in place
    // (its list position stays valid — the successor's frequency exceeds
    // new_freq).
    nodes_[n].freq = new_freq;
    return;
  }
  const std::uint32_t fresh = alloc_node(new_freq);
  nodes_[fresh].prev = n;
  nodes_[fresh].next = succ;
  nodes_[n].next = fresh;
  if (succ != kNoNode) nodes_[succ].prev = fresh;
  detach_item(item);  // bucket n keeps other members, so it survives
  append_item(fresh, item);
  node_of_[item] = fresh;
}

void ItemLfu::on_miss(ItemId item) {
  if (cache().full()) {
    GC_CHECK(head_node_ != kNoNode, "full cache but empty LFU order");
    const ItemId victim = nodes_[head_node_].head;
    detach_item(victim);
    node_of_[victim] = kNoNode;
    cache().evict(victim);
  }
  cache().load(item);
  tie_of_[item] = next_tie_++;
  std::uint32_t target = head_node_;
  if (target == kNoNode || nodes_[target].freq != 1) {
    target = alloc_node(1);
    nodes_[target].next = head_node_;
    if (head_node_ != kNoNode) nodes_[head_node_].prev = target;
    head_node_ = target;
  }
  // Ties are handed out monotonically, so appending keeps bucket 1 sorted.
  append_item(target, item);
  node_of_[item] = target;
}

void ItemLfu::reset() {
  nodes_.clear();
  free_nodes_.clear();
  head_node_ = kNoNode;
  item_prev_.assign(item_prev_.size(), kNoItem);
  item_next_.assign(item_next_.size(), kNoItem);
  node_of_.assign(node_of_.size(), kNoNode);
  tie_of_.assign(tie_of_.size(), 0);
  next_tie_ = 0;
}

}  // namespace gcaching
