#include "policies/item_lfu.hpp"

#include "util/contracts.hpp"

namespace gcaching {

void ItemLfu::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  order_.clear();
  key_of_.assign(map.num_items(), Key{});
  resident_.assign(map.num_items(), false);
  next_tie_ = 0;
}

void ItemLfu::on_hit(ItemId item) {
  GC_CHECK(resident_[item], "LFU hit on untracked item");
  Key k = key_of_[item];
  order_.erase(k);
  ++k.freq;
  key_of_[item] = k;
  order_.insert(k);
}

void ItemLfu::on_miss(ItemId item) {
  if (cache().full()) {
    GC_CHECK(!order_.empty(), "full cache but empty LFU order");
    const Key victim_key = *order_.begin();
    order_.erase(order_.begin());
    resident_[victim_key.item] = false;
    cache().evict(victim_key.item);
  }
  cache().load(item);
  const Key k{1, next_tie_++, item};
  key_of_[item] = k;
  resident_[item] = true;
  order_.insert(k);
}

void ItemLfu::reset() {
  order_.clear();
  resident_.assign(resident_.size(), false);
  next_tie_ = 0;
}

}  // namespace gcaching
