// Item Cache running CLOCK (second-chance).
//
// The canonical low-overhead LRU approximation used by real OSes and SRAM
// caches. Included so the empirical harness can show that everything proved
// for Item Caches (Theorem 2) holds for practical LRU approximations too.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "core/policy.hpp"

namespace gcaching {

class ItemClock final : public ReplacementPolicy {
 public:
  /// Loads only the requested item, never a sibling (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::record_requested_hit
  static constexpr bool kRequestedLoadsOnly = true;

  ItemClock() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "item-clock"; }

 private:
  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();

  std::vector<ItemId> slots_;        // ring buffer of resident items
  std::vector<bool> ref_;           // reference bit per slot
  std::vector<std::uint32_t> slot_of_;  // item -> slot
  std::size_t hand_ = 0;
  std::size_t used_ = 0;

  std::size_t advance_hand();
};

}  // namespace gcaching
