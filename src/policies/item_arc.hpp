// Item Cache running ARC (Adaptive Replacement Cache, Megiddo & Modha,
// FAST'03).
//
// ARC balances recency (T1) against frequency (T2) using ghost lists (B1,
// B2) of recently evicted ids and a self-tuning target p for T1's size.
// Included as the strongest practical *item-granularity* baseline: like
// every Item Cache it is subject to the Theorem 2 lower bound — adaptivity
// buys nothing against spatial locality, which the empirical harness makes
// visible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "policies/lru_list.hpp"

namespace gcaching {

class ItemArc final : public ReplacementPolicy {
 public:
  /// Loads only the requested item, never a sibling (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::record_requested_hit
  static constexpr bool kRequestedLoadsOnly = true;

  ItemArc() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "item-arc"; }

  /// Current adaptation target for |T1| (for tests/inspection).
  double target_t1() const noexcept { return p_; }
  std::size_t t1_size() const { return t1_->size(); }
  std::size_t t2_size() const { return t2_->size(); }
  std::size_t b1_size() const { return b1_->size(); }
  std::size_t b2_size() const { return b2_->size(); }

 private:
  enum class Where : std::uint8_t { kNone, kT1, kT2, kB1, kB2 };

  std::unique_ptr<IndexedList> t1_, t2_, b1_, b2_;
  std::vector<Where> where_;
  double p_ = 0.0;
  std::size_t c_ = 0;

  void replace(bool hit_in_b2);
  void ghost_trim(IndexedList& ghost);
};

}  // namespace gcaching
