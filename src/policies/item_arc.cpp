#include "policies/item_arc.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace gcaching {

void ItemArc::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  c_ = cache.capacity();
  t1_ = std::make_unique<IndexedList>(map.num_items());
  t2_ = std::make_unique<IndexedList>(map.num_items());
  b1_ = std::make_unique<IndexedList>(map.num_items());
  b2_ = std::make_unique<IndexedList>(map.num_items());
  where_.assign(map.num_items(), Where::kNone);
  p_ = 0.0;
}

void ItemArc::on_hit(ItemId item) {
  // Case I of the ARC paper: hit in T1 or T2 promotes to T2's MRU end.
  if (where_[item] == Where::kT1) {
    t1_->remove(item);
    t2_->push_front(item);
    where_[item] = Where::kT2;
  } else {
    GC_CHECK(where_[item] == Where::kT2, "resident item not in T1/T2");
    t2_->move_to_front(item);
  }
}

void ItemArc::replace(bool hit_in_b2) {
  // REPLACE(p): demote from T1 if it exceeds its target (or ties while the
  // request re-arrived via B2), else from T2. The demoted item leaves the
  // cache and its id enters the corresponding ghost list.
  const double t1_sz = static_cast<double>(t1_->size());
  if (!t1_->empty() &&
      (t1_sz > p_ || (hit_in_b2 && t1_sz == p_))) {
    const ItemId victim = t1_->pop_back();
    cache().evict(victim);
    b1_->push_front(victim);
    where_[victim] = Where::kB1;
  } else {
    GC_CHECK(!t2_->empty(), "REPLACE with both resident lists empty");
    const ItemId victim = t2_->pop_back();
    cache().evict(victim);
    b2_->push_front(victim);
    where_[victim] = Where::kB2;
  }
}

void ItemArc::ghost_trim(IndexedList& ghost) {
  const ItemId dropped = ghost.pop_back();
  where_[dropped] = Where::kNone;
}

void ItemArc::on_miss(ItemId item) {
  const double cd = static_cast<double>(c_);
  if (where_[item] == Where::kB1) {
    // Case II: ghost hit in B1 — grow T1's target.
    const double delta = std::max(
        1.0, static_cast<double>(b2_->size()) /
                 static_cast<double>(std::max<std::size_t>(1, b1_->size())));
    p_ = std::min(cd, p_ + delta);
    replace(/*hit_in_b2=*/false);
    b1_->remove(item);
    cache().load(item);
    t2_->push_front(item);
    where_[item] = Where::kT2;
    return;
  }
  if (where_[item] == Where::kB2) {
    // Case III: ghost hit in B2 — shrink T1's target.
    const double delta = std::max(
        1.0, static_cast<double>(b1_->size()) /
                 static_cast<double>(std::max<std::size_t>(1, b2_->size())));
    p_ = std::max(0.0, p_ - delta);
    replace(/*hit_in_b2=*/true);
    b2_->remove(item);
    cache().load(item);
    t2_->push_front(item);
    where_[item] = Where::kT2;
    return;
  }

  // Case IV: a genuinely new item.
  const std::size_t l1 = t1_->size() + b1_->size();
  const std::size_t l2 = t2_->size() + b2_->size();
  if (l1 == c_) {
    if (t1_->size() < c_) {
      ghost_trim(*b1_);
      replace(/*hit_in_b2=*/false);
    } else {
      // T1 fills the whole cache: drop its LRU item without ghosting.
      const ItemId victim = t1_->pop_back();
      cache().evict(victim);
      where_[victim] = Where::kNone;
    }
  } else if (l1 < c_ && l1 + l2 >= c_) {
    if (l1 + l2 == 2 * c_) ghost_trim(*b2_);
    if (cache().full()) replace(/*hit_in_b2=*/false);
  }
  cache().load(item);
  t1_->push_front(item);
  where_[item] = Where::kT1;
}

void ItemArc::reset() {
  if (t1_) {
    t1_->clear();
    t2_->clear();
    b1_->clear();
    b2_->clear();
  }
  where_.assign(where_.size(), Where::kNone);
  p_ = 0.0;
}

}  // namespace gcaching
