#include "policies/item_random.hpp"

#include <limits>

#include "util/contracts.hpp"

namespace gcaching {

void ItemRandom::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  residents_.clear();
  residents_.reserve(cache.capacity());
  slot_of_.assign(map.num_items(), std::numeric_limits<std::uint32_t>::max());
}

void ItemRandom::on_hit(ItemId /*item*/) {
  // Random replacement keeps no recency state.
}

void ItemRandom::on_miss(ItemId item) {
  if (cache().full()) {
    const std::size_t idx =
        static_cast<std::size_t>(rng_.below(residents_.size()));
    const ItemId victim = residents_[idx];
    pool_remove(victim);
    cache().evict(victim);
  }
  cache().load(item);
  pool_add(item);
}

void ItemRandom::reset() {
  residents_.clear();
  slot_of_.assign(slot_of_.size(), std::numeric_limits<std::uint32_t>::max());
  rng_ = SplitMix64(seed_);
}

void ItemRandom::pool_add(ItemId item) {
  GC_CHECK(slot_of_[item] == std::numeric_limits<std::uint32_t>::max(),
           "item already pooled");
  slot_of_[item] = static_cast<std::uint32_t>(residents_.size());
  residents_.push_back(item);
}

void ItemRandom::pool_remove(ItemId item) {
  const std::uint32_t slot = slot_of_[item];
  GC_CHECK(slot != std::numeric_limits<std::uint32_t>::max(),
           "item not pooled");
  const ItemId last = residents_.back();
  residents_[slot] = last;
  slot_of_[last] = slot;
  residents_.pop_back();
  slot_of_[item] = std::numeric_limits<std::uint32_t>::max();
}

}  // namespace gcaching
