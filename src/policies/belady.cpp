#include "policies/belady.hpp"

#include "util/contracts.hpp"

namespace gcaching {

namespace detail {

void NextUseIndex::build(const std::vector<std::uint32_t>& keys,
                         std::size_t key_universe) {
  next_use_.assign(keys.size(), kNever);
  std::vector<std::uint64_t> last_seen(key_universe, kNever);
  for (std::size_t p = keys.size(); p-- > 0;) {
    const std::uint32_t k = keys[p];
    GC_REQUIRE(k < key_universe, "key out of range");
    next_use_[p] = last_seen[k];
    last_seen[k] = p;
  }
}

void FurthestQueue::init(std::size_t key_universe) {
  heap_ = {};
  current_.assign(key_universe, 0);
  active_.assign(key_universe, false);
}

void FurthestQueue::clear() {
  heap_ = {};
  current_.assign(current_.size(), 0);
  active_.assign(active_.size(), false);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// BeladyItem
// ---------------------------------------------------------------------------

void BeladyItem::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  queue_.init(map.num_items());
  pos_ = 0;
}

void BeladyItem::prepare(const Trace& trace) {
  index_.build(trace.accesses(), map().num_items());
  prepared_ = true;
}

void BeladyItem::on_miss(ItemId item) {
  GC_HOT_REQUIRE(prepared_, "Belady requires prepare(trace)");
  if (cache().full()) {
    const ItemId victim = queue_.pop_furthest();
    cache().evict(victim);
  }
  cache().load(item);
  queue_.update(item, index_.next_after(pos_));
  ++pos_;
}

void BeladyItem::reset() {
  queue_.clear();
  pos_ = 0;
}

// ---------------------------------------------------------------------------
// BeladyBlock
// ---------------------------------------------------------------------------

void BeladyBlock::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  GC_REQUIRE(cache.capacity() >= map.max_block_size(),
             "a Block Cache needs capacity >= B");
  queue_.init(map.num_blocks());
  pos_ = 0;
}

void BeladyBlock::prepare(const Trace& trace) {
  keys_.resize(trace.size());
  for (std::size_t p = 0; p < trace.size(); ++p)
    keys_[p] = map().block_of(trace[p]);
  block_index_.build(keys_, map().num_blocks());
  prepared_ = true;
}

void BeladyBlock::on_miss(ItemId item) {
  GC_HOT_REQUIRE(prepared_, "Belady requires prepare(trace)");
  const BlockId block = map().block_of(item);
  GC_CHECK(cache().residents_of_block(block) == 0,
           "block-granularity invariant broken");
  const std::size_t need = map().block_size(block);
  while (cache().capacity() - cache().occupancy() < need) {
    const BlockId victim = queue_.pop_furthest();
    cache().visit_residents_of_block(victim,
                                     [this](ItemId it) { cache().evict(it); });
  }
  for (ItemId it : map().items_of(block)) cache().load(it);
  queue_.update(block, block_index_.next_after(pos_));
  ++pos_;
}

void BeladyBlock::reset() {
  queue_.clear();
  pos_ = 0;
}

// ---------------------------------------------------------------------------
// BeladyGreedyGc
// ---------------------------------------------------------------------------

void BeladyGreedyGc::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  queue_.init(map.num_items());
  pos_ = 0;
}

void BeladyGreedyGc::prepare(const Trace& trace) {
  item_index_.build(trace.accesses(), map().num_items());
  occurrences_.assign(map().num_items(), {});
  for (std::size_t p = 0; p < trace.size(); ++p)
    occurrences_[trace[p]].push_back(p);
  occ_cursor_.assign(map().num_items(), 0);
  prepared_ = true;
}

void BeladyGreedyGc::on_miss(ItemId item) {
  GC_HOT_REQUIRE(prepared_, "BeladyGreedyGc requires prepare(trace)");
  const BlockId block = map().block_of(item);
  // 1. The requested item itself: evict the globally-furthest item if full.
  if (cache().full()) {
    const ItemId victim = queue_.pop_furthest();
    cache().evict(victim);
  }
  cache().load(item);
  const std::uint64_t own_next = item_index_.next_after(pos_);
  queue_.update(item, own_next);

  // 2. Clairvoyant side-loading: take block items that will be requested
  //    before this item's own reuse horizon — they would otherwise be a
  //    fresh miss each. If the item is never requested again, fall back to
  //    a capacity-sized horizon.
  const std::uint64_t horizon = own_next != detail::NextUseIndex::kNever
                                    ? own_next
                                    : pos_ + cache().capacity();
  for (ItemId sibling : map().items_of(block)) {
    if (cache().contains(sibling)) continue;
    const std::uint64_t s_next = next_use_of(sibling);
    if (s_next == detail::NextUseIndex::kNever || s_next > horizon) continue;
    if (cache().full()) {
      const ItemId victim = queue_.pop_furthest();
      const std::uint64_t v_next = next_use_of(victim);
      if (victim == item) {
        // The requested item must stay resident through the miss
        // (Definition 1: the loaded subset contains it); if it is the
        // furthest-used resident, no side-load can pay for itself.
        queue_.update(victim, v_next);
        break;
      }
      if (v_next <= s_next) {
        // Not profitable: the victim is needed sooner than the side-load.
        queue_.update(victim, v_next);
        continue;
      }
      cache().evict(victim);
    }
    cache().load(sibling);
    queue_.update(sibling, s_next);
  }
  ++pos_;
  advance_cursors(item);
}

void BeladyGreedyGc::reset() {
  queue_.clear();
  occ_cursor_.assign(occ_cursor_.size(), 0);
  pos_ = 0;
}

}  // namespace gcaching
