#include "policies/iblp.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace gcaching {

namespace {

void validate_config(const IblpConfig& cfg, const BlockMap& map,
                     const CacheContents& cache) {
  GC_REQUIRE(cfg.total() == cache.capacity(),
             "IBLP layer sizes must sum to the cache capacity");
  if (cfg.block_layer > 0)
    GC_REQUIRE(cfg.block_layer >= map.max_block_size(),
               "block layer must be able to hold at least one block");
  if (cfg.item_layer == 0)
    GC_REQUIRE(cfg.block_layer > 0, "cache cannot have zero total size");
}

std::string format_name(const char* base, const IblpConfig& cfg) {
  std::ostringstream os;
  os << base << "(i=" << cfg.item_layer << ",b=" << cfg.block_layer << ")";
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Standard IBLP
// ---------------------------------------------------------------------------

void Iblp::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  validate_config(cfg_, map, cache);
  item_lru_ = std::make_unique<IndexedList>(map.num_items());
  block_lru_ = std::make_unique<IndexedList>(map.num_blocks());
  b_used_ = 0;
}

void Iblp::insert_into_item_layer(ItemId item) {
  if (cfg_.item_layer == 0) return;  // degenerate: pure Block Cache
  GC_CHECK(!item_lru_->contains(item), "item already in item layer");
  if (item_lru_->size() == cfg_.item_layer) {
    const ItemId victim = item_lru_->pop_back();
    // The victim leaves the cache entirely unless the block layer still
    // covers it (non-inclusive layers may duplicate).
    if (!block_lru_->contains(map().block_of(victim)))
      cache().evict(victim);
  }
  item_lru_->push_front(item);
}

void Iblp::evict_lru_block() {
  const BlockId victim = block_lru_->pop_back();
  b_used_ -= map().block_size(victim);
  // Items duplicated into the item layer stay resident there.
  cache().visit_residents_of_block(victim, [this](ItemId it) {
    if (!item_lru_->contains(it)) cache().evict(it);
  });
}

void Iblp::on_hit(ItemId item) {
  if (item_lru_->contains(item)) {
    // Served by the item layer; the block layer must not observe the access
    // (Section 5.1: hot items must not reorder the block LRU list).
    item_lru_->move_to_front(item);
    return;
  }
  // Item-layer miss served by the block layer: a block-layer hit.
  const BlockId block = map().block_of(item);
  GC_CHECK(block_lru_->contains(block),
           "model hit but item is in neither layer");
  block_lru_->move_to_front(block);
  // The item layer missed, so it fetches the item (from the block layer —
  // free at the model level) and caches it.
  insert_into_item_layer(item);
}

void Iblp::on_miss(ItemId item) {
  const BlockId block = map().block_of(item);
  GC_CHECK(!block_lru_->contains(block),
           "model miss but block is resident in block layer");
  if (cfg_.block_layer > 0) {
    // Block layer loads the whole block, whole-block LRU eviction.
    const std::size_t need = map().block_size(block);
    while (cfg_.block_layer - b_used_ < need) evict_lru_block();
    for (ItemId it : map().items_of(block)) {
      if (!cache().contains(it)) cache().load(it);  // may duplicate item layer
    }
    b_used_ += need;
    block_lru_->push_front(block);
    insert_into_item_layer(item);
  } else {
    // Degenerate: pure item-LRU cache.
    if (item_lru_->size() == cfg_.item_layer) {
      const ItemId victim = item_lru_->pop_back();
      cache().evict(victim);
    }
    cache().load(item);
    item_lru_->push_front(item);
  }
}

void Iblp::reset() {
  if (item_lru_) item_lru_->clear();
  if (block_lru_) block_lru_->clear();
  b_used_ = 0;
}

std::string Iblp::name() const { return format_name("iblp", cfg_); }

// ---------------------------------------------------------------------------
// Exclusive-layers ablation
// ---------------------------------------------------------------------------

void IblpExclusive::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  validate_config(cfg_, map, cache);
  item_lru_ = std::make_unique<IndexedList>(map.num_items());
  block_lru_ = std::make_unique<IndexedList>(map.num_blocks());
  covered_.assign(map.num_items(), false);
  b_used_ = 0;
}

std::size_t IblpExclusive::uncovered_need(BlockId block) const {
  // Slots the block layer needs to take this block exclusively: items not
  // already held by the item layer.
  std::size_t need = 0;
  for (ItemId it : map().items_of(block))
    if (!item_lru_->contains(it)) ++need;
  return need;
}

void IblpExclusive::evict_lru_block() {
  const BlockId victim = block_lru_->pop_back();
  cache().visit_residents_of_block(victim, [this](ItemId it) {
    if (covered_[it]) {
      covered_[it] = false;
      --b_used_;
      cache().evict(it);
    }
  });
}

void IblpExclusive::insert_into_item_layer(ItemId item) {
  if (cfg_.item_layer == 0) return;
  GC_CHECK(!item_lru_->contains(item), "item already in item layer");
  if (item_lru_->size() == cfg_.item_layer) {
    const ItemId victim = item_lru_->pop_back();
    const BlockId vblock = map().block_of(victim);
    // Demote back into block coverage when possible (the "more complicated
    // tracking" Section 5.1 mentions); otherwise the victim leaves.
    if (block_lru_->contains(vblock) && b_used_ < cfg_.block_layer) {
      covered_[victim] = true;
      ++b_used_;
    } else {
      cache().evict(victim);
    }
  }
  item_lru_->push_front(item);
}

void IblpExclusive::on_hit(ItemId item) {
  if (item_lru_->contains(item)) {
    item_lru_->move_to_front(item);
    return;
  }
  const BlockId block = map().block_of(item);
  GC_CHECK(covered_[item] && block_lru_->contains(block),
           "model hit but item is in neither layer");
  block_lru_->move_to_front(block);
  // Promote exclusively: the block-layer slot is freed.
  covered_[item] = false;
  --b_used_;
  insert_into_item_layer(item);
}

void IblpExclusive::on_miss(ItemId item) {
  const BlockId block = map().block_of(item);
  GC_CHECK(!block_lru_->contains(block),
           "model miss but block is resident in block layer");
  if (cfg_.block_layer > 0) {
    const std::size_t need = uncovered_need(block);
    while (cfg_.block_layer - b_used_ < need) evict_lru_block();
    for (ItemId it : map().items_of(block)) {
      if (!item_lru_->contains(it)) {
        GC_CHECK(!cache().contains(it), "exclusive invariant broken");
        cache().load(it);
        covered_[it] = true;
        ++b_used_;
      }
    }
    block_lru_->push_front(block);
    // The requested item moves to the item layer exclusively.
    GC_CHECK(covered_[item], "requested item must have been loaded");
    covered_[item] = false;
    --b_used_;
    insert_into_item_layer(item);
  } else {
    if (item_lru_->size() == cfg_.item_layer) {
      const ItemId victim = item_lru_->pop_back();
      cache().evict(victim);
    }
    cache().load(item);
    item_lru_->push_front(item);
  }
}

void IblpExclusive::reset() {
  if (item_lru_) item_lru_->clear();
  if (block_lru_) block_lru_->clear();
  covered_.assign(covered_.size(), false);
  b_used_ = 0;
}

std::string IblpExclusive::name() const {
  return format_name("iblp-excl", cfg_);
}

// ---------------------------------------------------------------------------
// Block-layer-first ordering ablation
// ---------------------------------------------------------------------------

void IblpBlockFirst::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  validate_config(cfg_, map, cache);
  item_lru_ = std::make_unique<IndexedList>(map.num_items());
  block_lru_ = std::make_unique<IndexedList>(map.num_blocks());
  b_used_ = 0;
}

void IblpBlockFirst::insert_into_item_layer(ItemId item) {
  if (cfg_.item_layer == 0) return;
  if (item_lru_->contains(item)) {
    item_lru_->move_to_front(item);
    return;
  }
  if (item_lru_->size() == cfg_.item_layer) {
    const ItemId victim = item_lru_->pop_back();
    if (!block_lru_->contains(map().block_of(victim)))
      cache().evict(victim);
  }
  item_lru_->push_front(item);
}

void IblpBlockFirst::evict_lru_block() {
  const BlockId victim = block_lru_->pop_back();
  b_used_ -= map().block_size(victim);
  cache().visit_residents_of_block(victim, [this](ItemId it) {
    if (!item_lru_->contains(it)) cache().evict(it);
  });
}

void IblpBlockFirst::on_hit(ItemId item) {
  const BlockId block = map().block_of(item);
  if (block_lru_->contains(block)) {
    // Front layer (block) serves the hit — and, being in front, reorders on
    // every touch. This is exactly the pollution hazard.
    block_lru_->move_to_front(block);
    return;
  }
  // Block layer missed; the item layer behind it serves the hit.
  GC_CHECK(item_lru_->contains(item),
           "model hit but item is in neither layer");
  item_lru_->move_to_front(item);
}

void IblpBlockFirst::on_miss(ItemId item) {
  const BlockId block = map().block_of(item);
  if (cfg_.block_layer > 0) {
    const std::size_t need = map().block_size(block);
    while (cfg_.block_layer - b_used_ < need) evict_lru_block();
    for (ItemId it : map().items_of(block))
      if (!cache().contains(it)) cache().load(it);
    b_used_ += need;
    block_lru_->push_front(block);
    // The back layer (items) also missed and caches the requested item.
    insert_into_item_layer(item);
  } else {
    if (item_lru_->contains(item)) {
      item_lru_->move_to_front(item);
    } else {
      if (item_lru_->size() == cfg_.item_layer) {
        const ItemId victim = item_lru_->pop_back();
        cache().evict(victim);
      }
      cache().load(item);
      item_lru_->push_front(item);
    }
  }
}

void IblpBlockFirst::reset() {
  if (item_lru_) item_lru_->clear();
  if (block_lru_) block_lru_->clear();
  b_used_ = 0;
}

std::string IblpBlockFirst::name() const {
  return format_name("iblp-blockfirst", cfg_);
}

}  // namespace gcaching
