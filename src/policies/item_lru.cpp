#include "policies/item_lru.hpp"

#include <memory>

namespace gcaching {

void ItemLru::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  lru_ = std::make_unique<IndexedList>(map.num_items());
}

void ItemLru::on_hit(ItemId item) { lru_->move_to_front(item); }

void ItemLru::on_miss(ItemId item) {
  if (cache().full()) {
    const ItemId victim = lru_->pop_back();
    cache().evict(victim);
  }
  cache().load(item);
  lru_->push_front(item);
}

void ItemLru::reset() {
  if (lru_) lru_->clear();
}

}  // namespace gcaching
