// Footprint-predicting GC cache.
//
// The DRAM-cache designs the paper cites as motivation (Jevdjic et al.'s
// Footprint Cache, ISCA'13 / MICRO'14) load *the predicted useful subset*
// of a block instead of one item or the whole block. This policy brings
// that design into the GC model:
//
//   * per block, remember the *footprint* — the set of items actually
//     touched during the block's previous residency episode;
//   * on a miss to a block seen before, side-load its remembered footprint
//     (the requested item always loads); on a first-ever miss, fall back to
//     a configurable cold policy (whole block or single item);
//   * evict at item granularity (LRU), like IBLP's item layer.
//
// In Theorem 4 terms the policy's effective `a` adapts per block: 1 for
// blocks with stable dense footprints, ~B for blocks that keep changing —
// which is exactly what the paper's framework says a practical design
// should try to buy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "policies/lru_list.hpp"

namespace gcaching {

class FootprintCache final : public ReplacementPolicy {
 public:
  /// `cold_whole_block`: what to load for a block with no recorded history
  /// (true = whole block, the Footprint Cache default; false = item only).
  explicit FootprintCache(bool cold_whole_block = true)
      : cold_whole_block_(cold_whole_block) {}

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override;

  /// Recorded footprint of `block` from its last completed residency
  /// episode (bitmask over the block's item positions); 0 if none.
  std::uint64_t recorded_footprint(BlockId block) const;

  /// Audit: recounts per-block residency from the ground-truth cache via
  /// the allocation-free visitor and compares with the policy's own
  /// `residents_` counters. O(num_items); meant for tests.
  bool residents_consistent() const;

 private:
  bool cold_whole_block_;
  std::unique_ptr<IndexedList> lru_;            // item recency
  std::vector<std::uint64_t> footprint_;        // per block: last episode
  std::vector<std::uint64_t> live_footprint_;   // per block: current episode
  std::vector<std::uint32_t> residents_;        // per block
  std::vector<bool> has_history_;               // block ever completed

  std::uint64_t position_bit(ItemId item) const;
  void touch(ItemId item);
  void evict_one(BlockId protect);
  void note_eviction(ItemId item);
};

}  // namespace gcaching
