// Footprint-predicting GC cache.
//
// The DRAM-cache designs the paper cites as motivation (Jevdjic et al.'s
// Footprint Cache, ISCA'13 / MICRO'14) load *the predicted useful subset*
// of a block instead of one item or the whole block. This policy brings
// that design into the GC model:
//
//   * per block, remember the *footprint* — the set of items actually
//     touched during the block's previous residency episode;
//   * on a miss to a block seen before, side-load its remembered footprint
//     (the requested item always loads); on a first-ever miss, fall back to
//     a configurable cold policy (whole block or single item);
//   * evict at item granularity (LRU), like IBLP's item layer.
//
// In Theorem 4 terms the policy's effective `a` adapts per block: 1 for
// blocks with stable dense footprints, ~B for blocks that keep changing —
// which is exactly what the paper's framework says a practical design
// should try to buy.
//
// Data-oriented layout: all block geometry goes through a FlatBlockIndex
// (no virtual BlockMap calls on the hot path — the old implementation's
// `position_bit` linearly scanned the member list per touch), and the
// per-access callbacks are defined inline so `simulate_fast` folds them
// into its loop.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "policies/block_geometry.hpp"
#include "policies/lru_list.hpp"
#include "util/contracts.hpp"

namespace gcaching {

class FootprintCache final : public ReplacementPolicy {
 public:
  /// A run of hits never changes residency, so the engines may hand a whole
  /// same-block stretch to on_hit_run in one call (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: fast_hit_run
  static constexpr bool kBatchesSameBlockRuns = true;

  /// `cold_whole_block`: what to load for a block with no recorded history
  /// (true = whole block, the Footprint Cache default; false = item only).
  explicit FootprintCache(bool cold_whole_block = true)
      : cold_whole_block_(cold_whole_block) {}

  void attach(const BlockMap& map, CacheContents& cache) override;
  void reset() override;
  std::string name() const override;

  // The per-access callbacks are defined inline so `simulate_fast` folds
  // them into its loop.
  void on_hit(ItemId item) override {
    lru_.move_to_front(item);
    live_footprint_[geom_.block_of(item)] |= geom_.bit_of(item);
  }

  void on_miss(ItemId item) override {
    const BlockId block = geom_.block_of(item);
    const std::span<const ItemId> items = geom_.items_of(block);

    // Predicted subset for this episode.
    std::uint64_t predicted;
    if (has_history_[block] != 0) {
      predicted = footprint_[block];
    } else {
      predicted = cold_whole_block_
                      ? (items.size() == 64
                             ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << items.size()) - 1)
                      : 0;
    }
    predicted |= geom_.bit_of(item);  // the request itself always loads

    // Load the requested item first, then the rest of the prediction.
    if (cache().full()) evict_one(block);
    cache().load(item);
    lru_.push_front(item);
    ++residents_[block];
    live_footprint_[block] |= geom_.bit_of(item);

    for (std::size_t j = 0; j < items.size(); ++j) {
      if ((predicted & (std::uint64_t{1} << j)) == 0) continue;
      const ItemId member = items[j];
      if (cache().contains(member)) continue;
      if (cache().full()) evict_one(block);
      if (cache().full()) break;  // only this block's items remain resident
      cache().load(member);
      lru_.push_front(member);
      ++residents_[block];
    }
    // Keep the requested item most recent.
    lru_.move_to_front(item);
  }

  /// Batched hits: the touched set distributes over the run (one OR of the
  /// accumulated position bits), and the final recency order is the span's
  /// distinct items by *last* occurrence — collected in one reverse scan
  /// (the position bitmask doubles as the dedupe set; attach REQUIREs
  /// blocks of <= 64 items) and replayed as move_to_fronts. Equivalent to
  /// calling on_hit per access in order.
  void on_hit_run(std::span<const ItemId> items, BlockId block) {
    std::uint64_t bits = 0;
    ItemId order[64];  // distinct items, most-recent first
    std::size_t n = 0;
    for (std::size_t i = items.size(); i-- > 0;) {
      const std::uint64_t bit = geom_.bit_of(items[i]);
      if ((bits & bit) != 0) continue;
      bits |= bit;
      order[n++] = items[i];
    }
    live_footprint_[block] |= bits;
    while (n-- > 0) lru_.move_to_front(order[n]);
  }

  /// Recorded footprint of `block` from its last completed residency
  /// episode (bitmask over the block's item positions); 0 if none.
  std::uint64_t recorded_footprint(BlockId block) const;

  /// Audit: recounts per-block residency from the ground-truth cache via
  /// the allocation-free visitor and compares with the policy's own
  /// `residents_` counters. O(num_items); meant for tests.
  bool residents_consistent() const;

 private:
  void evict_one(BlockId protect) {
    // Prefer a victim outside the block being served (avoids churn while
    // loading a footprint); fall back to the global LRU victim.
    ItemId victim = kInvalidItem;
    lru_.for_each_from_lru([&](ItemId candidate) {
      if (geom_.block_of(candidate) != protect) {
        victim = candidate;
        return false;
      }
      return true;
    });
    if (victim == kInvalidItem) victim = lru_.back();
    lru_.remove(victim);
    cache().evict(victim);
    // Episode bookkeeping: when the block empties, commit the touched set
    // as its footprint.
    const BlockId block = geom_.block_of(victim);
    GC_HOT_CHECK(residents_[block] > 0, "resident count underflow");
    if (--residents_[block] == 0) {
      footprint_[block] = live_footprint_[block];
      has_history_[block] = 1;
      live_footprint_[block] = 0;
    }
  }

  bool cold_whole_block_;
  FlatBlockIndex geom_;
  IndexedList lru_{0};                         // item recency
  std::vector<std::uint64_t> footprint_;       // per block: last episode
  std::vector<std::uint64_t> live_footprint_;  // per block: current episode
  std::vector<std::uint32_t> residents_;       // per block
  std::vector<std::uint8_t> has_history_;      // block ever completed
};

}  // namespace gcaching
