// Offline Belady (furthest-in-future) references.
//
// `BeladyItem` is Belady's MIN at item granularity: loads only the requested
// item, evicts the resident item whose next use is furthest in the future.
// It is the offline optimum for traditional (item) caching [Belady 1966,
// Mattson 1970] and therefore a certified *lower* bound on every Item
// Cache's misses — but NOT optimal for GC caching, which is NP-complete
// (Theorem 1). `BeladyBlock` is the same idea at block granularity.
//
// `BeladyGreedyGc` is an offline GC *heuristic* guided by Section 4.4's
// insight: on a miss, load exactly the block items that will be requested
// again before the block's next "natural" eviction horizon, and evict by
// furthest item next-use. It gives a strong practical upper bound on OPT
// for large traces where the exact solver (src/offline) is infeasible.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "util/contracts.hpp"

namespace gcaching {

namespace detail {

/// Shared "next use" precomputation. `next_use[p]` is the next position
/// after p at which trace[p]'s key (item or block) is requested again, or
/// kNever.
class NextUseIndex {
 public:
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  /// keys[p] = the key of access p (item id, or block id of the item).
  void build(const std::vector<std::uint32_t>& keys, std::size_t key_universe);

  std::uint64_t next_after(std::size_t pos) const { return next_use_[pos]; }
  std::size_t trace_length() const { return next_use_.size(); }

 private:
  std::vector<std::uint64_t> next_use_;
};

/// Lazy max-heap of (next_use, key) with O(log n) amortized eviction choice.
///
/// The mutators are header-inline: update() runs once per *access* inside
/// the fast engines' loop, and an out-of-line call per access costs more
/// than the push itself (see docs/PERF.md).
class FurthestQueue {
 public:
  void init(std::size_t key_universe);
  void clear();

  void update(std::uint32_t key, std::uint64_t next_use) {
    current_[key] = next_use;
    active_[key] = true;
    heap_.push(Entry{next_use, key});
  }

  void deactivate(std::uint32_t key) { active_[key] = false; }

  /// Pops and returns the active key with the maximum next_use.
  std::uint32_t pop_furthest() {
    while (!heap_.empty()) {
      const Entry top = heap_.top();
      heap_.pop();
      if (active_[top.key] && current_[top.key] == top.next_use) {
        active_[top.key] = false;
        return top.key;
      }
    }
    GC_CHECK(false, "pop_furthest on empty queue");
    return 0;  // unreachable
  }

 private:
  struct Entry {
    std::uint64_t next_use;
    std::uint32_t key;
    bool operator<(const Entry& o) const {
      if (next_use != o.next_use) return next_use < o.next_use;
      return key < o.key;
    }
  };

  std::priority_queue<Entry> heap_;
  std::vector<std::uint64_t> current_;  // key -> latest next_use
  std::vector<bool> active_;
};

}  // namespace detail

/// Furthest-in-future Item Cache (traditional-model OPT).
class BeladyItem final : public ReplacementPolicy {
 public:
  BeladyItem() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void prepare(const Trace& trace) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "belady-item"; }

  void on_hit(ItemId item) override {
    GC_HOT_REQUIRE(prepared_, "Belady requires prepare(trace)");
    queue_.update(item, index_.next_after(pos_));
    ++pos_;
  }

 private:
  detail::NextUseIndex index_;
  detail::FurthestQueue queue_;
  std::size_t pos_ = 0;
  bool prepared_ = false;
};

/// Furthest-in-future Block Cache (whole-block loads and evictions).
class BeladyBlock final : public ReplacementPolicy {
 public:
  BeladyBlock() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void prepare(const Trace& trace) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "belady-block"; }

  void on_hit(ItemId item) override {
    GC_HOT_REQUIRE(prepared_, "Belady requires prepare(trace)");
    queue_.update(map().block_of(item), block_index_.next_after(pos_));
    ++pos_;
  }

 private:
  detail::NextUseIndex block_index_;  // keyed by block id
  detail::FurthestQueue queue_;       // over blocks
  std::vector<std::uint32_t> keys_;   // trace positions -> block ids
  std::size_t pos_ = 0;
  bool prepared_ = false;
};

/// Offline GC heuristic: item-granularity Belady eviction + clairvoyant
/// selective block loading (only items used before the requested item's
/// own next reuse horizon are side-loaded).
class BeladyGreedyGc final : public ReplacementPolicy {
 public:
  BeladyGreedyGc() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void prepare(const Trace& trace) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "belady-greedy-gc"; }

  void on_hit(ItemId item) override {
    GC_HOT_REQUIRE(prepared_, "BeladyGreedyGc requires prepare(trace)");
    queue_.update(item, item_index_.next_after(pos_));
    ++pos_;
    advance_cursors(item);
  }

 private:
  detail::NextUseIndex item_index_;
  detail::FurthestQueue queue_;
  // first_use_after_[x] computed on the fly via per-item occurrence lists.
  std::vector<std::vector<std::uint64_t>> occurrences_;  // item -> positions
  std::vector<std::size_t> occ_cursor_;                  // item -> next idx
  std::size_t pos_ = 0;
  bool prepared_ = false;

  std::uint64_t next_use_of(ItemId item) const {
    // First occurrence strictly after the current position; cursors only
    // move forward so the scan is amortized O(1) per occurrence.
    const auto& occ = occurrences_[item];
    std::size_t c = occ_cursor_[item];
    while (c < occ.size() && occ[c] <= pos_) ++c;
    return c < occ.size() ? occ[c] : detail::NextUseIndex::kNever;
  }

  void advance_cursors(ItemId accessed) {
    auto& c = occ_cursor_[accessed];
    const auto& occ = occurrences_[accessed];
    while (c < occ.size() && occ[c] <= pos_) ++c;
  }
};

}  // namespace gcaching
