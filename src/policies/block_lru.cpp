#include "policies/block_lru.hpp"

#include "util/contracts.hpp"

namespace gcaching {

void BlockLru::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  GC_REQUIRE(cache.capacity() >= map.max_block_size(),
             "a Block Cache needs capacity >= B to hold any block");
  lru_ = std::make_unique<IndexedList>(map.num_blocks());
}

void BlockLru::on_hit(ItemId item) {
  lru_->move_to_front(map().block_of(item));
}

void BlockLru::evict_block(BlockId block) {
  lru_->remove(block);
  for (ItemId it : map().items_of(block)) cache().evict(it);
}

void BlockLru::on_miss(ItemId item) {
  const BlockId block = map().block_of(item);
  // Whole-block residency invariant: a miss on any item means the entire
  // block is absent.
  GC_CHECK(cache().residents_of_block(block) == 0,
           "block-granularity invariant broken");
  const std::size_t need = map().block_size(block);
  while (cache().capacity() - cache().occupancy() < need)
    evict_block(lru_->back());
  for (ItemId it : map().items_of(block)) cache().load(it);
  lru_->push_front(block);
}

void BlockLru::reset() {
  if (lru_) lru_->clear();
}

}  // namespace gcaching
