#include "policies/item_slru.hpp"

#include <algorithm>
#include <sstream>

#include "util/contracts.hpp"

namespace gcaching {

ItemSlru::ItemSlru(double protected_fraction)
    : protected_fraction_(protected_fraction) {
  GC_REQUIRE(protected_fraction >= 0.0 && protected_fraction < 1.0,
             "protected fraction must be in [0, 1)");
}

void ItemSlru::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  protected_cap_ = std::min(
      cache.capacity() - 1,
      static_cast<std::size_t>(protected_fraction_ *
                               static_cast<double>(cache.capacity())));
  probation_ = std::make_unique<IndexedList>(map.num_items());
  protected_ = std::make_unique<IndexedList>(map.num_items());
}

void ItemSlru::on_hit(ItemId item) {
  if (protected_->contains(item)) {
    protected_->move_to_front(item);
    return;
  }
  GC_CHECK(probation_->contains(item), "resident item in neither segment");
  // Promote to the protected segment; demote its LRU tail if over capacity.
  probation_->remove(item);
  if (protected_cap_ == 0) {
    probation_->push_front(item);  // degenerate config: plain LRU
    return;
  }
  if (protected_->size() == protected_cap_) {
    const ItemId demoted = protected_->pop_back();
    probation_->push_front(demoted);
  }
  protected_->push_front(item);
}

void ItemSlru::on_miss(ItemId item) {
  if (cache().full()) {
    // Victim comes from probation; if it is empty (possible after many
    // promotions while the cache shrank), fall back to protected LRU.
    const ItemId victim =
        !probation_->empty() ? probation_->pop_back() : protected_->pop_back();
    cache().evict(victim);
  }
  cache().load(item);
  probation_->push_front(item);
}

void ItemSlru::reset() {
  if (probation_) probation_->clear();
  if (protected_) protected_->clear();
}

std::string ItemSlru::name() const {
  std::ostringstream os;
  os << "item-slru(p=" << protected_fraction_ << ")";
  return os.str();
}

}  // namespace gcaching
