#include "policies/item_fifo.hpp"

namespace gcaching {

void ItemFifo::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  queue_ = std::make_unique<IndexedList>(map.num_items());
}

void ItemFifo::on_hit(ItemId /*item*/) {
  // FIFO ignores hits by definition.
}

void ItemFifo::on_miss(ItemId item) {
  if (cache().full()) {
    const ItemId victim = queue_->pop_back();
    cache().evict(victim);
  }
  cache().load(item);
  queue_->push_front(item);
}

void ItemFifo::reset() {
  if (queue_) queue_->clear();
}

}  // namespace gcaching
