// Item Cache running LFU with FIFO tie-breaking.
//
// Frequency-based eviction baseline. The victim order — smallest
// (frequency, insertion sequence) — is *lazily materialized*: residents
// are not kept sorted as frequencies change (the previous frequency-bucket
// implementation paid pointer surgery plus an O(bucket-size) backward scan
// per promotion), a hit is nothing but a counter increment, and the order
// is recovered at eviction time from two lazily repaired structures:
//
//   * `fifo_` — every load appends (tie, item). As long as an item's
//     frequency is still 1, its FIFO position *is* its victim rank: all
//     frequency-1 residents precede all others, tie-ordered. Eviction pops
//     from the front, discarding entries whose item was evicted or
//     reloaded (tie mismatch) and migrating entries whose item got
//     promoted (frequency > 1) into the heap.
//   * `heap_` — a 4-ary min-heap by (freq, tie) over migrated residents.
//     Keys are repaired in place at pop time: hits bump `state_of_` only,
//     so a root whose frequency lags is raised to the live value and
//     re-settled (an increase-key heap).
//
// Victim correctness (see docs/PERF.md "Policy rewrites"): the victim is
// min-(freq, tie) over residents, a pure function of per-item state that
// the lazy pop only *finds*, never alters. While any frequency-1 resident
// exists, the first valid FIFO entry is exactly the earliest one (loads
// hand out ties monotonically) and precedes every promoted resident. Once
// the FIFO is exhausted every resident is tracked in the heap, each entry
// tie-exact and frequency-understated at worst; a popped root whose
// frequency matches the live count is the true minimum, since every other
// entry's true pair is >= its heap key >= the root's key. Each repair
// strictly raises one key to its live frequency and frequencies are frozen
// during an eviction, so the loop terminates. The result is bit-identical
// to the eagerly sorted buckets on every trace.
//
// Frequencies persist while an item is resident and are forgotten on
// eviction ("in-cache LFU"), exactly matching the previous
// implementations' victim order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "util/contracts.hpp"

namespace gcaching {

class ItemLfu final : public ReplacementPolicy {
 public:
  /// Loads only the requested item, never a sibling (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::record_requested_hit
  static constexpr bool kRequestedLoadsOnly = true;

  /// A run of hits never changes residency, so the engines may hand a whole
  /// same-block stretch to on_hit_run in one call (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: fast_hit_run
  static constexpr bool kBatchesSameBlockRuns = true;

  ItemLfu() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void reset() override;
  std::string name() const override { return "item-lfu"; }

  // The per-access callbacks are defined here so `simulate_fast<ItemLfu>`
  // inlines them into its loop; an out-of-line call per access costs more
  // than the callback body itself.
  void on_hit(ItemId item) override {
    GC_HOT_CHECK(state_of_[item].freq != 0, "LFU hit on untracked item");
    ++state_of_[item].freq;
  }

  void on_miss(ItemId item) override {
    if (cache().full()) {
      const ItemId victim = pop_victim();
      state_of_[victim].freq = 0;
      cache().evict(victim);
    }
    cache().load(item);
    const std::uint64_t tie = next_tie_++;
    state_of_[item] = ItemState{1, tie};
    fifo_push(FifoEntry{tie, item});
  }

  /// Batched hits: consecutive repeats of one item collapse into a single
  /// add. Equivalent to calling on_hit per access — no eviction can observe
  /// the intermediate counts inside one hit run.
  void on_hit_run(std::span<const ItemId> items, BlockId /*block*/) {
    std::size_t i = 0;
    while (i < items.size()) {
      const ItemId item = items[i];
      GC_HOT_CHECK(state_of_[item].freq != 0,
                   "LFU batched hit on untracked item");
      std::size_t j = i + 1;
      while (j < items.size() && items[j] == item) ++j;
      state_of_[item].freq += j - i;
      i = j;
    }
  }

 private:
  /// Live per-item state; one 16-byte line-friendly record so eviction-time
  /// validation touches a single cache line per probe. freq == 0 encodes
  /// "not resident".
  struct ItemState {
    std::uint64_t freq = 0;
    std::uint64_t tie = 0;
  };

  /// Pending frequency-1 victim candidate, appended at load.
  struct FifoEntry {
    std::uint64_t tie = 0;
    ItemId item = kInvalidItem;
  };

  /// Migrated resident in the heap: `tie` is exact, `freq` may lag.
  struct Entry {
    std::uint64_t freq = 0;
    std::uint64_t tie = 0;
    ItemId item = kInvalidItem;
  };

  /// `a` comes *later* in victim order than `b`. The heap is a min-heap by
  /// victim order: every parent is earlier than its children, so the root
  /// is the earliest entry.
  static bool later(const Entry& a, const Entry& b) {
    if (a.freq != b.freq) return a.freq > b.freq;
    return a.tie > b.tie;
  }

  // Hand-rolled 4-ary heap rather than std::push_heap/pop_heap: eviction
  // pressure makes sift-downs the dominant policy cost on miss-bound
  // workloads, a 4-ary layout halves their depth (and keeps siblings in
  // one or two cache lines of 24-byte entries), and key repair can update
  // the root in place instead of a full pop + re-push round trip.
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!later(heap_[parent], e)) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < last; ++c)
        if (later(heap_[best], heap_[c])) best = c;
      if (!later(e, heap_[best])) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  /// Appends a load-order candidate; reclaims the dead prefix once it
  /// dominates the buffer, so the ring stays linear in residents.
  void fifo_push(FifoEntry e) {
    if (fifo_head_ > 1024 && fifo_head_ * 2 > fifo_.size()) {
      fifo_.erase(fifo_.begin(),
                  fifo_.begin() + static_cast<std::ptrdiff_t>(fifo_head_));
      fifo_head_ = 0;
    }
    fifo_.push_back(e);
  }

  ItemId pop_victim() {
    // Phase 1: the FIFO. Skip stale entries (item evicted, or reloaded
    // under a newer tie), migrate promoted items into the heap; the first
    // entry still at frequency 1 is the victim.
    while (fifo_head_ < fifo_.size()) {
      const FifoEntry e = fifo_[fifo_head_];
      const ItemState s = state_of_[e.item];
      if (s.freq == 0 || s.tie != e.tie) {
        ++fifo_head_;
        continue;
      }
      if (s.freq == 1) {
        ++fifo_head_;
        return e.item;
      }
      heap_.push_back(Entry{s.freq, e.tie, e.item});
      sift_up(heap_.size() - 1);
      ++fifo_head_;
    }
    // Phase 2: the heap, repairing lagged keys in place at the root.
    for (;;) {
      GC_HOT_CHECK(!heap_.empty(), "full cache but empty LFU order");
      Entry& top = heap_.front();
      const std::uint64_t live = state_of_[top.item].freq;
      if (live == top.freq) {
        const ItemId victim = top.item;
        top = heap_.back();
        heap_.pop_back();
        if (!heap_.empty()) sift_down(0);
        return victim;
      }
      top.freq = live;
      sift_down(0);
    }
  }

  std::vector<ItemState> state_of_;
  std::vector<FifoEntry> fifo_;  // frequency-1 candidates, tie-ordered
  std::size_t fifo_head_ = 0;
  std::vector<Entry> heap_;  // migrated (hit-promoted) residents
  std::uint64_t next_tie_ = 0;
};

}  // namespace gcaching
