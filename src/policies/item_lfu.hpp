// Item Cache running LFU with FIFO tie-breaking.
//
// Frequency-based eviction baseline; O(1) hot path through frequency
// buckets. A doubly-linked list of pooled frequency nodes (one per
// frequency that currently has residents, ascending) each carries an
// intrusive item list kept in ascending insertion-sequence order, so the
// victim — smallest (frequency, insertion sequence) — is always the front
// item of the front node. Promotions into an existing bucket insert
// tie-sorted via a backward scan from the bucket tail (bucket 1 appends:
// ties are handed out monotonically). Frequencies persist while an item is
// resident and are forgotten on eviction ("in-cache LFU"), exactly
// matching the previous ordered-set implementation's victim order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.hpp"

namespace gcaching {

class ItemLfu final : public ReplacementPolicy {
 public:
  /// Loads only the requested item, never a sibling (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::record_requested_hit
  static constexpr bool kRequestedLoadsOnly = true;

  ItemLfu() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "item-lfu"; }

 private:
  static constexpr std::uint32_t kNoNode = static_cast<std::uint32_t>(-1);
  static constexpr ItemId kNoItem = static_cast<ItemId>(-1);

  /// One live frequency value: its residents as an intrusive list in
  /// ascending tie (insertion-sequence) order, linked to the neighbouring
  /// frequencies. Pooled in `nodes_` and recycled through `free_nodes_`;
  /// at most one node per resident item exists at a time.
  struct FreqNode {
    std::uint64_t freq = 0;
    ItemId head = kNoItem;
    ItemId tail = kNoItem;
    std::uint32_t prev = kNoNode;
    std::uint32_t next = kNoNode;
  };

  std::uint32_t alloc_node(std::uint64_t freq);
  void detach_item(ItemId item);  // unlink; frees the bucket if emptied
  void append_item(std::uint32_t node, ItemId item);
  void insert_sorted(std::uint32_t node, ItemId item);

  std::vector<FreqNode> nodes_;
  std::vector<std::uint32_t> free_nodes_;
  std::uint32_t head_node_ = kNoNode;  // lowest frequency; victim bucket

  std::vector<ItemId> item_prev_;       // intrusive links within a bucket
  std::vector<ItemId> item_next_;
  std::vector<std::uint32_t> node_of_;  // kNoNode = not resident
  std::vector<std::uint64_t> tie_of_;   // insertion sequence at last load
  std::uint64_t next_tie_ = 0;
};

}  // namespace gcaching
