// Item Cache running LFU with FIFO tie-breaking.
//
// Frequency-based eviction baseline; O(log k) per operation through an
// ordered victim set. Frequencies persist while an item is resident and are
// forgotten on eviction ("in-cache LFU").
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "core/policy.hpp"

namespace gcaching {

class ItemLfu final : public ReplacementPolicy {
 public:
  /// Loads only the requested item, never a sibling (see simulate_fast).
  static constexpr bool kRequestedLoadsOnly = true;

  ItemLfu() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "item-lfu"; }

 private:
  struct Key {
    std::uint64_t freq;
    std::uint64_t tie;  // insertion sequence; older evicted first
    ItemId item;
    bool operator<(const Key& o) const {
      if (freq != o.freq) return freq < o.freq;
      if (tie != o.tie) return tie < o.tie;
      return item < o.item;
    }
  };

  std::set<Key> order_;                // ascending: begin() = victim
  std::vector<Key> key_of_;            // item -> its key (valid if resident)
  std::vector<bool> resident_;
  std::uint64_t next_tie_ = 0;
};

}  // namespace gcaching
