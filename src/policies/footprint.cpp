#include "policies/footprint.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace gcaching {

void FootprintCache::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  GC_REQUIRE(map.max_block_size() <= 64,
             "footprint bitmasks support blocks of up to 64 items");
  GC_REQUIRE(cache.capacity() >= map.max_block_size(),
             "footprint cache needs capacity >= B for cold block loads");
  lru_ = std::make_unique<IndexedList>(map.num_items());
  footprint_.assign(map.num_blocks(), 0);
  live_footprint_.assign(map.num_blocks(), 0);
  residents_.assign(map.num_blocks(), 0);
  has_history_.assign(map.num_blocks(), false);
}

std::uint64_t FootprintCache::position_bit(ItemId item) const {
  const BlockId block = map().block_of(item);
  const auto items = map().items_of(block);
  for (std::size_t j = 0; j < items.size(); ++j)
    if (items[j] == item) return std::uint64_t{1} << j;
  GC_CHECK(false, "item not found in its own block");
  return 0;
}

void FootprintCache::touch(ItemId item) {
  live_footprint_[map().block_of(item)] |= position_bit(item);
}

void FootprintCache::note_eviction(ItemId item) {
  const BlockId block = map().block_of(item);
  GC_CHECK(residents_[block] > 0, "resident count underflow");
  if (--residents_[block] == 0) {
    // Episode complete: commit the touched set as the block's footprint.
    footprint_[block] = live_footprint_[block];
    has_history_[block] = true;
    live_footprint_[block] = 0;
  }
}

void FootprintCache::evict_one(BlockId protect) {
  // Prefer a victim outside the block being served (avoids churn while
  // loading a footprint); fall back to the global LRU victim.
  ItemId victim = kInvalidItem;
  lru_->for_each_from_lru([&](ItemId candidate) {
    if (map().block_of(candidate) != protect) {
      victim = candidate;
      return false;
    }
    return true;
  });
  if (victim == kInvalidItem) victim = lru_->back();
  lru_->remove(victim);
  cache().evict(victim);
  note_eviction(victim);
}

void FootprintCache::on_hit(ItemId item) {
  lru_->move_to_front(item);
  touch(item);
}

void FootprintCache::on_miss(ItemId item) {
  const BlockId block = map().block_of(item);
  const auto items = map().items_of(block);

  // Predicted subset for this episode.
  std::uint64_t predicted;
  if (has_history_[block]) {
    predicted = footprint_[block];
  } else {
    predicted = cold_whole_block_
                    ? (items.size() == 64
                           ? ~std::uint64_t{0}
                           : (std::uint64_t{1} << items.size()) - 1)
                    : 0;
  }
  predicted |= position_bit(item);  // the request itself always loads

  // Load the requested item first, then the rest of the prediction.
  if (cache().full()) evict_one(block);
  cache().load(item);
  lru_->push_front(item);
  ++residents_[block];
  touch(item);

  for (std::size_t j = 0; j < items.size(); ++j) {
    if ((predicted & (std::uint64_t{1} << j)) == 0) continue;
    const ItemId member = items[j];
    if (cache().contains(member)) continue;
    if (cache().full()) evict_one(block);
    if (cache().full()) break;  // only this block's items remain resident
    cache().load(member);
    lru_->push_front(member);
    ++residents_[block];
  }
  // Keep the requested item most recent.
  lru_->move_to_front(item);
}

void FootprintCache::reset() {
  if (lru_) lru_->clear();
  footprint_.assign(footprint_.size(), 0);
  live_footprint_.assign(live_footprint_.size(), 0);
  residents_.assign(residents_.size(), 0);
  has_history_.assign(has_history_.size(), false);
}

std::string FootprintCache::name() const {
  std::ostringstream os;
  os << "footprint(cold=" << (cold_whole_block_ ? "block" : "item") << ")";
  return os.str();
}

std::uint64_t FootprintCache::recorded_footprint(BlockId block) const {
  GC_REQUIRE(block < footprint_.size(), "block id out of range");
  return footprint_[block];
}

bool FootprintCache::residents_consistent() const {
  std::vector<std::uint32_t> counts(residents_.size(), 0);
  cache().visit_residents([&](ItemId it) { ++counts[map().block_of(it)]; });
  return counts == residents_;
}

}  // namespace gcaching
