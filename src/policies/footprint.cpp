#include "policies/footprint.hpp"

#include <sstream>

#include "util/contracts.hpp"

namespace gcaching {

void FootprintCache::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  GC_REQUIRE(map.max_block_size() <= 64,
             "footprint bitmasks support blocks of up to 64 items");
  GC_REQUIRE(cache.capacity() >= map.max_block_size(),
             "footprint cache needs capacity >= B for cold block loads");
  geom_.build(map);
  lru_ = IndexedList(map.num_items());
  footprint_.assign(map.num_blocks(), 0);
  live_footprint_.assign(map.num_blocks(), 0);
  residents_.assign(map.num_blocks(), 0);
  has_history_.assign(map.num_blocks(), 0);
}

void FootprintCache::reset() {
  lru_.clear();
  footprint_.assign(footprint_.size(), 0);
  live_footprint_.assign(live_footprint_.size(), 0);
  residents_.assign(residents_.size(), 0);
  has_history_.assign(has_history_.size(), 0);
}

std::string FootprintCache::name() const {
  std::ostringstream os;
  os << "footprint(cold=" << (cold_whole_block_ ? "block" : "item") << ")";
  return os.str();
}

std::uint64_t FootprintCache::recorded_footprint(BlockId block) const {
  GC_REQUIRE(block < footprint_.size(), "block id out of range");
  return footprint_[block];
}

bool FootprintCache::residents_consistent() const {
  std::vector<std::uint32_t> counts(residents_.size(), 0);
  cache().visit_residents([&](ItemId it) { ++counts[map().block_of(it)]; });
  return counts == residents_;
}

}  // namespace gcaching
