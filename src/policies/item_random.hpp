// Item Cache evicting a uniformly random resident item.
//
// The memoryless baseline. Deterministic given its seed, so sweeps remain
// reproducible.
#pragma once

#include <string>
#include <vector>

#include "core/policy.hpp"
#include "util/rng.hpp"

namespace gcaching {

class ItemRandom final : public ReplacementPolicy {
 public:
  /// Loads only the requested item, never a sibling (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::record_requested_hit
  static constexpr bool kRequestedLoadsOnly = true;

  explicit ItemRandom(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "item-random"; }

 private:
  std::uint64_t seed_;
  SplitMix64 rng_;
  std::vector<ItemId> residents_;       // unordered pool of resident items
  std::vector<std::uint32_t> slot_of_;  // item -> index in residents_

  void pool_add(ItemId item);
  void pool_remove(ItemId item);
};

}  // namespace gcaching
