// Granularity-Change Marking (GCM) and marking-algorithm ablations
// (Section 6 of the paper).
//
// Marking algorithms proceed in phases: items are *marked* when requested;
// evictions pick uniformly among unmarked items; when every resident item is
// marked and space is needed, all marks are cleared (a new phase begins).
//
// GCM accounts for granularity change by, on each miss, loading the rest of
// the requested block *unmarked*: spatially-local items enter the cache but
// cannot displace items with proven temporal locality. In the special case
// where fewer unmarked slots than block items remain, the requested item is
// loaded and the remaining unmarked items in cache are replaced by randomly
// selected items from the accessed block (Section 6.1). Marked items are
// never displaced by side-loads.
//
// Ablations (Section 6.1's comparison points):
//   * `MarkingItem`  — classic marking, ignores granularity change: loads
//     only requested items. Competitive ratio >= B on whole-block scans.
//   * `MarkingBlockMark` — loads the whole block and marks *all* of it:
//     suffers Block-Cache-style pollution because unreferenced side-loads
//     are protected for the rest of the phase.
#pragma once

#include <string>
#include <vector>

#include "core/policy.hpp"
#include "util/rng.hpp"

namespace gcaching {

namespace detail {

/// Shared phase/mark machinery: resident pools of marked and unmarked items
/// with O(1) random removal.
class MarkPools {
 public:
  void init(std::size_t universe);
  void clear();

  bool resident(ItemId item) const { return state_[item] != State::kAbsent; }
  bool marked(ItemId item) const { return state_[item] == State::kMarked; }
  std::size_t num_unmarked() const { return unmarked_.size(); }
  std::size_t num_marked() const { return marked_.size(); }

  void add(ItemId item, bool mark);
  void remove(ItemId item);
  void mark(ItemId item);

  /// Uniformly random unmarked resident item.
  ItemId random_unmarked(SplitMix64& rng) const;

  /// Start a new phase: every resident item becomes unmarked.
  void unmark_all();

 private:
  enum class State : std::uint8_t { kAbsent, kUnmarked, kMarked };

  // One swap-pool per state, so random choice over unmarked is O(1).
  std::vector<ItemId> unmarked_;
  std::vector<ItemId> marked_;
  std::vector<std::uint32_t> slot_;  // index within its pool
  std::vector<State> state_;

  void pool_add(std::vector<ItemId>& pool, ItemId item);
  void pool_remove(std::vector<ItemId>& pool, ItemId item);
};

}  // namespace detail

/// GCM: marking with unmarked side-loading of the requested block.
///
/// `max_sideload` caps how many block items are side-loaded per miss
/// (0 = the whole block, the Section 6.1 default). Section 6.1 notes
/// "there may be value in a policy that loads some but not all of the
/// items"; the cap makes that variant runnable.
class Gcm final : public ReplacementPolicy {
 public:
  explicit Gcm(std::uint64_t seed = 1, std::size_t max_sideload = 0)
      : seed_(seed), max_sideload_(max_sideload), rng_(seed) {}

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override;

  std::size_t num_marked() const { return pools_.num_marked(); }

 private:
  std::uint64_t seed_;
  std::size_t max_sideload_;
  SplitMix64 rng_;
  detail::MarkPools pools_;

  void make_room_for_request();
};

/// Ablation: classic marking that ignores granularity change entirely.
class MarkingItem final : public ReplacementPolicy {
 public:
  explicit MarkingItem(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "marking-item"; }

 private:
  std::uint64_t seed_;
  SplitMix64 rng_;
  detail::MarkPools pools_;
};

/// Ablation: marking that loads the whole block and marks every loaded item.
class MarkingBlockMark final : public ReplacementPolicy {
 public:
  explicit MarkingBlockMark(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "marking-blockmark"; }

 private:
  std::uint64_t seed_;
  SplitMix64 rng_;
  detail::MarkPools pools_;

  void evict_one(ItemId keep);
};

}  // namespace gcaching
