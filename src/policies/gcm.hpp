// Granularity-Change Marking (GCM) and marking-algorithm ablations
// (Section 6 of the paper).
//
// Marking algorithms proceed in phases: items are *marked* when requested;
// evictions pick uniformly among unmarked items; when every resident item is
// marked and space is needed, all marks are cleared (a new phase begins).
//
// GCM accounts for granularity change by, on each miss, loading the rest of
// the requested block *unmarked*: spatially-local items enter the cache but
// cannot displace items with proven temporal locality. In the special case
// where fewer unmarked slots than block items remain, the requested item is
// loaded and the remaining unmarked items in cache are replaced by randomly
// selected items from the accessed block (Section 6.1). Marked items are
// never displaced by side-loads.
//
// Ablations (Section 6.1's comparison points):
//   * `MarkingItem`  — classic marking, ignores granularity change: loads
//     only requested items. Competitive ratio >= B on whole-block scans.
//   * `MarkingBlockMark` — loads the whole block and marks *all* of it:
//     suffers Block-Cache-style pollution because unreferenced side-loads
//     are protected for the rest of the phase.
//
// Data-oriented layout: the MarkPools operations and every per-access
// callback are defined inline (with hot-tier contracts, compiled out under
// GC_FAST_SIM) so `simulate_fast` folds them into its loop, and block
// geometry goes through a FlatBlockIndex instead of virtual BlockMap calls.
// The marking family deliberately does NOT declare kBatchesSameBlockRuns:
// a mark is already an idempotent O(1) early-out, so batching a hit run
// saves no work and the engine's run-length scan is pure overhead here
// (measured ~5% on run-length-1 Zipf traffic).
#pragma once

#include <string>
#include <vector>

#include "core/policy.hpp"
#include "policies/block_geometry.hpp"
#include "util/attributes.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace gcaching {

namespace detail {

/// Shared phase/mark machinery: resident pools of marked and unmarked items
/// with O(1) random removal.
class MarkPools {
 public:
  void init(std::size_t universe);
  void clear();

  bool resident(ItemId item) const { return state_[item] != State::kAbsent; }
  bool marked(ItemId item) const { return state_[item] == State::kMarked; }
  std::size_t num_unmarked() const { return unmarked_.size(); }
  std::size_t num_marked() const { return marked_.size(); }

  void add(ItemId item, bool do_mark) {
    GC_HOT_REQUIRE(state_[item] == State::kAbsent, "item already tracked");
    if (do_mark) {
      pool_add(marked_, item);
      state_[item] = State::kMarked;
    } else {
      pool_add(unmarked_, item);
      state_[item] = State::kUnmarked;
    }
  }

  void remove(ItemId item) {
    GC_HOT_REQUIRE(state_[item] != State::kAbsent, "item not tracked");
    if (state_[item] == State::kMarked)
      pool_remove(marked_, item);
    else
      pool_remove(unmarked_, item);
    state_[item] = State::kAbsent;
  }

  void mark(ItemId item) {
    GC_HOT_REQUIRE(state_[item] != State::kAbsent, "item not tracked");
    if (state_[item] == State::kMarked) return;
    pool_remove(unmarked_, item);
    pool_add(marked_, item);
    state_[item] = State::kMarked;
  }

  /// Uniformly random unmarked resident item.
  ItemId random_unmarked(SplitMix64& rng) const {
    GC_HOT_REQUIRE(!unmarked_.empty(), "no unmarked item to pick");
    return unmarked_[rng.below(unmarked_.size())];
  }

  /// Start a new phase: every resident item becomes unmarked.
  void unmark_all() {
    for (const ItemId it : marked_) {
      state_[it] = State::kUnmarked;
      pool_add(unmarked_, it);
    }
    marked_.clear();
  }

 private:
  enum class State : std::uint8_t { kAbsent, kUnmarked, kMarked };

  void pool_add(std::vector<ItemId>& pool, ItemId item) {
    slot_[item] = static_cast<std::uint32_t>(pool.size());
    pool.push_back(item);
  }

  void pool_remove(std::vector<ItemId>& pool, ItemId item) {
    const std::uint32_t s = slot_[item];
    GC_HOT_CHECK(s < pool.size() && pool[s] == item, "pool slot corrupted");
    const ItemId last = pool.back();
    pool[s] = last;
    slot_[last] = s;
    pool.pop_back();
  }

  // One swap-pool per state, so random choice over unmarked is O(1).
  std::vector<ItemId> unmarked_;
  std::vector<ItemId> marked_;
  std::vector<std::uint32_t> slot_;  // index within its pool
  std::vector<State> state_;
};

}  // namespace detail

/// GCM: marking with unmarked side-loading of the requested block.
///
/// `max_sideload` caps how many block items are side-loaded per miss
/// (0 = the whole block, the Section 6.1 default). Section 6.1 notes
/// "there may be value in a policy that loads some but not all of the
/// items"; the cap makes that variant runnable.
class Gcm final : public ReplacementPolicy {
 public:
  explicit Gcm(std::uint64_t seed = 1, std::size_t max_sideload = 0)
      : seed_(seed), max_sideload_(max_sideload), rng_(seed) {}

  void attach(const BlockMap& map, CacheContents& cache) override;
  void reset() override;
  std::string name() const override;

  void on_hit(ItemId item) override { pools_.mark(item); }

  // noinline: the side-load loop is too big to fold into the engine loop
  // (inlining it measurably slows the hit path on miss-heavy traces).
  GC_NOINLINE void on_miss(ItemId item) override {
    const BlockId block = geom_.block_of(item);

    // 1. Bring in the requested item, marked.
    make_room_for_request();
    cache().load(item);
    pools_.add(item, /*mark=*/true);

    // 2. Side-load the rest of the block, unmarked. Free space is used
    //    first; after that, unmarked residents outside this block are
    //    replaced by block items (the Section 6.1 special case). Marked
    //    items are never displaced by side-loads, and we never start a new
    //    phase for one.
    std::size_t sideloaded = 0;
    for (const ItemId sibling : geom_.items_of(block)) {
      if (max_sideload_ != 0 && sideloaded >= max_sideload_) break;
      if (cache().contains(sibling)) continue;
      if (cache().full()) {
        if (pools_.num_unmarked() == 0) break;  // only marked items remain
        const ItemId victim = pools_.random_unmarked(rng_);
        // Unmarked residents from this very block are exactly the items we
        // just side-loaded; replacing them with other block items is churn
        // with no benefit, so stop instead.
        if (geom_.block_of(victim) == block) break;
        pools_.remove(victim);
        cache().evict(victim);
      }
      cache().load(sibling);
      pools_.add(sibling, /*mark=*/false);
      ++sideloaded;
    }
  }

  std::size_t num_marked() const { return pools_.num_marked(); }

 private:
  void make_room_for_request() {
    if (!cache().full()) return;
    if (pools_.num_unmarked() == 0) pools_.unmark_all();  // new phase
    const ItemId victim = pools_.random_unmarked(rng_);
    pools_.remove(victim);
    cache().evict(victim);
  }

  std::uint64_t seed_;
  std::size_t max_sideload_;
  SplitMix64 rng_;
  FlatBlockIndex geom_;
  detail::MarkPools pools_;
};

/// Ablation: classic marking that ignores granularity change entirely.
class MarkingItem final : public ReplacementPolicy {
 public:
  /// Loads only the requested item, never a sibling (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::record_requested_hit
  static constexpr bool kRequestedLoadsOnly = true;

  explicit MarkingItem(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  void attach(const BlockMap& map, CacheContents& cache) override;
  void reset() override;
  std::string name() const override { return "marking-item"; }

  void on_hit(ItemId item) override { pools_.mark(item); }

  void on_miss(ItemId item) override {
    if (cache().full()) {
      if (pools_.num_unmarked() == 0) pools_.unmark_all();
      const ItemId victim = pools_.random_unmarked(rng_);
      pools_.remove(victim);
      cache().evict(victim);
    }
    cache().load(item);
    pools_.add(item, /*mark=*/true);
  }

 private:
  std::uint64_t seed_;
  SplitMix64 rng_;
  detail::MarkPools pools_;
};

/// Ablation: marking that loads the whole block and marks every loaded item.
class MarkingBlockMark final : public ReplacementPolicy {
 public:
  explicit MarkingBlockMark(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  void attach(const BlockMap& map, CacheContents& cache) override;
  void reset() override;
  std::string name() const override { return "marking-blockmark"; }

  void on_hit(ItemId item) override { pools_.mark(item); }

  // noinline: see Gcm::on_miss.
  GC_NOINLINE void on_miss(ItemId item) override {
    const BlockId block = geom_.block_of(item);
    // Load the requested item first (so it is resident and protected from
    // the victim picker), then greedily mark-load the rest of the block.
    if (cache().full()) evict_one(item);
    cache().load(item);
    pools_.add(item, /*mark=*/true);
    for (const ItemId member : geom_.items_of(block)) {
      if (cache().contains(member)) {
        pools_.mark(member);
        continue;
      }
      if (cache().full()) evict_one(item);
      cache().load(member);
      pools_.add(member, /*mark=*/true);
    }
    GC_HOT_ENSURE(cache().contains(item), "requested item must be loaded");
  }

 private:
  void evict_one(ItemId keep) {
    // Pick a random unmarked victim, starting a new phase if none exist.
    // The requested item `keep` is never chosen (it could become unmarked
    // by a phase change happening mid-load).
    if (pools_.num_unmarked() == 0 ||
        (pools_.num_unmarked() == 1 && cache().contains(keep) &&
         !pools_.marked(keep) && pools_.resident(keep))) {
      pools_.unmark_all();
    }
    for (;;) {
      const ItemId victim = pools_.random_unmarked(rng_);
      if (victim == keep) continue;  // at least one other unmarked exists
      pools_.remove(victim);
      cache().evict(victim);
      return;
    }
  }

  std::uint64_t seed_;
  SplitMix64 rng_;
  FlatBlockIndex geom_;
  detail::MarkPools pools_;
};

}  // namespace gcaching
