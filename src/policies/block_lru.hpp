// Block Cache running LRU — the paper's coarse-granularity baseline.
//
// A Block Cache (Section 2) raises the cache's own granularity: it loads all
// items of the requested block on a miss and evicts whole blocks, LRU over
// blocks. It captures spatial locality maximally but suffers pollution when
// only a few items per block are used: Theorem 3 shows a competitive ratio
// of at least k/(k - B(h-1)) — unbounded unless k > B(h-1).
//
// Because loads and evictions are whole-block, an item is resident iff its
// block is resident.
#pragma once

#include <memory>
#include <string>

#include "core/policy.hpp"
#include "policies/lru_list.hpp"

namespace gcaching {

class BlockLru final : public ReplacementPolicy {
 public:
  BlockLru() = default;

  /// Plain LRU over the block-id stream: the resident block set satisfies
  /// the inclusion property, so capacity columns can collapse into one
  /// stack-distance pass (locality/stack_column.hpp) whenever the partition
  /// is uniform; the factory's column dispatcher keys off this trait.
  // GCLINT-TRAIT-CHECKED-BY: run_column
  static constexpr bool kIsStackPolicy = true;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "block-lru"; }

  /// Block recency order MRU->LRU (for tests).
  std::vector<BlockId> recency_order() const { return lru_->to_vector(); }

 private:
  std::unique_ptr<IndexedList> lru_;  // over block ids

  void evict_block(BlockId block);
};

}  // namespace gcaching
