// The a-threshold policy family (Section 4.4).
//
// Theorem 4 parametrizes deterministic policies by `a`: the number of
// distinct consecutive accesses to a block the policy waits for before
// loading the entire block. `AThreshold` makes that parameter executable:
//
//   * item-granularity LRU eviction;
//   * on a miss, load the requested item; once a block has accumulated `a`
//     distinct item accesses during its current residency episode, load the
//     remainder of the block in the same miss.
//
// a = 1 loads whole blocks immediately (but, unlike a Block Cache, still
// evicts items individually — the configuration Section 4.4 recommends for
// large caches); a >= B never side-loads (a plain Item Cache). Sweeping `a`
// empirically traces out the Theorem 4 bound's two regimes.
//
// Data-oriented layout: block geometry goes through a FlatBlockIndex (no
// virtual BlockMap calls on the hot path), the distinct-access flags are a
// byte array, and the per-access callbacks are defined inline so
// `simulate_fast` folds them into its loop.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "policies/block_geometry.hpp"
#include "policies/lru_list.hpp"
#include "util/contracts.hpp"

namespace gcaching {

class AThreshold final : public ReplacementPolicy {
 public:
  /// A run of hits never changes residency, so the engines may hand a whole
  /// same-block stretch to on_hit_run in one call (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: fast_hit_run
  static constexpr bool kBatchesSameBlockRuns = true;

  /// `a` must be >= 1.
  explicit AThreshold(unsigned a);

  void attach(const BlockMap& map, CacheContents& cache) override;
  void reset() override;
  std::string name() const override;

  unsigned a() const noexcept { return a_; }

  void on_hit(ItemId item) override {
    lru_.move_to_front(item);
    note_access(item);
  }

  void on_miss(ItemId item) override {
    const BlockId block = geom_.block_of(item);
    // Plain LRU eviction for the requested load (so a >= B degenerates to
    // exactly ItemLru); the own-block protection only applies to the
    // whole-block load below.
    if (cache().full()) {
      const ItemId victim = lru_.pop_back();
      cache().evict(victim);
      note_eviction(victim);
    }
    cache().load(item);
    lru_.push_front(item);
    ++residents_[block];
    note_access(item);

    if (distinct_in_episode_[block] >= a_) {
      load_rest_of_block(block);
      lru_.move_to_front(item);  // the requested item stays most recent
    }
  }

  /// Batched hits: the distinct-access count distributes over the run —
  /// per-item `counted_` flags dedupe exactly as in note_access, and the
  /// block's episode counter takes one accumulated add. Recency updates
  /// replay per access (move_to_front early-outs when the item is already
  /// most recent, which covers consecutive repeats). Equivalent to calling
  /// on_hit per access in order.
  void on_hit_run(std::span<const ItemId> items, BlockId block) {
    std::uint32_t fresh = 0;
    for (const ItemId item : items) {
      lru_.move_to_front(item);
      if (counted_[item] == 0) {
        counted_[item] = 1;
        ++fresh;
      }
    }
    distinct_in_episode_[block] += fresh;
  }

 private:
  void note_access(ItemId item) {
    if (counted_[item] != 0) return;
    counted_[item] = 1;
    ++distinct_in_episode_[geom_.block_of(item)];
  }

  void note_eviction(ItemId item) {
    const BlockId block = geom_.block_of(item);
    GC_HOT_CHECK(residents_[block] > 0, "resident count underflow");
    if (--residents_[block] == 0) {
      // Episode over: the block left the cache entirely; forget its history
      // so the next encounter must re-earn the whole-block load.
      distinct_in_episode_[block] = 0;
      for (const ItemId member : geom_.items_of(block)) counted_[member] = 0;
    }
  }

  void evict_lru_avoiding(BlockId protect) {
    // Scan from the LRU end for a victim outside the protected block; fall
    // back to the plain LRU victim if the cache holds only protected items.
    ItemId victim = kInvalidItem;
    lru_.for_each_from_lru([&](ItemId candidate) {
      if (geom_.block_of(candidate) != protect) {
        victim = candidate;
        return false;  // stop scan
      }
      return true;
    });
    if (victim == kInvalidItem) victim = lru_.back();
    lru_.remove(victim);
    cache().evict(victim);
    note_eviction(victim);
  }

  void load_rest_of_block(BlockId block) {
    for (const ItemId sibling : geom_.items_of(block)) {
      if (cache().contains(sibling)) continue;
      if (cache().full()) evict_lru_avoiding(block);
      if (cache().full()) break;  // only this block's items remain resident
      cache().load(sibling);
      lru_.push_front(sibling);
      ++residents_[block];
    }
  }

  unsigned a_;
  FlatBlockIndex geom_;
  IndexedList lru_{0};  // over items
  std::vector<std::uint32_t> distinct_in_episode_;  // per block
  std::vector<std::uint32_t> residents_;            // per block
  std::vector<std::uint8_t> counted_;  // item contributed to its episode
};

}  // namespace gcaching
