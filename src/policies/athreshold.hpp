// The a-threshold policy family (Section 4.4).
//
// Theorem 4 parametrizes deterministic policies by `a`: the number of
// distinct consecutive accesses to a block the policy waits for before
// loading the entire block. `AThreshold` makes that parameter executable:
//
//   * item-granularity LRU eviction;
//   * on a miss, load the requested item; once a block has accumulated `a`
//     distinct item accesses during its current residency episode, load the
//     remainder of the block in the same miss.
//
// a = 1 loads whole blocks immediately (but, unlike a Block Cache, still
// evicts items individually — the configuration Section 4.4 recommends for
// large caches); a >= B never side-loads (a plain Item Cache). Sweeping `a`
// empirically traces out the Theorem 4 bound's two regimes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "policies/lru_list.hpp"

namespace gcaching {

class AThreshold final : public ReplacementPolicy {
 public:
  /// `a` must be >= 1.
  explicit AThreshold(unsigned a);

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override;

  unsigned a() const noexcept { return a_; }

 private:
  unsigned a_;
  std::unique_ptr<IndexedList> lru_;  // over items
  std::vector<std::uint32_t> distinct_in_episode_;  // per block
  std::vector<std::uint32_t> residents_;            // per block
  std::vector<bool> counted_;  // item contributed to its block's episode

  void note_access(ItemId item);
  void evict_lru_avoiding(BlockId protect);
  void note_eviction(ItemId item);
  void load_rest_of_block(BlockId block);
};

}  // namespace gcaching
