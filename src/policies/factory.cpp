#include "policies/factory.hpp"

#include <cstdint>
#include <map>
#include <sstream>
#include <type_traits>

#include "core/simulator.hpp"
#include "locality/stack_column.hpp"
#include "obs/obs.hpp"
#include "policies/athreshold.hpp"
#include "policies/belady.hpp"
#include "policies/block_fifo.hpp"
#include "policies/block_lru.hpp"
#include "policies/footprint.hpp"
#include "policies/gcm.hpp"
#include "policies/iblp.hpp"
#include "policies/item_arc.hpp"
#include "policies/item_clock.hpp"
#include "policies/item_fifo.hpp"
#include "policies/item_lfu.hpp"
#include "policies/item_lru.hpp"
#include "policies/item_random.hpp"
#include "policies/item_slru.hpp"
#include "util/contracts.hpp"

namespace gcaching {

namespace {

using Params = std::map<std::string, std::string>;

std::pair<std::string, Params> parse_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  Params params;
  if (colon != std::string::npos) {
    std::istringstream rest(spec.substr(colon + 1));
    std::string kv;
    while (std::getline(rest, kv, ',')) {
      const auto eq = kv.find('=');
      GC_REQUIRE(eq != std::string::npos,
                 "policy parameter must be key=value: " + kv);
      params[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
  }
  return {name, params};
}

std::uint64_t get_u64(const Params& p, const std::string& key,
                      std::uint64_t fallback) {
  const auto it = p.find(key);
  if (it == p.end()) return fallback;
  return std::stoull(it->second);
}

double get_f64(const Params& p, const std::string& key, double fallback) {
  const auto it = p.find(key);
  if (it == p.end()) return fallback;
  return std::stod(it->second);
}

IblpConfig iblp_config(const Params& p, std::size_t capacity) {
  IblpConfig cfg;
  const std::uint64_t half = capacity / 2;
  cfg.item_layer = static_cast<std::size_t>(get_u64(p, "i", half));
  cfg.block_layer =
      static_cast<std::size_t>(get_u64(p, "b", capacity - cfg.item_layer));
  GC_REQUIRE(cfg.total() == capacity,
             "IBLP spec i+b must equal the cache capacity");
  return cfg;
}

/// Construct a concrete policy and run the devirtualized engine on it. This
/// is the single point where the spec's dynamic name becomes a static type.
template <typename Policy, typename... Args>
SimStats run_fast(const BlockMap& map, const Trace& trace,
                  std::span<const BlockId> block_ids, std::size_t capacity,
                  Args&&... args) {
  Policy policy(std::forward<Args>(args)...);
  return simulate_fast(map, trace, policy, capacity, block_ids);
}

/// Column analogue of run_fast: one shared trace pass for every capacity.
/// Stack policies (kIsStackPolicy) get their column collapsed into a single
/// stack-distance pass when eligible; in checking builds the derivation is
/// cross-checked against the lane engine cell by cell before being trusted.
template <typename Policy, typename MakePolicy>
std::vector<SimStats> run_column(const BlockMap& map, const Trace& trace,
                                 std::span<const BlockId> block_ids,
                                 std::span<const std::size_t> capacities,
                                 bool allow_stack, MakePolicy&& make_policy) {
  constexpr bool kStack = [] {
    if constexpr (requires { Policy::kIsStackPolicy; })
      return Policy::kIsStackPolicy;
    else
      return false;
  }();
  if constexpr (kStack) {
    static_assert(std::is_same_v<Policy, ItemLru> ||
                      std::is_same_v<Policy, BlockLru>,
                  "no stack-column derivation registered for this policy");
    const bool eligible =
        std::is_same_v<Policy, ItemLru> || locality::block_column_supported(map);
    if (allow_stack && eligible) {
      GC_OBS_SPAN(span, "stack_column_pass", "column");
      GC_OBS_SPAN_ARG(span, "capacities", std::to_string(capacities.size()));
      GC_OBS_COUNT("column.stack_fast_path", 1);
      std::vector<SimStats> derived;
      if constexpr (std::is_same_v<Policy, ItemLru>)
        derived = locality::item_lru_column(map, trace, capacities);
      else
        derived = locality::block_lru_column(map, trace, block_ids, capacities);
      if constexpr (kHotChecksEnabled) {
        // Detached: stack-collapsed columns record no timeline in ANY build,
        // so the checking replay must not either.
        const obs::TimelineDetachScope no_timeline;
        const std::vector<SimStats> lanes = simulate_column<Policy>(
            map, trace, capacities, block_ids, make_policy);
        for (std::size_t i = 0; i < lanes.size(); ++i)
          GC_CHECK(derived[i] == lanes[i],
                   "stack-column derivation diverged from the lane engine");
      }
      return derived;
    }
  }
  GC_OBS_SPAN(span, "lane_column_pass", "column");
  GC_OBS_SPAN_ARG(span, "capacities", std::to_string(capacities.size()));
  GC_OBS_COUNT("column.lane_engine", 1);
  return simulate_column<Policy>(map, trace, capacities, block_ids,
                                 make_policy);
}

}  // namespace

std::unique_ptr<ReplacementPolicy> make_policy(const std::string& spec,
                                               std::size_t capacity) {
  const auto [name, params] = parse_spec(spec);
  if (name == "item-lru") return std::make_unique<ItemLru>();
  if (name == "item-fifo") return std::make_unique<ItemFifo>();
  if (name == "item-lfu") return std::make_unique<ItemLfu>();
  if (name == "item-clock") return std::make_unique<ItemClock>();
  if (name == "item-random")
    return std::make_unique<ItemRandom>(get_u64(params, "seed", 1));
  if (name == "item-slru")
    return std::make_unique<ItemSlru>(get_f64(params, "p", 0.5));
  if (name == "item-arc") return std::make_unique<ItemArc>();
  if (name == "footprint")
    return std::make_unique<FootprintCache>(
        get_u64(params, "cold_block", 1) != 0);
  if (name == "block-lru") return std::make_unique<BlockLru>();
  if (name == "block-fifo") return std::make_unique<BlockFifo>();
  if (name == "iblp")
    return std::make_unique<Iblp>(iblp_config(params, capacity));
  if (name == "iblp-excl")
    return std::make_unique<IblpExclusive>(iblp_config(params, capacity));
  if (name == "iblp-blockfirst")
    return std::make_unique<IblpBlockFirst>(iblp_config(params, capacity));
  if (name == "gcm")
    return std::make_unique<Gcm>(
        get_u64(params, "seed", 1),
        static_cast<std::size_t>(get_u64(params, "sideload", 0)));
  if (name == "marking-item")
    return std::make_unique<MarkingItem>(get_u64(params, "seed", 1));
  if (name == "marking-blockmark")
    return std::make_unique<MarkingBlockMark>(get_u64(params, "seed", 1));
  if (name == "athreshold")
    return std::make_unique<AThreshold>(
        static_cast<unsigned>(get_u64(params, "a", 1)));
  if (name == "belady-item") return std::make_unique<BeladyItem>();
  if (name == "belady-block") return std::make_unique<BeladyBlock>();
  if (name == "belady-greedy-gc") return std::make_unique<BeladyGreedyGc>();
  GC_REQUIRE(false, "unknown policy spec: " + spec);
  return nullptr;  // unreachable
}

SimStats simulate_fast_spec(const std::string& spec, const BlockMap& map,
                            const Trace& trace,
                            std::span<const BlockId> block_ids,
                            std::size_t capacity) {
  const auto [name, params] = parse_spec(spec);
  if (name == "item-lru")
    return run_fast<ItemLru>(map, trace, block_ids, capacity);
  if (name == "item-fifo")
    return run_fast<ItemFifo>(map, trace, block_ids, capacity);
  if (name == "item-lfu")
    return run_fast<ItemLfu>(map, trace, block_ids, capacity);
  if (name == "item-clock")
    return run_fast<ItemClock>(map, trace, block_ids, capacity);
  if (name == "item-random")
    return run_fast<ItemRandom>(map, trace, block_ids, capacity,
                                get_u64(params, "seed", 1));
  if (name == "item-slru")
    return run_fast<ItemSlru>(map, trace, block_ids, capacity,
                              get_f64(params, "p", 0.5));
  if (name == "item-arc")
    return run_fast<ItemArc>(map, trace, block_ids, capacity);
  if (name == "footprint")
    return run_fast<FootprintCache>(map, trace, block_ids, capacity,
                                    get_u64(params, "cold_block", 1) != 0);
  if (name == "block-lru")
    return run_fast<BlockLru>(map, trace, block_ids, capacity);
  if (name == "block-fifo")
    return run_fast<BlockFifo>(map, trace, block_ids, capacity);
  if (name == "iblp")
    return run_fast<Iblp>(map, trace, block_ids, capacity,
                          iblp_config(params, capacity));
  if (name == "iblp-excl")
    return run_fast<IblpExclusive>(map, trace, block_ids, capacity,
                                   iblp_config(params, capacity));
  if (name == "iblp-blockfirst")
    return run_fast<IblpBlockFirst>(map, trace, block_ids, capacity,
                                    iblp_config(params, capacity));
  if (name == "gcm")
    return run_fast<Gcm>(
        map, trace, block_ids, capacity, get_u64(params, "seed", 1),
        static_cast<std::size_t>(get_u64(params, "sideload", 0)));
  if (name == "marking-item")
    return run_fast<MarkingItem>(map, trace, block_ids, capacity,
                                 get_u64(params, "seed", 1));
  if (name == "marking-blockmark")
    return run_fast<MarkingBlockMark>(map, trace, block_ids, capacity,
                                      get_u64(params, "seed", 1));
  if (name == "athreshold")
    return run_fast<AThreshold>(map, trace, block_ids, capacity,
                                static_cast<unsigned>(get_u64(params, "a", 1)));
  if (name == "belady-item")
    return run_fast<BeladyItem>(map, trace, block_ids, capacity);
  if (name == "belady-block")
    return run_fast<BeladyBlock>(map, trace, block_ids, capacity);
  if (name == "belady-greedy-gc")
    return run_fast<BeladyGreedyGc>(map, trace, block_ids, capacity);
  GC_REQUIRE(false, "unknown policy spec: " + spec);
  return {};  // unreachable
}

SimStats simulate_fast_spec(const std::string& spec, const BlockMap& map,
                            const Trace& trace, std::size_t capacity) {
  std::vector<BlockId> storage;
  const std::span<const BlockId> ids = resolve_block_ids(map, trace, storage);
  return simulate_fast_spec(spec, map, trace, ids, capacity);
}

SimStats simulate_fast_spec(const std::string& spec, const Workload& workload,
                            std::size_t capacity) {
  GC_REQUIRE(workload.map != nullptr, "workload has no block map");
  return simulate_fast_spec(spec, *workload.map, workload.trace, capacity);
}

std::vector<SimStats> simulate_column_spec(
    const std::string& spec, const BlockMap& map, const Trace& trace,
    std::span<const BlockId> block_ids, std::span<const std::size_t> capacities,
    bool allow_stack) {
  const auto [name, params] = parse_spec(spec);
  const auto col = [&]<typename Policy>(std::type_identity<Policy>,
                                        auto&& make_policy) {
    return run_column<Policy>(map, trace, block_ids, capacities, allow_stack,
                              make_policy);
  };
  if (name == "item-lru")
    return col(std::type_identity<ItemLru>{},
               [](std::size_t) { return ItemLru(); });
  if (name == "item-fifo")
    return col(std::type_identity<ItemFifo>{},
               [](std::size_t) { return ItemFifo(); });
  if (name == "item-lfu")
    return col(std::type_identity<ItemLfu>{},
               [](std::size_t) { return ItemLfu(); });
  if (name == "item-clock")
    return col(std::type_identity<ItemClock>{},
               [](std::size_t) { return ItemClock(); });
  if (name == "item-random") {
    const std::uint64_t seed = get_u64(params, "seed", 1);
    return col(std::type_identity<ItemRandom>{},
               [seed](std::size_t) { return ItemRandom(seed); });
  }
  if (name == "item-slru") {
    const double p = get_f64(params, "p", 0.5);
    return col(std::type_identity<ItemSlru>{},
               [p](std::size_t) { return ItemSlru(p); });
  }
  if (name == "item-arc")
    return col(std::type_identity<ItemArc>{},
               [](std::size_t) { return ItemArc(); });
  if (name == "footprint") {
    const bool cold = get_u64(params, "cold_block", 1) != 0;
    return col(std::type_identity<FootprintCache>{},
               [cold](std::size_t) { return FootprintCache(cold); });
  }
  if (name == "block-lru")
    return col(std::type_identity<BlockLru>{},
               [](std::size_t) { return BlockLru(); });
  if (name == "block-fifo")
    return col(std::type_identity<BlockFifo>{},
               [](std::size_t) { return BlockFifo(); });
  // IBLP splits are capacity-dependent, so each lane resolves its own config.
  if (name == "iblp")
    return col(std::type_identity<Iblp>{}, [&p = params](std::size_t cap) {
      return Iblp(iblp_config(p, cap));
    });
  if (name == "iblp-excl")
    return col(std::type_identity<IblpExclusive>{},
               [&p = params](std::size_t cap) {
                 return IblpExclusive(iblp_config(p, cap));
               });
  if (name == "iblp-blockfirst")
    return col(std::type_identity<IblpBlockFirst>{},
               [&p = params](std::size_t cap) {
                 return IblpBlockFirst(iblp_config(p, cap));
               });
  if (name == "gcm") {
    const std::uint64_t seed = get_u64(params, "seed", 1);
    const std::size_t sideload =
        static_cast<std::size_t>(get_u64(params, "sideload", 0));
    return col(std::type_identity<Gcm>{},
               [seed, sideload](std::size_t) { return Gcm(seed, sideload); });
  }
  if (name == "marking-item") {
    const std::uint64_t seed = get_u64(params, "seed", 1);
    return col(std::type_identity<MarkingItem>{},
               [seed](std::size_t) { return MarkingItem(seed); });
  }
  if (name == "marking-blockmark") {
    const std::uint64_t seed = get_u64(params, "seed", 1);
    return col(std::type_identity<MarkingBlockMark>{},
               [seed](std::size_t) { return MarkingBlockMark(seed); });
  }
  if (name == "athreshold") {
    const unsigned a = static_cast<unsigned>(get_u64(params, "a", 1));
    return col(std::type_identity<AThreshold>{},
               [a](std::size_t) { return AThreshold(a); });
  }
  if (name == "belady-item")
    return col(std::type_identity<BeladyItem>{},
               [](std::size_t) { return BeladyItem(); });
  if (name == "belady-block")
    return col(std::type_identity<BeladyBlock>{},
               [](std::size_t) { return BeladyBlock(); });
  if (name == "belady-greedy-gc")
    return col(std::type_identity<BeladyGreedyGc>{},
               [](std::size_t) { return BeladyGreedyGc(); });
  GC_REQUIRE(false, "unknown policy spec: " + spec);
  return {};  // unreachable
}

double estimated_sim_cost(const std::string& spec, std::uint64_t accesses) {
  // Relative cost per access, item-lru = 1.0, calibrated from the
  // GC_FAST_SIM throughputs in BENCH_throughput.json (zipf workload) after
  // the data-oriented policy rewrites — the lazily-ordered LFU bucket, the
  // FlatBlockIndex geometry, and same-block run batching compressed the
  // spread from ~70x to ~17x. A misestimate only shifts schedule order,
  // never correctness.
  static const std::map<std::string, double> kUnitCost = {
      {"item-lru", 1.0},       {"item-fifo", 1.0},
      {"item-lfu", 1.3},       {"item-clock", 1.4},
      {"item-random", 1.0},    {"item-slru", 1.9},
      {"item-arc", 1.5},       {"footprint", 6.1},
      {"block-lru", 4.3},      {"block-fifo", 5.0},
      {"iblp", 10.7},          {"iblp-excl", 7.9},
      {"iblp-blockfirst", 11.8}, {"gcm", 4.3},
      {"marking-item", 1.5},   {"marking-blockmark", 8.3},
      {"athreshold", 6.9},     {"belady-item", 12.1},
      {"belady-block", 14.8},  {"belady-greedy-gc", 17.5}};
  const auto [name, params] = parse_spec(spec);
  const auto it = kUnitCost.find(name);
  // Unknown names get a middle-of-the-pack estimate: misscheduling one row
  // costs a little balance, never correctness.
  const double unit = it == kUnitCost.end() ? 8.0 : it->second;
  return unit * static_cast<double>(accesses);
}

std::vector<std::string> known_policy_names() {
  return {"item-lru",       "item-fifo",         "item-lfu",
          "item-clock",     "item-random",       "item-slru",
          "item-arc",       "footprint",         "block-lru",
          "block-fifo",     "iblp",              "iblp-excl",
          "iblp-blockfirst", "gcm",              "marking-item",
          "marking-blockmark", "athreshold",     "belady-item",
          "belady-block",   "belady-greedy-gc"};
}

}  // namespace gcaching
