#include "policies/factory.hpp"

#include <cstdint>
#include <map>
#include <sstream>

#include "policies/athreshold.hpp"
#include "policies/belady.hpp"
#include "policies/block_fifo.hpp"
#include "policies/block_lru.hpp"
#include "policies/footprint.hpp"
#include "policies/gcm.hpp"
#include "policies/iblp.hpp"
#include "policies/item_arc.hpp"
#include "policies/item_clock.hpp"
#include "policies/item_fifo.hpp"
#include "policies/item_lfu.hpp"
#include "policies/item_lru.hpp"
#include "policies/item_random.hpp"
#include "policies/item_slru.hpp"
#include "util/contracts.hpp"

namespace gcaching {

namespace {

using Params = std::map<std::string, std::string>;

std::pair<std::string, Params> parse_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  Params params;
  if (colon != std::string::npos) {
    std::istringstream rest(spec.substr(colon + 1));
    std::string kv;
    while (std::getline(rest, kv, ',')) {
      const auto eq = kv.find('=');
      GC_REQUIRE(eq != std::string::npos,
                 "policy parameter must be key=value: " + kv);
      params[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
  }
  return {name, params};
}

std::uint64_t get_u64(const Params& p, const std::string& key,
                      std::uint64_t fallback) {
  const auto it = p.find(key);
  if (it == p.end()) return fallback;
  return std::stoull(it->second);
}

double get_f64(const Params& p, const std::string& key, double fallback) {
  const auto it = p.find(key);
  if (it == p.end()) return fallback;
  return std::stod(it->second);
}

IblpConfig iblp_config(const Params& p, std::size_t capacity) {
  IblpConfig cfg;
  const std::uint64_t half = capacity / 2;
  cfg.item_layer = static_cast<std::size_t>(get_u64(p, "i", half));
  cfg.block_layer =
      static_cast<std::size_t>(get_u64(p, "b", capacity - cfg.item_layer));
  GC_REQUIRE(cfg.total() == capacity,
             "IBLP spec i+b must equal the cache capacity");
  return cfg;
}

}  // namespace

std::unique_ptr<ReplacementPolicy> make_policy(const std::string& spec,
                                               std::size_t capacity) {
  const auto [name, params] = parse_spec(spec);
  if (name == "item-lru") return std::make_unique<ItemLru>();
  if (name == "item-fifo") return std::make_unique<ItemFifo>();
  if (name == "item-lfu") return std::make_unique<ItemLfu>();
  if (name == "item-clock") return std::make_unique<ItemClock>();
  if (name == "item-random")
    return std::make_unique<ItemRandom>(get_u64(params, "seed", 1));
  if (name == "item-slru")
    return std::make_unique<ItemSlru>(get_f64(params, "p", 0.5));
  if (name == "item-arc") return std::make_unique<ItemArc>();
  if (name == "footprint")
    return std::make_unique<FootprintCache>(
        get_u64(params, "cold_block", 1) != 0);
  if (name == "block-lru") return std::make_unique<BlockLru>();
  if (name == "block-fifo") return std::make_unique<BlockFifo>();
  if (name == "iblp")
    return std::make_unique<Iblp>(iblp_config(params, capacity));
  if (name == "iblp-excl")
    return std::make_unique<IblpExclusive>(iblp_config(params, capacity));
  if (name == "iblp-blockfirst")
    return std::make_unique<IblpBlockFirst>(iblp_config(params, capacity));
  if (name == "gcm")
    return std::make_unique<Gcm>(
        get_u64(params, "seed", 1),
        static_cast<std::size_t>(get_u64(params, "sideload", 0)));
  if (name == "marking-item")
    return std::make_unique<MarkingItem>(get_u64(params, "seed", 1));
  if (name == "marking-blockmark")
    return std::make_unique<MarkingBlockMark>(get_u64(params, "seed", 1));
  if (name == "athreshold")
    return std::make_unique<AThreshold>(
        static_cast<unsigned>(get_u64(params, "a", 1)));
  if (name == "belady-item") return std::make_unique<BeladyItem>();
  if (name == "belady-block") return std::make_unique<BeladyBlock>();
  if (name == "belady-greedy-gc") return std::make_unique<BeladyGreedyGc>();
  GC_REQUIRE(false, "unknown policy spec: " + spec);
  return nullptr;  // unreachable
}

std::vector<std::string> known_policy_names() {
  return {"item-lru",       "item-fifo",         "item-lfu",
          "item-clock",     "item-random",       "item-slru",
          "item-arc",       "footprint",         "block-lru",
          "block-fifo",     "iblp",              "iblp-excl",
          "iblp-blockfirst", "gcm",              "marking-item",
          "marking-blockmark", "athreshold",     "belady-item",
          "belady-block",   "belady-greedy-gc"};
}

}  // namespace gcaching
