#include "policies/factory.hpp"

#include <cstdint>
#include <map>
#include <sstream>

#include "core/simulator.hpp"
#include "policies/athreshold.hpp"
#include "policies/belady.hpp"
#include "policies/block_fifo.hpp"
#include "policies/block_lru.hpp"
#include "policies/footprint.hpp"
#include "policies/gcm.hpp"
#include "policies/iblp.hpp"
#include "policies/item_arc.hpp"
#include "policies/item_clock.hpp"
#include "policies/item_fifo.hpp"
#include "policies/item_lfu.hpp"
#include "policies/item_lru.hpp"
#include "policies/item_random.hpp"
#include "policies/item_slru.hpp"
#include "util/contracts.hpp"

namespace gcaching {

namespace {

using Params = std::map<std::string, std::string>;

std::pair<std::string, Params> parse_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string name = spec.substr(0, colon);
  Params params;
  if (colon != std::string::npos) {
    std::istringstream rest(spec.substr(colon + 1));
    std::string kv;
    while (std::getline(rest, kv, ',')) {
      const auto eq = kv.find('=');
      GC_REQUIRE(eq != std::string::npos,
                 "policy parameter must be key=value: " + kv);
      params[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
  }
  return {name, params};
}

std::uint64_t get_u64(const Params& p, const std::string& key,
                      std::uint64_t fallback) {
  const auto it = p.find(key);
  if (it == p.end()) return fallback;
  return std::stoull(it->second);
}

double get_f64(const Params& p, const std::string& key, double fallback) {
  const auto it = p.find(key);
  if (it == p.end()) return fallback;
  return std::stod(it->second);
}

IblpConfig iblp_config(const Params& p, std::size_t capacity) {
  IblpConfig cfg;
  const std::uint64_t half = capacity / 2;
  cfg.item_layer = static_cast<std::size_t>(get_u64(p, "i", half));
  cfg.block_layer =
      static_cast<std::size_t>(get_u64(p, "b", capacity - cfg.item_layer));
  GC_REQUIRE(cfg.total() == capacity,
             "IBLP spec i+b must equal the cache capacity");
  return cfg;
}

/// Construct a concrete policy and run the devirtualized engine on it. This
/// is the single point where the spec's dynamic name becomes a static type.
template <typename Policy, typename... Args>
SimStats run_fast(const BlockMap& map, const Trace& trace,
                  std::span<const BlockId> block_ids, std::size_t capacity,
                  Args&&... args) {
  Policy policy(std::forward<Args>(args)...);
  return simulate_fast(map, trace, policy, capacity, block_ids);
}

}  // namespace

std::unique_ptr<ReplacementPolicy> make_policy(const std::string& spec,
                                               std::size_t capacity) {
  const auto [name, params] = parse_spec(spec);
  if (name == "item-lru") return std::make_unique<ItemLru>();
  if (name == "item-fifo") return std::make_unique<ItemFifo>();
  if (name == "item-lfu") return std::make_unique<ItemLfu>();
  if (name == "item-clock") return std::make_unique<ItemClock>();
  if (name == "item-random")
    return std::make_unique<ItemRandom>(get_u64(params, "seed", 1));
  if (name == "item-slru")
    return std::make_unique<ItemSlru>(get_f64(params, "p", 0.5));
  if (name == "item-arc") return std::make_unique<ItemArc>();
  if (name == "footprint")
    return std::make_unique<FootprintCache>(
        get_u64(params, "cold_block", 1) != 0);
  if (name == "block-lru") return std::make_unique<BlockLru>();
  if (name == "block-fifo") return std::make_unique<BlockFifo>();
  if (name == "iblp")
    return std::make_unique<Iblp>(iblp_config(params, capacity));
  if (name == "iblp-excl")
    return std::make_unique<IblpExclusive>(iblp_config(params, capacity));
  if (name == "iblp-blockfirst")
    return std::make_unique<IblpBlockFirst>(iblp_config(params, capacity));
  if (name == "gcm")
    return std::make_unique<Gcm>(
        get_u64(params, "seed", 1),
        static_cast<std::size_t>(get_u64(params, "sideload", 0)));
  if (name == "marking-item")
    return std::make_unique<MarkingItem>(get_u64(params, "seed", 1));
  if (name == "marking-blockmark")
    return std::make_unique<MarkingBlockMark>(get_u64(params, "seed", 1));
  if (name == "athreshold")
    return std::make_unique<AThreshold>(
        static_cast<unsigned>(get_u64(params, "a", 1)));
  if (name == "belady-item") return std::make_unique<BeladyItem>();
  if (name == "belady-block") return std::make_unique<BeladyBlock>();
  if (name == "belady-greedy-gc") return std::make_unique<BeladyGreedyGc>();
  GC_REQUIRE(false, "unknown policy spec: " + spec);
  return nullptr;  // unreachable
}

SimStats simulate_fast_spec(const std::string& spec, const BlockMap& map,
                            const Trace& trace,
                            std::span<const BlockId> block_ids,
                            std::size_t capacity) {
  const auto [name, params] = parse_spec(spec);
  if (name == "item-lru")
    return run_fast<ItemLru>(map, trace, block_ids, capacity);
  if (name == "item-fifo")
    return run_fast<ItemFifo>(map, trace, block_ids, capacity);
  if (name == "item-lfu")
    return run_fast<ItemLfu>(map, trace, block_ids, capacity);
  if (name == "item-clock")
    return run_fast<ItemClock>(map, trace, block_ids, capacity);
  if (name == "item-random")
    return run_fast<ItemRandom>(map, trace, block_ids, capacity,
                                get_u64(params, "seed", 1));
  if (name == "item-slru")
    return run_fast<ItemSlru>(map, trace, block_ids, capacity,
                              get_f64(params, "p", 0.5));
  if (name == "item-arc")
    return run_fast<ItemArc>(map, trace, block_ids, capacity);
  if (name == "footprint")
    return run_fast<FootprintCache>(map, trace, block_ids, capacity,
                                    get_u64(params, "cold_block", 1) != 0);
  if (name == "block-lru")
    return run_fast<BlockLru>(map, trace, block_ids, capacity);
  if (name == "block-fifo")
    return run_fast<BlockFifo>(map, trace, block_ids, capacity);
  if (name == "iblp")
    return run_fast<Iblp>(map, trace, block_ids, capacity,
                          iblp_config(params, capacity));
  if (name == "iblp-excl")
    return run_fast<IblpExclusive>(map, trace, block_ids, capacity,
                                   iblp_config(params, capacity));
  if (name == "iblp-blockfirst")
    return run_fast<IblpBlockFirst>(map, trace, block_ids, capacity,
                                    iblp_config(params, capacity));
  if (name == "gcm")
    return run_fast<Gcm>(
        map, trace, block_ids, capacity, get_u64(params, "seed", 1),
        static_cast<std::size_t>(get_u64(params, "sideload", 0)));
  if (name == "marking-item")
    return run_fast<MarkingItem>(map, trace, block_ids, capacity,
                                 get_u64(params, "seed", 1));
  if (name == "marking-blockmark")
    return run_fast<MarkingBlockMark>(map, trace, block_ids, capacity,
                                      get_u64(params, "seed", 1));
  if (name == "athreshold")
    return run_fast<AThreshold>(map, trace, block_ids, capacity,
                                static_cast<unsigned>(get_u64(params, "a", 1)));
  if (name == "belady-item")
    return run_fast<BeladyItem>(map, trace, block_ids, capacity);
  if (name == "belady-block")
    return run_fast<BeladyBlock>(map, trace, block_ids, capacity);
  if (name == "belady-greedy-gc")
    return run_fast<BeladyGreedyGc>(map, trace, block_ids, capacity);
  GC_REQUIRE(false, "unknown policy spec: " + spec);
  return {};  // unreachable
}

SimStats simulate_fast_spec(const std::string& spec, const BlockMap& map,
                            const Trace& trace, std::size_t capacity) {
  if (trace.has_block_ids(map))
    return simulate_fast_spec(spec, map, trace, trace.block_ids(), capacity);
  const std::vector<BlockId> ids = compute_block_ids(map, trace);
  return simulate_fast_spec(spec, map, trace,
                            std::span<const BlockId>(ids), capacity);
}

SimStats simulate_fast_spec(const std::string& spec, const Workload& workload,
                            std::size_t capacity) {
  GC_REQUIRE(workload.map != nullptr, "workload has no block map");
  return simulate_fast_spec(spec, *workload.map, workload.trace, capacity);
}

std::vector<std::string> known_policy_names() {
  return {"item-lru",       "item-fifo",         "item-lfu",
          "item-clock",     "item-random",       "item-slru",
          "item-arc",       "footprint",         "block-lru",
          "block-fifo",     "iblp",              "iblp-excl",
          "iblp-blockfirst", "gcm",              "marking-item",
          "marking-blockmark", "athreshold",     "belady-item",
          "belady-block",   "belady-greedy-gc"};
}

}  // namespace gcaching
