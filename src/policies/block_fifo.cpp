#include "policies/block_fifo.hpp"

#include "util/contracts.hpp"

namespace gcaching {

void BlockFifo::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  GC_REQUIRE(cache.capacity() >= map.max_block_size(),
             "a Block Cache needs capacity >= B to hold any block");
  queue_ = std::make_unique<IndexedList>(map.num_blocks());
}

void BlockFifo::on_hit(ItemId /*item*/) {
  // FIFO ignores hits.
}

void BlockFifo::on_miss(ItemId item) {
  const BlockId block = map().block_of(item);
  GC_CHECK(cache().residents_of_block(block) == 0,
           "block-granularity invariant broken");
  const std::size_t need = map().block_size(block);
  while (cache().capacity() - cache().occupancy() < need) {
    const BlockId victim = queue_->pop_back();
    for (ItemId it : map().items_of(victim)) cache().evict(it);
  }
  for (ItemId it : map().items_of(block)) cache().load(it);
  queue_->push_front(block);
}

void BlockFifo::reset() {
  if (queue_) queue_->clear();
}

}  // namespace gcaching
