// Flat, virtual-call-free mirror of a BlockMap's geometry.
//
// The block-aware policies (footprint, athreshold, gcm, the marking
// family) consult block membership on every access: which block an item
// belongs to, its position inside the block, and the block's member list.
// Going through the virtual BlockMap interface for that costs an indirect
// call per query — on the simulation hot path, per access. FlatBlockIndex
// resolves every query without a virtual call, in one of two modes:
//
//   * Uniform power-of-two geometry (a UniformBlockMap whose B is a power
//     of two — every synthetic and address-trace workload): block and
//     position are a shift and a mask, and member lists alias the map's own
//     flattened item array. No per-item storage at all — this matters on
//     large universes, where a materialized item->block array would add a
//     cold cache miss per query that the arithmetic avoids.
//   * Anything else: dense snapshot arrays built once at attach time, an
//     indexed load per query.
//
// Block maps are immutable for the lifetime of a policy attachment and the
// policy's attach() keeps the map alive, so neither the aliased spans nor
// the snapshot can go stale.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/block_map.hpp"
#include "core/types.hpp"
#include "util/contracts.hpp"

namespace gcaching {

class FlatBlockIndex {
 public:
  FlatBlockIndex() = default;

  /// Rebuilds the index from `map`. Called from a policy's attach(); `map`
  /// must outlive the index (policies hold the attachment reference).
  void build(const BlockMap& map) {
    const std::size_t num_items = map.num_items();
    const std::size_t num_blocks = map.num_blocks();
    num_items_ = num_items;
    const std::size_t b = map.max_block_size();
    const bool pow2 = b > 0 && (b & (b - 1)) == 0;
    if (pow2 && num_blocks > 0 && dynamic_cast<const UniformBlockMap*>(&map)) {
      shift_ = 0;
      while ((std::size_t{1} << shift_) < b) ++shift_;
      mask_ = static_cast<std::uint32_t>(b - 1);
      // UniformBlockMap flattens the whole universe contiguously; the span
      // for block 0 starts that array, so every block is base_ + block * B.
      base_ = map.items_of(0).data();
      block_of_.clear();
      pos_of_.clear();
      items_.clear();
      begin_.clear();
      return;
    }
    base_ = nullptr;
    block_of_.resize(num_items);
    pos_of_.resize(num_items);
    items_.clear();
    items_.reserve(num_items);
    begin_.assign(num_blocks + 1, 0);
    for (std::size_t j = 0; j < num_blocks; ++j) {
      const BlockId block = static_cast<BlockId>(j);
      begin_[j] = static_cast<std::uint32_t>(items_.size());
      const std::span<const ItemId> members = map.items_of(block);
      for (std::size_t p = 0; p < members.size(); ++p) {
        const ItemId item = members[p];
        block_of_[item] = block;
        pos_of_[item] = static_cast<std::uint32_t>(p);
        items_.push_back(item);
      }
    }
    begin_[num_blocks] = static_cast<std::uint32_t>(items_.size());
    GC_ENSURE(items_.size() == num_items,
              "block map did not partition the item universe");
  }

  BlockId block_of(ItemId item) const {
    return base_ != nullptr ? static_cast<BlockId>(item >> shift_)
                            : block_of_[item];
  }

  /// Index of `item` within its block's member list (ascending ids).
  std::uint32_t position_of(ItemId item) const {
    return base_ != nullptr ? (item & mask_) : pos_of_[item];
  }

  /// Bitmask with the item's block position set; positions beyond 63 are
  /// the caller's responsibility (footprint REQUIREs max block size <= 64).
  std::uint64_t bit_of(ItemId item) const {
    return std::uint64_t{1} << position_of(item);
  }

  std::span<const ItemId> items_of(BlockId block) const {
    if (base_ != nullptr) {
      const std::size_t lo = std::size_t{block} << shift_;
      const std::size_t width = std::size_t{mask_} + 1;
      return std::span<const ItemId>(base_ + lo,
                                     std::min(width, num_items_ - lo));
    }
    return std::span<const ItemId>(items_.data() + begin_[block],
                                   begin_[block + 1] - begin_[block]);
  }

  std::size_t block_size(BlockId block) const { return items_of(block).size(); }

 private:
  // Uniform power-of-two mode: base_ aliases the map's flattened items.
  const ItemId* base_ = nullptr;
  std::uint32_t shift_ = 0;
  std::uint32_t mask_ = 0;
  std::size_t num_items_ = 0;

  // Snapshot mode (irregular or non-power-of-two geometry).
  std::vector<BlockId> block_of_;
  std::vector<std::uint32_t> pos_of_;
  std::vector<ItemId> items_;         // members flattened, block-major
  std::vector<std::uint32_t> begin_;  // per block: offset into items_
};

}  // namespace gcaching
