#include "policies/item_clock.hpp"

#include "util/contracts.hpp"

namespace gcaching {

void ItemClock::attach(const BlockMap& map, CacheContents& cache) {
  set_attachment(map, cache);
  slots_.assign(cache.capacity(), kInvalidItem);
  ref_.assign(cache.capacity(), false);
  slot_of_.assign(map.num_items(), kNoSlot);
  hand_ = 0;
  used_ = 0;
}

void ItemClock::on_hit(ItemId item) {
  const std::uint32_t slot = slot_of_[item];
  GC_CHECK(slot != kNoSlot, "hit on item without a slot");
  ref_[slot] = true;
}

std::size_t ItemClock::advance_hand() {
  // Classic second-chance sweep: clear reference bits until an unreferenced
  // slot is found. Terminates within two laps.
  for (;;) {
    if (ref_[hand_]) {
      ref_[hand_] = false;
      hand_ = (hand_ + 1) % slots_.size();
    } else {
      const std::size_t victim = hand_;
      hand_ = (hand_ + 1) % slots_.size();
      return victim;
    }
  }
}

void ItemClock::on_miss(ItemId item) {
  std::size_t slot;
  if (used_ < slots_.size()) {
    // Fill empty slots first (cold start).
    slot = used_++;
  } else {
    slot = advance_hand();
    const ItemId victim = slots_[slot];
    slot_of_[victim] = kNoSlot;
    cache().evict(victim);
  }
  cache().load(item);
  slots_[slot] = item;
  ref_[slot] = false;  // inserted without a reference bit; first hit sets it
  slot_of_[item] = static_cast<std::uint32_t>(slot);
}

void ItemClock::reset() {
  slots_.assign(slots_.size(), kInvalidItem);
  ref_.assign(ref_.size(), false);
  slot_of_.assign(slot_of_.size(), kNoSlot);
  hand_ = 0;
  used_ = 0;
}

}  // namespace gcaching
