// Item Cache running FIFO.
//
// Evicts in insertion order regardless of hits. Included as a second
// traditional-cache baseline: FIFO is also a-competitive with a = B in the
// Theorem 4 parametrization (it never loads unrequested items), and its
// contrast with LRU isolates how much of the GC-caching penalty is about
// load granularity rather than recency quality.
#pragma once

#include <memory>
#include <string>

#include "core/policy.hpp"
#include "policies/lru_list.hpp"

namespace gcaching {

class ItemFifo final : public ReplacementPolicy {
 public:
  /// Loads only the requested item, never a sibling (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::record_requested_hit
  static constexpr bool kRequestedLoadsOnly = true;

  ItemFifo() = default;

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override { return "item-fifo"; }

 private:
  std::unique_ptr<IndexedList> queue_;  // front = newest
};

}  // namespace gcaching
