// Intrusive recency list over a dense id universe.
//
// All LRU-style policies in this library keep their recency order in an
// `IndexedList`: a doubly-linked list whose nodes are preallocated, indexed
// by the id itself (item id or block id). Every operation is O(1) with no
// allocation on the hot path, and membership is an O(1) flag check, which is
// what makes the simulator fast enough for multi-million-access sweeps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace gcaching {

class IndexedList {
 public:
  using Id = std::uint32_t;

  explicit IndexedList(std::size_t universe)
      : nodes_(universe + 1) {  // last node is the sentinel
    const Id s = sentinel();
    nodes_[s].prev = s;
    nodes_[s].next = s;
  }

  std::size_t universe() const noexcept { return nodes_.size() - 1; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool contains(Id id) const {
    GC_REQUIRE(id < universe(), "id out of range");
    return nodes_[id].in_list;
  }

  /// Most-recently-used end.
  Id front() const {
    GC_REQUIRE(!empty(), "front() of empty list");
    return nodes_[sentinel()].next;
  }

  /// Least-recently-used end.
  Id back() const {
    GC_REQUIRE(!empty(), "back() of empty list");
    return nodes_[sentinel()].prev;
  }

  void push_front(Id id) {
    GC_REQUIRE(id < universe(), "id out of range");
    GC_REQUIRE(!nodes_[id].in_list, "id already in list");
    link_after(sentinel(), id);
    nodes_[id].in_list = true;
    ++size_;
  }

  void push_back(Id id) {
    GC_REQUIRE(id < universe(), "id out of range");
    GC_REQUIRE(!nodes_[id].in_list, "id already in list");
    link_after(nodes_[sentinel()].prev, id);
    nodes_[id].in_list = true;
    ++size_;
  }

  void remove(Id id) {
    GC_REQUIRE(id < universe(), "id out of range");
    GC_REQUIRE(nodes_[id].in_list, "removing id not in list");
    unlink(id);
    nodes_[id].in_list = false;
    --size_;
  }

  void move_to_front(Id id) {
    GC_REQUIRE(nodes_[id].in_list, "move_to_front of id not in list");
    unlink(id);
    link_after(sentinel(), id);
  }

  Id pop_back() {
    const Id id = back();
    remove(id);
    return id;
  }

  void clear() {
    // O(universe) — only used between runs, never on the hot path.
    for (auto& n : nodes_) n = Node{};
    const Id s = sentinel();
    nodes_[s].prev = s;
    nodes_[s].next = s;
    size_ = 0;
  }

  /// Snapshot MRU -> LRU (for tests).
  std::vector<Id> to_vector() const {
    std::vector<Id> out;
    out.reserve(size_);
    for (Id cur = nodes_[sentinel()].next; cur != sentinel();
         cur = nodes_[cur].next)
      out.push_back(cur);
    return out;
  }

  /// Iterate LRU -> MRU until fn returns false. Used for victim scans that
  /// must skip ineligible entries (e.g. items of the currently-missed block).
  template <typename Fn>
  void for_each_from_lru(Fn&& fn) const {
    for (Id cur = nodes_[sentinel()].prev; cur != sentinel();) {
      const Id prev = nodes_[cur].prev;  // fn may remove cur
      if (!fn(cur)) return;
      cur = prev;
    }
  }

 private:
  struct Node {
    Id prev = 0;
    Id next = 0;
    bool in_list = false;
  };

  Id sentinel() const noexcept { return static_cast<Id>(nodes_.size() - 1); }

  void link_after(Id pos, Id id) {
    Node& n = nodes_[id];
    n.prev = pos;
    n.next = nodes_[pos].next;
    nodes_[n.next].prev = id;
    nodes_[pos].next = id;
  }

  void unlink(Id id) {
    Node& n = nodes_[id];
    nodes_[n.prev].next = n.next;
    nodes_[n.next].prev = n.prev;
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace gcaching
