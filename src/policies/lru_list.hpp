// Intrusive recency list over a dense id universe.
//
// All LRU-style policies in this library keep their recency order in an
// `IndexedList`: a doubly-linked list whose nodes are preallocated, indexed
// by the id itself (item id or block id). Every operation is O(1) with no
// allocation on the hot path, and membership is an O(1) flag check, which is
// what makes the simulator fast enough for multi-million-access sweeps.
// Per-operation contracts are hot-tier (GC_HOT_REQUIRE): enforced by
// default, compiled out under GC_FAST_SIM.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace gcaching {

class IndexedList {
 public:
  using Id = std::uint32_t;

  explicit IndexedList(std::size_t universe)
      : nodes_(universe + 1, Node{kNull, kNull}) {  // last is the sentinel
    const Id s = sentinel();
    nodes_[s].prev = s;
    nodes_[s].next = s;
  }

  std::size_t universe() const noexcept { return nodes_.size() - 1; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  bool contains(Id id) const {
    GC_HOT_REQUIRE(id < universe(), "id out of range");
    return nodes_[id].next != kNull;
  }

  /// Most-recently-used end.
  Id front() const {
    GC_HOT_REQUIRE(!empty(), "front() of empty list");
    return nodes_[sentinel()].next;
  }

  /// Least-recently-used end.
  Id back() const {
    GC_HOT_REQUIRE(!empty(), "back() of empty list");
    return nodes_[sentinel()].prev;
  }

  void push_front(Id id) {
    GC_HOT_REQUIRE(id < universe(), "id out of range");
    GC_HOT_REQUIRE(nodes_[id].next == kNull, "id already in list");
    link_after(sentinel(), id);
    ++size_;
  }

  void push_back(Id id) {
    GC_HOT_REQUIRE(id < universe(), "id out of range");
    GC_HOT_REQUIRE(nodes_[id].next == kNull, "id already in list");
    link_after(nodes_[sentinel()].prev, id);
    ++size_;
  }

  void remove(Id id) {
    GC_HOT_REQUIRE(id < universe(), "id out of range");
    GC_HOT_REQUIRE(nodes_[id].next != kNull, "removing id not in list");
    unlink(id);
    nodes_[id] = Node{kNull, kNull};
    --size_;
  }

  void move_to_front(Id id) {
    GC_HOT_REQUIRE(nodes_[id].next != kNull,
                   "move_to_front of id not in list");
    if (nodes_[sentinel()].next == id) return;  // already most recent
    unlink(id);
    link_after(sentinel(), id);
  }

  Id pop_back() {
    const Id id = back();
    remove(id);
    return id;
  }

  void clear() {
    // O(universe) — only used between runs, never on the hot path.
    for (auto& n : nodes_) n = Node{kNull, kNull};
    const Id s = sentinel();
    nodes_[s].prev = s;
    nodes_[s].next = s;
    size_ = 0;
  }

  /// Snapshot MRU -> LRU (for tests).
  std::vector<Id> to_vector() const {
    std::vector<Id> out;
    out.reserve(size_);
    for (Id cur = nodes_[sentinel()].next; cur != sentinel();
         cur = nodes_[cur].next)
      out.push_back(cur);
    return out;
  }

  /// Iterate LRU -> MRU until fn returns false. Used for victim scans that
  /// must skip ineligible entries (e.g. items of the currently-missed block).
  template <typename Fn>
  void for_each_from_lru(Fn&& fn) const {
    for (Id cur = nodes_[sentinel()].prev; cur != sentinel();) {
      const Id prev = nodes_[cur].prev;  // fn may remove cur
      if (!fn(cur)) return;
      cur = prev;
    }
  }

 private:
  // 8-byte node: membership is encoded as next != kNull, so the whole
  // recency state an operation touches is a handful of 8-byte slots.
  static constexpr Id kNull = static_cast<Id>(-1);
  struct Node {
    Id prev;
    Id next;
  };

  Id sentinel() const noexcept { return static_cast<Id>(nodes_.size() - 1); }

  void link_after(Id pos, Id id) {
    Node& n = nodes_[id];
    n.prev = pos;
    n.next = nodes_[pos].next;
    nodes_[n.next].prev = id;
    nodes_[pos].next = id;
  }

  void unlink(Id id) {
    Node& n = nodes_[id];
    nodes_[n.prev].next = n.next;
    nodes_[n.next].prev = n.prev;
  }

  std::vector<Node> nodes_;
  std::size_t size_ = 0;
};

}  // namespace gcaching
