// Item Cache running Segmented LRU (two segments).
//
// Probationary + protected segments: first touch inserts into probation,
// a hit promotes to the protected segment, protected overflow demotes back
// to probation's MRU end. A scan-resistant LRU refinement used in real
// storage caches; included to exercise the framework with a policy whose
// eviction choice depends on richer state than a single list.
#pragma once

#include <memory>
#include <string>

#include "core/policy.hpp"
#include "policies/lru_list.hpp"

namespace gcaching {

class ItemSlru final : public ReplacementPolicy {
 public:
  /// Loads only the requested item, never a sibling (see simulate_fast).
  // GCLINT-TRAIT-CHECKED-BY: CacheContents::record_requested_hit
  static constexpr bool kRequestedLoadsOnly = true;

  /// `protected_fraction` of the capacity is reserved for the protected
  /// segment (clamped to [0, capacity-1] slots so probation is never empty).
  explicit ItemSlru(double protected_fraction = 0.5);

  void attach(const BlockMap& map, CacheContents& cache) override;
  void on_hit(ItemId item) override;
  void on_miss(ItemId item) override;
  void reset() override;
  std::string name() const override;

  std::size_t protected_capacity() const noexcept { return protected_cap_; }

 private:
  double protected_fraction_;
  std::size_t protected_cap_ = 0;
  std::unique_ptr<IndexedList> probation_;
  std::unique_ptr<IndexedList> protected_;
};

}  // namespace gcaching
