// Policy construction by name — the registry used by benches, examples and
// parameterized tests.
//
// Spec grammar:  <name>[:key=value[,key=value...]]
//   item-lru | item-fifo | item-lfu | item-clock | item-random |
//   item-slru[:p=<frac>] | item-arc |
//   footprint[:cold_block=<0|1>] |
//   block-lru | block-fifo |
//   iblp:i=<n>,b=<n> | iblp-excl:i=<n>,b=<n> | iblp-blockfirst:i=<n>,b=<n> |
//   gcm[:seed=<n>] | marking-item[:seed=<n>] | marking-blockmark[:seed=<n>] |
//   athreshold:a=<n> |
//   belady-item | belady-block | belady-greedy-gc
//
// For IBLP specs, `i`/`b` may be omitted when a capacity is supplied to
// `make_policy`: the split defaults to i = b = capacity/2.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace gcaching {

/// Construct a policy from a spec string. `capacity` is the cache size the
/// policy will be attached to; size-dependent defaults (IBLP split) use it.
/// Throws ContractViolation on an unknown name or malformed spec.
std::unique_ptr<ReplacementPolicy> make_policy(const std::string& spec,
                                               std::size_t capacity);

/// All spec names accepted by make_policy (without parameters), for
/// enumeration in tests and `--help` text.
std::vector<std::string> known_policy_names();

/// Fast-path simulation of a policy spec: constructs the *concrete* policy
/// class the spec names and dispatches to the devirtualized
/// `simulate_fast<Policy>` engine (core/simulator.hpp) via a type switch
/// over the registry. SimStats are bit-identical to
/// `simulate(map, trace, *make_policy(spec, capacity), capacity)`; the
/// differential harness in tests/test_fast_sim.cpp enforces this for every
/// spec. `block_ids` must hold each access's block id (see
/// Trace::precompute_block_ids / compute_block_ids).
SimStats simulate_fast_spec(const std::string& spec, const BlockMap& map,
                            const Trace& trace,
                            std::span<const BlockId> block_ids,
                            std::size_t capacity);

/// Overload that uses the trace's cached block ids when present, resolving
/// them in a one-off pass otherwise.
SimStats simulate_fast_spec(const std::string& spec, const BlockMap& map,
                            const Trace& trace, std::size_t capacity);

/// Workload-flavored overload.
SimStats simulate_fast_spec(const std::string& spec, const Workload& workload,
                            std::size_t capacity);

}  // namespace gcaching
