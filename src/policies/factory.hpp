// Policy construction by name — the registry used by benches, examples and
// parameterized tests.
//
// Spec grammar:  <name>[:key=value[,key=value...]]
//   item-lru | item-fifo | item-lfu | item-clock | item-random |
//   item-slru[:p=<frac>] | item-arc |
//   footprint[:cold_block=<0|1>] |
//   block-lru | block-fifo |
//   iblp:i=<n>,b=<n> | iblp-excl:i=<n>,b=<n> | iblp-blockfirst:i=<n>,b=<n> |
//   gcm[:seed=<n>] | marking-item[:seed=<n>] | marking-blockmark[:seed=<n>] |
//   athreshold:a=<n> |
//   belady-item | belady-block | belady-greedy-gc
//
// For IBLP specs, `i`/`b` may be omitted when a capacity is supplied to
// `make_policy`: the split defaults to i = b = capacity/2.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"

namespace gcaching {

/// Construct a policy from a spec string. `capacity` is the cache size the
/// policy will be attached to; size-dependent defaults (IBLP split) use it.
/// Throws ContractViolation on an unknown name or malformed spec.
std::unique_ptr<ReplacementPolicy> make_policy(const std::string& spec,
                                               std::size_t capacity);

/// All spec names accepted by make_policy (without parameters), for
/// enumeration in tests and `--help` text.
std::vector<std::string> known_policy_names();

}  // namespace gcaching
