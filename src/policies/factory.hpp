// Policy construction by name — the registry used by benches, examples and
// parameterized tests.
//
// Spec grammar:  <name>[:key=value[,key=value...]]
//   item-lru | item-fifo | item-lfu | item-clock | item-random |
//   item-slru[:p=<frac>] | item-arc |
//   footprint[:cold_block=<0|1>] |
//   block-lru | block-fifo |
//   iblp:i=<n>,b=<n> | iblp-excl:i=<n>,b=<n> | iblp-blockfirst:i=<n>,b=<n> |
//   gcm[:seed=<n>] | marking-item[:seed=<n>] | marking-blockmark[:seed=<n>] |
//   athreshold:a=<n> |
//   belady-item | belady-block | belady-greedy-gc
//
// For IBLP specs, `i`/`b` may be omitted when a capacity is supplied to
// `make_policy`: the split defaults to i = b = capacity/2.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace gcaching {

/// Construct a policy from a spec string. `capacity` is the cache size the
/// policy will be attached to; size-dependent defaults (IBLP split) use it.
/// Throws ContractViolation on an unknown name or malformed spec.
std::unique_ptr<ReplacementPolicy> make_policy(const std::string& spec,
                                               std::size_t capacity);

/// All spec names accepted by make_policy (without parameters), for
/// enumeration in tests and `--help` text.
std::vector<std::string> known_policy_names();

/// Fast-path simulation of a policy spec: constructs the *concrete* policy
/// class the spec names and dispatches to the devirtualized
/// `simulate_fast<Policy>` engine (core/simulator.hpp) via a type switch
/// over the registry. SimStats are bit-identical to
/// `simulate(map, trace, *make_policy(spec, capacity), capacity)`; the
/// differential harness in tests/test_fast_sim.cpp enforces this for every
/// spec. `block_ids` must hold each access's block id (see
/// Trace::precompute_block_ids / compute_block_ids).
SimStats simulate_fast_spec(const std::string& spec, const BlockMap& map,
                            const Trace& trace,
                            std::span<const BlockId> block_ids,
                            std::size_t capacity);

/// Overload that uses the trace's cached block ids when present, resolving
/// them in a one-off pass otherwise.
SimStats simulate_fast_spec(const std::string& spec, const BlockMap& map,
                            const Trace& trace, std::size_t capacity);

/// Workload-flavored overload.
SimStats simulate_fast_spec(const std::string& spec, const Workload& workload,
                            std::size_t capacity);

/// Capacity-batched column simulation of a policy spec: all capacities of
/// one (workload, policy) row in a single trace pass via
/// `simulate_column<Policy>` (core/simulator.hpp). stats[i] is bit-identical
/// to `simulate_fast_spec(spec, map, trace, block_ids, capacities[i])`.
///
/// For stack policies (`kIsStackPolicy`: item-lru, block-lru) the column
/// additionally collapses into ONE stack-distance pass
/// (locality/stack_column.hpp) when eligible — block-lru needs a uniform
/// partition — falling back to the lane engine otherwise. In checking
/// builds the stack derivation is cross-checked cell by cell against the
/// lane engine. Pass `allow_stack = false` to force the lane engine (the
/// bench uses this to time the two modes separately).
std::vector<SimStats> simulate_column_spec(
    const std::string& spec, const BlockMap& map, const Trace& trace,
    std::span<const BlockId> block_ids, std::span<const std::size_t> capacities,
    bool allow_stack = true);

/// Estimated simulation cost of `accesses` requests under `spec`, in
/// arbitrary-but-comparable units (normalized seconds-ish). The sweep
/// scheduler orders rows longest-estimated-first with it; constants are
/// calibrated from BENCH_throughput.json's fast-engine throughputs, and an
/// unknown name gets a conservative middle-of-the-pack estimate.
double estimated_sim_cost(const std::string& spec, std::uint64_t accesses);

}  // namespace gcaching
