// Spec-string construction of gcached runtimes.
//
// `make_concurrent_cache` is the gcached analogue of the policy factory's
// `simulate_fast_spec` type switch: it instantiates `ShardedCache<Policy>`
// for the concrete class a spec names, so the per-shard transitions are the
// devirtualized fast_step the differential tests pin.
//
// The ported set and the escape hatch: a policy can shard iff its decisions
// are a function of (block map, its own shard's cache, its own shard's
// access stream) — then per-shard instances are just S independent copies of
// the policy running on S disjoint sub-caches. That holds for the recency /
// insertion-order families ported here. It does NOT hold for
//   * offline policies (belady-*): prepare() consumes the whole future
//     trace, which no live runtime has;
//   * capacity-coupled policies (iblp*, athreshold): their layer splits and
//     thresholds are derived from the TOTAL capacity, and quantizing them
//     per shard silently changes the policy being measured;
//   * policies whose published numbers depend on a single global structure
//     (item-arc's ghost lists, footprint's global frequency state): sharding
//     them is a research question, not an adapter.
// Such specs throw ContractViolation naming this list; the supported set is
// enumerated by `supported_concurrent_specs()` so tests and tools never
// hard-code it. See docs/CONCURRENCY.md ("Which policies shard").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/block_map.hpp"
#include "gcached/sharded_cache.hpp"

namespace gcaching::gcached {

/// Specs accepted by make_concurrent_cache, in factory-spec syntax.
std::vector<std::string> supported_concurrent_specs();

/// CLI-level validation of the gcached runtime knobs, shared by `gcsim
/// gcached` and its tests so the exact diagnostics are pinned. Returns ""
/// when the request is valid, else a message naming the offending flag
/// (`--shards`, `--threads`). Signed on purpose: the CLI parses signed so a
/// user's `-4` is rejected here instead of wrapping to 2^64-4.
std::string validate_gcached_request(long long shards, long long threads);

/// Construct a sharded runtime for `spec` over `map` with `cfg`. Throws
/// ContractViolation for specs that cannot shard (see file comment).
std::unique_ptr<ConcurrentCache> make_concurrent_cache(
    const std::string& spec, std::shared_ptr<const BlockMap> map,
    const GcachedConfig& cfg);

}  // namespace gcaching::gcached
