#include "gcached/gcached.hpp"

#include "policies/block_fifo.hpp"
#include "policies/block_lru.hpp"
#include "policies/item_clock.hpp"
#include "policies/item_fifo.hpp"
#include "policies/item_lru.hpp"
#include "policies/item_slru.hpp"
#include "util/contracts.hpp"

namespace gcaching::gcached {

namespace {

template <typename Policy>
std::unique_ptr<ConcurrentCache> make_sharded(
    std::shared_ptr<const BlockMap> map, const GcachedConfig& cfg,
    const std::string& name) {
  auto make = [] { return Policy(); };
  return std::make_unique<ShardedCache<Policy, decltype(make)>>(
      std::move(map), cfg, make, name);
}

}  // namespace

std::vector<std::string> supported_concurrent_specs() {
  return {"item-lru",   "item-fifo",  "item-clock",
          "item-slru",  "block-lru",  "block-fifo"};
}

std::string validate_gcached_request(long long shards, long long threads) {
  if (shards <= 0)
    return "--shards must be a positive integer (got " +
           std::to_string(shards) +
           "): each shard is an independently locked sub-cache, and the "
           "runtime needs at least one";
  if (threads <= 0)
    return "--threads must be a positive integer (got " +
           std::to_string(threads) +
           "): the load generator needs at least one client thread";
  return "";
}

std::unique_ptr<ConcurrentCache> make_concurrent_cache(
    const std::string& spec, std::shared_ptr<const BlockMap> map,
    const GcachedConfig& cfg) {
  if (spec == "item-lru") return make_sharded<ItemLru>(std::move(map), cfg, spec);
  if (spec == "item-fifo")
    return make_sharded<ItemFifo>(std::move(map), cfg, spec);
  if (spec == "item-clock")
    return make_sharded<ItemClock>(std::move(map), cfg, spec);
  if (spec == "item-slru")
    return make_sharded<ItemSlru>(std::move(map), cfg, spec);
  if (spec == "block-lru")
    return make_sharded<BlockLru>(std::move(map), cfg, spec);
  if (spec == "block-fifo")
    return make_sharded<BlockFifo>(std::move(map), cfg, spec);
  GC_REQUIRE(false,
             "policy spec '" + spec +
                 "' cannot run under gcached: only policies whose state is a "
                 "function of (map, own-shard cache, own-shard accesses) "
                 "shard — offline (belady-*), capacity-coupled (iblp*, "
                 "athreshold) and globally-stateful (item-arc, footprint) "
                 "policies are excluded; see docs/CONCURRENCY.md and "
                 "supported_concurrent_specs()");
  return nullptr;  // unreachable
}

}  // namespace gcaching::gcached
