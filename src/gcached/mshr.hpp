// Per-shard MSHR (Miss Status Holding Register) table.
//
// One fixed-size table per shard tracks the blocks whose backend fill is
// currently in flight — registered by the thread that took the miss before
// it releases the shard lock to sleep the fill (src/gcached/
// sharded_cache.hpp, async fill mode). A concurrent access that misses on
// an in-flight block *coalesces*: it parks on the entry's FillGate instead
// of issuing a second fill, and is charged a delayed hit whose queuing cost
// is the measured remaining fill time ("Lower Bounds for Caching with
// Delayed Hits", arXiv:2006.00376). The GC-caching twist: when the pending
// fill sideloads the waiter's item (Definition-1 subset-of-block loads),
// the delayed hit was bought by spatial locality alone and is classified as
// a *free* delayed hit by the commit-time hit taxonomy.
//
// Concurrency contract: every table mutation (find / claim / release)
// happens under the owning shard's exclusive lock — the table itself needs
// no synchronization. The only cross-thread member is each entry's
// FillGate (shard_lock.hpp), whose epoch protocol makes the unlocked
// park/wake hand-off race-free.
//
// Hot-path discipline: the table is sized once at construction and never
// grows — claim() returns nullptr when full (the caller falls back to an
// unqueued fill) rather than allocating, so no allocation or container
// growth ever happens while a shard guard is live (gclint lock-discipline).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "core/types.hpp"
#include "gcached/shard_lock.hpp"
#include "util/contracts.hpp"

namespace gcaching::gcached {

/// One in-flight fill. `block` is only meaningful while `active`.
struct Mshr {
  BlockId block = 0;
  bool active = false;
  /// Accesses that coalesced onto this fill (delayed hits in the making).
  std::uint64_t coalesced = 0;
  FillGate gate;
};

/// Fixed-size table of in-flight fills for ONE shard. All methods require
/// the shard's exclusive lock; see the header comment.
class MshrTable {
 public:
  explicit MshrTable(std::size_t entries)
      : entries_(entries), slots_(std::make_unique<Mshr[]>(entries)) {
    GC_REQUIRE(entries >= 1, "an MSHR table needs at least one entry");
  }

  MshrTable(const MshrTable&) = delete;
  MshrTable& operator=(const MshrTable&) = delete;

  GC_HOT_REGION_BEGIN(mshr_table)
  /// The active entry filling `block`, or nullptr. Linear scan: tables are
  /// a handful of entries (default 8), and the scan runs under the shard
  /// lock on the miss path only.
  Mshr* find(BlockId block) noexcept {
    for (std::size_t i = 0; i < entries_; ++i) {
      Mshr& e = slots_[i];
      if (e.active && e.block == block) return &e;
    }
    return nullptr;
  }

  /// Claims a free entry for `block`, or nullptr when every register is
  /// busy (the caller must fall back to an unqueued fill — never block
  /// waiting for a register while holding the shard).
  Mshr* claim(BlockId block) noexcept {
    for (std::size_t i = 0; i < entries_; ++i) {
      Mshr& e = slots_[i];
      if (!e.active) {
        e.active = true;
        e.block = block;
        e.coalesced = 0;
        ++inflight_;
        return &e;
      }
    }
    return nullptr;
  }

  /// Frees a claimed entry at fill commit. Does NOT advance the gate —
  /// the caller wakes waiters explicitly (under the same guard hold, so a
  /// recycled entry is never observable with a stale epoch).
  void release(Mshr* entry) noexcept {
    GC_HOT_REQUIRE(entry != nullptr && entry->active,
                   "released an MSHR entry that was not claimed");
    entry->active = false;
    GC_HOT_CHECK(inflight_ > 0, "MSHR inflight underflow");
    --inflight_;
  }

  std::size_t inflight() const noexcept { return inflight_; }
  std::size_t capacity() const noexcept { return entries_; }
  GC_HOT_REGION_END(mshr_table)

 private:
  std::size_t entries_;
  std::size_t inflight_ = 0;
  std::unique_ptr<Mshr[]> slots_;
};

}  // namespace gcaching::gcached
