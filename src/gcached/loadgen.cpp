#include "gcached/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <vector>

#include "obs/obs.hpp"
#include "sim/thread_pool.hpp"
#include "util/contracts.hpp"

namespace gcaching::gcached {

namespace {

/// q-th quantile of `sorted` (ascending), nearest-rank on the scaled index.
double quantile_us(const std::vector<std::uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted_ns.size() - 1);
  const std::size_t idx = static_cast<std::size_t>(pos + 0.5);
  return static_cast<double>(sorted_ns[idx]) * 1e-3;
}

}  // namespace

LoadResult run_load(ConcurrentCache& cache, const Trace& trace,
                    std::span<const BlockId> block_ids, const LoadSpec& spec) {
  GC_REQUIRE(trace.size() > 0, "run_load needs a non-empty trace");
  GC_REQUIRE(block_ids.size() == trace.size(),
             "one precomputed block id per access is required");
  GC_REQUIRE(spec.threads >= 1, "run_load needs at least one client thread");

  const std::size_t n = trace.size();
  const std::size_t threads = spec.threads;
  const std::uint64_t total_ops =
      spec.total_ops == 0 ? static_cast<std::uint64_t>(n) : spec.total_ops;
  GC_REQUIRE(total_ops >= threads,
             "run_load needs at least one op per client thread");

  struct Client {
    ClientContext ctx;
    std::vector<std::uint64_t> latency_ns;  // one sample per op
    explicit Client(std::uint64_t seed) : ctx(seed) {}
  };
  std::vector<Client> clients;
  clients.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    clients.emplace_back(spec.seed + t);
    // Even split, remainder to the low thread ids — sums to total_ops.
    clients.back().latency_ns.reserve(total_ops / threads +
                                      (t < total_ops % threads ? 1 : 0));
  }

  const std::vector<ItemId>& accesses = trace.accesses();
  GC_OBS_SPAN(load_span, "gcached_load", "gcached");

  ThreadPool pool(threads);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    Client& client = clients[t];
    const std::uint64_t ops_t =
        total_ops / threads + (t < total_ops % threads ? 1 : 0);
    pool.submit([&cache, &client, &accesses, block_ids, n, threads, t,
                 ops_t] {
      ClientContext& ctx = client.ctx;
      std::vector<std::uint64_t>& lat = client.latency_ns;
      std::size_t i = t;  // strided partition start
      auto prev = std::chrono::steady_clock::now();
      for (std::uint64_t op = 0; op < ops_t; ++op) {
        cache.access(ctx, accesses[i], block_ids[i]);
        const auto now = std::chrono::steady_clock::now();
        lat.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(now - prev)
                .count()));
        prev = now;
        i += threads;
        if (i >= n) i = t;  // wrap: restart this thread's stride
      }
    });
  }
  pool.wait();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  LoadResult result;
  result.ops = total_ops;
  result.seconds = seconds;
  result.ops_per_sec =
      seconds > 0.0 ? static_cast<double>(total_ops) / seconds : 0.0;

  std::vector<std::uint64_t> merged;
  merged.reserve(total_ops);
  for (Client& client : clients) {
    merged.insert(merged.end(), client.latency_ns.begin(),
                  client.latency_ns.end());
    result.lock_acquisitions += client.ctx.lock_acquisitions;
    result.lock_contended += client.ctx.lock_contended;
    result.backoff_rounds += client.ctx.backoff_rounds;
  }
  GC_CHECK(merged.size() == total_ops,
           "load generator lost or duplicated operations");
  std::sort(merged.begin(), merged.end());
  result.p50_us = quantile_us(merged, 0.50);
  result.p99_us = quantile_us(merged, 0.99);
  result.p999_us = quantile_us(merged, 0.999);
  result.max_us = static_cast<double>(merged.back()) * 1e-3;

  result.stats = cache.collect_stats();

  // Aggregate contention telemetry, once per run (the gcobs counters the
  // issue asks for; per-op emission would contend on the registry).
  GC_OBS_COUNT("gcached.ops", result.ops);
  GC_OBS_COUNT("gcached.lock_acquisitions", result.lock_acquisitions);
  GC_OBS_COUNT("gcached.lock_contended", result.lock_contended);
  GC_OBS_COUNT("gcached.backoff_rounds", result.backoff_rounds);
  return result;
}

}  // namespace gcaching::gcached
