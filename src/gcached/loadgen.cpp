#include "gcached/loadgen.hpp"

#include <chrono>
#include <memory>
#include <vector>

#if defined(__linux__)
#include <sys/prctl.h>
#endif

#include "obs/obs.hpp"
#include "sim/thread_pool.hpp"
#include "util/contracts.hpp"

namespace gcaching::gcached {

namespace {

/// Every timed wait in a client thread — backend fills, backoff naps,
/// open-loop arrival sleeps — is tens of microseconds, but Linux pads
/// timer expirations by the thread's timer slack (default 50us), so a
/// 50us fill actually sleeps 100-200us and every measured latency and
/// throughput number inherits the padding. Tighten the slack to 1us on
/// each client thread; harmless no-op elsewhere.
void tighten_timer_slack() {
#if defined(__linux__)
  prctl(PR_SET_TIMERSLACK, 1000UL, 0, 0, 0);
#endif
}

}  // namespace

LoadResult run_load(ConcurrentCache& cache, const Trace& trace,
                    std::span<const BlockId> block_ids, const LoadSpec& spec) {
  GC_REQUIRE(trace.size() > 0, "run_load needs a non-empty trace");
  GC_REQUIRE(block_ids.size() == trace.size(),
             "one precomputed block id per access is required");
  GC_REQUIRE(spec.threads >= 1, "run_load needs at least one client thread");
  GC_REQUIRE(spec.arrival == Arrival::kClosed || spec.rate_ops_per_sec > 0.0,
             "poisson arrivals need a positive rate_ops_per_sec");

  const std::size_t n = trace.size();
  const std::size_t threads = spec.threads;
  const std::uint64_t total_ops =
      spec.total_ops == 0 ? static_cast<std::uint64_t>(n) : spec.total_ops;
  GC_REQUIRE(total_ops >= threads,
             "run_load needs at least one op per client thread");

  struct Client {
    ClientContext ctx;
    obs::HdrHistogram hist;  // wait-free per-thread latency table
    obs::PerfTotals perf;
    explicit Client(std::uint64_t seed) : ctx(seed) {}
  };
  // unique_ptr elements: HdrHistogram holds atomics, so Client is neither
  // copyable nor movable and cannot live in the vector directly.
  std::vector<std::unique_ptr<Client>> clients;
  clients.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t)
    clients.push_back(std::make_unique<Client>(spec.seed + t));

  if (spec.monitor != nullptr)
    for (const std::unique_ptr<Client>& c : clients)
      spec.monitor->add_histogram(&c->hist);

  const std::vector<ItemId>& accesses = trace.accesses();
  GC_OBS_SPAN(load_span, "gcached_load", "gcached");

  ThreadPool pool(threads);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < threads; ++t) {
    Client& client = *clients[t];
    const std::uint64_t ops_t =
        total_ops / threads + (t < total_ops % threads ? 1 : 0);
    const bool perf = spec.perf;
    const Arrival arrival = spec.arrival;
    // Each thread offers its proportional share of the aggregate rate so
    // remainder threads (one extra op) also get a proportionally longer
    // schedule and every thread's arrival process drains in the same
    // expected wall time.
    const double rate_t =
        spec.rate_ops_per_sec * static_cast<double>(ops_t) /
        static_cast<double>(total_ops);
    // Arrival schedule RNG: deterministic per (seed, thread), deliberately
    // decorrelated from the backoff-jitter stream in ClientContext (which
    // xors a different constant) so arrival times never entangle with
    // backoff draws.
    const SplitMix64 arrivals_rng(spec.seed * 0x9e3779b97f4a7c15ULL + t);
    pool.submit([&cache, &client, &accesses, block_ids, n, threads, t, ops_t,
                 perf, arrival, rate_t, arrivals_rng] {
      ClientContext& ctx = client.ctx;
      tighten_timer_slack();
      // Perf counters attach to the calling thread, so they must be opened
      // here on the worker, not where the task was submitted.
      std::unique_ptr<obs::PerfCounters> counters;
      if (perf) {
        counters = std::make_unique<obs::PerfCounters>();
        counters->start();
      }
      const auto access_one = [&cache, &ctx, &accesses,
                               block_ids](std::size_t i) {
        cache.access(ctx, accesses[i], block_ids[i]);
      };
      if (arrival == Arrival::kPoisson) {
        detail::replay_open_loop<std::chrono::steady_clock>(
            access_one, t, threads, n, ops_t, rate_t, arrivals_rng,
            client.hist);
      } else {
        detail::replay_closed_loop<std::chrono::steady_clock>(
            access_one, t, threads, n, ops_t, client.hist);
      }
      if (counters != nullptr) client.perf = counters->stop();
    });
  }
  pool.wait();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  LoadResult result;
  result.ops = total_ops;
  result.seconds = seconds;
  result.ops_per_sec =
      seconds > 0.0 ? static_cast<double>(total_ops) / seconds : 0.0;
  result.offered_ops_per_sec =
      spec.arrival == Arrival::kPoisson ? spec.rate_ops_per_sec : 0.0;

  obs::HdrHistogram merged;
  result.perf.valid = spec.perf;  // &&-folds with each thread's validity
  for (const std::unique_ptr<Client>& client : clients) {
    merged.merge_from(client->hist);
    result.lock_acquisitions += client->ctx.lock_acquisitions;
    result.lock_contended += client->ctx.lock_contended;
    result.backoff_rounds += client->ctx.backoff_rounds;
    result.backoff_ns += client->ctx.backoff_ns;
    if (spec.perf) result.perf += client->perf;
  }
  GC_CHECK(merged.count() == total_ops,
           "load generator lost or duplicated operations");
  result.p50_us = merged.quantile(0.50) * 1e-3;
  result.p99_us = merged.quantile(0.99) * 1e-3;
  result.p999_us = merged.quantile(0.999) * 1e-3;
  result.max_us = merged.max_value() * 1e-3;

  result.stats = cache.collect_stats();

  // Final synchronous harvest while the per-thread histograms are still
  // registered and the clients are quiesced: guarantees one snapshot with
  // complete latency + counters even for runs shorter than the monitor
  // interval, and gives "stopped after run_load" callers their totals.
  if (spec.monitor != nullptr) {
    spec.monitor->harvest_now();
    for (const std::unique_ptr<Client>& c : clients)
      spec.monitor->remove_histogram(&c->hist);
  }

  // Aggregate contention telemetry, once per run (the gcobs counters the
  // issue asks for; per-op emission would contend on the registry).
  GC_OBS_COUNT("gcached.ops", result.ops);
  GC_OBS_COUNT("gcached.lock_acquisitions", result.lock_acquisitions);
  GC_OBS_COUNT("gcached.lock_contended", result.lock_contended);
  GC_OBS_COUNT("gcached.backoff_rounds", result.backoff_rounds);
  GC_OBS_COUNT("gcached.backoff_ns", result.backoff_ns);
  return result;
}

}  // namespace gcaching::gcached
