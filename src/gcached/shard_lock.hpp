// The sanctioned per-shard lock of the gcached runtime.
//
// Every gcached shard is guarded by one `ShardLock` (a std::shared_mutex
// wrapper). This file is the ONLY place per-access code may touch a raw
// mutex: gclint's `hot-region-raw-lock` rule bans mutex/lock_guard tokens
// inside GC_HOT_REGION blocks everywhere else, so all per-access locking is
// forced through these helpers and automatically inherits
//
//   * try-lock first — the uncontended path is one atomic RMW, no syscall;
//   * randomized exponential backoff on contention — a few yields, then
//     jittered sleeps whose cap doubles per round (the jitter decorrelates
//     threads that collided once so they do not collide forever);
//   * contention telemetry — acquisitions / contended acquisitions / backoff
//     rounds are counted into the caller's ClientContext, cheap per-thread
//     plain counters that the load generator aggregates and emits through
//     GC_OBS_COUNT at collect time (never per operation).
//
// It is also the sanctioned *blocking* home: gclint's lock-discipline rule is
// unconditional ("no blocking while a shard guard is live — period", not
// suppressible with GCLINT-ALLOW), so every primitive that parks a thread —
// the simulated backend fill sleep (`backend_fill`) and the MSHR fill-gate
// wait/notify pair (`FillGate`) — lives here, callable only with no guard
// held. The gate's wait helper is likewise the only place the async fill
// path may read a clock (this file and gcmon are the clock homes): the
// delayed-hit queuing cost is measured inside `FillGate::await_past`, never
// in the access transition itself.
//
// See docs/CONCURRENCY.md for the full locking discipline.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace gcaching::gcached {

/// Backoff schedule for contended shard acquisitions. The defaults are tuned
/// for "short critical section, occasionally held across a simulated fill":
/// yields resolve sub-microsecond collisions without burning CPU (important
/// on oversubscribed hosts), and the sleep cap bounds the retry storm when a
/// fill holds the shard for tens of microseconds.
struct BackoffConfig {
  /// try_lock failures answered with std::this_thread::yield() before the
  /// schedule escalates to sleeping.
  std::uint32_t yield_rounds = 4;
  /// First sleep duration; must be a power of two (the jitter is drawn with
  /// a mask). Doubles every round after the yields.
  std::uint64_t base_sleep_ns = 256;
  /// Number of doublings before the sleep cap stops growing
  /// (256ns << 8 = 65us max with the defaults).
  std::uint32_t max_sleep_doublings = 8;
};

/// Per-client-thread state: the jitter RNG (SplitMix64, seeded per thread so
/// backoff stays deterministic given a seed and schedule-independent in
/// distribution) plus the contention counters this thread accumulated.
/// Never shared between threads — that is what makes the counters free.
struct ClientContext {
  explicit ClientContext(std::uint64_t seed = 0)
      : rng(seed ^ 0x9e3779b97f4a7c15ULL) {}

  SplitMix64 rng;
  std::uint64_t lock_acquisitions = 0;  ///< total lock/lock_shared calls
  std::uint64_t lock_contended = 0;     ///< calls whose first try_lock failed
  std::uint64_t backoff_rounds = 0;     ///< yields + sleeps across all calls
  std::uint64_t backoff_ns = 0;         ///< requested sleep ns across rounds
};

/// One shard's lock. Exclusive mode for the single writer of a shard
/// (access transitions), shared mode for read-only probes (residency
/// queries, stats snapshots of a quiesced runtime take exclusive anyway).
class ShardLock {
 public:
  ShardLock() = default;
  ShardLock(const ShardLock&) = delete;
  ShardLock& operator=(const ShardLock&) = delete;

  GC_HOT_REGION_BEGIN(shard_lock_acquire)
  void lock(ClientContext& ctx, const BackoffConfig& cfg) {
    ++ctx.lock_acquisitions;
    if (mu_.try_lock()) return;
    ++ctx.lock_contended;
    for (std::uint32_t round = 1;; ++round) {
      ++ctx.backoff_rounds;
      backoff(ctx, cfg, round);
      if (mu_.try_lock()) return;
    }
  }

  void lock_shared(ClientContext& ctx, const BackoffConfig& cfg) {
    ++ctx.lock_acquisitions;
    if (mu_.try_lock_shared()) return;
    ++ctx.lock_contended;
    for (std::uint32_t round = 1;; ++round) {
      ++ctx.backoff_rounds;
      backoff(ctx, cfg, round);
      if (mu_.try_lock_shared()) return;
    }
  }

  void unlock() { mu_.unlock(); }
  void unlock_shared() { mu_.unlock_shared(); }
  GC_HOT_REGION_END(shard_lock_acquire)

 private:
  GC_HOT_REGION_BEGIN(shard_lock_backoff)
  /// One backoff round: yield while round <= yield_rounds, then sleep a
  /// jittered duration in [base, base + cap) where cap doubles per sleeping
  /// round up to base << max_sleep_doublings. The mask draw is exact because
  /// base_sleep_ns is a power of two (checked at runtime construction by
  /// the runtime, cheaply re-checked here in contract builds).
  static void backoff(ClientContext& ctx, const BackoffConfig& cfg,
                      std::uint32_t round) {
    if (round <= cfg.yield_rounds) {
      std::this_thread::yield();
      return;
    }
    GC_HOT_REQUIRE((cfg.base_sleep_ns & (cfg.base_sleep_ns - 1)) == 0 &&
                       cfg.base_sleep_ns > 0,
                   "base_sleep_ns must be a power of two");
    const std::uint32_t doublings =
        round - cfg.yield_rounds < cfg.max_sleep_doublings
            ? round - cfg.yield_rounds
            : cfg.max_sleep_doublings;
    const std::uint64_t cap = cfg.base_sleep_ns << doublings;
    const std::uint64_t jitter = ctx.rng() & (cap - 1);
    // Requested (not measured) duration: reading a clock here would tax the
    // contention path it instruments — and trip gclint's
    // hot-region-raw-clock rule, which allowlists only this file and gcmon.
    ctx.backoff_ns += cfg.base_sleep_ns + jitter;
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(cfg.base_sleep_ns + jitter));
  }
  GC_HOT_REGION_END(shard_lock_backoff)

  std::shared_mutex mu_;
};

/// RAII exclusive acquisition — the only way gcached hot paths take a shard.
class ShardGuard {
 public:
  GC_HOT_REGION_BEGIN(shard_guard)
  ShardGuard(ShardLock& lock, ClientContext& ctx, const BackoffConfig& cfg)
      : lock_(lock) {
    lock_.lock(ctx, cfg);
  }
  ~ShardGuard() { lock_.unlock(); }
  GC_HOT_REGION_END(shard_guard)

  ShardGuard(const ShardGuard&) = delete;
  ShardGuard& operator=(const ShardGuard&) = delete;

 private:
  ShardLock& lock_;
};

/// The simulated backend fill, slept with NO shard guard held (the async
/// fill path's unlocked window; the sync compat path calls it as its whole
/// fill too). Centralized here because this file is the one blocking home
/// the lock-discipline rule recognises — a sleep token anywhere else in a
/// gcached hot path is a lint error, with no ALLOW escape.
GC_HOT_REGION_BEGIN(backend_fill)
inline void backend_fill(std::uint64_t fill_latency_ns) {
  if (fill_latency_ns == 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(fill_latency_ns));
}
GC_HOT_REGION_END(backend_fill)

/// One MSHR entry's completion gate: coalesced waiters park here while the
/// filling thread sleeps its backend fill, and the filler's commit releases
/// them all at once. Epoch-based so the hand-off is race-free without the
/// waiter ever holding two locks:
///
///   waiter (under shard guard):  seen = gate.epoch()        — entry in flight
///   waiter (guard RELEASED):     ns = gate.await_past(seen) — parks
///   filler (commit, under guard): gate.advance()            — epoch++, wake
///
/// If the commit lands between the waiter's epoch read and its await_past
/// call, the epoch has already moved past `seen` and await_past returns
/// immediately — the waiter can never sleep through a wake-up. Entry reuse
/// is safe for the same reason: reserve/advance both happen under the shard
/// guard, so a new waiter of a recycled entry always reads the post-advance
/// epoch.
///
/// await_past also *measures* the wait with a steady clock — the delayed
/// hit's queuing cost (remaining fill time at arrival). That read is legal
/// only because this file is a gclint clock home; the measurement belongs to
/// the blocking primitive, not to the cache transition that consumes it.
class FillGate {
 public:
  FillGate() = default;
  FillGate(const FillGate&) = delete;
  FillGate& operator=(const FillGate&) = delete;

  GC_HOT_REGION_BEGIN(fill_gate)
  /// Current completion epoch. Callable under the shard guard (relaxed
  /// atomic load; never blocks).
  std::uint64_t epoch() const noexcept {
    return epoch_.load(std::memory_order_relaxed);
  }

  /// Parks until the epoch moves past `seen`; returns the measured wait in
  /// nanoseconds. MUST be called with no shard guard held.
  std::uint64_t await_past(std::uint64_t seen) {
    const auto t0 = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      return epoch_.load(std::memory_order_relaxed) != seen;
    });
    lk.unlock();
    const auto t1 = std::chrono::steady_clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
  }

  /// Commit hand-off: bumps the epoch and releases every parked waiter.
  /// Called by the filling thread under the shard guard (the cv mutex is
  /// internal and held only for the store — waiters in cv_.wait have
  /// released it, so this never blocks meaningfully).
  void advance() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      epoch_.store(epoch_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
    }
    cv_.notify_all();
  }
  GC_HOT_REGION_END(fill_gate)

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<std::uint64_t> epoch_{0};
};

/// RAII shared acquisition, for read-only shard probes.
class SharedShardGuard {
 public:
  GC_HOT_REGION_BEGIN(shared_shard_guard)
  SharedShardGuard(ShardLock& lock, ClientContext& ctx,
                   const BackoffConfig& cfg)
      : lock_(lock) {
    lock_.lock_shared(ctx, cfg);
  }
  ~SharedShardGuard() { lock_.unlock_shared(); }
  GC_HOT_REGION_END(shared_shard_guard)

  SharedShardGuard(const SharedShardGuard&) = delete;
  SharedShardGuard& operator=(const SharedShardGuard&) = delete;

 private:
  ShardLock& lock_;
};

}  // namespace gcaching::gcached
