// The gcached concurrent runtime: CacheContents hash-partitioned into S
// shards by BLOCK id, each shard a fully independent single-owner cache.
//
// Why block-granular sharding: Definition 1 lets a miss load any subset of
// the missed item's block, and the block policies evict whole blocks. If two
// items of one block could land on different shards, a single miss
// transaction would have to take two locks and the model invariant "a block
// is resident in one place" would span shards. Hashing the BLOCK id instead
// makes every subset-of-block load, sideload, and whole-block eviction
// shard-local by construction — the paper's granularity-change machinery
// never crosses a shard boundary.
//
// Per-shard state transitions are *externalized*: a shard bundles
// {ShardLock, CacheContents, Policy, partial SimStats, access count} and the
// only mutation is `detail::fast_step` — the exact per-access transition of
// `simulate_fast` (core/simulator.hpp) — applied under the shard's exclusive
// lock. The existing policies therefore run unmodified, still assuming
// exclusive ownership of their metadata; the adapter's job is to make the
// ownership region explicit (one shard, one lock) instead of implicit (one
// simulation, one thread). This is also what anchors correctness: with one
// shard and one client thread the transition sequence is literally
// simulate_fast's, so SimStats are bit-identical (tests/test_gcached.cpp).
//
// With S > 1 each shard owns capacity/S (±1) items, so the aggregate is a
// partitioned cache, not a shared one: stats differ from a monolithic run
// by capacity quantization, exactly like a set-associative cache differs
// from a fully-associative one. See docs/CONCURRENCY.md.
//
// Misses may be charged a simulated backend fill latency
// (`GcachedConfig::fill_latency_ns`). Two fill modes:
//
//   * `FillMode::kAsync` (default) — the MSHR path. The missing thread
//     registers an in-flight entry for the block in its shard's MshrTable
//     (gcached/mshr.hpp), RELEASES the shard lock, sleeps the fill
//     unlocked (shard_lock.hpp's `backend_fill`), then re-acquires to
//     commit the load/sideloads and wake coalesced waiters. A concurrent
//     access that misses on an in-flight block parks on the entry's
//     FillGate instead of issuing a second fill and is charged a *delayed
//     hit* (queuing cost = measured remaining fill time); when the fill
//     sideloaded the waiter's item, the commit-time hit taxonomy classifies
//     it a *free* delayed hit. Fills to distinct blocks of ONE shard now
//     overlap (up to `mshr_entries` of them), so fill-bound cells scale
//     with offered concurrency, not just with the shard count.
//
//   * `FillMode::kSync` — the compat/differential mode: the fill is slept
//     while HOLDING the shard, the shard's single writer blocked on the
//     backend, clients of that shard backing off in ShardLock. This is the
//     regime where sharding alone buys fill overlap; kept as the baseline
//     the async gate in CI compares against.
//
// docs/CONCURRENCY.md ("Asynchronous fills and the MSHR table") documents
// the lock hand-off protocol and the delayed-hit accounting.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/block_map.hpp"
#include "core/cache_contents.hpp"
#include "core/simulator.hpp"
#include "core/stats.hpp"
#include "core/types.hpp"
#include "gcached/mshr.hpp"
#include "gcached/shard_lock.hpp"
#include "locality/sample.hpp"
#include "obs/shard_metrics.hpp"
#include "util/contracts.hpp"

namespace gcaching::gcached {

/// Seed of the shard hash. Distinct from any sampling seed a user would
/// plausibly pass (SHARDS sampling defaults to seed 1), so the sampled
/// block subset stays independent of the shard assignment.
inline constexpr std::uint64_t kShardHashSeed = 0x5ca1ab1eULL;

GC_HOT_REGION_BEGIN(gcached_shard_of_block)
/// Shard of a block: SplitMix64-finalizer hash (locality::sample_hash, the
/// same avalanching mix the sampler trusts) Lemire-reduced to [0, S). Works
/// for any S including non-powers of two; golden values are pinned by
/// tests/test_gcached.cpp so the assignment can never silently change.
inline std::size_t shard_of_block(BlockId block,
                                  std::size_t num_shards) noexcept {
  if (num_shards <= 1) return 0;
  const std::uint64_t h = locality::sample_hash(block, kShardHashSeed);
  return static_cast<std::size_t>(
      (static_cast<unsigned __int128>(h) *
       static_cast<unsigned __int128>(num_shards)) >>
      64);
}
GC_HOT_REGION_END(gcached_shard_of_block)

/// Convenience for tests/tools: the shard serving `item`'s block.
inline std::size_t shard_of_item(const BlockMap& map, ItemId item,
                                 std::size_t num_shards) {
  return shard_of_block(map.block_of(item), num_shards);
}

/// Capacity share of shard `s` when `capacity` items are split across
/// `num_shards` shards: capacity/S plus one of the remainder items for the
/// first capacity%S shards, so the shares sum to exactly `capacity`.
inline std::size_t shard_capacity_share(std::size_t capacity,
                                        std::size_t num_shards,
                                        std::size_t s) {
  GC_REQUIRE(s < num_shards, "shard index out of range");
  return capacity / num_shards + (s < capacity % num_shards ? 1 : 0);
}

/// How a miss's simulated backend fill is slept (see file comment).
enum class FillMode {
  kSync,   ///< fill slept holding the shard (compat/differential baseline)
  kAsync,  ///< MSHR path: lock released across the fill, misses coalesce
};

struct GcachedConfig {
  std::size_t num_shards = 1;
  std::size_t capacity = 0;
  /// Simulated backend fill charged on every miss. 0 = pure in-memory
  /// transitions (the differential-test configuration; both fill modes
  /// then run the identical lock-held transition sequence).
  std::uint64_t fill_latency_ns = 0;
  FillMode fill_mode = FillMode::kAsync;
  /// Per-shard MSHR entries: max concurrently in-flight block fills per
  /// shard in async mode. A miss arriving with every register busy falls
  /// back to an unqueued (non-coalescible) fill rather than waiting for a
  /// register.
  std::size_t mshr_entries = 8;
  BackoffConfig backoff;
};

/// Type-erased runtime handle (the template below is the only
/// implementation). One virtual call per operation — noise next to the lock
/// acquire — in exchange for spec-string construction in tools and benches.
class ConcurrentCache {
 public:
  virtual ~ConcurrentCache() = default;

  ConcurrentCache() = default;
  ConcurrentCache(const ConcurrentCache&) = delete;
  ConcurrentCache& operator=(const ConcurrentCache&) = delete;

  /// One client operation: hit/miss classification, policy transition, and
  /// stat updates for `item`, under its shard's exclusive lock. `block`
  /// must be `item`'s block id (precomputed, as in the fast engines).
  virtual void access(ClientContext& ctx, ItemId item, BlockId block) = 0;

  /// Read-only residency probe under the shard's shared lock.
  virtual bool contains(ClientContext& ctx, ItemId item, BlockId block) = 0;

  /// Aggregate SimStats across shards. Takes every shard lock; the result
  /// is exact when the runtime is quiesced (no in-flight clients) and a
  /// consistent-per-shard snapshot otherwise.
  virtual SimStats collect_stats() = 0;

  virtual std::size_t num_shards() const = 0;
  virtual std::size_t capacity() const = 0;
  /// Shard `s`'s capacity share (see shard_capacity_share).
  virtual std::size_t shard_capacity(std::size_t s) const = 0;
  /// Shard `s`'s current occupancy (takes the shard lock).
  virtual std::size_t shard_occupancy(std::size_t s) = 0;
  virtual std::string policy_name() const = 0;

  /// Attach (or detach with nullptr) a gcmon per-shard counter table sized
  /// to num_shards(). The access path publishes hit/miss/sideload/lock
  /// deltas into it via GC_MON_* macros — relaxed atomics only, compiled to
  /// nothing under GCACHING_OBS=OFF, so attach is a no-op in fast builds.
  /// The atlas must outlive all traffic issued while it is attached.
  virtual void attach_atlas(obs::ShardAtlas* atlas) = 0;
};

/// The ConcurrentPolicy adapter: `Policy` is any concrete policy class
/// usable with `detail::fast_step` whose state is derivable from (map,
/// per-shard cache) alone — no offline prepare(), no cross-shard reads.
/// Policies outside that envelope cannot shard; `make_concurrent_cache`
/// (gcached.hpp) documents the escape hatch.
template <typename Policy, typename MakePolicy>
class ShardedCache final : public ConcurrentCache {
 public:
  /// `make_policy()` returns a fresh Policy by value (guaranteed elision),
  /// called once per shard — mirroring simulate_column's per-lane factory.
  ShardedCache(std::shared_ptr<const BlockMap> map, const GcachedConfig& cfg,
               MakePolicy make_policy, std::string policy_name)
      : map_(std::move(map)), cfg_(cfg), name_(std::move(policy_name)) {
    GC_REQUIRE(map_ != nullptr, "gcached needs a block map");
    GC_REQUIRE(cfg_.num_shards >= 1, "gcached needs at least one shard");
    GC_REQUIRE(cfg_.capacity >= cfg_.num_shards,
               "gcached needs at least one item of capacity per shard");
    GC_REQUIRE((cfg_.backoff.base_sleep_ns &
                (cfg_.backoff.base_sleep_ns - 1)) == 0 &&
                   cfg_.backoff.base_sleep_ns > 0,
               "backoff base_sleep_ns must be a power of two");
    GC_REQUIRE(cfg_.mshr_entries >= 1,
               "gcached needs at least one MSHR entry per shard");
    shards_.reserve(cfg_.num_shards);
    for (std::size_t s = 0; s < cfg_.num_shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(
          *map_, shard_capacity_share(cfg_.capacity, cfg_.num_shards, s),
          cfg_.mshr_entries, make_policy));
      Shard& shard = *shards_.back();
      // The exact setup sequence of simulate_fast, minus prepare() (online
      // policies only — enforced by the factory's escape hatch).
      shard.policy.attach(*map_, shard.cache);
      shard.cache.set_load_time_tracking(false);
    }
  }

  GC_HOT_REGION_BEGIN(gcached_access)
  void access(ClientContext& ctx, ItemId item, BlockId block) override {
    const std::size_t si = shard_of_block(block, shards_.size());
    Shard& shard = *shards_[si];
    // fill_latency == 0 always takes the sync path: the transitions are
    // lock-held and identical in both modes, so the async machinery would
    // only add probes — and the differential anchor gets one code path.
    if (cfg_.fill_mode == FillMode::kAsync && cfg_.fill_latency_ns != 0) {
      access_async(ctx, shard, si, item, block);
    } else {
      access_sync(ctx, shard, si, item, block);
    }
  }

  bool contains(ClientContext& ctx, ItemId item, BlockId block) override {
    Shard& shard = *shards_[shard_of_block(block, shards_.size())];
    SharedShardGuard guard(shard.lock, ctx, cfg_.backoff);
    return shard.cache.contains(item);
  }
  GC_HOT_REGION_END(gcached_access)

  SimStats collect_stats() override {
    // Cold path: plain lock() via a throwaway context per shard; the
    // derivable counters are filled from a COPY of the partial stats, the
    // same trick as detail::fast_live_snapshot.
    SimStats total;
    for (const std::unique_ptr<Shard>& shard : shards_) {
      ClientContext ctx;
      ShardGuard guard(shard->lock, ctx, cfg_.backoff);
      SimStats snapshot = shard->partial;
      detail::fast_finalize<Policy>(shard->cache, snapshot, shard->accesses);
      total += snapshot;
    }
    return total;
  }

  std::size_t num_shards() const override { return shards_.size(); }
  std::size_t capacity() const override { return cfg_.capacity; }

  std::size_t shard_capacity(std::size_t s) const override {
    GC_REQUIRE(s < shards_.size(), "shard index out of range");
    return shards_[s]->cache.capacity();
  }

  std::size_t shard_occupancy(std::size_t s) override {
    GC_REQUIRE(s < shards_.size(), "shard index out of range");
    ClientContext ctx;
    ShardGuard guard(shards_[s]->lock, ctx, cfg_.backoff);
    return shards_[s]->cache.occupancy();
  }

  std::string policy_name() const override { return name_; }

  void attach_atlas(obs::ShardAtlas* atlas) override {
    GC_REQUIRE(atlas == nullptr || atlas->size() == shards_.size(),
               "atlas size must equal the shard count");
    atlas_.store(atlas, std::memory_order_release);
  }

 private:
  // One cache line per shard header keeps neighbouring shards' locks from
  // false-sharing under cross-shard traffic.
  struct alignas(64) Shard {
    ShardLock lock;
    CacheContents cache;
    Policy policy;
    MshrTable mshr;         ///< in-flight fills; mutated under `lock` only
    SimStats partial;       ///< non-derivable counters only (fast_step)
    std::uint64_t accesses = 0;
    bool writer_active = false;  ///< checking builds only; guarded by `lock`

    Shard(const BlockMap& map, std::size_t capacity, std::size_t mshrs,
          MakePolicy& make)
        : cache(map, capacity), policy(make()), mshr(mshrs) {}
  };

  /// Single-writer-per-shard invariant, RAII form for the multi-hold async
  /// path: the exclusive lock makes the flag race-free, so a firing check
  /// means a lock-discipline bug (an access path that skipped ShardGuard),
  /// not a data race. Compiles to nothing under GC_FAST_SIM.
  struct WriterScope {
    Shard& shard;
    GC_HOT_REGION_BEGIN(gcached_writer_scope)
    explicit WriterScope(Shard& s) : shard(s) {
      GC_HOT_CHECK(!shard.writer_active,
                   "single-writer-per-shard invariant violated");
      if constexpr (kHotChecksEnabled) shard.writer_active = true;
    }
    ~WriterScope() {
      if constexpr (kHotChecksEnabled) shard.writer_active = false;
    }
    GC_HOT_REGION_END(gcached_writer_scope)
    WriterScope(const WriterScope&) = delete;
    WriterScope& operator=(const WriterScope&) = delete;
  };

  GC_HOT_REGION_BEGIN(gcached_access_sync)
  /// The legacy lock-held transition: classify + transition + (for sync
  /// mode) sleep the fill while still holding the shard. Also the shared
  /// zero-latency path of both modes.
  void access_sync(ClientContext& ctx, Shard& shard,
                   [[maybe_unused]] std::size_t si, ItemId item,
                   BlockId block) {
    // Monitoring publishes are deltas of state we already maintain (partial
    // SimStats, ClientContext counters) pushed into per-shard relaxed
    // atomics — one predictable branch when no atlas is attached, zero code
    // under GCACHING_OBS=OFF (GC_MON_ATTACHED is then compile-time false).
    GC_MON_ATLAS(mon, atlas_.load(std::memory_order_acquire));
    [[maybe_unused]] std::uint64_t mon_acq = 0, mon_try = 0, mon_boff = 0;
    if (GC_MON_ATTACHED(mon)) {
      mon_acq = ctx.lock_acquisitions;
      mon_try = ctx.backoff_rounds;  // == failed try_locks, see shard_lock
      mon_boff = ctx.backoff_ns;
    }
    ShardGuard guard(shard.lock, ctx, cfg_.backoff);
    WriterScope writer(shard);
    // fast_step maintains only the non-derivable counters (misses, spatial
    // hits); hits are 1 - miss per access, and sideloads accumulate in
    // CacheContents — delta those sources directly.
    [[maybe_unused]] const std::uint64_t sideloads_before =
        shard.cache.sideloads();
    const std::uint64_t misses_before = shard.partial.misses;
    detail::fast_step(shard.cache, shard.policy, shard.partial, item, block);
    ++shard.accesses;
    if (GC_MON_ATTACHED(mon)) {
      [[maybe_unused]] const std::uint64_t miss_delta =
          shard.partial.misses - misses_before;
      GC_MON_SHARD_ADD(mon, si, hits, 1 - miss_delta);
      GC_MON_SHARD_ADD(mon, si, misses, miss_delta);
      GC_MON_SHARD_ADD(mon, si, sideloads,
                       shard.cache.sideloads() - sideloads_before);
      GC_MON_SHARD_ADD(mon, si, lock_acquisitions,
                       ctx.lock_acquisitions - mon_acq);
      GC_MON_SHARD_ADD(mon, si, trylock_failures,
                       ctx.backoff_rounds - mon_try);
      GC_MON_SHARD_ADD(mon, si, backoff_ns, ctx.backoff_ns - mon_boff);
      GC_MON_SHARD_SET(mon, si, residency, shard.cache.occupancy());
    }
    if (cfg_.fill_latency_ns != 0 && shard.partial.misses != misses_before) {
      // Synchronous fill: the shard stays held (its writer is blocked on
      // the backend), threads on other shards keep going. Slept inside the
      // guard on purpose — this compat mode IS the serialization baseline
      // the async gate in CI compares against. The sleep itself lives in
      // shard_lock.hpp (`backend_fill`), the one blocking home the
      // unconditional lock-discipline rule recognises.
      backend_fill(cfg_.fill_latency_ns);
    }
  }
  GC_HOT_REGION_END(gcached_access_sync)

  GC_HOT_REGION_BEGIN(gcached_access_async)
  /// The MSHR fill path: no thread ever sleeps while holding the shard.
  /// Per iteration, one exclusive hold classifies the access; a miss either
  /// registers an in-flight fill (then sleeps UNLOCKED and re-acquires to
  /// commit) or coalesces onto an existing one (then parks on its FillGate
  /// and re-classifies after the wake). docs/CONCURRENCY.md documents the
  /// protocol; tests/test_gcached.cpp pins coalescing, conservation, and
  /// the free-delayed-hit taxonomy.
  void access_async(ClientContext& ctx, Shard& shard,
                    [[maybe_unused]] std::size_t si, ItemId item,
                    BlockId block) {
    GC_MON_ATLAS(mon, atlas_.load(std::memory_order_acquire));
    std::uint64_t waited_ns = 0;
    for (;;) {
      FillGate* wait_gate = nullptr;
      std::uint64_t wait_epoch = 0;
      Mshr* fill_entry = nullptr;
      bool unqueued_fill = false;
      {
        [[maybe_unused]] std::uint64_t mon_acq = 0, mon_try = 0, mon_boff = 0;
        if (GC_MON_ATTACHED(mon)) {
          mon_acq = ctx.lock_acquisitions;
          mon_try = ctx.backoff_rounds;
          mon_boff = ctx.backoff_ns;
        }
        ShardGuard guard(shard.lock, ctx, cfg_.backoff);
        WriterScope writer(shard);
        if (GC_MON_ATTACHED(mon)) {
          GC_MON_SHARD_ADD(mon, si, lock_acquisitions,
                           ctx.lock_acquisitions - mon_acq);
          GC_MON_SHARD_ADD(mon, si, trylock_failures,
                           ctx.backoff_rounds - mon_try);
          GC_MON_SHARD_ADD(mon, si, backoff_ns, ctx.backoff_ns - mon_boff);
        }
        if (shard.cache.contains(item)) {
          if (waited_ns == 0) {
            // Plain hit: the exact fast_step hit arm (its own contains
            // probe re-confirms under the same hold).
            detail::fast_step(shard.cache, shard.policy, shard.partial, item,
                              block);
            ++shard.accesses;
            if (GC_MON_ATTACHED(mon)) {
              GC_MON_SHARD_ADD(mon, si, hits, 1);
              GC_MON_SHARD_SET(mon, si, residency, shard.cache.occupancy());
            }
            return;
          }
          // Resident after a wait: a DELAYED hit — the access was served by
          // a fill already in flight when it arrived. Not a hit (the item
          // was absent at access time), not a miss (no fill was issued).
          // The hit taxonomy doubles as the free-delayed-hit classifier:
          // kSpatial means the waiter's item was only ever *sideloaded* by
          // the pending fill — spatial locality paid for the wait.
          commit_delayed_hit(shard, item, waited_ns);
          ++shard.accesses;
          if (GC_MON_ATTACHED(mon)) {
            GC_MON_SHARD_ADD(mon, si, delayed_hits, 1);
            GC_MON_SHARD_SET(mon, si, residency, shard.cache.occupancy());
          }
          return;
        }
        // Miss. Coalesce onto an in-flight fill of this block if there is
        // one; otherwise claim an MSHR register; when every register is
        // busy, fall back to an unqueued fill (never wait for a register
        // while holding the shard).
        if (Mshr* inflight = shard.mshr.find(block)) {
          ++inflight->coalesced;
          wait_gate = &inflight->gate;
          wait_epoch = wait_gate->epoch();
          if (GC_MON_ATTACHED(mon)) {
            GC_MON_SHARD_ADD(mon, si, coalesced, 1);
          }
        } else if ((fill_entry = shard.mshr.claim(block)) != nullptr) {
          if (GC_MON_ATTACHED(mon)) {
            GC_MON_SHARD_SET(mon, si, mshr_inflight, shard.mshr.inflight());
          }
        } else {
          unqueued_fill = true;
        }
      }  // shard released — nothing below blocks while holding it.
      if (wait_gate != nullptr) {
        // If the commit already happened, the epoch has moved and this
        // returns immediately (see FillGate). Re-classify after the wake:
        // the usual outcome is the delayed-hit branch above, but the item
        // may not have been sideloaded (item policies never sideload) or
        // may already be evicted again — then the loop simply retries as a
        // fresh access, fill included.
        waited_ns += wait_gate->await_past(wait_epoch);
        continue;
      }
      // This thread owns the fill: sleep it with no lock held, then
      // re-acquire to commit. Other threads hit/miss/fill this shard's
      // OTHER blocks during the sleep — that overlap is the whole point.
      backend_fill(cfg_.fill_latency_ns);
      commit_fill(ctx, shard, si, item, block, fill_entry, unqueued_fill);
      return;
    }
  }

  /// Commit of a fill this thread slept. Re-acquires the shard; the
  /// residency RE-CHECK is load-bearing: an unqueued (MSHR-overflow) fill
  /// of the same block may have committed our item during the unlocked
  /// window, and `begin_miss` on a resident item is a contract violation —
  /// the access then lands as a delayed hit that waited the full fill.
  void commit_fill(ClientContext& ctx, Shard& shard,
                   [[maybe_unused]] std::size_t si, ItemId item, BlockId block,
                   Mshr* fill_entry, [[maybe_unused]] bool unqueued_fill) {
    GC_MON_ATLAS(mon, atlas_.load(std::memory_order_acquire));
    [[maybe_unused]] std::uint64_t mon_acq = 0, mon_try = 0, mon_boff = 0;
    if (GC_MON_ATTACHED(mon)) {
      mon_acq = ctx.lock_acquisitions;
      mon_try = ctx.backoff_rounds;
      mon_boff = ctx.backoff_ns;
    }
    ShardGuard guard(shard.lock, ctx, cfg_.backoff);
    WriterScope writer(shard);
    [[maybe_unused]] const std::uint64_t sideloads_before =
        shard.cache.sideloads();
    if (!shard.cache.contains(item)) {
      // fast_step re-probes residency under this same hold and takes its
      // miss arm: begin_miss/on_miss/end_miss, the exact sequential
      // transition, now merely time-shifted to the fill's completion.
      detail::fast_step(shard.cache, shard.policy, shard.partial, item,
                        block);
      if (GC_MON_ATTACHED(mon)) {
        GC_MON_SHARD_ADD(mon, si, misses, 1);
      }
    } else {
      commit_delayed_hit(shard, item, cfg_.fill_latency_ns);
      if (GC_MON_ATTACHED(mon)) {
        GC_MON_SHARD_ADD(mon, si, delayed_hits, 1);
      }
    }
    ++shard.accesses;
    if (fill_entry != nullptr) {
      // Release the register and wake every coalesced waiter. Both happen
      // under this same hold, so a recycled entry can never be observed
      // with a stale epoch (see FillGate's protocol comment).
      FillGate& gate = fill_entry->gate;
      shard.mshr.release(fill_entry);
      gate.advance();
    }
    if (GC_MON_ATTACHED(mon)) {
      GC_MON_SHARD_ADD(mon, si, sideloads,
                       shard.cache.sideloads() - sideloads_before);
      GC_MON_SHARD_ADD(mon, si, lock_acquisitions,
                       ctx.lock_acquisitions - mon_acq);
      GC_MON_SHARD_ADD(mon, si, trylock_failures,
                       ctx.backoff_rounds - mon_try);
      GC_MON_SHARD_ADD(mon, si, backoff_ns, ctx.backoff_ns - mon_boff);
      GC_MON_SHARD_SET(mon, si, mshr_inflight, shard.mshr.inflight());
      GC_MON_SHARD_SET(mon, si, residency, shard.cache.occupancy());
    }
  }

  /// The delayed-hit transition, shared by the waiter-wake and double-fill
  /// paths. Must run under the shard's exclusive lock. Mirrors fast_step's
  /// hit arm for the cache/policy transition, but charges the dedicated
  /// delayed-hit counters instead of the hit taxonomy: delayed hits are
  /// excluded from hits (and thus from temporal/spatial) by
  /// `fast_finalize`'s `hits = accesses - misses - delayed_hits`.
  void commit_delayed_hit(Shard& shard, ItemId item, std::uint64_t wait_ns) {
    HitKind kind = HitKind::kTemporal;
    if constexpr (detail::kRequestedOnly<Policy>) {
      // Requested-loads-only policies never sideload, so a resident waiter
      // item was the fill's own requested load — never a free delayed hit.
      shard.cache.record_requested_hit(item);
    } else {
      kind = shard.cache.record_hit(item);
    }
    shard.policy.on_hit(item);
    ++shard.partial.delayed_hits;
    if (kind == HitKind::kSpatial) ++shard.partial.free_delayed_hits;
    shard.partial.delayed_hit_wait_ns += wait_ns;
  }
  GC_HOT_REGION_END(gcached_access_async)

  std::shared_ptr<const BlockMap> map_;
  GcachedConfig cfg_;
  std::string name_;
  /// Attached gcmon counter table, or nullptr (idle: one acquire load per
  /// access in obs builds; the load itself compiles out under OBS=OFF).
  std::atomic<obs::ShardAtlas*> atlas_{nullptr};
  // Policies are neither copyable nor movable, so shards live behind
  // unique_ptr (the simulate_column Lane pattern).
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gcaching::gcached
