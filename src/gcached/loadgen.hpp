// Closed-loop load generator for the gcached runtime.
//
// N client threads (sim/thread_pool.hpp workers) replay disjoint partitions
// of one trace against a shared ConcurrentCache, each issuing its next
// request the moment the previous one completes — closed-loop, so measured
// latency feeds back into offered load exactly like a blocking cache client.
// The partition is strided (thread t replays accesses t, t+N, t+2N, ...),
// which keeps every thread's sub-trace statistically identical to the whole
// and, at N = 1, degenerates to the original access order — that is the
// configuration the differential test pins against simulate_fast.
//
// Per-operation latency is recorded with chained steady_clock reads (one
// clock read per op) into preallocated per-thread arrays; percentiles are
// taken over the merged sample after the run. Lock-contention telemetry
// accumulates in each thread's ClientContext and is aggregated — and
// emitted via GC_OBS_COUNT — once per run, never per operation.
//
// With more than one thread the interleaving (hence SimStats) is
// schedule-dependent; the conservation invariants (accesses == ops,
// hits + misses == accesses) hold on every schedule and are what the
// concurrent tests assert.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/stats.hpp"
#include "core/trace.hpp"
#include "gcached/sharded_cache.hpp"

namespace gcaching::gcached {

struct LoadSpec {
  std::size_t threads = 1;
  /// Total operations across all threads; 0 = exactly one pass over the
  /// trace. More than one trace length wraps around (per-thread strides
  /// restart at their offset).
  std::uint64_t total_ops = 0;
  /// Base seed for the per-thread backoff-jitter RNGs.
  std::uint64_t seed = 1;
};

struct LoadResult {
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
  /// Operation-latency percentiles over every op of every thread, in
  /// microseconds (p50 <= p99 <= p999 <= max by construction).
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  /// Aggregate cache statistics (collect_stats after quiescing).
  SimStats stats;
  /// Summed ClientContext contention counters.
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_contended = 0;
  std::uint64_t backoff_rounds = 0;
};

/// Run `spec.threads` closed-loop clients over `trace` against `cache`.
/// `block_ids` must hold each access's block id (resolve_block_ids /
/// Trace::precompute_block_ids). Blocks until every client finished.
LoadResult run_load(ConcurrentCache& cache, const Trace& trace,
                    std::span<const BlockId> block_ids, const LoadSpec& spec);

}  // namespace gcaching::gcached
