// Closed-loop load generator for the gcached runtime.
//
// N client threads (sim/thread_pool.hpp workers) replay disjoint partitions
// of one trace against a shared ConcurrentCache, each issuing its next
// request the moment the previous one completes — closed-loop, so measured
// latency feeds back into offered load exactly like a blocking cache client.
// The partition is strided (thread t replays accesses t, t+N, t+2N, ...),
// which keeps every thread's sub-trace statistically identical to the whole
// and, at N = 1, degenerates to the original access order — that is the
// configuration the differential test pins against simulate_fast.
//
// Per-operation latency is recorded into per-thread gcmon HDR histograms
// (obs/hdr_histogram.hpp): wait-free record, fixed ~34 KB per thread
// regardless of op count, live-readable by an attached obs::Monitor, and
// percentiles within a documented <=1% relative error of the exact
// nearest-rank sample (bit-exact below ~256 ns). Measurement is BRACKETED —
// two steady_clock reads per op, so the recorded latency covers exactly the
// access() call: histogram recording, loop control, and any scheduling
// overhang between ops are excluded. (The previous chained single-read
// scheme attributed all inter-op time — including the tail of bookkeeping
// after a fill — to the following op; tests/test_gcmon.cpp pins the new
// semantics with a deterministic fake clock via detail::replay_closed_loop.)
//
// Lock-contention telemetry accumulates in each thread's ClientContext and
// is aggregated — and emitted via GC_OBS_COUNT — once per run, never per
// operation.
//
// With more than one thread the interleaving (hence SimStats) is
// schedule-dependent; the conservation invariants (accesses == ops,
// hits + misses == accesses) hold on every schedule and are what the
// concurrent tests assert.
#pragma once

#include <chrono>
#include <cstdint>
#include <span>
#include <string>

#include "core/stats.hpp"
#include "core/trace.hpp"
#include "gcached/sharded_cache.hpp"
#include "obs/gcmon.hpp"
#include "obs/hdr_histogram.hpp"
#include "obs/perf_counters.hpp"

namespace gcaching::gcached {

struct LoadSpec {
  std::size_t threads = 1;
  /// Total operations across all threads; 0 = exactly one pass over the
  /// trace. More than one trace length wraps around (per-thread strides
  /// restart at their offset).
  std::uint64_t total_ops = 0;
  /// Base seed for the per-thread backoff-jitter RNGs.
  std::uint64_t seed = 1;
  /// Optional live monitor. When set, run_load registers each thread's
  /// latency histogram with it for the duration of the run and takes one
  /// synchronous harvest after the clients quiesce (so even a sub-interval
  /// run exports a final snapshot with complete latency and counters).
  /// The caller owns the monitor and its atlas attachment to `cache`.
  obs::Monitor* monitor = nullptr;
  /// Capture per-thread hardware counters (perf_event_open) around each
  /// client's replay loop. Falls back loudly to perf_valid=false totals on
  /// hosts that refuse the syscall (obs/perf_counters.hpp).
  bool perf = false;
};

struct LoadResult {
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
  /// Operation-latency percentiles over every op of every thread, in
  /// microseconds (p50 <= p99 <= p999 <= max by construction), read from
  /// the merged HDR histogram (<=1% relative error, see obs/hdr_histogram).
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  /// Aggregate cache statistics (collect_stats after quiescing).
  SimStats stats;
  /// Summed ClientContext contention counters.
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_contended = 0;
  std::uint64_t backoff_rounds = 0;
  std::uint64_t backoff_ns = 0;
  /// Summed per-thread hardware counters; `perf.valid` is false unless
  /// LoadSpec::perf was set AND every thread's counters opened.
  obs::PerfTotals perf;
};

namespace detail {

/// One thread's closed-loop strided replay with bracketed latency
/// measurement: start/end Clock reads around each access, recorded into
/// `hist` in Clock ticks (nanoseconds for steady_clock). Templated on the
/// clock so tests drive a deterministic fake clock and pin exactly what the
/// recorded latency does — and does not — include.
template <typename Clock, typename AccessFn>
void replay_closed_loop(AccessFn&& access_one, std::size_t start,
                        std::size_t stride, std::size_t wrap,
                        std::uint64_t ops, obs::HdrHistogram& hist) {
  std::size_t i = start;
  for (std::uint64_t op = 0; op < ops; ++op) {
    const auto t0 = Clock::now();
    access_one(i);
    const auto t1 = Clock::now();
    hist.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    i += stride;
    if (i >= wrap) i = start;  // wrap: restart this thread's stride
  }
}

}  // namespace detail

/// Run `spec.threads` closed-loop clients over `trace` against `cache`.
/// `block_ids` must hold each access's block id (resolve_block_ids /
/// Trace::precompute_block_ids). Blocks until every client finished.
LoadResult run_load(ConcurrentCache& cache, const Trace& trace,
                    std::span<const BlockId> block_ids, const LoadSpec& spec);

}  // namespace gcaching::gcached
