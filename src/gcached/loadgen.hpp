// Load generator for the gcached runtime: closed-loop and open-loop modes.
//
// N client threads (sim/thread_pool.hpp workers) replay disjoint partitions
// of one trace against a shared ConcurrentCache. In the default CLOSED loop
// each thread issues its next request the moment the previous one completes,
// so measured latency feeds back into offered load exactly like a blocking
// cache client. The partition is strided (thread t replays accesses t, t+N,
// t+2N, ...), which keeps every thread's sub-trace statistically identical
// to the whole and, at N = 1, degenerates to the original access order —
// that is the configuration the differential test pins against
// simulate_fast.
//
// The OPEN loop (`LoadSpec::arrival = Arrival::kPoisson`) instead draws each
// thread's arrival times from a deterministic Poisson process (exponential
// inter-arrivals off the thread's own SplitMix64) targeting
// `rate_ops_per_sec` in aggregate, and issues every request at its
// scheduled instant whether or not the previous one has finished being
// slow. Closed-loop back-pressure throttles the offered load to whatever
// the cache sustains — which HIDES fill overlap, because a client parked on
// a fill offers nothing. Open loop keeps offering, so queueing (and MSHR
// coalescing under async fills) becomes visible: recorded latency is
// completion − *scheduled arrival*, i.e. service time plus queuing delay,
// and LoadResult reports offered vs achieved throughput so saturation is
// explicit rather than silent.
//
// Per-operation latency is recorded into per-thread gcmon HDR histograms
// (obs/hdr_histogram.hpp): wait-free record, fixed ~34 KB per thread
// regardless of op count, live-readable by an attached obs::Monitor, and
// percentiles within a documented <=1% relative error of the exact
// nearest-rank sample (bit-exact below ~256 ns). Measurement is BRACKETED —
// two steady_clock reads per op, so the recorded latency covers exactly the
// access() call: histogram recording, loop control, and any scheduling
// overhang between ops are excluded. (The previous chained single-read
// scheme attributed all inter-op time — including the tail of bookkeeping
// after a fill — to the following op; tests/test_gcmon.cpp pins the new
// semantics with a deterministic fake clock via detail::replay_closed_loop.)
//
// Lock-contention telemetry accumulates in each thread's ClientContext and
// is aggregated — and emitted via GC_OBS_COUNT — once per run, never per
// operation.
//
// With more than one thread the interleaving (hence SimStats) is
// schedule-dependent; the conservation invariants (accesses == ops,
// hits + misses == accesses) hold on every schedule and are what the
// concurrent tests assert.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <thread>

#include "core/stats.hpp"
#include "core/trace.hpp"
#include "gcached/sharded_cache.hpp"
#include "obs/gcmon.hpp"
#include "obs/hdr_histogram.hpp"
#include "obs/perf_counters.hpp"
#include "util/rng.hpp"

namespace gcaching::gcached {

/// Arrival process of the client threads (see file comment).
enum class Arrival {
  kClosed,   ///< next request issued when the previous completes
  kPoisson,  ///< open loop: deterministic Poisson arrivals at `rate_ops_per_sec`
};

struct LoadSpec {
  std::size_t threads = 1;
  /// Total operations across all threads; 0 = exactly one pass over the
  /// trace. More than one trace length wraps around (per-thread strides
  /// restart at their offset).
  std::uint64_t total_ops = 0;
  /// Base seed for the per-thread backoff-jitter RNGs.
  std::uint64_t seed = 1;
  Arrival arrival = Arrival::kClosed;
  /// Aggregate offered rate for Arrival::kPoisson, split across threads in
  /// proportion to their op shares. Must be > 0 in poisson mode; ignored in
  /// closed-loop mode.
  double rate_ops_per_sec = 0.0;
  /// Optional live monitor. When set, run_load registers each thread's
  /// latency histogram with it for the duration of the run and takes one
  /// synchronous harvest after the clients quiesce (so even a sub-interval
  /// run exports a final snapshot with complete latency and counters).
  /// The caller owns the monitor and its atlas attachment to `cache`.
  obs::Monitor* monitor = nullptr;
  /// Capture per-thread hardware counters (perf_event_open) around each
  /// client's replay loop. Falls back loudly to perf_valid=false totals on
  /// hosts that refuse the syscall (obs/perf_counters.hpp).
  bool perf = false;
};

struct LoadResult {
  std::uint64_t ops = 0;
  double seconds = 0.0;
  double ops_per_sec = 0.0;
  /// Offered arrival rate (poisson mode: LoadSpec::rate_ops_per_sec; 0.0 in
  /// closed-loop mode, where offered load is defined by completions).
  /// Compare against `ops_per_sec` — achieved well below offered means the
  /// run was saturated and the latency tail is dominated by queuing delay.
  double offered_ops_per_sec = 0.0;
  /// Operation-latency percentiles over every op of every thread, in
  /// microseconds (p50 <= p99 <= p999 <= max by construction), read from
  /// the merged HDR histogram (<=1% relative error, see obs/hdr_histogram).
  /// Closed loop: bracketed service time of the access() call. Poisson:
  /// completion − scheduled arrival (service + queuing delay).
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  double max_us = 0.0;
  /// Aggregate cache statistics (collect_stats after quiescing).
  SimStats stats;
  /// Summed ClientContext contention counters.
  std::uint64_t lock_acquisitions = 0;
  std::uint64_t lock_contended = 0;
  std::uint64_t backoff_rounds = 0;
  std::uint64_t backoff_ns = 0;
  /// Summed per-thread hardware counters; `perf.valid` is false unless
  /// LoadSpec::perf was set AND every thread's counters opened.
  obs::PerfTotals perf;
};

namespace detail {

/// One thread's closed-loop strided replay with bracketed latency
/// measurement: start/end Clock reads around each access, recorded into
/// `hist` in Clock ticks (nanoseconds for steady_clock). Templated on the
/// clock so tests drive a deterministic fake clock and pin exactly what the
/// recorded latency does — and does not — include.
template <typename Clock, typename AccessFn>
void replay_closed_loop(AccessFn&& access_one, std::size_t start,
                        std::size_t stride, std::size_t wrap,
                        std::uint64_t ops, obs::HdrHistogram& hist) {
  std::size_t i = start;
  for (std::uint64_t op = 0; op < ops; ++op) {
    const auto t0 = Clock::now();
    access_one(i);
    const auto t1 = Clock::now();
    hist.record(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
    i += stride;
    if (i >= wrap) i = start;  // wrap: restart this thread's stride
  }
}

/// One thread's open-loop strided replay: arrival op's scheduled instant is
/// t_start + sum of exponential inter-arrival draws (rate `rate_ops_per_sec`
/// for THIS thread) from `rng` — deterministic given the seed, independent
/// of how long any access takes. The thread sleeps until each scheduled
/// arrival (a no-op once it is running behind) and records
/// completion − scheduled arrival, so queuing delay shows up in the
/// percentiles instead of silently deflating the offered load. Templated on
/// the clock like replay_closed_loop.
template <typename Clock, typename AccessFn>
void replay_open_loop(AccessFn&& access_one, std::size_t start,
                      std::size_t stride, std::size_t wrap, std::uint64_t ops,
                      double rate_ops_per_sec, SplitMix64 rng,
                      obs::HdrHistogram& hist) {
  const auto t_start = Clock::now();
  double scheduled_ns = 0.0;
  std::size_t i = start;
  for (std::uint64_t op = 0; op < ops; ++op) {
    // Inverse-CDF exponential draw; the >>11 keeps the uniform in [0, 1)
    // with full double precision, and log1p(-u) never hits log(0).
    const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
    scheduled_ns += -std::log1p(-u) * 1e9 / rate_ops_per_sec;
    const auto arrival =
        t_start +
        std::chrono::nanoseconds(static_cast<std::int64_t>(scheduled_ns));
    std::this_thread::sleep_until(arrival);
    access_one(i);
    const auto lag = Clock::now() - arrival;
    hist.record(
        lag.count() > 0
            ? static_cast<std::uint64_t>(
                  std::chrono::duration_cast<std::chrono::nanoseconds>(lag)
                      .count())
            : 0);
    i += stride;
    if (i >= wrap) i = start;
  }
}

}  // namespace detail

/// Run `spec.threads` closed-loop clients over `trace` against `cache`.
/// `block_ids` must hold each access's block id (resolve_block_ids /
/// Trace::precompute_block_ids). Blocks until every client finished.
LoadResult run_load(ConcurrentCache& cache, const Trace& trace,
                    std::span<const BlockId> block_ids, const LoadSpec& spec);

}  // namespace gcaching::gcached
