#include "sim/replicate.hpp"

#include <algorithm>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "sim/thread_pool.hpp"
#include "util/contracts.hpp"

namespace gcaching::sim {

double Replication::min() const {
  GC_REQUIRE(!samples.empty(), "no samples");
  return *std::min_element(samples.begin(), samples.end());
}

double Replication::max() const {
  GC_REQUIRE(!samples.empty(), "no samples");
  return *std::max_element(samples.begin(), samples.end());
}

Replication replicate(
    const std::function<Workload(std::uint64_t seed)>& make_workload,
    const std::string& policy_spec, std::size_t capacity,
    const std::function<double(const SimStats&)>& metric,
    std::size_t replicas, std::uint64_t seed_base, std::size_t threads) {
  GC_REQUIRE(replicas >= 1, "need at least one replica");
  Replication out;
  out.samples.assign(replicas, 0.0);
  ThreadPool pool(threads);
  pool.parallel_for(replicas, [&](std::size_t r) {
    const Workload w = make_workload(seed_base + r);
    auto policy = make_policy(policy_spec, capacity);
    const SimStats stats = simulate(w, *policy, capacity);
    out.samples[r] = metric(stats);
  });
  return out;
}

double miss_rate_metric(const SimStats& stats) { return stats.miss_rate(); }

}  // namespace gcaching::sim
