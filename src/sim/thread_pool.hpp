// A small fixed-size thread pool for parallel parameter sweeps.
//
// Design constraints (per the verifying-simulator philosophy):
//   * each submitted task is a self-contained simulation with its own seed
//     and policy instance, so results are bit-identical at any thread count;
//   * exceptions inside tasks are captured and rethrown on wait(), so a
//     contract violation in one sweep point fails the whole bench loudly
//     instead of being swallowed by a worker thread.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "util/contracts.hpp"

namespace gcaching {

class ThreadPool {
 public:
  /// `threads` = 0 uses the hardware concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0) {
    if (threads == 0)
      threads = std::max(1u, std::thread::hardware_concurrency());
    workers_.reserve(threads);
    for (std::size_t w = 0; w < threads; ++w)
      workers_.emplace_back([this, w] { worker_loop(w); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  std::size_t num_threads() const noexcept { return workers_.size(); }

  /// Enqueue a task. Must not be called concurrently with wait().
  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      GC_REQUIRE(!stopping_, "submit after shutdown");
      queue_.push_back(std::move(task));
      ++outstanding_;
    }
    cv_.notify_one();
  }

  /// Blocks until every submitted task has finished; rethrows the first
  /// captured task exception, if any.
  void wait() {
    // GCLINT-ALLOW(hot-region-transitive): unqualified-name collision — the fill_gate hot region calls condition_variable::wait, never ThreadPool::wait; pool waiting is sweep-/run-boundary only
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return outstanding_ == 0; });
    if (first_error_) {
      const std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

  /// Convenience: run fn(i) for i in [0, count) across the pool and wait.
  /// Indices are submitted as contiguous chunks — a handful of tasks per
  /// worker — rather than one heap-allocated std::function per index, so
  /// large sweeps spend their time simulating instead of contending on the
  /// queue mutex. If a call throws, the remaining indices of *that chunk*
  /// are skipped; wait() rethrows the first exception either way.
  template <typename Fn>
  void parallel_for(std::size_t count, Fn&& fn) {
    if (count == 0) return;
    // ~4 chunks per worker balances load (cells vary in cost) against
    // per-task queue/allocation overhead.
    const std::size_t target_chunks =
        std::min<std::size_t>(count, num_threads() * 4);
    const std::size_t chunk = (count + target_chunks - 1) / target_chunks;
    for (std::size_t begin = 0; begin < count; begin += chunk) {
      const std::size_t end = std::min(begin + chunk, count);
      submit([&fn, begin, end] {
        for (std::size_t i = begin; i < end; ++i) fn(i);
      });
    }
    wait();
  }

 private:
  void worker_loop([[maybe_unused]] std::size_t worker_index) {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping, queue drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      // Named per task, not at thread start: the trace log is typically
      // installed after the pool's workers are already parked (idempotent,
      // see TraceLog::set_thread_name).
      GC_OBS_THREAD_NAME("gcpool-worker-" + std::to_string(worker_index));
      try {
        GC_OBS_SPAN(task_span, "pool_task", "pool");
        task();
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        if (!first_error_) first_error_ = std::current_exception();
      }
      GC_OBS_COUNT("pool.tasks_executed", 1);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--outstanding_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::size_t outstanding_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;
};

}  // namespace gcaching
