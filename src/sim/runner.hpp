// Declarative sweep runner: (workload, policy spec, capacity) grid ->
// per-cell SimStats, evaluated in parallel.
//
// Policies are constructed fresh per cell from their factory spec, so cells
// are fully independent and the sweep parallelizes trivially. Workloads are
// shared read-only (BlockMap and Trace are immutable after construction).
//
// Two fast-path granularities:
//   * batched (default): the unit of work is a whole (workload, policy)
//     ROW — all capacities in one trace pass via simulate_column_spec, with
//     stack policies collapsing further into a single stack-distance pass.
//     Rows are scheduled longest-estimated-first (estimated_sim_cost; the
//     factory throughputs skew ~70x across policies), so the slowest rows
//     never start last and strand the pool.
//   * per-cell (batch_columns = false, or the verifying engine): one task
//     per grid cell, statically chunked.
// Both produce bit-identical SimStats in identical row-major order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/trace.hpp"

namespace gcaching::sim {

struct SweepCell {
  std::size_t workload_index = 0;
  std::size_t policy_index = 0;
  std::size_t capacity = 0;
  SimStats stats;
};

struct SweepSpec {
  /// Workloads under test (read-only; shared across cells).
  const std::vector<Workload>* workloads = nullptr;
  /// Policy factory specs (see policies/factory.hpp).
  std::vector<std::string> policy_specs;
  /// Cache capacities; the full cross product is evaluated.
  std::vector<std::size_t> capacities;
  /// 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Use the devirtualized fast-path engine (simulate_fast_spec) with
  /// per-workload precomputed block ids. Produces bit-identical SimStats to
  /// the verifying engine — switch off to exercise the step-wise
  /// `Simulation` path instead (e.g. when debugging a new policy).
  bool use_fast_path = true;
  /// Batch each (workload, policy) row's capacities into one trace pass and
  /// schedule rows cost-aware (see file comment). Fast-path only; ignored
  /// when use_fast_path is false. Off = per-cell static chunking, which is
  /// what bench_sweep compares against.
  bool batch_columns = true;
  // ---- Spatial-hash sampling (locality/sample.hpp) ------------------------
  // When active, each workload is filtered ONCE through the block-consistent
  // SHARDS sampler, every engine (batched, per-cell, verifying) runs on the
  // filtered trace at capacities scaled by the workload's effective rate,
  // and the resulting counters are rescaled back to full-trace estimates.
  // Cells still report the ORIGINAL capacity. `sample_rate == 1.0` with
  // `sample_blocks == 0` bypasses sampling entirely — results are
  // bit-identical to an unsampled sweep (pinned by tests/test_sample.cpp).
  /// Fixed-rate sampling: keep blocks with hash < rate * 2^64. In (0, 1].
  double sample_rate = 1.0;
  /// Fixed-size sampling when > 0: cap on distinct sampled blocks per
  /// workload (adaptive threshold); `sample_rate` is then ignored.
  std::size_t sample_blocks = 0;
  /// Sampler hash seed; distinct seeds give independent samples.
  std::uint64_t sample_seed = 1;
  /// Provenance of a workload the CALLER already ran through the sampler
  /// (e.g. gcsim streaming a binary trace through locality::sample_view so
  /// the full trace is never materialized): the effective rate and the
  /// unfiltered access count, which the runner still needs for capacity
  /// scaling and counter rescale.
  struct Presampled {
    double rate = 1.0;
    std::uint64_t total_accesses = 0;
  };
  /// One entry per workload when the caller pre-filtered them; must be
  /// empty otherwise, and is mutually exclusive with sample_rate /
  /// sample_blocks (the runner would sample an already-sampled trace).
  std::vector<Presampled> presampled;
  /// Optional coarse progress hook, invoked as units of work complete with
  /// (done, total) — units are rows in batched mode, cells otherwise.
  /// Called from worker threads (possibly concurrently): the callback must
  /// be thread-safe and cheap. Backs `gcsim --progress`.
  std::function<void(std::size_t done, std::size_t total)> progress;
};

/// Runs the full cross product and returns cells in deterministic
/// (workload, policy, capacity) row-major order.
std::vector<SweepCell> run_sweep(const SweepSpec& spec);

}  // namespace gcaching::sim
