// Declarative sweep runner: (workload, policy spec, capacity) grid ->
// per-cell SimStats, evaluated in parallel.
//
// Policies are constructed fresh per cell from their factory spec, so cells
// are fully independent and the sweep parallelizes trivially. Workloads are
// shared read-only (BlockMap and Trace are immutable after construction).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/trace.hpp"

namespace gcaching::sim {

struct SweepCell {
  std::size_t workload_index = 0;
  std::size_t policy_index = 0;
  std::size_t capacity = 0;
  SimStats stats;
};

struct SweepSpec {
  /// Workloads under test (read-only; shared across cells).
  const std::vector<Workload>* workloads = nullptr;
  /// Policy factory specs (see policies/factory.hpp).
  std::vector<std::string> policy_specs;
  /// Cache capacities; the full cross product is evaluated.
  std::vector<std::size_t> capacities;
  /// 0 = hardware concurrency.
  std::size_t threads = 0;
  /// Use the devirtualized fast-path engine (simulate_fast_spec) with
  /// per-workload precomputed block ids. Produces bit-identical SimStats to
  /// the verifying engine — switch off to exercise the step-wise
  /// `Simulation` path instead (e.g. when debugging a new policy).
  bool use_fast_path = true;
};

/// Runs the full cross product and returns cells in deterministic
/// (workload, policy, capacity) row-major order.
std::vector<SweepCell> run_sweep(const SweepSpec& spec);

}  // namespace gcaching::sim
