// Seed replication: mean/stddev of simulation metrics across independent
// workload instances.
//
// Stochastic generators and randomized policies make single-run numbers
// anecdotal; `replicate` re-generates the workload under R seeds (in
// parallel) and aggregates, so benches can report mean ± stddev and tests
// can assert that qualitative claims are stable, not lucky.
#pragma once

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/stats.hpp"
#include "core/trace.hpp"

namespace gcaching::sim {

struct Replication {
  std::vector<double> samples;  ///< one metric value per seed

  double mean() const {
    if (samples.empty()) return 0.0;
    double s = 0;
    for (double v : samples) s += v;
    return s / static_cast<double>(samples.size());
  }
  double stddev() const {
    if (samples.size() < 2) return 0.0;
    const double m = mean();
    double s = 0;
    for (double v : samples) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(samples.size() - 1));
  }
  double min() const;
  double max() const;
};

/// Generates a workload per seed via `make_workload(seed)`, simulates
/// `policy_spec` at `capacity`, and collects `metric(stats)` per seed.
/// Seeds are `seed_base .. seed_base + replicas - 1`. Runs on a thread
/// pool (`threads` = 0 -> hardware concurrency); results are ordered by
/// seed and independent of thread count.
Replication replicate(
    const std::function<Workload(std::uint64_t seed)>& make_workload,
    const std::string& policy_spec, std::size_t capacity,
    const std::function<double(const SimStats&)>& metric,
    std::size_t replicas, std::uint64_t seed_base = 1,
    std::size_t threads = 0);

/// Common metric: miss rate.
double miss_rate_metric(const SimStats& stats);

}  // namespace gcaching::sim
