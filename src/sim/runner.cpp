#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>
#include <span>

#include "core/simulator.hpp"
#include "locality/sample.hpp"
#include "obs/obs.hpp"
#include "policies/factory.hpp"
#include "sim/thread_pool.hpp"
#include "util/contracts.hpp"

namespace gcaching::sim {

std::vector<SweepCell> run_sweep(const SweepSpec& spec) {
  GC_REQUIRE(spec.workloads != nullptr, "sweep needs workloads");
  GC_REQUIRE(!spec.policy_specs.empty(), "sweep needs at least one policy");
  GC_REQUIRE(!spec.capacities.empty(), "sweep needs at least one capacity");
  GC_REQUIRE(spec.sample_rate > 0.0 && spec.sample_rate <= 1.0,
             "sample_rate must be in (0, 1]");

  const std::size_t nw = spec.workloads->size();
  const std::size_t np = spec.policy_specs.size();
  const std::size_t nc = spec.capacities.size();
  std::vector<SweepCell> cells(nw * np * nc);
  for (std::size_t w = 0; w < nw; ++w)
    for (std::size_t p = 0; p < np; ++p)
      for (std::size_t c = 0; c < nc; ++c) {
        SweepCell& cell = cells[(w * np + p) * nc + c];
        cell.workload_index = w;
        cell.policy_index = p;
        cell.capacity = spec.capacities[c];
      }

  ThreadPool pool(spec.threads);

  // Sampling pass: filter each workload ONCE through the block-consistent
  // spatial-hash sampler; every engine below then runs on the filtered
  // trace. The per-workload effective rate drives capacity scaling and the
  // final counter rescale. Workloads are independent, so the (memory-bound)
  // filter passes run across the pool. Alternatively the caller already
  // filtered (spec.presampled, e.g. streamed from a binary trace file) and
  // only the scaling/rescale half applies here.
  const bool cfg_sampling = spec.sample_rate < 1.0 || spec.sample_blocks > 0;
  const bool presampled = !spec.presampled.empty();
  GC_REQUIRE(!(cfg_sampling && presampled),
             "presampled workloads cannot be sampled again");
  GC_REQUIRE(!presampled || spec.presampled.size() == nw,
             "presampled info must cover every workload");
  const bool sampling = cfg_sampling || presampled;
  std::vector<Workload> sampled;
  std::vector<std::uint64_t> sample_totals(nw, 0);
  std::vector<double> sample_rates(nw, 1.0);
  if (presampled) {
    for (std::size_t w = 0; w < nw; ++w) {
      const SweepSpec::Presampled& info = spec.presampled[w];
      GC_REQUIRE(info.rate > 0.0 && info.rate <= 1.0,
                 "presampled rate must be in (0, 1]");
      GC_REQUIRE(info.total_accesses >= (*spec.workloads)[w].trace.size(),
                 "presampled total is smaller than the filtered trace");
      sample_totals[w] = info.total_accesses;
      sample_rates[w] = info.rate;
    }
  }
  if (cfg_sampling) {
    sampled.resize(nw);
    pool.parallel_for(nw, [&](std::size_t w) {
      const Workload& workload = (*spec.workloads)[w];
      GC_REQUIRE(workload.map != nullptr, "workload has no block map");
      GC_OBS_SPAN(span, "sample_workload", "sweep");
      GC_OBS_SPAN_ARG(span, "workload", std::to_string(w));
      locality::SampleConfig cfg;
      cfg.rate = spec.sample_rate;
      cfg.max_blocks = spec.sample_blocks;
      cfg.seed = spec.sample_seed;
      locality::SampledTrace s = locality::sample_workload(workload, cfg);
      sample_totals[w] = s.total_accesses;
      // Scale capacities by the fraction of this universe the filter
      // actually accepted, not the nominal rate: the binomial gap between
      // the two shifts every scaled capacity and is the dominant
      // controllable error at small rates.
      sample_rates[w] =
          locality::realized_rate(s.filter, workload.map->num_blocks());
      sampled[w] = locality::make_sampled_workload(workload, std::move(s));
      GC_OBS_COUNT("sweep.workloads_sampled", 1);
    });
  }
  const std::vector<Workload>& work =
      cfg_sampling ? sampled : *spec.workloads;

  // Maps an original capacity to the one simulated for workload `w` —
  // scaled by the sample rate, floored at the partition's max block size so
  // block-granularity policies stay legal. Identity when not sampling.
  const auto effective_capacity = [&](std::size_t w, std::size_t capacity) {
    return sampling ? locality::scaled_capacity(
                          capacity, sample_rates[w],
                          work[w].map->max_block_size())
                    : capacity;
  };
  // Rescales a sampled run's counters to full-trace estimates; identity
  // (bit-for-bit) when not sampling.
  const auto correct_stats = [&](std::size_t w, const SimStats& stats) {
    return sampling ? locality::unsample_stats(stats, sample_totals[w])
                    : stats;
  };

  // Resolve each workload's per-access block ids once, up front: every
  // fast-path cell of the same workload shares one read-only array, so no
  // cell pays a virtual BlockMap::block_of call in its hot loop. Sampled
  // traces carry adopted ids from the filter pass, so resolve_block_ids
  // reuses them for free. The resolution itself is memory-bound and
  // per-workload independent, so it runs across the pool too.
  std::vector<std::vector<BlockId>> block_id_storage(nw);
  std::vector<std::span<const BlockId>> block_ids(nw);
  if (spec.use_fast_path)
    pool.parallel_for(nw, [&](std::size_t w) {
      const Workload& workload = work[w];
      GC_REQUIRE(workload.map != nullptr, "workload has no block map");
      GC_OBS_SPAN(span, "precompute_block_ids", "sweep");
      GC_OBS_SPAN_ARG(span, "workload", std::to_string(w));
      block_ids[w] = resolve_block_ids(*workload.map, workload.trace,
                                       block_id_storage[w]);
      GC_OBS_COUNT("sweep.block_id_precomputes", 1);
    });

  // One progress unit per scheduled task: rows in batched mode, cells
  // otherwise. `done` is shared across workers; the callback itself is the
  // caller's to make thread-safe.
  std::atomic<std::size_t> done{0};

  if (spec.use_fast_path && spec.batch_columns) {
    // Row-batched mode: one task per (workload, policy) row, every capacity
    // in a single trace pass. Per-policy costs skew ~70x, so rows go out
    // longest-estimated-first (LPT): a slow row dispatched last would hold
    // the whole sweep hostage on one thread. Cells are written into
    // preassigned row-major slices, so output order is deterministic no
    // matter how the schedule interleaves.
    struct Row {
      std::size_t w = 0;
      std::size_t p = 0;
      double cost = 0.0;
    };
    std::vector<Row> rows;
    rows.reserve(nw * np);
    for (std::size_t w = 0; w < nw; ++w)
      for (std::size_t p = 0; p < np; ++p)
        rows.push_back({w, p,
                        estimated_sim_cost(spec.policy_specs[p],
                                           work[w].trace.size())});
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) { return a.cost > b.cost; });
    const std::size_t total_rows = rows.size();
    for (const Row& row : rows)
      pool.submit([&spec, &cells, &block_ids, &done, &work,
                   &effective_capacity, &correct_stats, row, np, nc,
                   total_rows] {
        const Workload& workload = work[row.w];
        {
          GC_OBS_SPAN(span, "sweep_row", "sweep");
          GC_OBS_SPAN_ARG(span, "policy", spec.policy_specs[row.p]);
          GC_OBS_SPAN_ARG(span, "workload", std::to_string(row.w));
          std::vector<std::size_t> caps(spec.capacities);
          for (std::size_t& cap : caps) cap = effective_capacity(row.w, cap);
          const std::vector<SimStats> column = simulate_column_spec(
              spec.policy_specs[row.p], *workload.map, workload.trace,
              block_ids[row.w], caps);
          for (std::size_t c = 0; c < nc; ++c)
            cells[(row.w * np + row.p) * nc + c].stats =
                correct_stats(row.w, column[c]);
        }
        GC_OBS_COUNT("sweep.rows_completed", 1);
        if (spec.progress)
          spec.progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                        total_rows);
      });
    pool.wait();
    return cells;
  }

  pool.parallel_for(cells.size(), [&](std::size_t idx) {
    SweepCell& cell = cells[idx];
    const Workload& workload = work[cell.workload_index];
    const std::string& policy_spec = spec.policy_specs[cell.policy_index];
    const std::size_t capacity =
        effective_capacity(cell.workload_index, cell.capacity);
    {
      GC_OBS_SPAN(span, "sweep_cell", "sweep");
      GC_OBS_SPAN_ARG(span, "policy", policy_spec);
      GC_OBS_SPAN_ARG(span, "capacity", std::to_string(cell.capacity));
      SimStats stats;
      if (spec.use_fast_path) {
        stats =
            simulate_fast_spec(policy_spec, *workload.map, workload.trace,
                               block_ids[cell.workload_index], capacity);
      } else {
        auto policy = make_policy(policy_spec, capacity);
        stats = simulate(workload, *policy, capacity);
      }
      cell.stats = correct_stats(cell.workload_index, stats);
    }
    GC_OBS_COUNT("sweep.cells_completed", 1);
    if (spec.progress)
      spec.progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                    cells.size());
  });
  return cells;
}

}  // namespace gcaching::sim
