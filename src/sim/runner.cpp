#include "sim/runner.hpp"

#include <algorithm>
#include <atomic>

#include "core/simulator.hpp"
#include "obs/obs.hpp"
#include "policies/factory.hpp"
#include "sim/thread_pool.hpp"
#include "util/contracts.hpp"

namespace gcaching::sim {

std::vector<SweepCell> run_sweep(const SweepSpec& spec) {
  GC_REQUIRE(spec.workloads != nullptr, "sweep needs workloads");
  GC_REQUIRE(!spec.policy_specs.empty(), "sweep needs at least one policy");
  GC_REQUIRE(!spec.capacities.empty(), "sweep needs at least one capacity");

  const std::size_t nw = spec.workloads->size();
  const std::size_t np = spec.policy_specs.size();
  const std::size_t nc = spec.capacities.size();
  std::vector<SweepCell> cells(nw * np * nc);
  for (std::size_t w = 0; w < nw; ++w)
    for (std::size_t p = 0; p < np; ++p)
      for (std::size_t c = 0; c < nc; ++c) {
        SweepCell& cell = cells[(w * np + p) * nc + c];
        cell.workload_index = w;
        cell.policy_index = p;
        cell.capacity = spec.capacities[c];
      }

  ThreadPool pool(spec.threads);

  // Resolve each workload's per-access block ids once, up front: every
  // fast-path cell of the same workload shares one read-only vector, so no
  // cell pays a virtual BlockMap::block_of call in its hot loop. The
  // resolution itself is memory-bound and per-workload independent, so it
  // runs across the pool too.
  std::vector<std::vector<BlockId>> block_ids(nw);
  if (spec.use_fast_path)
    pool.parallel_for(nw, [&](std::size_t w) {
      const Workload& workload = (*spec.workloads)[w];
      GC_REQUIRE(workload.map != nullptr, "workload has no block map");
      GC_OBS_SPAN(span, "precompute_block_ids", "sweep");
      GC_OBS_SPAN_ARG(span, "workload", std::to_string(w));
      block_ids[w] = compute_block_ids(*workload.map, workload.trace);
      GC_OBS_COUNT("sweep.block_id_precomputes", 1);
    });

  // One progress unit per scheduled task: rows in batched mode, cells
  // otherwise. `done` is shared across workers; the callback itself is the
  // caller's to make thread-safe.
  std::atomic<std::size_t> done{0};

  if (spec.use_fast_path && spec.batch_columns) {
    // Row-batched mode: one task per (workload, policy) row, every capacity
    // in a single trace pass. Per-policy costs skew ~70x, so rows go out
    // longest-estimated-first (LPT): a slow row dispatched last would hold
    // the whole sweep hostage on one thread. Cells are written into
    // preassigned row-major slices, so output order is deterministic no
    // matter how the schedule interleaves.
    struct Row {
      std::size_t w = 0;
      std::size_t p = 0;
      double cost = 0.0;
    };
    std::vector<Row> rows;
    rows.reserve(nw * np);
    for (std::size_t w = 0; w < nw; ++w)
      for (std::size_t p = 0; p < np; ++p)
        rows.push_back(
            {w, p,
             estimated_sim_cost(spec.policy_specs[p],
                                (*spec.workloads)[w].trace.size())});
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row& a, const Row& b) { return a.cost > b.cost; });
    const std::size_t total_rows = rows.size();
    for (const Row& row : rows)
      pool.submit([&spec, &cells, &block_ids, &done, row, np, nc,
                   total_rows] {
        const Workload& workload = (*spec.workloads)[row.w];
        {
          GC_OBS_SPAN(span, "sweep_row", "sweep");
          GC_OBS_SPAN_ARG(span, "policy", spec.policy_specs[row.p]);
          GC_OBS_SPAN_ARG(span, "workload", std::to_string(row.w));
          const std::vector<SimStats> column = simulate_column_spec(
              spec.policy_specs[row.p], *workload.map, workload.trace,
              block_ids[row.w], spec.capacities);
          for (std::size_t c = 0; c < nc; ++c)
            cells[(row.w * np + row.p) * nc + c].stats = column[c];
        }
        GC_OBS_COUNT("sweep.rows_completed", 1);
        if (spec.progress)
          spec.progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                        total_rows);
      });
    pool.wait();
    return cells;
  }

  pool.parallel_for(cells.size(), [&](std::size_t idx) {
    SweepCell& cell = cells[idx];
    const Workload& workload = (*spec.workloads)[cell.workload_index];
    const std::string& policy_spec = spec.policy_specs[cell.policy_index];
    {
      GC_OBS_SPAN(span, "sweep_cell", "sweep");
      GC_OBS_SPAN_ARG(span, "policy", policy_spec);
      GC_OBS_SPAN_ARG(span, "capacity", std::to_string(cell.capacity));
      if (spec.use_fast_path) {
        cell.stats =
            simulate_fast_spec(policy_spec, *workload.map, workload.trace,
                               block_ids[cell.workload_index], cell.capacity);
      } else {
        auto policy = make_policy(policy_spec, cell.capacity);
        cell.stats = simulate(workload, *policy, cell.capacity);
      }
    }
    GC_OBS_COUNT("sweep.cells_completed", 1);
    if (spec.progress)
      spec.progress(done.fetch_add(1, std::memory_order_relaxed) + 1,
                    cells.size());
  });
  return cells;
}

}  // namespace gcaching::sim
