#include "sim/runner.hpp"

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "sim/thread_pool.hpp"
#include "util/contracts.hpp"

namespace gcaching::sim {

std::vector<SweepCell> run_sweep(const SweepSpec& spec) {
  GC_REQUIRE(spec.workloads != nullptr, "sweep needs workloads");
  GC_REQUIRE(!spec.policy_specs.empty(), "sweep needs at least one policy");
  GC_REQUIRE(!spec.capacities.empty(), "sweep needs at least one capacity");

  const std::size_t nw = spec.workloads->size();
  const std::size_t np = spec.policy_specs.size();
  const std::size_t nc = spec.capacities.size();
  std::vector<SweepCell> cells(nw * np * nc);
  for (std::size_t w = 0; w < nw; ++w)
    for (std::size_t p = 0; p < np; ++p)
      for (std::size_t c = 0; c < nc; ++c) {
        SweepCell& cell = cells[(w * np + p) * nc + c];
        cell.workload_index = w;
        cell.policy_index = p;
        cell.capacity = spec.capacities[c];
      }

  ThreadPool pool(spec.threads);
  pool.parallel_for(cells.size(), [&](std::size_t idx) {
    SweepCell& cell = cells[idx];
    const Workload& workload = (*spec.workloads)[cell.workload_index];
    auto policy =
        make_policy(spec.policy_specs[cell.policy_index], cell.capacity);
    cell.stats = simulate(workload, *policy, cell.capacity);
  });
  return cells;
}

}  // namespace gcaching::sim
