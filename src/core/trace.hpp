// Access traces and workloads.
//
// A `Trace` is the request sequence sigma of Definition 1: an ordered list
// of item ids. A `Workload` bundles a trace with the block partition it was
// generated against, which is what simulators and analyzers consume.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/block_map.hpp"
#include "core/types.hpp"

namespace gcaching {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<ItemId> accesses)
      : accesses_(std::move(accesses)) {}

  void push(ItemId item) { accesses_.push_back(item); }
  void append(const Trace& other);
  void reserve(std::size_t n) { accesses_.reserve(n); }
  void clear() { accesses_.clear(); }

  std::size_t size() const noexcept { return accesses_.size(); }
  bool empty() const noexcept { return accesses_.empty(); }
  ItemId operator[](std::size_t i) const { return accesses_[i]; }

  auto begin() const noexcept { return accesses_.begin(); }
  auto end() const noexcept { return accesses_.end(); }

  const std::vector<ItemId>& accesses() const noexcept { return accesses_; }

  /// Number of distinct items referenced anywhere in the trace.
  std::size_t distinct_items() const;

  /// Largest item id referenced, or kInvalidItem for an empty trace.
  ItemId max_item() const;

 private:
  std::vector<ItemId> accesses_;
};

/// A trace plus the partition it is defined over. The map is shared because
/// many traces (e.g. a parameter sweep) reference one partition.
struct Workload {
  std::shared_ptr<const BlockMap> map;
  Trace trace;
  std::string name;  ///< human-readable provenance, e.g. "zipf(theta=0.9)"

  /// Number of distinct blocks referenced by the trace.
  std::size_t distinct_blocks() const;

  /// Validates that every access refers to an item inside the map.
  void validate() const;
};

}  // namespace gcaching
