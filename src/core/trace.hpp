// Access traces and workloads.
//
// A `Trace` is the request sequence sigma of Definition 1: an ordered list
// of item ids. A `Workload` bundles a trace with the block partition it was
// generated against, which is what simulators and analyzers consume.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/block_map.hpp"
#include "core/types.hpp"

namespace gcaching {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<ItemId> accesses)
      : accesses_(std::move(accesses)) {}

  void push(ItemId item) {
    accesses_.push_back(item);
    block_map_ = nullptr;  // invalidate any precomputed block ids
  }
  void append(const Trace& other);
  void reserve(std::size_t n) { accesses_.reserve(n); }
  void clear() {
    accesses_.clear();
    block_ids_.clear();
    block_map_ = nullptr;
  }

  std::size_t size() const noexcept { return accesses_.size(); }
  bool empty() const noexcept { return accesses_.empty(); }
  ItemId operator[](std::size_t i) const { return accesses_[i]; }

  auto begin() const noexcept { return accesses_.begin(); }
  auto end() const noexcept { return accesses_.end(); }

  const std::vector<ItemId>& accesses() const noexcept { return accesses_; }

  /// Number of distinct items referenced anywhere in the trace.
  std::size_t distinct_items() const;

  /// Largest item id referenced, or kInvalidItem for an empty trace.
  ItemId max_item() const;

  // ---- Per-access block ids (fast-path support) ---------------------------
  // The fast simulation engine never calls the virtual BlockMap::block_of in
  // its hot loop; instead the block id of every access is resolved once,
  // here. The cache is tied to the map it was computed against and is
  // invalidated by any trace mutation.

  /// Resolve and store the block id of every access against `map`. Also
  /// validates that every access is inside the map's universe. O(size).
  void precompute_block_ids(const BlockMap& map);

  /// True when block ids are cached for this exact map instance.
  bool has_block_ids(const BlockMap& map) const noexcept {
    return block_map_ == &map && block_ids_.size() == accesses_.size();
  }

  /// The cached per-access block ids (valid only when has_block_ids()).
  std::span<const BlockId> block_ids() const noexcept { return block_ids_; }

 private:
  std::vector<ItemId> accesses_;
  std::vector<BlockId> block_ids_;
  const BlockMap* block_map_ = nullptr;
};

/// Standalone form of Trace::precompute_block_ids for callers holding a
/// const Trace (e.g. the sweep runner): resolves every access's block id
/// against `map`, validating item ranges as it goes.
std::vector<BlockId> compute_block_ids(const BlockMap& map,
                                       const Trace& trace);

/// A trace plus the partition it is defined over. The map is shared because
/// many traces (e.g. a parameter sweep) reference one partition.
struct Workload {
  std::shared_ptr<const BlockMap> map;
  Trace trace;
  std::string name;  ///< human-readable provenance, e.g. "zipf(theta=0.9)"

  /// Number of distinct blocks referenced by the trace.
  std::size_t distinct_blocks() const;

  /// Validates that every access refers to an item inside the map.
  void validate() const;
};

}  // namespace gcaching
