// Access traces and workloads.
//
// A `Trace` is the request sequence sigma of Definition 1: an ordered list
// of item ids. A `Workload` bundles a trace with the block partition it was
// generated against, which is what simulators and analyzers consume.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/block_map.hpp"
#include "core/types.hpp"
#include "util/contracts.hpp"

namespace gcaching {

class Trace {
 public:
  Trace() = default;
  explicit Trace(std::vector<ItemId> accesses)
      : accesses_(std::move(accesses)) {}

  void push(ItemId item) {
    accesses_.push_back(item);
    block_map_ = nullptr;  // invalidate any precomputed block ids
  }
  void append(const Trace& other);
  void reserve(std::size_t n) { accesses_.reserve(n); }
  void clear() {
    accesses_.clear();
    block_ids_.clear();
    block_map_ = nullptr;
  }

  std::size_t size() const noexcept { return accesses_.size(); }
  bool empty() const noexcept { return accesses_.empty(); }
  ItemId operator[](std::size_t i) const { return accesses_[i]; }

  auto begin() const noexcept { return accesses_.begin(); }
  auto end() const noexcept { return accesses_.end(); }

  const std::vector<ItemId>& accesses() const noexcept { return accesses_; }

  /// Number of distinct items referenced anywhere in the trace.
  std::size_t distinct_items() const;

  /// Largest item id referenced, or kInvalidItem for an empty trace.
  ItemId max_item() const;

  // ---- Per-access block ids (fast-path support) ---------------------------
  // The fast simulation engine never calls the virtual BlockMap::block_of in
  // its hot loop; instead the block id of every access is resolved once,
  // here. The cache is tied to the map it was computed against and is
  // invalidated by any trace mutation.

  /// Resolve and store the block id of every access against `map`. Also
  /// validates that every access is inside the map's universe. O(size).
  void precompute_block_ids(const BlockMap& map);

  /// True when block ids are cached for this exact map instance.
  bool has_block_ids(const BlockMap& map) const noexcept {
    return block_map_ == &map && block_ids_.size() == accesses_.size();
  }

  /// The cached per-access block ids (valid only when has_block_ids()).
  std::span<const BlockId> block_ids() const noexcept { return block_ids_; }

  /// Install externally computed block ids (e.g. from a sampling filter
  /// that resolved them as a by-product) as this trace's cache for `map`.
  /// `ids` must hold exactly one id per access; in checking builds every id
  /// is verified against the map.
  void adopt_block_ids(const BlockMap& map, std::vector<BlockId> ids);

 private:
  std::vector<ItemId> accesses_;
  std::vector<BlockId> block_ids_;
  const BlockMap* block_map_ = nullptr;
};

/// Standalone form of Trace::precompute_block_ids for callers holding a
/// const Trace (e.g. the sweep runner): resolves every access's block id
/// against `map`, validating item ranges as it goes.
std::vector<BlockId> compute_block_ids(const BlockMap& map,
                                       const Trace& trace);

/// The one place the "use the trace's cached ids, else resolve them once"
/// decision lives (previously repeated across the fast-engine setup, the
/// factory dispatch, and the sweep runner). Returns the trace's cached ids
/// when they were precomputed against `map`; otherwise resolves into
/// `storage` and returns a span over it. The returned span is valid as long
/// as both `trace` and `storage` are.
std::span<const BlockId> resolve_block_ids(const BlockMap& map,
                                           const Trace& trace,
                                           std::vector<BlockId>& storage);

// ---- One-pass filtered-trace materialization ------------------------------
// Support for trace sampling (locality/sample.hpp): a single pass over an
// access stream keeps the accesses whose *block* a predicate accepts,
// materializing the filtered accesses and their block ids together. Keeping
// the filter block-level is what makes sampling block-consistent: an item
// is kept iff its whole block is, so item- and block-granularity policies
// see a coherent sub-universe.

/// A filtered view of an access stream: the surviving accesses, their block
/// ids (same length), and the length of the unfiltered input.
struct FilteredTrace {
  std::vector<ItemId> accesses;
  std::vector<BlockId> block_ids;
  std::uint64_t total_accesses = 0;
};

/// One-pass materializer over parallel (access, block id) streams: keeps
/// accesses[i] iff keep_block(block_ids[i]). The spans may be mmap-backed
/// (core/trace_io TraceView) — the pass is strictly sequential and never
/// writes, so a billion-request file streams through the page cache.
template <typename KeepBlock>
FilteredTrace filter_trace(std::span<const ItemId> accesses,
                           std::span<const BlockId> block_ids,
                           KeepBlock&& keep_block) {
  GC_REQUIRE(block_ids.size() == accesses.size(),
             "one block id per access is required");
  FilteredTrace out;
  out.total_accesses = accesses.size();
  GC_HOT_REGION_BEGIN(filter_trace_loop)
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    if (keep_block(block_ids[i])) {
      out.accesses.push_back(accesses[i]);
      out.block_ids.push_back(block_ids[i]);
    }
  }
  GC_HOT_REGION_END(filter_trace_loop)
  return out;
}

/// Uniform-partition overload: block ids are derived as item / block_size on
/// the fly, so only the (possibly mmap-backed) access stream is read. This
/// is the path that lets the sampler stream a binary trace file without a
/// precomputed block-id array.
template <typename KeepBlock>
FilteredTrace filter_trace_uniform(std::span<const ItemId> accesses,
                                   std::size_t block_size,
                                   KeepBlock&& keep_block) {
  GC_REQUIRE(block_size > 0, "block size must be positive");
  FilteredTrace out;
  out.total_accesses = accesses.size();
  GC_HOT_REGION_BEGIN(filter_trace_uniform_loop)
  for (const ItemId item : accesses) {
    const BlockId block = static_cast<BlockId>(item / block_size);
    if (keep_block(block)) {
      out.accesses.push_back(item);
      out.block_ids.push_back(block);
    }
  }
  GC_HOT_REGION_END(filter_trace_uniform_loop)
  return out;
}

/// A trace plus the partition it is defined over. The map is shared because
/// many traces (e.g. a parameter sweep) reference one partition.
struct Workload {
  std::shared_ptr<const BlockMap> map;
  Trace trace;
  std::string name;  ///< human-readable provenance, e.g. "zipf(theta=0.9)"

  /// Number of distinct blocks referenced by the trace.
  std::size_t distinct_blocks() const;

  /// Validates that every access refers to an item inside the map.
  void validate() const;
};

}  // namespace gcaching
