#include "core/trace.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/contracts.hpp"

namespace gcaching {

void Trace::append(const Trace& other) {
  accesses_.insert(accesses_.end(), other.accesses_.begin(),
                   other.accesses_.end());
  block_map_ = nullptr;  // invalidate any precomputed block ids
}

void Trace::precompute_block_ids(const BlockMap& map) {
  if (has_block_ids(map)) return;
  block_ids_ = compute_block_ids(map, *this);
  block_map_ = &map;
}

void Trace::adopt_block_ids(const BlockMap& map, std::vector<BlockId> ids) {
  GC_REQUIRE(ids.size() == accesses_.size(),
             "adopt_block_ids needs exactly one block id per access");
  if constexpr (kHotChecksEnabled) {
    for (std::size_t i = 0; i < accesses_.size(); ++i) {
      GC_CHECK(accesses_[i] < map.num_items(),
               "trace references item outside the map");
      GC_CHECK(ids[i] == map.block_of(accesses_[i]),
               "adopted block id disagrees with the map");
    }
  }
  block_ids_ = std::move(ids);
  block_map_ = &map;
}

std::vector<BlockId> compute_block_ids(const BlockMap& map,
                                       const Trace& trace) {
  std::vector<BlockId> out;
  out.reserve(trace.size());
  for (ItemId it : trace) {
    GC_REQUIRE(it < map.num_items(), "trace references item outside the map");
    out.push_back(map.block_of(it));
  }
  return out;
}

std::span<const BlockId> resolve_block_ids(const BlockMap& map,
                                           const Trace& trace,
                                           std::vector<BlockId>& storage) {
  if (trace.has_block_ids(map)) return trace.block_ids();
  storage = compute_block_ids(map, trace);
  return storage;
}

std::size_t Trace::distinct_items() const {
  std::unordered_set<ItemId> seen(accesses_.begin(), accesses_.end());
  return seen.size();
}

ItemId Trace::max_item() const {
  if (accesses_.empty()) return kInvalidItem;
  return *std::max_element(accesses_.begin(), accesses_.end());
}

std::size_t Workload::distinct_blocks() const {
  GC_REQUIRE(map != nullptr, "workload has no block map");
  std::unordered_set<BlockId> seen;
  for (ItemId it : trace) seen.insert(map->block_of(it));
  return seen.size();
}

void Workload::validate() const {
  GC_REQUIRE(map != nullptr, "workload has no block map");
  for (ItemId it : trace)
    GC_REQUIRE(it < map->num_items(), "trace references item outside the map");
}

}  // namespace gcaching
