// Ground-truth cache state with model-invariant enforcement.
//
// `CacheContents` is owned by the simulator, not by policies. Policies
// mutate it only through `load` / `evict` inside a miss transaction opened
// by the simulator, and the class *enforces* Definition 1:
//   * loads are only legal during a miss, and only for items of the
//     currently-missed block (the "any subset of that item's block" rule);
//   * occupancy never exceeds capacity (evict before load);
//   * the requested item must be resident when the transaction closes.
//
// It also performs the paper's hit taxonomy (Section 2, "Locality vs.
// traditional caching models"): a hit on an item that was side-loaded by a
// different item's miss and has not been touched since is a *spatial* hit;
// every other hit is *temporal*.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/block_map.hpp"
#include "core/types.hpp"

namespace gcaching {

enum class HitKind : std::uint8_t { kTemporal, kSpatial };

class CacheContents {
 public:
  CacheContents(const BlockMap& map, std::size_t capacity);

  // ---- Read-only inspection (also the adversaries' view) -----------------
  bool contains(ItemId item) const;
  std::size_t occupancy() const noexcept { return occupancy_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return occupancy_ == capacity_; }
  const BlockMap& map() const noexcept { return map_; }

  /// True while a miss transaction is open.
  bool in_miss() const noexcept { return current_block_ != kInvalidBlock; }

  /// The block whose miss is being served (only valid during a miss).
  BlockId missed_block() const;

  /// Logical time (accesses processed so far), advanced by the simulator.
  AccessTime now() const noexcept { return now_; }

  /// Calls fn(item) for every resident item, ascending id. O(num_items).
  void for_each_resident(const std::function<void(ItemId)>& fn) const;

  /// Snapshot of resident items, ascending. O(num_items); for tests/benches.
  std::vector<ItemId> resident_items() const;

  /// Number of residents of `block`. O(block size).
  std::size_t residents_of_block(BlockId block) const;

  // ---- Mutation API (simulator + policies) --------------------------------
  /// Simulator: advance logical time; classify & record a hit on a resident
  /// item. Returns the hit kind per the paper's taxonomy.
  HitKind record_hit(ItemId item);

  /// Simulator: open a miss transaction for non-resident `requested`.
  void begin_miss(ItemId requested);

  /// Policy: load `item` during a miss. `item` must belong to the missed
  /// block, be non-resident, and the cache must not be full.
  void load(ItemId item);

  /// Policy: evict resident `item`. Legal at any point — Definition 1 only
  /// constrains *loads*; a policy may reorganize on hits (e.g. IBLP evicts
  /// an item-layer victim when promoting a block-layer hit).
  void evict(ItemId item);

  /// Simulator: close the transaction; the requested item must be resident.
  void end_miss();

  /// Drop everything and reset counters to the post-construction state.
  void reset();

  // ---- Lifetime counters ---------------------------------------------------
  /// Items brought into the cache, including requested ones.
  std::uint64_t items_loaded() const noexcept { return items_loaded_; }
  /// Items loaded as a side effect of a different item's miss.
  std::uint64_t sideloads() const noexcept { return sideloads_; }
  /// Evictions performed.
  std::uint64_t evictions() const noexcept { return evictions_; }
  /// Side-loaded items evicted without ever being accessed — pure pollution.
  std::uint64_t wasted_sideloads() const noexcept { return wasted_sideloads_; }
  /// Timestamp (access index) at which `item` was last loaded. Only
  /// meaningful while the item is resident.
  AccessTime load_time(ItemId item) const;

 private:
  struct Entry {
    bool present = false;
    bool requested_load = false;  ///< loaded because it was itself requested
    bool touched = false;         ///< accessed since (or at) its load
    AccessTime loaded_at = 0;
  };

  const BlockMap& map_;
  std::size_t capacity_;
  std::size_t occupancy_ = 0;
  std::vector<Entry> entries_;
  BlockId current_block_ = kInvalidBlock;
  ItemId current_request_ = kInvalidItem;
  AccessTime now_ = 0;

  std::uint64_t items_loaded_ = 0;
  std::uint64_t sideloads_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t wasted_sideloads_ = 0;
};

}  // namespace gcaching
