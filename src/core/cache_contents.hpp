// Ground-truth cache state with model-invariant enforcement.
//
// `CacheContents` is owned by the simulator, not by policies. Policies
// mutate it only through `load` / `evict` inside a miss transaction opened
// by the simulator, and the class *enforces* Definition 1:
//   * loads are only legal during a miss, and only for items of the
//     currently-missed block (the "any subset of that item's block" rule);
//   * occupancy never exceeds capacity (evict before load);
//   * the requested item must be resident when the transaction closes.
//
// It also performs the paper's hit taxonomy (Section 2, "Locality vs.
// traditional caching models"): a hit on an item that was side-loaded by a
// different item's miss and has not been touched since is a *spatial* hit;
// every other hit is *temporal*.
//
// All per-access mutators are defined inline here and carry GC_HOT_* tier
// contracts: enforced by default, compiled out under GC_FAST_SIM so the
// fast-path engine (core/simulator.hpp, `simulate_fast`) pays nothing for
// them. The per-access state is split by temperature: the hit path reads
// and writes a one-byte flag word per item (present / requested / touched),
// so the residency table an access touches is num_items bytes and stays
// cache-resident for realistic universes; load timestamps live in a side
// array written only on loads.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "core/block_map.hpp"
#include "core/types.hpp"
#include "util/contracts.hpp"

namespace gcaching {

enum class HitKind : std::uint8_t { kTemporal, kSpatial };

class CacheContents {
 public:
  // Defined inline (like the per-access mutators) so the fast engine's
  // translation unit sees the whole object lifetime: the flag array is then
  // known not to alias the policy's own state, which keeps the loop-carried
  // members in registers.
  CacheContents(const BlockMap& map, std::size_t capacity)
      : map_(map),
        capacity_(capacity),
        flags_(map.num_items(), Flag{}),
        load_times_(map.num_items(), 0) {
    GC_REQUIRE(capacity >= 1, "cache capacity must be at least one item");
  }

  // ---- Read-only inspection (also the adversaries' view) -----------------
  GC_HOT_REGION_BEGIN(cache_contents_residency)
  bool contains(ItemId item) const {
    GC_HOT_REQUIRE(item < flags_.size(), "item id out of range");
    return (raw(flags_[item]) & kPresent) != 0;
  }
  GC_HOT_REGION_END(cache_contents_residency)
  std::size_t occupancy() const noexcept { return occupancy_; }
  std::size_t capacity() const noexcept { return capacity_; }
  bool full() const noexcept { return occupancy_ == capacity_; }
  const BlockMap& map() const noexcept { return map_; }

  /// True while a miss transaction is open.
  bool in_miss() const noexcept { return current_block_ != kInvalidBlock; }

  /// The block whose miss is being served (only valid during a miss).
  BlockId missed_block() const;

  /// Logical time (accesses processed so far), advanced by the simulator.
  AccessTime now() const noexcept { return now_; }

  /// Calls fn(item) for every resident item, ascending id. O(num_items).
  /// Allocation-free templated form; policies should prefer this.
  template <typename Fn>
  void visit_residents(Fn&& fn) const {
    for (ItemId it = 0; it < flags_.size(); ++it)
      if ((raw(flags_[it]) & kPresent) != 0) fn(it);
  }

  /// Calls fn(item) for every resident item of `block`, ascending id.
  /// O(block size); safe against evicting the visited item from inside fn.
  template <typename Fn>
  void visit_residents_of_block(BlockId block, Fn&& fn) const {
    for (ItemId it : map_.items_of(block))
      if ((raw(flags_[it]) & kPresent) != 0) fn(it);
  }

  /// Type-erased form of visit_residents, kept for tests and tools where a
  /// per-call std::function allocation is irrelevant.
  void for_each_resident(const std::function<void(ItemId)>& fn) const;

  /// Snapshot of resident items, ascending. O(num_items); for tests/benches.
  std::vector<ItemId> resident_items() const;

  /// Number of residents of `block`. O(block size).
  std::size_t residents_of_block(BlockId block) const;

  // ---- Mutation API (simulator + policies) --------------------------------
  // Every mutator below runs once (or more) per simulated access; only
  // GC_HOT_* contracts are allowed in this region (enforced by gclint).
  GC_HOT_REGION_BEGIN(cache_contents_mutators)
  /// Simulator: advance logical time; classify & record a hit on a resident
  /// item. Returns the hit kind per the paper's taxonomy.
  HitKind record_hit(ItemId item) {
    GC_HOT_REQUIRE(!in_miss(), "record_hit during an open miss transaction");
    GC_HOT_REQUIRE(contains(item), "record_hit on a non-resident item");
    const std::uint8_t e = raw(flags_[item]);
    const HitKind kind =
        (e & (kTouched | kRequestedLoad)) == 0 ? HitKind::kSpatial
                                               : HitKind::kTemporal;
    // Skip the store when the bit is already set (the common case: every
    // requested load starts touched) — hits then leave the flag line clean.
    if ((e & kTouched) == 0) flags_[item] = flag(e | kTouched);
    ++now_;
    return kind;
  }

  /// Hit fast path for policies that declare `kRequestedLoadsOnly`: every
  /// resident item was loaded as its own request, so the touched bit is
  /// already set (record_hit's store would be a no-op) and the hit is
  /// statically temporal. The declaration is contract-checked here on every
  /// hit in checking builds.
  void record_requested_hit(ItemId item) {
    GC_HOT_REQUIRE(!in_miss(), "record_hit during an open miss transaction");
    GC_HOT_REQUIRE(contains(item), "record_hit on a non-resident item");
    GC_HOT_REQUIRE((raw(flags_[item]) & (kTouched | kRequestedLoad)) != 0,
                   "requested-loads-only policy hit an untouched sideload");
    ++now_;
  }

  /// Simulator: open a miss transaction for non-resident `requested`.
  void begin_miss(ItemId requested) {
    begin_miss(requested, map_.block_of(requested));
  }

  /// Fast-path form: the caller supplies `requested`'s block id (typically
  /// precomputed per access, see Trace::precompute_block_ids) so the hot
  /// loop never makes the virtual BlockMap::block_of call.
  void begin_miss(ItemId requested, BlockId block) {
    GC_HOT_REQUIRE(!in_miss(), "begin_miss with a transaction already open");
    GC_HOT_REQUIRE(requested < flags_.size(), "item id out of range");
    GC_HOT_REQUIRE((raw(flags_[requested]) & kPresent) == 0,
                   "begin_miss on a resident item");
    GC_HOT_REQUIRE(block == map_.block_of(requested),
                   "supplied block id does not match the requested item");
    current_block_ = block;
    current_request_ = requested;
  }

  /// Policy: load `item` during a miss. `item` must belong to the missed
  /// block, be non-resident, and the cache must not be full.
  void load(ItemId item) {
    GC_HOT_REQUIRE(in_miss(), "load outside a miss transaction");
    GC_HOT_REQUIRE(item < flags_.size(), "item id out of range");
    GC_HOT_REQUIRE(map_.block_of(item) == current_block_,
                   "Definition 1 violation: load outside the missed block");
    GC_HOT_REQUIRE((raw(flags_[item]) & kPresent) == 0,
                   "loading an already-resident item");
    GC_HOT_REQUIRE(occupancy_ < capacity_,
                   "capacity violation: evict before loading");
    const bool requested = (item == current_request_);
    flags_[item] = flag(requested ? (kPresent | kRequestedLoad | kTouched)
                                  : kPresent);
    if (track_load_times_) load_times_[item] = now_;
    ++occupancy_;
    ++items_loaded_;
    if (!requested) ++sideloads_;
  }

  /// Policy: evict resident `item`. Legal at any point — Definition 1 only
  /// constrains *loads*; a policy may reorganize on hits (e.g. IBLP evicts
  /// an item-layer victim when promoting a block-layer hit).
  void evict(ItemId item) {
    GC_HOT_REQUIRE(item < flags_.size(), "item id out of range");
    const std::uint8_t e = raw(flags_[item]);
    GC_HOT_REQUIRE((e & kPresent) != 0, "evicting a non-resident item");
    if ((e & (kTouched | kRequestedLoad)) == 0) ++wasted_sideloads_;
    flags_[item] = Flag{};
    --occupancy_;
    ++evictions_;
  }

  /// Simulator: close the transaction; the requested item must be resident.
  void end_miss() {
    GC_HOT_REQUIRE(in_miss(), "end_miss without a transaction");
    GC_HOT_ENSURE((raw(flags_[current_request_]) & kPresent) != 0,
                  "policy failed to load the requested item");
    GC_HOT_ENSURE(occupancy_ <= capacity_, "occupancy exceeds capacity");
    current_block_ = kInvalidBlock;
    current_request_ = kInvalidItem;
    ++now_;
  }
  GC_HOT_REGION_END(cache_contents_mutators)

  /// Drop everything and reset counters to the post-construction state.
  void reset();

  // ---- Lifetime counters ---------------------------------------------------
  /// Items brought into the cache, including requested ones.
  std::uint64_t items_loaded() const noexcept { return items_loaded_; }
  /// Items loaded as a side effect of a different item's miss.
  std::uint64_t sideloads() const noexcept { return sideloads_; }
  /// Evictions performed.
  std::uint64_t evictions() const noexcept { return evictions_; }
  /// Side-loaded items evicted without ever being accessed — pure pollution.
  std::uint64_t wasted_sideloads() const noexcept { return wasted_sideloads_; }
  /// Timestamp (access index) at which `item` was last loaded. Only
  /// meaningful while the item is resident and load-time tracking is on.
  AccessTime load_time(ItemId item) const;

  /// Load timestamps are a cold-inspection feature (load_time()); the fast
  /// engine turns the per-load timestamp write off — it is a random-line
  /// store the hot loop otherwise pays on every load. SimStats and every
  /// other observable are unaffected. On by default.
  void set_load_time_tracking(bool on) noexcept { track_load_times_ = on; }
  bool load_time_tracking() const noexcept { return track_load_times_; }

 private:
  // Per-item flag byte; a non-resident item is all-zero. Stored as a
  // distinct one-byte enum rather than std::uint8_t on purpose: unsigned
  // char writes may alias *any* object, so flag stores in the (inlined) hot
  // loop would force the compiler to re-load every cached member and policy
  // pointer each iteration. An enum has its own alias class.
  enum class Flag : std::uint8_t {};
  static constexpr std::uint8_t kPresent = 1;        ///< resident now
  static constexpr std::uint8_t kRequestedLoad = 2;  ///< loaded as the request
  static constexpr std::uint8_t kTouched = 4;  ///< accessed since its load
  static constexpr std::uint8_t raw(Flag f) noexcept {
    return static_cast<std::uint8_t>(f);
  }
  static constexpr Flag flag(std::uint8_t b) noexcept {
    return static_cast<Flag>(b);
  }

  const BlockMap& map_;
  std::size_t capacity_;
  std::size_t occupancy_ = 0;
  std::vector<Flag> flags_;
  std::vector<AccessTime> load_times_;  ///< valid while the item is resident
  BlockId current_block_ = kInvalidBlock;
  ItemId current_request_ = kInvalidItem;
  AccessTime now_ = 0;
  bool track_load_times_ = true;

  std::uint64_t items_loaded_ = 0;
  std::uint64_t sideloads_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t wasted_sideloads_ = 0;
};

}  // namespace gcaching
