#include "core/simulator.hpp"

#include "obs/obs.hpp"
#include "util/contracts.hpp"

namespace gcaching {

Simulation::Simulation(const BlockMap& map, ReplacementPolicy& policy,
                       std::size_t capacity)
    : map_(map), policy_(policy), cache_(map, capacity) {
  policy_.attach(map_, cache_);
}

void Simulation::access(ItemId item) {
  GC_HOT_REQUIRE(item < map_.num_items(),
                 "access to item outside the universe");
  ++stats_.accesses;
  if (cache_.contains(item)) {
    const HitKind kind = cache_.record_hit(item);
    ++stats_.hits;
    if (kind == HitKind::kSpatial)
      ++stats_.spatial_hits;
    else
      ++stats_.temporal_hits;
    policy_.on_hit(item);
    return;
  }
  ++stats_.misses;
  const std::uint64_t loaded_before = cache_.items_loaded();
  const std::uint64_t sideloads_before = cache_.sideloads();
  const std::uint64_t evictions_before = cache_.evictions();
  const std::uint64_t wasted_before = cache_.wasted_sideloads();
  cache_.begin_miss(item);
  policy_.on_miss(item);
  cache_.end_miss();
  stats_.items_loaded += cache_.items_loaded() - loaded_before;
  stats_.sideloads += cache_.sideloads() - sideloads_before;
  stats_.evictions += cache_.evictions() - evictions_before;
  stats_.wasted_sideloads += cache_.wasted_sideloads() - wasted_before;
}

void Simulation::run(const Trace& trace) {
  GC_OBS_TIMELINE(obs_tl);
  GC_OBS_TIMELINE_OPEN(obs_tl, {cache_.capacity()}, trace.size());
  const std::vector<ItemId>& accesses = trace.accesses();
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    access(accesses[i]);
    GC_OBS_TICK(obs_tl, 0, stats_);
  }
  GC_OBS_TIMELINE_CLOSE(obs_tl, 0, stats_);
}

SimStats simulate(const BlockMap& map, const Trace& trace,
                  ReplacementPolicy& policy, std::size_t capacity) {
  Simulation sim(map, policy, capacity);  // attach() first,
  policy.prepare(trace);                  // then offline knowledge,
  sim.run(trace);                         // then the run.
  return sim.stats();
}

SimStats simulate(const Workload& workload, ReplacementPolicy& policy,
                  std::size_t capacity) {
  GC_REQUIRE(workload.map != nullptr, "workload has no block map");
  return simulate(*workload.map, workload.trace, policy, capacity);
}

}  // namespace gcaching
