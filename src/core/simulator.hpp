// The simulation engines: verifying and fast.
//
// `Simulation` drives a policy one access at a time (the step-wise form is
// what adaptive adversaries need: they choose the next request by inspecting
// the live cache). `simulate()` runs a whole workload. Either way, all model
// invariants are enforced by `CacheContents`; a policy that cheats throws.
//
// `simulate_fast<Policy>()` is the whole-trace fast path: the policy type is
// a template parameter, so `on_hit` / `on_miss` devirtualize (every built-in
// policy is `final`) and inline into the loop, and per-access block ids are
// precomputed so the hot loop never makes a virtual BlockMap call. It runs
// the *same* CacheContents transitions in the same order as `Simulation`,
// so its SimStats are bit-identical to the verifying engine's — enforced by
// tests/test_fast_sim.cpp for every policy in the factory. Under the
// GC_FAST_SIM build configuration the hot-tier contracts additionally
// compile to nothing (see docs/PERF.md).
//
// `simulate_column<Policy>()` batches a whole capacity column of one
// (workload, policy) row into a single trace pass by advancing one cache
// lane per capacity together — the sweep engine's shared-pass mode
// (tests/test_sweep_batched.cpp holds it to bit-identical stats too).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/block_map.hpp"
#include "core/cache_contents.hpp"
#include "core/policy.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"
#include "obs/obs.hpp"
#include "util/contracts.hpp"

namespace gcaching {

class Simulation {
 public:
  /// Binds `policy` to a fresh cache of `capacity` items over `map`.
  /// Both `map` and `policy` must outlive the Simulation.
  Simulation(const BlockMap& map, ReplacementPolicy& policy,
             std::size_t capacity);

  /// Process one request. Hit/miss classification, policy callbacks, and
  /// stat updates happen here.
  void access(ItemId item);

  /// Process every request of a trace in order.
  void run(const Trace& trace);

  const CacheContents& cache() const noexcept { return cache_; }
  const SimStats& stats() const noexcept { return stats_; }
  ReplacementPolicy& policy() noexcept { return policy_; }

 private:
  const BlockMap& map_;
  ReplacementPolicy& policy_;
  CacheContents cache_;
  SimStats stats_;
};

/// One-shot convenience: simulate `trace` through `policy` with a cache of
/// `capacity`. Calls `policy.prepare(trace)` first (offline policies), then
/// `policy.reset()` is NOT called — pass a fresh policy per run.
SimStats simulate(const BlockMap& map, const Trace& trace,
                  ReplacementPolicy& policy, std::size_t capacity);

/// Workload-flavored overload.
SimStats simulate(const Workload& workload, ReplacementPolicy& policy,
                  std::size_t capacity);

namespace detail {

GC_HOT_REGION_BEGIN(fast_engine_per_access)

// The verifying engine charges eviction stats per miss transaction, so
// evictions a policy performs on *hits* (IBLP's item-layer reshuffling)
// are excluded from SimStats. Policies that do that declare it with
// `kEvictsOutsideMiss`; only for them do we pay the per-miss counter
// snapshots. Loads are only legal inside a miss for every policy, so the
// load counters are always safe to read once at the end.
template <typename Policy>
inline constexpr bool kHitPathEvictions = [] {
  if constexpr (requires { Policy::kEvictsOutsideMiss; })
    return Policy::kEvictsOutsideMiss;
  else
    return false;
}();

// Policies that only ever load the requested item can skip the hit
// taxonomy: every hit is temporal and the touched bit is already set
// (record_requested_hit contract-checks the claim in checking builds).
template <typename Policy>
inline constexpr bool kRequestedOnly = [] {
  if constexpr (requires { Policy::kRequestedLoadsOnly; })
    return Policy::kRequestedLoadsOnly;
  else
    return false;
}();

/// One access of the fast engine. Only the counters that cannot be derived
/// afterwards are maintained here: misses, spatial hits, and (for
/// kHitPathEvictions policies) the per-miss eviction deltas.
/// accesses / hits / temporal_hits follow arithmetically in
/// `fast_finalize`, and the load counters live in CacheContents already.
template <typename Policy>
inline void fast_step(CacheContents& cache, Policy& policy, SimStats& stats,
                      ItemId item, BlockId block) {
  if (cache.contains(item)) {
    if constexpr (kRequestedOnly<Policy>) {
      cache.record_requested_hit(item);
    } else {
      if (cache.record_hit(item) == HitKind::kSpatial) ++stats.spatial_hits;
    }
    policy.on_hit(item);
    return;
  }
  ++stats.misses;
  if constexpr (kHitPathEvictions<Policy>) {
    const std::uint64_t evictions_before = cache.evictions();
    const std::uint64_t wasted_before = cache.wasted_sideloads();
    cache.begin_miss(item, block);
    policy.on_miss(item);
    cache.end_miss();
    stats.evictions += cache.evictions() - evictions_before;
    stats.wasted_sideloads += cache.wasted_sideloads() - wasted_before;
  } else {
    cache.begin_miss(item, block);
    policy.on_miss(item);
    cache.end_miss();
  }
}

// Policies whose hit handling distributes over a whole stretch of
// consecutive same-block hits declare `kBatchesSameBlockRuns` and provide
// `on_hit_run(items, block)`, equivalent to calling on_hit per access in
// order. The engines then dispatch one policy call per maximal hit run
// instead of one per access — post-sampling and block-granular traces are
// dominated by exactly such runs. Batching policies must not touch
// residency on the hit path (no loads — illegal outside a miss anyway —
// and no evictions), which is what keeps the batched transition sequence
// identical to the per-access one.
template <typename Policy>
inline constexpr bool kBatchesRuns = [] {
  if constexpr (requires { Policy::kBatchesSameBlockRuns; })
    return Policy::kBatchesSameBlockRuns;
  else
    return false;
}();

/// One maximal stretch of consecutive hits, all to residents of `block`,
/// dispatched as a single policy call. The per-access CacheContents
/// transitions (flag updates, hit taxonomy, logical clock) are unchanged —
/// only the policy dispatch is coalesced.
template <typename Policy>
inline void fast_hit_run(CacheContents& cache, Policy& policy, SimStats& stats,
                         std::span<const ItemId> items, BlockId block) {
  static_assert(!kHitPathEvictions<Policy>,
                "a policy that evicts on hits cannot batch hit runs");
  for (const ItemId item : items) {
    GC_HOT_REQUIRE(cache.map().block_of(item) == block,
                   "batched hit run crosses a block boundary");
    GC_HOT_REQUIRE(cache.contains(item),
                   "batched hit run contains a non-resident item");
    if constexpr (kRequestedOnly<Policy>) {
      cache.record_requested_hit(item);
    } else {
      if (cache.record_hit(item) == HitKind::kSpatial) ++stats.spatial_hits;
    }
  }
  policy.on_hit_run(items, block);
}

/// Engine loop body for batching policies: accesses[0, n) all map to
/// `block` (one same-block run of the trace). Alternates maximal hit
/// stretches — handed to the policy in one `fast_hit_run` call — with
/// individual misses stepped exactly like `fast_step`'s miss path. A miss
/// may load siblings, so residency is re-probed when the stretch resumes.
template <typename Policy>
inline void fast_run(CacheContents& cache, Policy& policy, SimStats& stats,
                     const ItemId* accesses, std::size_t n, BlockId block) {
  std::size_t k = 0;
  while (k < n) {
    std::size_t h = k;
    while (h < n && cache.contains(accesses[h])) ++h;
    if (h > k)
      fast_hit_run(cache, policy, stats,
                   std::span<const ItemId>(accesses + k, h - k), block);
    if (h < n) {
      ++stats.misses;
      cache.begin_miss(accesses[h], block);
      policy.on_miss(accesses[h]);
      cache.end_miss();
      ++h;
    }
    k = h;
  }
}

/// Fills in the derivable counters after the last `fast_step`.
template <typename Policy>
inline void fast_finalize(const CacheContents& cache, SimStats& stats,
                          std::uint64_t num_accesses) {
  stats.accesses = num_accesses;
  // delayed_hits is only ever non-zero for the gcached async fill path
  // (src/gcached/sharded_cache.hpp), which reuses this finalizer; the
  // sequential engines keep it at zero, so `hits = accesses - misses` holds
  // there unchanged.
  stats.hits = stats.accesses - stats.misses - stats.delayed_hits;
  stats.temporal_hits = stats.hits - stats.spatial_hits;
  stats.items_loaded = cache.items_loaded();
  stats.sideloads = cache.sideloads();
  if constexpr (!kHitPathEvictions<Policy>) {
    stats.evictions = cache.evictions();
    stats.wasted_sideloads = cache.wasted_sideloads();
  }
}

GC_HOT_REGION_END(fast_engine_per_access)

/// Live running totals mid-run: the fast engines maintain only the
/// non-derivable counters in-loop, so a timeline snapshot applies
/// `fast_finalize` to a *copy* of the partial stats. Window-boundary cost
/// only — GC_OBS_TICK evaluates this expression solely when a window closes.
template <typename Policy>
inline SimStats fast_live_snapshot(const CacheContents& cache, SimStats partial,
                                   std::uint64_t accesses_so_far) {
  fast_finalize<Policy>(cache, partial, accesses_so_far);
  return partial;
}

}  // namespace detail

/// Fast-path engine. `Policy` is the concrete (final) policy class; the
/// caller supplies each access's block id via `block_ids` (see
/// Trace::precompute_block_ids / compute_block_ids). Performs the exact
/// access/hit/miss transitions of `Simulation::access`, including the
/// prepare() call of the one-shot `simulate()`, and returns bit-identical
/// SimStats.
template <typename Policy>
SimStats simulate_fast(const BlockMap& map, const Trace& trace,
                       Policy& policy, std::size_t capacity,
                       std::span<const BlockId> block_ids) {
  GC_REQUIRE(block_ids.size() == trace.size(),
             "one precomputed block id per access is required");
  CacheContents cache(map, capacity);
  policy.attach(map, cache);
  policy.prepare(trace);
  cache.set_load_time_tracking(false);  // cold feature; saves a store per load
  SimStats stats;
  GC_OBS_TIMELINE(obs_tl);
  GC_OBS_TIMELINE_OPEN(obs_tl, {capacity}, trace.size());
  const std::vector<ItemId>& accesses = trace.accesses();
  // The loop is kept in two copies so the common no-timeline case runs the
  // exact uninstrumented code: a tick inside the loop — even one that only
  // null-tests a hoisted pointer — forces the partial stats out of registers
  // at every call-reachable point and costs ~10% throughput.
  GC_HOT_REGION_BEGIN(fast_engine_loop)
  if (GC_OBS_ATTACHED(obs_tl)) {
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      detail::fast_step(cache, policy, stats, accesses[i], block_ids[i]);
      GC_OBS_TICK(obs_tl, 0,
                  detail::fast_live_snapshot<Policy>(cache, stats, i + 1));
    }
  } else if constexpr (detail::kBatchesRuns<Policy>) {
    // Same-block runs are detected from the precomputed block-id stream and
    // handed to the policy one run at a time. (The timeline branch above
    // stays per-access — a window boundary can fall inside a run.)
    std::size_t i = 0;
    while (i < accesses.size()) {
      const BlockId block = block_ids[i];
      std::size_t j = i + 1;
      while (j < accesses.size() && block_ids[j] == block) ++j;
      // Length-1 runs (the common case on traces without spatial locality)
      // take the plain per-access step; the run machinery only pays for
      // itself on actual stretches.
      if (j - i == 1)
        detail::fast_step(cache, policy, stats, accesses[i], block);
      else
        detail::fast_run(cache, policy, stats, accesses.data() + i, j - i,
                         block);
      i = j;
    }
  } else {
    for (std::size_t i = 0; i < accesses.size(); ++i)
      detail::fast_step(cache, policy, stats, accesses[i], block_ids[i]);
  }
  GC_HOT_REGION_END(fast_engine_loop)
  detail::fast_finalize<Policy>(cache, stats, accesses.size());
  GC_OBS_TIMELINE_CLOSE(obs_tl, 0, stats);
  return stats;
}

/// Capacity-batched column engine: all capacities of one (workload, policy)
/// row in a SINGLE pass over the trace. Each capacity keeps its own cache
/// state and policy instance (a "lane"); every access is stepped through all
/// lanes before the next access is read, so the trace and block-id streams
/// are pulled through the memory hierarchy once per row instead of once per
/// cell. Each lane runs the exact `fast_step` transitions of
/// `simulate_fast`, so stats[i] is bit-identical to a per-cell run at
/// capacities[i].
///
/// `make_policy(capacity)` must return a fresh `Policy` by value (guaranteed
/// elision — policies are neither copyable nor movable); it is called once
/// per capacity, letting capacity-dependent configs (e.g. IBLP partitions)
/// resolve per lane.
template <typename Policy, typename MakePolicy>
std::vector<SimStats> simulate_column(const BlockMap& map, const Trace& trace,
                                      std::span<const std::size_t> capacities,
                                      std::span<const BlockId> block_ids,
                                      MakePolicy&& make_policy) {
  GC_REQUIRE(block_ids.size() == trace.size(),
             "one precomputed block id per access is required");
  // CacheContents holds a reference and policies delete their copy ops, so
  // lanes live behind unique_ptr rather than in a flat vector.
  struct Lane {
    CacheContents cache;
    Policy policy;
    SimStats stats;
    Lane(const BlockMap& m, std::size_t capacity, MakePolicy& mk)
        : cache(m, capacity), policy(mk(capacity)) {}
  };
  std::vector<std::unique_ptr<Lane>> lanes;
  lanes.reserve(capacities.size());
  for (const std::size_t capacity : capacities) {
    lanes.push_back(std::make_unique<Lane>(map, capacity, make_policy));
    Lane& lane = *lanes.back();
    lane.policy.attach(map, lane.cache);
    lane.policy.prepare(trace);
    lane.cache.set_load_time_tracking(false);
  }
  GC_OBS_TIMELINE(obs_tl);
  GC_OBS_TIMELINE_OPEN(obs_tl, capacities, trace.size());
  const std::vector<ItemId>& accesses = trace.accesses();
  // Two copies for the same reason as the fast_engine_loop: the idle path
  // must stay tick-free so per-lane stats keep their registers.
  GC_HOT_REGION_BEGIN(column_engine_loop)
  if (GC_OBS_ATTACHED(obs_tl)) {
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      const ItemId item = accesses[i];
      const BlockId block = block_ids[i];
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        Lane& lane = *lanes[l];
        detail::fast_step(lane.cache, lane.policy, lane.stats, item, block);
        GC_OBS_TICK(obs_tl, l,
                    detail::fast_live_snapshot<Policy>(lane.cache, lane.stats,
                                                       i + 1));
      }
    }
  } else if constexpr (detail::kBatchesRuns<Policy>) {
    // Runs are detected once and replayed through every lane; each lane
    // re-probes residency itself, so per-lane stats stay bit-identical to
    // independent per-cell runs.
    std::size_t i = 0;
    while (i < accesses.size()) {
      const BlockId block = block_ids[i];
      std::size_t j = i + 1;
      while (j < accesses.size() && block_ids[j] == block) ++j;
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        Lane& lane = *lanes[l];
        // Same singleton fast path as simulate_fast: length-1 runs skip the
        // run machinery.
        if (j - i == 1)
          detail::fast_step(lane.cache, lane.policy, lane.stats, accesses[i],
                            block);
        else
          detail::fast_run(lane.cache, lane.policy, lane.stats,
                           accesses.data() + i, j - i, block);
      }
      i = j;
    }
  } else {
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      const ItemId item = accesses[i];
      const BlockId block = block_ids[i];
      for (std::size_t l = 0; l < lanes.size(); ++l) {
        Lane& lane = *lanes[l];
        detail::fast_step(lane.cache, lane.policy, lane.stats, item, block);
      }
    }
  }
  GC_HOT_REGION_END(column_engine_loop)
  std::vector<SimStats> out;
  out.reserve(lanes.size());
  for (std::size_t l = 0; l < lanes.size(); ++l) {
    Lane& lane = *lanes[l];
    detail::fast_finalize<Policy>(lane.cache, lane.stats, accesses.size());
    GC_OBS_TIMELINE_CLOSE(obs_tl, l, lane.stats);
    out.push_back(lane.stats);
  }
  return out;
}

/// Convenience overload: uses the trace's cached block ids when present
/// (Trace::precompute_block_ids), otherwise resolves them in a one-off pass
/// before entering the hot loop.
template <typename Policy>
SimStats simulate_fast(const BlockMap& map, const Trace& trace,
                       Policy& policy, std::size_t capacity) {
  std::vector<BlockId> storage;
  const std::span<const BlockId> ids = resolve_block_ids(map, trace, storage);
  return simulate_fast(map, trace, policy, capacity, ids);
}

}  // namespace gcaching
