// The simulation engines: verifying and fast.
//
// `Simulation` drives a policy one access at a time (the step-wise form is
// what adaptive adversaries need: they choose the next request by inspecting
// the live cache). `simulate()` runs a whole workload. Either way, all model
// invariants are enforced by `CacheContents`; a policy that cheats throws.
//
// `simulate_fast<Policy>()` is the whole-trace fast path: the policy type is
// a template parameter, so `on_hit` / `on_miss` devirtualize (every built-in
// policy is `final`) and inline into the loop, and per-access block ids are
// precomputed so the hot loop never makes a virtual BlockMap call. It runs
// the *same* CacheContents transitions in the same order as `Simulation`,
// so its SimStats are bit-identical to the verifying engine's — enforced by
// tests/test_fast_sim.cpp for every policy in the factory. Under the
// GC_FAST_SIM build configuration the hot-tier contracts additionally
// compile to nothing (see docs/PERF.md).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/block_map.hpp"
#include "core/cache_contents.hpp"
#include "core/policy.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"
#include "util/contracts.hpp"

namespace gcaching {

class Simulation {
 public:
  /// Binds `policy` to a fresh cache of `capacity` items over `map`.
  /// Both `map` and `policy` must outlive the Simulation.
  Simulation(const BlockMap& map, ReplacementPolicy& policy,
             std::size_t capacity);

  /// Process one request. Hit/miss classification, policy callbacks, and
  /// stat updates happen here.
  void access(ItemId item);

  /// Process every request of a trace in order.
  void run(const Trace& trace);

  const CacheContents& cache() const noexcept { return cache_; }
  const SimStats& stats() const noexcept { return stats_; }
  ReplacementPolicy& policy() noexcept { return policy_; }

 private:
  const BlockMap& map_;
  ReplacementPolicy& policy_;
  CacheContents cache_;
  SimStats stats_;
};

/// One-shot convenience: simulate `trace` through `policy` with a cache of
/// `capacity`. Calls `policy.prepare(trace)` first (offline policies), then
/// `policy.reset()` is NOT called — pass a fresh policy per run.
SimStats simulate(const BlockMap& map, const Trace& trace,
                  ReplacementPolicy& policy, std::size_t capacity);

/// Workload-flavored overload.
SimStats simulate(const Workload& workload, ReplacementPolicy& policy,
                  std::size_t capacity);

/// Fast-path engine. `Policy` is the concrete (final) policy class; the
/// caller supplies each access's block id via `block_ids` (see
/// Trace::precompute_block_ids / compute_block_ids). Performs the exact
/// access/hit/miss transitions of `Simulation::access`, including the
/// prepare() call of the one-shot `simulate()`, and returns bit-identical
/// SimStats.
template <typename Policy>
SimStats simulate_fast(const BlockMap& map, const Trace& trace,
                       Policy& policy, std::size_t capacity,
                       std::span<const BlockId> block_ids) {
  GC_REQUIRE(block_ids.size() == trace.size(),
             "one precomputed block id per access is required");
  CacheContents cache(map, capacity);
  policy.attach(map, cache);
  policy.prepare(trace);
  cache.set_load_time_tracking(false);  // cold feature; saves a store per load
  SimStats stats;
  const std::vector<ItemId>& accesses = trace.accesses();
  // The verifying engine charges eviction stats per miss transaction, so
  // evictions a policy performs on *hits* (IBLP's item-layer reshuffling)
  // are excluded from SimStats. Policies that do that declare it with
  // `kEvictsOutsideMiss`; only for them do we pay the per-miss counter
  // snapshots. Loads are only legal inside a miss for every policy, so the
  // load counters are always safe to read once at the end.
  constexpr bool kHitPathEvictions = [] {
    if constexpr (requires { Policy::kEvictsOutsideMiss; })
      return Policy::kEvictsOutsideMiss;
    else
      return false;
  }();
  // Policies that only ever load the requested item can skip the hit
  // taxonomy: every hit is temporal and the touched bit is already set
  // (record_requested_hit contract-checks the claim in checking builds).
  constexpr bool kRequestedOnly = [] {
    if constexpr (requires { Policy::kRequestedLoadsOnly; })
      return Policy::kRequestedLoadsOnly;
    else
      return false;
  }();
  // Only the counters that cannot be derived afterwards are maintained in
  // the loop: misses, spatial hits, and (for kHitPathEvictions policies)
  // the per-miss eviction deltas. accesses / hits / temporal_hits follow
  // arithmetically, and the load counters live in CacheContents already.
  for (std::size_t i = 0; i < accesses.size(); ++i) {
    const ItemId item = accesses[i];
    if (cache.contains(item)) {
      if constexpr (kRequestedOnly) {
        cache.record_requested_hit(item);
      } else {
        if (cache.record_hit(item) == HitKind::kSpatial) ++stats.spatial_hits;
      }
      policy.on_hit(item);
      continue;
    }
    ++stats.misses;
    if constexpr (kHitPathEvictions) {
      const std::uint64_t evictions_before = cache.evictions();
      const std::uint64_t wasted_before = cache.wasted_sideloads();
      cache.begin_miss(item, block_ids[i]);
      policy.on_miss(item);
      cache.end_miss();
      stats.evictions += cache.evictions() - evictions_before;
      stats.wasted_sideloads += cache.wasted_sideloads() - wasted_before;
    } else {
      cache.begin_miss(item, block_ids[i]);
      policy.on_miss(item);
      cache.end_miss();
    }
  }
  stats.accesses = accesses.size();
  stats.hits = stats.accesses - stats.misses;
  stats.temporal_hits = stats.hits - stats.spatial_hits;
  stats.items_loaded = cache.items_loaded();
  stats.sideloads = cache.sideloads();
  if constexpr (!kHitPathEvictions) {
    stats.evictions = cache.evictions();
    stats.wasted_sideloads = cache.wasted_sideloads();
  }
  return stats;
}

/// Convenience overload: uses the trace's cached block ids when present
/// (Trace::precompute_block_ids), otherwise resolves them in a one-off pass
/// before entering the hot loop.
template <typename Policy>
SimStats simulate_fast(const BlockMap& map, const Trace& trace,
                       Policy& policy, std::size_t capacity) {
  if (trace.has_block_ids(map))
    return simulate_fast(map, trace, policy, capacity, trace.block_ids());
  const std::vector<BlockId> ids = compute_block_ids(map, trace);
  return simulate_fast(map, trace, policy, capacity,
                       std::span<const BlockId>(ids));
}

}  // namespace gcaching
