// The verifying simulator.
//
// `Simulation` drives a policy one access at a time (the step-wise form is
// what adaptive adversaries need: they choose the next request by inspecting
// the live cache). `simulate()` runs a whole workload. Either way, all model
// invariants are enforced by `CacheContents`; a policy that cheats throws.
#pragma once

#include <cstddef>

#include "core/block_map.hpp"
#include "core/cache_contents.hpp"
#include "core/policy.hpp"
#include "core/stats.hpp"
#include "core/trace.hpp"

namespace gcaching {

class Simulation {
 public:
  /// Binds `policy` to a fresh cache of `capacity` items over `map`.
  /// Both `map` and `policy` must outlive the Simulation.
  Simulation(const BlockMap& map, ReplacementPolicy& policy,
             std::size_t capacity);

  /// Process one request. Hit/miss classification, policy callbacks, and
  /// stat updates happen here.
  void access(ItemId item);

  /// Process every request of a trace in order.
  void run(const Trace& trace);

  const CacheContents& cache() const noexcept { return cache_; }
  const SimStats& stats() const noexcept { return stats_; }
  ReplacementPolicy& policy() noexcept { return policy_; }

 private:
  const BlockMap& map_;
  ReplacementPolicy& policy_;
  CacheContents cache_;
  SimStats stats_;
};

/// One-shot convenience: simulate `trace` through `policy` with a cache of
/// `capacity`. Calls `policy.prepare(trace)` first (offline policies), then
/// `policy.reset()` is NOT called — pass a fresh policy per run.
SimStats simulate(const BlockMap& map, const Trace& trace,
                  ReplacementPolicy& policy, std::size_t capacity);

/// Workload-flavored overload.
SimStats simulate(const Workload& workload, ReplacementPolicy& policy,
                  std::size_t capacity);

}  // namespace gcaching
