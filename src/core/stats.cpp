#include "core/stats.hpp"

#include <iomanip>
#include <sstream>

namespace gcaching {

std::string SimStats::summary() const {
  std::ostringstream os;
  os << "accesses=" << accesses << " misses=" << misses << " (rate "
     << std::fixed << std::setprecision(4) << miss_rate() << ") hits=" << hits
     << " [temporal=" << temporal_hits << " spatial=" << spatial_hits
     << "] loaded=" << items_loaded << " sideloads=" << sideloads
     << " evictions=" << evictions << " wasted=" << wasted_sideloads;
  if (delayed_hits != 0) {
    os << " delayed=" << delayed_hits << " [free=" << free_delayed_hits
       << " wait_ns=" << delayed_hit_wait_ns << "]";
  }
  return os.str();
}

}  // namespace gcaching
