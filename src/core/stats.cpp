#include "core/stats.hpp"

#include <iomanip>
#include <sstream>

namespace gcaching {

std::string SimStats::summary() const {
  std::ostringstream os;
  os << "accesses=" << accesses << " misses=" << misses << " (rate "
     << std::fixed << std::setprecision(4) << miss_rate() << ") hits=" << hits
     << " [temporal=" << temporal_hits << " spatial=" << spatial_hits
     << "] loaded=" << items_loaded << " sideloads=" << sideloads
     << " evictions=" << evictions << " wasted=" << wasted_sideloads;
  return os.str();
}

}  // namespace gcaching
