#include "core/trace_io.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/contracts.hpp"

namespace gcaching {

namespace {

[[noreturn]] void parse_fail(const std::string& detail) {
  throw std::runtime_error("gcworkload parse error: " + detail);
}

/// Reads the next non-comment, non-empty line.
bool next_content_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void save_workload(std::ostream& os, const Workload& w) {
  GC_REQUIRE(w.map != nullptr, "workload has no block map");
  os << "gcworkload v1\n";
  if (!w.name.empty()) os << "name " << w.name << '\n';
  os << "items " << w.map->num_items() << " blocks " << w.map->num_blocks()
     << " maxblock " << w.map->max_block_size() << '\n';
  if (dynamic_cast<const UniformBlockMap*>(w.map.get()) != nullptr) {
    os << "uniform " << w.map->max_block_size() << '\n';
  } else {
    for (BlockId j = 0; j < w.map->num_blocks(); ++j) {
      os << "block " << j;
      for (ItemId it : w.map->items_of(j)) os << ' ' << it;
      os << '\n';
    }
  }
  os << "trace " << w.trace.size() << '\n';
  std::size_t col = 0;
  for (ItemId it : w.trace) {
    os << it << ((++col % 16 == 0) ? '\n' : ' ');
  }
  if (col % 16 != 0) os << '\n';
}

Workload load_workload(std::istream& is) {
  std::string line;
  if (!next_content_line(is, line) || line.rfind("gcworkload v1", 0) != 0)
    parse_fail("missing 'gcworkload v1' header");

  Workload w;
  std::size_t n_items = 0, n_blocks = 0, max_block = 0, trace_len = 0;
  std::vector<std::vector<ItemId>> blocks;
  bool uniform = false;
  std::size_t uniform_b = 0;

  while (next_content_line(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "name") {
      std::string rest;
      std::getline(ls, rest);
      const auto first = rest.find_first_not_of(' ');
      w.name = (first == std::string::npos) ? "" : rest.substr(first);
    } else if (key == "items") {
      std::string kw1, kw2;
      if (!(ls >> n_items >> kw1 >> n_blocks >> kw2 >> max_block) ||
          kw1 != "blocks" || kw2 != "maxblock")
        parse_fail("malformed 'items' line: " + line);
    } else if (key == "uniform") {
      if (!(ls >> uniform_b)) parse_fail("malformed 'uniform' line");
      uniform = true;
    } else if (key == "block") {
      BlockId j = 0;
      if (!(ls >> j)) parse_fail("malformed 'block' line");
      if (j != blocks.size()) parse_fail("block ids must appear in order");
      std::vector<ItemId> items;
      ItemId it = 0;
      while (ls >> it) items.push_back(it);
      if (items.empty()) parse_fail("empty block in input");
      blocks.push_back(std::move(items));
    } else if (key == "trace") {
      if (!(ls >> trace_len)) parse_fail("malformed 'trace' line");
      std::vector<ItemId> acc;
      acc.reserve(trace_len);
      ItemId it = 0;
      while (acc.size() < trace_len && is >> it) acc.push_back(it);
      if (acc.size() != trace_len)
        parse_fail("trace shorter than declared length");
      w.trace = Trace(std::move(acc));
      break;  // trace is the final section
    } else {
      parse_fail("unknown directive: " + key);
    }
  }

  if (n_items == 0) parse_fail("missing 'items' line");
  if (uniform) {
    w.map = std::make_shared<UniformBlockMap>(n_items, uniform_b);
  } else {
    if (blocks.empty()) parse_fail("missing block partition");
    w.map = std::make_shared<ExplicitBlockMap>(std::move(blocks));
  }
  if (w.map->num_blocks() != n_blocks)
    parse_fail("block count does not match header");
  if (w.map->max_block_size() > max_block)
    parse_fail("block size exceeds declared maxblock");
  w.validate();
  return w;
}

void save_workload_file(const std::string& path, const Workload& w) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_workload(os, w);
}

Workload load_workload_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_workload(is);
}

}  // namespace gcaching
