#include "core/trace_io.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define GC_TRACE_BIN_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/contracts.hpp"

namespace gcaching {

namespace {

[[noreturn]] void parse_fail(const std::string& detail) {
  throw std::runtime_error("gcworkload parse error: " + detail);
}

/// Reads the next non-comment, non-empty line.
bool next_content_line(std::istream& is, std::string& line) {
  while (std::getline(is, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == '#') continue;
    return true;
  }
  return false;
}

}  // namespace

void save_workload(std::ostream& os, const Workload& w) {
  GC_REQUIRE(w.map != nullptr, "workload has no block map");
  os << "gcworkload v1\n";
  if (!w.name.empty()) os << "name " << w.name << '\n';
  os << "items " << w.map->num_items() << " blocks " << w.map->num_blocks()
     << " maxblock " << w.map->max_block_size() << '\n';
  if (dynamic_cast<const UniformBlockMap*>(w.map.get()) != nullptr) {
    os << "uniform " << w.map->max_block_size() << '\n';
  } else {
    for (BlockId j = 0; j < w.map->num_blocks(); ++j) {
      os << "block " << j;
      for (ItemId it : w.map->items_of(j)) os << ' ' << it;
      os << '\n';
    }
  }
  os << "trace " << w.trace.size() << '\n';
  std::size_t col = 0;
  for (ItemId it : w.trace) {
    os << it << ((++col % 16 == 0) ? '\n' : ' ');
  }
  if (col % 16 != 0) os << '\n';
}

Workload load_workload(std::istream& is) {
  std::string line;
  if (!next_content_line(is, line) || line.rfind("gcworkload v1", 0) != 0)
    parse_fail("missing 'gcworkload v1' header");

  Workload w;
  std::size_t n_items = 0, n_blocks = 0, max_block = 0, trace_len = 0;
  std::vector<std::vector<ItemId>> blocks;
  bool uniform = false;
  std::size_t uniform_b = 0;

  while (next_content_line(is, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "name") {
      std::string rest;
      std::getline(ls, rest);
      const auto first = rest.find_first_not_of(' ');
      w.name = (first == std::string::npos) ? "" : rest.substr(first);
    } else if (key == "items") {
      std::string kw1, kw2;
      if (!(ls >> n_items >> kw1 >> n_blocks >> kw2 >> max_block) ||
          kw1 != "blocks" || kw2 != "maxblock")
        parse_fail("malformed 'items' line: " + line);
    } else if (key == "uniform") {
      if (!(ls >> uniform_b)) parse_fail("malformed 'uniform' line");
      uniform = true;
    } else if (key == "block") {
      BlockId j = 0;
      if (!(ls >> j)) parse_fail("malformed 'block' line");
      if (j != blocks.size()) parse_fail("block ids must appear in order");
      std::vector<ItemId> items;
      ItemId it = 0;
      while (ls >> it) items.push_back(it);
      if (items.empty()) parse_fail("empty block in input");
      blocks.push_back(std::move(items));
    } else if (key == "trace") {
      if (!(ls >> trace_len)) parse_fail("malformed 'trace' line");
      std::vector<ItemId> acc;
      acc.reserve(trace_len);
      ItemId it = 0;
      while (acc.size() < trace_len && is >> it) acc.push_back(it);
      if (acc.size() != trace_len)
        parse_fail("trace shorter than declared length");
      w.trace = Trace(std::move(acc));
      break;  // trace is the final section
    } else {
      parse_fail("unknown directive: " + key);
    }
  }

  if (n_items == 0) parse_fail("missing 'items' line");
  if (uniform) {
    w.map = std::make_shared<UniformBlockMap>(n_items, uniform_b);
  } else {
    if (blocks.empty()) parse_fail("missing block partition");
    w.map = std::make_shared<ExplicitBlockMap>(std::move(blocks));
  }
  if (w.map->num_blocks() != n_blocks)
    parse_fail("block count does not match header");
  if (w.map->max_block_size() > max_block)
    parse_fail("block size exceeds declared maxblock");
  w.validate();
  return w;
}

void save_workload_file(const std::string& path, const Workload& w) {
  std::ofstream os(path, std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for write: " + path);
  save_workload(os, w);
}

Workload load_workload_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for read: " + path);
  return load_workload(is);
}

// ---- Binary `gctrace` format ----------------------------------------------
//
// Layout (all integers little-endian):
//   byte  0: magic "GCTB"
//   byte  4: u32 version (currently 1)
//   byte  8: u64 num_items
//   byte 16: u64 block_size          (uniform partition parameter B)
//   byte 24: u64 num_accesses
//   byte 32: u64 name_len            (<= kMaxNameLen)
//   byte 40: name bytes, zero-padded to a multiple of 8
//   then   : num_accesses fixed-width u32 item-id records
// The 8-byte name padding keeps the record array 4-byte aligned for the
// mmap path.

namespace {

constexpr char kTraceBinMagic[4] = {'G', 'C', 'T', 'B'};
constexpr std::uint32_t kTraceBinVersion = 1;
constexpr std::size_t kTraceBinHeaderSize = 40;
constexpr std::uint64_t kMaxNameLen = 1 << 16;
constexpr std::size_t kRecordSize = sizeof(ItemId);

std::size_t padded_name_len(std::uint64_t name_len) {
  return static_cast<std::size_t>((name_len + 7) / 8 * 8);
}

[[noreturn]] void bin_fail(const std::string& path, const std::string& what) {
  throw std::runtime_error("gctrace error: " + path + ": " + what);
}

void put_u32(std::string& buf, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void put_u64(std::string& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    buf.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void save_trace_bin_file(const std::string& path, const Workload& w) {
  GC_REQUIRE(w.map != nullptr, "workload has no block map");
  const auto* uniform = dynamic_cast<const UniformBlockMap*>(w.map.get());
  GC_REQUIRE(uniform != nullptr,
             "gctrace stores uniform partitions only — save explicit "
             "partitions in the text format");
  GC_REQUIRE(w.name.size() <= kMaxNameLen, "workload name too long");

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("cannot open for write: " + path);

  std::string header;
  header.append(kTraceBinMagic, sizeof(kTraceBinMagic));
  put_u32(header, kTraceBinVersion);
  put_u64(header, w.map->num_items());
  put_u64(header, w.map->max_block_size());
  put_u64(header, w.trace.size());
  put_u64(header, w.name.size());
  header += w.name;
  header.resize(kTraceBinHeaderSize + padded_name_len(w.name.size()), '\0');
  os.write(header.data(), static_cast<std::streamsize>(header.size()));

  if constexpr (std::endian::native == std::endian::little) {
    // Record array is already the on-disk layout; write it in one go.
    os.write(reinterpret_cast<const char*>(w.trace.accesses().data()),
             static_cast<std::streamsize>(w.trace.size() * kRecordSize));
  } else {
    std::string rec;
    rec.reserve(w.trace.size() * kRecordSize);
    for (const ItemId item : w.trace) put_u32(rec, item);
    os.write(rec.data(), static_cast<std::streamsize>(rec.size()));
  }
  if (!os) throw std::runtime_error("write failed: " + path);
}

bool is_trace_bin_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return false;
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  return is.gcount() == sizeof(magic) &&
         std::memcmp(magic, kTraceBinMagic, sizeof(magic)) == 0;
}

TraceView::TraceView(const std::string& path) {
  // Read and validate the fixed header + name through a plain stream first;
  // only the record array is mapped/bulk-read.
  std::ifstream is(path, std::ios::binary);
  if (!is) bin_fail(path, "cannot open for read");
  is.seekg(0, std::ios::end);
  const std::uint64_t file_size = static_cast<std::uint64_t>(is.tellg());
  is.seekg(0, std::ios::beg);

  if (file_size < kTraceBinHeaderSize)
    bin_fail(path, "file is " + std::to_string(file_size) +
                       " bytes — shorter than the " +
                       std::to_string(kTraceBinHeaderSize) +
                       "-byte gctrace header");
  unsigned char header[kTraceBinHeaderSize];
  is.read(reinterpret_cast<char*>(header), kTraceBinHeaderSize);
  if (std::memcmp(header, kTraceBinMagic, sizeof(kTraceBinMagic)) != 0)
    bin_fail(path, "bad magic — not a gctrace file");
  const std::uint32_t version = get_u32(header + 4);
  if (version != kTraceBinVersion)
    bin_fail(path, "unsupported gctrace version " + std::to_string(version));
  num_items_ = get_u64(header + 8);
  block_size_ = get_u64(header + 16);
  const std::uint64_t num_accesses = get_u64(header + 24);
  const std::uint64_t name_len = get_u64(header + 32);
  if (num_items_ == 0 || num_items_ > std::uint64_t{1} << 32)
    bin_fail(path, "invalid num_items " + std::to_string(num_items_));
  if (block_size_ == 0 || block_size_ > num_items_)
    bin_fail(path, "invalid block_size " + std::to_string(block_size_));
  if (name_len > kMaxNameLen)
    bin_fail(path, "name length " + std::to_string(name_len) +
                       " exceeds the format limit");

  const std::uint64_t records_off =
      kTraceBinHeaderSize + padded_name_len(name_len);
  const std::uint64_t expected = records_off + num_accesses * kRecordSize;
  if (file_size != expected) {
    // The single loudest failure mode of a binary format is a short file
    // read as a shorter trace. Report exactly where the stream ends.
    const std::uint64_t record_bytes =
        file_size > records_off ? file_size - records_off : 0;
    bin_fail(path,
             (file_size < expected ? "truncated: " : "trailing garbage: ") +
                 std::string("file is ") + std::to_string(file_size) +
                 " bytes, expected " + std::to_string(expected) + " (" +
                 std::to_string(num_accesses) + " records x " +
                 std::to_string(kRecordSize) + " bytes starting at byte " +
                 std::to_string(records_off) + "; file ends after " +
                 std::to_string(record_bytes / kRecordSize) +
                 " complete records at byte " + std::to_string(file_size) +
                 ")");
  }

  name_.resize(name_len);
  if (name_len > 0) {
    is.read(name_.data(), static_cast<std::streamsize>(name_len));
    if (!is) bin_fail(path, "cannot read name field");
  }
  num_accesses_ = static_cast<std::size_t>(num_accesses);

#if defined(GC_TRACE_BIN_MMAP)
  if constexpr (std::endian::native == std::endian::little) {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd >= 0) {
      void* addr = nullptr;
      if (file_size > 0)
        addr = ::mmap(nullptr, static_cast<std::size_t>(file_size), PROT_READ,
                      MAP_PRIVATE, fd, 0);
      ::close(fd);
      if (addr != nullptr && addr != MAP_FAILED) {
        map_addr_ = addr;
        map_len_ = static_cast<std::size_t>(file_size);
        data_ = reinterpret_cast<const ItemId*>(
            static_cast<const char*>(addr) + records_off);
        // Sequential streaming is the expected access pattern.
        ::madvise(addr, map_len_, MADV_SEQUENTIAL);
        return;
      }
    }
    // fall through to the owned-buffer path on any mmap failure
  }
#endif
  owned_.resize(num_accesses_);
  is.seekg(static_cast<std::streamoff>(records_off), std::ios::beg);
  if (num_accesses_ > 0) {
    if constexpr (std::endian::native == std::endian::little) {
      is.read(reinterpret_cast<char*>(owned_.data()),
              static_cast<std::streamsize>(num_accesses_ * kRecordSize));
    } else {
      std::vector<unsigned char> raw(num_accesses_ * kRecordSize);
      is.read(reinterpret_cast<char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
      for (std::size_t i = 0; i < num_accesses_; ++i)
        owned_[i] = get_u32(raw.data() + i * kRecordSize);
    }
    if (!is) bin_fail(path, "cannot read record stream");
  }
  data_ = owned_.data();
}

TraceView::~TraceView() { release(); }

void TraceView::release() noexcept {
#if defined(GC_TRACE_BIN_MMAP)
  if (map_addr_ != nullptr) ::munmap(map_addr_, map_len_);
#endif
  map_addr_ = nullptr;
  map_len_ = 0;
  data_ = nullptr;
}

TraceView::TraceView(TraceView&& other) noexcept
    : data_(other.data_),
      num_accesses_(other.num_accesses_),
      num_items_(other.num_items_),
      block_size_(other.block_size_),
      name_(std::move(other.name_)),
      owned_(std::move(other.owned_)),
      map_addr_(other.map_addr_),
      map_len_(other.map_len_) {
  if (!owned_.empty()) data_ = owned_.data();
  other.map_addr_ = nullptr;
  other.map_len_ = 0;
  other.data_ = nullptr;
  other.num_accesses_ = 0;
}

TraceView& TraceView::operator=(TraceView&& other) noexcept {
  if (this == &other) return *this;
  release();
  data_ = other.data_;
  num_accesses_ = other.num_accesses_;
  num_items_ = other.num_items_;
  block_size_ = other.block_size_;
  name_ = std::move(other.name_);
  owned_ = std::move(other.owned_);
  map_addr_ = other.map_addr_;
  map_len_ = other.map_len_;
  if (!owned_.empty()) data_ = owned_.data();
  other.map_addr_ = nullptr;
  other.map_len_ = 0;
  other.data_ = nullptr;
  other.num_accesses_ = 0;
  return *this;
}

std::shared_ptr<const BlockMap> TraceView::make_map() const {
  return make_uniform_blocks(static_cast<std::size_t>(num_items_),
                             static_cast<std::size_t>(block_size_));
}

Workload TraceView::materialize() const {
  Workload w;
  w.map = make_map();
  const std::span<const ItemId> acc = accesses();
  w.trace = Trace(std::vector<ItemId>(acc.begin(), acc.end()));
  w.name = name_;
  w.validate();
  return w;
}

}  // namespace gcaching
