// The online replacement-policy interface.
//
// Policies are reactive: the simulator classifies each access as hit or miss
// against the ground-truth `CacheContents`, then invokes the corresponding
// callback. On a miss, the policy must bring the requested item in (possibly
// side-loading more of its block) using only `CacheContents::load/evict`,
// which enforce the model's rules.
//
// Offline policies (e.g. Belady) additionally receive the whole trace via
// `prepare()` before simulation starts.
//
// Opt-in fast-engine traits. The template engines in core/simulator.hpp
// detect these `static constexpr bool` members structurally (no virtual
// surface; the verifying engine ignores them). Each is a *claim* about the
// policy's behaviour, checked by GC_HOT_REQUIREs in the verifying build and
// audited by tools/gclint:
//
//   * kRequestedLoadsOnly — on_miss loads only the requested item, so every
//     hit is statically temporal and the hit path reduces to a clock tick.
//   * kEvictsOutsideMiss — the policy evicts during hits, so eviction stats
//     must be snapshotted per miss transaction.
//   * kIsStackPolicy — obeys Mattson inclusion; capacity sweeps may use one
//     stack-distance pass instead of per-capacity simulation.
//   * kBatchesSameBlockRuns — the policy also defines
//     `on_hit_run(std::span<const ItemId> items)`, equivalent to calling
//     on_hit per element, and its on_hit never changes residency (no loads —
//     illegal outside a miss anyway — and no evictions). The fast engines
//     then hand each maximal stretch of resident same-block accesses to
//     on_hit_run in one call, letting the policy amortize per-access work
//     (e.g. one frequency-bucket update covering the whole stretch).
#pragma once

#include <string>

#include "core/block_map.hpp"
#include "core/cache_contents.hpp"
#include "core/trace.hpp"
#include "core/types.hpp"

namespace gcaching {

class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  ReplacementPolicy() = default;
  ReplacementPolicy(const ReplacementPolicy&) = delete;
  ReplacementPolicy& operator=(const ReplacementPolicy&) = delete;

  /// Called once before simulation. `cache` outlives the simulation; the
  /// policy should size its metadata from `map` / `cache.capacity()` here.
  virtual void attach(const BlockMap& map, CacheContents& cache) = 0;

  /// Offline knowledge hook, invoked after attach() and before the first
  /// access; the default (online policies) ignores it.
  virtual void prepare(const Trace& /*trace*/) {}

  /// The accessed item was resident. Update recency/frequency metadata.
  virtual void on_hit(ItemId item) = 0;

  /// The accessed item was not resident; a miss transaction is open.
  /// Must leave `item` resident (load it, evicting as necessary).
  virtual void on_miss(ItemId item) = 0;

  /// Forget all learned state (cache contents are reset by the simulator).
  virtual void reset() = 0;

  /// Stable display name, e.g. "item-lru" or "iblp(i=512,b=512)".
  virtual std::string name() const = 0;

 protected:
  /// Valid after attach().
  const BlockMap& map() const { return *map_; }
  CacheContents& cache() const { return *cache_; }
  bool attached() const noexcept { return cache_ != nullptr; }

  /// Subclasses call this from their attach() override.
  void set_attachment(const BlockMap& map, CacheContents& cache) {
    map_ = &map;
    cache_ = &cache;
  }

 private:
  const BlockMap* map_ = nullptr;
  CacheContents* cache_ = nullptr;
};

}  // namespace gcaching
