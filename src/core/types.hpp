// Fundamental identifiers of the Granularity-Change Caching model.
//
// The model (Definition 1 of the paper): a universe of unit-size items is
// partitioned into disjoint *blocks* of at most B items. A cache of size k
// serves a trace of item requests; a request to a resident item is free, a
// request to a non-resident item costs 1 and may load *any subset of the
// requested item's block containing that item* for that single unit cost.
#pragma once

#include <cstdint>
#include <limits>

namespace gcaching {

/// Identifies a data item (unit size). Dense: 0 .. num_items-1.
using ItemId = std::uint32_t;

/// Identifies a block (a set of <= B items). Dense: 0 .. num_blocks-1.
using BlockId = std::uint32_t;

/// Sentinel for "no item".
inline constexpr ItemId kInvalidItem = std::numeric_limits<ItemId>::max();

/// Sentinel for "no block".
inline constexpr BlockId kInvalidBlock = std::numeric_limits<BlockId>::max();

/// Logical time measured in accesses since the start of a trace.
using AccessTime = std::uint64_t;

}  // namespace gcaching
