// Serialization of workloads (block partition + trace), in two formats.
//
// Text (`gcworkload v1`, line-oriented, '#' comments allowed):
//   gcworkload v1
//   name <free text to end of line>
//   items <n> blocks <m> maxblock <B>
//   block <j> <item> <item> ...        (m lines; omitted for uniform maps)
//   uniform <B>                        (alternative to the m block lines)
//   trace <len>
//   <item> <item> ... (whitespace separated, any line breaks)
//
// The text format is deliberately trivial: reproduction artifacts should be
// greppable and diffable. It is also ~10 bytes per access, parsed at text
// speed — unusable at production trace scale. The binary `gctrace` format
// (docs/FORMATS.md) is the scale path: a fixed 40-byte header (uniform
// partitions only), a zero-padded name, then one fixed-width little-endian
// u32 record per access. `TraceView` maps the record array directly
// (mmap-backed on POSIX), so samplers and analyzers stream a
// billion-request file sequentially without materializing it in RAM.
// Loaders of both formats fail loudly on short/corrupt input — a truncated
// record stream reports the expected size, the actual size, and the byte
// offset where the stream ends, never a silently shorter trace.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>

#include "core/trace.hpp"

namespace gcaching {

/// Serialize a workload to a stream. Uniform maps are stored compactly.
void save_workload(std::ostream& os, const Workload& w);

/// Parse a workload; throws std::runtime_error on malformed input.
Workload load_workload(std::istream& is);

/// File-path convenience wrappers.
void save_workload_file(const std::string& path, const Workload& w);
Workload load_workload_file(const std::string& path);

// ---- Binary `gctrace` format ----------------------------------------------

/// Write `w` as a binary gctrace file. The workload's partition must be
/// uniform (UniformBlockMap) — the header stores (num_items, block_size)
/// instead of an explicit partition; explicit partitions stay in the text
/// format. Throws std::runtime_error on I/O failure.
void save_trace_bin_file(const std::string& path, const Workload& w);

/// True when `path` starts with the gctrace magic — used by tools that
/// accept either format on one flag.
bool is_trace_bin_file(const std::string& path);

/// Read-only view of a binary gctrace file. On POSIX little-endian hosts
/// the record array is memory-mapped, so `accesses()` spans the file
/// itself: opening is O(1), and a sequential pass streams through the page
/// cache regardless of file size. Elsewhere the records are read into an
/// owned buffer. All header/size validation happens in the constructor —
/// truncation and corruption throw std::runtime_error with the offending
/// byte offset and the expected record size.
class TraceView {
 public:
  explicit TraceView(const std::string& path);
  ~TraceView();

  TraceView(TraceView&& other) noexcept;
  TraceView& operator=(TraceView&& other) noexcept;
  TraceView(const TraceView&) = delete;
  TraceView& operator=(const TraceView&) = delete;

  /// The whole record array, one ItemId per access, in trace order.
  std::span<const ItemId> accesses() const noexcept {
    return {data_, num_accesses_};
  }
  std::size_t size() const noexcept { return num_accesses_; }

  std::uint64_t num_items() const noexcept { return num_items_; }
  std::uint64_t block_size() const noexcept { return block_size_; }
  const std::string& name() const noexcept { return name_; }

  /// A fresh UniformBlockMap matching the header geometry.
  std::shared_ptr<const BlockMap> make_map() const;

  /// Materialize the whole file as an in-RAM workload (copies the record
  /// array — use only when the trace is meant to fit; samplers should
  /// filter from accesses() instead).
  Workload materialize() const;

 private:
  void release() noexcept;

  const ItemId* data_ = nullptr;
  std::size_t num_accesses_ = 0;
  std::uint64_t num_items_ = 0;
  std::uint64_t block_size_ = 0;
  std::string name_;
  std::vector<ItemId> owned_;   // non-mmap fallback
  void* map_addr_ = nullptr;    // mmap base (whole file), or nullptr
  std::size_t map_len_ = 0;
};

}  // namespace gcaching
