// Text serialization of workloads (block partition + trace).
//
// Format (line-oriented, '#' comments allowed):
//   gcworkload v1
//   name <free text to end of line>
//   items <n> blocks <m> maxblock <B>
//   block <j> <item> <item> ...        (m lines; omitted for uniform maps)
//   uniform <B>                        (alternative to the m block lines)
//   trace <len>
//   <item> <item> ... (whitespace separated, any line breaks)
//
// The format is deliberately trivial: reproduction artifacts should be
// greppable and diffable.
#pragma once

#include <iosfwd>
#include <string>

#include "core/trace.hpp"

namespace gcaching {

/// Serialize a workload to a stream. Uniform maps are stored compactly.
void save_workload(std::ostream& os, const Workload& w);

/// Parse a workload; throws std::runtime_error on malformed input.
Workload load_workload(std::istream& is);

/// File-path convenience wrappers.
void save_workload_file(const std::string& path, const Workload& w);
Workload load_workload_file(const std::string& path);

}  // namespace gcaching
