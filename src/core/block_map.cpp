#include "core/block_map.hpp"

#include <algorithm>
#include <numeric>

#include "util/contracts.hpp"
#include "util/mathx.hpp"

namespace gcaching {

UniformBlockMap::UniformBlockMap(std::size_t num_items, std::size_t block_size)
    : num_items_(num_items),
      block_size_(block_size),
      num_blocks_(ceil_div(num_items, block_size)) {
  GC_REQUIRE(num_items > 0, "universe must be non-empty");
  GC_REQUIRE(block_size > 0, "block size must be positive");
  all_items_.resize(num_items);
  std::iota(all_items_.begin(), all_items_.end(), ItemId{0});
}

BlockId UniformBlockMap::block_of(ItemId item) const {
  GC_REQUIRE(item < num_items_, "item id out of range");
  return static_cast<BlockId>(item / block_size_);
}

std::span<const ItemId> UniformBlockMap::items_of(BlockId block) const {
  GC_REQUIRE(block < num_blocks_, "block id out of range");
  const std::size_t first = static_cast<std::size_t>(block) * block_size_;
  const std::size_t last = std::min(first + block_size_, num_items_);
  return std::span<const ItemId>(all_items_.data() + first, last - first);
}

ExplicitBlockMap::ExplicitBlockMap(std::vector<std::vector<ItemId>> blocks)
    : blocks_(std::move(blocks)) {
  GC_REQUIRE(!blocks_.empty(), "partition must contain at least one block");
  std::size_t total = 0;
  for (auto& b : blocks_) {
    GC_REQUIRE(!b.empty(), "blocks must be non-empty");
    std::sort(b.begin(), b.end());
    GC_REQUIRE(std::adjacent_find(b.begin(), b.end()) == b.end(),
               "duplicate item within a block");
    total += b.size();
    max_block_size_ = std::max(max_block_size_, b.size());
  }
  item_to_block_.assign(total, kInvalidBlock);
  for (BlockId j = 0; j < blocks_.size(); ++j) {
    for (ItemId it : blocks_[j]) {
      GC_REQUIRE(it < total, "item ids must be dense 0..n-1");
      GC_REQUIRE(item_to_block_[it] == kInvalidBlock,
                 "item appears in two blocks — not a partition");
      item_to_block_[it] = j;
    }
  }
  // Density: every id 0..n-1 covered (any gap would leave kInvalidBlock).
  GC_CHECK(std::find(item_to_block_.begin(), item_to_block_.end(),
                     kInvalidBlock) == item_to_block_.end(),
           "item universe must be dense");
}

BlockId ExplicitBlockMap::block_of(ItemId item) const {
  GC_REQUIRE(item < item_to_block_.size(), "item id out of range");
  return item_to_block_[item];
}

std::span<const ItemId> ExplicitBlockMap::items_of(BlockId block) const {
  GC_REQUIRE(block < blocks_.size(), "block id out of range");
  return std::span<const ItemId>(blocks_[block].data(), blocks_[block].size());
}

std::shared_ptr<BlockMap> make_singleton_blocks(std::size_t num_items) {
  return std::make_shared<UniformBlockMap>(num_items, 1);
}

std::shared_ptr<BlockMap> make_uniform_blocks(std::size_t num_items,
                                              std::size_t block_size) {
  return std::make_shared<UniformBlockMap>(num_items, block_size);
}

}  // namespace gcaching
