// Simulation statistics.
//
// The model's cost objective is the number of misses (each miss = one unit
// block-load cost, regardless of how many items of the block are taken).
// We additionally split hits into temporal vs spatial (Section 2) and track
// load/eviction traffic, including pure pollution (side-loaded items evicted
// untouched) — the effect that makes Block Caches fragile (Section 4.2).
#pragma once

#include <cstdint>
#include <string>

namespace gcaching {

struct SimStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< == cost in the unit-block-cost model
  std::uint64_t temporal_hits = 0;
  std::uint64_t spatial_hits = 0;
  std::uint64_t items_loaded = 0;
  std::uint64_t sideloads = 0;
  std::uint64_t evictions = 0;
  std::uint64_t wasted_sideloads = 0;

  double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
  double hit_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(accesses);
  }
  /// Fraction of hits attributable to spatial locality.
  double spatial_hit_share() const {
    return hits == 0 ? 0.0
                     : static_cast<double>(spatial_hits) /
                           static_cast<double>(hits);
  }
  /// Average items loaded per miss (1 for an Item Cache, up to B).
  double loads_per_miss() const {
    return misses == 0 ? 0.0
                       : static_cast<double>(items_loaded) /
                             static_cast<double>(misses);
  }

  /// Bit-identity across engines (fast vs verifying) is a hard guarantee;
  /// tests and benches compare full stat structs.
  friend bool operator==(const SimStats&, const SimStats&) = default;

  SimStats& operator+=(const SimStats& o) {
    accesses += o.accesses;
    hits += o.hits;
    misses += o.misses;
    temporal_hits += o.temporal_hits;
    spatial_hits += o.spatial_hits;
    items_loaded += o.items_loaded;
    sideloads += o.sideloads;
    evictions += o.evictions;
    wasted_sideloads += o.wasted_sideloads;
    return *this;
  }

  std::string summary() const;
};

}  // namespace gcaching
