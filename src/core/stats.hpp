// Simulation statistics.
//
// The model's cost objective is the number of misses (each miss = one unit
// block-load cost, regardless of how many items of the block are taken).
// We additionally split hits into temporal vs spatial (Section 2) and track
// load/eviction traffic, including pure pollution (side-loaded items evicted
// untouched) — the effect that makes Block Caches fragile (Section 4.2).
#pragma once

#include <cstdint>
#include <string>

namespace gcaching {

struct SimStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< == cost in the unit-block-cost model
  std::uint64_t temporal_hits = 0;
  std::uint64_t spatial_hits = 0;
  std::uint64_t items_loaded = 0;
  std::uint64_t sideloads = 0;
  std::uint64_t evictions = 0;
  std::uint64_t wasted_sideloads = 0;
  /// Accesses served by a fill already in flight (MSHR coalescing in the
  /// gcached async runtime): neither a hit (the item was not resident at
  /// access time) nor a miss (no new block load was issued). Always zero in
  /// the sequential engines and in sync fill mode. Conservation law:
  /// hits + misses + delayed_hits == accesses.
  std::uint64_t delayed_hits = 0;
  /// Subset of delayed_hits whose item the pending fill *sideloaded* — the
  /// requester never asked for it, so the wait was bought by spatial
  /// locality alone ("free" delayed hits, the GC-caching twist on
  /// arXiv:2006.00376's delayed-hit model).
  std::uint64_t free_delayed_hits = 0;
  /// Total nanoseconds delayed-hit accesses spent parked on in-flight
  /// fills (queuing cost = remaining fill time at arrival).
  std::uint64_t delayed_hit_wait_ns = 0;

  /// Every ratio helper shares one zero-denominator convention: an empty
  /// denominator yields 0.0 (never NaN/inf), so "no hits yet" and "no
  /// spatial hits among them" read the same — pinned by tests/test_stats.cpp.
  static double ratio(std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  }

  double miss_rate() const { return ratio(misses, accesses); }
  double hit_rate() const { return ratio(hits, accesses); }
  /// Fraction of hits attributable to spatial locality.
  double spatial_hit_share() const { return ratio(spatial_hits, hits); }
  /// Average items loaded per miss (1 for an Item Cache, up to B).
  double loads_per_miss() const { return ratio(items_loaded, misses); }
  /// Fraction of side-loaded items evicted untouched — the pure-pollution
  /// share of the speculative traffic (Section 4.2's fragility measure).
  double wasted_sideload_share() const {
    return ratio(wasted_sideloads, sideloads);
  }
  double delayed_hit_rate() const { return ratio(delayed_hits, accesses); }
  /// Fraction of delayed hits the requester never asked for (sideloaded by
  /// the pending fill — free spatial-locality wins).
  double free_delayed_hit_share() const {
    return ratio(free_delayed_hits, delayed_hits);
  }
  /// Latency-weighted average memory access time: every miss pays the full
  /// backend fill, every delayed hit pays its measured residual wait, and
  /// plain hits are free. The classical AMAT decomposition with the
  /// delayed-hit correction of arXiv:2006.00376.
  double amat_ns(std::uint64_t fill_latency_ns) const {
    if (accesses == 0) return 0.0;
    const double cost = static_cast<double>(misses) *
                            static_cast<double>(fill_latency_ns) +
                        static_cast<double>(delayed_hit_wait_ns);
    return cost / static_cast<double>(accesses);
  }

  /// Bit-identity across engines (fast vs verifying) is a hard guarantee;
  /// tests and benches compare full stat structs.
  friend bool operator==(const SimStats&, const SimStats&) = default;

  SimStats& operator+=(const SimStats& o) {
    accesses += o.accesses;
    hits += o.hits;
    misses += o.misses;
    temporal_hits += o.temporal_hits;
    spatial_hits += o.spatial_hits;
    items_loaded += o.items_loaded;
    sideloads += o.sideloads;
    evictions += o.evictions;
    wasted_sideloads += o.wasted_sideloads;
    delayed_hits += o.delayed_hits;
    free_delayed_hits += o.free_delayed_hits;
    delayed_hit_wait_ns += o.delayed_hit_wait_ns;
    return *this;
  }

  /// Counter deltas between two snapshots of the same run (every counter is
  /// monotonic, so `later - earlier` never wraps). Header-inline on purpose:
  /// gcobs windows stats with this and must not need a gc_core link.
  SimStats& operator-=(const SimStats& o) {
    accesses -= o.accesses;
    hits -= o.hits;
    misses -= o.misses;
    temporal_hits -= o.temporal_hits;
    spatial_hits -= o.spatial_hits;
    items_loaded -= o.items_loaded;
    sideloads -= o.sideloads;
    evictions -= o.evictions;
    wasted_sideloads -= o.wasted_sideloads;
    delayed_hits -= o.delayed_hits;
    free_delayed_hits -= o.free_delayed_hits;
    delayed_hit_wait_ns -= o.delayed_hit_wait_ns;
    return *this;
  }
  friend SimStats operator-(SimStats a, const SimStats& b) {
    a -= b;
    return a;
  }

  std::string summary() const;
};

}  // namespace gcaching
