// Simulation statistics.
//
// The model's cost objective is the number of misses (each miss = one unit
// block-load cost, regardless of how many items of the block are taken).
// We additionally split hits into temporal vs spatial (Section 2) and track
// load/eviction traffic, including pure pollution (side-loaded items evicted
// untouched) — the effect that makes Block Caches fragile (Section 4.2).
#pragma once

#include <cstdint>
#include <string>

namespace gcaching {

struct SimStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;  ///< == cost in the unit-block-cost model
  std::uint64_t temporal_hits = 0;
  std::uint64_t spatial_hits = 0;
  std::uint64_t items_loaded = 0;
  std::uint64_t sideloads = 0;
  std::uint64_t evictions = 0;
  std::uint64_t wasted_sideloads = 0;

  /// Every ratio helper shares one zero-denominator convention: an empty
  /// denominator yields 0.0 (never NaN/inf), so "no hits yet" and "no
  /// spatial hits among them" read the same — pinned by tests/test_stats.cpp.
  static double ratio(std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  }

  double miss_rate() const { return ratio(misses, accesses); }
  double hit_rate() const { return ratio(hits, accesses); }
  /// Fraction of hits attributable to spatial locality.
  double spatial_hit_share() const { return ratio(spatial_hits, hits); }
  /// Average items loaded per miss (1 for an Item Cache, up to B).
  double loads_per_miss() const { return ratio(items_loaded, misses); }
  /// Fraction of side-loaded items evicted untouched — the pure-pollution
  /// share of the speculative traffic (Section 4.2's fragility measure).
  double wasted_sideload_share() const {
    return ratio(wasted_sideloads, sideloads);
  }

  /// Bit-identity across engines (fast vs verifying) is a hard guarantee;
  /// tests and benches compare full stat structs.
  friend bool operator==(const SimStats&, const SimStats&) = default;

  SimStats& operator+=(const SimStats& o) {
    accesses += o.accesses;
    hits += o.hits;
    misses += o.misses;
    temporal_hits += o.temporal_hits;
    spatial_hits += o.spatial_hits;
    items_loaded += o.items_loaded;
    sideloads += o.sideloads;
    evictions += o.evictions;
    wasted_sideloads += o.wasted_sideloads;
    return *this;
  }

  /// Counter deltas between two snapshots of the same run (every counter is
  /// monotonic, so `later - earlier` never wraps). Header-inline on purpose:
  /// gcobs windows stats with this and must not need a gc_core link.
  SimStats& operator-=(const SimStats& o) {
    accesses -= o.accesses;
    hits -= o.hits;
    misses -= o.misses;
    temporal_hits -= o.temporal_hits;
    spatial_hits -= o.spatial_hits;
    items_loaded -= o.items_loaded;
    sideloads -= o.sideloads;
    evictions -= o.evictions;
    wasted_sideloads -= o.wasted_sideloads;
    return *this;
  }
  friend SimStats operator-(SimStats a, const SimStats& b) {
    a -= b;
    return a;
  }

  std::string summary() const;
};

}  // namespace gcaching
