// Item-to-block partitions.
//
// A `BlockMap` is the static structure (iii) of Definition 1: a partition of
// the item universe into disjoint blocks of at most `max_block_size()` items.
// Two implementations:
//   * `UniformBlockMap`  — items [jB, (j+1)B) form block j; the common case
//     for address-space granularity boundaries (cache lines in a DRAM row).
//   * `ExplicitBlockMap` — arbitrary partition, needed by the NP-completeness
//     reduction (active sets of varying size) and by irregular workloads.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace gcaching {

/// Immutable partition of items into blocks. Thread-safe for concurrent
/// reads after construction.
class BlockMap {
 public:
  virtual ~BlockMap() = default;

  /// Number of items in the universe (ids are dense 0..num_items()-1).
  virtual std::size_t num_items() const noexcept = 0;

  /// Number of blocks (ids are dense 0..num_blocks()-1).
  virtual std::size_t num_blocks() const noexcept = 0;

  /// The block containing `item`. Precondition: item < num_items().
  virtual BlockId block_of(ItemId item) const = 0;

  /// The items of `block`, in ascending id order.
  /// Precondition: block < num_blocks().
  virtual std::span<const ItemId> items_of(BlockId block) const = 0;

  /// The model parameter B: an upper bound on every block's size.
  virtual std::size_t max_block_size() const noexcept = 0;

  /// Size of a specific block (<= max_block_size()).
  std::size_t block_size(BlockId block) const { return items_of(block).size(); }
};

/// Block j contains items [j*B, min((j+1)*B, n)). O(1) lookups, O(n) memory
/// only for the flattened item list (shared across blocks).
class UniformBlockMap final : public BlockMap {
 public:
  /// Partition `num_items` items into blocks of `block_size`; the last block
  /// may be smaller when block_size does not divide num_items.
  UniformBlockMap(std::size_t num_items, std::size_t block_size);

  std::size_t num_items() const noexcept override { return num_items_; }
  std::size_t num_blocks() const noexcept override { return num_blocks_; }
  BlockId block_of(ItemId item) const override;
  std::span<const ItemId> items_of(BlockId block) const override;
  std::size_t max_block_size() const noexcept override { return block_size_; }

 private:
  std::size_t num_items_;
  std::size_t block_size_;
  std::size_t num_blocks_;
  std::vector<ItemId> all_items_;  // 0..n-1 flattened, spans index into it
};

/// Arbitrary partition given as an explicit list of blocks.
class ExplicitBlockMap final : public BlockMap {
 public:
  /// `blocks[j]` lists the items of block j. The blocks must be non-empty,
  /// disjoint, and together cover a dense universe 0..n-1 (validated).
  explicit ExplicitBlockMap(std::vector<std::vector<ItemId>> blocks);

  std::size_t num_items() const noexcept override { return item_to_block_.size(); }
  std::size_t num_blocks() const noexcept override { return blocks_.size(); }
  BlockId block_of(ItemId item) const override;
  std::span<const ItemId> items_of(BlockId block) const override;
  std::size_t max_block_size() const noexcept override { return max_block_size_; }

 private:
  std::vector<std::vector<ItemId>> blocks_;
  std::vector<BlockId> item_to_block_;
  std::size_t max_block_size_ = 0;
};

/// Convenience: a partition where every item is its own block — under which
/// GC caching is exactly the traditional caching model (Section 2).
std::shared_ptr<BlockMap> make_singleton_blocks(std::size_t num_items);

/// Convenience: shared uniform map.
std::shared_ptr<BlockMap> make_uniform_blocks(std::size_t num_items,
                                              std::size_t block_size);

}  // namespace gcaching
