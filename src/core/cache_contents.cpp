#include "core/cache_contents.hpp"

#include "util/contracts.hpp"

namespace gcaching {

BlockId CacheContents::missed_block() const {
  GC_REQUIRE(in_miss(), "no miss transaction is open");
  return current_block_;
}

void CacheContents::for_each_resident(
    const std::function<void(ItemId)>& fn) const {
  visit_residents([&fn](ItemId it) { fn(it); });
}

std::vector<ItemId> CacheContents::resident_items() const {
  std::vector<ItemId> out;
  out.reserve(occupancy_);
  visit_residents([&out](ItemId it) { out.push_back(it); });
  return out;
}

std::size_t CacheContents::residents_of_block(BlockId block) const {
  std::size_t n = 0;
  visit_residents_of_block(block, [&n](ItemId) { ++n; });
  return n;
}

void CacheContents::reset() {
  flags_.assign(flags_.size(), Flag{});
  load_times_.assign(load_times_.size(), 0);
  occupancy_ = 0;
  current_block_ = kInvalidBlock;
  current_request_ = kInvalidItem;
  now_ = 0;
  items_loaded_ = sideloads_ = evictions_ = wasted_sideloads_ = 0;
}

AccessTime CacheContents::load_time(ItemId item) const {
  GC_REQUIRE(track_load_times_, "load-time tracking is disabled");
  GC_REQUIRE(contains(item), "load_time of a non-resident item");
  return load_times_[item];
}

}  // namespace gcaching
