#include "core/cache_contents.hpp"

#include "util/contracts.hpp"

namespace gcaching {

CacheContents::CacheContents(const BlockMap& map, std::size_t capacity)
    : map_(map), capacity_(capacity), entries_(map.num_items()) {
  GC_REQUIRE(capacity >= 1, "cache capacity must be at least one item");
}

bool CacheContents::contains(ItemId item) const {
  GC_REQUIRE(item < entries_.size(), "item id out of range");
  return entries_[item].present;
}

BlockId CacheContents::missed_block() const {
  GC_REQUIRE(in_miss(), "no miss transaction is open");
  return current_block_;
}

void CacheContents::for_each_resident(
    const std::function<void(ItemId)>& fn) const {
  for (ItemId it = 0; it < entries_.size(); ++it)
    if (entries_[it].present) fn(it);
}

std::vector<ItemId> CacheContents::resident_items() const {
  std::vector<ItemId> out;
  out.reserve(occupancy_);
  for_each_resident([&](ItemId it) { out.push_back(it); });
  return out;
}

std::size_t CacheContents::residents_of_block(BlockId block) const {
  std::size_t n = 0;
  for (ItemId it : map_.items_of(block))
    if (entries_[it].present) ++n;
  return n;
}

HitKind CacheContents::record_hit(ItemId item) {
  GC_REQUIRE(!in_miss(), "record_hit during an open miss transaction");
  GC_REQUIRE(contains(item), "record_hit on a non-resident item");
  Entry& e = entries_[item];
  const HitKind kind = (!e.touched && !e.requested_load) ? HitKind::kSpatial
                                                         : HitKind::kTemporal;
  e.touched = true;
  ++now_;
  return kind;
}

void CacheContents::begin_miss(ItemId requested) {
  GC_REQUIRE(!in_miss(), "begin_miss with a transaction already open");
  GC_REQUIRE(requested < entries_.size(), "item id out of range");
  GC_REQUIRE(!entries_[requested].present, "begin_miss on a resident item");
  current_block_ = map_.block_of(requested);
  current_request_ = requested;
}

void CacheContents::load(ItemId item) {
  GC_REQUIRE(in_miss(), "load outside a miss transaction");
  GC_REQUIRE(item < entries_.size(), "item id out of range");
  GC_REQUIRE(map_.block_of(item) == current_block_,
             "Definition 1 violation: load outside the missed block");
  GC_REQUIRE(!entries_[item].present, "loading an already-resident item");
  GC_REQUIRE(occupancy_ < capacity_,
             "capacity violation: evict before loading");
  Entry& e = entries_[item];
  e.present = true;
  e.requested_load = (item == current_request_);
  e.touched = (item == current_request_);
  e.loaded_at = now_;
  ++occupancy_;
  ++items_loaded_;
  if (item != current_request_) ++sideloads_;
}

void CacheContents::evict(ItemId item) {
  GC_REQUIRE(item < entries_.size(), "item id out of range");
  Entry& e = entries_[item];
  GC_REQUIRE(e.present, "evicting a non-resident item");
  if (!e.touched && !e.requested_load) ++wasted_sideloads_;
  e.present = false;
  e.requested_load = false;
  e.touched = false;
  --occupancy_;
  ++evictions_;
}

void CacheContents::end_miss() {
  GC_REQUIRE(in_miss(), "end_miss without a transaction");
  GC_ENSURE(entries_[current_request_].present,
            "policy failed to load the requested item");
  GC_ENSURE(occupancy_ <= capacity_, "occupancy exceeds capacity");
  current_block_ = kInvalidBlock;
  current_request_ = kInvalidItem;
  ++now_;
}

void CacheContents::reset() {
  for (Entry& e : entries_) e = Entry{};
  occupancy_ = 0;
  current_block_ = kInvalidBlock;
  current_request_ = kInvalidItem;
  now_ = 0;
  items_loaded_ = sideloads_ = evictions_ = wasted_sideloads_ = 0;
}

AccessTime CacheContents::load_time(ItemId item) const {
  GC_REQUIRE(contains(item), "load_time of a non-resident item");
  return entries_[item].loaded_at;
}

}  // namespace gcaching
