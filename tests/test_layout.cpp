// Unit tests for item-to-block layout tooling.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "locality/window_profile.hpp"
#include "policies/factory.hpp"
#include "traces/layout.hpp"
#include "traces/synthetic.hpp"

namespace gcaching::traces {
namespace {

TEST(RandomLayout, IsAValidPartition) {
  const auto map = random_layout(100, 8, 1);
  EXPECT_EQ(map->num_items(), 100u);
  EXPECT_EQ(map->max_block_size(), 8u);
  EXPECT_EQ(map->num_blocks(), 13u);  // ceil(100/8)
}

TEST(RandomLayout, DeterministicBySeed) {
  const auto a = random_layout(64, 8, 7);
  const auto b = random_layout(64, 8, 7);
  const auto c = random_layout(64, 8, 8);
  std::size_t same_ab = 0, same_ac = 0;
  for (ItemId it = 0; it < 64; ++it) {
    same_ab += (a->block_of(it) == b->block_of(it));
    same_ac += (a->block_of(it) == c->block_of(it));
  }
  EXPECT_EQ(same_ab, 64u);
  EXPECT_LT(same_ac, 64u);
}

TEST(AffinityLayout, RecoversCoAccessedGroups) {
  // Trace touches {0,1}, {2,3}, {4,5} always together: affinity clustering
  // with B = 2 must put each pair in one block.
  Trace t;
  for (int rep = 0; rep < 50; ++rep)
    for (ItemId it : {0u, 1u, 2u, 3u, 4u, 5u}) t.push(it);
  const auto map = affinity_layout(t, 6, 2, /*window=*/1);
  EXPECT_EQ(map->block_of(0), map->block_of(1));
  EXPECT_EQ(map->block_of(2), map->block_of(3));
  EXPECT_EQ(map->block_of(4), map->block_of(5));
  EXPECT_NE(map->block_of(1), map->block_of(2));
}

TEST(AffinityLayout, RespectsBlockSizeCap) {
  const auto w = traces::zipf_items(200, 1, 5000, 0.8, 3);
  const auto map = affinity_layout(w.trace, 200, 8);
  EXPECT_LE(map->max_block_size(), 8u);
  EXPECT_EQ(map->num_items(), 200u);
}

TEST(AffinityLayout, PacksNearOptimalBlockCount) {
  const auto w = traces::zipf_items(256, 1, 4000, 0.5, 9);
  const auto map = affinity_layout(w.trace, 256, 8);
  // Packing should not fragment: at most ~1.5x the minimum block count.
  EXPECT_LE(map->num_blocks(), 48u);  // minimum is 32
}

TEST(WithLayout, SameTraceNewMap) {
  const auto w = traces::sequential_scan(64, 8, 128);
  const auto shuffled = with_layout(w, random_layout(64, 8, 3), "shuffled");
  EXPECT_EQ(shuffled.trace.size(), w.trace.size());
  EXPECT_NE(shuffled.name.find("shuffled"), std::string::npos);
  EXPECT_NO_THROW(shuffled.validate());
}

TEST(Layout, ShufflingDestroysScanSpatialLocality) {
  const auto w = traces::sequential_scan(512, 8, 4096);
  const auto shuffled = with_layout(w, random_layout(512, 8, 5), "rnd");
  const auto p_orig = locality::compute_profile(w, {64});
  const auto p_shuf = locality::compute_profile(shuffled, {64});
  EXPECT_GT(p_orig.spatial_ratio(0), 4.0);
  EXPECT_LT(p_shuf.spatial_ratio(0), 2.0);
}

TEST(Layout, AffinityRestoresGcCachePerformance) {
  // Start from a pointer-chase with NO layout locality (intra_block = 0),
  // then re-layout by affinity: a GC-aware cache should gain markedly,
  // because co-chased items now share blocks.
  const auto chase = traces::pointer_chase(128, 8, 30000, 0.0, 0.02, 11);
  const auto clustered = with_layout(
      chase, affinity_layout(chase.trace, chase.map->num_items(), 8),
      "affinity");
  auto p1 = make_policy("iblp", 128);
  auto p2 = make_policy("iblp", 128);
  const auto before = simulate(chase, *p1, 128);
  const auto after = simulate(clustered, *p2, 128);
  EXPECT_LT(after.misses * 2, before.misses);
}

TEST(Layout, ItemCacheIndifferentToLayout) {
  // Control: an Item Cache's miss count is layout-invariant (it never
  // touches block structure).
  const auto chase = traces::pointer_chase(128, 8, 20000, 0.0, 0.02, 12);
  const auto clustered = with_layout(
      chase, affinity_layout(chase.trace, chase.map->num_items(), 8),
      "affinity");
  auto p1 = make_policy("item-lru", 64);
  auto p2 = make_policy("item-lru", 64);
  EXPECT_EQ(simulate(chase, *p1, 64).misses,
            simulate(clustered, *p2, 64).misses);
}

}  // namespace
}  // namespace gcaching::traces
