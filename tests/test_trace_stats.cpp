// Unit tests for the trace-statistics module.
#include <gtest/gtest.h>

#include "locality/trace_stats.hpp"
#include "traces/synthetic.hpp"

namespace gcaching::locality {
namespace {

Workload tiny(std::vector<ItemId> acc, std::size_t n, std::size_t B) {
  Workload w;
  w.map = make_uniform_blocks(n, B);
  w.trace = Trace(std::move(acc));
  w.name = "tiny";
  return w;
}

TEST(TraceStats, EmptyTrace) {
  const auto s = compute_trace_stats(tiny({}, 8, 4));
  EXPECT_EQ(s.accesses, 0u);
  EXPECT_EQ(s.distinct_items, 0u);
}

TEST(TraceStats, DistinctCounts) {
  const auto s = compute_trace_stats(tiny({0, 1, 4, 0, 4}, 8, 4));
  EXPECT_EQ(s.accesses, 5u);
  EXPECT_EQ(s.distinct_items, 3u);
  EXPECT_EQ(s.distinct_blocks, 2u);
}

TEST(TraceStats, BlockFootprints) {
  // Block 0 touched at items {0, 1}; block 1 at {4}: mean = 1.5.
  const auto s = compute_trace_stats(tiny({0, 1, 4, 0}, 8, 4));
  EXPECT_DOUBLE_EQ(s.mean_block_footprint, 1.5);
}

TEST(TraceStats, SpatialRuns) {
  // Runs by block: [0,1] [4] [0] -> lengths 2, 1, 1.
  const auto s = compute_trace_stats(tiny({0, 1, 4, 0}, 8, 4));
  EXPECT_DOUBLE_EQ(s.mean_spatial_run, 4.0 / 3.0);
  EXPECT_EQ(s.max_spatial_run, 2u);
}

TEST(TraceStats, SequentialScanHasLongRuns) {
  const auto w = traces::sequential_scan(64, 8, 64);
  const auto s = compute_trace_stats(w);
  EXPECT_DOUBLE_EQ(s.mean_spatial_run, 8.0);
  EXPECT_EQ(s.max_spatial_run, 8u);
  EXPECT_DOUBLE_EQ(s.mean_block_footprint, 8.0);
}

TEST(TraceStats, StridedScanHasUnitRuns) {
  const auto w = traces::strided_scan(64, 8, 64, 8);
  const auto s = compute_trace_stats(w);
  EXPECT_DOUBLE_EQ(s.mean_spatial_run, 1.0);
  EXPECT_DOUBLE_EQ(s.mean_block_footprint, 1.0);
}

TEST(TraceStats, ReuseQuantiles) {
  // a b a b a b: reuse distances all 2 (4 finite accesses), cold 2.
  const auto s = compute_trace_stats(tiny({0, 1, 0, 1, 0, 1}, 8, 4));
  EXPECT_EQ(s.cold_accesses, 2u);
  EXPECT_EQ(s.reuse_distance_quantiles[0], 2u);  // median
  EXPECT_EQ(s.reuse_distance_quantiles[2], 2u);  // p99
}

TEST(TraceStats, HotItemWorkloadShapes) {
  const auto w = traces::hot_item_per_block(32, 8, 8000, 32, 0.0, 3);
  const auto s = compute_trace_stats(w);
  EXPECT_DOUBLE_EQ(s.mean_block_footprint, 1.0);  // one item per block
  EXPECT_LT(s.mean_spatial_run, 1.5);
  // Uniform over 32 items: median reuse distance ~ 32-ish.
  EXPECT_GT(s.reuse_distance_quantiles[0], 8u);
  EXPECT_LT(s.reuse_distance_quantiles[0], 64u);
}

}  // namespace
}  // namespace gcaching::locality
