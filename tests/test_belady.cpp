// Unit tests for the offline Belady policies and the clairvoyant GC
// heuristic.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "offline/exact_opt.hpp"
#include "policies/belady.hpp"
#include "policies/block_lru.hpp"
#include "policies/item_lru.hpp"
#include "traces/synthetic.hpp"
#include "util/rng.hpp"

namespace gcaching {
namespace {

TEST(NextUseIndex, BasicNextPositions) {
  detail::NextUseIndex idx;
  idx.build({0, 1, 0, 2, 1}, 3);
  EXPECT_EQ(idx.next_after(0), 2u);
  EXPECT_EQ(idx.next_after(1), 4u);
  EXPECT_EQ(idx.next_after(2), detail::NextUseIndex::kNever);
  EXPECT_EQ(idx.next_after(3), detail::NextUseIndex::kNever);
  EXPECT_EQ(idx.next_after(4), detail::NextUseIndex::kNever);
}

TEST(FurthestQueue, PopsMaximum) {
  detail::FurthestQueue q;
  q.init(4);
  q.update(0, 10);
  q.update(1, 30);
  q.update(2, 20);
  EXPECT_EQ(q.pop_furthest(), 1u);
  EXPECT_EQ(q.pop_furthest(), 2u);
  EXPECT_EQ(q.pop_furthest(), 0u);
}

TEST(FurthestQueue, UpdateSupersedesOldEntries) {
  detail::FurthestQueue q;
  q.init(4);
  q.update(0, 100);
  q.update(0, 5);  // item 0 now due soon
  q.update(1, 50);
  EXPECT_EQ(q.pop_furthest(), 1u);
  EXPECT_EQ(q.pop_furthest(), 0u);
}

TEST(BeladyItem, ClassicExample) {
  // Textbook MIN example: with k = 3 Belady achieves the known optimum.
  auto map = make_singleton_blocks(5);
  const Trace t({0, 1, 2, 3, 0, 1, 4, 0, 1, 2, 3, 4});
  BeladyItem opt;
  const SimStats s = simulate(*map, t, opt, 3);
  // Known OPT for this trace at k = 3 is 7 misses.
  EXPECT_EQ(s.misses, 7u);
}

TEST(BeladyItem, NeverWorseThanLruOnSingletonBlocks) {
  SplitMix64 rng(123);
  for (int round = 0; round < 15; ++round) {
    Trace t;
    for (int p = 0; p < 400; ++p)
      t.push(static_cast<ItemId>(rng.below(20)));
    auto map = make_singleton_blocks(20);
    BeladyItem opt;
    ItemLru lru;
    const std::size_t k = 3 + rng.below(8);
    EXPECT_LE(simulate(*map, t, opt, k).misses,
              simulate(*map, t, lru, k).misses)
        << "round " << round;
  }
}

TEST(BeladyItem, MatchesExactOptInTraditionalModel) {
  // With singleton blocks, GC caching == traditional caching where Belady
  // is provably optimal; cross-check against the exact solver.
  SplitMix64 rng(77);
  for (int round = 0; round < 10; ++round) {
    Trace t;
    for (int p = 0; p < 24; ++p)
      t.push(static_cast<ItemId>(rng.below(6)));
    auto map = make_singleton_blocks(6);
    const std::size_t k = 2 + rng.below(3);
    BeladyItem opt;
    const auto exact = exact_offline_opt(*map, t, k);
    EXPECT_EQ(simulate(*map, t, opt, k).misses, exact.cost)
        << "round " << round << " k=" << k;
  }
}

TEST(BeladyItem, RequiresPrepare) {
  // The prepared_ precondition sits on the per-access hot path and is
  // hot-tier (compiled out under GC_FAST_SIM), like every per-access check.
  if (!kHotChecksEnabled) GTEST_SKIP() << "hot checks compiled out";
  auto map = make_singleton_blocks(4);
  BeladyItem opt;
  Simulation sim(*map, opt, 2);
  EXPECT_THROW(sim.access(0), ContractViolation);
}

TEST(BeladyBlock, KeepsBlockWithNearestReuse) {
  auto map = make_uniform_blocks(16, 4);
  BeladyBlock opt;
  // Blocks 0,1 fill capacity 8; block 2 arrives; block 0 is reused sooner
  // than block 1, so block 1 is evicted.
  const Trace t({0, 4, 8, 0, 4});
  const SimStats s = simulate(*map, t, opt, 8);
  // misses: 0, 4, 8 cold; "0" hits (kept); "4" misses (evicted).
  EXPECT_EQ(s.misses, 4u);
}

TEST(BeladyBlock, NeverWorseThanBlockLru) {
  const auto w = traces::zipf_blocks(32, 4, 6000, 0.9, 2, 91);
  BeladyBlock opt;
  BlockLru lru;
  EXPECT_LE(simulate(w, opt, 32).misses, simulate(w, lru, 32).misses);
}

TEST(BeladyGreedyGc, AtLeastExactOptOnSmallInstances) {
  SplitMix64 rng(55);
  for (int round = 0; round < 10; ++round) {
    Trace t;
    for (int p = 0; p < 20; ++p)
      t.push(static_cast<ItemId>(rng.below(8)));
    auto map = make_uniform_blocks(8, 4);
    const std::size_t k = 4 + rng.below(3);
    BeladyGreedyGc heur;
    const auto exact = exact_offline_opt(*map, t, k);
    EXPECT_GE(simulate(*map, t, heur, k).misses, exact.cost)
        << "round " << round;
  }
}

TEST(BeladyGreedyGc, ExploitsSpatialLocality) {
  const auto w = traces::sequential_scan(256, 8, 2048);
  BeladyGreedyGc heur;
  ItemLru lru;
  EXPECT_LT(simulate(w, heur, 32).misses, simulate(w, lru, 32).misses);
}

TEST(BeladyGreedyGc, SkipsUselessSideloads) {
  auto map = make_uniform_blocks(8, 4);
  BeladyGreedyGc heur;
  // Items 1, 2, 3 are never accessed again: no reason to side-load them.
  const Trace t({0, 4, 0});
  const SimStats s = simulate(*map, t, heur, 4);
  EXPECT_EQ(s.sideloads, 0u);
  EXPECT_EQ(s.misses, 2u);
}

TEST(BeladyGreedyGc, SideloadsProfitableSiblings) {
  auto map = make_uniform_blocks(8, 4);
  BeladyGreedyGc heur;
  // 1 and 2 are used before 0's reuse: worth taking on the first miss.
  const Trace t({0, 1, 2, 0});
  const SimStats s = simulate(*map, t, heur, 4);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.spatial_hits, 2u);
}

}  // namespace
}  // namespace gcaching
