// Unit tests for locality/window_profile and locality/poly_fit: exact
// working-set measurement and power-law fitting.
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_set>

#include "locality/poly_fit.hpp"
#include "locality/window_profile.hpp"
#include "traces/locality_trace.hpp"
#include "traces/synthetic.hpp"
#include "util/rng.hpp"

namespace gcaching::locality {
namespace {

// Brute-force reference for max-distinct-in-window.
std::size_t brute_max_distinct(const std::vector<std::uint32_t>& keys,
                               std::size_t n) {
  std::size_t best = 0;
  const std::size_t w = std::min(n, keys.size());
  for (std::size_t s = 0; s + w <= keys.size(); ++s) {
    std::unordered_set<std::uint32_t> set(keys.begin() + static_cast<long>(s),
                                          keys.begin() + static_cast<long>(s + w));
    best = std::max(best, set.size());
  }
  return best;
}

TEST(MaxDistinct, MatchesBruteForceOnRandomTraces) {
  SplitMix64 rng(404);
  for (int round = 0; round < 10; ++round) {
    std::vector<std::uint32_t> keys;
    for (int p = 0; p < 200; ++p)
      keys.push_back(static_cast<std::uint32_t>(rng.below(12)));
    for (std::size_t n : {1u, 2u, 5u, 17u, 100u, 200u, 500u})
      EXPECT_EQ(max_distinct_in_windows(keys, n, 12),
                brute_max_distinct(keys, n))
          << "round " << round << " n=" << n;
  }
}

TEST(MaxDistinct, SingleKeyTrace) {
  std::vector<std::uint32_t> keys(50, 7);
  EXPECT_EQ(max_distinct_in_windows(keys, 10, 8), 1u);
}

TEST(MaxDistinct, AllDistinct) {
  std::vector<std::uint32_t> keys;
  for (std::uint32_t i = 0; i < 20; ++i) keys.push_back(i);
  EXPECT_EQ(max_distinct_in_windows(keys, 5, 20), 5u);
  EXPECT_EQ(max_distinct_in_windows(keys, 100, 20), 20u);
}

TEST(DefaultWindows, LogSpacedAndCapped) {
  const auto ws = default_window_lengths(1000, 2);
  EXPECT_EQ(ws.front(), 1u);
  EXPECT_EQ(ws.back(), 1000u);
  for (std::size_t j = 1; j < ws.size(); ++j) EXPECT_GT(ws[j], ws[j - 1]);
}

TEST(Profile, SequentialScanHasMaximalSpatialLocality) {
  const auto w = traces::sequential_scan(256, 8, 2048);
  const auto prof = compute_profile(w, {8, 64, 256});
  // In a window of 64 sequential accesses: 64 items, 64/8 + maybe 1 blocks.
  const double ratio = prof.spatial_ratio(1);
  EXPECT_GE(ratio, 6.0);
  EXPECT_LE(ratio, 8.0);
}

TEST(Profile, StridedScanHasNoSpatialLocality) {
  const auto w = traces::strided_scan(512, 8, 2048, 8);
  const auto prof = compute_profile(w, {8, 64});
  EXPECT_NEAR(prof.spatial_ratio(1), 1.0, 0.05);
}

TEST(Profile, FAndGAreNondecreasing) {
  const auto w = traces::zipf_blocks(64, 4, 4000, 0.9, 2, 777);
  const auto prof = compute_profile(w);
  EXPECT_TRUE(is_nondecreasing(prof.max_distinct_items));
  EXPECT_TRUE(is_nondecreasing(prof.max_distinct_blocks));
}

TEST(Profile, GBetweenFOverBAndF) {
  const auto w = traces::zipf_blocks(64, 8, 6000, 0.8, 4, 99);
  const auto prof = compute_profile(w);
  for (std::size_t s = 0; s < prof.window_lengths.size(); ++s) {
    EXPECT_LE(prof.max_distinct_blocks[s], prof.max_distinct_items[s]);
    EXPECT_GE(prof.max_distinct_blocks[s] * 8.0,
              prof.max_distinct_items[s]);
  }
}

TEST(Interpolate, ExactAtSamplePoints) {
  const auto fn =
      interpolate_locality({1, 10, 100}, {1.0, 5.0, 20.0});
  EXPECT_DOUBLE_EQ(fn.value(10), 5.0);
  EXPECT_DOUBLE_EQ(fn.value(100), 20.0);
}

TEST(Interpolate, LinearBetweenSamples) {
  const auto fn = interpolate_locality({10, 20}, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(fn.value(15), 15.0);
}

TEST(Interpolate, InverseRoundTrips) {
  const auto fn =
      interpolate_locality({1, 10, 100, 1000}, {1.0, 4.0, 12.0, 30.0});
  for (double m : {2.0, 4.0, 8.0, 25.0})
    EXPECT_NEAR(fn.value(fn.inverse(m)), m, 1e-9);
}

TEST(Interpolate, RejectsDecreasingSamples) {
  EXPECT_THROW(interpolate_locality({1, 2}, {5.0, 3.0}), ContractViolation);
}

TEST(PolyFit, RecoversExponentFromExactSamples) {
  // Samples of f(n) = 2 n^{1/3}.
  std::vector<std::size_t> ns = {1, 8, 64, 512, 4096};
  std::vector<double> samples;
  for (std::size_t n : ns)
    samples.push_back(2.0 * std::cbrt(static_cast<double>(n)));
  const auto fit = fit_poly_locality(ns, samples);
  EXPECT_NEAR(fit.p, 3.0, 0.01);
  EXPECT_NEAR(fit.c, 2.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.9999);
}

TEST(PolyFit, MeasuredStackDistanceTraceIsConcavePowerLaw) {
  const auto w =
      traces::stack_distance_workload(512, 8, 2.0, 4.0, 60000, 4242);
  const auto prof = compute_profile(w);
  const auto fit =
      fit_poly_locality(prof.window_lengths, prof.max_distinct_items);
  EXPECT_GT(fit.r_squared, 0.9);  // power law is a good description
  EXPECT_GT(fit.p, 1.2);          // genuinely concave, not linear
}

TEST(PolyFit, StackDistanceGammaControlsSpatialRatio) {
  const auto w_lo =
      traces::stack_distance_workload(256, 8, 2.0, 1.0, 40000, 5);
  const auto w_hi =
      traces::stack_distance_workload(256, 8, 2.0, 8.0, 40000, 5);
  const auto p_lo = compute_profile(w_lo, {512});
  const auto p_hi = compute_profile(w_hi, {512});
  EXPECT_LT(p_lo.spatial_ratio(0), 1.5);
  EXPECT_GT(p_hi.spatial_ratio(0), 4.0);
}

TEST(PolyFit, RejectsDegenerateInput) {
  EXPECT_THROW(fit_poly_locality({1}, {2.0}), ContractViolation);
  EXPECT_THROW(fit_poly_locality({1, 2}, {0.0, 0.0}), ContractViolation);
}

}  // namespace
}  // namespace gcaching::locality
