// Unit tests for core/cache_contents: the model-invariant enforcement and
// the spatial/temporal hit taxonomy.
#include <gtest/gtest.h>

#include "core/cache_contents.hpp"
#include "util/contracts.hpp"

namespace gcaching {
namespace {

// Contract-violation tests exercise the hot-tier checks, which the
// GC_FAST_SIM configuration compiles out; skip them there.
#define SKIP_WITHOUT_HOT_CHECKS() \
  if (!kHotChecksEnabled) GTEST_SKIP() << "hot checks compiled out"

class CacheContentsTest : public ::testing::Test {
 protected:
  CacheContentsTest() : map_(12, 4), cache_(map_, 6) {}
  UniformBlockMap map_;
  CacheContents cache_;
};

TEST_F(CacheContentsTest, StartsEmpty) {
  EXPECT_EQ(cache_.occupancy(), 0u);
  EXPECT_EQ(cache_.capacity(), 6u);
  EXPECT_FALSE(cache_.contains(0));
  EXPECT_FALSE(cache_.in_miss());
}

TEST_F(CacheContentsTest, LoadOutsideMissThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  EXPECT_THROW(cache_.load(0), ContractViolation);
}

TEST_F(CacheContentsTest, BasicMissTransaction) {
  cache_.begin_miss(1);
  EXPECT_TRUE(cache_.in_miss());
  EXPECT_EQ(cache_.missed_block(), 0u);
  cache_.load(1);
  cache_.end_miss();
  EXPECT_TRUE(cache_.contains(1));
  EXPECT_EQ(cache_.occupancy(), 1u);
  EXPECT_EQ(cache_.items_loaded(), 1u);
  EXPECT_EQ(cache_.sideloads(), 0u);
}

TEST_F(CacheContentsTest, SideloadWithinBlockAllowed) {
  cache_.begin_miss(1);
  cache_.load(1);
  cache_.load(0);
  cache_.load(3);
  cache_.end_miss();
  EXPECT_EQ(cache_.occupancy(), 3u);
  EXPECT_EQ(cache_.sideloads(), 2u);
}

TEST_F(CacheContentsTest, LoadOutsideMissedBlockThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  cache_.begin_miss(1);  // block 0 = items 0..3
  EXPECT_THROW(cache_.load(4), ContractViolation);  // block 1
  cache_.load(1);
  cache_.end_miss();
}

TEST_F(CacheContentsTest, EndMissWithoutRequestedItemThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  cache_.begin_miss(1);
  cache_.load(0);  // sideload only, requested item 1 not loaded
  EXPECT_THROW(cache_.end_miss(), ContractViolation);
}

TEST_F(CacheContentsTest, CapacityEnforcedAtLoadTime) {
  SKIP_WITHOUT_HOT_CHECKS();
  // Fill to capacity 6 via two blocks.
  cache_.begin_miss(0);
  for (ItemId it = 0; it < 4; ++it) cache_.load(it);
  cache_.end_miss();
  cache_.begin_miss(4);
  cache_.load(4);
  cache_.load(5);
  EXPECT_THROW(cache_.load(6), ContractViolation);  // would exceed 6
  cache_.evict(0);
  EXPECT_NO_THROW(cache_.load(6));
  cache_.end_miss();
  EXPECT_EQ(cache_.occupancy(), 6u);
}

TEST_F(CacheContentsTest, BeginMissOnResidentItemThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  cache_.begin_miss(2);
  cache_.load(2);
  cache_.end_miss();
  EXPECT_THROW(cache_.begin_miss(2), ContractViolation);
}

TEST_F(CacheContentsTest, DoubleLoadThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  cache_.begin_miss(2);
  cache_.load(2);
  EXPECT_THROW(cache_.load(2), ContractViolation);
  cache_.end_miss();
}

TEST_F(CacheContentsTest, EvictNonResidentThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  cache_.begin_miss(2);
  EXPECT_THROW(cache_.evict(7), ContractViolation);
  cache_.load(2);
  cache_.end_miss();
}

TEST_F(CacheContentsTest, EvictOutsideMissIsAllowed) {
  cache_.begin_miss(2);
  cache_.load(2);
  cache_.end_miss();
  // Definition 1 constrains loads, not evictions (e.g. IBLP promotion).
  EXPECT_NO_THROW(cache_.evict(2));
  EXPECT_FALSE(cache_.contains(2));
}

TEST_F(CacheContentsTest, HitClassificationSpatialThenTemporal) {
  cache_.begin_miss(1);
  cache_.load(1);
  cache_.load(2);  // sideload
  cache_.end_miss();
  // First touch of the sideloaded item: spatial hit.
  EXPECT_EQ(cache_.record_hit(2), HitKind::kSpatial);
  // Second touch: temporal.
  EXPECT_EQ(cache_.record_hit(2), HitKind::kTemporal);
  // The requested item's hits are temporal from the start.
  EXPECT_EQ(cache_.record_hit(1), HitKind::kTemporal);
}

TEST_F(CacheContentsTest, WastedSideloadAccounting) {
  cache_.begin_miss(1);
  cache_.load(1);
  cache_.load(2);
  cache_.load(3);
  cache_.end_miss();
  EXPECT_EQ(cache_.record_hit(2), HitKind::kSpatial);  // 2 gets used
  cache_.begin_miss(8);
  cache_.evict(3);  // never touched: pollution
  cache_.evict(2);  // touched: not wasted
  cache_.evict(1);  // requested load: not wasted
  cache_.load(8);
  cache_.end_miss();
  EXPECT_EQ(cache_.wasted_sideloads(), 1u);
  EXPECT_EQ(cache_.evictions(), 3u);
}

TEST_F(CacheContentsTest, RecordHitOnAbsentThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  EXPECT_THROW(cache_.record_hit(0), ContractViolation);
}

TEST_F(CacheContentsTest, RecordHitDuringMissThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  cache_.begin_miss(1);
  cache_.load(1);
  EXPECT_THROW(cache_.record_hit(1), ContractViolation);
  cache_.end_miss();
}

TEST_F(CacheContentsTest, ResidentEnumeration) {
  cache_.begin_miss(5);
  cache_.load(5);
  cache_.load(6);
  cache_.end_miss();
  const auto res = cache_.resident_items();
  ASSERT_EQ(res.size(), 2u);
  EXPECT_EQ(res[0], 5u);
  EXPECT_EQ(res[1], 6u);
  EXPECT_EQ(cache_.residents_of_block(1), 2u);
  EXPECT_EQ(cache_.residents_of_block(0), 0u);
}

TEST_F(CacheContentsTest, TimeAdvancesOnHitAndMiss) {
  EXPECT_EQ(cache_.now(), 0u);
  cache_.begin_miss(0);
  cache_.load(0);
  cache_.end_miss();
  EXPECT_EQ(cache_.now(), 1u);
  cache_.record_hit(0);
  EXPECT_EQ(cache_.now(), 2u);
}

TEST_F(CacheContentsTest, LoadTimeTracked) {
  cache_.begin_miss(0);
  cache_.load(0);
  cache_.end_miss();
  cache_.record_hit(0);
  cache_.begin_miss(4);
  cache_.load(4);
  cache_.end_miss();
  EXPECT_EQ(cache_.load_time(0), 0u);
  EXPECT_EQ(cache_.load_time(4), 2u);
  EXPECT_THROW(cache_.load_time(9), ContractViolation);
}

TEST_F(CacheContentsTest, ResetClearsEverything) {
  cache_.begin_miss(0);
  cache_.load(0);
  cache_.load(1);
  cache_.end_miss();
  cache_.reset();
  EXPECT_EQ(cache_.occupancy(), 0u);
  EXPECT_EQ(cache_.items_loaded(), 0u);
  EXPECT_EQ(cache_.now(), 0u);
  EXPECT_FALSE(cache_.contains(0));
}

TEST(CacheContents, ZeroCapacityRejected) {
  UniformBlockMap map(4, 2);
  EXPECT_THROW(CacheContents(map, 0), ContractViolation);
}

}  // namespace
}  // namespace gcaching
