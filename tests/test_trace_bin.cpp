// Binary `gctrace` format (core/trace_io.hpp): round-trip fidelity and,
// above all, LOUD failure on short or corrupt files. A binary trace that
// silently loads shorter than it was written poisons every downstream
// number, so the truncation error message is pinned here: it must name the
// actual size, the expected size, the record size, and the byte offset
// where the stream ends.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/trace_io.hpp"
#include "traces/synthetic.hpp"
#include "util/contracts.hpp"

namespace gcaching {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::path(::testing::TempDir()) / name).string();
}

Workload small_workload() {
  Workload w = traces::zipf_items(1024, 16, 500, 0.9, 3);
  w.name = "bin round trip";
  return w;
}

TEST(TraceBin, RoundTripPreservesEverything) {
  const Workload w = small_workload();
  const std::string path = tmp_path("roundtrip.gct");
  save_trace_bin_file(path, w);

  const TraceView view(path);
  EXPECT_EQ(view.size(), w.trace.size());
  EXPECT_EQ(view.num_items(), w.map->num_items());
  EXPECT_EQ(view.block_size(), w.map->max_block_size());
  EXPECT_EQ(view.name(), w.name);
  ASSERT_EQ(view.accesses().size(), w.trace.size());
  for (std::size_t i = 0; i < w.trace.size(); ++i)
    ASSERT_EQ(view.accesses()[i], w.trace[i]) << "record " << i;

  const Workload back = view.materialize();
  EXPECT_EQ(back.trace.accesses(), w.trace.accesses());
  EXPECT_EQ(back.name, w.name);
  EXPECT_EQ(back.map->num_items(), w.map->num_items());
  EXPECT_EQ(back.map->max_block_size(), w.map->max_block_size());
}

TEST(TraceBin, EmptyNameAndUnpaddedNameRoundTrip) {
  for (const std::string& name : {std::string{}, std::string{"x"},
                                  std::string{"exactly8"},
                                  std::string{"nine char"}}) {
    Workload w = small_workload();
    w.name = name;
    const std::string path = tmp_path("name.gct");
    save_trace_bin_file(path, w);
    const TraceView view(path);
    EXPECT_EQ(view.name(), name);
    EXPECT_EQ(view.size(), w.trace.size());
  }
}

TEST(TraceBin, DetectsFormatByMagic) {
  const Workload w = small_workload();
  const std::string bin = tmp_path("detect.gct");
  const std::string text = tmp_path("detect.gcw");
  save_trace_bin_file(bin, w);
  save_workload_file(text, w);
  EXPECT_TRUE(is_trace_bin_file(bin));
  EXPECT_FALSE(is_trace_bin_file(text));
  EXPECT_FALSE(is_trace_bin_file(tmp_path("does-not-exist.gct")));
}

TEST(TraceBin, ExplicitPartitionsAreRejected) {
  Workload w = small_workload();
  std::vector<std::vector<ItemId>> blocks;
  for (ItemId i = 0; i < 16; ++i) blocks.push_back({i});
  w.map = std::make_shared<ExplicitBlockMap>(std::move(blocks));
  w.trace = Trace(std::vector<ItemId>{0, 5, 3});
  EXPECT_THROW(save_trace_bin_file(tmp_path("explicit.gct"), w),
               ContractViolation);
}

// ---- loud corruption errors -----------------------------------------------

/// Writes a valid file and returns (path, expected total size).
std::pair<std::string, std::uint64_t> valid_file(const std::string& name) {
  const Workload w = small_workload();
  const std::string path = tmp_path(name);
  save_trace_bin_file(path, w);
  return {path, std::filesystem::file_size(path)};
}

std::string error_of(const std::string& path) {
  try {
    const TraceView view(path);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "TraceView(" << path << ") did not throw";
  return {};
}

// The pinned regression: truncating mid-record must fail with a message
// naming the byte offset where records start, the expected record size,
// the expected and actual file sizes, and the last complete record.
TEST(TraceBin, TruncatedMidRecordFailsWithOffsets) {
  const auto [path, full_size] = valid_file("truncated.gct");
  // Cut two records plus 2 bytes, landing mid-record.
  const std::uint64_t cut_size = full_size - 2 * sizeof(ItemId) - 2;
  std::filesystem::resize_file(path, cut_size);

  const std::string msg = error_of(path);
  EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
  EXPECT_NE(msg.find("file is " + std::to_string(cut_size) + " bytes"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("expected " + std::to_string(full_size)),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("x " + std::to_string(sizeof(ItemId)) + " bytes"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("starting at byte"), std::string::npos) << msg;
  EXPECT_NE(msg.find("complete records"), std::string::npos) << msg;
}

TEST(TraceBin, TruncatedInsideHeaderFailsLoudly) {
  const auto [path, full_size] = valid_file("shortheader.gct");
  (void)full_size;
  std::filesystem::resize_file(path, 17);
  const std::string msg = error_of(path);
  EXPECT_NE(msg.find("file is 17 bytes"), std::string::npos) << msg;
  EXPECT_NE(msg.find("40-byte gctrace header"), std::string::npos) << msg;
}

TEST(TraceBin, TrailingGarbageFailsLoudly) {
  const auto [path, full_size] = valid_file("trailing.gct");
  {
    std::ofstream os(path, std::ios::binary | std::ios::app);
    os << "junk";
  }
  const std::string msg = error_of(path);
  EXPECT_NE(msg.find("trailing garbage"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expected " + std::to_string(full_size)),
            std::string::npos)
      << msg;
}

TEST(TraceBin, BadMagicAndBadVersionFailLoudly) {
  const auto [path, full_size] = valid_file("magic.gct");
  (void)full_size;
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.write("NOPE", 4);
  }
  EXPECT_NE(error_of(path).find("bad magic"), std::string::npos);
  {
    const Workload w = small_workload();
    save_trace_bin_file(path, w);
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(4);
    const char v2[4] = {2, 0, 0, 0};
    f.write(v2, 4);
  }
  EXPECT_NE(error_of(path).find("unsupported gctrace version 2"),
            std::string::npos);
}

// The text loader's counterpart guarantee, pinned alongside: a declared
// trace length longer than the data must fail, not yield a shorter trace.
TEST(TraceBin, TextLoaderRejectsShortTrace) {
  const std::string path = tmp_path("short.gcw");
  {
    std::ofstream os(path);
    os << "gcworkload v1\n"
       << "items 8 blocks 2 maxblock 4\n"
       << "uniform 4\n"
       << "trace 10\n"
       << "0 1 2 3\n";  // only 4 of the declared 10
  }
  try {
    (void)load_workload_file(path);
    ADD_FAILURE() << "short text trace did not throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("shorter than declared"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace gcaching
