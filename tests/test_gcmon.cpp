// Tests for the gcmon runtime-monitoring tier (src/obs/gcmon.*,
// hdr_histogram.hpp, shard_metrics.hpp) and its loadgen integration.
//
// The load-bearing guarantees:
//   * HdrHistogram percentiles stay within the documented <=1% relative
//     error of the exact nearest-rank sample, on adversarial distributions
//     (bimodal, single-bucket, overflow) — and are bit-exact below 256 ns;
//   * merge is bucket-wise addition, hence associative and commutative:
//     merge order never changes any percentile;
//   * concurrent record/merge/query never corrupts counts (the tsan preset
//     runs this suite via the `gcached` label);
//   * the monitor's harvest is a pure relaxed-atomic read: deltas are exact
//     between consecutive snapshots, gauges don't difference, the ring
//     trims oldest-first, and the latency summary persists across histogram
//     deregistration (final-export gauge semantics);
//   * the Prometheus exposition round-trips its own validator, and
//     write_file_atomic leaves no debris on failure;
//   * attaching a monitor + atlas to a 1-shard 1-thread run changes NOTHING:
//     SimStats stay bit-identical to simulate_fast (the differential anchor
//     with monitoring attached);
//   * under GCACHING_OBS=OFF the GC_MON_* macros provably compile to zero
//     code (constexpr proof, mirroring test_obs_timeline's GC_OBS_ proof);
//   * detail::replay_closed_loop's bracketed measurement records exactly the
//     access duration — inter-op bookkeeping time never lands in the
//     histogram (pinned with a deterministic fake clock).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gcached/gcached.hpp"
#include "gcached/loadgen.hpp"
#include "obs/gcmon.hpp"
#include "obs/hdr_histogram.hpp"
#include "obs/shard_metrics.hpp"
#include "policies/factory.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

using obs::HdrHistogram;
using obs::Monitor;
using obs::MonitorConfig;
using obs::ShardAtlas;
using obs::ShardValues;
using obs::Snapshot;

#if !defined(GCACHING_OBS)
// The zero-code proof: with GCACHING_OBS off, a function body consisting of
// every GC_MON_* publish macro must still be a constant expression — only
// possible if each macro contributes no code at all. (Mirrors the GC_OBS_*
// elision proof in test_obs_timeline.cpp.)
constexpr int mon_free_identity(int v) {
  GC_MON_ATLAS(mon, nullptr);
  if (GC_MON_ATTACHED(mon)) {
    GC_MON_SHARD_ADD(mon, 0, hits, 1);
    GC_MON_SHARD_ADD(mon, 0, misses, 1);
    GC_MON_SHARD_SET(mon, 0, residency, 2);
  }
  return v;
}
static_assert(mon_free_identity(3) == 3,
              "GC_MON_* must compile to nothing under GCACHING_OBS=OFF");
#endif

// ---- HdrHistogram bucket geometry -------------------------------------------

TEST(HdrHistogram, ExactRegionRoundTripsBitIdentically) {
  // Values below 2*kSubBuckets = 256 get width-1 buckets: the representative
  // IS the value.
  for (std::uint64_t v = 0; v < 2 * HdrHistogram::kSubBuckets; ++v) {
    const std::size_t idx = HdrHistogram::bucket_index(v);
    EXPECT_EQ(HdrHistogram::bucket_lower(idx), v);
    EXPECT_EQ(HdrHistogram::bucket_width(idx), 1u);
    EXPECT_EQ(HdrHistogram::bucket_representative(idx),
              static_cast<double>(v));
  }
}

TEST(HdrHistogram, BucketIndexIsMonotoneAndEdgesAreConsistent) {
  // Every bucket's lower edge maps back to that bucket, and indices are
  // non-decreasing across a log-spread sweep of values.
  for (std::size_t idx = 0; idx < HdrHistogram::kOverflowBucket; ++idx) {
    const std::uint64_t lo = HdrHistogram::bucket_lower(idx);
    EXPECT_EQ(HdrHistogram::bucket_index(lo), idx) << "lower edge of " << idx;
    const std::uint64_t hi = lo + HdrHistogram::bucket_width(idx) - 1;
    EXPECT_EQ(HdrHistogram::bucket_index(hi), idx) << "upper edge of " << idx;
  }
  std::size_t prev = 0;
  for (std::uint64_t v = 0; v < (1ULL << 22); v += 97) {
    const std::size_t idx = HdrHistogram::bucket_index(v);
    EXPECT_GE(idx, prev);
    prev = idx;
  }
}

TEST(HdrHistogram, OverflowBucketCatchesEverythingPastMaxExponent) {
  const std::uint64_t edge = 1ULL << HdrHistogram::kMaxExponent;
  EXPECT_EQ(HdrHistogram::bucket_index(edge), HdrHistogram::kOverflowBucket);
  EXPECT_EQ(HdrHistogram::bucket_index(edge - 1),
            HdrHistogram::kOverflowBucket - 1);
  EXPECT_EQ(HdrHistogram::bucket_index(~0ULL), HdrHistogram::kOverflowBucket);
  HdrHistogram h;
  h.record(edge);
  h.record(~0ULL);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(HdrHistogram::kOverflowBucket), 2u);
  // The overflow bucket reports its lower edge for every quantile.
  EXPECT_EQ(h.quantile(0.5), static_cast<double>(edge));
  EXPECT_EQ(h.max_value(), static_cast<double>(edge));
}

// ---- Percentile error bound vs exact nearest-rank ---------------------------

/// Exact nearest-rank with the same convention quantile() documents: the
/// sorted sample at index round(q * (N - 1)).
double exact_nearest_rank(std::vector<std::uint64_t> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const double pos = q * static_cast<double>(samples.size() - 1);
  return static_cast<double>(
      samples[static_cast<std::size_t>(pos + 0.5)]);
}

void expect_quantiles_within_bound(const std::vector<std::uint64_t>& samples,
                                   const char* what) {
  HdrHistogram h;
  for (const std::uint64_t v : samples) h.record(v);
  ASSERT_EQ(h.count(), samples.size());
  for (const double q : {0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    const double exact = exact_nearest_rank(samples, q);
    const double got = h.quantile(q);
    if (exact == 0.0) {
      EXPECT_EQ(got, 0.0) << what << " q=" << q;
    } else {
      EXPECT_NEAR(got / exact, 1.0, 0.01)
          << what << " q=" << q << " exact=" << exact << " got=" << got;
    }
  }
}

TEST(HdrHistogram, BimodalDistributionStaysWithinOnePercent) {
  // Two far-apart modes — the distribution where a mean or a coarse bucket
  // scheme goes badly wrong: fast hits ~500 ns, slow fills ~2 ms.
  std::vector<std::uint64_t> samples;
  for (std::uint64_t i = 0; i < 10'000; ++i)
    samples.push_back(400 + i % 200);  // 400..599 ns
  for (std::uint64_t i = 0; i < 10'000; ++i)
    samples.push_back(1'900'000 + 40 * (i % 10'000));  // 1.9..2.3 ms
  expect_quantiles_within_bound(samples, "bimodal");
}

TEST(HdrHistogram, SingleBucketDistributionIsExactToTheBound) {
  // Every sample identical: all quantiles must report that one bucket.
  std::vector<std::uint64_t> samples(5'000, 300'000);
  expect_quantiles_within_bound(samples, "single-bucket");
  HdrHistogram h;
  for (const std::uint64_t v : samples) h.record(v);
  EXPECT_EQ(h.quantile(0.0), h.quantile(1.0));
}

TEST(HdrHistogram, LogSpreadDistributionStaysWithinOnePercent) {
  // One sample per octave across the whole dynamic range below overflow —
  // maximally stresses the per-octave sub-bucket rounding.
  std::vector<std::uint64_t> samples;
  for (unsigned k = 0; k < HdrHistogram::kMaxExponent; ++k)
    for (std::uint64_t j = 0; j < 50; ++j)
      samples.push_back((1ULL << k) + j * ((1ULL << k) / 64 + 1));
  expect_quantiles_within_bound(samples, "log-spread");
}

TEST(HdrHistogram, EmptyHistogramReportsZero) {
  HdrHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.max_value(), 0.0);
}

// ---- Merge algebra ----------------------------------------------------------

void fill_pattern(HdrHistogram& h, std::uint64_t base, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) h.record(base + i * 37);
}

TEST(HdrHistogram, MergeIsAssociativeAndCommutative) {
  HdrHistogram a, b, c;
  fill_pattern(a, 100, 1'000);
  fill_pattern(b, 50'000, 1'000);
  fill_pattern(c, 9'000'000, 1'000);

  HdrHistogram ab_c;  // (a + b) + c
  ab_c.merge_from(a);
  ab_c.merge_from(b);
  ab_c.merge_from(c);
  HdrHistogram c_ba;  // c + (b + a)
  c_ba.merge_from(c);
  c_ba.merge_from(b);
  c_ba.merge_from(a);

  ASSERT_EQ(ab_c.count(), 3'000u);
  ASSERT_EQ(c_ba.count(), 3'000u);
  for (std::size_t i = 0; i < HdrHistogram::kBuckets; ++i)
    ASSERT_EQ(ab_c.bucket_count(i), c_ba.bucket_count(i)) << "bucket " << i;
  for (const double q : {0.01, 0.5, 0.99, 0.999})
    EXPECT_EQ(ab_c.quantile(q), c_ba.quantile(q)) << "q=" << q;
  EXPECT_EQ(ab_c.max_value(), c_ba.max_value());
}

TEST(HdrHistogram, MergePreservesExactCountsAndClearResets) {
  HdrHistogram a, b;
  fill_pattern(a, 10, 100);
  fill_pattern(b, 10, 100);  // identical pattern: counts double
  a.merge_from(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.bucket_count(HdrHistogram::bucket_index(10)), 2u);
  a.clear();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.quantile(0.5), 0.0);
}

// Concurrent recorders + a live merger: the tsan preset runs this via the
// `gcached` label. After quiescing, every record must be accounted for.
TEST(HdrHistogram, ConcurrentRecordAndMergeStress) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  HdrHistogram shared;
  std::vector<std::thread> recorders;
  for (std::size_t t = 0; t < kThreads; ++t) {
    recorders.emplace_back([&shared, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        shared.record(100 + t * 1'000 + i % 500);
    });
  }
  // Live merger: repeatedly merge the (still-recording) histogram into a
  // scratch table and query it — must never crash, corrupt, or block.
  std::thread merger([&shared] {
    for (int round = 0; round < 50; ++round) {
      HdrHistogram scratch;
      scratch.merge_from(shared);
      const double p50 = scratch.quantile(0.5);
      ASSERT_GE(p50, 0.0);
      ASSERT_LE(scratch.count(), kThreads * kPerThread);
    }
  });
  for (std::thread& th : recorders) th.join();
  merger.join();
  EXPECT_EQ(shared.count(), kThreads * kPerThread);
  HdrHistogram merged;
  merged.merge_from(shared);
  EXPECT_EQ(merged.count(), kThreads * kPerThread);
}

// ---- ShardAtlas / ShardValues -----------------------------------------------

TEST(ShardAtlas, RelaxedReadsSeeEveryPublishedCounter) {
  ShardAtlas atlas(3);
  ASSERT_EQ(atlas.size(), 3u);
  atlas.shard(1).hits.fetch_add(7, std::memory_order_relaxed);
  atlas.shard(1).misses.fetch_add(2, std::memory_order_relaxed);
  atlas.shard(1).residency.store(42, std::memory_order_relaxed);
  const ShardValues v = atlas.read(1);
  EXPECT_EQ(v.hits, 7u);
  EXPECT_EQ(v.misses, 2u);
  EXPECT_EQ(v.residency, 42u);
  const ShardValues untouched = atlas.read(0);
  EXPECT_EQ(untouched.hits, 0u);
}

TEST(ShardAtlas, DifferenceSubtractsCountersButCarriesGauges) {
  ShardValues now, before;
  now.hits = 10;
  now.backoff_ns = 500;
  now.residency = 64;
  before.hits = 4;
  before.backoff_ns = 100;
  before.residency = 99;  // stale gauge must NOT difference
  const ShardValues d = now - before;
  EXPECT_EQ(d.hits, 6u);
  EXPECT_EQ(d.backoff_ns, 400u);
  EXPECT_EQ(d.residency, 64u);  // gauge: current value, not now-before
}

// ---- Monitor harvest / ring -------------------------------------------------

TEST(GcmonMonitor, HarvestComputesExactDeltasBetweenSnapshots) {
  ShardAtlas atlas(2);
  Monitor mon;
  mon.attach_atlas(&atlas);

  atlas.shard(0).hits.fetch_add(5, std::memory_order_relaxed);
  atlas.shard(1).misses.fetch_add(3, std::memory_order_relaxed);
  const Snapshot s1 = mon.harvest_now();
  EXPECT_EQ(s1.seq, 0u);
  ASSERT_EQ(s1.shards.size(), 2u);
  EXPECT_EQ(s1.shards[0].hits, 5u);
  EXPECT_EQ(s1.shard_deltas[0].hits, 5u);
  EXPECT_EQ(s1.totals.hits, 5u);
  EXPECT_EQ(s1.totals.misses, 3u);

  atlas.shard(0).hits.fetch_add(2, std::memory_order_relaxed);
  const Snapshot s2 = mon.harvest_now();
  EXPECT_EQ(s2.seq, 1u);
  EXPECT_EQ(s2.shards[0].hits, 7u);       // cumulative
  EXPECT_EQ(s2.shard_deltas[0].hits, 2u);  // since s1
  EXPECT_EQ(s2.shard_deltas[1].misses, 0u);
  EXPECT_GE(s2.uptime_s, s1.uptime_s);
}

TEST(GcmonMonitor, RingTrimsOldestFirst) {
  MonitorConfig cfg;
  cfg.ring_capacity = 3;
  Monitor mon(cfg);
  for (int i = 0; i < 5; ++i) mon.harvest_now();
  EXPECT_EQ(mon.snapshot_count(), 3u);
  const std::vector<Snapshot> ring = mon.snapshots();
  ASSERT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring[0].seq, 2u);
  EXPECT_EQ(ring[2].seq, 4u);
}

TEST(GcmonMonitor, LatencySummaryPersistsAfterDeregistration) {
  HdrHistogram h;
  h.record(1'000);
  h.record(2'000);
  Monitor mon;
  mon.add_histogram(&h);
  const Snapshot live = mon.harvest_now();
  EXPECT_EQ(live.latency.count, 2u);
  EXPECT_GT(live.latency.p50_ns, 0.0);
  mon.remove_histogram(&h);
  // Final-export gauge semantics: the last observed summary persists
  // instead of snapping to zero once the load threads deregister.
  const Snapshot after = mon.harvest_now();
  EXPECT_EQ(after.latency.count, 2u);
  EXPECT_EQ(after.latency.p50_ns, live.latency.p50_ns);
}

TEST(GcmonMonitor, BackgroundThreadHarvestsAndStopTakesFinalSnapshot) {
  MonitorConfig cfg;
  cfg.interval = std::chrono::milliseconds(1);
  Monitor mon(cfg);
  EXPECT_FALSE(mon.running());
  mon.start();
  EXPECT_TRUE(mon.running());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mon.stop();
  EXPECT_FALSE(mon.running());
  // At least the immediate first tick plus stop()'s final harvest.
  EXPECT_GE(mon.snapshot_count(), 2u);
  // stop() is idempotent and start() can relaunch.
  mon.stop();
  mon.start();
  mon.stop();
}

// ---- Prometheus / JSONL export ----------------------------------------------

TEST(GcmonExport, PrometheusTextRoundTripsTheValidator) {
  ShardAtlas atlas(2);
  atlas.shard(0).hits.fetch_add(11, std::memory_order_relaxed);
  atlas.shard(1).backoff_ns.fetch_add(12'345, std::memory_order_relaxed);
  HdrHistogram h;
  h.record(5'000);
  Monitor mon;
  mon.attach_atlas(&atlas);
  mon.add_histogram(&h);
  const Snapshot snap = mon.harvest_now();
  const std::string text = mon.prometheus_text(snap);
  EXPECT_EQ(obs::validate_prometheus_text(text), "");
  EXPECT_NE(text.find("gcached_shard_hits_total{shard=\"0\"} 11"),
            std::string::npos);
  EXPECT_NE(text.find("gcached_shard_backoff_nanoseconds_total{shard=\"1\"} "
                      "12345"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE gcached_shard_residency_items gauge"),
            std::string::npos);
  EXPECT_NE(text.find("gcached_latency_count 1"), std::string::npos);
  EXPECT_NE(text.find("gcmon_snapshot_seq"), std::string::npos);
}

TEST(GcmonExport, ValidatorRejectsMalformedExpositions) {
  using obs::validate_prometheus_text;
  EXPECT_NE(validate_prometheus_text(""), "");  // no samples
  EXPECT_NE(validate_prometheus_text("metric_without_type 1\n"), "");
  EXPECT_NE(validate_prometheus_text("# TYPE 9bad counter\n9bad 1\n"), "");
  EXPECT_NE(validate_prometheus_text("# TYPE m counter\nm nan\n"), "");
  EXPECT_NE(
      validate_prometheus_text("# TYPE m counter\nm{shard=\"0} 1\n"), "");
  EXPECT_NE(validate_prometheus_text("# BOGUS m counter\nm 1\n"), "");
  EXPECT_EQ(validate_prometheus_text("# HELP m h\n# TYPE m counter\nm 1\n"),
            "");
  EXPECT_EQ(
      validate_prometheus_text("# TYPE m gauge\nm{shard=\"0\"} 1.5\n"), "");
}

TEST(GcmonExport, JsonlLineCarriesTotalsLatencyAndPerShardArrays) {
  ShardAtlas atlas(2);
  atlas.shard(0).hits.fetch_add(4, std::memory_order_relaxed);
  Monitor mon;
  mon.attach_atlas(&atlas);
  const Snapshot snap = mon.harvest_now();
  const std::string line = mon.jsonl_line(snap);
  EXPECT_NE(line.find("\"seq\": 0"), std::string::npos);
  EXPECT_NE(line.find("\"totals\": {\"hits\": 4"), std::string::npos);
  EXPECT_NE(line.find("\"latency\": {\"count\": 0"), std::string::npos);
  EXPECT_NE(line.find("\"shards\": ["), std::string::npos);
  EXPECT_NE(line.find("\"deltas\": ["), std::string::npos);
}

TEST(GcmonExport, WriteFileAtomicWritesWholeFileAndFailsCleanly) {
  const std::string path = ::testing::TempDir() + "gcmon_atomic_test.prom";
  ASSERT_TRUE(obs::write_file_atomic(path, "# TYPE m counter\nm 1\n"));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "# TYPE m counter\nm 1\n");
  std::remove(path.c_str());
  // Unwritable target directory: returns false, leaves no temp debris.
  EXPECT_FALSE(obs::write_file_atomic(
      "/nonexistent_gcmon_dir/out.prom", "x"));
}

// ---- Bracketed latency measurement (fake clock) -----------------------------

/// Deterministic manual clock for detail::replay_closed_loop. now() is
/// called exactly twice per op (t0 before the access, t1 after); the clock
/// injects `inter_op_ns` of "bookkeeping time" before every t0, modeling
/// the loop-control / recording tail that the OLD chained measurement
/// wrongly attributed to the next operation.
struct FakeClock {
  using duration = std::chrono::nanoseconds;
  using time_point = std::chrono::time_point<FakeClock, duration>;
  static inline std::uint64_t now_ns = 0;
  static inline std::uint64_t calls = 0;
  static inline std::uint64_t inter_op_ns = 0;
  static time_point now() {
    if (calls % 2 == 0) now_ns += inter_op_ns;  // gap lands BEFORE t0
    ++calls;
    return time_point(duration(static_cast<std::int64_t>(now_ns)));
  }
  static void reset(std::uint64_t gap) {
    now_ns = 0;
    calls = 0;
    inter_op_ns = gap;
  }
};

TEST(LoadgenBracketing, RecordedLatencyIsExactlyTheAccessDuration) {
  FakeClock::reset(10'000);  // huge inter-op gap: must never be recorded
  obs::HdrHistogram hist;
  gcached::detail::replay_closed_loop<FakeClock>(
      [](std::size_t i) { FakeClock::now_ns += 100 + i; },
      /*start=*/0, /*stride=*/1, /*wrap=*/1'000, /*ops=*/8, hist);
  ASSERT_EQ(hist.count(), 8u);
  // Each op's recorded latency is exactly what the access advanced — values
  // 100..107 are in the histogram's exact region, so this is bit-precise.
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_EQ(hist.bucket_count(obs::HdrHistogram::bucket_index(100 + i)), 1u)
        << "op " << i;
  // The 10 us inter-op gap never leaked into any op's latency.
  EXPECT_EQ(hist.max_value(), 107.0);
  // ... even though the clock itself saw every gap pass.
  EXPECT_EQ(FakeClock::now_ns,
            8 * 10'000 + (100 + 101 + 102 + 103 + 104 + 105 + 106 + 107));
}

TEST(LoadgenBracketing, StrideWrapsBackToTheThreadsOwnStart) {
  FakeClock::reset(0);
  obs::HdrHistogram hist;
  std::vector<std::size_t> visited;
  gcached::detail::replay_closed_loop<FakeClock>(
      [&visited](std::size_t i) { visited.push_back(i); },
      /*start=*/1, /*stride=*/2, /*wrap=*/5, /*ops=*/5, hist);
  EXPECT_EQ(visited, (std::vector<std::size_t>{1, 3, 1, 3, 1}));
  EXPECT_EQ(hist.count(), 5u);
}

// ---- Differential anchor with monitoring attached ---------------------------

TEST(GcmonDifferential, AttachedMonitorNeverPerturbsTheRun) {
  // The gcached anchor again, now with a live atlas + monitor harvesting on
  // a tight interval: 1 shard / 1 thread must STILL be bit-identical to
  // simulate_fast. Monitoring reads must not change what the run computes.
  Workload w = traces::zipf_items(2048, 16, 30'000, 0.9, 7);
  w.trace.precompute_block_ids(*w.map);
  const std::size_t capacity = 256;

  gcached::GcachedConfig cfg;
  cfg.num_shards = 1;
  cfg.capacity = capacity;
  const auto cache = gcached::make_concurrent_cache("item-lru", w.map, cfg);

  ShardAtlas atlas(1);
  MonitorConfig mcfg;
  mcfg.interval = std::chrono::milliseconds(1);
  Monitor mon(mcfg);
  mon.attach_atlas(&atlas);
  cache->attach_atlas(&atlas);
  mon.start();

  gcached::LoadSpec spec;
  spec.threads = 1;
  spec.monitor = &mon;
  const gcached::LoadResult res =
      run_load(*cache, w.trace, w.trace.block_ids(), spec);
  mon.stop();
  cache->attach_atlas(nullptr);

  const SimStats expected = simulate_fast_spec("item-lru", w, capacity);
  EXPECT_EQ(res.stats, expected);

#if defined(GCACHING_OBS)
  // The atlas totals agree exactly with the run's own statistics: on a
  // quiesced 1-shard run the published hit/miss split is the SimStats split.
  const ShardValues totals = atlas.read(0);
  EXPECT_EQ(totals.hits + totals.misses, res.ops);
  EXPECT_EQ(totals.misses, expected.misses);
  EXPECT_EQ(totals.lock_acquisitions, res.lock_acquisitions);
  EXPECT_EQ(totals.trylock_failures, 0u);
  EXPECT_EQ(totals.backoff_ns, 0u);
  // The final harvest (taken by run_load after quiesce) saw the totals and
  // a complete latency summary.
  const std::vector<Snapshot> ring = mon.snapshots();
  ASSERT_FALSE(ring.empty());
  EXPECT_EQ(ring.back().totals.hits + ring.back().totals.misses, res.ops);
  EXPECT_EQ(ring.back().latency.count, res.ops);
#endif
}

TEST(GcmonDifferential, AtlasShardCountMismatchIsRejected) {
  Workload w = traces::zipf_items(512, 16, 1'000, 0.9, 3);
  w.trace.precompute_block_ids(*w.map);
  gcached::GcachedConfig cfg;
  cfg.num_shards = 4;
  cfg.capacity = 64;
  const auto cache = gcached::make_concurrent_cache("item-lru", w.map, cfg);
  ShardAtlas wrong(2);
  EXPECT_THROW(cache->attach_atlas(&wrong), ContractViolation);
  cache->attach_atlas(nullptr);  // detach is always legal
}

}  // namespace
}  // namespace gcaching
