// Unit tests for the IBLP upper bounds (Theorems 5-7), the numeric LP
// cross-check, and the Section 5.3 partition optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/competitive.hpp"
#include "bounds/iblp_upper.hpp"
#include "bounds/partition.hpp"
#include "util/mathx.hpp"

namespace gcaching::bounds {
namespace {

TEST(Theorem5, MatchesSleatorTarjanShape) {
  // i/(i-h): the LRU bound without the +1 (Section 5.2's footnote about
  // miss space).
  EXPECT_DOUBLE_EQ(iblp_item_layer_upper(200, 100), 2.0);
  EXPECT_DOUBLE_EQ(iblp_item_layer_upper(101, 100), 101.0);
}

TEST(Theorem5, UnboundedAtOrBelowH) {
  EXPECT_EQ(iblp_item_layer_upper(100, 100), kUnboundedRatio);
  EXPECT_EQ(iblp_item_layer_upper(50, 100), kUnboundedRatio);
}

TEST(Theorem6, CappedAtB) {
  // Small b, large h: the LP value exceeds B and the cap binds.
  EXPECT_DOUBLE_EQ(iblp_block_layer_upper(64, 1000, 16), 16.0);
}

TEST(Theorem6, LpValueWhenBelowCap) {
  const double b = 10000, h = 100, B = 16;
  const double expect = (b + 2 * B * h - B) / (b + B);
  EXPECT_DOUBLE_EQ(iblp_block_layer_upper(b, h, B), expect);
  EXPECT_LT(expect, B);
}

TEST(Theorem6, ApproachesOneForHugeBlockLayer) {
  EXPECT_NEAR(iblp_block_layer_upper(1e9, 100, 64), 1.0, 1e-2);
}

TEST(Theorem7, UnboundedWhenItemLayerTooSmall) {
  EXPECT_EQ(iblp_upper(100, 1000, 100, 64), kUnboundedRatio);
}

TEST(Theorem7, ContinuousAtRegionBoundary) {
  const double b = 5000, B = 64, h = 50;
  const double i_star = iblp_upper_region_boundary(b, B);
  const double below = iblp_upper(i_star * (1 - 1e-9), b, h, B);
  const double above = iblp_upper(i_star * (1 + 1e-9), b, h, B);
  EXPECT_NEAR(below, above, 1e-4 * below);
}

TEST(Theorem7, ClosedFormMatchesNumericLpWhereInteriorFeasible) {
  // The paper's closed form is derived from the LP's interior stationary
  // point; it is exact whenever that point is feasible (r in [0,1], s >= 0,
  // t in [1, B]) and a (valid but loose) upper bound otherwise. These
  // geometries have feasible interior optima — verified via the paper's
  // r* = (b + B(4h - 2i - 1)) / (b + B(2i - 1)) being in (0, 1):
  const double B = 16, h = 100;
  const double cases[][2] = {{150, 1600}, {120, 800}, {200, 3200}};
  for (const auto& c : cases) {
    const double i = c[0], b = c[1];
    const double r_star =
        (b + B * (4 * h - 2 * i - 1)) / (b + B * (2 * i - 1));
    ASSERT_GT(r_star, 0.0);
    ASSERT_LT(r_star, 1.0);
    const double closed = iblp_upper(i, b, h, B);
    const double numeric = iblp_upper_numeric(i, b, h, B);
    EXPECT_NEAR(numeric, closed, 0.02 * closed)
        << "i=" << i << " b=" << b;
  }
}

TEST(Theorem7, ClosedFormTracksNumericLpFromAbove) {
  // Outside the interior-feasible regime the LP optimum sits on a vertex
  // and the closed form typically over-estimates. One edge geometry
  // (i barely above h with a large b) exposes a small inaccuracy in the
  // paper's stated form: the temporal-only corner r = h/i, s = 0 achieves
  // i/(i-h), which can exceed the region-1 expression by ~2% (e.g.
  // i = 2h = 40, b = 1024, B = 16: closed 1.966 < corner 2.0). We
  // therefore assert dominance with a 3% edge allowance; away from that
  // corner the closed form is a genuine upper bound.
  const double B = 16;
  for (double h : {20.0, 100.0})
    for (double i : {2 * h, 8 * h, 64 * h})
      for (double b : {64.0, 1024.0, 16384.0}) {
        const double closed = iblp_upper(i, b, h, B);
        const double numeric = iblp_upper_numeric(i, b, h, B);
        EXPECT_GE(closed * 1.03, numeric)
            << "i=" << i << " b=" << b << " h=" << h;
      }
}

TEST(Theorem7, NumericNeverExceedsClosedForm) {
  // The closed form is an upper bound on the LP value, so the numeric
  // optimum can be below (when t caps early) but never meaningfully above.
  const double B = 64;
  for (double h : {50.0, 400.0})
    for (double i : {3 * h, 20 * h})
      for (double b : {256.0, 8192.0}) {
        const double closed = iblp_upper(i, b, h, B);
        const double numeric = iblp_upper_numeric(i, b, h, B);
        EXPECT_LE(numeric, closed * (1 + 1e-6));
      }
}

TEST(Partition, TransitionPointFormula) {
  const double h = 100, B = 64;
  const double t = item_cache_transition(h, B);
  EXPECT_NEAR(t, (3 * B * h - h - B * B - B) / (B - 1), 1e-9);
}

TEST(Partition, SmallKDegeneratesToItemCache) {
  const double h = 1000, B = 64;
  const double k = item_cache_transition(h, B) * 0.5;
  const auto choice = iblp_optimal_partition(k, h, B);
  EXPECT_DOUBLE_EQ(choice.item_layer, k);
  EXPECT_DOUBLE_EQ(choice.block_layer, 0.0);
  EXPECT_NEAR(choice.ratio, (2 * B * k - B * B - B) / (2 * (k - h)), 1e-9);
}

TEST(Partition, LargeKUsesClosedForm) {
  const double h = 1000, B = 64;
  const double k = 100 * h;
  const auto choice = iblp_optimal_partition(k, h, B);
  EXPECT_GT(choice.block_layer, 0.0);
  EXPECT_NEAR(choice.ratio,
              (k + B - 1) * (k - h + B * (2 * h - 1)) /
                  ((k - h + B) * (k - h + B)),
              1e-9);
}

TEST(Partition, ClosedFormMatchesNumericOptimizer) {
  const double B = 64;
  for (double h : {256.0, 4096.0}) {
    for (double mult : {4.0, 32.0, 256.0}) {
      const double k = mult * h;
      if (k <= h + 2) continue;
      const auto closed = iblp_optimal_partition(k, h, B);
      const auto numeric = iblp_optimal_partition_numeric(k, h, B);
      EXPECT_NEAR(numeric.ratio, closed.ratio, 0.03 * closed.ratio)
          << "k=" << k << " h=" << h;
    }
  }
}

TEST(Partition, OptimalSplitBeatsNaiveSplits) {
  const double B = 64, h = 1024, k = 64 * h;
  const auto best = iblp_optimal_partition(k, h, B);
  for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double i = frac * k;
    EXPECT_LE(best.ratio, iblp_upper(i, k - i, h, B) + 1e-6)
        << "frac=" << frac;
  }
}

TEST(Partition, Section53LargeCacheApproximations) {
  const double B = 64, h = 4096;
  // k >= 3h branch.
  const double k1 = 10 * h;
  EXPECT_NEAR(iblp_upper_large_cache_approx(k1, h, B),
              k1 * (k1 + 2 * B * h) / ((k1 - h) * (k1 - h)), 1e-9);
  // k < 3h branch.
  const double k2 = 2 * h;
  EXPECT_NEAR(iblp_upper_large_cache_approx(k2, h, B), B * k2 / (k2 - h),
              1e-9);
  // The approximations track the exact optimum within a small factor.
  const auto exact1 = iblp_optimal_partition(k1, h, B);
  EXPECT_NEAR(iblp_upper_large_cache_approx(k1, h, B), exact1.ratio,
              0.35 * exact1.ratio);
}

TEST(Table1UpperRow, ConstantAugmentationGives2B) {
  // Section 5.3: "the competitive ratio is ~= 2B when k = 2h".
  const double B = 64, h = 16384;
  const auto choice = iblp_optimal_partition(2 * h, h, B);
  EXPECT_NEAR(choice.ratio, 2 * B, 0.25 * 2 * B);
}

TEST(Table1UpperRow, KApproxBhGivesRatio3) {
  // "k ~= Bh yields a competitive ratio of ~= 3".
  const double B = 64, h = 16384;
  const auto choice = iblp_optimal_partition(B * h, h, B);
  EXPECT_NEAR(choice.ratio, 3.0, 0.5);
}

TEST(Table1UpperRow, MeetingPointNearSqrt2B) {
  // "the meeting point occurs when k ~= sqrt(2B) h".
  const double B = 64, h = 16384;
  double lo = h + 1, hi = 4 * B * h;
  // bisect ratio(k) == k/h on the optimal-partition bound
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double r = iblp_optimal_partition(mid, h, B).ratio;
    if (r <= mid / h)
      hi = mid;
    else
      lo = mid;
  }
  const double meet = hi / h;
  EXPECT_NEAR(meet, std::sqrt(2 * B), 0.3 * std::sqrt(2 * B));
}

TEST(Consistency, UpperBoundDominatesLowerBound) {
  // The achievable (upper) bound can never fall below the universal lower
  // bound. Checked across the Figure 3 h-sweep geometry.
  const double B = 64, k = 1 << 17;
  for (double h = B + 1; h < k / 2; h *= 2) {
    const double lower = gc_lower_bound(k, h, B);
    const double upper = iblp_optimal_partition(k, h, B).ratio;
    EXPECT_GE(upper + 1e-6, lower) << "h=" << h;
  }
}

}  // namespace
}  // namespace gcaching::bounds
