// Unit tests for core/trace and core/trace_io.
#include <gtest/gtest.h>

#include <sstream>

#include "core/trace.hpp"
#include "core/trace_io.hpp"
#include "util/contracts.hpp"

namespace gcaching {
namespace {

TEST(Trace, PushAndIterate) {
  Trace t;
  t.push(3);
  t.push(1);
  t.push(3);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[0], 3u);
  EXPECT_EQ(t[1], 1u);
  std::size_t count = 0;
  for (ItemId it : t) {
    (void)it;
    ++count;
  }
  EXPECT_EQ(count, 3u);
}

TEST(Trace, DistinctItems) {
  Trace t({1, 2, 2, 3, 1});
  EXPECT_EQ(t.distinct_items(), 3u);
}

TEST(Trace, MaxItem) {
  Trace t({5, 2, 9, 1});
  EXPECT_EQ(t.max_item(), 9u);
  EXPECT_EQ(Trace{}.max_item(), kInvalidItem);
}

TEST(Trace, Append) {
  Trace a({1, 2});
  Trace b({3});
  a.append(b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(a[2], 3u);
}

TEST(Workload, DistinctBlocks) {
  Workload w;
  w.map = make_uniform_blocks(8, 4);
  w.trace = Trace({0, 1, 2, 5});
  EXPECT_EQ(w.distinct_blocks(), 2u);
}

TEST(Workload, ValidateCatchesOutOfRange) {
  Workload w;
  w.map = make_uniform_blocks(4, 2);
  w.trace = Trace({0, 7});
  EXPECT_THROW(w.validate(), ContractViolation);
}

TEST(TraceIo, RoundTripUniform) {
  Workload w;
  w.map = make_uniform_blocks(16, 4);
  w.trace = Trace({0, 5, 5, 12, 3});
  w.name = "round trip test";
  std::ostringstream os;
  save_workload(os, w);
  std::istringstream is(os.str());
  const Workload back = load_workload(is);
  EXPECT_EQ(back.name, w.name);
  EXPECT_EQ(back.map->num_items(), 16u);
  EXPECT_EQ(back.map->max_block_size(), 4u);
  ASSERT_EQ(back.trace.size(), w.trace.size());
  for (std::size_t p = 0; p < w.trace.size(); ++p)
    EXPECT_EQ(back.trace[p], w.trace[p]);
  // Uniform maps round-trip as uniform.
  EXPECT_NE(dynamic_cast<const UniformBlockMap*>(back.map.get()), nullptr);
}

TEST(TraceIo, RoundTripExplicit) {
  Workload w;
  w.map = std::make_shared<ExplicitBlockMap>(
      std::vector<std::vector<ItemId>>{{0, 3}, {1, 2}, {4}});
  w.trace = Trace({4, 0, 1});
  std::ostringstream os;
  save_workload(os, w);
  std::istringstream is(os.str());
  const Workload back = load_workload(is);
  EXPECT_EQ(back.map->num_blocks(), 3u);
  EXPECT_EQ(back.map->block_of(3), 0u);
  EXPECT_EQ(back.map->block_of(2), 1u);
  EXPECT_EQ(back.trace.size(), 3u);
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# a comment\n"
      "gcworkload v1\n"
      "\n"
      "items 4 blocks 2 maxblock 2\n"
      "# another\n"
      "uniform 2\n"
      "trace 2\n"
      "0 3\n";
  std::istringstream is(text);
  const Workload w = load_workload(is);
  EXPECT_EQ(w.trace.size(), 2u);
  EXPECT_EQ(w.map->num_blocks(), 2u);
}

TEST(TraceIo, MissingHeaderFails) {
  std::istringstream is("items 4 blocks 2 maxblock 2\n");
  EXPECT_THROW(load_workload(is), std::runtime_error);
}

TEST(TraceIo, TruncatedTraceFails) {
  const std::string text =
      "gcworkload v1\nitems 4 blocks 2 maxblock 2\nuniform 2\ntrace 3\n0 1\n";
  std::istringstream is(text);
  EXPECT_THROW(load_workload(is), std::runtime_error);
}

TEST(TraceIo, FileRoundTrip) {
  Workload w;
  w.map = make_uniform_blocks(6, 3);
  w.trace = Trace({0, 1, 5});
  const std::string path = ::testing::TempDir() + "gc_trace_io_test.txt";
  save_workload_file(path, w);
  const Workload back = load_workload_file(path);
  EXPECT_EQ(back.trace.size(), 3u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcaching
