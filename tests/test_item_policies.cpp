// Unit tests for the Item Cache family: LRU, FIFO, LFU, CLOCK, Random, SLRU.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>
#include <utility>

#include "core/simulator.hpp"
#include "policies/item_clock.hpp"
#include "policies/item_fifo.hpp"
#include "policies/item_lfu.hpp"
#include "policies/item_lru.hpp"
#include "policies/item_random.hpp"
#include "policies/item_slru.hpp"
#include "policies/lru_list.hpp"
#include "traces/synthetic.hpp"
#include "util/contracts.hpp"
#include "util/rng.hpp"

namespace gcaching {
namespace {

// IndexedList misuse checks are hot-tier (GC_HOT_REQUIRE) and compiled out
// of the GC_FAST_SIM configuration; skip the throw tests there.
#define SKIP_WITHOUT_HOT_CHECKS() \
  if (!kHotChecksEnabled) GTEST_SKIP() << "hot checks compiled out"

// ---------------------------------------------------------------------------
// IndexedList
// ---------------------------------------------------------------------------

TEST(IndexedList, PushFrontAndOrder) {
  IndexedList l(8);
  l.push_front(3);
  l.push_front(5);
  l.push_front(1);
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(l.front(), 1u);
  EXPECT_EQ(l.back(), 3u);
  const auto v = l.to_vector();
  EXPECT_EQ(v, (std::vector<std::uint32_t>{1, 5, 3}));
}

TEST(IndexedList, MoveToFront) {
  IndexedList l(8);
  l.push_front(0);
  l.push_front(1);
  l.push_front(2);
  l.move_to_front(0);
  EXPECT_EQ(l.to_vector(), (std::vector<std::uint32_t>{0, 2, 1}));
}

TEST(IndexedList, RemoveMiddle) {
  IndexedList l(8);
  l.push_front(0);
  l.push_front(1);
  l.push_front(2);
  l.remove(1);
  EXPECT_EQ(l.to_vector(), (std::vector<std::uint32_t>{2, 0}));
  EXPECT_FALSE(l.contains(1));
}

TEST(IndexedList, PopBack) {
  IndexedList l(4);
  l.push_front(0);
  l.push_front(1);
  EXPECT_EQ(l.pop_back(), 0u);
  EXPECT_EQ(l.size(), 1u);
}

TEST(IndexedList, PushBack) {
  IndexedList l(4);
  l.push_front(1);
  l.push_back(2);
  EXPECT_EQ(l.back(), 2u);
}

TEST(IndexedList, DoubleInsertThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  IndexedList l(4);
  l.push_front(1);
  EXPECT_THROW(l.push_front(1), ContractViolation);
}

TEST(IndexedList, RemoveAbsentThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  IndexedList l(4);
  EXPECT_THROW(l.remove(2), ContractViolation);
}

TEST(IndexedList, EmptyBackThrows) {
  SKIP_WITHOUT_HOT_CHECKS();
  IndexedList l(4);
  EXPECT_THROW(l.back(), ContractViolation);
}

TEST(IndexedList, ForEachFromLruStopsEarly) {
  IndexedList l(8);
  l.push_front(0);
  l.push_front(1);
  l.push_front(2);
  std::vector<std::uint32_t> seen;
  l.for_each_from_lru([&](std::uint32_t id) {
    seen.push_back(id);
    return seen.size() < 2;
  });
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0, 1}));
}

TEST(IndexedList, ClearResets) {
  IndexedList l(4);
  l.push_front(0);
  l.clear();
  EXPECT_TRUE(l.empty());
  EXPECT_NO_THROW(l.push_front(0));
}

// ---------------------------------------------------------------------------
// LRU semantics
// ---------------------------------------------------------------------------

TEST(ItemLru, EvictsLeastRecentlyUsed) {
  auto map = make_singleton_blocks(8);
  ItemLru lru;
  // capacity 2: after 0,1 the LRU is 0; accessing 2 evicts 0.
  const SimStats s = simulate(*map, Trace({0, 1, 2, 0}), lru, 2);
  EXPECT_EQ(s.misses, 4u);  // 0,1,2 cold; 0 evicted then re-missed
}

TEST(ItemLru, HitRefreshesRecency) {
  auto map = make_singleton_blocks(8);
  ItemLru lru;
  // 0,1, hit 0, then 2 should evict 1 (not 0); final 0 hits.
  const SimStats s = simulate(*map, Trace({0, 1, 0, 2, 0}), lru, 2);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 2u);
}

TEST(ItemLru, NeverLoadsSiblings) {
  auto map = make_uniform_blocks(8, 4);
  ItemLru lru;
  const SimStats s = simulate(*map, Trace({0, 1, 2, 3}), lru, 8);
  EXPECT_EQ(s.misses, 4u);  // spatial locality ignored: all cold misses
  EXPECT_EQ(s.sideloads, 0u);
  EXPECT_EQ(s.spatial_hits, 0u);
}

// Reference LRU (naive vector-based) for cross-checking on random traces.
std::uint64_t reference_lru_misses(const Trace& trace, std::size_t k) {
  std::vector<ItemId> stack;  // front = MRU
  std::uint64_t misses = 0;
  for (ItemId it : trace) {
    auto pos = std::find(stack.begin(), stack.end(), it);
    if (pos != stack.end()) {
      stack.erase(pos);
    } else {
      ++misses;
      if (stack.size() == k) stack.pop_back();
    }
    stack.insert(stack.begin(), it);
  }
  return misses;
}

TEST(ItemLru, MatchesReferenceOnRandomTraces) {
  SplitMix64 rng(99);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 16;
    Trace t;
    for (int p = 0; p < 300; ++p)
      t.push(static_cast<ItemId>(rng.below(n)));
    const std::size_t k = 2 + rng.below(6);
    auto map = make_singleton_blocks(n);
    ItemLru lru;
    EXPECT_EQ(simulate(*map, t, lru, k).misses,
              reference_lru_misses(t, k))
        << "round " << round << " k=" << k;
  }
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

TEST(ItemFifo, IgnoresHitsWhenEvicting) {
  auto map = make_singleton_blocks(8);
  ItemFifo fifo;
  // 0,1, hit 0 (no refresh), 2 evicts 0 under FIFO; final 0 misses.
  const SimStats s = simulate(*map, Trace({0, 1, 0, 2, 0}), fifo, 2);
  EXPECT_EQ(s.misses, 4u);
}

TEST(ItemFifo, EvictsInInsertionOrder) {
  auto map = make_singleton_blocks(8);
  ItemFifo fifo;
  const SimStats s = simulate(*map, Trace({0, 1, 2, 1}), fifo, 2);
  // 2 evicts 0; 1 still resident -> hit.
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 1u);
}

// ---------------------------------------------------------------------------
// LFU
// ---------------------------------------------------------------------------

TEST(ItemLfu, EvictsLeastFrequent) {
  auto map = make_singleton_blocks(8);
  ItemLfu lfu;
  // 0 accessed 3x, 1 once; 2 should evict 1.
  const SimStats s = simulate(*map, Trace({0, 0, 0, 1, 2, 0}), lfu, 2);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 3u);
}

TEST(ItemLfu, TieBreaksFifo) {
  auto map = make_singleton_blocks(8);
  ItemLfu lfu;
  // 0 and 1 both freq 1; 2 evicts the older (0).
  const SimStats s = simulate(*map, Trace({0, 1, 2, 1}), lfu, 2);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(ItemLfu, FrequencyForgottenOnEviction) {
  auto map = make_singleton_blocks(8);
  ItemLfu lfu;
  // 0 builds freq 3, gets evicted (cap 1), comes back with freq 1.
  const SimStats s = simulate(*map, Trace({0, 0, 0, 1, 0, 1}), lfu, 1);
  EXPECT_EQ(s.misses, 4u);
}

TEST(ItemLfu, PromotionOrderPreservedWithinBucket) {
  auto map = make_singleton_blocks(8);
  ItemLfu lfu;
  // 1 is promoted to freq 2 BEFORE 0 is, so 0 enters the freq-2 bucket
  // second despite its older insertion tie. The bucket must keep tie
  // order: 2's miss victimizes 0 (tie 0), not 1 — a naive
  // arrival-order append would evict 1 and turn the final access into a
  // fourth miss.
  const SimStats s = simulate(*map, Trace({0, 1, 1, 0, 2, 1}), lfu, 2);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 3u);
}

// Differential check of the bucket-list LFU against a transparent ordered-
// set reference (the previous implementation's exact victim rule: smallest
// (frequency, insertion-sequence) first) on random traces. Pins the victim
// ORDER, which self-consistency between the two engines cannot.
TEST(ItemLfu, MatchesOrderedSetReferenceOnRandomTraces) {
  class SetLfu final : public ReplacementPolicy {
   public:
    void attach(const BlockMap& map, CacheContents& cache) override {
      set_attachment(map, cache);
      order_.clear();
      key_of_.assign(map.num_items(), {});
      resident_.assign(map.num_items(), false);
      next_tie_ = 0;
    }
    void on_hit(ItemId item) override {
      auto k = key_of_[item];
      order_.erase(k);
      ++k.first;
      key_of_[item] = k;
      order_.insert(k);
    }
    void on_miss(ItemId item) override {
      if (cache().full()) {
        const auto victim = *order_.begin();
        order_.erase(order_.begin());
        resident_[victim.second.second] = false;
        cache().evict(victim.second.second);
      }
      cache().load(item);
      const std::pair<std::uint64_t, std::pair<std::uint64_t, ItemId>> k{
          1, {next_tie_++, item}};
      key_of_[item] = k;
      resident_[item] = true;
      order_.insert(k);
    }
    void reset() override {}
    std::string name() const override { return "set-lfu"; }

   private:
    std::set<std::pair<std::uint64_t, std::pair<std::uint64_t, ItemId>>>
        order_;
    std::vector<std::pair<std::uint64_t, std::pair<std::uint64_t, ItemId>>>
        key_of_;
    std::vector<bool> resident_;
    std::uint64_t next_tie_ = 0;
  };

  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Workload w = traces::zipf_blocks(16, 4, 3000, 0.8, 2, seed);
    for (const std::size_t capacity : {std::size_t{5}, std::size_t{17}}) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " capacity=" + std::to_string(capacity));
      ItemLfu fast;
      SetLfu reference;
      const SimStats a = simulate(*w.map, w.trace, fast, capacity);
      const SimStats b = simulate(*w.map, w.trace, reference, capacity);
      EXPECT_EQ(a.misses, b.misses);
      EXPECT_EQ(a.hits, b.hits);
      EXPECT_EQ(a.evictions, b.evictions);
    }
  }
}

// ---------------------------------------------------------------------------
// CLOCK
// ---------------------------------------------------------------------------

TEST(ItemClock, BehavesAsSecondChance) {
  auto map = make_singleton_blocks(8);
  ItemClock clock;
  // Fill 0,1; hit 0 sets its ref bit; 2 should skip 0 and evict 1.
  const SimStats s = simulate(*map, Trace({0, 1, 0, 2, 0}), clock, 2);
  EXPECT_EQ(s.misses, 3u);
  EXPECT_EQ(s.hits, 2u);
}

TEST(ItemClock, SweepTerminates) {
  auto map = make_singleton_blocks(64);
  ItemClock clock;
  Trace t;
  for (int rep = 0; rep < 3; ++rep)
    for (ItemId it = 0; it < 64; ++it) t.push(it);
  EXPECT_NO_THROW(simulate(*map, t, clock, 8));
}

// ---------------------------------------------------------------------------
// Random
// ---------------------------------------------------------------------------

TEST(ItemRandom, DeterministicGivenSeed) {
  auto map = make_singleton_blocks(32);
  const auto w = traces::zipf_items(32, 1, 2000, 0.8, 7);
  ItemRandom a(5), b(5);
  EXPECT_EQ(simulate(*map, w.trace, a, 8).misses,
            simulate(*map, w.trace, b, 8).misses);
}

TEST(ItemRandom, SeedChangesBehavior) {
  auto map = make_singleton_blocks(32);
  const auto w = traces::zipf_items(32, 1, 4000, 0.5, 7);
  ItemRandom a(1), b(2);
  // Not strictly guaranteed to differ, but overwhelmingly likely.
  EXPECT_NE(simulate(*map, w.trace, a, 8).misses,
            simulate(*map, w.trace, b, 8).misses);
}

TEST(ItemRandom, OnlyEvictsWhenFull) {
  auto map = make_singleton_blocks(8);
  ItemRandom r(3);
  const SimStats s = simulate(*map, Trace({0, 1, 2}), r, 4);
  EXPECT_EQ(s.evictions, 0u);
}

// ---------------------------------------------------------------------------
// SLRU
// ---------------------------------------------------------------------------

TEST(ItemSlru, PromotionProtectsHotItems) {
  auto map = make_singleton_blocks(16);
  ItemSlru slru(0.5);
  // Capacity 4 (2 protected). 0 promoted by a hit; scan 1..4 must not
  // evict 0 because it sits in the protected segment.
  const SimStats s =
      simulate(*map, Trace({0, 0, 1, 2, 3, 4, 0}), slru, 4);
  EXPECT_EQ(s.hits, 2u);  // the second 0 and the final 0
}

TEST(ItemSlru, ZeroProtectedFractionIsPlainLru) {
  auto map = make_singleton_blocks(16);
  const auto w = traces::zipf_items(16, 1, 3000, 0.7, 3);
  ItemSlru slru(0.0);
  ItemLru lru;
  EXPECT_EQ(simulate(*map, w.trace, slru, 6).misses,
            simulate(*map, w.trace, lru, 6).misses);
}

TEST(ItemSlru, InvalidFractionThrows) {
  EXPECT_THROW(ItemSlru(1.0), ContractViolation);
  EXPECT_THROW(ItemSlru(-0.1), ContractViolation);
}

TEST(ItemSlru, NameIncludesFraction) {
  ItemSlru slru(0.25);
  EXPECT_NE(slru.name().find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace gcaching
