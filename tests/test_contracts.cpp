// Tier semantics of the contract system (src/util/contracts.hpp), beyond the
// basic throw tests in test_util.cpp:
//   * a violated cold contract throws ContractViolation carrying the failing
//     expression, file:line, and the message;
//   * an *uncaught* violation terminates the process with that context on
//     stderr (death test) — the "long benchmark runs fail loudly" guarantee;
//   * the hot tier (GC_HOT_*) provably compiles to zero evaluation under
//     GC_FAST_SIM: a hot contract with a *false* condition is still a
//     constant expression, which is only possible if the check contributes
//     no code at all.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "util/contracts.hpp"

namespace gcaching {
namespace {

int require_positive(int v) {
  GC_REQUIRE(v > 0, "v must be positive");
  return v;
}

constexpr int hot_checked_identity(int v) {
  GC_HOT_CHECK(v >= 0, "hot tier: v must be non-negative");
  return v;
}

// A satisfied hot contract is a constant expression in both configurations
// (the failing branch is never evaluated).
static_assert(hot_checked_identity(5) == 5);

#if defined(GC_FAST_SIM)
// The zero-code proof: with hot checks compiled out, even a *violated* hot
// contract must be constant-evaluable. If GC_HOT_CHECK expanded to any
// runtime test-and-throw, this line would not compile.
static_assert(hot_checked_identity(-1) == -1,
              "GC_HOT_CHECK must compile to nothing under GC_FAST_SIM");
static_assert(!kHotChecksEnabled);
#else
static_assert(kHotChecksEnabled);

TEST(ContractTiers, HotTierIsLiveInVerifyingBuild) {
  EXPECT_THROW(hot_checked_identity(-1), ContractViolation);
  EXPECT_EQ(hot_checked_identity(7), 7);
}
#endif

TEST(ContractTiers, ViolationCarriesExpressionFileAndLine) {
  const int expected_line = __LINE__ + 3;  // the GC_REQUIRE below
  std::string what;
  try {
    GC_REQUIRE(2 + 2 == 5, "arithmetic is broken");
    FAIL() << "GC_REQUIRE did not throw";
  } catch (const ContractViolation& e) {
    what = e.what();
  }
  EXPECT_NE(what.find("precondition"), std::string::npos) << what;
  EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos) << what;
  EXPECT_NE(what.find("test_contracts.cpp:" + std::to_string(expected_line)),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("arithmetic is broken"), std::string::npos) << what;
}

TEST(ContractTiers, EnsureAndCheckReportTheirKind) {
  try {
    GC_ENSURE(false, "");
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"), std::string::npos);
  }
  try {
    GC_CHECK(false, "");
    FAIL();
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("invariant"), std::string::npos);
  }
}

TEST(ContractTiers, PassingContractsEvaluateConditionOnce) {
  int evals = 0;
  const auto count = [&evals] {
    ++evals;
    return true;
  };
  GC_REQUIRE(count(), "");
  GC_ENSURE(count(), "");
  GC_CHECK(count(), "");
  EXPECT_EQ(evals, 3);
}

TEST(ContractTiersDeathTest, UncaughtViolationAbortsWithContext) {
  // threadsafe style re-execs the test binary for the death child, which is
  // the only style that is safe once the suite has spawned threads (and the
  // one the sanitizer presets run under).
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A violation escaping a raw thread is the production failure mode for
  // any code path not funneled through ThreadPool's exception capture: the
  // exception reaches std::terminate while still active, and libstdc++'s
  // verbose handler prints what() — so the crash names the throw site
  // file:line. (Escaping a plain death-test statement would not do: gtest's
  // child intercepts std::exception before it can terminate the process.)
  EXPECT_DEATH(
      {
        std::thread t([] { require_positive(-3); });
        t.join();
      },
      "test_contracts\\.cpp:[0-9]+");
}

}  // namespace
}  // namespace gcaching
