// Shape tests for the Figure 3 / Figure 6 curves — the qualitative
// statements the paper makes about the bound landscape, asserted across the
// full parameter sweeps the benches print.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/competitive.hpp"
#include "bounds/iblp_upper.hpp"
#include "bounds/partition.hpp"
#include "util/mathx.hpp"

namespace gcaching::bounds {
namespace {

constexpr double kK = 1.28e6;  // the figures' online cache size
constexpr double kB = 64;      // the figures' block size

TEST(Figure3Shape, AllCurvesMonotoneIncreasingInH) {
  double prev_st = 0, prev_lo = 0, prev_up = 0, prev_item = 0;
  for (double h = kB; h <= kK / 2; h *= 2) {
    const double st = sleator_tarjan_lower(kK, h);
    const double lo = gc_lower_bound(kK, h, kB);
    const double up = iblp_optimal_partition(kK, h, kB).ratio;
    const double item = item_cache_lower(kK, h, kB);
    EXPECT_GE(st, prev_st);
    EXPECT_GE(lo, prev_lo);
    EXPECT_GE(up, prev_up);
    EXPECT_GE(item, prev_item);
    prev_st = st;
    prev_lo = lo;
    prev_up = up;
    prev_item = item;
  }
}

TEST(Figure3Shape, OrderingAcrossTheSweep) {
  // ST <= GC lower <= IBLP upper, and Item Cache >= GC lower, everywhere.
  for (double h = kB; h <= kK / 2; h *= 2) {
    const double st = sleator_tarjan_lower(kK, h);
    const double lo = gc_lower_bound(kK, h, kB);
    const double up = iblp_optimal_partition(kK, h, kB).ratio;
    const double item = item_cache_lower(kK, h, kB);
    EXPECT_LE(st, lo + 1e-9) << "h=" << h;
    EXPECT_LE(lo, up + 1e-9) << "h=" << h;
    EXPECT_GE(item + 1e-9, lo) << "h=" << h;
  }
}

TEST(Figure3Shape, IblpWithinThreeXOfLowerBound) {
  // "Our upper bound has roughly the same penalty ... differing by at most
  // a multiplicative factor of 3x" (Section 5.3).
  for (double h = kB; h <= kK / 2; h *= 2) {
    const double lo = gc_lower_bound(kK, h, kB);
    const double up = iblp_optimal_partition(kK, h, kB).ratio;
    EXPECT_LE(up, 3.0 * lo + 1e-9) << "h=" << h;
  }
}

TEST(Figure3Shape, ItemCacheAlwaysAtLeastNearlyB) {
  for (double h = kB; h <= kK / 2; h *= 2)
    EXPECT_GE(item_cache_lower(kK, h, kB), kB - 1) << "h=" << h;
}

TEST(Figure3Shape, BlockCacheBlowupBoundary) {
  // Finite iff k > B(h-1).
  const double h_critical = kK / kB + 1;
  EXPECT_TRUE(std::isfinite(block_cache_lower(kK, h_critical - 2, kB)));
  EXPECT_EQ(block_cache_lower(kK, h_critical + 2, kB), kUnboundedRatio);
}

TEST(Figure3Shape, IblpOutperformsItemCacheBeyond3h) {
  // "IBLP outperforms the small-granularity Item Cache for k ~ 3h and
  // larger" — equivalently h <= k/3 in the h-sweep.
  for (double h = kB; h <= kK / 3; h *= 2) {
    EXPECT_LT(iblp_optimal_partition(kK, h, kB).ratio,
              item_cache_lower(kK, h, kB))
        << "h=" << h;
  }
}

TEST(Figure3Shape, IblpBlockCacheCrossoverNearKOverB) {
  // "...and it outperforms the large-granularity Block Cache for k ~ 4Bh
  // and smaller". With the exact formulas (the paper's statement reads off
  // plotted curves) the crossover sits between h = k/(8B) and h = k/B:
  // below it the Block Cache's bound is smaller, above it IBLP's upper
  // bound dips under the Block Cache's lower bound — and past h = k/B + 1
  // the Block Cache is unbounded while IBLP stays finite.
  const double lo_h = kK / (8 * kB), hi_h = kK / kB;
  auto iblp_wins = [&](double h) {
    return iblp_optimal_partition(kK, h, kB).ratio <
           block_cache_lower(kK, h, kB);
  };
  EXPECT_FALSE(iblp_wins(lo_h));
  EXPECT_TRUE(iblp_wins(hi_h));
  // And strictly beyond the Block Cache's feasibility range:
  EXPECT_TRUE(std::isfinite(
      iblp_optimal_partition(kK, 4 * hi_h, kB).ratio));
  EXPECT_EQ(block_cache_lower(kK, 4 * hi_h, kB), kUnboundedRatio);
}

TEST(Figure6Shape, FixedSplitOptimalOnlyNearItsTuningPoint) {
  const double h_star = 1024;
  const double i_star = iblp_optimal_partition(kK, h_star, kB).item_layer;
  // At its tuning point, the fixed split matches the optimal curve.
  EXPECT_NEAR(iblp_upper(i_star, kK - i_star, h_star, kB),
              iblp_optimal_partition(kK, h_star, kB).ratio,
              1e-6 * iblp_optimal_partition(kK, h_star, kB).ratio);
  // 64x beyond it, the fixed split has degraded by a large factor.
  const double h_far = 64 * h_star;
  const double fixed_far = iblp_upper(i_star, kK - i_star, h_far, kB);
  const double opt_far = iblp_optimal_partition(kK, h_far, kB).ratio;
  EXPECT_GT(fixed_far, 5.0 * opt_far);
}

TEST(Figure6Shape, SmallerHOnlyLimitedImprovement) {
  // "limited improvement for smaller h": a split tuned at h* is within a
  // modest factor of optimal for every h below h*.
  const double h_star = 16384;
  const double i_star = iblp_optimal_partition(kK, h_star, kB).item_layer;
  for (double h = kB; h <= h_star; h *= 2) {
    const double fixed = iblp_upper(i_star, kK - i_star, h, kB);
    const double opt = iblp_optimal_partition(kK, h, kB).ratio;
    EXPECT_LE(fixed, 6.0 * opt) << "h=" << h;
  }
}

TEST(Figure6Shape, LargerHEventualBlowup) {
  // A split tuned for small h eventually becomes unbounded (its item layer
  // drops below h).
  const double h_star = 1024;
  const double i_star = iblp_optimal_partition(kK, h_star, kB).item_layer;
  EXPECT_EQ(iblp_upper(i_star, kK - i_star, 2 * i_star, kB),
            kUnboundedRatio);
}

TEST(LargeCacheApprox, TracksExactWithinConstant) {
  // Section 5.3's k > h >> B >> 1 simplifications stay within ~40% of the
  // exact optimal-partition bound across the regime they describe.
  for (double h : {4096.0, 16384.0, 65536.0}) {
    for (double mult : {2.0, 3.0, 10.0, 100.0}) {
      const double k = mult * h;
      const double approx = iblp_upper_large_cache_approx(k, h, kB);
      const double exact = iblp_optimal_partition(k, h, kB).ratio;
      EXPECT_LE(approx, 1.6 * exact) << "h=" << h << " mult=" << mult;
      EXPECT_GE(approx, 0.4 * exact) << "h=" << h << " mult=" << mult;
    }
  }
}

}  // namespace
}  // namespace gcaching::bounds
