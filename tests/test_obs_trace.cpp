// TraceLog / SpanGuard / CounterRegistry semantics and the Chrome
// trace-event schema validator (src/obs/trace_event.hpp, registry.hpp).
//
// The validator is held to both directions: every trace this module exports
// must pass, and hand-broken fixtures (invalid JSON, missing keys,
// non-monotonic timestamps, unmatched B/E, overlapping non-nested X spans)
// must each fail with a descriptive message. The sweep integration test
// checks the actual instrumentation sites: a run_sweep under an installed
// log yields named pool workers, sweep_row spans, and registry counters that
// add up — and records nothing at all when no sink is installed.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/obs.hpp"
#include "sim/runner.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

using obs::CounterRegistry;
using obs::SpanGuard;
using obs::TraceLog;
using obs::validate_chrome_trace;

std::string exported(const TraceLog& log) {
  std::ostringstream os;
  log.write_chrome_trace(os);
  return os.str();
}

TEST(TraceLogUnit, CompleteEventsCarrySpanData) {
  TraceLog log;
  log.complete("alpha", "cat1", 100, 400, {{"k", "v"}});
  log.complete("beta", "cat2", 500, 500);  // zero-length span is legal
  ASSERT_EQ(log.size(), 2u);
  const std::vector<obs::TraceEvent> events = log.events();
  EXPECT_EQ(events[0].name, "alpha");
  EXPECT_EQ(events[0].ph, 'X');
  EXPECT_EQ(events[0].ts_ns, 100);
  EXPECT_EQ(events[0].dur_ns, 300);
  ASSERT_EQ(events[0].args.size(), 1u);
  EXPECT_EQ(events[0].args[0].first, "k");
  EXPECT_EQ(events[1].dur_ns, 0);
  // Same thread recorded both: one dense tid.
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(TraceLogUnit, ThreadNamesAreIdempotent) {
  TraceLog log;
  log.set_thread_name("worker");
  log.set_thread_name("worker");  // re-announcement records nothing
  EXPECT_EQ(log.size(), 1u);
  log.set_thread_name("renamed");
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].ph, 'M');
}

TEST(TraceLogUnit, ThreadsGetDenseDistinctTids) {
  TraceLog log;
  log.complete("main-span", "t", 0, 1);
  std::thread other([&log] { log.complete("other-span", "t", 2, 3); });
  other.join();
  const std::vector<obs::TraceEvent> events = log.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  EXPECT_LT(events[0].tid, 2u);
  EXPECT_LT(events[1].tid, 2u);
}

TEST(TraceLogUnit, ExportValidatesAndSortsOutOfOrderRecords) {
  TraceLog log;
  // Recorded out of order and overlapping-but-nested; export must sort by
  // start (longer span first on ties) into a validator-clean file.
  log.complete("inner", "t", 200, 300);
  log.complete("outer", "t", 100, 500);
  log.complete("tie-short", "t", 100, 120);
  log.set_thread_name("main");
  const std::string json = exported(log);
  EXPECT_EQ(validate_chrome_trace(json), "") << json;
  // "outer" (dur 400) must precede "tie-short" (dur 20) at ts=100.
  EXPECT_LT(json.find("\"outer\""), json.find("\"tie-short\""));
}

TEST(TraceLogUnit, ExportEscapesJsonStrings) {
  TraceLog log;
  log.complete("quote\"back\\slash", "t", 0, 1, {{"newline", "a\nb"}});
  const std::string json = exported(log);
  EXPECT_EQ(validate_chrome_trace(json), "") << json;
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
  EXPECT_NE(json.find("a\\nb"), std::string::npos);
}

TEST(TraceLogUnit, FileExportRoundTrips) {
  TraceLog log;
  log.complete("span", "t", 0, 1000);
  const std::string path = ::testing::TempDir() + "/trace.json";
  log.write_chrome_trace_file(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(validate_chrome_trace(buffer.str()), "");
}

// ---- Validator negatives ----------------------------------------------------

TEST(TraceValidator, AcceptsMinimalHandWrittenTraces) {
  EXPECT_EQ(validate_chrome_trace(R"({"traceEvents": []})"), "");
  EXPECT_EQ(validate_chrome_trace(
                R"({"traceEvents": [
        {"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 0},
        {"name": "a", "ph": "E", "ts": 2, "pid": 1, "tid": 0},
        {"name": "m", "ph": "M", "ts": 0, "pid": 1, "tid": 0}
      ]})"),
            "");
}

TEST(TraceValidator, RejectsMalformedInput) {
  EXPECT_NE(validate_chrome_trace("not json at all"), "");
  EXPECT_NE(validate_chrome_trace("[1, 2, 3]"), "");  // not an object
  EXPECT_NE(validate_chrome_trace(R"({"events": []})"), "");
  EXPECT_NE(validate_chrome_trace(R"({"traceEvents": [42]})"), "");
  EXPECT_NE(validate_chrome_trace(R"({"traceEvents": [{}]})"), "");
  // Truncated file (the crash-mid-write shape).
  EXPECT_NE(validate_chrome_trace(R"({"traceEvents": [{"name": "a")"), "");
}

TEST(TraceValidator, RejectsSchemaViolations) {
  // Missing ph.
  EXPECT_NE(validate_chrome_trace(
                R"({"traceEvents": [{"name": "a", "ts": 1, "pid": 1, "tid": 0}]})"),
            "");
  // X without dur.
  EXPECT_NE(
      validate_chrome_trace(
          R"({"traceEvents": [{"name": "a", "ph": "X", "ts": 1, "pid": 1, "tid": 0}]})"),
      "");
  // Unsupported phase letter.
  EXPECT_NE(
      validate_chrome_trace(
          R"({"traceEvents": [{"name": "a", "ph": "Q", "ts": 1, "pid": 1, "tid": 0}]})"),
      "");
}

TEST(TraceValidator, RejectsNonMonotonicTimestampsWithinThread) {
  const std::string bad = R"({"traceEvents": [
    {"name": "a", "ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 0},
    {"name": "b", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 0}
  ]})";
  EXPECT_NE(validate_chrome_trace(bad), "");
  // The same timestamps on different threads are fine.
  const std::string ok = R"({"traceEvents": [
    {"name": "a", "ph": "X", "ts": 10, "dur": 1, "pid": 1, "tid": 0},
    {"name": "b", "ph": "X", "ts": 5, "dur": 1, "pid": 1, "tid": 1}
  ]})";
  EXPECT_EQ(validate_chrome_trace(ok), "");
}

TEST(TraceValidator, RejectsOverlappingNonNestedSpans) {
  const std::string bad = R"({"traceEvents": [
    {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
    {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 0}
  ]})";
  EXPECT_NE(validate_chrome_trace(bad), "");
  // Proper nesting and back-to-back spans both pass.
  const std::string ok = R"({"traceEvents": [
    {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
    {"name": "b", "ph": "X", "ts": 2, "dur": 3, "pid": 1, "tid": 0},
    {"name": "c", "ph": "X", "ts": 10, "dur": 4, "pid": 1, "tid": 0}
  ]})";
  EXPECT_EQ(validate_chrome_trace(ok), "");
}

TEST(TraceValidator, RejectsUnmatchedBeginEnd) {
  EXPECT_NE(
      validate_chrome_trace(
          R"({"traceEvents": [{"name": "a", "ph": "E", "ts": 1, "pid": 1, "tid": 0}]})"),
      "");
  EXPECT_NE(
      validate_chrome_trace(
          R"({"traceEvents": [{"name": "a", "ph": "B", "ts": 1, "pid": 1, "tid": 0}]})"),
      "");
}

// ---- SpanGuard and installation ---------------------------------------------

TEST(SpanGuardUnit, IdleWithoutInstalledLog) {
  ASSERT_EQ(obs::trace_log(), nullptr);
  SpanGuard span("orphan", "t");
  EXPECT_FALSE(span.active());
  span.arg("k", "v");  // must be a harmless no-op
}

TEST(SpanGuardUnit, RecordsOnDestructionWithArgs) {
  TraceLog log;
  {
    obs::TraceLogScope scope(log);
    EXPECT_EQ(obs::trace_log(), &log);
    SpanGuard span("unit-span", "test");
    EXPECT_TRUE(span.active());
    span.arg("answer", "42");
    EXPECT_EQ(log.size(), 0u);  // nothing until the guard closes
  }
  EXPECT_EQ(obs::trace_log(), nullptr);  // scope restored
  ASSERT_EQ(log.size(), 1u);
  const obs::TraceEvent e = log.events()[0];
  EXPECT_EQ(e.name, "unit-span");
  EXPECT_EQ(e.cat, "test");
  EXPECT_GE(e.dur_ns, 0);
  ASSERT_EQ(e.args.size(), 1u);
  EXPECT_EQ(e.args[0].second, "42");
}

TEST(CounterRegistryUnit, AccumulatesAndSnapshotsSorted) {
  CounterRegistry reg;
  reg.add("b.second", 2);
  reg.add("a.first");
  reg.add("b.second", 3);
  EXPECT_EQ(reg.value("b.second"), 5u);
  EXPECT_EQ(reg.value("a.first"), 1u);
  EXPECT_EQ(reg.value("untouched"), 0u);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a.first");
  EXPECT_EQ(snap[1].first, "b.second");

  const std::string dir = ::testing::TempDir();
  reg.write_csv(dir + "/counters.csv");
  reg.write_jsonl(dir + "/counters.jsonl");
  std::ifstream csv(dir + "/counters.csv");
  std::string line;
  ASSERT_TRUE(std::getline(csv, line));
  EXPECT_EQ(line, "counter,value");
}

// ---- Sweep / thread-pool integration ----------------------------------------

sim::SweepSpec small_sweep(const std::vector<Workload>& workloads) {
  sim::SweepSpec spec;
  spec.workloads = &workloads;
  spec.policy_specs = {"item-lru", "item-fifo", "block-fifo"};
  spec.capacities = {8, 16, 32};
  spec.threads = 2;
  return spec;
}

TEST(SweepObsIntegration, TraceAndCountersCaptureTheSchedule) {
  const std::vector<Workload> workloads = {
      traces::zipf_blocks(32, 8, 1500, 0.9, 3, 1),
      traces::zipf_blocks(32, 8, 1500, 0.8, 3, 2)};
  const sim::SweepSpec spec = small_sweep(workloads);
  const std::size_t rows = workloads.size() * spec.policy_specs.size();

  TraceLog log;
  CounterRegistry reg;
  std::vector<sim::SweepCell> cells;
  {
    obs::TraceLogScope tscope(log);
    obs::MetricsScope mscope(reg);
    cells = run_sweep(spec);
  }
  ASSERT_EQ(cells.size(), rows * spec.capacities.size());

  if (!obs::kObsEnabled) {
    // Macros compiled out: installing sinks must observe exactly nothing.
    EXPECT_EQ(log.size(), 0u);
    EXPECT_TRUE(reg.snapshot().empty());
    return;
  }

  EXPECT_EQ(reg.value("sweep.rows_completed"), rows);
  EXPECT_EQ(reg.value("sweep.block_id_precomputes"), workloads.size());
  EXPECT_EQ(reg.value("column.stack_fast_path") +
                reg.value("column.lane_engine"),
            rows);
  EXPECT_GE(reg.value("pool.tasks_executed"), rows);

  std::size_t row_spans = 0, pool_spans = 0, worker_names = 0;
  for (const obs::TraceEvent& e : log.events()) {
    if (e.name == "sweep_row") ++row_spans;
    if (e.name == "pool_task") ++pool_spans;
    if (e.ph == 'M' && !e.args.empty() &&
        e.args[0].second.rfind("gcpool-worker-", 0) == 0)
      ++worker_names;
  }
  EXPECT_EQ(row_spans, rows);
  EXPECT_GE(pool_spans, rows);
  EXPECT_GE(worker_names, 1u);
  EXPECT_LE(worker_names, spec.threads);

  const std::string json = exported(log);
  EXPECT_EQ(validate_chrome_trace(json), "") << json.substr(0, 2000);
}

TEST(SweepObsIntegration, NoSinksMeansNoRecords) {
  const std::vector<Workload> workloads = {
      traces::zipf_blocks(16, 4, 400, 0.9, 2, 3)};
  TraceLog log;
  CounterRegistry reg;
  // Installed NOTHING: the sweep runs with obs idle.
  (void)run_sweep(small_sweep(workloads));
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(reg.snapshot().empty());
}

TEST(SweepObsIntegration, ProgressReportsMonotonicallyToCompletion) {
  // --progress backing works in every build flavor (it is a SweepSpec
  // feature, not obs-gated).
  const std::vector<Workload> workloads = {
      traces::zipf_blocks(16, 4, 600, 0.9, 2, 4)};
  sim::SweepSpec spec = small_sweep(workloads);
  const std::size_t rows = workloads.size() * spec.policy_specs.size();

  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> reports;
  spec.progress = [&](std::size_t done, std::size_t total) {
    std::lock_guard<std::mutex> lock(mu);
    reports.emplace_back(done, total);
  };
  (void)run_sweep(spec);
  ASSERT_EQ(reports.size(), rows);
  std::size_t max_done = 0;
  for (const auto& [done, total] : reports) {
    EXPECT_EQ(total, rows);
    EXPECT_GE(done, 1u);
    EXPECT_LE(done, rows);
    max_done = std::max(max_done, done);
  }
  EXPECT_EQ(max_done, rows);

  // Per-cell mode reports cells instead of rows.
  spec.batch_columns = false;
  {
    std::lock_guard<std::mutex> lock(mu);
    reports.clear();
  }
  const std::size_t cells = rows * spec.capacities.size();
  (void)run_sweep(spec);
  ASSERT_EQ(reports.size(), cells);
  for (const auto& report : reports) EXPECT_EQ(report.second, cells);
}

}  // namespace
}  // namespace gcaching
