// StatsTimeline windowing semantics (src/obs/timeline.hpp).
//
// The two load-bearing guarantees:
//   * attaching a timeline NEVER changes what a run computes — final SimStats
//     stay bit-identical to an un-instrumented run, and the recorded window
//     deltas sum back to exactly those totals, for every engine
//     (`Simulation::run`, `simulate_fast`, `simulate_column`);
//   * under GCACHING_OBS=OFF the GC_OBS_* macros provably compile to zero
//     code (the constexpr proof below, in the style of test_contracts).
// Plus the windowing edge cases: trace shorter than one window, window == 1,
// final partial window, auto-scaled windows, and the sink formats.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "obs/obs.hpp"
#include "policies/factory.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

using obs::StatsTimeline;
using obs::TimelineScope;

#if !defined(GCACHING_OBS)
// The zero-code proof: with GCACHING_OBS off, a function body consisting of
// every per-run obs macro must still be a constant expression — only
// possible if each macro contributes no code at all. (Mirrors the
// GC_HOT_CHECK elision proof in test_contracts.cpp.)
constexpr int obs_free_identity(int v) {
  GC_OBS_TIMELINE(obs_tl);
  GC_OBS_TIMELINE_OPEN(obs_tl, {1}, 100);
  if (GC_OBS_ATTACHED(obs_tl)) {
    GC_OBS_TICK(obs_tl, 0, SimStats{});
  }
  GC_OBS_TIMELINE_CLOSE(obs_tl, 0, SimStats{});
  GC_OBS_SPAN(span, "name", "cat");
  GC_OBS_SPAN_ARG(span, "key", "value");
  GC_OBS_THREAD_NAME("name");
  GC_OBS_COUNT("counter", 1);
  return v;
}
static_assert(obs_free_identity(3) == 3,
              "GC_OBS_* must compile to nothing under GCACHING_OBS=OFF");
static_assert(!obs::kObsEnabled);
#else
static_assert(obs::kObsEnabled);
#endif

std::size_t count_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  return lines;
}

void expect_window_invariants(const StatsTimeline& tl, std::size_t lane,
                              std::uint64_t total_accesses) {
  ASSERT_TRUE(tl.closed(lane));
  const std::vector<obs::TimelineWindow>& rows = tl.windows(lane);
  if (total_accesses == 0) {
    EXPECT_TRUE(rows.empty());
    return;
  }
  const std::uint64_t w = tl.window();
  const std::uint64_t expected_rows = (total_accesses + w - 1) / w;
  ASSERT_EQ(rows.size(), expected_rows);
  std::uint64_t covered = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].start, covered) << "window " << i;
    const bool last = i + 1 == rows.size();
    EXPECT_EQ(rows[i].length, last ? total_accesses - covered : w)
        << "window " << i;
    EXPECT_EQ(rows[i].delta.accesses, rows[i].length) << "window " << i;
    covered += rows[i].length;
  }
  EXPECT_EQ(covered, total_accesses);
  EXPECT_EQ(tl.window_sum(lane), tl.final_totals(lane));
}

TEST(TimelineUnit, FixedWindowResolution) {
  StatsTimeline tl(128);
  tl.open({64}, 10'000);
  EXPECT_EQ(tl.window(), 128u);
  EXPECT_EQ(tl.num_lanes(), 1u);
  EXPECT_EQ(tl.lane_capacity(0), 64u);
}

TEST(TimelineUnit, AutoWindowScalesToTraceLength) {
  StatsTimeline tl;  // kAutoWindow
  tl.open({32}, 4096);
  EXPECT_EQ(tl.window(), 4096u / StatsTimeline::kAutoTargetWindows);
  // Tiny traces floor at 1 instead of a zero-length window.
  tl.open({32}, 10);
  EXPECT_EQ(tl.window(), 1u);
}

TEST(TimelineUnit, OpenResetsPreviousRecording) {
  StatsTimeline tl(2);
  tl.open({8}, 4);
  SimStats s;
  s.accesses = 2;
  ASSERT_FALSE(tl.tick_due(0));
  ASSERT_TRUE(tl.tick_due(0));
  tl.record(0, s);
  EXPECT_EQ(tl.windows(0).size(), 1u);
  tl.open({16}, 4);
  EXPECT_TRUE(tl.windows(0).empty());
  EXPECT_FALSE(tl.closed(0));
  EXPECT_EQ(tl.lane_capacity(0), 16u);
}

TEST(TimelineUnit, CloseRejectsDivergentTotals) {
  StatsTimeline tl(1);
  tl.open({8}, 2);
  SimStats seen;
  seen.accesses = 1;
  ASSERT_TRUE(tl.tick_due(0));
  tl.record(0, seen);
  SimStats different = seen;
  different.misses = 99;  // never reported through record()
  EXPECT_THROW(tl.close(0, different), ContractViolation);
}

TEST(TimelineUnit, LaneRangeIsContractChecked) {
  StatsTimeline tl(4);
  tl.open({8, 16}, 100);
  EXPECT_EQ(tl.num_lanes(), 2u);
  EXPECT_THROW(tl.windows(2), ContractViolation);
  EXPECT_THROW(tl.close(2, SimStats{}), ContractViolation);
  EXPECT_THROW(StatsTimeline(1).open({}, 10), ContractViolation);
}

TEST(TimelineUnit, ScopesNestAndRestore) {
  EXPECT_EQ(obs::current_timeline(), nullptr);
  StatsTimeline outer(8), inner(8);
  {
    TimelineScope a(outer);
    EXPECT_EQ(obs::current_timeline(), &outer);
    {
      TimelineScope b(inner);
      EXPECT_EQ(obs::current_timeline(), &inner);
      {
        const obs::TimelineDetachScope detached;
        EXPECT_EQ(obs::current_timeline(), nullptr);
      }
      EXPECT_EQ(obs::current_timeline(), &inner);
    }
    EXPECT_EQ(obs::current_timeline(), &outer);
  }
  EXPECT_EQ(obs::current_timeline(), nullptr);
}

// ---- Engine integration (live macros required) ------------------------------

class TimelineEngines : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!obs::kObsEnabled)
      GTEST_SKIP() << "GC_OBS_* compiled out (GCACHING_OBS=OFF)";
  }
};

TEST_F(TimelineEngines, VerifyingEngineTotalsAreUnperturbed) {
  const Workload w = traces::zipf_blocks(64, 8, 4000, 0.9, 4, 1);
  const std::size_t capacity = 32;
  const auto plain_policy = make_policy("item-lru", capacity);
  const SimStats plain = simulate(w, *plain_policy, capacity);

  StatsTimeline tl(256);
  const auto policy = make_policy("item-lru", capacity);
  SimStats instrumented;
  {
    TimelineScope scope(tl);
    instrumented = simulate(w, *policy, capacity);
  }
  EXPECT_EQ(instrumented, plain);
  EXPECT_EQ(tl.final_totals(0), plain);
  EXPECT_EQ(tl.lane_capacity(0), capacity);
  expect_window_invariants(tl, 0, w.trace.size());
}

TEST_F(TimelineEngines, FastEngineTotalsAreUnperturbed) {
  const Workload w = traces::zipf_blocks(64, 8, 4000, 0.9, 4, 2);
  const std::size_t capacity = 48;
  // Policies covering both fast-engine stat flavors: plain, hit-path
  // evictions (iblp), and heavy sideload traffic (gcm, footprint).
  for (const std::string spec :
       {"item-lru", "footprint", "gcm:seed=5,sideload=3", "iblp"}) {
    SCOPED_TRACE(spec);
    const SimStats plain = simulate_fast_spec(spec, w, capacity);
    StatsTimeline tl(333);  // deliberately not a divisor of 4000
    SimStats instrumented;
    {
      TimelineScope scope(tl);
      instrumented = simulate_fast_spec(spec, w, capacity);
    }
    EXPECT_EQ(instrumented, plain);
    EXPECT_EQ(tl.final_totals(0), plain);
    expect_window_invariants(tl, 0, w.trace.size());
  }
}

TEST_F(TimelineEngines, WindowOfOneRecordsEveryAccess) {
  const Workload w = traces::zipf_blocks(16, 4, 50, 0.8, 2, 3);
  StatsTimeline tl(1);
  {
    TimelineScope scope(tl);
    (void)simulate_fast_spec("item-lru", w, 8);
  }
  expect_window_invariants(tl, 0, 50);
  ASSERT_EQ(tl.windows(0).size(), 50u);
  for (const obs::TimelineWindow& row : tl.windows(0))
    EXPECT_EQ(row.delta.accesses, 1u);
}

TEST_F(TimelineEngines, TraceShorterThanWindowYieldsOnePartialWindow) {
  const Workload w = traces::zipf_blocks(16, 4, 50, 0.8, 2, 4);
  StatsTimeline tl(10'000);
  {
    TimelineScope scope(tl);
    (void)simulate_fast_spec("item-lru", w, 8);
  }
  expect_window_invariants(tl, 0, 50);
  ASSERT_EQ(tl.windows(0).size(), 1u);
  EXPECT_EQ(tl.windows(0)[0].length, 50u);
  EXPECT_EQ(tl.windows(0)[0].delta, tl.final_totals(0));
}

TEST_F(TimelineEngines, FinalPartialWindowCoversTheRemainder) {
  const Workload w = traces::zipf_blocks(32, 8, 1000, 0.9, 3, 5);
  StatsTimeline tl(64);  // 1000 = 15*64 + 40
  {
    TimelineScope scope(tl);
    (void)simulate_fast_spec("block-lru", w, 24);
  }
  expect_window_invariants(tl, 0, 1000);
  ASSERT_EQ(tl.windows(0).size(), 16u);
  EXPECT_EQ(tl.windows(0).back().length, 40u);
}

TEST_F(TimelineEngines, ColumnEngineRecordsOneLanePerCapacity) {
  const Workload w = traces::zipf_blocks(64, 8, 3000, 0.9, 4, 6);
  const std::vector<std::size_t> capacities = {8, 24, 56};
  const std::vector<BlockId> ids = compute_block_ids(*w.map, w.trace);
  StatsTimeline tl(500);
  std::vector<SimStats> column;
  {
    TimelineScope scope(tl);
    column = simulate_column_spec("item-fifo", *w.map, w.trace,
                                  std::span<const BlockId>(ids), capacities);
  }
  ASSERT_EQ(tl.num_lanes(), capacities.size());
  for (std::size_t lane = 0; lane < capacities.size(); ++lane) {
    SCOPED_TRACE("lane " + std::to_string(lane));
    EXPECT_EQ(tl.lane_capacity(lane), capacities[lane]);
    EXPECT_EQ(tl.final_totals(lane), column[lane]);
    // Per-cell fast runs are the ground truth for each lane.
    EXPECT_EQ(column[lane],
              simulate_fast_spec("item-fifo", w, capacities[lane]));
    expect_window_invariants(tl, lane, w.trace.size());
  }
}

TEST_F(TimelineEngines, ForcedLaneColumnMatchesStackDerivation) {
  const Workload w = traces::zipf_blocks(32, 8, 2000, 0.8, 3, 7);
  const std::vector<std::size_t> capacities = {16, 32};
  const std::vector<BlockId> ids = compute_block_ids(*w.map, w.trace);
  StatsTimeline tl(256);
  std::vector<SimStats> column;
  {
    TimelineScope scope(tl);
    column = simulate_column_spec("item-lru", *w.map, w.trace,
                                  std::span<const BlockId>(ids), capacities,
                                  /*allow_stack=*/false);
  }
  for (std::size_t lane = 0; lane < capacities.size(); ++lane) {
    EXPECT_EQ(tl.final_totals(lane), column[lane]);
    expect_window_invariants(tl, lane, w.trace.size());
  }
}

TEST_F(TimelineEngines, StackCollapsedColumnRecordsNothing) {
  // The documented edge: a stack-collapsed column (item-lru derivation) does
  // a single stack-distance pass, not per-access lane stepping — the
  // timeline stays empty in every build (the checking replay detaches).
  const Workload w = traces::zipf_blocks(32, 8, 2000, 0.8, 3, 8);
  const std::vector<std::size_t> capacities = {16, 32};
  const std::vector<BlockId> ids = compute_block_ids(*w.map, w.trace);
  StatsTimeline tl(256);
  {
    TimelineScope scope(tl);
    (void)simulate_column_spec("item-lru", *w.map, w.trace,
                               std::span<const BlockId>(ids), capacities);
  }
  EXPECT_EQ(tl.num_lanes(), 0u);
}

TEST_F(TimelineEngines, SinksWriteOneRowPerWindow) {
  const Workload w = traces::zipf_blocks(32, 8, 1000, 0.9, 3, 9);
  StatsTimeline tl(100);
  {
    TimelineScope scope(tl);
    (void)simulate_fast_spec("gcm:seed=2,sideload=2", w, 24);
  }
  ASSERT_EQ(tl.windows(0).size(), 10u);

  const std::string dir = ::testing::TempDir();
  const std::string csv = dir + "/timeline.csv";
  const std::string jsonl = dir + "/timeline.jsonl";
  tl.write_csv(csv);
  tl.write_jsonl(jsonl);
  EXPECT_EQ(count_lines(csv), 11u);  // header + 10 windows
  EXPECT_EQ(count_lines(jsonl), 10u);

  std::ifstream in(csv);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("miss_rate"), std::string::npos);
  EXPECT_NE(header.find("wasted_sideload_share"), std::string::npos);
}

}  // namespace
}  // namespace gcaching
