// Tests for the variable-size caching substrate and the Theorem 1
// reduction: OPT of the variable-size instance must equal OPT of the
// reduced GC instance (this is the heart of the NP-completeness proof).
#include <gtest/gtest.h>

#include "offline/exact_opt.hpp"
#include "traces/reduction.hpp"
#include "util/rng.hpp"
#include "vscache/vs_instance.hpp"

namespace gcaching {
namespace {

using vscache::VsInstance;
using vscache::VsTrace;

TEST(VsExactOpt, EmptyTrace) {
  VsInstance inst{{1, 2}, 3};
  EXPECT_EQ(vs_exact_opt(inst, {}), 0u);
}

TEST(VsExactOpt, ColdFaultsOnly) {
  VsInstance inst{{1, 1, 1}, 3};
  EXPECT_EQ(vs_exact_opt(inst, {0, 1, 2, 0, 1, 2}), 3u);
}

TEST(VsExactOpt, SizePressureForcesRefaults) {
  // Two size-2 items in a size-2 cache: they alternate, every access faults
  // after the first round.
  VsInstance inst{{2, 2}, 2};
  EXPECT_EQ(vs_exact_opt(inst, {0, 1, 0, 1}), 4u);
}

TEST(VsExactOpt, KeepsSmallItemsUnderPressure) {
  // Sizes {2, 1, 1}, capacity 2: OPT keeps the two unit items across the
  // big item's visits? It cannot (2+1 > 2) — classic knapsack-y choice.
  VsInstance inst{{2, 1, 1}, 2};
  // 1,2 fit together; 0 alone. Trace: 1 2 0 1 2 -> faults: 1,2,0 cold; then
  // 1,2 must re-fault or 0 displaced... Optimal: 3 cold + re-fault 1 and 2
  // OR keep {1,2} and fault 0's visit only; but 0 needs the full cache.
  // Best: 1,2 cold (2), 0 cold evicting both (1), 1,2 again (2) = 5? or
  // serve 0, keep nothing: same. Exact solver decides; assert the value
  // computed by hand: 5.
  EXPECT_EQ(vs_exact_opt(inst, {1, 2, 0, 1, 2}), 5u);
}

TEST(VsExactOpt, ValidationCatchesBadInstances) {
  VsInstance zero_size{{0, 1}, 2};
  EXPECT_THROW(vs_exact_opt(zero_size, {0}), ContractViolation);
  VsInstance too_big{{3}, 2};
  EXPECT_THROW(vs_exact_opt(too_big, {0}), ContractViolation);
}

TEST(Reduction, StructureMatchesTheorem1) {
  VsInstance inst{{2, 1, 3}, 4};
  const VsTrace vs_trace{0, 2, 1};
  const auto red = traces::reduce_vs_to_gc(inst, vs_trace);
  // One block per vs item, block size = item size.
  EXPECT_EQ(red.workload.map->num_blocks(), 3u);
  EXPECT_EQ(red.workload.map->block_size(red.block_of_vs_item[0]), 2u);
  EXPECT_EQ(red.workload.map->block_size(red.block_of_vs_item[1]), 1u);
  EXPECT_EQ(red.workload.map->block_size(red.block_of_vs_item[2]), 3u);
  // Each vs access expands to z^2 accesses.
  EXPECT_EQ(red.workload.trace.size(), 4u + 9u + 1u);
  EXPECT_EQ(red.capacity, 4u);
}

TEST(Reduction, RoundRobinOrderWithinBlock) {
  VsInstance inst{{3}, 3};
  const auto red = traces::reduce_vs_to_gc(inst, {0});
  const auto& t = red.workload.trace;
  ASSERT_EQ(t.size(), 9u);
  // a0 a1 a2 repeated 3 times.
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(t[r * 3 + j], j);
}

TEST(Reduction, BlockCapacityMustCoverLargestItem) {
  VsInstance inst{{2, 4}, 4};
  EXPECT_THROW(traces::reduce_vs_to_gc(inst, {0}, 3), ContractViolation);
  EXPECT_NO_THROW(traces::reduce_vs_to_gc(inst, {0}, 4));
}

TEST(Reduction, Theorem1CostEqualityFigure2Example) {
  // The Figure 2 instance: items A (size 2), B (size 1), C (size 3);
  // trace A B A C A; cache size 3 (A and B fit together, C fills it).
  VsInstance inst{{2, 1, 3}, 3};
  const VsTrace vs_trace{0, 1, 0, 2, 0};
  const std::uint64_t vs_opt = vs_exact_opt(inst, vs_trace);
  const auto red = traces::reduce_vs_to_gc(inst, vs_trace);
  const auto gc_opt =
      exact_offline_opt(*red.workload.map, red.workload.trace, red.capacity);
  EXPECT_EQ(gc_opt.cost, vs_opt);
}

TEST(Reduction, Theorem1CostEqualityRandomInstances) {
  SplitMix64 rng(2026);
  for (int round = 0; round < 12; ++round) {
    const std::size_t n = 3 + rng.below(2);  // 3-4 vs items
    VsInstance inst;
    for (std::size_t v = 0; v < n; ++v)
      inst.sizes.push_back(1 + static_cast<std::uint32_t>(rng.below(3)));
    const std::uint32_t max_size =
        *std::max_element(inst.sizes.begin(), inst.sizes.end());
    inst.capacity = max_size + rng.below(3);
    VsTrace vs_trace;
    for (int p = 0; p < 7; ++p)
      vs_trace.push_back(static_cast<vscache::VsItemId>(rng.below(n)));
    const std::uint64_t vs_opt = vs_exact_opt(inst, vs_trace);
    const auto red = traces::reduce_vs_to_gc(inst, vs_trace);
    const auto gc_opt = exact_offline_opt(*red.workload.map,
                                          red.workload.trace, red.capacity);
    EXPECT_EQ(gc_opt.cost, vs_opt)
        << "round " << round << ": reduction must preserve OPT";
  }
}

TEST(Reduction, UnitSizesDegenerateToTraditionalCaching) {
  // All sizes 1: the reduction is the identity (one access per item).
  VsInstance inst{{1, 1, 1, 1}, 2};
  const VsTrace vs_trace{0, 1, 2, 0, 3, 1};
  const auto red = traces::reduce_vs_to_gc(inst, vs_trace);
  EXPECT_EQ(red.workload.trace.size(), vs_trace.size());
  EXPECT_EQ(red.workload.map->max_block_size(), 1u);
  EXPECT_EQ(
      exact_offline_opt(*red.workload.map, red.workload.trace, 2).cost,
      vs_exact_opt(inst, vs_trace));
}

}  // namespace
}  // namespace gcaching
