// SHARDS-style spatial sampling (locality/sample.hpp).
//
// The load-bearing guarantees, in order:
//   1. rate == 1.0 (and a fixed-size budget that never evicts) is BIT-
//      IDENTICAL to the exact engines, end to end through run_sweep, at any
//      thread count — sampling must never perturb an exact run.
//   2. The sample is block-consistent: an item access survives iff its
//      whole block does, so item- and block-granularity policies see a
//      coherent sub-universe.
//   3. Fixed-size eviction-and-rescale is equivalent to fixed-rate at the
//      final threshold — the one-pass adaptive filter ends exactly where a
//      two-pass filter would.
//   4. Seeded error bound: at rate 0.01 the estimated miss ratios stay
//      within 0.02 of exact on a zipf workload (deterministic given the
//      seed; this is the acceptance target of docs/PERF.md's sampling
//      section).
// Like test_fast_sim, this binary is built a second time against the
// GC_FAST_SIM library copy (test_sample_nochecks), so both contract
// configurations cover the rate-1.0 identity.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/simulator.hpp"
#include "locality/sample.hpp"
#include "policies/factory.hpp"
#include "sim/runner.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

using locality::BlockFilter;
using locality::SampleConfig;
using locality::SampledTrace;

void expect_identical(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.temporal_hits, b.temporal_hits);
  EXPECT_EQ(a.spatial_hits, b.spatial_hits);
  EXPECT_EQ(a.items_loaded, b.items_loaded);
  EXPECT_EQ(a.sideloads, b.sideloads);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.wasted_sideloads, b.wasted_sideloads);
}

// ---- filter basics --------------------------------------------------------

TEST(SampleFilter, RateOneKeepsEverything) {
  const Workload w = traces::zipf_blocks(64, 8, 3000, 0.9, 4, 1);
  SampleConfig cfg;
  cfg.rate = 1.0;
  const SampledTrace s = locality::sample_workload(w, cfg);
  EXPECT_EQ(s.accesses, w.trace.accesses());
  EXPECT_EQ(s.total_accesses, w.trace.size());
  EXPECT_TRUE(s.filter.all);
  EXPECT_DOUBLE_EQ(s.rate(), 1.0);
  EXPECT_EQ(s.sampled_blocks, w.distinct_blocks());
}

TEST(SampleFilter, FilterRateMatchesThreshold) {
  const BlockFilter half = locality::make_filter(0.5, 3);
  EXPECT_FALSE(half.all);
  EXPECT_NEAR(half.rate(), 0.5, 1e-12);
  const BlockFilter all = locality::make_filter(1.0, 3);
  EXPECT_TRUE(all.all);
  EXPECT_DOUBLE_EQ(all.rate(), 1.0);
}

TEST(SampleFilter, DistinctSeedsGiveDifferentSamples) {
  const Workload w = traces::zipf_blocks(256, 8, 4000, 0.9, 4, 1);
  SampleConfig a, b;
  a.rate = b.rate = 0.3;
  a.seed = 1;
  b.seed = 2;
  const SampledTrace sa = locality::sample_workload(w, a);
  const SampledTrace sb = locality::sample_workload(w, b);
  EXPECT_NE(sa.accesses, sb.accesses);
}

// Block consistency: for every block of the original trace, either all of
// its accesses survive or none do, and survival agrees with the filter
// predicate. This is what lets block-granularity policies run on a sample.
TEST(SampleFilter, SampleIsBlockConsistent) {
  const Workload w = traces::zipf_items(4096, 16, 20000, 0.9, 7);
  SampleConfig cfg;
  cfg.rate = 0.3;
  cfg.seed = 11;
  const SampledTrace s = locality::sample_workload(w, cfg);
  ASSERT_GT(s.accesses.size(), 0u);
  ASSERT_LT(s.accesses.size(), w.trace.size());
  ASSERT_EQ(s.block_ids.size(), s.accesses.size());

  std::unordered_set<BlockId> kept;
  for (std::size_t i = 0; i < s.accesses.size(); ++i) {
    const BlockId b = w.map->block_of(s.accesses[i]);
    EXPECT_EQ(s.block_ids[i], b);
    EXPECT_TRUE(s.filter.accepts(b));
    kept.insert(b);
  }
  EXPECT_EQ(kept.size(), s.sampled_blocks);
  // Every original access whose block the filter accepts must be present —
  // count them and compare (order is preserved by the one-pass filter).
  std::size_t expected = 0;
  for (const ItemId item : w.trace)
    if (s.filter.accepts(w.map->block_of(item))) ++expected;
  EXPECT_EQ(s.accesses.size(), expected);
}

// The uniform streaming overload must agree exactly with the precomputed
// block-id path on a uniform partition.
TEST(SampleFilter, UniformOverloadMatchesGeneralPath) {
  const Workload w = traces::zipf_items(4096, 16, 20000, 0.9, 3);
  SampleConfig cfg;
  cfg.rate = 0.2;
  cfg.seed = 5;
  const SampledTrace general = locality::sample_workload(w, cfg);
  const SampledTrace uniform = locality::sample_trace_uniform(
      w.trace.accesses(), w.map->max_block_size(), cfg);
  EXPECT_EQ(general.accesses, uniform.accesses);
  EXPECT_EQ(general.block_ids, uniform.block_ids);
  EXPECT_EQ(general.filter.threshold, uniform.filter.threshold);
}

// ---- fixed-size (adaptive) mode -------------------------------------------

TEST(SampleFixedSize, GenerousBudgetNeverEvicts) {
  const Workload w = traces::zipf_blocks(128, 8, 5000, 0.9, 4, 1);
  SampleConfig cfg;
  cfg.max_blocks = 1u << 30;  // far above the distinct-block count
  const SampledTrace s = locality::sample_workload(w, cfg);
  EXPECT_TRUE(s.filter.all);
  EXPECT_DOUBLE_EQ(s.rate(), 1.0);
  EXPECT_EQ(s.accesses, w.trace.accesses());
}

// Eviction-and-rescale equivalence: the one-pass adaptive sample must be
// exactly the fixed-threshold filter of the original trace at the FINAL
// threshold — no stragglers from looser early thresholds may survive.
TEST(SampleFixedSize, EquivalentToFixedRateAtFinalThreshold) {
  const Workload w = traces::zipf_items(8192, 16, 30000, 0.9, 9);
  SampleConfig cfg;
  cfg.max_blocks = 40;
  cfg.seed = 13;
  const SampledTrace s = locality::sample_workload(w, cfg);
  ASSERT_FALSE(s.filter.all);
  EXPECT_LE(s.sampled_blocks, cfg.max_blocks);

  const std::vector<BlockId> ids = compute_block_ids(*w.map, w.trace);
  const FilteredTrace refiltered = filter_trace(
      w.trace.accesses(), ids,
      [&](BlockId b) { return s.filter.accepts(b); });
  EXPECT_EQ(s.accesses, refiltered.accesses);
  EXPECT_EQ(s.block_ids, refiltered.block_ids);
}

// ---- capacity scaling & counter rescale -----------------------------------

TEST(SampleScaling, ScaledCapacityClampsToFloorAndOriginal) {
  EXPECT_EQ(locality::scaled_capacity(1000, 1.0, 16), 1000u);
  EXPECT_EQ(locality::scaled_capacity(1000, 0.1, 16), 100u);
  EXPECT_EQ(locality::scaled_capacity(1000, 0.001, 16), 16u);  // floor
  EXPECT_EQ(locality::scaled_capacity(8, 0.001, 16), 8u);  // never inflate
  EXPECT_GE(locality::scaled_capacity(3, 0.001, 0), 1u);  // never zero
}

TEST(SampleScaling, UnsampleIsIdentityOnFullRuns) {
  SimStats s;
  s.accesses = 1000;
  s.hits = 700;
  s.misses = 300;
  s.temporal_hits = 500;
  s.spatial_hits = 200;
  s.items_loaded = 900;
  s.sideloads = 600;
  s.evictions = 100;
  s.wasted_sideloads = 50;
  expect_identical(locality::unsample_stats(s, 1000), s);
}

TEST(SampleScaling, UnsampleRescalesAndKeepsIdentities) {
  SimStats s;
  s.accesses = 100;
  s.hits = 63;
  s.misses = 37;
  s.temporal_hits = 40;
  s.spatial_hits = 23;
  s.items_loaded = 90;
  s.sideloads = 60;
  s.evictions = 10;
  s.wasted_sideloads = 5;
  const SimStats out = locality::unsample_stats(s, 1000);
  EXPECT_EQ(out.accesses, 1000u);
  EXPECT_EQ(out.misses, 370u);
  EXPECT_EQ(out.hits + out.misses, out.accesses);
  EXPECT_EQ(out.temporal_hits + out.spatial_hits, out.hits);
  EXPECT_LE(out.wasted_sideloads, out.sideloads);
}

// ---- rate-1.0 bit-identity through the whole stack ------------------------

// Deliberately unsorted, mirroring test_sweep_batched: sampling must not
// introduce an ordering assumption.
const std::vector<std::size_t> kCapacities = {48, 16, 96, 24, 64, 32};
const std::vector<std::string> kSpecs = {"item-lru", "block-lru", "iblp"};

std::vector<SimStats> sweep_stats(const sim::SweepSpec& spec) {
  std::vector<SimStats> out;
  for (const sim::SweepCell& cell : sim::run_sweep(spec)) {
    EXPECT_EQ(cell.capacity,
              kCapacities[out.size() % kCapacities.size()]);
    out.push_back(cell.stats);
  }
  return out;
}

// run_sweep at rate 1.0 — explicitly requested but a no-op — and with a
// never-evicting fixed-size budget — which DOES exercise the full sampling
// machinery (filter pass, adopted block ids, capacity scaling, counter
// rescale) — must both be bit-identical to the exact sweep, for stack and
// non-stack policies, batched and per-cell, at 1, 2, and hardware threads.
TEST(SampleSweepIdentity, RateOneBitIdenticalAllThreadCounts) {
  // B = 8 throughout: the smallest capacity (16) must satisfy IBLP's
  // block-layer >= B requirement at its default half/half split.
  const std::vector<Workload> workloads = {
      traces::zipf_items(2048, 8, 12000, 0.9, 1),
      traces::zipf_blocks(128, 8, 8000, 0.8, 4, 2)};
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{0}}) {
    for (const bool batch : {true, false}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      sim::SweepSpec exact;
      exact.workloads = &workloads;
      exact.policy_specs = kSpecs;
      exact.capacities = kCapacities;
      exact.threads = threads;
      exact.batch_columns = batch;
      const std::vector<SimStats> base = sweep_stats(exact);

      sim::SweepSpec rate_one = exact;
      rate_one.sample_rate = 1.0;  // explicit no-op
      const std::vector<SimStats> same = sweep_stats(rate_one);

      sim::SweepSpec sampled = exact;
      sampled.sample_blocks = 1u << 30;  // active sampler, zero evictions
      const std::vector<SimStats> via_sampler = sweep_stats(sampled);

      ASSERT_EQ(base.size(), same.size());
      ASSERT_EQ(base.size(), via_sampler.size());
      for (std::size_t i = 0; i < base.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        expect_identical(base[i], same[i]);
        expect_identical(base[i], via_sampler[i]);
      }
    }
  }
}

// The verifying engine (use_fast_path = false) runs the same sampled-
// workload machinery; the identity must hold there too.
TEST(SampleSweepIdentity, RateOneBitIdenticalVerifyingEngine) {
  const std::vector<Workload> workloads = {
      traces::zipf_blocks(64, 8, 4000, 0.9, 4, 3)};
  sim::SweepSpec exact;
  exact.workloads = &workloads;
  exact.policy_specs = kSpecs;
  exact.capacities = kCapacities;
  exact.use_fast_path = false;
  exact.threads = 2;
  const std::vector<SimStats> base = sweep_stats(exact);
  sim::SweepSpec sampled = exact;
  sampled.sample_blocks = 1u << 30;
  const std::vector<SimStats> via_sampler = sweep_stats(sampled);
  ASSERT_EQ(base.size(), via_sampler.size());
  for (std::size_t i = 0; i < base.size(); ++i)
    expect_identical(base[i], via_sampler[i]);
}

// Presampled provenance with rate 1.0 and a full-length total must also be
// an exact identity (this is the gcsim streaming path's no-op case).
TEST(SampleSweepIdentity, PresampledFullRateIsIdentity) {
  const std::vector<Workload> workloads = {
      traces::zipf_blocks(64, 8, 4000, 0.9, 4, 5)};
  sim::SweepSpec exact;
  exact.workloads = &workloads;
  exact.policy_specs = kSpecs;
  exact.capacities = kCapacities;
  const std::vector<SimStats> base = sweep_stats(exact);
  sim::SweepSpec pre = exact;
  pre.presampled = {{1.0, workloads[0].trace.size()}};
  const std::vector<SimStats> same = sweep_stats(pre);
  ASSERT_EQ(base.size(), same.size());
  for (std::size_t i = 0; i < base.size(); ++i)
    expect_identical(base[i], same[i]);
}

// ---- seeded error bound at rate 0.01 --------------------------------------

// The acceptance target: on a mid-size zipf workload, miss ratios estimated
// from a 1% block sample stay within 0.02 absolute of exact, for both the
// item- and block-granularity stack policies. Deterministic: the sampler
// hash is seeded, so this pins concrete numbers rather than a distribution.
TEST(SampleErrorBound, RatePercentWithinTwoPercentMissRatio) {
  // zipf_scramble, not zipf_items: spatial sampling is a per-BLOCK coin
  // flip, so its error scales with the access share of the heaviest blocks,
  // and rank-ordered ids pack the zipf head into block 0 (~11% of all
  // accesses at theta 0.9) — fundamentally outside the estimator's regime
  // at a 1% rate. Scrambled ids spread the head uniformly; theta = 0.5
  // keeps the heaviest single block well under the rate. The bound holds
  // across sampler seeds (~2x margin at this one), not just a lucky draw —
  // see docs/PERF.md for the regime discussion.
  const std::vector<Workload> workloads = {
      traces::zipf_scramble(1u << 20, 16, 2000000, 0.5, 17)};
  sim::SweepSpec spec;
  spec.workloads = &workloads;
  spec.policy_specs = {"item-lru", "block-lru", "iblp"};
  spec.capacities = {8192, 32768, 131072, 524288};
  const std::vector<sim::SweepCell> exact = sim::run_sweep(spec);

  sim::SweepSpec sampled_spec = spec;
  sampled_spec.sample_rate = 0.01;
  sampled_spec.sample_seed = 42;
  const std::vector<sim::SweepCell> sampled = sim::run_sweep(sampled_spec);

  ASSERT_EQ(exact.size(), sampled.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(sampled[i].capacity, exact[i].capacity);
    EXPECT_EQ(sampled[i].stats.accesses, exact[i].stats.accesses);
    const double err = std::abs(sampled[i].stats.miss_rate() -
                                exact[i].stats.miss_rate());
    EXPECT_LE(err, 0.02) << spec.policy_specs[exact[i].policy_index]
                         << " capacity " << exact[i].capacity;
    max_err = std::max(max_err, err);
  }
  // The sample must actually be a sample, not a fluke full pass.
  EXPECT_GT(max_err, 0.0);
}

}  // namespace
}  // namespace gcaching
