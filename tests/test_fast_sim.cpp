// Differential test for the fast simulation engine.
//
// The devirtualized `simulate_fast_spec` must produce *bit-identical*
// SimStats to the step-wise verifying `Simulation` engine — for every
// factory policy spec, across seeds and capacities, on every counter
// including the spatial/temporal hit taxonomy and wasted-sideload
// accounting. This binary is built twice by tests/CMakeLists.txt: once
// against the normal libraries (all invariants enforced) and once against
// the GC_FAST_SIM configuration (hot-path checks compiled out), so both
// build modes are covered by the default tier-1 flow.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

void expect_identical(const SimStats& verify, const SimStats& fast) {
  EXPECT_EQ(verify.accesses, fast.accesses);
  EXPECT_EQ(verify.hits, fast.hits);
  EXPECT_EQ(verify.misses, fast.misses);
  EXPECT_EQ(verify.temporal_hits, fast.temporal_hits);
  EXPECT_EQ(verify.spatial_hits, fast.spatial_hits);
  EXPECT_EQ(verify.items_loaded, fast.items_loaded);
  EXPECT_EQ(verify.sideloads, fast.sideloads);
  EXPECT_EQ(verify.evictions, fast.evictions);
  EXPECT_EQ(verify.wasted_sideloads, fast.wasted_sideloads);
}

/// Every bare factory name plus parameterized variants that exercise the
/// fast path's argument plumbing through the type switch.
std::vector<std::string> specs_under_test() {
  std::vector<std::string> specs = known_policy_names();
  specs.push_back("item-slru:p=0.25");
  specs.push_back("item-random:seed=7");
  specs.push_back("footprint:cold_block=0");
  specs.push_back("gcm:seed=5,sideload=3");
  specs.push_back("marking-item:seed=9");
  specs.push_back("athreshold:a=4");
  return specs;
}

class FastSimDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(FastSimDifferential, BitIdenticalStatsAcrossSeedsAndCapacities) {
  const std::string spec = GetParam();
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    Workload w = traces::zipf_blocks(64, 8, 4000, 0.9, 4, seed);
    for (const std::size_t capacity : {std::size_t{16}, std::size_t{48}}) {
      SCOPED_TRACE(spec + " seed=" + std::to_string(seed) +
                   " capacity=" + std::to_string(capacity));
      const auto policy = make_policy(spec, capacity);
      const SimStats verify = simulate(w, *policy, capacity);
      const SimStats fast = simulate_fast_spec(spec, w, capacity);
      expect_identical(verify, fast);
    }
  }
}

std::string sanitize(const ::testing::TestParamInfo<std::string>& info) {
  std::string name;
  for (const char c : info.param)
    name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllFactorySpecs, FastSimDifferential,
                         ::testing::ValuesIn(specs_under_test()), sanitize);

TEST(FastSim, PrecomputedBlockIdsMatchFallback) {
  Workload w = traces::zipf_blocks(32, 8, 2000, 0.8, 3, 4);
  const SimStats lazy = simulate_fast_spec("item-lru", w, 32);
  w.trace.precompute_block_ids(*w.map);
  ASSERT_TRUE(w.trace.has_block_ids(*w.map));
  const SimStats cached = simulate_fast_spec("item-lru", w, 32);
  expect_identical(lazy, cached);
}

TEST(FastSim, BlockIdCacheInvalidatedByMutation) {
  Workload w = traces::zipf_blocks(32, 8, 100, 0.8, 3, 4);
  w.trace.precompute_block_ids(*w.map);
  ASSERT_TRUE(w.trace.has_block_ids(*w.map));
  w.trace.push(0);
  EXPECT_FALSE(w.trace.has_block_ids(*w.map));
  // Recomputing covers the appended access again.
  w.trace.precompute_block_ids(*w.map);
  EXPECT_TRUE(w.trace.has_block_ids(*w.map));
  EXPECT_EQ(w.trace.block_ids().size(), w.trace.size());
}

TEST(FastSim, ExplicitSpanOverloadAgrees) {
  const Workload w = traces::zipf_blocks(32, 8, 2000, 0.8, 3, 5);
  const std::vector<BlockId> ids = compute_block_ids(*w.map, w.trace);
  const SimStats via_span = simulate_fast_spec(
      "iblp", *w.map, w.trace, std::span<const BlockId>(ids), 32);
  const SimStats via_workload = simulate_fast_spec("iblp", w, 32);
  expect_identical(via_span, via_workload);
}

TEST(FastSim, RejectsUnknownSpec) {
  const Workload w = traces::zipf_blocks(8, 4, 50, 0.8, 2, 1);
  EXPECT_THROW(simulate_fast_spec("no-such-policy", w, 8), ContractViolation);
}

TEST(FastSim, RejectsMismatchedBlockIdSpan) {
  const Workload w = traces::zipf_blocks(8, 4, 50, 0.8, 2, 1);
  const std::vector<BlockId> ids(w.trace.size() - 1, 0);
  EXPECT_THROW(simulate_fast_spec("item-lru", *w.map, w.trace,
                                  std::span<const BlockId>(ids), 8),
               ContractViolation);
}

}  // namespace
}  // namespace gcaching
