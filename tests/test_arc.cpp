// Unit tests for the ARC item cache.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/item_arc.hpp"
#include "policies/item_lru.hpp"
#include "traces/synthetic.hpp"
#include "util/rng.hpp"

namespace gcaching {
namespace {

TEST(Arc, ColdMissesFillT1) {
  auto map = make_singleton_blocks(16);
  ItemArc arc;
  Simulation sim(*map, arc, 4);
  for (ItemId it : {0u, 1u, 2u}) sim.access(it);
  EXPECT_EQ(arc.t1_size(), 3u);
  EXPECT_EQ(arc.t2_size(), 0u);
}

TEST(Arc, HitPromotesToT2) {
  auto map = make_singleton_blocks(16);
  ItemArc arc;
  Simulation sim(*map, arc, 4);
  sim.access(0);
  sim.access(0);
  EXPECT_EQ(arc.t1_size(), 0u);
  EXPECT_EQ(arc.t2_size(), 1u);
}

TEST(Arc, ColdAllNewTrafficNeverGhosts) {
  // With T1 filling the whole cache, ARC's case IV drops the T1 LRU item
  // without recording a ghost (the original paper's |T1| = c branch).
  auto map = make_singleton_blocks(32);
  ItemArc arc;
  Simulation sim(*map, arc, 2);
  for (ItemId it : {0u, 1u, 2u}) sim.access(it);
  EXPECT_EQ(arc.b1_size(), 0u);
  EXPECT_EQ(sim.cache().occupancy(), 2u);
}

TEST(Arc, ReplaceDemotionFeedsGhostLists) {
  auto map = make_singleton_blocks(32);
  ItemArc arc;
  Simulation sim(*map, arc, 2);
  sim.access(0);
  sim.access(0);  // 0 promoted to T2
  sim.access(1);  // T1 = {1}
  sim.access(2);  // REPLACE demotes 1 from T1 into the B1 ghost list
  EXPECT_EQ(arc.b1_size(), 1u);
  EXPECT_FALSE(sim.cache().contains(1));
  EXPECT_EQ(sim.cache().occupancy(), 2u);
}

TEST(Arc, GhostHitAdaptsTarget) {
  auto map = make_singleton_blocks(32);
  ItemArc arc;
  Simulation sim(*map, arc, 2);
  sim.access(0);
  sim.access(0);  // T2 = {0}
  sim.access(1);  // T1 = {1}
  sim.access(2);  // 1 demoted to B1
  const double p_before = arc.target_t1();
  sim.access(1);  // B1 ghost hit: p grows, 1 re-enters in T2
  EXPECT_GT(arc.target_t1(), p_before);
  EXPECT_TRUE(sim.cache().contains(1));
  // REPLACE (with the updated p = 1 = |T1|) demoted 0 from T2 into B2.
  EXPECT_FALSE(sim.cache().contains(0));
  EXPECT_EQ(arc.t2_size(), 1u);
  EXPECT_EQ(arc.b2_size(), 1u);
}

TEST(Arc, NeverExceedsCapacity) {
  const auto w = traces::zipf_items(256, 1, 20000, 0.8, 7);
  ItemArc arc;
  Simulation sim(*w.map, arc, 32);
  for (ItemId it : w.trace) {
    sim.access(it);
    ASSERT_LE(sim.cache().occupancy(), 32u);
    ASSERT_LE(arc.t1_size() + arc.t2_size(), 32u);
    ASSERT_LE(arc.t1_size() + arc.b1_size(), 32u);               // |L1| <= c
    ASSERT_LE(arc.t1_size() + arc.t2_size() + arc.b1_size() +
                  arc.b2_size(),
              64u);                                              // <= 2c
  }
}

TEST(Arc, ScanResistanceBeatsLruOnMixedTrace) {
  // Hot set + one-touch scan: LRU lets the scan flush the hot set; ARC
  // adapts p to protect T2.
  auto map = make_singleton_blocks(4096);
  SplitMix64 rng(11);
  Trace t;
  for (int round = 0; round < 4000; ++round) {
    t.push(static_cast<ItemId>(rng.below(24)));        // hot item
    t.push(static_cast<ItemId>(64 + (round % 4000)));  // scan item
  }
  ItemArc arc;
  ItemLru lru;
  const auto s_arc = simulate(*map, t, arc, 32);
  const auto s_lru = simulate(*map, t, lru, 32);
  EXPECT_LT(s_arc.misses, s_lru.misses);
}

TEST(Arc, StillAnItemCacheNoSpatialHits) {
  const auto w = traces::sequential_scan(512, 8, 4096);
  ItemArc arc;
  const SimStats s = simulate(w, arc, 64);
  EXPECT_EQ(s.spatial_hits, 0u);
  EXPECT_EQ(s.sideloads, 0u);
}

TEST(Arc, SubjectToTheorem2LikeItemLru) {
  // Granularity-oblivious: a whole-block scan costs it B misses per block.
  const auto w = traces::sequential_scan(1024, 8, 1024);
  ItemArc arc;
  const SimStats s = simulate(w, arc, 128);
  EXPECT_EQ(s.misses, 1024u);  // every first-touch access misses
}

TEST(Arc, DeterministicRerun) {
  const auto w = traces::zipf_items(128, 4, 10000, 0.9, 5);
  ItemArc a, b;
  EXPECT_EQ(simulate(w, a, 32).misses, simulate(w, b, 32).misses);
}

TEST(Arc, ResetClearsAllState) {
  auto map = make_singleton_blocks(16);
  ItemArc arc;
  {
    Simulation sim(*map, arc, 4);
    for (ItemId it : {0u, 1u, 2u, 0u, 3u, 4u}) sim.access(it);
  }
  arc.reset();
  EXPECT_EQ(arc.t1_size() + arc.t2_size() + arc.b1_size() + arc.b2_size(),
            0u);
  EXPECT_EQ(arc.target_t1(), 0.0);
}

}  // namespace
}  // namespace gcaching
