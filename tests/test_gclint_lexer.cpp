// Unit tests for gclint's hand-rolled C++ lexer (tools/gclint/lexer.hpp)
// and the regressions that motivated it. gclint v1 matched rules on
// regex-stripped text; the stripper had two latent desync bugs that these
// tests pin under the new lexer:
//
//   1. an encoding-prefixed raw string (u8R"(...)", LR"(...)") was not
//      recognized as raw — with an odd number of quotes inside, stripping
//      desynchronized for the REST OF THE FILE, silently disabling every
//      rule below the literal;
//   2. a line splice (backslash-newline) inside a normal string literal
//      consumed the newline, shifting every subsequent line number.
//
// The fixtures below assert both at the token level (kinds, contents, line
// numbers) and end-to-end (a rule finding AFTER the hostile literal lands on
// the correct line).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gclint.hpp"
#include "lexer.hpp"

namespace {

using gclint::lex;
using gclint::Tok;
using gclint::Token;

std::vector<Token> no_comments(const std::vector<Token>& toks) {
  std::vector<Token> out;
  for (const Token& t : toks)
    if (t.kind != Tok::kComment) out.push_back(t);
  return out;
}

TEST(GclintLexer, TokensCarryKindTextLineColumn) {
  const auto toks = lex("int x = 42;\nreturn x;\n");
  ASSERT_GE(toks.size(), 8u);
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[0].text, "int");
  EXPECT_EQ(toks[0].line, 1u);
  EXPECT_EQ(toks[0].col, 1u);
  EXPECT_EQ(toks[2].kind, Tok::kPunct);
  EXPECT_EQ(toks[2].text, "=");
  EXPECT_EQ(toks[3].kind, Tok::kNumber);
  EXPECT_EQ(toks[3].text, "42");
  EXPECT_EQ(toks[5].text, "return");
  EXPECT_EQ(toks[5].line, 2u);
}

TEST(GclintLexer, CommentsAreTokensWithFullText) {
  const auto toks = lex("x; // GCLINT-ALLOW(no-cout): reason\n/* block */ y;");
  ASSERT_EQ(toks.size(), 6u);
  EXPECT_EQ(toks[2].kind, Tok::kComment);
  EXPECT_EQ(toks[2].text, "// GCLINT-ALLOW(no-cout): reason");
  EXPECT_EQ(toks[3].kind, Tok::kComment);
  EXPECT_EQ(toks[3].text, "/* block */");
  EXPECT_EQ(toks[3].line, 2u);
}

TEST(GclintLexer, StringAndCharContentsNeverBecomeTokens) {
  const auto toks =
      lex("const char* s = \"mutex // \\\" sleep_for\"; char c = '\"';");
  for (const Token& t : toks) {
    EXPECT_NE(t.text, "mutex");
    EXPECT_NE(t.text, "sleep_for");
  }
  // The literal's content is carried on the string token itself.
  bool saw = false;
  for (const Token& t : toks)
    if (t.kind == Tok::kString) {
      EXPECT_NE(t.text.find("mutex"), std::string::npos);
      saw = true;
    }
  EXPECT_TRUE(saw);
}

TEST(GclintLexer, RawStringWithHostileContentKeepsLineNumbers) {
  // The v1 stripper's raw-string handling was the motivating bug class: a
  // raw literal containing // and " must neither emit phantom tokens nor
  // shift the lines of what follows.
  const std::string src =
      "auto r = R\"(quote \" and // comment and )\\\" )\";\n"
      "int after = 1;\n";
  const auto toks = lex(src);
  bool saw_after = false;
  for (const Token& t : toks) {
    if (t.kind == Tok::kIdent && t.text == "after") {
      EXPECT_EQ(t.line, 2u);
      saw_after = true;
    }
    EXPECT_NE(t.text, "comment");
  }
  EXPECT_TRUE(saw_after);
}

TEST(GclintLexer, RawStringDelimitersAreRespected) {
  const std::string src =
      "auto r = R\"cpp(inner )\" not the end; still raw)cpp\";\nint z;\n";
  const auto toks = lex(src);
  ASSERT_GE(toks.size(), 4u);
  bool saw_raw = false;
  for (const Token& t : toks)
    if (t.kind == Tok::kRawString) {
      EXPECT_EQ(t.text, "inner )\" not the end; still raw");
      saw_raw = true;
    }
  EXPECT_TRUE(saw_raw);
  EXPECT_EQ(toks.back().text, ";");
  EXPECT_EQ(toks.back().line, 2u);
}

TEST(GclintLexer, EncodingPrefixedRawStringsAreRaw) {
  // Pinned regression (v1 stripper bug 1): u8R"(...)" with an odd number of
  // inner quotes desynchronized the stripper for the rest of the file.
  for (const char* prefix : {"R", "LR", "uR", "UR", "u8R"}) {
    const std::string src = std::string("auto r = ") + prefix +
                            "\"(one \" quote)\";\nint marker = 7;\n";
    const auto toks = lex(src);
    bool saw_marker = false;
    for (const Token& t : toks)
      if (t.kind == Tok::kIdent && t.text == "marker") {
        EXPECT_EQ(t.line, 2u) << "prefix " << prefix;
        saw_marker = true;
      }
    EXPECT_TRUE(saw_marker) << "prefix " << prefix;
  }
}

TEST(GclintLexer, SpliceInsideStringKeepsLineNumbers) {
  // Pinned regression (v1 stripper bug 2): the spliced newline inside a
  // string literal was swallowed, shifting all later line numbers.
  const std::string src = "const char* s = \"ab\\\ncd\";\nint marker = 1;\n";
  const auto toks = lex(src);
  bool saw = false;
  for (const Token& t : toks)
    if (t.kind == Tok::kIdent && t.text == "marker") {
      EXPECT_EQ(t.line, 3u);  // line 1 continues onto physical line 2
      saw = true;
    }
  EXPECT_TRUE(saw);
}

TEST(GclintLexer, SplicedIdentifiersJoinAcrossLines) {
  const auto toks = no_comments(lex("mu\\\ntex m;\n"));
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].kind, Tok::kIdent);
  EXPECT_EQ(toks[0].text, "mutex");
  EXPECT_EQ(toks[0].line, 1u);
}

TEST(GclintLexer, DigitSeparatorsStayInsideNumbers) {
  // 1'000'000 must lex as ONE number; a naive lexer opens a char literal at
  // the separator and derails.
  const auto toks = lex("std::size_t n = 1'000'000; int after = 2;");
  bool saw = false;
  for (const Token& t : toks) {
    if (t.kind == Tok::kNumber && t.text == "1'000'000") saw = true;
    EXPECT_NE(t.kind, Tok::kCharLit);
  }
  EXPECT_TRUE(saw);
  EXPECT_EQ(toks.back().text, ";");
}

TEST(GclintLexer, PreprocessorDirectivesAreFlagged) {
  const auto toks = lex("#include \"core/stats.hpp\"\n#define F(x) g(x)\nh();\n");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[0].kind, Tok::kPpDirective);
  EXPECT_EQ(toks[0].text, "include");
  EXPECT_EQ(toks[1].kind, Tok::kString);
  EXPECT_EQ(toks[1].text, "core/stats.hpp");
  EXPECT_TRUE(toks[1].in_directive);
  // Every token of the #define line is in_directive; h() is not.
  for (const Token& t : toks) {
    if (t.line == 2) {
      EXPECT_TRUE(t.in_directive) << t.text;
    }
    if (t.line == 3) {
      EXPECT_FALSE(t.in_directive) << t.text;
    }
  }
}

TEST(GclintLexer, SplicedDirectiveCoversContinuationLines) {
  const auto toks = lex("#define F(x) \\\n  g(x)\nh();\n");
  for (const Token& t : toks) {
    if (t.text == "g") {
      EXPECT_TRUE(t.in_directive);
    }
    if (t.text == "h") {
      EXPECT_FALSE(t.in_directive);
    }
  }
}

TEST(GclintLexer, UnterminatedConstructsRunToEofWithoutThrowing) {
  EXPECT_NO_THROW(lex("const char* s = \"unterminated"));
  EXPECT_NO_THROW(lex("/* unterminated block"));
  EXPECT_NO_THROW(lex("auto r = R\"(unterminated raw"));
  EXPECT_NO_THROW(lex("auto r = R\"delimtoolongtobelegalxx(body"));
}

TEST(GclintLexer, ScopeResolutionIsOneToken) {
  const auto toks = lex("obs::record(1);");
  ASSERT_GE(toks.size(), 2u);
  EXPECT_EQ(toks[0].text, "obs");
  EXPECT_EQ(toks[1].kind, Tok::kPunct);
  EXPECT_EQ(toks[1].text, "::");
}

// ---- end-to-end: the v1 desync bugs, pinned through lint() -----------------

TEST(GclintLexerRegression, RuleFindingAfterHostileRawStringLandsOnRightLine) {
  // Under the v1 stripper this fixture desynchronized at the u8R literal
  // (odd quote count) and the rand() below was never seen; under the lexer
  // the finding lands exactly on line 3.
  const std::vector<gclint::SourceFile> files = {{"src/traces/gen.cpp",
                                                  "const char* s = u8R\"(one \" quote)\";\n"
                                                  "int ok = 0;\n"
                                                  "int r = rand();\n"}};
  const auto findings = gclint::lint(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rng-discipline");
  EXPECT_EQ(findings[0].line, 3u);
}

TEST(GclintLexerRegression, FindingAfterSplicedStringLandsOnRightLine) {
  const std::vector<gclint::SourceFile> files = {{"src/traces/gen.cpp",
                                                  "const char* s = \"ab\\\ncd\";\n"
                                                  "int r = rand();\n"}};
  const auto findings = gclint::lint(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rng-discipline");
  EXPECT_EQ(findings[0].line, 3u);
}

}  // namespace
