// Unit tests for core/block_map: partitions and their validation.
#include <gtest/gtest.h>

#include "core/block_map.hpp"
#include "util/contracts.hpp"

namespace gcaching {
namespace {

TEST(UniformBlockMap, BasicGeometry) {
  UniformBlockMap map(12, 4);
  EXPECT_EQ(map.num_items(), 12u);
  EXPECT_EQ(map.num_blocks(), 3u);
  EXPECT_EQ(map.max_block_size(), 4u);
}

TEST(UniformBlockMap, BlockOf) {
  UniformBlockMap map(12, 4);
  EXPECT_EQ(map.block_of(0), 0u);
  EXPECT_EQ(map.block_of(3), 0u);
  EXPECT_EQ(map.block_of(4), 1u);
  EXPECT_EQ(map.block_of(11), 2u);
}

TEST(UniformBlockMap, ItemsOfAreAscendingAndConsistent) {
  UniformBlockMap map(12, 4);
  const auto items = map.items_of(1);
  ASSERT_EQ(items.size(), 4u);
  for (std::size_t j = 0; j < items.size(); ++j) {
    EXPECT_EQ(items[j], 4 + j);
    EXPECT_EQ(map.block_of(items[j]), 1u);
  }
}

TEST(UniformBlockMap, RaggedLastBlock) {
  UniformBlockMap map(10, 4);
  EXPECT_EQ(map.num_blocks(), 3u);
  EXPECT_EQ(map.block_size(2), 2u);
  EXPECT_EQ(map.items_of(2)[0], 8u);
}

TEST(UniformBlockMap, SingletonBlocksAreTraditionalCaching) {
  auto map = make_singleton_blocks(5);
  EXPECT_EQ(map->num_blocks(), 5u);
  EXPECT_EQ(map->max_block_size(), 1u);
  for (ItemId it = 0; it < 5; ++it) EXPECT_EQ(map->block_of(it), it);
}

TEST(UniformBlockMap, OutOfRangeThrows) {
  UniformBlockMap map(8, 4);
  EXPECT_THROW(map.block_of(8), ContractViolation);
  EXPECT_THROW(map.items_of(2), ContractViolation);
}

TEST(UniformBlockMap, DegenerateInputsThrow) {
  EXPECT_THROW(UniformBlockMap(0, 4), ContractViolation);
  EXPECT_THROW(UniformBlockMap(4, 0), ContractViolation);
}

TEST(ExplicitBlockMap, BasicPartition) {
  ExplicitBlockMap map({{0, 2}, {1}, {3, 4, 5}});
  EXPECT_EQ(map.num_items(), 6u);
  EXPECT_EQ(map.num_blocks(), 3u);
  EXPECT_EQ(map.max_block_size(), 3u);
  EXPECT_EQ(map.block_of(0), 0u);
  EXPECT_EQ(map.block_of(2), 0u);
  EXPECT_EQ(map.block_of(1), 1u);
  EXPECT_EQ(map.block_of(5), 2u);
}

TEST(ExplicitBlockMap, ItemsAreSortedWithinBlock) {
  ExplicitBlockMap map({{2, 0}, {1}});
  const auto items = map.items_of(0);
  EXPECT_EQ(items[0], 0u);
  EXPECT_EQ(items[1], 2u);
}

TEST(ExplicitBlockMap, RejectsOverlap) {
  EXPECT_THROW(ExplicitBlockMap({{0, 1}, {1, 2}}), ContractViolation);
}

TEST(ExplicitBlockMap, RejectsDuplicateWithinBlock) {
  EXPECT_THROW(ExplicitBlockMap({{0, 0}, {1}}), ContractViolation);
}

TEST(ExplicitBlockMap, RejectsGapsInUniverse) {
  // ids {0, 2}: id 1 missing => not dense.
  EXPECT_THROW(ExplicitBlockMap({{0}, {2}}), ContractViolation);
}

TEST(ExplicitBlockMap, RejectsEmptyBlock) {
  EXPECT_THROW(ExplicitBlockMap({{0}, {}}), ContractViolation);
}

TEST(ExplicitBlockMap, RejectsEmptyPartition) {
  EXPECT_THROW(ExplicitBlockMap({}), ContractViolation);
}

TEST(BlockMapProperty, EveryItemInItsOwnBlocksItemList) {
  UniformBlockMap uni(37, 5);
  for (ItemId it = 0; it < 37; ++it) {
    const auto items = uni.items_of(uni.block_of(it));
    bool found = false;
    for (ItemId member : items) found |= (member == it);
    EXPECT_TRUE(found) << "item " << it;
  }
}

TEST(BlockMapProperty, BlockSizesNeverExceedMax) {
  ExplicitBlockMap map({{0, 1, 2}, {3}, {4, 5}});
  for (BlockId b = 0; b < map.num_blocks(); ++b)
    EXPECT_LE(map.block_size(b), map.max_block_size());
}

}  // namespace
}  // namespace gcaching
