// Unit tests for IBLP and its ablation variants (Section 5.1 semantics).
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/block_lru.hpp"
#include "policies/iblp.hpp"
#include "policies/item_lru.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

TEST(Iblp, ConfigMustSumToCapacity) {
  auto map = make_uniform_blocks(16, 4);
  Iblp bad(IblpConfig{4, 8});
  EXPECT_THROW(Simulation(*map, bad, 16), ContractViolation);
}

TEST(Iblp, BlockLayerMustHoldABlock) {
  auto map = make_uniform_blocks(16, 4);
  Iblp bad(IblpConfig{14, 2});  // b = 2 < B = 4
  EXPECT_THROW(Simulation(*map, bad, 16), ContractViolation);
}

TEST(Iblp, MissLoadsWholeBlockAndItemLayerCachesRequested) {
  auto map = make_uniform_blocks(16, 4);
  Iblp iblp(IblpConfig{4, 8});
  const SimStats s = simulate(*map, Trace({0}), iblp, 12);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.items_loaded, 4u);  // block layer takes the whole block
  EXPECT_TRUE(iblp.in_item_layer(0));
  EXPECT_TRUE(iblp.in_block_layer(0));
}

TEST(Iblp, SpatialHitsServedByBlockLayer) {
  auto map = make_uniform_blocks(16, 4);
  Iblp iblp(IblpConfig{4, 8});
  const SimStats s = simulate(*map, Trace({0, 1, 2, 3}), iblp, 12);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.spatial_hits, 3u);
}

TEST(Iblp, ItemLayerHitsDoNotReorderBlockLru) {
  auto map = make_uniform_blocks(32, 4);
  // i=4, b=8 (2 blocks). Load block 0 then block 1. Item 0 is in the item
  // layer; hammering it must NOT refresh block 0 in the block LRU, so the
  // next new block evicts block 0 (the LRU block), not block 1.
  Iblp iblp(IblpConfig{4, 8});
  Simulation sim(*map, iblp, 12);
  for (ItemId it : {0u, 4u, 0u, 0u, 0u, 8u}) sim.access(it);
  EXPECT_FALSE(iblp.in_block_layer(0));  // block 0 evicted
  EXPECT_TRUE(iblp.in_block_layer(1));   // block 1 survived
  EXPECT_TRUE(iblp.in_block_layer(2));
  // Item 0 survives in the item layer even though its block was evicted.
  EXPECT_TRUE(sim.cache().contains(0));
  EXPECT_TRUE(iblp.in_item_layer(0));
}

TEST(Iblp, VictimLeavesOnlyWhenUncovered) {
  auto map = make_uniform_blocks(64, 4);
  // Item layer size 2: fill it with items from evicted blocks and verify
  // the model-residency invariant via the verifying simulator (which throws
  // on any inconsistency). 5 distinct blocks > block layer (2 blocks).
  Iblp iblp(IblpConfig{2, 8});
  Simulation sim(*map, iblp, 10);
  EXPECT_NO_THROW({
    for (ItemId it : {0u, 4u, 8u, 12u, 16u, 0u, 4u, 8u, 12u, 16u})
      sim.access(it);
  });
}

TEST(Iblp, DegenerateItemOnlyMatchesItemLru) {
  const auto w = traces::zipf_items(64, 4, 5000, 0.8, 21);
  Iblp iblp(IblpConfig{16, 0});
  ItemLru lru;
  EXPECT_EQ(simulate(w, iblp, 16).misses, simulate(w, lru, 16).misses);
}

TEST(Iblp, DegenerateBlockOnlyMatchesBlockLru) {
  const auto w = traces::zipf_items(64, 4, 5000, 0.8, 22);
  Iblp iblp(IblpConfig{0, 16});
  BlockLru blru;
  EXPECT_EQ(simulate(w, iblp, 16).misses, simulate(w, blru, 16).misses);
}

TEST(Iblp, NameReflectsConfig) {
  Iblp iblp(IblpConfig{3, 5});
  EXPECT_EQ(iblp.name(), "iblp(i=3,b=5)");
}

TEST(Iblp, HandlesMixedWorkloadWithoutViolations) {
  const auto w = traces::scan_with_hotset(64, 8, 20000, 0.3, 0.9, 4, 31);
  Iblp iblp(IblpConfig{32, 32});
  EXPECT_NO_THROW(simulate(w, iblp, 64));
}

TEST(Iblp, BeatsItemLruOnSpatialTrace) {
  const auto w = traces::sequential_scan(512, 8, 4096);
  Iblp iblp(IblpConfig{8, 56});
  ItemLru lru;
  EXPECT_LT(simulate(w, iblp, 64).misses, simulate(w, lru, 64).misses);
}

TEST(Iblp, CompetitiveWithBlockLruOnPollutionTrace) {
  // One hot item per block over more blocks than the cache holds as blocks:
  // Block Cache thrashes, IBLP's item layer holds the hot items.
  const auto w = traces::hot_item_per_block(32, 8, 20000, 32, 0.0, 17);
  Iblp iblp(IblpConfig{32, 32});
  BlockLru blru;
  EXPECT_LT(simulate(w, iblp, 64).misses, simulate(w, blru, 64).misses);
}

// ---------------------------------------------------------------------------
// Exclusive variant
// ---------------------------------------------------------------------------

TEST(IblpExclusive, NoDuplicationInvariant) {
  const auto w = traces::zipf_blocks(32, 4, 8000, 0.8, 3, 41);
  IblpExclusive excl(IblpConfig{8, 16});
  // The verifying simulator throws if exclusive bookkeeping double-loads.
  EXPECT_NO_THROW(simulate(w, excl, 24));
}

TEST(IblpExclusive, ServesSpatialHits) {
  auto map = make_uniform_blocks(16, 4);
  IblpExclusive excl(IblpConfig{4, 8});
  const SimStats s = simulate(*map, Trace({0, 1, 2, 3}), excl, 12);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.spatial_hits, 3u);
}

TEST(IblpExclusive, PromotionFreesBlockLayerSlot) {
  auto map = make_uniform_blocks(16, 4);
  IblpExclusive excl(IblpConfig{4, 8});
  Simulation sim(*map, excl, 12);
  sim.access(0);  // miss: block 0 into block layer, 0 promoted exclusively
  // 3 items of block 0 covered (1, 2, 3); 0 lives in the item layer only.
  EXPECT_EQ(excl.block_layer_used(), 3u);
  sim.access(1);  // spatial hit, promotes 1
  EXPECT_EQ(excl.block_layer_used(), 2u);
}

TEST(IblpExclusive, EffectiveCapacityBeatsDuplicatingVariantSometimes) {
  // Not asserting dominance (the paper does not claim it) — just that the
  // exclusive variant is a well-formed policy with sane stats.
  const auto w = traces::scan_with_hotset(64, 8, 20000, 0.4, 0.8, 5, 51);
  IblpExclusive excl(IblpConfig{32, 32});
  const SimStats s = simulate(w, excl, 64);
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_GT(s.hits, 0u);
}

// ---------------------------------------------------------------------------
// Block-first ordering ablation
// ---------------------------------------------------------------------------

TEST(IblpBlockFirst, HotItemReordersBlockLru) {
  auto map = make_uniform_blocks(32, 4);
  // Same scenario as ItemLayerHitsDoNotReorderBlockLru, but with the block
  // layer in front: hammering item 0 refreshes block 0, so the new block
  // evicts block 1 instead. This is exactly the pollution the paper warns
  // about.
  IblpBlockFirst bf(IblpConfig{4, 8});
  Simulation sim(*map, bf, 12);
  for (ItemId it : {0u, 4u, 0u, 0u, 0u, 8u}) sim.access(it);
  // Block 0 was refreshed by the hits, block 1 is the LRU victim.
  EXPECT_FALSE(sim.cache().contains(5));  // block 1 items gone
  EXPECT_TRUE(sim.cache().contains(1));   // block 0 items retained
}

TEST(IblpBlockFirst, HotItemPinsItsBlockAndStarvesTheScan) {
  // The Section 5.1 pollution scenario, deterministically: a hot item's
  // block stays pinned at the block-layer MRU under block-first ordering,
  // halving the effective block layer; two alternating scan blocks then
  // thrash. Item-first ordering lets the hot block age out (the hot item
  // survives in the item layer) and the scan blocks both fit.
  // Geometry: block layer b = 12 holds exactly the 3 scan blocks; the hot
  // block pins one slot under block-first (its hits keep refreshing it),
  // leaving 2 slots for 3 cycling scan blocks -> perpetual thrash. The
  // item layer (i = 2) is too small to rescue 3 scan items but under
  // item-first keeps the hot item resident, so the hot block ages out and
  // all 3 scan blocks fit.
  auto map = make_uniform_blocks(64, 4);
  Trace t;
  t.push(0);  // hot item, block 0
  for (int rep = 0; rep < 50; ++rep)
    for (ItemId it : {4u, 0u, 8u, 0u, 12u, 0u}) t.push(it);

  Iblp item_first(IblpConfig{2, 12});
  IblpBlockFirst block_first(IblpConfig{2, 12});
  const auto s_if = simulate(*map, t, item_first, 14);
  const auto s_bf = simulate(*map, t, block_first, 14);
  EXPECT_LE(s_if.misses, 8u);   // cold blocks + short transient
  EXPECT_GE(s_bf.misses, 50u);  // scan blocks evict each other every round
}

}  // namespace
}  // namespace gcaching
