// Integration tests for the executable lower-bound constructions: running
// the Theorem 2/3/4 adversaries against real policies must reproduce the
// proofs' miss accounting and approach the analytic bounds.
#include <gtest/gtest.h>

#include "bounds/competitive.hpp"
#include "core/simulator.hpp"
#include "offline/opt_bounds.hpp"
#include "policies/athreshold.hpp"
#include "policies/belady.hpp"
#include "policies/block_lru.hpp"
#include "policies/iblp.hpp"
#include "policies/item_lru.hpp"
#include "traces/adversary.hpp"

namespace gcaching::traces {
namespace {

TEST(ItemAdversary, ItemLruMissesEveryAccessAfterWarmup) {
  // The Theorem 2 proof: the online Item Cache never hits after warmup.
  AdversaryOptions opts{256, 32, 8, 6};
  ItemLru lru;
  const auto res = run_item_adversary(lru, opts);
  const std::uint64_t steady_accesses =
      res.online.accesses - opts.k;  // warmup = k accesses
  EXPECT_EQ(res.online_steady_misses, steady_accesses);
}

TEST(ItemAdversary, RatioApproachesTheorem2Bound) {
  AdversaryOptions opts{256, 32, 8, 40};
  ItemLru lru;
  const auto res = run_item_adversary(lru, opts);
  const double bound = bounds::item_cache_lower(
      static_cast<double>(opts.k), static_cast<double>(opts.h),
      static_cast<double>(opts.B));
  // Steady ratio must be within the bound's ballpark (the construction is
  // exactly the proof's, so it should be close) and never exceed it.
  EXPECT_LE(res.steady_ratio(), bound * 1.001);
  EXPECT_GE(res.steady_ratio(), bound * 0.85);
}

TEST(ItemAdversary, PrescribedOptIsAchievable) {
  // The prescribed OPT count must be a genuine upper bound on the offline
  // optimum of the captured trace: cross-check with certified OPT lower
  // bounds (lower <= true OPT <= prescribed is consistent only if
  // lower <= prescribed).
  AdversaryOptions opts{128, 32, 8, 10};
  ItemLru lru;
  const auto res = run_item_adversary(lru, opts);
  EXPECT_GE(res.opt_misses,
            opt_lower_bound(*res.workload.map, res.workload.trace, opts.h));
}

TEST(ItemAdversary, ClairvoyantHeuristicStaysWithinBOfPrescribedOpt) {
  AdversaryOptions opts{128, 32, 8, 10};
  ItemLru lru;
  const auto res = run_item_adversary(lru, opts);
  BeladyGreedyGc heur;
  const SimStats s = simulate(res.workload, heur, opts.h);
  // The prescribed schedule needs perfect knowledge of the adaptive
  // step-4 choices; the greedy clairvoyant heuristic lacks the layered
  // reservation and can lose up to a factor ~B on this trace, but no
  // more — and it exploits spatial locality far better than an online
  // item cache of the same size would.
  EXPECT_LE(s.misses, res.opt_misses * opts.B);
  ItemLru lru_h;
  const SimStats s_lru = simulate(res.workload, lru_h, opts.h);
  EXPECT_LT(s.misses, s_lru.misses);
}

TEST(ItemAdversary, IblpDoesBetterThanItemLru) {
  AdversaryOptions opts{512, 64, 16, 16};
  ItemLru lru;
  Iblp iblp(IblpConfig{128, 384});
  const auto r_lru = run_item_adversary(lru, opts);
  const auto r_iblp = run_item_adversary(iblp, opts);
  // IBLP's block layer converts the whole-block step-2 scans into one miss
  // per block; the Item Cache pays B per block.
  EXPECT_LT(r_iblp.steady_ratio(), r_lru.steady_ratio());
}

TEST(ItemAdversary, RequiresHGeqB) {
  AdversaryOptions opts{64, 4, 8, 2};  // h < B
  ItemLru lru;
  EXPECT_THROW(run_item_adversary(lru, opts), ContractViolation);
}

TEST(BlockAdversary, BlockLruMissesEveryAccessAfterWarmup) {
  AdversaryOptions opts{256, 8, 8, 6};  // h <= k/B = 32
  BlockLru blk;
  const auto res = run_block_adversary(blk, opts);
  // Warmup for a block cache: k items loaded in k/B misses; count accesses.
  const std::uint64_t steady_accesses = res.online.accesses - opts.k;
  EXPECT_EQ(res.online_steady_misses, steady_accesses);
}

TEST(BlockAdversary, RatioApproachesTheorem3Bound) {
  AdversaryOptions opts{256, 8, 8, 40};
  BlockLru blk;
  const auto res = run_block_adversary(blk, opts);
  const double bound = bounds::block_cache_lower(
      static_cast<double>(opts.k), static_cast<double>(opts.h),
      static_cast<double>(opts.B));
  EXPECT_LE(res.steady_ratio(), bound * 1.001);
  EXPECT_GE(res.steady_ratio(), bound * 0.80);
}

TEST(BlockAdversary, ItemLruShruggsItOff) {
  // The Theorem 3 trace is harmless for an Item Cache of the same size:
  // its candidates fit easily among k items.
  AdversaryOptions opts{256, 8, 8, 10};
  ItemLru lru;
  const auto res = run_block_adversary(lru, opts);
  EXPECT_LT(res.steady_ratio(), 3.0);
}

TEST(BlockAdversary, GeometryPreconditionEnforced) {
  AdversaryOptions opts{64, 32, 8, 2};  // h > ceil(k/B) = 8
  BlockLru blk;
  EXPECT_THROW(run_block_adversary(blk, opts), ContractViolation);
}

TEST(GeneralAdversary, MeasuresAForItemCache) {
  // An Item Cache loads one item per miss: the adversary can make all B
  // distinct requests to each fresh block (a = B).
  AdversaryOptions opts{128, 32, 8, 6};
  ItemLru lru;
  const auto res = run_general_adversary(lru, opts);
  EXPECT_EQ(res.max_observed_a, opts.B);
}

TEST(GeneralAdversary, MeasuresAForAThresholdPolicies) {
  AdversaryOptions opts{128, 32, 8, 6};
  for (unsigned a : {1u, 2u, 4u}) {
    AThreshold pol(a);
    const auto res = run_general_adversary(pol, opts);
    EXPECT_EQ(res.max_observed_a, a) << "a=" << a;
  }
}

TEST(GeneralAdversary, RatioTracksTheorem4AcrossA) {
  AdversaryOptions opts{256, 64, 16, 24};
  for (unsigned a : {1u, 4u, 16u}) {
    AThreshold pol(a);
    const auto res = run_general_adversary(pol, opts);
    const double bound = bounds::athreshold_lower(
        static_cast<double>(opts.k), static_cast<double>(opts.h),
        static_cast<double>(opts.B), static_cast<double>(a));
    EXPECT_LE(res.steady_ratio(), bound * 1.05) << "a=" << a;
    EXPECT_GE(res.steady_ratio(), bound * 0.60) << "a=" << a;
  }
}

TEST(GeneralAdversary, CapturedTraceIsValidWorkload) {
  AdversaryOptions opts{64, 16, 4, 4};
  ItemLru lru;
  const auto res = run_general_adversary(lru, opts);
  EXPECT_NO_THROW(res.workload.validate());
  EXPECT_GT(res.workload.trace.size(), opts.k);
}

TEST(Adversaries, TotalAndSteadyCountsConsistent) {
  AdversaryOptions opts{128, 16, 8, 8};
  ItemLru lru;
  const auto res = run_item_adversary(lru, opts);
  EXPECT_LE(res.online_steady_misses, res.online.misses);
  EXPECT_LE(res.opt_steady_misses, res.opt_misses);
  EXPECT_GT(res.opt_steady_misses, 0u);
}

}  // namespace
}  // namespace gcaching::traces
