// Concurrency stress tests, written for the `tsan` preset (they run in every
// configuration; ThreadSanitizer is what gives them teeth). The design claim
// under test is the thread pool's contract: every submitted task is
// self-contained, so sweep results are bit-identical at any thread count and
// any data race in ThreadPool / run_sweep is a real bug — tools/sanitizers/
// tsan.supp stays empty.
//
// The tasks here are deliberately tiny: the point is to maximize scheduler
// interleavings on the pool's queue, counters, and error slot, not to
// simulate quickly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/runner.hpp"
#include "sim/thread_pool.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

std::size_t hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

TEST(TsanStress, ParallelForTinyTasksAtEveryThreadCount) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    hardware_threads()}) {
    ThreadPool pool(threads);
    for (int round = 0; round < 20; ++round) {
      // 257 single-multiply tasks: write-only, disjoint slots. Any cross-
      // thread visibility bug in chunk handoff shows up as a torn/missing
      // element; TSan sees the race itself.
      std::vector<std::uint64_t> out(257, 0);
      pool.parallel_for(out.size(), [&out](std::size_t i) { out[i] = i * i; });
      for (std::size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], i * i);
    }
  }
}

TEST(TsanStress, SubmitWaitReuseCycles) {
  // Repeated submit/wait cycles on one pool: outstanding_ must return to
  // zero and the workers must stay parked in between without racing the
  // next batch.
  ThreadPool pool(2);
  std::atomic<std::uint64_t> sum{0};
  for (int cycle = 0; cycle < 50; ++cycle) {
    for (int i = 0; i < 8; ++i)
      pool.submit([&sum] { sum.fetch_add(1, std::memory_order_relaxed); });
    pool.wait();
  }
  EXPECT_EQ(sum.load(), 50u * 8u);
}

TEST(TsanStress, ExceptionCaptureUnderContention) {
  // Several tasks throw concurrently; exactly one exception must be handed
  // to wait() per cycle and the pool must stay usable afterwards (the
  // first_error_ slot and outstanding_ bookkeeping race-free).
  ThreadPool pool(2);
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 16; ++i)
      pool.submit([i] {
        if (i % 5 == 0) throw std::runtime_error("boom");
      });
    EXPECT_THROW(pool.wait(), std::runtime_error);
  }
  std::atomic<int> ok{0};
  for (int i = 0; i < 16; ++i) pool.submit([&ok] { ok.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ok.load(), 16);
}

void expect_identical_cells(const std::vector<sim::SweepCell>& a,
                            const std::vector<sim::SweepCell>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("cell " + std::to_string(i));
    EXPECT_EQ(a[i].workload_index, b[i].workload_index);
    EXPECT_EQ(a[i].policy_index, b[i].policy_index);
    EXPECT_EQ(a[i].capacity, b[i].capacity);
    EXPECT_EQ(a[i].stats.accesses, b[i].stats.accesses);
    EXPECT_EQ(a[i].stats.hits, b[i].stats.hits);
    EXPECT_EQ(a[i].stats.misses, b[i].stats.misses);
    EXPECT_EQ(a[i].stats.temporal_hits, b[i].stats.temporal_hits);
    EXPECT_EQ(a[i].stats.spatial_hits, b[i].stats.spatial_hits);
    EXPECT_EQ(a[i].stats.items_loaded, b[i].stats.items_loaded);
    EXPECT_EQ(a[i].stats.sideloads, b[i].stats.sideloads);
    EXPECT_EQ(a[i].stats.evictions, b[i].stats.evictions);
    EXPECT_EQ(a[i].stats.wasted_sideloads, b[i].stats.wasted_sideloads);
  }
}

TEST(TsanStress, RunSweepBitIdenticalAcrossThreadCounts) {
  // The batched sweep's cost-aware schedule starts rows out of order and
  // writes results back concurrently; at 1 / 2 / hardware threads, batched
  // or per-cell, every SimStats counter must match the serial baseline.
  const std::vector<Workload> workloads = {
      traces::zipf_blocks(48, 8, 1500, 0.9, 3, 11),
      traces::sequential_scan(128, 8, 1500),
  };
  sim::SweepSpec spec;
  spec.workloads = &workloads;
  spec.policy_specs = {"item-lru", "block-lru", "item-fifo", "gcm:seed=3"};
  spec.capacities = {16, 32, 64};
  spec.threads = 1;
  const auto baseline = sim::run_sweep(spec);
  ASSERT_EQ(baseline.size(),
            workloads.size() * spec.policy_specs.size() *
                spec.capacities.size());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{0}}) {
    spec.threads = threads;
    for (const bool batch : {true, false}) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " batch=" + std::to_string(batch));
      spec.batch_columns = batch;
      expect_identical_cells(baseline, sim::run_sweep(spec));
    }
  }
}

}  // namespace
}  // namespace gcaching
