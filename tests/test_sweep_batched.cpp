// Differential tests for the capacity-batched sweep engine.
//
// Three ways to evaluate a (workload, policy) row's capacity column must be
// bit-identical on every SimStats counter:
//   1. per-cell      — simulate_fast_spec once per capacity (PR 1's engine),
//   2. lane-batched  — simulate_column_spec with the stack path disabled
//                      (one trace pass, one cache lane per capacity),
//   3. stack-column  — simulate_column_spec with the stack path enabled
//                      (item-lru / block-lru collapse into one
//                      stack-distance pass; others fall through to lanes).
// And run_sweep must produce identical cells with batching on or off, at
// any thread count. Like test_fast_sim, this binary is built twice: against
// the normal libraries and against the GC_FAST_SIM configuration.
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/simulator.hpp"
#include "locality/stack_column.hpp"
#include "policies/factory.hpp"
#include "sim/runner.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

void expect_identical(const SimStats& a, const SimStats& b) {
  EXPECT_EQ(a.accesses, b.accesses);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_EQ(a.temporal_hits, b.temporal_hits);
  EXPECT_EQ(a.spatial_hits, b.spatial_hits);
  EXPECT_EQ(a.items_loaded, b.items_loaded);
  EXPECT_EQ(a.sideloads, b.sideloads);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.wasted_sideloads, b.wasted_sideloads);
}

/// Every bare factory name plus parameterized variants, mirroring
/// test_fast_sim so the column dispatcher's argument plumbing is covered.
std::vector<std::string> specs_under_test() {
  std::vector<std::string> specs = known_policy_names();
  specs.push_back("item-slru:p=0.25");
  specs.push_back("item-random:seed=7");
  specs.push_back("footprint:cold_block=0");
  specs.push_back("gcm:seed=5,sideload=3");
  specs.push_back("marking-item:seed=9");
  specs.push_back("athreshold:a=4");
  return specs;
}

// Deliberately unsorted: columns must not assume ascending capacities.
const std::vector<std::size_t> kCapacities = {48, 16, 96, 24, 64, 32};

class ColumnDifferential : public ::testing::TestWithParam<std::string> {};

TEST_P(ColumnDifferential, AllThreePathsBitIdentical) {
  const std::string spec = GetParam();
  for (const std::uint64_t seed : {1u, 2u}) {
    const Workload w = traces::zipf_blocks(64, 8, 4000, 0.9, 4, seed);
    const std::vector<BlockId> ids = compute_block_ids(*w.map, w.trace);
    const std::span<const BlockId> ids_span(ids);
    const std::vector<SimStats> batched =
        simulate_column_spec(spec, *w.map, w.trace, ids_span, kCapacities);
    const std::vector<SimStats> lanes_only = simulate_column_spec(
        spec, *w.map, w.trace, ids_span, kCapacities, /*allow_stack=*/false);
    ASSERT_EQ(batched.size(), kCapacities.size());
    ASSERT_EQ(lanes_only.size(), kCapacities.size());
    for (std::size_t i = 0; i < kCapacities.size(); ++i) {
      SCOPED_TRACE(spec + " seed=" + std::to_string(seed) +
                   " capacity=" + std::to_string(kCapacities[i]));
      const SimStats cell = simulate_fast_spec(spec, *w.map, w.trace,
                                               ids_span, kCapacities[i]);
      expect_identical(cell, batched[i]);
      expect_identical(cell, lanes_only[i]);
    }
  }
}

std::string sanitize(const ::testing::TestParamInfo<std::string>& info) {
  std::string name;
  for (const char c : info.param)
    name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllFactorySpecs, ColumnDifferential,
                         ::testing::ValuesIn(specs_under_test()), sanitize);

// The stack derivation's spatial-hit and wasted-sideload accounting is the
// subtle part; stress it on workload shapes with extreme spatial profiles.
TEST(StackColumn, MatchesPerCellAcrossWorkloadShapes) {
  const std::vector<Workload> workloads = {
      traces::sequential_scan(256, 8, 3000),
      traces::hot_item_per_block(32, 8, 3000, 8, 0.3, 3),
      traces::pointer_chase(32, 8, 3000, 0.7, 0.02, 5),
      traces::strided_scan(256, 8, 3000, 8),
  };
  for (const Workload& w : workloads) {
    const std::vector<BlockId> ids = compute_block_ids(*w.map, w.trace);
    for (const std::string spec : {"item-lru", "block-lru"}) {
      const std::vector<SimStats> column = simulate_column_spec(
          spec, *w.map, w.trace, std::span<const BlockId>(ids), kCapacities);
      for (std::size_t i = 0; i < kCapacities.size(); ++i) {
        SCOPED_TRACE(w.name + " " + spec +
                     " capacity=" + std::to_string(kCapacities[i]));
        expect_identical(
            simulate_fast_spec(spec, *w.map, w.trace,
                               std::span<const BlockId>(ids), kCapacities[i]),
            column[i]);
      }
    }
  }
}

// A non-uniform partition (last block smaller) is outside the block-lru
// stack derivation's model; the dispatcher must fall back to the lane
// engine and still match per-cell results.
TEST(StackColumn, NonUniformPartitionFallsBackToLanes) {
  Workload w;
  w.map = std::make_shared<UniformBlockMap>(60, 8);  // last block: 4 items
  ASSERT_FALSE(locality::block_column_supported(*w.map));
  std::vector<ItemId> accesses(2500);
  for (std::size_t i = 0; i < accesses.size(); ++i)
    accesses[i] = static_cast<ItemId>((i * 7 + i * i % 13) % 60);
  w.trace = Trace(std::move(accesses));
  w.name = "nonuniform";
  const std::vector<BlockId> ids = compute_block_ids(*w.map, w.trace);
  const std::vector<SimStats> column =
      simulate_column_spec("block-lru", *w.map, w.trace,
                           std::span<const BlockId>(ids), kCapacities);
  for (std::size_t i = 0; i < kCapacities.size(); ++i) {
    SCOPED_TRACE("capacity=" + std::to_string(kCapacities[i]));
    expect_identical(
        simulate_fast_spec("block-lru", *w.map, w.trace,
                           std::span<const BlockId>(ids), kCapacities[i]),
        column[i]);
  }
}

TEST(StackColumn, RejectsUnknownSpec) {
  const Workload w = traces::zipf_blocks(8, 4, 50, 0.8, 2, 1);
  const std::vector<BlockId> ids = compute_block_ids(*w.map, w.trace);
  const std::vector<std::size_t> caps = {8};
  EXPECT_THROW(simulate_column_spec("no-such-policy", *w.map, w.trace,
                                    std::span<const BlockId>(ids), caps),
               ContractViolation);
}

// run_sweep: batching (with its cost-aware, out-of-order row schedule) must
// be invisible in the results — identical cells in identical row-major
// order, at every thread count, in fast and verifying modes.
TEST(SweepBatched, BatchOnOffIdenticalAcrossThreadCounts) {
  const std::vector<Workload> workloads = {
      traces::zipf_blocks(64, 8, 3000, 0.9, 4, 1),
      traces::hot_item_per_block(32, 8, 2000, 8, 0.25, 2),
  };
  sim::SweepSpec spec;
  spec.workloads = &workloads;
  spec.policy_specs = {"item-lfu", "item-lru", "block-lru", "iblp",
                       "gcm:seed=5,sideload=3"};
  spec.capacities = {16, 32, 64};

  spec.batch_columns = false;
  const auto baseline = sim::run_sweep(spec);
  ASSERT_EQ(baseline.size(), workloads.size() * spec.policy_specs.size() *
                                 spec.capacities.size());

  const std::size_t hw = std::thread::hardware_concurrency();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, hw}) {
    spec.threads = threads;
    spec.batch_columns = true;
    const auto batched = sim::run_sweep(spec);
    ASSERT_EQ(batched.size(), baseline.size());
    for (std::size_t i = 0; i < baseline.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " cell=" + std::to_string(i));
      EXPECT_EQ(baseline[i].workload_index, batched[i].workload_index);
      EXPECT_EQ(baseline[i].policy_index, batched[i].policy_index);
      EXPECT_EQ(baseline[i].capacity, batched[i].capacity);
      expect_identical(baseline[i].stats, batched[i].stats);
    }
  }

  // The verifying engine ignores batch_columns; results still agree.
  spec.threads = 2;
  spec.use_fast_path = false;
  spec.batch_columns = true;
  const auto verified = sim::run_sweep(spec);
  for (std::size_t i = 0; i < baseline.size(); ++i)
    expect_identical(baseline[i].stats, verified[i].stats);
}

TEST(SweepBatched, CostModelIsPositiveAndScalesWithLength) {
  for (const std::string& spec : specs_under_test()) {
    const double one = estimated_sim_cost(spec, 1000);
    EXPECT_GT(one, 0.0) << spec;
    EXPECT_DOUBLE_EQ(estimated_sim_cost(spec, 3000), 3.0 * one) << spec;
  }
  // Unknown names get a finite fallback, never a throw: scheduling is
  // best-effort.
  EXPECT_GT(estimated_sim_cost("someday-policy", 1000), 0.0);
}

}  // namespace
}  // namespace gcaching
