// Unit tests for the Mattson stack-algorithm miss-ratio curves: they must
// agree exactly with direct LRU simulation at every sampled size.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "locality/mrc.hpp"
#include "policies/block_lru.hpp"
#include "policies/item_lru.hpp"
#include "traces/synthetic.hpp"
#include "util/rng.hpp"

namespace gcaching::locality {
namespace {

TEST(StackDistances, HandComputedExample) {
  // keys: a b a c b a  ->  distances: a:inf b:inf a:2 c:inf b:3 a:3
  const auto hist = stack_distances({0, 1, 0, 2, 1, 0}, 3);
  EXPECT_EQ(hist.cold, 3u);
  ASSERT_GE(hist.hist.size(), 4u);
  EXPECT_EQ(hist.hist[1], 0u);
  EXPECT_EQ(hist.hist[2], 1u);
  EXPECT_EQ(hist.hist[3], 2u);
}

TEST(StackDistances, RepeatIsDistanceOne) {
  const auto hist = stack_distances({5, 5, 5}, 8);
  EXPECT_EQ(hist.cold, 1u);
  EXPECT_EQ(hist.hist[1], 2u);
}

TEST(StackDistances, MissesAtMatchesDefinition) {
  const auto hist = stack_distances({0, 1, 0, 2, 1, 0}, 3);
  // c=1: hits need distance <= 1 -> none; all 6 accesses miss.
  EXPECT_EQ(hist.misses_at(1), 6u);
  // c=2: the distance-2 access hits -> 5 misses.
  EXPECT_EQ(hist.misses_at(2), 5u);
  // c=3: all finite distances hit -> 3 misses (cold only).
  EXPECT_EQ(hist.misses_at(3), 3u);
  EXPECT_EQ(hist.misses_at(100), 3u);
}

TEST(Mrc, MatchesItemLruSimulationExactly) {
  SplitMix64 rng(112);
  for (int round = 0; round < 5; ++round) {
    const auto w = traces::zipf_items(128, 8, 4000, 0.8,
                                      1000 + static_cast<unsigned>(round));
    const std::vector<std::size_t> sizes = {1, 2, 4, 8, 16, 32, 64, 128};
    const auto curve = lru_mrc(w, sizes);
    for (std::size_t j = 0; j < sizes.size(); ++j) {
      ItemLru lru;
      const SimStats s = simulate(w, lru, sizes[j]);
      EXPECT_EQ(curve.misses[j], s.misses)
          << "round " << round << " size " << sizes[j];
    }
  }
}

TEST(Mrc, MatchesBlockLruSimulationExactly) {
  const auto w = traces::zipf_blocks(32, 8, 4000, 0.9, 4, 77);
  const std::vector<std::size_t> sizes = {8, 16, 32, 64, 128, 256};
  const auto curve = block_lru_mrc(w, sizes);
  for (std::size_t j = 0; j < sizes.size(); ++j) {
    BlockLru blru;
    const SimStats s = simulate(w, blru, sizes[j]);
    EXPECT_EQ(curve.misses[j], s.misses) << "size " << sizes[j];
  }
}

TEST(Mrc, MonotoneNonIncreasing) {
  const auto w = traces::scan_with_hotset(64, 8, 10000, 0.3, 0.9, 4, 5);
  std::vector<std::size_t> sizes;
  for (std::size_t s = 1; s <= 512; s *= 2) sizes.push_back(s);
  const auto curve = lru_mrc(w, sizes);
  for (std::size_t j = 1; j < sizes.size(); ++j)
    EXPECT_LE(curve.misses[j], curve.misses[j - 1]);
}

TEST(Mrc, RatioHelper) {
  const auto w = traces::sequential_scan(64, 8, 128);
  const auto curve = lru_mrc(w, {64});
  // First lap cold (64 misses), second lap hits: ratio 0.5.
  EXPECT_DOUBLE_EQ(curve.miss_ratio(0), 0.5);
}

TEST(Mrc, BlockCurveCapturesSpatialOpportunity) {
  // Sequential scan: the block-granularity curve (misses ~ per block) sits
  // ~B below the item curve at the same byte budget — the spatial locality
  // an Item Cache leaves on the table.
  const auto w = traces::sequential_scan(512, 8, 4096);
  const auto item = lru_mrc(w, {256});
  const auto block = block_lru_mrc(w, {256});
  EXPECT_GE(item.misses[0], block.misses[0] * 7);
}

}  // namespace
}  // namespace gcaching::locality
