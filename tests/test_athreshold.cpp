// Unit tests for the a-threshold policy family (Section 4.4).
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/athreshold.hpp"
#include "policies/item_lru.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

TEST(AThreshold, AEqualsOneLoadsWholeBlockImmediately) {
  auto map = make_uniform_blocks(16, 4);
  AThreshold a1(1);
  const SimStats s = simulate(*map, Trace({0, 1, 2, 3}), a1, 8);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.items_loaded, 4u);
  EXPECT_EQ(s.spatial_hits, 3u);
}

TEST(AThreshold, LargeANeverSideloads) {
  auto map = make_uniform_blocks(16, 4);
  AThreshold a99(99);
  const SimStats s = simulate(*map, Trace({0, 1, 2, 3}), a99, 8);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.sideloads, 0u);
}

TEST(AThreshold, LargeAMatchesItemLruMissCounts) {
  const auto w = traces::zipf_items(128, 8, 10000, 0.8, 33);
  AThreshold big(1000);
  ItemLru lru;
  EXPECT_EQ(simulate(w, big, 32).misses, simulate(w, lru, 32).misses);
}

TEST(AThreshold, TriggersAfterExactlyADistinctAccesses) {
  auto map = make_uniform_blocks(16, 4);
  AThreshold a2(2);
  Simulation sim(*map, a2, 8);
  sim.access(0);  // 1st distinct access: load only item 0
  EXPECT_EQ(sim.cache().occupancy(), 1u);
  sim.access(1);  // 2nd distinct: threshold reached, rest of block loads
  EXPECT_EQ(sim.cache().occupancy(), 4u);
  EXPECT_EQ(sim.stats().misses, 2u);
  sim.access(2);  // already sideloaded: spatial hit
  EXPECT_EQ(sim.stats().spatial_hits, 1u);
}

TEST(AThreshold, RepeatAccessesDoNotCountTwice) {
  auto map = make_uniform_blocks(16, 4);
  AThreshold a2(2);
  Simulation sim(*map, a2, 8);
  sim.access(0);
  sim.access(0);  // temporal hit, same item: still 1 distinct
  EXPECT_EQ(sim.cache().occupancy(), 1u);
  sim.access(1);
  EXPECT_EQ(sim.cache().occupancy(), 4u);
}

TEST(AThreshold, EpisodeResetsWhenBlockFullyEvicted) {
  auto map = make_uniform_blocks(64, 2);  // B = 2
  AThreshold a2(2);
  Simulation sim(*map, a2, 2);  // tiny cache: block 0 gets fully evicted
  sim.access(0);  // distinct(block0) = 1, no sibling load yet
  sim.access(2);  // evicts nothing (cap 2); block 1, distinct 1
  sim.access(4);  // LRU-evicts 0 -> block 0 fully gone, episode resets
  EXPECT_FALSE(sim.cache().contains(0));
  // Re-access 0: a fresh episode — one distinct access is below the
  // threshold, so the sibling (item 1) must NOT be side-loaded.
  sim.access(0);
  EXPECT_FALSE(sim.cache().contains(1));
  // A second distinct access reaches the threshold and pulls in item 0's
  // sibling.
  sim.access(1);
  EXPECT_TRUE(sim.cache().contains(0));
  EXPECT_TRUE(sim.cache().contains(1));
}

TEST(AThreshold, HitsCountTowardThreshold) {
  auto map = make_uniform_blocks(16, 4);
  AThreshold a2(2);
  Simulation sim(*map, a2, 8);
  sim.access(0);  // miss, distinct 1
  sim.access(1);  // miss, distinct 2 -> whole block
  sim.access(2);  // spatial hit
  EXPECT_EQ(sim.stats().misses, 2u);
}

TEST(AThreshold, InvalidAThrows) {
  EXPECT_THROW(AThreshold(0), ContractViolation);
}

TEST(AThreshold, CapacityMustCoverBlock) {
  auto map = make_uniform_blocks(16, 8);
  AThreshold a1(1);
  EXPECT_THROW(Simulation(*map, a1, 4), ContractViolation);
}

TEST(AThreshold, NameIncludesParameter) {
  AThreshold a(3);
  EXPECT_EQ(a.name(), "athreshold(a=3)");
}

TEST(AThreshold, SweepMonotonicityOnScanTrace) {
  // On a pure sequential scan (maximal spatial locality), smaller `a` can
  // only help: whole-block loading converts future misses into hits.
  const auto w = traces::sequential_scan(4096, 8, 16384);
  std::uint64_t prev = 0;
  bool first = true;
  for (unsigned a : {1u, 2u, 4u, 8u}) {
    AThreshold pol(a);
    const std::uint64_t misses = simulate(w, pol, 128).misses;
    if (!first) {
      EXPECT_LE(prev, misses) << "a=" << a;
    }
    prev = misses;
    first = false;
  }
}

TEST(AThreshold, ProtectsOwnBlockWhenLoadingRest) {
  // Capacity exactly B: loading the rest of the block must not evict the
  // block's own items (would livelock); policy falls back gracefully.
  auto map = make_uniform_blocks(16, 4);
  AThreshold a1(1);
  Simulation sim(*map, a1, 4);
  EXPECT_NO_THROW({
    sim.access(0);
    sim.access(4);
    sim.access(8);
  });
  EXPECT_EQ(sim.cache().occupancy(), 4u);
}

}  // namespace
}  // namespace gcaching
