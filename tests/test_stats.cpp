// SimStats arithmetic and ratio-helper semantics.
//
// Every ratio helper shares one zero-denominator convention — an empty
// denominator yields 0.0, never NaN or inf — so "no traffic yet" rows format
// and aggregate cleanly (timeline windows, sweep tables). The subtraction
// operators underpin gcobs windowing: `later - earlier` of two snapshots of
// the same run is the exact per-window delta.
#include <gtest/gtest.h>

#include "core/stats.hpp"

namespace gcaching {
namespace {

SimStats sample() {
  SimStats s;
  s.accesses = 100;
  s.hits = 60;
  s.misses = 40;
  s.temporal_hits = 45;
  s.spatial_hits = 15;
  s.items_loaded = 120;
  s.sideloads = 80;
  s.evictions = 70;
  s.wasted_sideloads = 20;
  return s;
}

TEST(SimStatsRatios, ValuesOnPopulatedCounters) {
  const SimStats s = sample();
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.4);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.6);
  EXPECT_DOUBLE_EQ(s.spatial_hit_share(), 0.25);
  EXPECT_DOUBLE_EQ(s.loads_per_miss(), 3.0);
  EXPECT_DOUBLE_EQ(s.wasted_sideload_share(), 0.25);
}

TEST(SimStatsRatios, ZeroDenominatorsYieldZeroNotNan) {
  const SimStats empty;
  EXPECT_DOUBLE_EQ(empty.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.spatial_hit_share(), 0.0);
  EXPECT_DOUBLE_EQ(empty.loads_per_miss(), 0.0);
  EXPECT_DOUBLE_EQ(empty.wasted_sideload_share(), 0.0);
}

TEST(SimStatsRatios, EachHelperUsesItsOwnDenominator) {
  // Nonzero accesses but zero hits/misses/sideloads: only the helpers whose
  // denominator is populated may report a nonzero value.
  SimStats s;
  s.accesses = 10;
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.0);
  EXPECT_DOUBLE_EQ(s.spatial_hit_share(), 0.0);
  EXPECT_DOUBLE_EQ(s.loads_per_miss(), 0.0);
  EXPECT_DOUBLE_EQ(s.wasted_sideload_share(), 0.0);

  // All-wasted speculative traffic is share 1.0, not a division hazard.
  s.sideloads = 5;
  s.wasted_sideloads = 5;
  EXPECT_DOUBLE_EQ(s.wasted_sideload_share(), 1.0);
}

TEST(SimStatsRatios, SharedRatioHelperConvention) {
  EXPECT_DOUBLE_EQ(SimStats::ratio(3, 4), 0.75);
  EXPECT_DOUBLE_EQ(SimStats::ratio(0, 4), 0.0);
  EXPECT_DOUBLE_EQ(SimStats::ratio(3, 0), 0.0);
  EXPECT_DOUBLE_EQ(SimStats::ratio(0, 0), 0.0);
}

TEST(SimStatsArithmetic, PlusMinusRoundTrip) {
  const SimStats a = sample();
  SimStats b;
  b.accesses = 7;
  b.hits = 3;
  b.misses = 4;
  b.temporal_hits = 2;
  b.spatial_hits = 1;
  b.items_loaded = 9;
  b.sideloads = 5;
  b.evictions = 6;
  b.wasted_sideloads = 2;

  SimStats sum = a;
  sum += b;
  EXPECT_EQ(sum - b, a);
  EXPECT_EQ(sum - a, b);

  SimStats back = sum;
  back -= b;
  EXPECT_EQ(back, a);
}

TEST(SimStatsArithmetic, SnapshotDeltaCoversEveryCounter) {
  // The windowing use: a later snapshot minus an earlier one of the same
  // monotonic run isolates exactly the interval's activity.
  const SimStats earlier = sample();
  SimStats later = sample();
  later += sample();  // "the run continued"
  const SimStats delta = later - earlier;
  EXPECT_EQ(delta, earlier);  // doubled minus one copy = one copy
  EXPECT_EQ(delta.accesses, 100u);
  EXPECT_EQ(delta.wasted_sideloads, 20u);
}

TEST(SimStatsArithmetic, SelfDifferenceIsEmpty) {
  const SimStats s = sample();
  EXPECT_EQ(s - s, SimStats{});
}

}  // namespace
}  // namespace gcaching
