// Unit tests for src/util: rng, zipf, mathx, table, csv, contracts.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>

#include "util/contracts.hpp"
#include "util/csv.hpp"
#include "util/mathx.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/zipf.hpp"

namespace gcaching {
namespace {

TEST(Contracts, RequireThrowsWithContext) {
  try {
    GC_REQUIRE(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("math broke"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Contracts, PassingChecksAreSilent) {
  EXPECT_NO_THROW(GC_REQUIRE(true, ""));
  EXPECT_NO_THROW(GC_ENSURE(2 + 2 == 4, ""));
  EXPECT_NO_THROW(GC_CHECK(true, ""));
}

TEST(SplitMix64, DeterministicGivenSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(SplitMix64, BelowRespectsBound) {
  SplitMix64 rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(13), 13u);
}

TEST(SplitMix64, BelowCoversRange) {
  SplitMix64 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(SplitMix64, BetweenInclusive) {
  SplitMix64 rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.between(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(SplitMix64, Uniform01InRange) {
  SplitMix64 rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(SplitMix64, BelowZeroBoundThrows) {
  SplitMix64 rng(1);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(SplitMix64, SplitStreamsIndependent) {
  SplitMix64 base(3);
  SplitMix64 s1 = base.split();
  SplitMix64 s2 = base.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (s1() == s2());
  EXPECT_LT(same, 3);
}

TEST(Zipf, Theta0IsUniform) {
  SplitMix64 rng(5);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Zipf, RankZeroMostPopular) {
  SplitMix64 rng(6);
  ZipfSampler zipf(1000, 1.0);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
}

TEST(Zipf, MatchesTheoreticalHeadProbability) {
  // For theta = 1, n = 100: P(rank 0) = 1/H_100 ~= 0.1928.
  SplitMix64 rng(8);
  ZipfSampler zipf(100, 1.0);
  double h100 = 0;
  for (int i = 1; i <= 100; ++i) h100 += 1.0 / i;
  int head = 0;
  const int kTrials = 300000;
  for (int i = 0; i < kTrials; ++i) head += (zipf(rng) == 0);
  EXPECT_NEAR(static_cast<double>(head) / kTrials, 1.0 / h100, 0.01);
}

TEST(Zipf, SingleElementUniverse) {
  SplitMix64 rng(1);
  ZipfSampler zipf(1, 0.8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(Zipf, HighThetaConcentrates) {
  SplitMix64 rng(2);
  ZipfSampler zipf(10000, 1.5);
  int in_top10 = 0;
  for (int i = 0; i < 20000; ++i) in_top10 += (zipf(rng) < 10);
  EXPECT_GT(in_top10, 20000 / 2);
}

TEST(Zipf, RanksStayInRangeAtExtremeExponents) {
  // Regression for the rejection-inversion conversion: the old code cast
  // x + 0.5 to uint64 *before* clamping, which is UB when the inverse
  // overshoots (float-cast-overflow under UBSan). Extreme thetas push
  // h_inverse toward both ends of the domain; every rank must stay in
  // [0, n) for all of them.
  SplitMix64 rng(3);
  for (const double theta : {0.05, 0.5, 1.0, 1.0000001, 2.5, 6.0}) {
    ZipfSampler zipf(50, theta);
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t r = zipf(rng);
      ASSERT_LT(r, 50u) << "theta=" << theta;
    }
  }
}

TEST(Zipf, DistributionUnchangedByClampRewrite) {
  // The clamped conversion must be bit-identical to the old behavior on
  // well-defined inputs: pin the exact head counts for one seed so the
  // UBSan fix provably did not perturb sampling.
  SplitMix64 rng(42);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf(rng)];
  int head3 = counts[0] + counts[1] + counts[2];
  EXPECT_GT(counts[0], counts[1]);
  // ~ (1 + 1/2 + 1/3)/H_100 ~= 35% of the mass in the top 3 ranks.
  EXPECT_NEAR(head3, 3535, 350);
}

TEST(Mathx, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
  EXPECT_EQ(ceil_div(8, 4), 2u);
  EXPECT_EQ(ceil_div(7, 1), 7u);
}

TEST(Mathx, CeilDivNoWraparoundAtDomainEdge) {
  // The textbook (a + b - 1)/b form wraps for a near 2^64 and returns 0/1;
  // the (a - 1)/b + 1 form is exact over the whole domain. Pinned here so
  // the formula cannot regress to the wrapping one.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(ceil_div(kMax, 1), kMax);
  EXPECT_EQ(ceil_div(kMax, 2), (kMax - 1) / 2 + 1);
  EXPECT_EQ(ceil_div(kMax, kMax), 1u);
  EXPECT_EQ(ceil_div(kMax - 1, kMax), 1u);
  // Compile-time too: the helper stays constexpr after the rewrite.
  static_assert(ceil_div(kMax, 16) == kMax / 16 + 1);
  static_assert(ceil_div(0, 0) == 0);
}

TEST(Mathx, Ipow) {
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(3, 0), 1u);
  EXPECT_EQ(ipow(10, 3), 1000u);
}

TEST(Mathx, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1e12, 1e12 * (1 + 1e-10)));
}

TEST(Mathx, GoldenMinFindsParabolaMinimum) {
  const double xmin =
      golden_min([](double x) { return (x - 3.7) * (x - 3.7); }, 0.0, 10.0);
  EXPECT_NEAR(xmin, 3.7, 1e-5);
}

TEST(Mathx, GoldenMinOnBoundary) {
  const double xmin = golden_min([](double x) { return x; }, 2.0, 5.0);
  EXPECT_NEAR(xmin, 2.0, 1e-4);
}

TEST(Mathx, BisectFirstTrue) {
  const auto first = bisect_first_true(0, 100, [](std::uint64_t x) {
    return x >= 37;
  });
  EXPECT_EQ(first, 37u);
}

TEST(Mathx, BisectNeverTrueReturnsPastEnd) {
  const auto first =
      bisect_first_true(0, 10, [](std::uint64_t) { return false; });
  EXPECT_EQ(first, 11u);
}

TEST(Mathx, BisectAllTrueReturnsLow) {
  const auto first =
      bisect_first_true(5, 10, [](std::uint64_t) { return true; });
  EXPECT_EQ(first, 5u);
}

TEST(Mathx, BisectRejectsUnrepresentableSentinel) {
  // hi = 2^64 - 1 would make the not-found sentinel hi + 1 wrap to 0; the
  // precondition must reject it instead of silently reporting "found at 0".
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_THROW(bisect_first_true(0, kMax, [](std::uint64_t) { return false; }),
               ContractViolation);
  // The largest legal hi still works end to end.
  EXPECT_EQ(bisect_first_true(kMax - 2, kMax - 1,
                              [](std::uint64_t) { return false; }),
            kMax);
}

TEST(TextTable, RendersHeadersAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, FormatHelpers) {
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt_ratio(std::numeric_limits<double>::infinity()),
            "inf");
  EXPECT_EQ(TextTable::fmt_int(42), "42");
}

TEST(TextTable, SeparatorRows) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  EXPECT_EQ(t.num_rows(), 3u);  // separator counts as a row entry
  EXPECT_NO_THROW(t.render());
}

TEST(Csv, QuoteRules) {
  EXPECT_EQ(CsvWriter::quote("plain"), "plain");
  EXPECT_EQ(CsvWriter::quote("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::quote("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Csv, WritesFile) {
  const std::string path = ::testing::TempDir() + "gc_csv_test.csv";
  {
    CsvWriter w(path, {"a", "b"});
    w.add_row({"1", "x,y"});
    EXPECT_EQ(w.rows_written(), 1u);
  }
  std::ifstream in(path);
  std::string line1, line2;
  std::getline(in, line1);
  std::getline(in, line2);
  EXPECT_EQ(line1, "a,b");
  EXPECT_EQ(line2, "1,\"x,y\"");
  std::remove(path.c_str());
}

TEST(Csv, WidthMismatchThrows) {
  const std::string path = ::testing::TempDir() + "gc_csv_test2.csv";
  CsvWriter w(path, {"a", "b"});
  EXPECT_THROW(w.add_row({"1"}), ContractViolation);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gcaching
