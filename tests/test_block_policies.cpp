// Unit tests for Block Caches (whole-block load/evict granularity).
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/block_fifo.hpp"
#include "policies/block_lru.hpp"
#include "policies/item_lru.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

TEST(BlockLru, LoadsWholeBlock) {
  auto map = make_uniform_blocks(16, 4);
  BlockLru blk;
  const SimStats s = simulate(*map, Trace({0}), blk, 8);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.items_loaded, 4u);
  EXPECT_EQ(s.sideloads, 3u);
}

TEST(BlockLru, SpatialHitsOnSiblings) {
  auto map = make_uniform_blocks(16, 4);
  BlockLru blk;
  const SimStats s = simulate(*map, Trace({0, 1, 2, 3}), blk, 8);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.spatial_hits, 3u);
}

TEST(BlockLru, EvictsWholeBlockLru) {
  auto map = make_uniform_blocks(16, 4);
  BlockLru blk;
  // Capacity 8 = 2 blocks. Load blocks 0, 1; touch block 0 (refresh);
  // block 2 must evict block 1 (the LRU block); block 0 keeps hitting and
  // item 4 (block 1) misses again.
  const SimStats s = simulate(*map, Trace({0, 4, 0, 8, 0, 4}), blk, 8);
  EXPECT_EQ(s.misses, 4u);  // 0, 4, 8 cold + 4 after block 1's eviction
  EXPECT_EQ(s.hits, 2u);    // both later accesses to 0
}

TEST(BlockLru, WholeBlockResidencyInvariant) {
  auto map = make_uniform_blocks(32, 4);
  const auto w = traces::zipf_items(32, 4, 2000, 0.8, 11);
  BlockLru blk;
  Simulation sim(*map, blk, 12);
  for (ItemId it : w.trace) {
    sim.access(it);
    // every touched block is fully resident or fully absent
    for (BlockId b = 0; b < map->num_blocks(); ++b) {
      const std::size_t r = sim.cache().residents_of_block(b);
      EXPECT_TRUE(r == 0 || r == map->block_size(b));
    }
  }
}

TEST(BlockLru, CapacityTooSmallThrows) {
  auto map = make_uniform_blocks(16, 8);
  BlockLru blk;
  EXPECT_THROW(Simulation(*map, blk, 4), ContractViolation);
}

TEST(BlockLru, RaggedLastBlockSupported) {
  auto map = make_uniform_blocks(10, 4);  // last block has 2 items
  BlockLru blk;
  const SimStats s = simulate(*map, Trace({8, 9, 0}), blk, 6);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(BlockLru, PollutionVisibleInWastedSideloads) {
  // One hot item per block, many blocks: most sideloads die untouched.
  const auto w = traces::hot_item_per_block(64, 8, 4000, 64, 0.0, 5);
  BlockLru blk;
  const SimStats s = simulate(w, blk, 64);
  EXPECT_GT(s.wasted_sideloads, s.misses);  // heavy pollution
}

TEST(BlockFifo, EvictsInLoadOrderIgnoringHits) {
  auto map = make_uniform_blocks(16, 4);
  BlockFifo fifo;
  // Blocks 0,1 loaded; touching block 0 does not refresh it; block 2
  // evicts block 0 under FIFO.
  const SimStats s = simulate(*map, Trace({0, 4, 0, 8, 0}), fifo, 8);
  EXPECT_EQ(s.misses, 4u);  // 0, 4, 8 cold + 0 again after eviction
}

TEST(BlockFifo, LruBeatsFifoOnHotBlockPlusScan) {
  auto map = make_uniform_blocks(64, 4);
  // Block 0 is hot (re-touched between scan steps): LRU keeps it resident
  // while FIFO eventually ages it out and re-faults it repeatedly.
  Trace t;
  for (ItemId blk = 1; blk < 14; ++blk) {
    t.push(0);        // hot block
    t.push(blk * 4);  // scan block
  }
  BlockLru lru;
  BlockFifo fifo;
  const auto s_lru = simulate(*map, t, lru, 8);
  const auto s_fifo = simulate(*map, t, fifo, 8);
  EXPECT_LT(s_lru.misses, s_fifo.misses);
}

TEST(BlockCaches, EquivalentToItemCachesWhenB1) {
  auto map = make_singleton_blocks(32);
  const auto w = traces::zipf_items(32, 1, 3000, 0.9, 13);
  BlockLru blru;
  const SimStats sb = simulate(*map, w.trace, blru, 8);
  // With B = 1 a Block Cache is an Item Cache; misses must match item LRU.
  ItemLru ilru;  // fresh policy for a fresh run
  auto map2 = make_singleton_blocks(32);
  const SimStats si = simulate(*map2, w.trace, ilru, 8);
  EXPECT_EQ(sb.misses, si.misses);
}

}  // namespace
}  // namespace gcaching
