// Unit tests for the synthetic workload generators.
#include <gtest/gtest.h>

#include <unordered_set>

#include "traces/synthetic.hpp"
#include "util/contracts.hpp"

namespace gcaching::traces {
namespace {

TEST(ZipfItems, LengthAndRange) {
  const auto w = zipf_items(100, 10, 5000, 0.9, 1);
  w.validate();
  EXPECT_EQ(w.trace.size(), 5000u);
  EXPECT_EQ(w.map->num_items(), 100u);
  EXPECT_EQ(w.map->max_block_size(), 10u);
}

TEST(ZipfItems, DeterministicGivenSeed) {
  const auto a = zipf_items(64, 8, 1000, 0.8, 7);
  const auto b = zipf_items(64, 8, 1000, 0.8, 7);
  for (std::size_t p = 0; p < 1000; ++p) EXPECT_EQ(a.trace[p], b.trace[p]);
}

TEST(ZipfItems, SeedChangesTrace) {
  const auto a = zipf_items(64, 8, 1000, 0.8, 1);
  const auto b = zipf_items(64, 8, 1000, 0.8, 2);
  std::size_t same = 0;
  for (std::size_t p = 0; p < 1000; ++p) same += (a.trace[p] == b.trace[p]);
  EXPECT_LT(same, 500u);
}

TEST(ZipfItems, SkewConcentratesOnHotItems) {
  const auto w = zipf_items(1000, 10, 20000, 1.2, 3);
  std::size_t top = 0;
  for (ItemId it : w.trace) top += (it < 10);
  EXPECT_GT(top, w.trace.size() / 3);
}

TEST(ZipfBlocks, SpanControlsRunLengths) {
  const auto w = zipf_blocks(32, 8, 4000, 0.8, 4, 5);
  w.validate();
  // Consecutive accesses within a span stay in one block and are
  // consecutive item ids.
  std::size_t in_block_steps = 0, total_steps = 0;
  for (std::size_t p = 1; p < w.trace.size(); ++p) {
    ++total_steps;
    if (w.map->block_of(w.trace[p]) == w.map->block_of(w.trace[p - 1]))
      ++in_block_steps;
  }
  // span=4: ~3 of every 4 steps stay within a block.
  EXPECT_GT(in_block_steps * 2, total_steps);
}

TEST(ZipfBlocks, SpanOneGivesSingleItemVisits) {
  const auto w = zipf_blocks(32, 8, 2000, 0.0, 1, 6);
  w.validate();
  EXPECT_EQ(w.trace.size(), 2000u);
}

TEST(ZipfBlocks, InvalidSpanThrows) {
  EXPECT_THROW(zipf_blocks(8, 4, 100, 0.5, 0, 1), ContractViolation);
  EXPECT_THROW(zipf_blocks(8, 4, 100, 0.5, 5, 1), ContractViolation);
}

TEST(SequentialScan, WrapsAround) {
  const auto w = sequential_scan(10, 5, 25);
  EXPECT_EQ(w.trace[0], 0u);
  EXPECT_EQ(w.trace[9], 9u);
  EXPECT_EQ(w.trace[10], 0u);
  EXPECT_EQ(w.trace[24], 4u);
}

TEST(StridedScan, TouchesOneItemPerBlockWhenStrideIsB) {
  const auto w = strided_scan(64, 8, 8, 8);
  for (std::size_t p = 1; p < w.trace.size(); ++p)
    EXPECT_NE(w.map->block_of(w.trace[p]), w.map->block_of(w.trace[p - 1]));
}

TEST(WorkingSetPhases, RespectsWorkingSetSize) {
  const auto w = working_set_phases(1000, 10, 5000, 20, 500, 9);
  w.validate();
  // Every 500-access phase touches at most 20 distinct items.
  for (std::size_t phase = 0; phase * 500 < w.trace.size(); ++phase) {
    std::unordered_set<ItemId> seen;
    const std::size_t start = phase * 500;
    const std::size_t end = std::min(w.trace.size(), start + 500);
    for (std::size_t p = start; p < end; ++p) seen.insert(w.trace[p]);
    EXPECT_LE(seen.size(), 20u);
  }
}

TEST(HotItemPerBlock, ZeroColdFractionTouchesOnlyHotItems) {
  const auto w = hot_item_per_block(16, 8, 2000, 16, 0.0, 11);
  for (ItemId it : w.trace) EXPECT_EQ(it % 8, 0u);
}

TEST(HotItemPerBlock, ColdFractionTouchesSiblings) {
  const auto w = hot_item_per_block(16, 8, 4000, 16, 0.5, 11);
  std::size_t cold = 0;
  for (ItemId it : w.trace) cold += (it % 8 != 0);
  EXPECT_NEAR(static_cast<double>(cold) / 4000.0, 0.5, 0.05);
}

TEST(ScanWithHotset, MixtureContainsBothPatterns) {
  const auto w = scan_with_hotset(64, 8, 10000, 0.5, 1.0, 4, 13);
  w.validate();
  EXPECT_EQ(w.trace.size(), 10000u);
  // The scan component covers cold blocks the hotset would rarely touch.
  std::unordered_set<BlockId> blocks;
  for (ItemId it : w.trace) blocks.insert(w.map->block_of(it));
  EXPECT_GT(blocks.size(), 32u);
}

TEST(PointerChase, WalkFollowsFixedSuccessors) {
  // Zero restart probability: the walk is fully determined by the graph,
  // so re-generating yields the identical trace.
  const auto a = pointer_chase(32, 8, 3000, 0.5, 0.0, 9);
  const auto b = pointer_chase(32, 8, 3000, 0.5, 0.0, 9);
  for (std::size_t p = 0; p < a.trace.size(); ++p)
    EXPECT_EQ(a.trace[p], b.trace[p]);
}

TEST(PointerChase, IntraBlockKnobControlsSpatialLocality) {
  const auto local = pointer_chase(64, 8, 8000, 0.95, 0.01, 4);
  const auto scattered = pointer_chase(64, 8, 8000, 0.0, 0.01, 4);
  auto same_block_rate = [](const Workload& w) {
    std::size_t same = 0;
    for (std::size_t p = 1; p < w.trace.size(); ++p)
      same += (w.map->block_of(w.trace[p]) ==
               w.map->block_of(w.trace[p - 1]));
    return static_cast<double>(same) /
           static_cast<double>(w.trace.size() - 1);
  };
  EXPECT_GT(same_block_rate(local), 0.7);
  EXPECT_LT(same_block_rate(scattered), 0.2);
}

TEST(PointerChase, ValidWorkload) {
  const auto w = pointer_chase(16, 4, 2000, 0.5, 0.05, 2);
  EXPECT_NO_THROW(w.validate());
  EXPECT_EQ(w.trace.size(), 2000u);
}

TEST(PointerChase, RejectsBadProbabilities) {
  EXPECT_THROW(pointer_chase(8, 4, 100, 1.5, 0.0, 1), ContractViolation);
  EXPECT_THROW(pointer_chase(8, 4, 100, 0.5, -0.1, 1), ContractViolation);
}

TEST(Generators, NamesDescribeParameters) {
  EXPECT_NE(zipf_items(8, 2, 10, 0.5, 1).name.find("zipf-items"),
            std::string::npos);
  EXPECT_NE(sequential_scan(8, 2, 10).name.find("seq-scan"),
            std::string::npos);
  EXPECT_NE(hot_item_per_block(4, 2, 10, 4, 0.1, 1).name.find("hot-item"),
            std::string::npos);
}

}  // namespace
}  // namespace gcaching::traces
