// Tests for seed replication and the GCM partial-sideload variant.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "policies/gcm.hpp"
#include "sim/replicate.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

TEST(Replicate, CollectsOneSamplePerSeed) {
  const auto rep = sim::replicate(
      [](std::uint64_t seed) {
        return traces::zipf_blocks(32, 8, 4000, 0.9, 4, seed);
      },
      "iblp", 64, sim::miss_rate_metric, 6, 100);
  EXPECT_EQ(rep.samples.size(), 6u);
  for (double v : rep.samples) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Replicate, DeterministicAcrossThreadCounts) {
  auto gen = [](std::uint64_t seed) {
    return traces::scan_with_hotset(64, 8, 6000, 0.3, 0.9, 4, seed);
  };
  const auto serial =
      sim::replicate(gen, "gcm", 64, sim::miss_rate_metric, 5, 7, 1);
  const auto parallel =
      sim::replicate(gen, "gcm", 64, sim::miss_rate_metric, 5, 7, 8);
  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (std::size_t j = 0; j < serial.samples.size(); ++j)
    EXPECT_DOUBLE_EQ(serial.samples[j], parallel.samples[j]);
}

TEST(Replicate, StatsArithmetic) {
  sim::Replication rep;
  rep.samples = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(rep.mean(), 2.5);
  EXPECT_NEAR(rep.stddev(), 1.2909944, 1e-6);
  EXPECT_DOUBLE_EQ(rep.min(), 1.0);
  EXPECT_DOUBLE_EQ(rep.max(), 4.0);
}

TEST(Replicate, SingleSampleStddevZero) {
  sim::Replication rep;
  rep.samples = {0.5};
  EXPECT_DOUBLE_EQ(rep.stddev(), 0.0);
}

TEST(Replicate, RejectsZeroReplicas) {
  EXPECT_THROW(sim::replicate([](std::uint64_t) { return Workload{}; },
                              "item-lru", 4, sim::miss_rate_metric, 0),
               ContractViolation);
}

// ---------------------------------------------------------------------------
// GCM partial sideload
// ---------------------------------------------------------------------------

TEST(GcmSideload, CapLimitsLoadsPerMiss) {
  auto map = make_uniform_blocks(16, 8);
  Gcm capped(1, /*max_sideload=*/3);
  Simulation sim(*map, capped, 16);
  sim.access(0);
  EXPECT_EQ(sim.cache().occupancy(), 4u);  // requested + 3 sideloads
  EXPECT_EQ(sim.stats().sideloads, 3u);
}

TEST(GcmSideload, ZeroMeansWholeBlock) {
  auto map = make_uniform_blocks(16, 8);
  Gcm full(1, 0);
  Simulation sim(*map, full, 16);
  sim.access(0);
  EXPECT_EQ(sim.cache().occupancy(), 8u);
}

TEST(GcmSideload, NameReflectsCap) {
  EXPECT_EQ(Gcm(1).name(), "gcm");
  EXPECT_EQ(Gcm(1, 4).name(), "gcm(sideload=4)");
  auto via_factory = make_policy("gcm:sideload=4", 32);
  EXPECT_EQ(via_factory->name(), "gcm(sideload=4)");
}

TEST(GcmSideload, InterpolatesBetweenMarkingExtremes) {
  const auto w = traces::zipf_blocks(128, 16, 40000, 0.9, 12, 13);
  auto none = make_policy("marking-item:seed=3", 128);
  auto some = make_policy("gcm:seed=3,sideload=6", 128);
  auto all = make_policy("gcm:seed=3", 128);
  const auto m_none = simulate(w, *none, 128).misses;
  const auto m_some = simulate(w, *some, 128).misses;
  const auto m_all = simulate(w, *all, 128).misses;
  EXPECT_LT(m_some, m_none);
  EXPECT_LT(m_all, m_some);
}

}  // namespace
}  // namespace gcaching
