// Unit tests for the exact offline GC-caching solver.
#include <gtest/gtest.h>

#include <bit>

#include "core/simulator.hpp"
#include "offline/exact_opt.hpp"
#include "offline/opt_bounds.hpp"
#include "policies/factory.hpp"
#include "util/rng.hpp"

namespace gcaching {
namespace {

TEST(ExactOpt, EmptyTraceCostsNothing) {
  auto map = make_uniform_blocks(4, 2);
  EXPECT_EQ(exact_offline_opt(*map, Trace{}, 2).cost, 0u);
}

TEST(ExactOpt, SingleAccessCostsOne) {
  auto map = make_uniform_blocks(4, 2);
  EXPECT_EQ(exact_offline_opt(*map, Trace({0}), 2).cost, 1u);
}

TEST(ExactOpt, RepeatAccessFree) {
  auto map = make_uniform_blocks(4, 2);
  EXPECT_EQ(exact_offline_opt(*map, Trace({0, 0, 0}), 2).cost, 1u);
}

TEST(ExactOpt, SpatialLocalityExploited) {
  auto map = make_uniform_blocks(4, 4);
  // One block: an omniscient cache loads everything on the first miss.
  EXPECT_EQ(exact_offline_opt(*map, Trace({0, 1, 2, 3}), 4).cost, 1u);
}

TEST(ExactOpt, SelectiveLoadingUnderTightCapacity) {
  auto map = make_uniform_blocks(4, 4);
  // Capacity 2, block of 4: accesses 0,1,2 need at least two loads (can
  // take {0,1} together, then 2).
  EXPECT_EQ(exact_offline_opt(*map, Trace({0, 1, 2}), 2).cost, 2u);
}

TEST(ExactOpt, TraditionalCachingWhenSingletonBlocks) {
  auto map = make_singleton_blocks(5);
  const Trace t({0, 1, 2, 3, 0, 1, 4, 0, 1, 2, 3, 4});
  EXPECT_EQ(exact_offline_opt(*map, t, 3).cost, 7u);  // textbook value
}

TEST(ExactOpt, SmarterThanWholeBlockLoading) {
  auto map = make_uniform_blocks(8, 4);
  // Alternate items of two blocks; capacity 2 cannot hold whole blocks,
  // so OPT must load selectively: {0, 4} stay, cost 2.
  const Trace t({0, 4, 0, 4, 0, 4});
  EXPECT_EQ(exact_offline_opt(*map, t, 2).cost, 2u);
}

TEST(ExactOpt, ScheduleReplaysToSameCost) {
  auto map = make_uniform_blocks(8, 4);
  SplitMix64 rng(31);
  Trace t;
  for (int p = 0; p < 18; ++p) t.push(static_cast<ItemId>(rng.below(8)));
  ExactOptOptions opts;
  opts.want_schedule = true;
  const auto res = exact_offline_opt(*map, t, 4, opts);
  // Replay the schedule against the model rules and verify cost and
  // legality (loads within the missed block, capacity respected).
  std::uint64_t mask = 0;
  std::uint64_t cost = 0;
  std::size_t step_idx = 0;
  for (std::size_t pos = 0; pos < t.size(); ++pos) {
    ASSERT_LT(step_idx, res.schedule.size());
    const OptStep& st = res.schedule[step_idx++];
    ASSERT_EQ(st.position, pos);
    const std::uint64_t xbit = std::uint64_t{1} << t[pos];
    if (!st.miss) {
      ASSERT_TRUE(mask & xbit) << "hit step but item absent";
      continue;
    }
    ++cost;
    ASSERT_FALSE(mask & xbit);
    // Loads within the requested block only.
    const BlockId blk = map->block_of(t[pos]);
    std::uint64_t blk_mask = 0;
    for (ItemId it : map->items_of(blk)) blk_mask |= std::uint64_t{1} << it;
    ASSERT_EQ(st.loaded & ~blk_mask, 0u);
    ASSERT_TRUE(st.loaded & xbit);
    ASSERT_EQ(st.evicted & ~mask, 0u);
    mask = (mask & ~st.evicted) | st.loaded;
    ASSERT_LE(std::popcount(mask), 4);
  }
  EXPECT_EQ(cost, res.cost);
}

TEST(ExactOpt, LowerBoundsEveryPolicy) {
  SplitMix64 rng(63);
  const std::vector<std::string> specs = {
      "item-lru", "item-fifo",  "block-lru",      "iblp:i=3,b=3",
      "gcm",      "athreshold:a=2", "belady-greedy-gc"};
  for (int round = 0; round < 6; ++round) {
    auto map = make_uniform_blocks(9, 3);
    Trace t;
    for (int p = 0; p < 22; ++p) t.push(static_cast<ItemId>(rng.below(9)));
    const std::size_t k = 6;
    const auto opt = exact_offline_opt(*map, t, k);
    for (const auto& spec : specs) {
      auto policy = make_policy(spec, k);
      const SimStats s = simulate(*map, t, *policy, k);
      EXPECT_GE(s.misses, opt.cost)
          << spec << " beat OPT on round " << round;
    }
  }
}

TEST(ExactOpt, UniverseTooLargeRejected) {
  auto map = make_uniform_blocks(65, 5);
  EXPECT_THROW(exact_offline_opt(*map, Trace({0}), 4), ContractViolation);
}

TEST(ExactOpt, StateBudgetEnforced) {
  auto map = make_uniform_blocks(24, 4);
  SplitMix64 rng(1);
  Trace t;
  for (int p = 0; p < 64; ++p) t.push(static_cast<ItemId>(rng.below(24)));
  ExactOptOptions opts;
  opts.max_states = 10;
  EXPECT_THROW(exact_offline_opt(*map, t, 8, opts), ContractViolation);
}

TEST(OptBounds, DistinctBlocksBound) {
  auto map = make_uniform_blocks(16, 4);
  const Trace t({0, 1, 5, 9, 10});
  EXPECT_EQ(opt_lower_bound_distinct_blocks(*map, t), 3u);
}

TEST(OptBounds, NeverExceedsExactOpt) {
  SplitMix64 rng(17);
  for (int round = 0; round < 8; ++round) {
    auto map = make_uniform_blocks(10, 2);
    Trace t;
    for (int p = 0; p < 20; ++p) t.push(static_cast<ItemId>(rng.below(10)));
    const std::size_t k = 3 + rng.below(3);
    const auto exact = exact_offline_opt(*map, t, k);
    EXPECT_LE(opt_lower_bound(*map, t, k), exact.cost) << "round " << round;
  }
}

TEST(OptBounds, WindowBoundKicksInUnderPressure) {
  auto map = make_singleton_blocks(32);
  Trace t;
  for (int rep = 0; rep < 4; ++rep)
    for (ItemId it = 0; it < 32; ++it) t.push(it);
  // Capacity 4, windows see 32 distinct items each: strictly more misses
  // than the 32 distinct "blocks".
  EXPECT_GT(opt_lower_bound_windows(*map, t, 4, 32), 0u);
}

}  // namespace
}  // namespace gcaching
