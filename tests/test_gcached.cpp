// Tests for the gcached concurrent sharded runtime (src/gcached/).
//
// The anchor is the differential test: with one shard and one client thread
// the runtime's per-access transition is literally simulate_fast's
// (detail::fast_step under a never-contended lock, strided partition
// degenerate to the original order), so SimStats must be bit-identical for
// every supported policy. Everything else layers on that anchor: the shard
// hash is pinned by golden values (a silent change would reshuffle every
// multi-shard result), the partitioning invariant "all items of a block map
// to one shard" is checked across BlockMap kinds and shard counts, and the
// multi-threaded runs assert the schedule-independent conservation laws.
// The concurrent tests get their teeth from the tsan preset (ctest label
// `gcached` runs there at 1/2/hw threads).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gcached/gcached.hpp"
#include "gcached/loadgen.hpp"
#include "gcached/sharded_cache.hpp"
#include "policies/factory.hpp"
#include "traces/synthetic.hpp"
#include "util/contracts.hpp"

namespace gcaching::gcached {
namespace {

std::size_t hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

Workload small_zipf() {
  Workload w = traces::zipf_items(2048, 16, 60'000, 0.9, 7);
  w.trace.precompute_block_ids(*w.map);
  return w;
}

LoadResult replay(ConcurrentCache& cache, const Workload& w,
                  std::size_t threads, std::uint64_t ops = 0) {
  LoadSpec spec;
  spec.threads = threads;
  spec.total_ops = ops;
  return run_load(cache, w.trace, w.trace.block_ids(), spec);
}

// ---- Shard partitioning invariants ------------------------------------------

const std::vector<std::size_t> kShardCounts = {1, 2, 3, 7, 8, 16, 64};

TEST(GcachedSharding, AllItemsOfABlockShareAShardUniformMap) {
  // Uniform pow2 block size, with a ragged tail block (1000 % 16 != 0).
  const auto map = make_uniform_blocks(1000, 16);
  for (const std::size_t shards : kShardCounts) {
    for (ItemId item = 0; item < map->num_items(); ++item) {
      ASSERT_EQ(shard_of_item(*map, item, shards),
                shard_of_block(map->block_of(item), shards))
          << "item " << item << " at " << shards << " shards";
    }
  }
}

TEST(GcachedSharding, AllItemsOfABlockShareAShardExplicitMap) {
  // Explicit partition with wildly uneven blocks.
  const ExplicitBlockMap map({{0, 5, 9},
                              {1},
                              {2, 3, 4, 6, 7, 8, 10, 11, 12, 13},
                              {14, 15},
                              {16, 17, 18, 19, 20}});
  for (const std::size_t shards : kShardCounts) {
    for (BlockId block = 0; block < map.num_blocks(); ++block) {
      const std::size_t expected = shard_of_block(block, shards);
      for (const ItemId item : map.items_of(block))
        ASSERT_EQ(shard_of_item(map, item, shards), expected)
            << "block " << block << " at " << shards << " shards";
    }
  }
}

TEST(GcachedSharding, GoldenShardAssignments) {
  // shard_of_block for blocks 0..11, pinned so the hash (seed, mix, Lemire
  // reduction) can never change silently — every committed multi-shard
  // benchmark and test depends on this assignment.
  struct Golden {
    std::size_t shards;
    std::vector<std::size_t> shard_of_first_blocks;
  };
  const std::vector<Golden> golden = {
      {1, {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
      {2, {0, 1, 0, 0, 1, 1, 0, 0, 1, 0, 0, 0}},
      {3, {0, 2, 0, 0, 2, 2, 0, 0, 2, 1, 0, 0}},
      {7, {1, 5, 0, 2, 6, 5, 0, 2, 6, 3, 0, 0}},
      {8, {1, 6, 0, 2, 6, 6, 0, 2, 7, 3, 0, 0}},
      {16, {2, 13, 1, 4, 13, 12, 0, 4, 15, 6, 0, 1}},
      {64, {10, 52, 6, 19, 55, 48, 2, 19, 60, 27, 0, 4}},
  };
  for (const Golden& g : golden) {
    for (BlockId b = 0; b < g.shard_of_first_blocks.size(); ++b)
      EXPECT_EQ(shard_of_block(b, g.shards), g.shard_of_first_blocks[b])
          << "block " << b << " at " << g.shards << " shards";
  }
}

TEST(GcachedSharding, AssignmentIsRoughlyBalanced) {
  // SplitMix64 finalizer + Lemire reduction over 4096 consecutive block ids:
  // each of 8 shards should land near 512 blocks. Wide tolerance — this
  // guards against a catastrophic hash regression (all-to-one), not drift.
  std::vector<std::size_t> counts(8, 0);
  for (BlockId b = 0; b < 4096; ++b) ++counts[shard_of_block(b, 8)];
  for (std::size_t s = 0; s < counts.size(); ++s)
    EXPECT_NEAR(static_cast<double>(counts[s]), 512.0, 160.0)
        << "shard " << s;
}

TEST(GcachedSharding, CapacityShareSumsExactly) {
  EXPECT_EQ(shard_capacity_share(10, 4, 0), 3u);
  EXPECT_EQ(shard_capacity_share(10, 4, 1), 3u);
  EXPECT_EQ(shard_capacity_share(10, 4, 2), 2u);
  EXPECT_EQ(shard_capacity_share(10, 4, 3), 2u);
  for (const std::size_t capacity : {7u, 64u, 1000u, 4097u}) {
    for (const std::size_t shards : kShardCounts) {
      if (shards > capacity) continue;
      std::size_t sum = 0;
      for (std::size_t s = 0; s < shards; ++s)
        sum += shard_capacity_share(capacity, shards, s);
      EXPECT_EQ(sum, capacity) << capacity << " over " << shards;
    }
  }
}

// ---- Differential anchor ----------------------------------------------------

TEST(GcachedDifferential, OneShardOneThreadMatchesSimulateFastExactly) {
  const Workload w = small_zipf();
  for (const std::string& spec : supported_concurrent_specs()) {
    for (const std::size_t capacity : {std::size_t{64}, std::size_t{512}}) {
      SCOPED_TRACE(spec + " @ " + std::to_string(capacity));
      GcachedConfig cfg;
      cfg.num_shards = 1;
      cfg.capacity = capacity;
      const auto cache = make_concurrent_cache(spec, w.map, cfg);
      const LoadResult res = replay(*cache, w, 1);
      const SimStats expected = simulate_fast_spec(spec, w, capacity);
      EXPECT_EQ(res.stats, expected);
      EXPECT_EQ(res.lock_contended, 0u);
      EXPECT_EQ(res.backoff_rounds, 0u);
    }
  }
}

// ---- Factory / escape hatch -------------------------------------------------

TEST(GcachedFactory, SupportedSpecsConstructAndReport) {
  const Workload w = small_zipf();
  const auto specs = supported_concurrent_specs();
  EXPECT_NE(std::find(specs.begin(), specs.end(), "item-lru"), specs.end());
  EXPECT_NE(std::find(specs.begin(), specs.end(), "block-lru"), specs.end());
  // item-clock and item-slru are shard-local (requested-loads-only, state a
  // function of own-shard residency) and must stay in the envelope — which
  // also keeps them enumerated by the differential anchor above.
  EXPECT_NE(std::find(specs.begin(), specs.end(), "item-clock"), specs.end());
  EXPECT_NE(std::find(specs.begin(), specs.end(), "item-slru"), specs.end());
  for (const std::string& spec : specs) {
    GcachedConfig cfg;
    cfg.num_shards = 4;
    cfg.capacity = 256;
    const auto cache = make_concurrent_cache(spec, w.map, cfg);
    EXPECT_EQ(cache->policy_name(), spec);
    EXPECT_EQ(cache->num_shards(), 4u);
    EXPECT_EQ(cache->capacity(), 256u);
    std::size_t sum = 0;
    for (std::size_t s = 0; s < cache->num_shards(); ++s)
      sum += cache->shard_capacity(s);
    EXPECT_EQ(sum, 256u);
  }
}

TEST(GcachedFactory, UnshardablePoliciesAreRejectedWithTheEscapeHatch) {
  const Workload w = small_zipf();
  GcachedConfig cfg;
  cfg.num_shards = 2;
  cfg.capacity = 256;
  // Offline, capacity-coupled, and globally-stateful policies cannot shard;
  // the factory must refuse with the documented message, not mis-simulate.
  for (const std::string spec : {"belady-item", "iblp", "item-arc"}) {
    SCOPED_TRACE(spec);
    EXPECT_THROW(make_concurrent_cache(spec, w.map, cfg), ContractViolation);
  }
}

TEST(GcachedFactory, UnshardableRejectionNamesThePolicyInTheMessage) {
  // `gcsim gcached --policy belady-item` surfaces exactly this message, so
  // the user sees WHICH spec was refused and why, not a bare failure.
  const Workload w = small_zipf();
  GcachedConfig cfg;
  cfg.num_shards = 2;
  cfg.capacity = 256;
  try {
    make_concurrent_cache("belady-item", w.map, cfg);
    FAIL() << "belady-item must not construct under gcached";
  } catch (const ContractViolation& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("belady-item"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cannot run under gcached"), std::string::npos) << msg;
    EXPECT_NE(msg.find("supported_concurrent_specs"), std::string::npos)
        << msg;
  }
}

// ---- CLI argument validation (gcsim gcached) --------------------------------

TEST(GcachedCli, ValidRequestsPassValidation) {
  EXPECT_EQ(validate_gcached_request(1, 1), "");
  EXPECT_EQ(validate_gcached_request(64, 128), "");
}

TEST(GcachedCli, NonPositiveShardsAreRejectedNamingTheFlag) {
  for (const long long bad : {0LL, -1LL, -64LL}) {
    SCOPED_TRACE(bad);
    const std::string msg = validate_gcached_request(bad, 1);
    EXPECT_NE(msg.find("--shards"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(bad)), std::string::npos) << msg;
  }
}

TEST(GcachedCli, NonPositiveThreadsAreRejectedNamingTheFlag) {
  for (const long long bad : {0LL, -1LL, -8LL}) {
    SCOPED_TRACE(bad);
    const std::string msg = validate_gcached_request(1, bad);
    EXPECT_NE(msg.find("--threads"), std::string::npos) << msg;
    EXPECT_NE(msg.find(std::to_string(bad)), std::string::npos) << msg;
  }
}

TEST(GcachedCli, ShardsAreValidatedBeforeThreads) {
  // Both invalid: the diagnostic names --shards (deterministic order, so
  // scripts can rely on the first error reported).
  const std::string msg = validate_gcached_request(0, 0);
  EXPECT_NE(msg.find("--shards"), std::string::npos) << msg;
  EXPECT_EQ(msg.find("--threads"), std::string::npos) << msg;
}

// ---- Concurrent runs (tsan teeth) -------------------------------------------

TEST(GcachedConcurrent, ConservationHoldsOnEverySchedule) {
  const Workload w = small_zipf();
  for (const std::size_t threads :
       {std::size_t{1}, std::size_t{2}, hardware_threads()}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      SCOPED_TRACE(std::to_string(threads) + " threads, " +
                   std::to_string(shards) + " shards");
      GcachedConfig cfg;
      cfg.num_shards = shards;
      cfg.capacity = 512;
      const auto cache = make_concurrent_cache("item-lru", w.map, cfg);
      const LoadResult res = replay(*cache, w, threads, 30'000);
      // The interleaving is schedule-dependent; these identities are not.
      EXPECT_EQ(res.ops, 30'000u);
      EXPECT_EQ(res.stats.accesses, res.ops);
      EXPECT_EQ(res.stats.hits + res.stats.misses + res.stats.delayed_hits,
                res.stats.accesses);
      EXPECT_EQ(res.stats.delayed_hits, 0u);  // zero fill: nothing in flight
      EXPECT_EQ(res.stats.temporal_hits + res.stats.spatial_hits,
                res.stats.hits);
      EXPECT_EQ(res.lock_acquisitions, res.ops);
      EXPECT_EQ(res.offered_ops_per_sec, 0.0);  // closed loop reports none
      std::size_t occupancy = 0;
      for (std::size_t s = 0; s < cache->num_shards(); ++s) {
        EXPECT_LE(cache->shard_occupancy(s), cache->shard_capacity(s));
        occupancy += cache->shard_occupancy(s);
      }
      EXPECT_LE(occupancy, cfg.capacity);
    }
  }
}

TEST(GcachedConcurrent, ContainsProbesRunAgainstWriters) {
  // Shared-mode probes racing exclusive-mode access transitions: correctness
  // is "no crash / no race" (TSan) plus the probe only ever seeing items of
  // the block's own shard.
  const Workload w = small_zipf();
  GcachedConfig cfg;
  cfg.num_shards = 4;
  cfg.capacity = 512;
  const auto cache = make_concurrent_cache("item-lru", w.map, cfg);
  std::thread prober([&] {
    ClientContext ctx(99);
    for (int round = 0; round < 200; ++round)
      for (ItemId item = 0; item < 64; ++item)
        cache->contains(ctx, item, w.map->block_of(item));
  });
  const LoadResult res = replay(*cache, w, 2, 20'000);
  prober.join();
  EXPECT_EQ(res.stats.accesses, 20'000u);
}

TEST(GcachedConcurrent, ContentionCountersFireWhenFillsHoldTheShard) {
  // One shard, two closed-loop clients, a 100us SYNC fill on every miss: the
  // non-filling client must observe at least one failed try_lock, and every
  // contended acquisition spends at least one backoff round. Sync mode is
  // pinned explicitly — it is the mode whose fills hold the shard; async
  // fills release it, which is what GcachedMshr tests instead.
  const Workload w = small_zipf();
  GcachedConfig cfg;
  cfg.num_shards = 1;
  cfg.capacity = 128;
  cfg.fill_latency_ns = 100'000;
  cfg.fill_mode = FillMode::kSync;
  const auto cache = make_concurrent_cache("item-lru", w.map, cfg);
  const LoadResult res = replay(*cache, w, 2, 2'000);
  EXPECT_GT(res.stats.misses, 0u);
  EXPECT_GT(res.lock_contended, 0u);
  EXPECT_GE(res.backoff_rounds, res.lock_contended);
}

TEST(GcachedConcurrent, PercentilesAreOrdered) {
  const Workload w = small_zipf();
  GcachedConfig cfg;
  cfg.num_shards = 2;
  cfg.capacity = 256;
  const auto cache = make_concurrent_cache("block-fifo", w.map, cfg);
  const LoadResult res = replay(*cache, w, 2, 10'000);
  EXPECT_GT(res.ops_per_sec, 0.0);
  EXPECT_LE(res.p50_us, res.p99_us);
  EXPECT_LE(res.p99_us, res.p999_us);
  EXPECT_LE(res.p999_us, res.max_us);
}

// ---- MSHR semantics (async fills) -------------------------------------------

TEST(GcachedMshr, CoalescingOneFillManyDelayedHits) {
  // K threads missing on one block must produce exactly 1 fill and K-1
  // delayed hits. The 300ms fill dwarfs every scheduling latency in the
  // setup: the filler registers its MSHR entry within the first 50ms (it
  // only needs one uncontended lock acquisition), so all three waiters
  // provably arrive mid-fill and coalesce.
  const Workload w = small_zipf();
  GcachedConfig cfg;
  cfg.num_shards = 1;
  cfg.capacity = 64;
  cfg.fill_latency_ns = 300'000'000;
  cfg.fill_mode = FillMode::kAsync;
  const auto cache = make_concurrent_cache("item-lru", w.map, cfg);
  const BlockId block = w.map->block_of(0);
  std::thread filler([&] {
    ClientContext ctx(1);
    cache->access(ctx, 0, block);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::vector<std::thread> waiters;
  for (int t = 0; t < 3; ++t)
    waiters.emplace_back([&cache, &block, t] {
      ClientContext ctx(static_cast<std::uint64_t>(2 + t));
      cache->access(ctx, 0, block);
    });
  filler.join();
  for (std::thread& th : waiters) th.join();
  const SimStats stats = cache->collect_stats();
  EXPECT_EQ(stats.accesses, 4u);
  EXPECT_EQ(stats.misses, 1u);        // one fill — never a second
  EXPECT_EQ(stats.delayed_hits, 3u);  // every waiter coalesced
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.free_delayed_hits, 0u);  // item-lru never sideloads
  EXPECT_GT(stats.delayed_hit_wait_ns, 0u);
  EXPECT_EQ(stats.hits + stats.misses + stats.delayed_hits, stats.accesses);
}

TEST(GcachedMshr, SideloadedWaiterIsAFreeDelayedHit) {
  // A waiter whose item the pending fill SIDELOADS (block-lru loads whole
  // blocks; item 1 shares item 0's block) is classified a free delayed hit:
  // the requester never asked for it, so spatial locality alone paid for
  // the wait — the paper's Definition-1 split applied to fill latency.
  const Workload w = small_zipf();
  GcachedConfig cfg;
  cfg.num_shards = 1;
  cfg.capacity = 64;
  cfg.fill_latency_ns = 300'000'000;
  cfg.fill_mode = FillMode::kAsync;
  const auto cache = make_concurrent_cache("block-lru", w.map, cfg);
  ASSERT_EQ(w.map->block_of(0), w.map->block_of(1));
  const BlockId block = w.map->block_of(0);
  std::thread filler([&] {
    ClientContext ctx(1);
    cache->access(ctx, 0, block);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  std::thread sibling([&] {
    ClientContext ctx(2);
    cache->access(ctx, 1, block);  // sideloaded by the in-flight fill
  });
  std::thread repeat([&] {
    ClientContext ctx(3);
    cache->access(ctx, 0, block);  // the fill's own requested item
  });
  filler.join();
  sibling.join();
  repeat.join();
  const SimStats stats = cache->collect_stats();
  EXPECT_EQ(stats.accesses, 3u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.delayed_hits, 2u);
  EXPECT_EQ(stats.free_delayed_hits, 1u);  // the sideloaded sibling only
  EXPECT_GT(stats.delayed_hit_wait_ns, 0u);
}

TEST(GcachedMshr, AsyncConservationHoldsOnEverySchedule) {
  // hits + misses + delayed_hits == accesses on EVERY schedule of the async
  // fill path — the delayed-hit extension of the closed-loop conservation
  // law. block-lru exercises the sideload (free-delayed-hit) commits too.
  const Workload w = small_zipf();
  for (const std::size_t threads : {std::size_t{2}, hardware_threads()}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      SCOPED_TRACE(std::to_string(threads) + " threads, " +
                   std::to_string(shards) + " shards");
      GcachedConfig cfg;
      cfg.num_shards = shards;
      cfg.capacity = 512;
      cfg.fill_latency_ns = 20'000;
      cfg.fill_mode = FillMode::kAsync;
      const auto cache = make_concurrent_cache("block-lru", w.map, cfg);
      const LoadResult res = replay(*cache, w, threads, 20'000);
      EXPECT_EQ(res.stats.accesses, res.ops);
      EXPECT_EQ(res.stats.hits + res.stats.misses + res.stats.delayed_hits,
                res.stats.accesses);
      EXPECT_EQ(res.stats.temporal_hits + res.stats.spatial_hits,
                res.stats.hits);
      EXPECT_LE(res.stats.free_delayed_hits, res.stats.delayed_hits);
      std::size_t occupancy = 0;
      for (std::size_t s = 0; s < cache->num_shards(); ++s) {
        EXPECT_LE(cache->shard_occupancy(s), cache->shard_capacity(s));
        occupancy += cache->shard_occupancy(s);
      }
      EXPECT_LE(occupancy, cfg.capacity);
    }
  }
}

TEST(GcachedMshr, SingleClientAsyncFillPreservesSequentialStats) {
  // One shard, one thread, ASYNC mode with a real (1us) fill: the client's
  // own fill registers, sleeps unlocked, and commits before access()
  // returns, with no concurrent observer — so the transition order is
  // simulate_fast's and the stats (delayed counters included: all zero)
  // stay bit-identical. The fill only shifts time, never statistics.
  const Workload w = small_zipf();
  for (const std::string spec : {"item-lru", "block-lru"}) {
    SCOPED_TRACE(spec);
    GcachedConfig cfg;
    cfg.num_shards = 1;
    cfg.capacity = 512;
    cfg.fill_latency_ns = 1'000;
    cfg.fill_mode = FillMode::kAsync;
    const auto cache = make_concurrent_cache(spec, w.map, cfg);
    const LoadResult res = replay(*cache, w, 1);
    const SimStats expected = simulate_fast_spec(spec, w, 512);
    EXPECT_EQ(res.stats, expected);
  }
}

// ---- Open-loop (Poisson) arrivals -------------------------------------------

TEST(GcachedLoadgen, PoissonArrivalsReportOfferedVsAchieved) {
  const Workload w = small_zipf();
  GcachedConfig cfg;
  cfg.num_shards = 1;
  cfg.capacity = 512;
  const auto cache = make_concurrent_cache("item-lru", w.map, cfg);
  LoadSpec spec;
  spec.threads = 2;
  spec.total_ops = 20'000;
  spec.arrival = Arrival::kPoisson;
  spec.rate_ops_per_sec = 2e6;
  const LoadResult res = run_load(*cache, w.trace, w.trace.block_ids(), spec);
  EXPECT_EQ(res.ops, 20'000u);
  EXPECT_DOUBLE_EQ(res.offered_ops_per_sec, 2e6);
  EXPECT_GT(res.ops_per_sec, 0.0);
  // Conservation is arrival-process-independent.
  EXPECT_EQ(res.stats.accesses, res.ops);
  EXPECT_EQ(res.stats.hits + res.stats.misses + res.stats.delayed_hits,
            res.stats.accesses);
  EXPECT_LE(res.p50_us, res.p99_us);
  EXPECT_LE(res.p99_us, res.p999_us);
  EXPECT_LE(res.p999_us, res.max_us);
}

TEST(GcachedLoadgen, PoissonArrivalsRequireAPositiveRate) {
  const Workload w = small_zipf();
  GcachedConfig cfg;
  cfg.num_shards = 1;
  cfg.capacity = 64;
  const auto cache = make_concurrent_cache("item-lru", w.map, cfg);
  LoadSpec spec;
  spec.threads = 1;
  spec.arrival = Arrival::kPoisson;  // rate left at 0.0
  EXPECT_THROW(run_load(*cache, w.trace, w.trace.block_ids(), spec),
               ContractViolation);
}

}  // namespace
}  // namespace gcaching::gcached
