// Unit tests for the footprint-predicting GC cache.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/block_lru.hpp"
#include "policies/footprint.hpp"
#include "policies/item_lru.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

TEST(Footprint, ColdBlockLoadsWholeBlockByDefault) {
  auto map = make_uniform_blocks(16, 4);
  FootprintCache fp;
  const SimStats s = simulate(*map, Trace({0}), fp, 8);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.items_loaded, 4u);
}

TEST(Footprint, ColdItemModeLoadsOnlyRequested) {
  auto map = make_uniform_blocks(16, 4);
  FootprintCache fp(/*cold_whole_block=*/false);
  const SimStats s = simulate(*map, Trace({0, 1}), fp, 8);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.sideloads, 0u);
}

TEST(Footprint, LearnsFootprintAcrossEpisodes) {
  auto map = make_uniform_blocks(64, 4);
  FootprintCache fp;
  Simulation sim(*map, fp, 4);
  // Episode 1: block 0 loaded whole (cold); only items 0 and 1 touched.
  sim.access(0);
  sim.access(1);
  // Force block 0 fully out (capacity 4, new block evicts everything).
  sim.access(4);
  sim.access(5);
  sim.access(6);
  sim.access(7);
  EXPECT_EQ(sim.cache().residents_of_block(0), 0u);
  // The recorded footprint is {positions 0, 1}.
  EXPECT_EQ(fp.recorded_footprint(0), 0b0011u);
  // Episode 2: miss on 0 loads only the footprint {0, 1}, not 2, 3.
  sim.access(0);
  EXPECT_TRUE(sim.cache().contains(1));
  EXPECT_FALSE(sim.cache().contains(2));
  EXPECT_FALSE(sim.cache().contains(3));
}

TEST(Footprint, FootprintUpdatesEachEpisode) {
  auto map = make_uniform_blocks(64, 4);
  FootprintCache fp;
  Simulation sim(*map, fp, 4);
  sim.access(0);                         // episode 1: touch 0 only
  for (ItemId it : {4u, 5u, 6u, 7u}) sim.access(it);  // flush block 0
  EXPECT_EQ(fp.recorded_footprint(0), 0b0001u);
  sim.access(0);                         // episode 2: loads {0}
  sim.access(2);                         // touch 2 as well (miss)
  for (ItemId it : {4u, 5u, 6u, 7u}) sim.access(it);  // flush again
  EXPECT_EQ(fp.recorded_footprint(0), 0b0101u);
}

TEST(Footprint, BeatsBlockLruOnSparseBlockUse) {
  // Hot-item workload: each block's footprint is one item. After warmup the
  // footprint cache behaves like an item cache (no pollution), while the
  // Block Cache keeps dragging whole blocks.
  const auto w = traces::hot_item_per_block(64, 8, 30000, 64, 0.0, 3);
  FootprintCache fp;
  BlockLru blru;
  const auto s_fp = simulate(w, fp, 128);
  const auto s_bl = simulate(w, blru, 128);
  EXPECT_LT(s_fp.misses * 2, s_bl.misses);
}

TEST(Footprint, MatchesBlockLoadingOnDenseUse) {
  // Sequential scan: the footprint converges to the full block, so the
  // policy captures the same spatial hits an a=1 loader would.
  const auto w = traces::sequential_scan(1024, 8, 8192);
  FootprintCache fp;
  ItemLru lru;
  const auto s_fp = simulate(w, fp, 64);
  const auto s_lru = simulate(w, lru, 64);
  EXPECT_LT(s_fp.misses * 4, s_lru.misses);
}

TEST(Footprint, WastedSideloadsLowOnHotItemWorkload) {
  const auto w = traces::hot_item_per_block(64, 8, 30000, 64, 0.0, 5);
  FootprintCache fp;
  BlockLru blru;
  const auto s_fp = simulate(w, fp, 128);
  const auto s_bl = simulate(w, blru, 128);
  EXPECT_LT(s_fp.wasted_sideloads, s_bl.wasted_sideloads / 2);
}

TEST(Footprint, RejectsOversizedBlocks) {
  auto map = make_uniform_blocks(130, 65);  // > 64 items per block
  FootprintCache fp;
  EXPECT_THROW(Simulation(*map, fp, 130), ContractViolation);
}

TEST(Footprint, NameReflectsColdPolicy) {
  EXPECT_EQ(FootprintCache(true).name(), "footprint(cold=block)");
  EXPECT_EQ(FootprintCache(false).name(), "footprint(cold=item)");
}

TEST(Footprint, SurvivesTightCapacity) {
  const auto w = traces::zipf_blocks(32, 8, 10000, 0.9, 5, 9);
  FootprintCache fp;
  EXPECT_NO_THROW(simulate(w, fp, 8));  // capacity == B
}

TEST(Footprint, ResidentCountersMatchCacheThroughout) {
  // The policy's per-block `residents_` counters shadow the ground-truth
  // CacheContents residency; audit them against visit_residents at every
  // step of a churny workload.
  const auto w = traces::zipf_blocks(32, 8, 2000, 0.9, 5, 11);
  FootprintCache fp;
  Simulation sim(*w.map, fp, 24);
  for (ItemId it : w.trace.accesses()) {
    sim.access(it);
    ASSERT_TRUE(fp.residents_consistent());
  }
}

}  // namespace
}  // namespace gcaching
