// Differential tests for the data-oriented policy rewrites.
//
// The PERF.md "policy rewrites" pass replaced the interior of the slowest
// policies (item-lfu's lazily-ordered bucket, the FlatBlockIndex-based
// footprint/athreshold/gcm/marking family) and taught the fast engines to
// batch same-block runs through `on_hit_run`. None of that may change a
// single counter: this suite replays the rewritten policies through the
// verifying `Simulation` engine and the devirtualized `simulate_fast_spec`
// on workloads chosen to stress exactly the rewritten paths --
//
//   * zipf          -- run lengths near 1, the singleton fast-step path;
//   * zipf-scramble -- hot items in random blocks, cold block geometry;
//   * adv-item / adv-block -- captured Theorem 2/3 adversarial traces with
//     long same-block stretches, the batched `fast_hit_run` path;
//
// each at three capacities spanning tight to roomy. Built twice (see
// tests/CMakeLists.txt): against the checking libraries and against the
// GC_FAST_SIM copy, so the batching rewrite is pinned in both contract
// configurations. Carries the ctest label `diff`.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "core/simulator.hpp"
#include "policies/block_lru.hpp"
#include "policies/factory.hpp"
#include "policies/item_lru.hpp"
#include "traces/adversary.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

void expect_identical(const SimStats& verify, const SimStats& fast) {
  EXPECT_EQ(verify.accesses, fast.accesses);
  EXPECT_EQ(verify.hits, fast.hits);
  EXPECT_EQ(verify.misses, fast.misses);
  EXPECT_EQ(verify.temporal_hits, fast.temporal_hits);
  EXPECT_EQ(verify.spatial_hits, fast.spatial_hits);
  EXPECT_EQ(verify.items_loaded, fast.items_loaded);
  EXPECT_EQ(verify.sideloads, fast.sideloads);
  EXPECT_EQ(verify.evictions, fast.evictions);
  EXPECT_EQ(verify.wasted_sideloads, fast.wasted_sideloads);
}

struct NamedWorkload {
  std::string name;
  Workload workload;
  std::vector<std::size_t> capacities;
};

/// Workloads are expensive to capture (the adversaries run a live target
/// policy), so build them once and replay for every spec.
const std::vector<NamedWorkload>& workloads_under_test() {
  static const std::vector<NamedWorkload>* ws = [] {
    auto* v = new std::vector<NamedWorkload>;
    v->push_back({"zipf", traces::zipf_items(2048, 16, 20000, 0.9, 7),
                  {64, 256, 1024}});
    v->push_back({"zipf_scramble",
                  traces::zipf_scramble(2048, 16, 20000, 0.9, 11),
                  {64, 256, 1024}});
    traces::AdversaryOptions adv;
    adv.k = 96;
    adv.h = 48;
    adv.B = 8;
    adv.phases = 30;
    {
      ItemLru target;
      v->push_back({"adv_item",
                    traces::run_item_adversary(target, adv).workload,
                    {32, 96, 160}});
    }
    {
      traces::AdversaryOptions badv = adv;  // Theorem 3: h <= ceil(k/B)
      badv.h = 8;
      badv.phases = 60;
      BlockLru target;
      v->push_back({"adv_block",
                    traces::run_block_adversary(target, badv).workload,
                    {32, 96, 160}});
    }
    return v;
  }();
  return *ws;
}

/// Every rewritten policy, bare and with the parameter plumbing that takes
/// different code paths inside the rewrites (sideload caps, cold-block
/// heuristic off, high thresholds).
std::vector<std::string> rewritten_specs() {
  return {
      "item-lfu",
      "footprint",
      "footprint:cold_block=0",
      "athreshold",
      "athreshold:a=4",
      "gcm",
      "gcm:seed=5,sideload=3",
      "marking-item",
      "marking-blockmark",
  };
}

class PolicyRewriteDifferential : public ::testing::TestWithParam<std::string> {
};

TEST_P(PolicyRewriteDifferential, BitIdenticalAcrossWorkloadsAndCapacities) {
  const std::string spec = GetParam();
  for (const NamedWorkload& nw : workloads_under_test()) {
    for (const std::size_t capacity : nw.capacities) {
      SCOPED_TRACE(spec + " workload=" + nw.name +
                   " capacity=" + std::to_string(capacity));
      const auto policy = make_policy(spec, capacity);
      const SimStats verify = simulate(nw.workload, *policy, capacity);
      const SimStats fast = simulate_fast_spec(spec, nw.workload, capacity);
      expect_identical(verify, fast);
    }
  }
}

std::string sanitize(const ::testing::TestParamInfo<std::string>& info) {
  std::string name;
  for (const char c : info.param)
    name += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  return name;
}

INSTANTIATE_TEST_SUITE_P(RewrittenPolicies, PolicyRewriteDifferential,
                         ::testing::ValuesIn(rewritten_specs()), sanitize);

// The batched engine path alternates hit stretches with single misses; a
// trace that is *all* same-block runs (sequential scan) and one that is all
// singletons (stride = B) pin both extremes explicitly.
TEST(PolicyRewriteRuns, ScanExtremesMatchVerifyingEngine) {
  const Workload scan = traces::sequential_scan(512, 16, 4096);
  const Workload stride = traces::strided_scan(512, 16, 4096, 16);
  for (const std::string& spec : rewritten_specs()) {
    for (const Workload* w : {&scan, &stride}) {
      SCOPED_TRACE(spec + (w == &scan ? " scan" : " stride"));
      const auto policy = make_policy(spec, 128);
      const SimStats verify = simulate(*w, *policy, 128);
      const SimStats fast = simulate_fast_spec(spec, *w, 128);
      expect_identical(verify, fast);
    }
  }
}

}  // namespace
}  // namespace gcaching
