// Tests for the address-trace importer and the randomized-paging baseline
// bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "bounds/randomized.hpp"
#include "core/simulator.hpp"
#include "policies/factory.hpp"
#include "traces/address_trace.hpp"

namespace gcaching::traces {
namespace {

AddressTraceFormat line64_row8() {
  AddressTraceFormat fmt;
  fmt.item_bytes = 64;
  fmt.block_items = 8;  // 512 B "rows"
  return fmt;
}

TEST(AddressTrace, SingleRecordOneItem) {
  std::istringstream is("0x1000 64\n");
  const auto w = load_address_trace(is, line64_row8());
  ASSERT_EQ(w.trace.size(), 1u);
  EXPECT_EQ(w.map->max_block_size(), 8u);
}

TEST(AddressTrace, MultiLineRecordTouchesConsecutiveItems) {
  // 256 bytes starting at 0x1000 = 4 lines of 64 B.
  std::istringstream is("0x1000 256\n");
  const auto w = load_address_trace(is, line64_row8());
  ASSERT_EQ(w.trace.size(), 4u);
  for (std::size_t p = 1; p < 4; ++p)
    EXPECT_EQ(w.trace[p], w.trace[p - 1] + 1);  // dense & adjacent
}

TEST(AddressTrace, StraddlingRecordSpansItems) {
  // 64 bytes starting at 0x1020 straddles two 64 B lines.
  std::istringstream is("0x1020 64\n");
  const auto w = load_address_trace(is, line64_row8());
  EXPECT_EQ(w.trace.size(), 2u);
}

TEST(AddressTrace, IntraBlockAdjacencyPreserved) {
  // Two addresses in the same 512 B row end up in the same block; a far
  // address lands in a different one.
  std::istringstream is(
      "0x0000 64\n"
      "0x0040 64\n"
      "0xff000 64\n");
  const auto w = load_address_trace(is, line64_row8());
  ASSERT_EQ(w.trace.size(), 3u);
  EXPECT_EQ(w.map->block_of(w.trace[0]), w.map->block_of(w.trace[1]));
  EXPECT_NE(w.map->block_of(w.trace[0]), w.map->block_of(w.trace[2]));
}

TEST(AddressTrace, SparseAddressesRemapDense) {
  std::istringstream is(
      "0xdeadbeef000 64\n"
      "0x00000001000 64\n"
      "0xdeadbeef000 64\n");
  const auto w = load_address_trace(is, line64_row8());
  EXPECT_EQ(w.trace[0], w.trace[2]);        // same address, same item
  EXPECT_LT(w.map->num_items(), 100u);      // dense, not address-sized
  EXPECT_EQ(w.distinct_blocks(), 2u);
}

TEST(AddressTrace, CsvFormatWithSkippedFields) {
  AddressTraceFormat fmt = line64_row8();
  fmt.delimiter = ',';
  fmt.address_field = 3;
  fmt.size_field = 4;
  std::istringstream is(
      "128166372003061629,hm,0,0x2000,128\n"
      "128166372016382155,hm,0,0x2040,64\n");
  const auto w = load_address_trace(is, fmt);
  EXPECT_EQ(w.trace.size(), 3u);  // 2 lines + 1 line
}

TEST(AddressTrace, NoSizeColumnMode) {
  AddressTraceFormat fmt = line64_row8();
  fmt.has_size = false;
  std::istringstream is("4096\n4160\n");
  const auto w = load_address_trace(is, fmt);
  EXPECT_EQ(w.trace.size(), 2u);
}

TEST(AddressTrace, CommentsAndBlanksSkipped) {
  std::istringstream is("# header\n\n0x1000 64\n");
  EXPECT_EQ(load_address_trace(is, line64_row8()).trace.size(), 1u);
}

TEST(AddressTrace, MalformedRecordFailsLoudly) {
  std::istringstream is("not-a-number 64\n");
  EXPECT_THROW(load_address_trace(is, line64_row8()), std::runtime_error);
  std::istringstream empty("# only comments\n");
  EXPECT_THROW(load_address_trace(empty, line64_row8()),
               std::runtime_error);
}

TEST(AddressTrace, ImportedWorkloadSimulatesCleanly) {
  std::ostringstream gen;
  for (int row = 0; row < 32; ++row)
    for (int rep = 0; rep < 4; ++rep)
      gen << (0x10000 + row * 512) << " 512\n";
  std::istringstream is(gen.str());
  const auto w = load_address_trace(is, line64_row8());
  auto policy = make_policy("iblp", 64);
  const SimStats s = simulate(w, *policy, 64);
  EXPECT_EQ(s.accesses, w.trace.size());
  EXPECT_GT(s.spatial_hits, 0u);  // row-sized records have spatial locality
}

}  // namespace
}  // namespace gcaching::traces

namespace gcaching::bounds {
namespace {

TEST(RandomizedBounds, HarmonicValues) {
  EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
  EXPECT_DOUBLE_EQ(harmonic(2), 1.5);
  EXPECT_NEAR(harmonic(100), 5.187377, 1e-5);
  // Euler-Maclaurin branch agrees with the exact sum at the threshold.
  EXPECT_NEAR(harmonic(2e6), std::log(2e6) + 0.5772156649, 1e-6);
}

TEST(RandomizedBounds, MarkingSandwich) {
  for (double k : {8.0, 64.0, 1024.0}) {
    EXPECT_LT(randomized_paging_lower(k), randomized_marking_upper(k));
    EXPECT_DOUBLE_EQ(randomized_marking_upper(k),
                     2 * randomized_paging_lower(k));
  }
}

TEST(RandomizedBounds, GranularityPenaltyDwarfsLogK) {
  // Section 6.1's point: for realistic B and k, the B-factor loss of
  // granularity-oblivious marking exceeds randomization's entire H_k
  // advantage.
  EXPECT_GT(oblivious_marking_gc_lower(64),
            randomized_marking_upper(1 << 20));
}

}  // namespace
}  // namespace gcaching::bounds
