// Unit and integration tests for the multi-level hierarchy simulator.
#include <gtest/gtest.h>

#include "hierarchy/hierarchy.hpp"
#include "policies/factory.hpp"
#include "traces/synthetic.hpp"
#include "util/contracts.hpp"

namespace gcaching::hierarchy {
namespace {

std::vector<LevelConfig> two_levels(std::size_t num_items) {
  auto maps = nested_uniform_maps(num_items, {1, 32});
  std::vector<LevelConfig> levels(2);
  levels[0] = {"L1", 64, "item-lru", maps[0], 10.0};
  levels[1] = {"dram-cache", 2048, "iblp:i=1024,b=1024", maps[1], 200.0};
  return levels;
}

TEST(Hierarchy, NestedMapsShareUniverse) {
  const auto maps = nested_uniform_maps(1024, {1, 8, 64});
  ASSERT_EQ(maps.size(), 3u);
  for (const auto& m : maps) EXPECT_EQ(m->num_items(), 1024u);
  EXPECT_EQ(maps[0]->max_block_size(), 1u);
  EXPECT_EQ(maps[2]->max_block_size(), 64u);
}

TEST(Hierarchy, LowerLevelSeesExactlyTheMissStream) {
  HierarchySimulator hs(two_levels(1 << 16));
  const auto w = traces::zipf_blocks(512, 32, 20000, 0.9, 8, 3);
  hs.run(w.trace);
  EXPECT_EQ(hs.level_stats(1).accesses, hs.level_stats(0).misses);
  EXPECT_EQ(hs.accesses(), hs.level_stats(0).accesses);
}

TEST(Hierarchy, HitStopsPropagation) {
  auto maps = nested_uniform_maps(256, {1, 8});
  std::vector<LevelConfig> levels(2);
  levels[0] = {"L1", 4, "item-lru", maps[0], 1.0};
  levels[1] = {"L2", 64, "block-lru", maps[1], 10.0};
  HierarchySimulator hs(levels);
  hs.access(0);  // cold: misses both levels
  hs.access(0);  // L1 hit: L2 must not be probed again
  EXPECT_EQ(hs.level_stats(0).hits, 1u);
  EXPECT_EQ(hs.level_stats(1).accesses, 1u);
}

TEST(Hierarchy, CostModelArithmetic) {
  auto maps = nested_uniform_maps(64, {1, 8});
  std::vector<LevelConfig> levels(2);
  levels[0] = {"L1", 4, "item-lru", maps[0], 10.0};
  levels[1] = {"L2", 16, "block-lru", maps[1], 100.0};
  HierarchySimulator hs(levels, /*probe_cost=*/1.0);
  hs.access(0);  // miss, miss: 1 + 10 + 100
  hs.access(0);  // L1 hit: 1
  EXPECT_DOUBLE_EQ(hs.total_cost(), 112.0);
  EXPECT_DOUBLE_EQ(hs.amat(), 56.0);
}

TEST(Hierarchy, HitShares) {
  auto maps = nested_uniform_maps(64, {1, 8});
  std::vector<LevelConfig> levels(2);
  levels[0] = {"L1", 4, "item-lru", maps[0], 1.0};
  levels[1] = {"L2", 16, "block-lru", maps[1], 10.0};
  HierarchySimulator hs(levels);
  hs.access(0);  // memory
  hs.access(0);  // L1
  hs.access(1);  // L2 (block 0 resident there), loads into L1 too
  EXPECT_DOUBLE_EQ(hs.hit_share(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(hs.hit_share(1), 1.0 / 3.0);
}

TEST(Hierarchy, GcAwareLastLevelBeatsItemCacheOnScans) {
  const auto w = traces::sequential_scan(1 << 15, 32, 100000);
  auto maps = nested_uniform_maps(1 << 15, {1, 32});
  std::vector<LevelConfig> gc_levels(2), item_levels(2);
  gc_levels[0] = {"L1", 64, "item-lru", maps[0], 10.0};
  gc_levels[1] = {"LLC", 2048, "iblp:i=512,b=1536", maps[1], 200.0};
  item_levels[0] = {"L1", 64, "item-lru", maps[0], 10.0};
  item_levels[1] = {"LLC", 2048, "item-lru", maps[1], 200.0};
  HierarchySimulator gc(gc_levels), item(item_levels);
  gc.run(w.trace);
  item.run(w.trace);
  EXPECT_LT(gc.amat(), item.amat() * 0.5);
}

TEST(Hierarchy, ThreeLevelsRunClean) {
  const auto w = traces::scan_with_hotset(1024, 64, 50000, 0.3, 0.9, 16, 9);
  auto maps = nested_uniform_maps(1024 * 64, {1, 8, 64});
  std::vector<LevelConfig> levels(3);
  levels[0] = {"L1", 128, "item-lru", maps[0], 4.0};
  levels[1] = {"L2", 1024, "iblp:i=512,b=512", maps[1], 30.0};
  levels[2] = {"L3", 8192, "iblp:i=2048,b=6144", maps[2], 200.0};
  HierarchySimulator hs(levels);
  EXPECT_NO_THROW(hs.run(w.trace));
  // Miss counts must be monotone down the hierarchy (filtered streams).
  EXPECT_GE(hs.level_stats(0).accesses, hs.level_stats(1).accesses);
  EXPECT_GE(hs.level_stats(1).accesses, hs.level_stats(2).accesses);
}

TEST(Hierarchy, ValidationCatchesMismatchedUniverses) {
  std::vector<LevelConfig> levels(2);
  levels[0] = {"L1", 4, "item-lru", make_uniform_blocks(64, 1), 1.0};
  levels[1] = {"L2", 16, "block-lru", make_uniform_blocks(128, 8), 1.0};
  EXPECT_THROW(HierarchySimulator hs(levels), gcaching::ContractViolation);
}

TEST(Hierarchy, ValidationCatchesMissingMap) {
  std::vector<LevelConfig> levels(1);
  levels[0] = {"L1", 4, "item-lru", nullptr, 1.0};
  EXPECT_THROW(HierarchySimulator hs(levels), gcaching::ContractViolation);
}

TEST(Hierarchy, SingleLevelDegeneratesToSimulate) {
  const auto w = traces::zipf_blocks(64, 8, 8000, 0.8, 4, 21);
  std::vector<LevelConfig> levels(1);
  levels[0] = {"only", 128, "iblp:i=64,b=64", w.map, 50.0};
  HierarchySimulator hs(levels);
  hs.run(w.trace);
  auto policy = make_policy("iblp:i=64,b=64", 128);
  const SimStats ref = simulate(w, *policy, 128);
  EXPECT_EQ(hs.level_stats(0).misses, ref.misses);
}

}  // namespace
}  // namespace gcaching::hierarchy
