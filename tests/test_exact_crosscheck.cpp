// Independent cross-validation of the exact offline solver: a deliberately
// naive recursive optimizer (different state representation, different
// enumeration order, no 0/1-BFS, no eviction-minimality pruning) must agree
// with `exact_offline_opt` on exhaustive tiny instances. Also property
// tests for the trace-IO round trip on randomized workloads.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "core/trace_io.hpp"
#include "offline/exact_opt.hpp"
#include "traces/synthetic.hpp"
#include "util/rng.hpp"

namespace gcaching {
namespace {

// ---------------------------------------------------------------------------
// Naive reference solver
// ---------------------------------------------------------------------------

struct NaiveSolver {
  const BlockMap& map;
  const Trace& trace;
  std::size_t k;
  std::map<std::pair<std::size_t, std::set<ItemId>>, std::uint64_t> memo;

  std::uint64_t solve(std::size_t pos, std::set<ItemId> cache) {
    if (pos == trace.size()) return 0;
    const auto key = std::make_pair(pos, cache);
    const auto it = memo.find(key);
    if (it != memo.end()) return it->second;

    const ItemId x = trace[pos];
    std::uint64_t best;
    if (cache.count(x)) {
      best = solve(pos + 1, cache);
    } else {
      best = ~std::uint64_t{0};
      // Enumerate EVERY load subset containing x and EVERY post-state
      // respecting capacity — including wasteful over-evictions, which an
      // optimal schedule never needs; the reference deliberately explores
      // them to stress the production solver's pruning argument.
      const auto block_items = map.items_of(map.block_of(x));
      std::vector<ItemId> loadable;
      for (ItemId m : block_items)
        if (!cache.count(m) && m != x) loadable.push_back(m);
      const std::size_t subsets = std::size_t{1} << loadable.size();
      for (std::size_t mask = 0; mask < subsets; ++mask) {
        std::set<ItemId> loaded = {x};
        for (std::size_t j = 0; j < loadable.size(); ++j)
          if (mask & (std::size_t{1} << j)) loaded.insert(loadable[j]);
        // Choose survivors among old contents (any subset).
        std::vector<ItemId> old(cache.begin(), cache.end());
        const std::size_t old_subsets = std::size_t{1} << old.size();
        for (std::size_t om = 0; om < old_subsets; ++om) {
          std::set<ItemId> next = loaded;
          for (std::size_t j = 0; j < old.size(); ++j)
            if (om & (std::size_t{1} << j)) next.insert(old[j]);
          if (next.size() > k) continue;
          best = std::min(best, 1 + solve(pos + 1, std::move(next)));
        }
      }
    }
    memo[key] = best;
    return best;
  }
};

TEST(ExactCrossCheck, AgreesWithNaiveSolverExhaustively) {
  SplitMix64 rng(606);
  for (int round = 0; round < 25; ++round) {
    const std::size_t B = 1 + rng.below(3);        // 1..3
    const std::size_t blocks = 2 + rng.below(2);   // 2..3
    const std::size_t n = B * blocks;
    const std::size_t k = 1 + rng.below(3);        // 1..3
    auto map = make_uniform_blocks(n, B);
    Trace t;
    const std::size_t len = 4 + rng.below(6);      // 4..9
    for (std::size_t p = 0; p < len; ++p)
      t.push(static_cast<ItemId>(rng.below(n)));

    NaiveSolver naive{*map, t, k, {}};
    const std::uint64_t expect = naive.solve(0, {});
    const auto got = exact_offline_opt(*map, t, k);
    EXPECT_EQ(got.cost, expect)
        << "round " << round << " n=" << n << " B=" << B << " k=" << k;
  }
}

TEST(ExactCrossCheck, LargerBlocksSpotChecks) {
  SplitMix64 rng(707);
  for (int round = 0; round < 6; ++round) {
    auto map = make_uniform_blocks(8, 4);
    Trace t;
    for (std::size_t p = 0; p < 8; ++p)
      t.push(static_cast<ItemId>(rng.below(8)));
    const std::size_t k = 2 + rng.below(2);
    NaiveSolver naive{*map, t, k, {}};
    EXPECT_EQ(exact_offline_opt(*map, t, k).cost, naive.solve(0, {}))
        << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Trace-IO round-trip property
// ---------------------------------------------------------------------------

TEST(TraceIoProperty, RandomWorkloadsRoundTripExactly) {
  SplitMix64 rng(808);
  for (int round = 0; round < 12; ++round) {
    Workload w;
    const std::size_t B = 1 + rng.below(9);
    const std::size_t blocks = 1 + rng.below(20);
    if (rng.chance(0.5)) {
      w.map = make_uniform_blocks(blocks * B, B);
    } else {
      // Random explicit partition: shuffle a dense universe into blocks.
      std::vector<ItemId> ids(blocks * B);
      for (std::size_t j = 0; j < ids.size(); ++j)
        ids[j] = static_cast<ItemId>(j);
      for (std::size_t j = ids.size(); j > 1; --j)
        std::swap(ids[j - 1], ids[rng.below(j)]);
      std::vector<std::vector<ItemId>> parts;
      for (std::size_t j = 0; j < ids.size();) {
        const std::size_t take =
            std::min<std::size_t>(1 + rng.below(B), ids.size() - j);
        parts.emplace_back(ids.begin() + static_cast<long>(j),
                           ids.begin() + static_cast<long>(j + take));
        j += take;
      }
      w.map = std::make_shared<ExplicitBlockMap>(std::move(parts));
    }
    const std::size_t len = rng.below(200);
    for (std::size_t p = 0; p < len; ++p)
      w.trace.push(static_cast<ItemId>(rng.below(w.map->num_items())));
    w.name = "roundtrip-" + std::to_string(round);

    std::ostringstream os;
    save_workload(os, w);
    std::istringstream is(os.str());
    const Workload back = load_workload(is);

    ASSERT_EQ(back.map->num_items(), w.map->num_items());
    ASSERT_EQ(back.map->num_blocks(), w.map->num_blocks());
    for (ItemId it = 0; it < w.map->num_items(); ++it)
      ASSERT_EQ(back.map->block_of(it), w.map->block_of(it))
          << "round " << round;
    ASSERT_EQ(back.trace.size(), w.trace.size());
    for (std::size_t p = 0; p < w.trace.size(); ++p)
      ASSERT_EQ(back.trace[p], w.trace[p]);
    EXPECT_EQ(back.name, w.name);
  }
}

}  // namespace
}  // namespace gcaching
