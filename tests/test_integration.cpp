// Cross-module integration tests: the paper's qualitative claims, checked
// end-to-end on simulated workloads.
#include <gtest/gtest.h>

#include <cctype>

#include "bounds/locality_bounds.hpp"
#include "core/simulator.hpp"
#include "locality/poly_fit.hpp"
#include "locality/window_profile.hpp"
#include "policies/factory.hpp"
#include "traces/locality_trace.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

// Section 2: "Item Caches perform well on temporal locality and poorly on
// spatial locality, whereas Block Caches are the opposite."
TEST(Integration, ItemVsBlockCacheTradeoffs) {
  const std::size_t k = 64;
  // Pure spatial workload: sequential scan.
  const auto spatial = traces::sequential_scan(1024, 8, 8192);
  // Pure temporal workload: hot items scattered one per block.
  const auto temporal = traces::hot_item_per_block(32, 8, 8192, 32, 0.0, 1);

  auto item_s = make_policy("item-lru", k);
  auto block_s = make_policy("block-lru", k);
  EXPECT_GT(simulate(spatial, *item_s, k).misses,
            simulate(spatial, *block_s, k).misses * 4);

  auto item_t = make_policy("item-lru", k);
  auto block_t = make_policy("block-lru", k);
  EXPECT_LT(simulate(temporal, *item_t, k).misses * 4,
            simulate(temporal, *block_t, k).misses);
}

// Section 5: IBLP handles both locality types with one configuration.
TEST(Integration, IblpRobustAcrossLocalityTypes) {
  const std::size_t k = 64;
  const std::vector<Workload> workloads = {
      traces::sequential_scan(1024, 8, 8192),
      traces::hot_item_per_block(32, 8, 8192, 32, 0.0, 2),
      traces::scan_with_hotset(64, 8, 8192, 0.4, 0.9, 4, 3),
  };
  for (const auto& w : workloads) {
    auto iblp = make_policy("iblp", k);
    auto item = make_policy("item-lru", k);
    auto block = make_policy("block-lru", k);
    const auto m_iblp = simulate(w, *iblp, k).misses;
    const auto m_item = simulate(w, *item, k).misses;
    const auto m_block = simulate(w, *block, k).misses;
    // IBLP never does much worse than the better specialist...
    EXPECT_LE(m_iblp, 2 * std::min(m_item, m_block) + 64) << w.name;
    // ...and never approaches the worse specialist's failure mode.
    EXPECT_LE(m_iblp, std::max(m_item, m_block)) << w.name;
  }
}

// Spatial hits only exist because of granularity change: with B = 1 the
// spatial-hit counter must be identically zero for every policy.
TEST(Integration, NoSpatialHitsWithoutBlocks) {
  const auto w = traces::zipf_items(128, 1, 8000, 0.9, 4);
  for (const auto& name : known_policy_names()) {
    const std::string spec = (name == "athreshold") ? "athreshold:a=1" : name;
    auto policy = make_policy(spec, 32);
    EXPECT_EQ(simulate(w, *policy, 32).spatial_hits, 0u) << name;
  }
}

// The measured locality profile of a Theorem 8 adversarial run must be
// consistent with the f used to construct it.
TEST(Integration, LocalityAdversaryRespectsItsOwnF) {
  const std::size_t k = 24, B = 4;
  const auto f = bounds::make_poly_locality(1.0, 2.0);
  const auto g = bounds::derive_block_locality(f, 2.0);
  auto lru = make_policy("item-lru", k);
  const auto res = traces::run_locality_adversary(*lru, k, B, f, g, 6);
  // Profile the steady-state suffix (the warmup pass over k+1 items is not
  // f-consistent by design — the proofs assume full caches).
  Workload steady;
  steady.map = res.workload.map;
  for (std::size_t p = res.warmup_length; p < res.workload.trace.size(); ++p)
    steady.trace.push(res.workload.trace[p]);
  const auto prof = locality::compute_profile(steady);
  // The construction tracks f up to the phase-boundary factor of ~2 the
  // Albers et al. machinery absorbs (our harness keeps it simple).
  for (std::size_t s = 0; s < prof.window_lengths.size(); ++s) {
    const double fn =
        f.value(static_cast<double>(prof.window_lengths[s]));
    EXPECT_LE(prof.max_distinct_items[s], 2.0 * fn + 2.0)
        << "window " << prof.window_lengths[s];
  }
}

// Theorem 8's executable construction actually hurts: LRU's fault rate on
// the adversarial trace reaches the analytic lower bound (up to harness
// slack), far above its fault rate on a random trace with the same f.
TEST(Integration, LocalityAdversaryApproachesTheorem8Bound) {
  const std::size_t k = 24, B = 4;
  const auto f = bounds::make_poly_locality(1.0, 2.0);
  const auto g = bounds::derive_block_locality(f, 2.0);
  auto lru = make_policy("item-lru", k);
  const auto res = traces::run_locality_adversary(*lru, k, B, f, g, 8);
  EXPECT_GE(res.fault_rate, 0.5 * res.bound);
}

// End-to-end locality pipeline: generate -> measure -> fit -> bound, and
// the measured IBLP fault rate respects the Theorem 11 bound computed from
// the *measured* profile.
TEST(Integration, MeasuredFaultRateRespectsTheorem11) {
  const std::size_t B = 8, i = 64, b = 64, k = i + b;
  const auto w = traces::stack_distance_workload(512, B, 2.0, 4.0, 60000, 9);
  const auto prof = locality::compute_profile(w);
  const auto f = locality::interpolate_locality(prof.window_lengths,
                                                prof.max_distinct_items);
  const auto g = locality::interpolate_locality(prof.window_lengths,
                                                prof.max_distinct_blocks);
  auto iblp = make_policy("iblp:i=64,b=64", k);
  const SimStats s = simulate(w, *iblp, k);
  const double bound = bounds::iblp_fault_upper(
      f, g, static_cast<double>(i), static_cast<double>(b),
      static_cast<double>(B));
  EXPECT_LE(s.miss_rate(), bound + 0.02);
}

// Pollution accounting: block caches waste most sideloads on hot-item
// workloads; IBLP's item layer rescues the hot items.
TEST(Integration, WastedSideloadAccountingSeparatesPolicies) {
  const auto w = traces::hot_item_per_block(32, 8, 16000, 32, 0.05, 10);
  auto block = make_policy("block-lru", 64);
  auto iblp = make_policy("iblp", 64);
  const auto s_block = simulate(w, *block, 64);
  const auto s_iblp = simulate(w, *iblp, 64);
  EXPECT_GT(s_block.wasted_sideloads, 0u);
  EXPECT_LT(s_iblp.misses, s_block.misses);
}

// Spatial hit share responds to workload spatial locality for GC-aware
// policies.
TEST(Integration, SpatialHitShareTracksWorkload) {
  auto p1 = make_policy("iblp", 64);
  auto p2 = make_policy("iblp", 64);
  const auto seq = traces::sequential_scan(1024, 8, 8192);
  const auto strided = traces::strided_scan(1024, 8, 8192, 8);
  const auto s_seq = simulate(seq, *p1, 64);
  const auto s_str = simulate(strided, *p2, 64);
  EXPECT_GT(s_seq.spatial_hit_share(), 0.5);
  EXPECT_LT(s_str.spatial_hit_share(), 0.1);
}

}  // namespace
}  // namespace gcaching
