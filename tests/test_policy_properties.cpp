// Property-based invariants every replacement policy must satisfy, swept
// over the full policy registry (TEST_P / INSTANTIATE_TEST_SUITE_P) and a
// battery of workloads. These are the tests that catch Definition-1
// violations: the verifying simulator throws on any illegal load or
// capacity overflow, so a clean run *is* the property.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "offline/exact_opt.hpp"
#include "policies/factory.hpp"
#include "traces/synthetic.hpp"
#include "util/rng.hpp"

namespace gcaching {
namespace {

std::vector<Workload> property_workloads() {
  std::vector<Workload> out;
  out.push_back(traces::zipf_items(256, 8, 8000, 0.9, 101));
  out.push_back(traces::zipf_blocks(32, 8, 8000, 0.8, 4, 102));
  out.push_back(traces::sequential_scan(256, 8, 8000));
  out.push_back(traces::strided_scan(256, 8, 8000, 8));
  out.push_back(traces::hot_item_per_block(32, 8, 8000, 32, 0.1, 103));
  out.push_back(traces::working_set_phases(256, 8, 8000, 24, 500, 104));
  out.push_back(traces::scan_with_hotset(32, 8, 8000, 0.3, 0.9, 4, 105));
  return out;
}

class PolicyProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(PolicyProperty, ObeysModelInvariantsOnAllWorkloads) {
  // Every access is validated by CacheContents; a contract violation fails
  // the test via the exception.
  for (const auto& w : property_workloads()) {
    auto policy = make_policy(GetParam(), 64);
    const SimStats s = simulate(w, *policy, 64);
    EXPECT_EQ(s.accesses, w.trace.size()) << w.name;
  }
}

TEST_P(PolicyProperty, StatsIdentitiesHold) {
  for (const auto& w : property_workloads()) {
    auto policy = make_policy(GetParam(), 64);
    const SimStats s = simulate(w, *policy, 64);
    EXPECT_EQ(s.hits + s.misses, s.accesses) << w.name;
    EXPECT_EQ(s.temporal_hits + s.spatial_hits, s.hits) << w.name;
    EXPECT_GE(s.items_loaded, s.misses) << w.name;
    EXPECT_EQ(s.items_loaded - s.misses, s.sideloads) << w.name;
    EXPECT_LE(s.wasted_sideloads, s.sideloads + 64) << w.name;
  }
}

TEST_P(PolicyProperty, OccupancyNeverExceedsCapacity) {
  const auto w = traces::zipf_blocks(32, 8, 4000, 0.8, 3, 321);
  auto policy = make_policy(GetParam(), 48);
  Simulation sim(*w.map, *policy, 48);
  policy->prepare(w.trace);
  for (ItemId it : w.trace) {
    sim.access(it);
    ASSERT_LE(sim.cache().occupancy(), 48u);
  }
}

TEST_P(PolicyProperty, ColdStartFirstAccessAlwaysMisses) {
  const auto w = traces::sequential_scan(64, 8, 1);
  auto policy = make_policy(GetParam(), 32);
  const SimStats s = simulate(w, *policy, 32);
  EXPECT_EQ(s.misses, 1u);
}

TEST_P(PolicyProperty, SingleItemWorkloadMissesOnce) {
  auto map = make_uniform_blocks(8, 4);
  Trace t;
  for (int rep = 0; rep < 50; ++rep) t.push(2);
  auto policy = make_policy(GetParam(), 8);
  const SimStats s = simulate(*map, t, *policy, 8);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 49u);
}

TEST_P(PolicyProperty, NeverBeatsExactOptOnSmallInstances) {
  SplitMix64 rng(777);
  auto map = make_uniform_blocks(12, 4);
  for (int round = 0; round < 3; ++round) {
    Trace t;
    for (int p = 0; p < 24; ++p) t.push(static_cast<ItemId>(rng.below(12)));
    const auto opt = exact_offline_opt(*map, t, 8);
    auto policy = make_policy(GetParam(), 8);
    const SimStats s = simulate(*map, t, *policy, 8);
    EXPECT_GE(s.misses, opt.cost) << "round " << round;
  }
}

TEST_P(PolicyProperty, WorksAtTightCapacity) {
  // capacity == 2B: tight geometry for block-granularity and layered
  // policies (IBLP's default even split needs b >= B).
  const auto w = traces::zipf_blocks(16, 4, 2000, 0.7, 2, 55);
  auto policy = make_policy(GetParam(), 8);
  EXPECT_NO_THROW(simulate(w, *policy, 8));
}

TEST_P(PolicyProperty, DeterministicRerun) {
  const auto w = traces::zipf_blocks(32, 8, 5000, 0.9, 3, 66);
  auto a = make_policy(GetParam(), 64);
  auto b = make_policy(GetParam(), 64);
  EXPECT_EQ(simulate(w, *a, 64).misses, simulate(w, *b, 64).misses);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyProperty,
    ::testing::Values("item-lru", "item-fifo", "item-lfu", "item-clock",
                      "item-random", "item-slru", "item-arc",
                      "footprint", "footprint:cold_block=0", "block-lru",
                      "block-fifo", "iblp", "iblp-excl", "iblp-blockfirst",
                      "gcm", "marking-item", "marking-blockmark",
                      "athreshold:a=1", "athreshold:a=3",
                      "athreshold:a=1000", "belady-item", "belady-block",
                      "belady-greedy-gc"),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      std::string name = param_info.param;
      for (char& ch : name)
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      return name;
    });

TEST(PolicyFactory, KnownNamesAllConstruct) {
  for (const auto& name : known_policy_names()) {
    const std::string spec =
        (name == "athreshold") ? "athreshold:a=2" : name;
    EXPECT_NO_THROW(make_policy(spec, 64)) << name;
  }
}

TEST(PolicyFactory, UnknownNameThrows) {
  EXPECT_THROW(make_policy("no-such-policy", 64), ContractViolation);
}

TEST(PolicyFactory, MalformedParamsThrow) {
  EXPECT_THROW(make_policy("iblp:i=10,b=20", 64), ContractViolation);
  EXPECT_THROW(make_policy("athreshold:a", 64), ContractViolation);
}

TEST(PolicyFactory, IblpDefaultsToEvenSplit) {
  auto p = make_policy("iblp", 64);
  EXPECT_EQ(p->name(), "iblp(i=32,b=32)");
}

TEST(PolicyFactory, SpecParametersRespected) {
  auto p = make_policy("iblp:i=48,b=16", 64);
  EXPECT_EQ(p->name(), "iblp(i=48,b=16)");
  auto q = make_policy("athreshold:a=7", 64);
  EXPECT_EQ(q->name(), "athreshold(a=7)");
}

}  // namespace
}  // namespace gcaching
