// Unit tests for core/simulator: accounting, classification, end-to-end
// consistency of the verifying simulator.
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/block_lru.hpp"
#include "policies/item_lru.hpp"
#include "util/contracts.hpp"

namespace gcaching {
namespace {

TEST(Simulator, EmptyTrace) {
  auto map = make_uniform_blocks(8, 4);
  ItemLru lru;
  const SimStats s = simulate(*map, Trace{}, lru, 4);
  EXPECT_EQ(s.accesses, 0u);
  EXPECT_EQ(s.misses, 0u);
}

TEST(Simulator, ColdMissesThenHits) {
  auto map = make_uniform_blocks(8, 4);
  ItemLru lru;
  const SimStats s = simulate(*map, Trace({0, 1, 0, 1}), lru, 4);
  EXPECT_EQ(s.accesses, 4u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.temporal_hits, 2u);
  EXPECT_EQ(s.spatial_hits, 0u);
}

TEST(Simulator, SpatialHitsWithBlockCache) {
  auto map = make_uniform_blocks(8, 4);
  BlockLru blk;
  // Miss on 0 loads 0..3; hits on 1, 2, 3 are spatial; second hit temporal.
  const SimStats s = simulate(*map, Trace({0, 1, 2, 3, 1}), blk, 8);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.spatial_hits, 3u);
  EXPECT_EQ(s.temporal_hits, 1u);
  EXPECT_EQ(s.items_loaded, 4u);
  EXPECT_EQ(s.sideloads, 3u);
}

TEST(Simulator, StatsIdentities) {
  auto map = make_uniform_blocks(32, 4);
  ItemLru lru;
  const SimStats s =
      simulate(*map, Trace({0, 4, 8, 0, 12, 4, 16, 20, 0, 8}), lru, 3);
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_EQ(s.temporal_hits + s.spatial_hits, s.hits);
  EXPECT_GE(s.items_loaded, s.misses);  // at least the requested item
}

TEST(Simulator, AccessOutsideUniverseThrows) {
  auto map = make_uniform_blocks(4, 2);
  ItemLru lru;
  Simulation sim(*map, lru, 2);
  EXPECT_THROW(sim.access(4), ContractViolation);
}

TEST(Simulator, WorkloadOverload) {
  Workload w;
  w.map = make_uniform_blocks(8, 4);
  w.trace = Trace({0, 1, 2});
  ItemLru lru;
  const SimStats s = simulate(w, lru, 4);
  EXPECT_EQ(s.accesses, 3u);
}

TEST(Simulator, StepwiseMatchesBatch) {
  auto map = make_uniform_blocks(16, 4);
  const Trace trace({0, 5, 9, 0, 13, 5, 1, 2, 0, 9});
  ItemLru a, b;
  const SimStats batch = simulate(*map, trace, a, 3);
  Simulation sim(*map, b, 3);
  for (ItemId it : trace) sim.access(it);
  EXPECT_EQ(batch.misses, sim.stats().misses);
  EXPECT_EQ(batch.hits, sim.stats().hits);
}

TEST(Simulator, EvictionStatsFlowThrough) {
  auto map = make_uniform_blocks(8, 4);
  ItemLru lru;
  // capacity 1: every distinct access evicts the previous item.
  const SimStats s = simulate(*map, Trace({0, 1, 2, 3}), lru, 1);
  EXPECT_EQ(s.misses, 4u);
  EXPECT_EQ(s.evictions, 3u);
}

TEST(Simulator, WastedSideloadsSurface) {
  auto map = make_uniform_blocks(8, 4);
  BlockLru blk;
  // Load block 0 (4 items), only item 0 used; then block 1 evicts block 0.
  const SimStats s = simulate(*map, Trace({0, 4}), blk, 4);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.wasted_sideloads, 3u);  // items 1, 2, 3 evicted untouched
}

TEST(SimStats, SummaryMentionsKeyFields) {
  SimStats s;
  s.accesses = 10;
  s.misses = 4;
  s.hits = 6;
  const std::string txt = s.summary();
  EXPECT_NE(txt.find("accesses=10"), std::string::npos);
  EXPECT_NE(txt.find("misses=4"), std::string::npos);
}

TEST(SimStats, Rates) {
  SimStats s;
  s.accesses = 8;
  s.misses = 2;
  s.hits = 6;
  s.spatial_hits = 3;
  s.temporal_hits = 3;
  s.items_loaded = 6;
  EXPECT_DOUBLE_EQ(s.miss_rate(), 0.25);
  EXPECT_DOUBLE_EQ(s.hit_rate(), 0.75);
  EXPECT_DOUBLE_EQ(s.spatial_hit_share(), 0.5);
  EXPECT_DOUBLE_EQ(s.loads_per_miss(), 3.0);
}

TEST(SimStats, Accumulate) {
  SimStats a, b;
  a.accesses = 3;
  a.misses = 1;
  b.accesses = 2;
  b.misses = 2;
  a += b;
  EXPECT_EQ(a.accesses, 5u);
  EXPECT_EQ(a.misses, 3u);
}

}  // namespace
}  // namespace gcaching
