// Unit tests for the thread pool and the parallel sweep runner.
#include <gtest/gtest.h>

#include <atomic>

#include "sim/runner.hpp"
#include "sim/thread_pool.hpp"
#include "traces/synthetic.hpp"
#include "util/contracts.hpp"

namespace gcaching {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PropagatesTaskExceptions) {
  ThreadPool pool(2);
  pool.submit([] { GC_REQUIRE(false, "task exploded"); });
  EXPECT_THROW(pool.wait(), ContractViolation);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(Runner, ProducesFullCrossProduct) {
  std::vector<Workload> workloads;
  workloads.push_back(traces::zipf_items(64, 8, 2000, 0.8, 1));
  workloads.push_back(traces::sequential_scan(64, 8, 2000));
  sim::SweepSpec spec;
  spec.workloads = &workloads;
  spec.policy_specs = {"item-lru", "block-lru", "iblp"};
  spec.capacities = {16, 32};
  const auto cells = sim::run_sweep(spec);
  ASSERT_EQ(cells.size(), 2u * 3u * 2u);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.stats.accesses, 2000u);
    EXPECT_GT(cell.stats.misses, 0u);
  }
}

TEST(Runner, DeterministicAcrossThreadCounts) {
  std::vector<Workload> workloads;
  workloads.push_back(traces::zipf_blocks(32, 8, 5000, 0.9, 3, 17));
  sim::SweepSpec spec;
  spec.workloads = &workloads;
  spec.policy_specs = {"item-lru", "gcm:seed=5", "iblp:i=16,b=16"};
  spec.capacities = {32};
  spec.threads = 1;
  const auto serial = sim::run_sweep(spec);
  spec.threads = 8;
  const auto parallel = sim::run_sweep(spec);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t c = 0; c < serial.size(); ++c)
    EXPECT_EQ(serial[c].stats.misses, parallel[c].stats.misses);
}

TEST(Runner, RowMajorOrdering) {
  std::vector<Workload> workloads;
  workloads.push_back(traces::sequential_scan(16, 4, 100));
  sim::SweepSpec spec;
  spec.workloads = &workloads;
  spec.policy_specs = {"item-lru", "block-lru"};
  spec.capacities = {4, 8};
  const auto cells = sim::run_sweep(spec);
  EXPECT_EQ(cells[0].policy_index, 0u);
  EXPECT_EQ(cells[0].capacity, 4u);
  EXPECT_EQ(cells[1].capacity, 8u);
  EXPECT_EQ(cells[2].policy_index, 1u);
}

TEST(Runner, BadSpecThrows) {
  sim::SweepSpec spec;
  EXPECT_THROW(sim::run_sweep(spec), ContractViolation);
}

TEST(Runner, UnknownPolicySurfacesError) {
  std::vector<Workload> workloads;
  workloads.push_back(traces::sequential_scan(16, 4, 100));
  sim::SweepSpec spec;
  spec.workloads = &workloads;
  spec.policy_specs = {"definitely-not-a-policy"};
  spec.capacities = {4};
  EXPECT_THROW(sim::run_sweep(spec), ContractViolation);
}

}  // namespace
}  // namespace gcaching
