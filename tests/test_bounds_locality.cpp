// Unit tests for the Section 7 locality-model bounds (Theorems 8-11) and
// their Table 2 instantiations.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/locality_bounds.hpp"
#include "util/contracts.hpp"

namespace gcaching::bounds {
namespace {

TEST(PolyLocality, ValueAndInverseAreInverses) {
  const auto f = make_poly_locality(2.0, 3.0);
  for (double n : {1.0, 10.0, 1234.0}) {
    EXPECT_NEAR(f.inverse(f.value(n)), n, 1e-6 * n);
    EXPECT_NEAR(f.value(f.inverse(n)), n, 1e-6 * n);
  }
}

TEST(PolyLocality, GrowsAsPowerLaw) {
  const auto f = make_poly_locality(1.0, 2.0);
  EXPECT_DOUBLE_EQ(f.value(100.0), 10.0);
  EXPECT_DOUBLE_EQ(f.inverse(10.0), 100.0);
}

TEST(PolyLocality, RejectsBadParameters) {
  EXPECT_THROW(make_poly_locality(0.0, 2.0), ContractViolation);
  EXPECT_THROW(make_poly_locality(1.0, 0.5), ContractViolation);
}

TEST(DeriveBlockLocality, ScalesByGamma) {
  const auto f = make_poly_locality(1.0, 2.0);
  const auto g = derive_block_locality(f, 4.0);
  EXPECT_DOUBLE_EQ(g.value(100.0), 2.5);  // f = 10, gamma = 4
  // Inverse: g^{-1}(m) = f^{-1}(4m).
  EXPECT_DOUBLE_EQ(g.inverse(2.5), 100.0);
}

TEST(DeriveBlockLocality, GammaOneIsIdentity) {
  const auto f = make_poly_locality(1.5, 2.0);
  const auto g = derive_block_locality(f, 1.0);
  EXPECT_DOUBLE_EQ(g.value(50.0), f.value(50.0));
}

TEST(Theorem8, Table2Row1NoSpatialLocality) {
  // f = g = x^{1/2}: lower bound ~ 1/h.
  const auto f = make_poly_locality(1.0, 2.0);
  const auto g = derive_block_locality(f, 1.0);
  const double h = 1000;
  EXPECT_NEAR(fault_rate_lower(f, g, h), 1.0 / h, 0.05 / h);
}

TEST(Theorem8, Table2Row3MaxSpatialLocality) {
  // g = f/B: lower bound ~ 1/(Bh).
  const double B = 64, h = 1000;
  const auto f = make_poly_locality(1.0, 2.0);
  const auto g = derive_block_locality(f, B);
  EXPECT_NEAR(fault_rate_lower(f, g, h), 1.0 / (B * h), 0.05 / (B * h));
}

TEST(Theorem8, GeneralPExponentShape) {
  // f = x^{1/p}: lower bound ~ 1/h^{p-1}.
  for (double p : {2.0, 3.0, 4.0}) {
    const auto f = make_poly_locality(1.0, p);
    const auto g = derive_block_locality(f, 1.0);
    const double h = 64;
    const double expect = 1.0 / std::pow(h, p - 1.0);
    EXPECT_NEAR(fault_rate_lower(f, g, h), expect, 0.2 * expect)
        << "p=" << p;
  }
}

TEST(Theorem9, ItemLayerShape) {
  // (i-1)/(f^{-1}(i+1)-2) ~ 1/i^{p-1} for f = x^{1/p}.
  const auto f = make_poly_locality(1.0, 2.0);
  const double i = 512;
  const double expect = (i - 1) / ((i + 1) * (i + 1) - 2);
  EXPECT_DOUBLE_EQ(iblp_item_fault_upper(f, i), expect);
  EXPECT_NEAR(expect, 1.0 / i, 0.05 / i);
}

TEST(Theorem10, BlockLayerUsesGInverse) {
  // Documented paper-typo handling: with g = x^{1/2} (no B scaling),
  // the block layer of size b acts as b/B blocks: bound ~ B/b.
  const double B = 16, b = 1024;
  const auto g = make_poly_locality(1.0, 2.0);
  const double eff = b / B;
  const double expect = (eff - 1) / ((eff + 1) * (eff + 1) - 2);
  EXPECT_DOUBLE_EQ(iblp_block_fault_upper(g, b, B), expect);
  EXPECT_NEAR(expect, B / b, 0.1 * B / b);
}

TEST(Theorem10, Table2Row2MatchesOneOverB) {
  // g = x^{1/2}/B^{1/2}: block layer bound ~ 1/b.
  const double B = 16, b = 1024;
  const auto f = make_poly_locality(1.0, 2.0);
  const auto g = derive_block_locality(f, std::sqrt(B));
  const double bound = iblp_block_fault_upper(g, b, B);
  EXPECT_NEAR(bound, 1.0 / b, 0.15 / b);
}

TEST(Theorem10, Table2Row3MatchesOneOverBb) {
  // g = x^{1/2}/B: block layer bound ~ 1/(Bb).
  const double B = 16, b = 1024;
  const auto f = make_poly_locality(1.0, 2.0);
  const auto g = derive_block_locality(f, B);
  const double bound = iblp_block_fault_upper(g, b, B);
  EXPECT_NEAR(bound, 1.0 / (B * b), 0.2 / (B * b));
}

TEST(Theorem11, TakesTheMinimum) {
  const double B = 16, i = 512, b = 512;
  const auto f = make_poly_locality(1.0, 2.0);
  const auto g = derive_block_locality(f, 4.0);
  const double combined = iblp_fault_upper(f, g, i, b, B);
  EXPECT_DOUBLE_EQ(combined, std::min(iblp_item_fault_upper(f, i),
                                      iblp_block_fault_upper(g, b, B)));
}

TEST(Section73, CrossoverAtGammaB1MinusOneOverP) {
  // At gamma = B^{1-1/p} with i = b, the two layers' bounds meet (within
  // low-order terms).
  const double B = 64, p = 2.0;
  const double i = 4096, b = 4096;
  const double gamma = std::pow(B, 1.0 - 1.0 / p);
  const auto f = make_poly_locality(1.0, p);
  const auto g = derive_block_locality(f, gamma);
  const double item_ub = iblp_item_fault_upper(f, i);
  const double block_ub = iblp_block_fault_upper(g, b, B);
  EXPECT_NEAR(item_ub, block_ub, 0.15 * item_ub);
}

TEST(Section73, GapVsHalfSizedLowerBoundIsAtMostGamma) {
  // Comparing an equally-split cache (i = b = h) against the lower bound
  // for size h: the gap is ~ f/g = gamma (Section 7.3's takeaway).
  const double B = 64, p = 2.0, h = 2048;
  for (double gamma : {1.0, 8.0, 64.0}) {
    const auto f = make_poly_locality(1.0, p);
    const auto g = derive_block_locality(f, gamma);
    const double ub = iblp_fault_upper(f, g, h, h, B);
    const double lb = fault_rate_lower(f, g, h);
    const double gap = ub / lb;
    EXPECT_GE(gap, 0.5);             // sanity
    EXPECT_LE(gap, 4.0 * B);         // never beyond ~B
  }
}

TEST(Theorem8, DegenerateWindowRejected) {
  // f^{-1}(k+1) <= 2 means the model cannot even fit the working set.
  const auto f = make_poly_locality(100.0, 2.0);  // f(1) = 100
  const auto g = derive_block_locality(f, 1.0);
  EXPECT_THROW(fault_rate_lower(f, g, 50), ContractViolation);
}

TEST(BoundsAreRates, AlwaysAtMostOne) {
  const auto f = make_poly_locality(1.0, 2.0);
  const auto g = derive_block_locality(f, 2.0);
  EXPECT_LE(iblp_item_fault_upper(f, 4), 1.0);
  EXPECT_LE(iblp_block_fault_upper(g, 64, 16), 1.0);
}

}  // namespace
}  // namespace gcaching::bounds
