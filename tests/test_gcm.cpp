// Unit tests for GCM (randomized marking with granularity change) and the
// marking ablations (Section 6).
#include <gtest/gtest.h>

#include "core/simulator.hpp"
#include "policies/gcm.hpp"
#include "traces/synthetic.hpp"

namespace gcaching {
namespace {

TEST(Gcm, SideloadsBlockUnmarked) {
  auto map = make_uniform_blocks(16, 4);
  Gcm gcm(1);
  Simulation sim(*map, gcm, 8);
  sim.access(0);
  // Whole block loaded, only the requested item marked.
  EXPECT_EQ(sim.cache().occupancy(), 4u);
  EXPECT_EQ(gcm.num_marked(), 1u);
  EXPECT_EQ(sim.stats().sideloads, 3u);
}

TEST(Gcm, HitsMarkItems) {
  auto map = make_uniform_blocks(16, 4);
  Gcm gcm(1);
  Simulation sim(*map, gcm, 8);
  sim.access(0);
  sim.access(1);  // spatial hit -> marks item 1
  EXPECT_EQ(gcm.num_marked(), 2u);
  EXPECT_EQ(sim.stats().spatial_hits, 1u);
}

TEST(Gcm, SpatialItemsNeverDisplaceMarked) {
  auto map = make_uniform_blocks(64, 4);
  Gcm gcm(7);
  Simulation sim(*map, gcm, 8);
  // Mark two items by requesting them.
  sim.access(0);   // block 0 loaded, 0 marked
  sim.access(1);   // hit, marks 1
  sim.access(4);   // block 1 loaded; evictions must spare 0 and 1
  EXPECT_TRUE(sim.cache().contains(0));
  EXPECT_TRUE(sim.cache().contains(1));
}

TEST(Gcm, PhaseResetWhenAllMarked) {
  auto map = make_singleton_blocks(8);  // B = 1: degenerate marking
  Gcm gcm(3);
  Simulation sim(*map, gcm, 2);
  sim.access(0);
  sim.access(1);  // both marked, cache full
  EXPECT_EQ(gcm.num_marked(), 2u);
  sim.access(2);  // must unmark all, evict one, load 2 marked
  EXPECT_TRUE(sim.cache().contains(2));
  EXPECT_EQ(sim.cache().occupancy(), 2u);
}

TEST(Gcm, DeterministicGivenSeed) {
  const auto w = traces::zipf_blocks(32, 4, 6000, 0.9, 2, 5);
  Gcm a(11), b(11);
  EXPECT_EQ(simulate(w, a, 24).misses, simulate(w, b, 24).misses);
}

TEST(Gcm, StatsConsistentOnMixedWorkload) {
  const auto w = traces::scan_with_hotset(64, 8, 20000, 0.3, 0.9, 4, 71);
  Gcm gcm(2);
  const SimStats s = simulate(w, gcm, 64);
  EXPECT_EQ(s.hits + s.misses, s.accesses);
  EXPECT_EQ(s.temporal_hits + s.spatial_hits, s.hits);
}

TEST(Gcm, BeatsGranularityObliviousMarkingOnBlockScans) {
  // Whole-block scans: classic marking misses on every item, GCM once per
  // block (the Section 6.1 separation).
  const auto w = traces::sequential_scan(1024, 8, 8192);
  Gcm gcm(1);
  MarkingItem classic(1);
  const auto s_gcm = simulate(w, gcm, 128);
  const auto s_classic = simulate(w, classic, 128);
  EXPECT_LT(s_gcm.misses * 2, s_classic.misses);
}

TEST(MarkingItem, NeverSideloads) {
  const auto w = traces::zipf_blocks(32, 4, 4000, 0.8, 3, 9);
  MarkingItem m(4);
  const SimStats s = simulate(w, m, 32);
  EXPECT_EQ(s.sideloads, 0u);
  EXPECT_EQ(s.spatial_hits, 0u);
}

TEST(MarkingItem, PhaseStructureServesTemporalLocality) {
  auto map = make_singleton_blocks(16);
  MarkingItem m(5);
  // Working set of 4 with capacity 4: after the cold pass everything hits.
  Trace t;
  for (int rep = 0; rep < 10; ++rep)
    for (ItemId it = 0; it < 4; ++it) t.push(it);
  const SimStats s = simulate(*map, t, m, 4);
  EXPECT_EQ(s.misses, 4u);
}

TEST(MarkingBlockMark, MarksWholeBlock) {
  auto map = make_uniform_blocks(16, 4);
  MarkingBlockMark m(1);
  Simulation sim(*map, m, 8);
  sim.access(0);
  EXPECT_EQ(sim.cache().occupancy(), 4u);
  EXPECT_EQ(sim.stats().sideloads, 3u);
}

TEST(MarkingBlockMark, RequestedItemSurvivesLoad) {
  // Tight cache (k = B): loading a block evicts through phase resets; the
  // requested item must never be the victim.
  auto map = make_uniform_blocks(64, 4);
  MarkingBlockMark m(3);
  Simulation sim(*map, m, 4);
  for (ItemId blk = 0; blk < 8; ++blk) {
    sim.access(blk * 4 + 1);
    EXPECT_TRUE(sim.cache().contains(blk * 4 + 1));
  }
}

TEST(MarkingBlockMark, SuffersPollutionVsGcm) {
  // Hot items spread one-per-block: marking everything protects pollution
  // for whole phases; GCM's unmarked sideloads yield to marked hot items.
  const auto w = traces::hot_item_per_block(32, 8, 30000, 32, 0.0, 23);
  Gcm gcm(1);
  MarkingBlockMark all(1);
  const auto s_gcm = simulate(w, gcm, 64);
  const auto s_all = simulate(w, all, 64);
  EXPECT_LE(s_gcm.misses, s_all.misses);
}

TEST(MarkingPolicies, DeterministicAcrossRuns) {
  const auto w = traces::zipf_blocks(16, 4, 5000, 0.7, 2, 12);
  MarkingBlockMark a(9), b(9);
  EXPECT_EQ(simulate(w, a, 24).misses, simulate(w, b, 24).misses);
}

}  // namespace
}  // namespace gcaching
