// Unit tests for the Section 4 lower-bound formulas and their Table 1 /
// Figure 3 relationships.
#include <gtest/gtest.h>

#include <cmath>

#include "bounds/competitive.hpp"
#include "bounds/salient.hpp"
#include "util/contracts.hpp"
#include "util/mathx.hpp"

namespace gcaching::bounds {
namespace {

TEST(SleatorTarjan, ClassicValues) {
  EXPECT_DOUBLE_EQ(sleator_tarjan_lower(10, 10), 10.0);  // k == h
  EXPECT_NEAR(sleator_tarjan_lower(2000, 1000), 2.0, 0.01);  // k = 2h
  EXPECT_DOUBLE_EQ(sleator_tarjan_lower(8, 1), 1.0);  // h = 1: ratio 1
}

TEST(SleatorTarjan, UpperMatchesLower) {
  EXPECT_DOUBLE_EQ(sleator_tarjan_lower(512, 100),
                   sleator_tarjan_lru_upper(512, 100));
}

TEST(SleatorTarjan, RejectsBadGeometry) {
  EXPECT_THROW(sleator_tarjan_lower(5, 10), ContractViolation);
  EXPECT_THROW(sleator_tarjan_lower(5, 0), ContractViolation);
}

TEST(Theorem2, ItemCachePenaltyNearB) {
  // k = 2h: ratio ~= B * (k) / (h) / 2 ~ 2B * (1 - ...) — with k >> B the
  // ratio is ~ B * k/(k-h+1) ~ 2B for k = 2h.
  const double r = item_cache_lower(2048, 1024, 64);
  EXPECT_NEAR(r, 64.0 * (2048 - 63) / 1025.0, 1e-9);
  EXPECT_GT(r, 64.0);  // strictly worse than B at this geometry
}

TEST(Theorem2, ReducesToSleatorTarjanWhenB1) {
  const double gc = item_cache_lower(100, 40, 1);
  const double st = sleator_tarjan_lower(100, 40);
  EXPECT_NEAR(gc, st, 1e-12);
}

TEST(Theorem2, MonotoneDecreasingInK) {
  double prev = kUnboundedRatio;
  for (double k = 256; k <= 65536; k *= 2) {
    const double r = item_cache_lower(k, 128, 16);
    EXPECT_LT(r, prev);
    prev = r;
  }
}

TEST(Theorem3, UnboundedWithoutBTimesAugmentation) {
  // k <= B(h-1): adversary wins forever.
  EXPECT_EQ(block_cache_lower(1024, 32, 64), kUnboundedRatio);
  // Just above the threshold: finite but enormous.
  const double r = block_cache_lower(64 * 31 + 10, 32, 64);
  EXPECT_TRUE(std::isfinite(r));
  EXPECT_GT(r, 100.0);
}

TEST(Theorem3, ApproachesOneWithHugeAugmentation) {
  const double r = block_cache_lower(1 << 20, 2, 64);
  EXPECT_LT(r, 1.01);
}

TEST(Theorem4, EndpointsMatchSpecialCases) {
  const double k = 4096, h = 512, B = 32;
  // a = B: the Item Cache bound's shape (B(k-h+1) + B(h-B))/(k-h+1)
  //        = B(k - B + 1)/(k-h+1) — exactly Theorem 2.
  EXPECT_NEAR(athreshold_lower(k, h, B, B), item_cache_lower(k, h, B),
              1e-9);
  // a = 1: (k-h+1 + B(h-1))/(k-h+1).
  EXPECT_NEAR(athreshold_lower(k, h, B, 1),
              (k - h + 1 + B * (h - 1)) / (k - h + 1), 1e-9);
}

TEST(Theorem4, InteriorANeverBeatsBestEndpoint) {
  const double k = 2048, h = 256, B = 64;
  const double best = gc_lower_bound(k, h, B);
  for (double a = 1; a <= B; ++a)
    EXPECT_GE(athreshold_lower(k, h, B, a) + 1e-9, best) << "a=" << a;
}

TEST(Theorem4, OptimalASwitchesAtPredictedPoint) {
  const double B = 16;
  // k - h + 1 > B  => a = 1 optimal.
  EXPECT_EQ(gc_optimal_a(1000, 100, B), 1.0);
  // k - h + 1 < B  => a = B optimal.
  EXPECT_EQ(gc_optimal_a(105, 100, B), B);
  // Consistency: the claimed optimum attains the bound.
  for (double k : {105.0, 1000.0}) {
    const double a_star = gc_optimal_a(k, 100, B);
    EXPECT_NEAR(athreshold_lower(k, 100, B, a_star),
                gc_lower_bound(k, 100, B), 1e-9);
  }
}

TEST(GcLowerBound, Table1ConstantAugmentationRow) {
  // k ~= 2h => ratio ~= B (Table 1 row 1).
  const double B = 64, h = 16384;
  const double r = gc_lower_bound(2 * h, h, B);
  EXPECT_NEAR(r, B, 0.1 * B);
}

TEST(GcLowerBound, Table1ConstantRatioRow) {
  // k ~= Bh => ratio ~= 2 (Table 1 row 3).
  const double B = 64, h = 16384;
  const double r = gc_lower_bound(B * h, h, B);
  EXPECT_NEAR(r, 2.0, 0.1);
}

TEST(GcLowerBound, Table1MeetingPointRow) {
  // ratio == augmentation at k ~= sqrt(B) h with value ~= sqrt(B).
  const double B = 64, h = 16384;
  const auto pt = find_ratio_equals_augmentation(
      [&](double k) { return gc_lower_bound(k, h, B); }, h, B * h);
  EXPECT_NEAR(pt.augmentation, std::sqrt(B), 0.25 * std::sqrt(B));
  EXPECT_NEAR(pt.ratio, std::sqrt(B), 0.25 * std::sqrt(B));
}

TEST(GcLowerBound, DominatesSleatorTarjan) {
  const double B = 64, h = 1024;
  for (double k = h; k <= 64 * h; k *= 2)
    EXPECT_GE(gc_lower_bound(k, h, B) + 1e-9,
              sleator_tarjan_lower(k, h));
}

TEST(GcLowerBound, SmallHClampsAToH) {
  // h < B: the a = B endpoint is inadmissible; bound must still compute.
  EXPECT_NO_THROW(gc_lower_bound(1024, 8, 64));
  EXPECT_GT(gc_lower_bound(1024, 8, 64), 1.0);
}

TEST(SalientPoints, SleatorTarjanMeetingPointIsTwo) {
  const double h = 16384;
  const auto pt = find_ratio_equals_augmentation(
      [&](double k) { return sleator_tarjan_lower(k, h); }, h, 8 * h);
  EXPECT_NEAR(pt.augmentation, 2.0, 0.01);
  EXPECT_NEAR(pt.ratio, 2.0, 0.01);
}

TEST(SalientPoints, ConstantRatioFindsSmallestK) {
  const double h = 1000;
  const auto pt = find_constant_ratio(
      [&](double k) { return sleator_tarjan_lower(k, h); }, h, 2.0, 1e7);
  // k/(k-h+1) = 2 at k = 2h - 2.
  EXPECT_NEAR(pt.k, 2 * h - 2, 2.0);
}

TEST(SalientPoints, AtAugmentationEvaluates) {
  const double h = 100;
  const auto pt = at_augmentation(
      [&](double k) { return sleator_tarjan_lower(k, h); }, h, 2.0);
  EXPECT_DOUBLE_EQ(pt.k, 200.0);
  EXPECT_NEAR(pt.ratio, 2.0, 0.02);
}

TEST(SalientPoints, UnreachableTargetThrows) {
  EXPECT_THROW(find_constant_ratio(
                   [](double) { return 100.0; }, 10, 2.0, 1000),
               ContractViolation);
}

// ---- Boundary-parameter regressions ----------------------------------------
// Exact pinned values at the edges of the theorems' parameter domains
// (B = k, h = k, a = 1, a = B = h). These are the geometries where an
// off-by-one in a formula (k - h + 1 vs k - h, B - 1 vs B) changes the value
// but every interior test above still passes; the expectations are
// EXPECT_DOUBLE_EQ against hand-derived closed forms, so any drift fails.

TEST(BoundaryRegression, Theorem2AtHEqualsK) {
  // h = k (no augmentation): B (k - B + 1) / 1.
  EXPECT_DOUBLE_EQ(item_cache_lower(8, 8, 4), 4.0 * 5.0);  // 20
  EXPECT_DOUBLE_EQ(item_cache_lower(64, 64, 8), 8.0 * 57.0);  // 456
}

TEST(BoundaryRegression, Theorem2AtBEqualsK) {
  // B = k (one block fills the cache): k (k - k + 1)/(k - h + 1)
  // = k / (k - h + 1) — collapses to Sleator–Tarjan exactly.
  EXPECT_DOUBLE_EQ(item_cache_lower(16, 4, 16), 16.0 / 13.0);
  EXPECT_DOUBLE_EQ(item_cache_lower(16, 4, 16), sleator_tarjan_lower(16, 4));
  // And with h = k too: the fully-degenerate corner pins at exactly k.
  EXPECT_DOUBLE_EQ(item_cache_lower(16, 16, 16), 16.0);
}

TEST(BoundaryRegression, Theorem3AtHEqualsOneAndThreshold) {
  // h = 1: denominator is k, ratio exactly 1 at every k, B.
  EXPECT_DOUBLE_EQ(block_cache_lower(7, 1, 64), 1.0);
  // Exactly at the unboundedness threshold k = B(h-1): still unbounded
  // (denominator 0, not negative) — the <= vs < distinction.
  EXPECT_EQ(block_cache_lower(64.0 * 31.0, 32, 64), kUnboundedRatio);
  // One past it: k / 1 = k exactly.
  EXPECT_DOUBLE_EQ(block_cache_lower(64.0 * 31.0 + 1.0, 32, 64),
                   64.0 * 31.0 + 1.0);
}

TEST(BoundaryRegression, Theorem4AtAEqualsOne) {
  // a = 1: (k - h + 1 + B (h - 1)) / (k - h + 1).
  EXPECT_DOUBLE_EQ(athreshold_lower(8, 8, 4, 1), 29.0);      // (1 + 28)/1
  EXPECT_DOUBLE_EQ(athreshold_lower(10, 6, 3, 1), 4.0);      // (5 + 15)/5
  // B = 1 forces a = 1 and Theorem 4 collapses to Sleator–Tarjan.
  EXPECT_DOUBLE_EQ(athreshold_lower(100, 40, 1, 1),
                   sleator_tarjan_lower(100, 40));
}

TEST(BoundaryRegression, Theorem4AtAEqualsBEqualsH) {
  // a = B = h: (B (k - h + 1) + B * 0)/(k - h + 1) = B exactly, which also
  // equals Theorem 2 at that geometry.
  EXPECT_DOUBLE_EQ(athreshold_lower(8, 4, 4, 4), 4.0);
  EXPECT_DOUBLE_EQ(athreshold_lower(8, 4, 4, 4), item_cache_lower(8, 4, 4));
}

TEST(BoundaryRegression, GcLowerBoundAtTieGeometry) {
  // k - h + 1 == B: d(ratio)/da == 0, both endpoints equal; the bound and
  // the optimizer must agree (ties resolve to a = 1 by convention).
  const double k = 19, h = 16, B = 4;  // k - h + 1 == 4 == B
  EXPECT_DOUBLE_EQ(athreshold_lower(k, h, B, 1.0),
                   athreshold_lower(k, h, B, B));
  EXPECT_DOUBLE_EQ(gc_lower_bound(k, h, B), athreshold_lower(k, h, B, 1.0));
  EXPECT_DOUBLE_EQ(gc_optimal_a(k, h, B), 1.0);
}

TEST(BoundaryRegression, DomainEdgesStillRejected) {
  // The boundary values above are the *last* legal geometries; one step
  // further must still throw, so the regressions cannot silently widen the
  // domain.
  EXPECT_THROW(item_cache_lower(8, 9, 4), ContractViolation);   // h > k
  EXPECT_THROW(item_cache_lower(8, 4, 9), ContractViolation);   // B > k
  EXPECT_THROW(athreshold_lower(8, 4, 4, 5), ContractViolation);  // a > B
  EXPECT_THROW(athreshold_lower(8, 3, 4, 4), ContractViolation);  // h < a
  EXPECT_THROW(athreshold_lower(8, 4, 4, 0), ContractViolation);  // a < 1
}

}  // namespace
}  // namespace gcaching::bounds
