// Unit tests for workload composition and the offline-OPT portfolio plus
// concave-majorant utilities (the newer library extensions).
#include <gtest/gtest.h>

#include "locality/concave.hpp"
#include "locality/window_profile.hpp"
#include "offline/exact_opt.hpp"
#include "offline/opt_bounds.hpp"
#include "offline/opt_portfolio.hpp"
#include "traces/compose.hpp"
#include "traces/synthetic.hpp"
#include "util/rng.hpp"

namespace gcaching {
namespace {

// ---------------------------------------------------------------------------
// compose
// ---------------------------------------------------------------------------

Workload tiny(std::shared_ptr<const BlockMap> map, std::vector<ItemId> acc,
              std::string name) {
  Workload w;
  w.map = std::move(map);
  w.trace = Trace(std::move(acc));
  w.name = std::move(name);
  return w;
}

TEST(Compose, InterleaveAlternates) {
  auto map = make_uniform_blocks(8, 4);
  const auto a = tiny(map, {0, 1, 2}, "a");
  const auto b = tiny(map, {4, 5}, "b");
  const auto w = traces::interleave(a, b);
  const std::vector<ItemId> expect = {0, 4, 1, 5, 2};
  ASSERT_EQ(w.trace.size(), expect.size());
  for (std::size_t p = 0; p < expect.size(); ++p)
    EXPECT_EQ(w.trace[p], expect[p]);
}

TEST(Compose, InterleaveChunked) {
  auto map = make_uniform_blocks(8, 4);
  const auto a = tiny(map, {0, 1, 2, 3}, "a");
  const auto b = tiny(map, {4, 5}, "b");
  const auto w = traces::interleave(a, b, 2, 1);
  const std::vector<ItemId> expect = {0, 1, 4, 2, 3, 5};
  ASSERT_EQ(w.trace.size(), expect.size());
  for (std::size_t p = 0; p < expect.size(); ++p)
    EXPECT_EQ(w.trace[p], expect[p]);
}

TEST(Compose, InterleaveRequiresSharedMap) {
  const auto a = tiny(make_uniform_blocks(8, 4), {0}, "a");
  const auto b = tiny(make_uniform_blocks(8, 4), {0}, "b");
  EXPECT_THROW(traces::interleave(a, b), ContractViolation);
}

TEST(Compose, ConcatAndRepeat) {
  auto map = make_uniform_blocks(8, 4);
  const auto a = tiny(map, {0, 1}, "a");
  const auto b = tiny(map, {2}, "b");
  const auto cat = traces::concat(a, b);
  EXPECT_EQ(cat.trace.size(), 3u);
  const auto rep = traces::repeat(cat, 3);
  EXPECT_EQ(rep.trace.size(), 9u);
  EXPECT_EQ(rep.trace[3], 0u);
}

TEST(Compose, Truncate) {
  auto map = make_uniform_blocks(8, 4);
  const auto a = tiny(map, {0, 1, 2, 3}, "a");
  const auto t = traces::truncate(a, 2);
  EXPECT_EQ(t.trace.size(), 2u);
  const auto longer = traces::truncate(a, 100);
  EXPECT_EQ(longer.trace.size(), 4u);
}

TEST(Compose, NamesCarryProvenance) {
  auto map = make_uniform_blocks(8, 4);
  const auto a = tiny(map, {0}, "alpha");
  const auto b = tiny(map, {1}, "beta");
  EXPECT_NE(traces::interleave(a, b).name.find("alpha"), std::string::npos);
  EXPECT_NE(traces::concat(a, b).name.find("beta"), std::string::npos);
}

// ---------------------------------------------------------------------------
// opt portfolio
// ---------------------------------------------------------------------------

TEST(OptPortfolio, BracketsExactOptOnSmallInstances) {
  SplitMix64 rng(31337);
  auto map = make_uniform_blocks(12, 4);
  for (int round = 0; round < 6; ++round) {
    Trace t;
    for (int p = 0; p < 24; ++p) t.push(static_cast<ItemId>(rng.below(12)));
    const std::size_t k = 8;
    const auto exact = exact_offline_opt(*map, t, k);
    const auto upper = opt_portfolio_upper(*map, t, k);
    const auto lower = opt_lower_bound(*map, t, k);
    EXPECT_LE(lower, exact.cost) << "round " << round;
    EXPECT_GE(upper.misses, exact.cost) << "round " << round;
  }
}

TEST(OptPortfolio, PicksBlockBeladyOnScans) {
  const auto w = traces::sequential_scan(256, 8, 2048);
  const auto res = opt_portfolio_upper(*w.map, w.trace, 64);
  // Whole-block clairvoyance is optimal on a pure scan: one miss per block
  // touched per lap.
  EXPECT_LE(res.misses, 2048u / 8u + 8u);
}

TEST(OptPortfolio, ReportsWinningPolicy) {
  const auto w = traces::sequential_scan(256, 8, 1024);
  const auto res = opt_portfolio_upper(*w.map, w.trace, 64);
  EXPECT_FALSE(res.best_policy.empty());
}

TEST(OptPortfolio, WorksWithTinyCapacity) {
  const auto w = traces::zipf_items(64, 8, 2000, 0.8, 2);
  // capacity < B: block-granularity members are skipped, item members run.
  const auto res = opt_portfolio_upper(*w.map, w.trace, 4);
  EXPECT_GT(res.misses, 0u);
}

// ---------------------------------------------------------------------------
// concave majorant
// ---------------------------------------------------------------------------

TEST(Concave, MajorantDominatesAndIsConcave) {
  const std::vector<std::size_t> xs = {1, 2, 4, 8, 16, 32};
  const std::vector<double> ys = {1, 3, 4, 9, 10, 12};  // kink at 4->8
  const auto maj = locality::concave_majorant(xs, ys);
  for (std::size_t j = 0; j < ys.size(); ++j)
    EXPECT_GE(maj[j] + 1e-9, ys[j]) << "j=" << j;
  EXPECT_TRUE(locality::is_concave(xs, maj, 1e-6));
}

TEST(Concave, ConcaveInputUnchanged) {
  const std::vector<std::size_t> xs = {1, 2, 4, 8};
  const std::vector<double> ys = {1, 2, 3, 3.5};
  const auto maj = locality::concave_majorant(xs, ys);
  for (std::size_t j = 0; j < ys.size(); ++j)
    EXPECT_NEAR(maj[j], ys[j], 1e-9);
}

TEST(Concave, IsConcaveDetectsConvexity) {
  const std::vector<std::size_t> xs = {1, 2, 3};
  EXPECT_FALSE(locality::is_concave(xs, {1, 1, 4}));
  EXPECT_TRUE(locality::is_concave(xs, {1, 3, 4}));
}

TEST(Concave, MeasuredProfileMajorantFeedsBounds) {
  const auto w = traces::working_set_phases(512, 8, 40000, 48, 2000, 13);
  const auto prof = locality::compute_profile(w);
  const auto f = locality::concave_locality_function(
      prof.window_lengths, prof.max_distinct_items);
  // Sanity: usable as a locality function (monotone, invertible around the
  // sampled range).
  EXPECT_GE(f.value(100.0), f.value(10.0));
  const double m = f.value(500.0);
  EXPECT_NEAR(f.value(f.inverse(m)), m, 1e-6 * m);
}

}  // namespace
}  // namespace gcaching
